// Dataset-free calibration workflow (paper Sec. 3.3.3):
//   1. deploy NN-LUTs into a trained model,
//   2. capture the inputs actually reaching each LayerNorm's 1/sqrt on a
//      small unlabeled set,
//   3. regress each site's approximator on its captured distribution,
//   4. re-transform to LUTs and re-evaluate.
#include <cstdio>

#include "core/function_library.h"
#include "eval/calibration_runner.h"
#include "eval/pipeline.h"

int main() {
  using namespace nnlut;
  using transformer::ApproxSelection;
  using transformer::LutNonlinearities;
  using transformer::LutSet;

  tasks::TaskGenOptions data_opts;
  data_opts.n_train = 2048;
  data_opts.n_dev = 384;
  data_opts.seq_len = 20;
  const tasks::TaskData task = tasks::make_task(tasks::TaskId::kRte, data_opts);

  transformer::ModelConfig cfg = transformer::ModelConfig::roberta_like();
  cfg.vocab = 64;
  cfg.hidden = 48;
  cfg.layers = 2;
  cfg.heads = 4;
  cfg.ffn = 96;
  cfg.max_seq = 20;

  eval::TrainOptions topt;
  topt.epochs = 10;
  std::printf("Training the subject model (RTE-style task)...\n");
  const auto model = eval::train_model(task, cfg, topt);
  std::printf("Baseline: %.1f\n", eval::evaluate_baseline(model, task));

  const NnlutBundle bundle = train_bundle(16, FitPreset::kFast, 5);
  const LutSet luts{bundle.gelu.lut, bundle.exp.lut, bundle.reciprocal.lut,
                    bundle.rsqrt.lut};
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::all();

  auto backend = make_lut_backend(luts, LutPrecision::kInt32, opt);
  std::printf("Direct INT32 NN-LUT approximation: %.1f\n",
              eval::evaluate(model, task, *backend));

  // Calibrate on one tenth of the training data, unlabeled.
  const std::span<const tasks::Example> unlabeled(task.train.data(),
                                                  task.train.size() / 10);
  auto calibrated = make_lut_backend(luts, LutPrecision::kInt32, opt);
  const auto report = eval::calibrate_layernorm_sites(
      model, *calibrated, bundle.rsqrt, unlabeled,
      transformer::MatmulMode::kFp32, LutPrecision::kInt32);

  std::printf("\nPer-site calibration (LayerNorm 1/sqrt LUTs):\n");
  std::printf("  %-6s %-10s %-14s %-14s\n", "site", "samples", "err before",
              "err after");
  for (const auto& s : report.sites) {
    std::printf("  %-6d %-10zu %-14.6f %-14.6f\n", s.site, s.samples,
                s.error_before, s.error_after);
  }

  std::printf("\nCalibrated INT32 NN-LUT: %.1f\n",
              eval::evaluate(model, task, *calibrated));
  std::printf(
      "Calibration costs a forward pass plus 5 epochs of 1-D regression —\n"
      "no labels, no transformer fine-tuning (paper: <5%% of fine-tune time).\n");
  return 0;
}
