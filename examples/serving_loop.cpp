// Serving loop: submit/await against a small trained model.
//
//   1. Generate a synthetic SST-2-style task and fine-tune a tiny encoder.
//   2. Swap in the NN-LUT backend (the deployment configuration).
//   3. Stand up a Server: request queue -> dynamic batcher -> model.
//   4. Four client threads submit single-sequence requests and await their
//      PendingResult; the batcher packs same-length requests into shared
//      LUT-evaluated batches behind their backs.
//
// Build & run:   ./example_serving_loop
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "approx/linear_lut.h"
#include "eval/pipeline.h"
#include "numerics/math.h"
#include "serve/server.h"
#include "tasks/tasks.h"

int main() {
  using namespace nnlut;
  using namespace nnlut::transformer;
  using namespace std::chrono_literals;

  // A small task and model: enough to have real trained weights to serve.
  tasks::TaskGenOptions gen;
  gen.n_train = 768;
  gen.n_dev = 64;
  gen.seq_len = 16;
  gen.vocab = 64;
  const tasks::TaskData task = tasks::make_task(tasks::TaskId::kSst2, gen);

  ModelConfig cfg = ModelConfig::roberta_like();
  cfg.vocab = gen.vocab;
  cfg.hidden = 32;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.ffn = 64;
  cfg.max_seq = gen.seq_len;

  std::printf("Training a %zux%zu encoder on %zu examples...\n", cfg.layers,
              cfg.hidden, task.train.size());
  eval::TrainOptions topt;
  topt.epochs = 6;
  TaskModel model = eval::train_model(task, cfg, topt);

  // Deployment backend: NN-LUT tables for all four base functions.
  LutSet luts{fit_linear_lut(gelu_exact, kGeluRange, 16),
              fit_linear_lut(exp_exact, {-16.0f, 0.0f}, 16),
              fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 1024.0f}, 16,
                                       BreakpointMode::kExponential),
              fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 16,
                                       BreakpointMode::kExponential)};
  LutNonlinearities::Options lopt;
  lopt.select = ApproxSelection::all();
  auto backend = make_lut_backend(luts, LutPrecision::kFp32, lopt);

  serve::ServeConfig scfg;
  scfg.max_batch = 8;    // pack up to 8 sequences per model call
  scfg.max_wait = 2000us;  // ... but never delay a request by more than 2ms
  scfg.threads = 0;      // encoder kernels use every hardware thread
  serve::Server server(model, *backend, scfg);

  std::printf("Serving %zu dev examples from 4 client threads "
              "(max_batch=%zu, max_wait=%lldus)...\n",
              task.dev.size(), scfg.max_batch,
              static_cast<long long>(scfg.max_wait.count()));

  std::atomic<int> correct{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = static_cast<std::size_t>(c); i < task.dev.size();
           i += 4) {
        // One sequence per request, exactly as a frontend would submit it.
        const BatchInput in = eval::to_batch(task.dev, i, 1);
        serve::PendingResult pending = server.submit(in);
        const Tensor logits = pending.get();  // awaits the batched result
        const int pred = logits.at(0, 1) > logits.at(0, 0) ? 1 : 0;
        if (pred == task.dev[i].label) correct.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  const serve::ServerStats stats = server.stats();
  server.shutdown();

  std::printf("\nServed %llu requests in %llu batches "
              "(mean occupancy %.2f sequences/batch).\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch_occupancy);
  std::printf("Latency (queue+execute): p50 < %.0fus, p95 < %.0fus.\n",
              stats.p50_latency_us, stats.p95_latency_us);
  std::printf("Dev accuracy through the server: %.3f\n",
              static_cast<double>(correct.load()) /
                  static_cast<double>(task.dev.size()));
  std::printf(
      "\nThe batcher only merges identical-length requests, so every result\n"
      "is bit-identical to a solo InferenceModel::logits call.\n");
  return 0;
}
