// Serving loop: two models behind one multi-model Engine.
//
//   1. Generate a synthetic SST-2-style task and fine-tune a tiny encoder.
//   2. Register TWO deployment backends of it on one Engine: the NN-LUT
//      FP32 slot ("nnlut-fp32") and the INT32 deployment slot
//      ("nnlut-int32"), each with its own queue, batcher (scheduler thread
//      "nnlut-sched-<model>") and stats ledger; the schedulers share the
//      process thread pool.
//   3. The fp32 slot is left unbounded; the int32 slot gets admission
//      control (bounded queue, shed-oldest) to show load shedding.
//   4. Four client threads — two per model — BURST-submit their share of
//      the dev set (all submissions up front, then await), so the bounded
//      int32 queue actually overflows while batches execute; shed requests
//      resolve with ServerOverloaded and are retried nowhere — exactly
//      what a front-end sees under overload.
//   5. The whole serving phase runs with lifecycle tracing enabled: after
//      the drain the example prints the engine's Prometheus scrape and
//      writes serving_trace.json — load it in Perfetto / chrome://tracing
//      to see req.* lifecycle spans, batch.merge/batch.exec flushes and
//      pool.shard worker spans on their named threads.
//
// Build & run:   ./example_serving_loop
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "approx/linear_lut.h"
#include "eval/pipeline.h"
#include "numerics/math.h"
#include "obs/trace.h"
#include "serve/engine.h"
#include "tasks/tasks.h"

int main() {
  using namespace nnlut;
  using namespace nnlut::transformer;
  using namespace std::chrono_literals;

  // A small task and model: enough to have real trained weights to serve.
  tasks::TaskGenOptions gen;
  gen.n_train = 768;
  gen.n_dev = 64;
  gen.seq_len = 16;
  gen.vocab = 64;
  const tasks::TaskData task = tasks::make_task(tasks::TaskId::kSst2, gen);

  ModelConfig cfg = ModelConfig::roberta_like();
  cfg.vocab = gen.vocab;
  cfg.hidden = 32;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.ffn = 64;
  cfg.max_seq = gen.seq_len;

  std::printf("Training a %zux%zu encoder on %zu examples...\n", cfg.layers,
              cfg.hidden, task.train.size());
  eval::TrainOptions topt;
  topt.epochs = 6;
  TaskModel model = eval::train_model(task, cfg, topt);

  // Deployment backends: NN-LUT tables for all four base functions, at two
  // precisions — the same weights served two ways from one process.
  LutSet luts{fit_linear_lut(gelu_exact, kGeluRange, 16),
              fit_linear_lut(exp_exact, {-16.0f, 0.0f}, 16),
              fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 1024.0f}, 16,
                                       BreakpointMode::kExponential),
              fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 16,
                                       BreakpointMode::kExponential)};
  LutNonlinearities::Options lopt;
  lopt.select = ApproxSelection::all();
  auto fp32_backend = make_lut_backend(luts, LutPrecision::kFp32, lopt);
  auto int32_backend = make_lut_backend(luts, LutPrecision::kInt32, lopt);

  // Trace the serving phase only (training stays untraced). Tracing never
  // steers scheduling: results below are bit-identical with it disabled.
  obs::TraceRecorder::instance().enable(/*events_per_thread=*/16384);

  serve::Engine engine;  // threads = 0: every hardware thread

  serve::SlotConfig fp32_slot;
  fp32_slot.max_batch = 8;     // pack up to 8 sequences per model call
  fp32_slot.max_wait = 2000us; // ... but never delay a request by more than 2ms
  engine.register_model("nnlut-fp32", model, *fp32_backend, fp32_slot);

  serve::SlotConfig int32_slot = fp32_slot;
  int32_slot.admission = {/*max_queue_depth=*/8,
                          serve::ShedPolicy::kRejectOldest};
  engine.register_model("nnlut-int32", model, *int32_backend, int32_slot);

  std::printf("Serving %zu dev examples from 4 client threads across "
              "models {%s, %s}...\n",
              task.dev.size(), engine.model_ids()[0].c_str(),
              engine.model_ids()[1].c_str());

  std::atomic<int> correct{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      // Clients 0/2 serve nnlut-fp32, clients 1/3 nnlut-int32 (dev example
      // i goes to the slot matching its parity). Submit the whole share as
      // a burst, then await: while a batch executes, the rest of the burst
      // piles into the queue — which is what overflows the int32 slot's
      // depth-8 bound and triggers shed-oldest.
      const char* mdl = (c % 2 == 0) ? "nnlut-fp32" : "nnlut-int32";
      std::vector<std::size_t> indices;
      std::vector<serve::PendingResult> pending;
      for (std::size_t i = static_cast<std::size_t>(c); i < task.dev.size();
           i += 4) {
        indices.push_back(i);
        pending.push_back(engine.submit(mdl, eval::to_batch(task.dev, i, 1)));
      }
      for (std::size_t k = 0; k < pending.size(); ++k) {
        try {
          const Tensor logits = pending[k].get();  // awaits the batched result
          const int pred = logits.at(0, 1) > logits.at(0, 0) ? 1 : 0;
          if (pred == task.dev[indices[k]].label) correct.fetch_add(1);
        } catch (const serve::ServerOverloaded&) {
          shed.fetch_add(1);  // admission control shed this request
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // Drained: everything the clients submitted has resolved. Scrape the
  // unified metrics registry while the engine is still live — this is the
  // exact text a Prometheus endpoint would serve.
  const std::string scrape = engine.scrape();
  const serve::EngineStats stats = engine.stats();
  engine.shutdown();

  obs::TraceRecorder::instance().disable();
  const obs::TraceRecorder::Stats tstats = obs::TraceRecorder::instance().stats();
  const char* trace_path = "serving_trace.json";
  if (!obs::TraceRecorder::instance().export_json_file(trace_path)) {
    std::fprintf(stderr, "failed to write %s\n", trace_path);
    return 1;
  }

  std::printf("\n--- Prometheus scrape (post-drain) ---\n%s"
              "--- end scrape ---\n",
              scrape.c_str());
  std::printf("\nChrome trace written to %s (%llu events recorded on %zu "
              "threads, %llu dropped) — open in Perfetto or "
              "chrome://tracing.\n",
              trace_path, static_cast<unsigned long long>(tstats.recorded),
              tstats.threads, static_cast<unsigned long long>(tstats.dropped));

  for (const auto& kv : stats.models) {
    const serve::SlotStats& s = kv.second;
    std::printf("\n[%s] %llu completed in %llu batches "
                "(mean occupancy %.2f seq/batch), %llu shed, "
                "p50 < %.0fus, p95 < %.0fus.",
                kv.first.c_str(),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.batches),
                s.mean_batch_occupancy,
                static_cast<unsigned long long>(s.rejected_overload),
                s.p50_latency_us, s.p95_latency_us);
    // Memory path, after the drain: alloc = slabs the slot's buffer pool
    // had to take from the heap (its working set), reuse = acquisitions
    // recycled from the free lists. Sustained serving grows reuse, not
    // alloc; the outstanding slabs are the slot's persistent workspace.
    std::printf("\n[%s] pool: %llu slabs allocated, %llu reused "
                "(%.1f reuses/alloc), peak %zu KiB, %llu outstanding.",
                kv.first.c_str(),
                static_cast<unsigned long long>(s.pool_alloc_count),
                static_cast<unsigned long long>(s.pool_reuse_count),
                s.pool_alloc_count > 0
                    ? static_cast<double>(s.pool_reuse_count) /
                          static_cast<double>(s.pool_alloc_count)
                    : 0.0,
                s.pool_bytes_peak / 1024,
                static_cast<unsigned long long>(s.pool_outstanding));
  }
  std::printf("\n\nServed %llu requests total; %d shed by admission "
              "control.\n",
              static_cast<unsigned long long>(stats.total.completed),
              shed.load());
  std::printf("Dev accuracy through the engine (both models): %.3f\n",
              static_cast<double>(correct.load()) /
                  static_cast<double>(task.dev.size() -
                                      static_cast<std::size_t>(shed.load())));
  std::printf(
      "\nEach slot's batcher only merges identical-length requests of its\n"
      "own model, so every result is bit-identical to a solo\n"
      "InferenceModel::logits call — no matter how many models share the\n"
      "process.\n");
  return 0;
}
