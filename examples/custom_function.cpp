// The NN-LUT framework is function-agnostic (the paper's Fig. 3(a) lists
// GELU, square root, exponent, division, H-swish/Swish, Tanh/Sigmoid as LUT
// targets): this example approximates user-defined functions — Swish and
// Tanh — with the same train -> transform pipeline, no framework changes.
#include <cmath>
#include <cstdio>

#include "core/trainer.h"
#include "core/transform.h"

namespace {

float swish(float x) { return x / (1.0f + std::exp(-x)); }
float tanh_fn(float x) { return std::tanh(x); }

void approximate(const char* name, float (*fn)(float), nnlut::InputRange range) {
  using namespace nnlut;

  TrainConfig cfg;
  cfg.hidden = 15;  // -> 16-entry LUT
  cfg.range = range;
  cfg.dataset_size = 20000;
  cfg.epochs = 40;
  cfg.restarts = 2;
  cfg.seed = 7;

  const TrainResult result = fit_approx_net(fn, cfg);
  const PiecewiseLinear lut = nn_to_lut(result.net);

  std::printf("\n%s on (%.1f, %.1f): validation L1 = %.5f, %zu segments\n",
              name, range.lo, range.hi, result.validation_l1, lut.entries());
  std::printf("  %8s %10s %10s\n", "x", "exact", "LUT");
  for (float x = range.lo; x <= range.hi; x += (range.hi - range.lo) / 8) {
    std::printf("  %8.2f %10.4f %10.4f\n", x, fn(x), lut(x));
  }
}

}  // namespace

int main() {
  std::printf("NN-LUT as a universal scalar-function approximator:\n");
  approximate("Swish", &swish, {-6.0f, 6.0f});
  approximate("Tanh", &tanh_fn, {-4.0f, 4.0f});
  std::printf(
      "\nThe same 16-entry LUT hardware serves any of these by swapping\n"
      "table contents - no datapath changes.\n");
  return 0;
}
