// Design-space exploration with the hardware cost model: sweep LUT entry
// count and deployment precision, reporting area/power/delay next to the
// approximation error each configuration achieves — the accuracy/cost
// trade-off that motivates the paper's 16-entry choice.
#include <cmath>
#include <cstdio>

#include "core/function_library.h"
#include "hwmodel/units.h"

int main() {
  using namespace nnlut;
  using namespace nnlut::hw;

  std::printf("NN-LUT design space: entries x precision\n\n");
  const CellLibrary lib;

  std::printf("%8s %8s | %10s %10s %8s | %12s\n", "entries", "prec", "area um2",
              "power mW", "delay ns", "GELU L1 err");
  for (int entries : {4, 8, 16, 32, 64}) {
    const FittedLut fit = fit_lut(TargetFn::kGelu, entries, FitPreset::kFast,
                                  static_cast<std::uint64_t>(entries));
    double l1 = 0.0;
    for (int i = 0; i < 2048; ++i) {
      const float x = -5.0f + 10.0f * (static_cast<float>(i) + 0.5f) / 2048;
      l1 += std::abs(fit.lut(x) - gelu_exact(x));
    }
    l1 /= 2048;

    for (UnitPrecision prec :
         {UnitPrecision::kInt32, UnitPrecision::kFp16, UnitPrecision::kFp32}) {
      const UnitReport r = build_nnlut_unit(lib, prec, entries).report(1.0);
      std::printf("%8d %8s | %10.1f %10.4f %8.2f | %12.6f\n", entries,
                  precision_name(prec), r.area_um2, r.power_mw, r.delay_ns, l1);
    }
  }

  const UnitReport ibert = build_ibert_unit(lib).report(1.0);
  std::printf("\nReference: I-BERT INT32 unit: %.1f um2, %.4f mW, %.2f ns\n",
              ibert.area_um2, ibert.power_mw, ibert.delay_ns);
  std::printf(
      "\nThe error column saturates around 16 entries while area keeps\n"
      "growing - the paper's chosen operating point.\n");
  return 0;
}
