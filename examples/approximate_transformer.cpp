// End-to-end drop-in replacement demo: train a small RoBERTa-style
// transformer on a synthetic sentiment task, then run inference with its
// GELU / Softmax / LayerNorm replaced by (a) NN-LUT and (b) the
// fixed-breakpoint Linear-LUT baseline, and compare accuracy.
#include <cstdio>

#include "approx/linear_lut.h"
#include "core/function_library.h"
#include "eval/pipeline.h"
#include "numerics/math.h"

int main() {
  using namespace nnlut;
  using transformer::ApproxSelection;
  using transformer::LutNonlinearities;
  using transformer::LutSet;

  // 1. Data + model.
  tasks::TaskGenOptions data_opts;
  data_opts.n_train = 2048;
  data_opts.n_dev = 384;
  data_opts.seq_len = 20;
  const tasks::TaskData task = tasks::make_task(tasks::TaskId::kSst2, data_opts);

  transformer::ModelConfig cfg = transformer::ModelConfig::roberta_like();
  cfg.vocab = 64;
  cfg.hidden = 48;
  cfg.layers = 2;
  cfg.heads = 4;
  cfg.ffn = 96;
  cfg.max_seq = 20;

  eval::TrainOptions topt;
  topt.epochs = 10;
  topt.verbose = true;
  std::printf("Training a %zu-layer transformer on the synthetic SST-2 task...\n",
              cfg.layers);
  const auto model = eval::train_model(task, cfg, topt);
  const double baseline = eval::evaluate_baseline(model, task);
  std::printf("\nBaseline (exact FP32 nonlinearities): %.1f%% accuracy\n",
              baseline);

  // 2. NN-LUT replacement (all three op families).
  const NnlutBundle bundle = train_bundle(16, FitPreset::kFast, 3);
  const LutSet nn_luts{bundle.gelu.lut, bundle.exp.lut, bundle.reciprocal.lut,
                       bundle.rsqrt.lut};
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::all();
  auto nn_backend = make_lut_backend(nn_luts, LutPrecision::kFp32, opt);
  const double nn_acc = eval::evaluate(model, task, *nn_backend);
  std::printf("NN-LUT (16 entries, all ops replaced): %.1f%%\n", nn_acc);

  // 3. Linear-LUT baseline.
  const LutSet lin_luts{fit_linear_lut(gelu_exact, kGeluRange, 16),
                        fit_linear_lut(exp_exact, kExpRange, 16),
                        fit_linear_lut(reciprocal_exact, kDivideRange, 16),
                        fit_linear_lut(rsqrt_exact, kRsqrtRange, 16)};
  auto lin_backend = make_lut_backend(lin_luts, LutPrecision::kFp32, opt);
  const double lin_acc = eval::evaluate(model, task, *lin_backend);
  std::printf("Linear-LUT (fixed breakpoints):        %.1f%%\n", lin_acc);

  std::printf(
      "\nNN-LUT keeps the trained model's accuracy while the fixed-\n"
      "breakpoint baseline degrades - the paper's Table 2(a) in miniature.\n");
  return 0;
}
