// Quickstart: the NN-LUT pipeline in ~40 lines.
//
//   1. Train a one-hidden-layer ReLU network to approximate GELU (Table 1
//      recipe: range (-5, 5), random init, Adam + L1).
//   2. Transform it into the exactly-equivalent 16-entry LUT (Eq. 7).
//   3. Evaluate: the LUT *is* the network, and both track exact GELU.
//
// Build & run:   ./examples/quickstart
#include <cmath>
#include <cstdio>

#include "core/function_library.h"
#include "core/transform.h"
#include "numerics/math.h"

int main() {
  using namespace nnlut;

  std::printf("Training a 15-neuron approximator for GELU...\n");
  const FittedLut fitted = fit_lut(TargetFn::kGelu, /*entries=*/16,
                                   FitPreset::kFast, /*seed=*/42);

  std::printf("Trained. Validation L1 error: %.5f\n", fitted.validation_l1);
  std::printf("LUT has %zu entries / %zu breakpoints.\n\n",
              fitted.lut.entries(), fitted.lut.breakpoints().size());

  std::printf("%8s %10s %10s %10s %12s\n", "x", "GELU(x)", "NN(x)", "LUT(x)",
              "|LUT-NN|");
  double worst_equiv = 0.0;
  for (float x = -5.0f; x <= 5.0f; x += 1.25f) {
    const float exact = gelu_exact(x);
    const float nn = fitted.net(x);
    const float lut = fitted.lut(x);
    worst_equiv = std::max(worst_equiv, static_cast<double>(std::abs(lut - nn)));
    std::printf("%8.2f %10.4f %10.4f %10.4f %12.2e\n", x, exact, nn, lut,
                std::abs(lut - nn));
  }

  std::printf(
      "\nThe transform is exact: max |LUT - NN| over the table above is "
      "%.2e.\n",
      worst_equiv);
  std::printf(
      "Deployment cost per evaluation: one comparator lookup + one multiply\n"
      "+ one add - the same hardware for GELU, EXP, DIV and 1/SQRT.\n");
  return 0;
}
