// 8-lane (AVX2) building blocks shared by the AVX2 tier TUs:
// lut_kernel_simd_avx2.cpp (-mavx2) and lut_kernel_simd_f16c.cpp
// (-mavx2 -mf16c). Everything is `static` for the same reason as
// lut_kernel_simd_detail.h: each TU gets its own copy compiled under its
// own -m flags, so the linker can never hand an AVX-containing copy to a
// generic TU. Both including TUs target the identical 8-lane ISA subset,
// and with -ffp-contract=off project-wide the copies are bit-identical.
//
// The comparator bank of Eq. 4 maps to `_mm256_cmp_ps(x, d_j, _CMP_NLT_UQ)`
// per breakpoint — one vector compare evaluates 8 comparators at once, and
// the mask-accumulate reproduces the scalar index formula (count of
// breakpoints with !(x < d), NaN landing in the padded tail) exactly.
// Bisection keeps the first (up to) 3 tree levels register-resident: 7 heap
// nodes in one register probed by vpermps, so each lane narrows to an
// 8-entry window before the first i32gather — the gather-latency hiding
// that turns AVX2 bisection from break-even into a win on gather-weak
// cores. Remaining levels gather one probe per step as before.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/lut_kernel_simd_detail.h"

#ifndef __AVX2__
#error "lut_kernel_simd_avx2_common.h requires -mavx2"
#endif
#include <immintrin.h>

namespace nnlut::simd::avx2detail {

// Lane masks for _mm256_maskload_*: window of k leading -1 lanes starting
// at kLaneMask + (8 - k).
alignas(32) static constexpr std::int32_t kLaneMask[16] = {-1, -1, -1, -1,
                                                           -1, -1, -1, -1,
                                                           0,  0,  0,  0,
                                                           0,  0,  0,  0};

static inline __m256i leading_lanes(std::size_t k) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kLaneMask + (8 - k)));
}

/// The register-resident top of a bisection tree: heap nodes 1..2^levels-1
/// of the breakpoint array in one 8-lane register (slot t-1 = node t),
/// built once per eval call by detail::fill_bisect_nodes.
struct ResidentTreePs {
  __m256 nodes;
  int levels;
};

struct ResidentTreeEpi32 {
  __m256i nodes;
  int levels;
};

static inline ResidentTreePs load_resident_tree_ps(const float* bp,
                                                   std::size_t nb) {
  alignas(32) float a[8] = {};
  const int levels = detail::fill_bisect_nodes(bp, nb, 3, a);
  return {_mm256_load_ps(a), levels};
}

static inline ResidentTreeEpi32 load_resident_tree_epi32(
    const std::int32_t* bp, std::size_t nb) {
  alignas(32) std::int32_t a[8] = {};
  const int levels = detail::fill_bisect_nodes(bp, nb, 3, a);
  return {_mm256_load_si256(reinterpret_cast<const __m256i*>(a)), levels};
}

/// Comparator-bank scan for 8 FP32 lanes (mask-accumulate, one broadcast
/// compare per breakpoint). _CMP_NLT_UQ is exactly !(x < d): true for
/// x >= d and for NaN.
static inline __m256i fp32_scan8(__m256 x, const float* bp, std::size_t nb) {
  __m256i idx = _mm256_setzero_si256();
  for (std::size_t j = 0; j < nb; ++j) {
    const __m256 d = _mm256_broadcast_ss(bp + j);
    const __m256i ge = _mm256_castps_si256(_mm256_cmp_ps(x, d, _CMP_NLT_UQ));
    idx = _mm256_sub_epi32(idx, ge);  // ge lanes are -1: subtract to count
  }
  return idx;
}

/// Branchless bisection for 8 FP32 lanes: the first rt.levels probes come
/// from the resident register (vpermps on the heap index), the rest gather.
/// Step for step this visits the same breakpoints as the scalar
/// bisect_index, so the selected segment is identical.
static inline __m256i fp32_bisect8(__m256 x, const float* bp, std::size_t nb,
                                   const ResidentTreePs& rt) {
  const __m256i one = _mm256_set1_epi32(1);
  __m256i pos = _mm256_setzero_si256();
  __m256i node = one;  // heap index of the next resident probe
  std::uint32_t step = static_cast<std::uint32_t>(nb + 1) >> 1;
  for (int l = 0; l < rt.levels; ++l, step >>= 1) {
    const __m256 d =
        _mm256_permutevar8x32_ps(rt.nodes, _mm256_sub_epi32(node, one));
    const __m256i ge = _mm256_castps_si256(_mm256_cmp_ps(x, d, _CMP_NLT_UQ));
    pos = _mm256_add_epi32(
        pos, _mm256_and_si256(ge, _mm256_set1_epi32(static_cast<int>(step))));
    node = _mm256_sub_epi32(_mm256_add_epi32(node, node), ge);  // 2t + (ge?1:0)
  }
  for (; step != 0; step >>= 1) {
    const __m256i probe =
        _mm256_add_epi32(pos, _mm256_set1_epi32(static_cast<int>(step) - 1));
    const __m256 d = _mm256_i32gather_ps(bp, probe, 4);
    const __m256i ge = _mm256_castps_si256(_mm256_cmp_ps(x, d, _CMP_NLT_UQ));
    pos = _mm256_add_epi32(
        pos, _mm256_and_si256(ge, _mm256_set1_epi32(static_cast<int>(step))));
  }
  return pos;
}

/// Comparator-bank scan for 8 quantized INT32 lanes (same selection
/// semantics on the integer grid; padded INT32_MAX sentinels never fire
/// because the quantizer saturates below them).
static inline __m256i int32_scan8(__m256i qx, const std::int32_t* bp,
                                  std::size_t nb) {
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t j = 0; j < nb; ++j) {
    const __m256i d = _mm256_set1_epi32(bp[j]);
    acc = _mm256_add_epi32(acc, _mm256_cmpgt_epi32(d, qx));  // -1 per x < d
  }
  return _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(nb)), acc);
}

/// Branchless bisection for 8 quantized INT32 lanes, resident top levels
/// then gathers, mirroring fp32_bisect8.
static inline __m256i int32_bisect8(__m256i qx, const std::int32_t* bp,
                                    std::size_t nb,
                                    const ResidentTreeEpi32& rt) {
  const __m256i one = _mm256_set1_epi32(1);
  __m256i pos = _mm256_setzero_si256();
  __m256i node = one;
  std::uint32_t step = static_cast<std::uint32_t>(nb + 1) >> 1;
  for (int l = 0; l < rt.levels; ++l, step >>= 1) {
    const __m256i d =
        _mm256_permutevar8x32_epi32(rt.nodes, _mm256_sub_epi32(node, one));
    const __m256i lt = _mm256_cmpgt_epi32(d, qx);
    pos = _mm256_add_epi32(
        pos,
        _mm256_andnot_si256(lt, _mm256_set1_epi32(static_cast<int>(step))));
    node = _mm256_add_epi32(_mm256_add_epi32(node, node),
                            _mm256_andnot_si256(lt, one));
  }
  for (; step != 0; step >>= 1) {
    const __m256i probe =
        _mm256_add_epi32(pos, _mm256_set1_epi32(static_cast<int>(step) - 1));
    const __m256i d = _mm256_i32gather_epi32(bp, probe, 4);
    const __m256i lt = _mm256_cmpgt_epi32(d, qx);
    pos = _mm256_add_epi32(
        pos,
        _mm256_andnot_si256(lt, _mm256_set1_epi32(static_cast<int>(step))));
  }
  return pos;
}

/// The quantizer of detail::int_quantize on 8 lanes, step for step:
/// q = x / sx (one correctly-rounded divide), round-half-away-from-zero
/// (exact: r = q - trunc(q) is exact by Sterbenz, |r| >= 0.5 decides the
/// away-step), NaN -> 0, clamp to +-kIntQClamp, truncating convert.
static inline __m256i int_quantize8(__m256 x, __m256 vsx) {
  const __m256 q = _mm256_div_ps(x, vsx);
  const __m256 tr = _mm256_round_ps(q, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
  const __m256 r = _mm256_sub_ps(q, tr);
  const __m256 sign_bit = _mm256_set1_ps(-0.0f);
  const __m256 away = _mm256_cmp_ps(_mm256_andnot_ps(sign_bit, r),
                                    _mm256_set1_ps(0.5f), _CMP_GE_OQ);
  const __m256 step = _mm256_or_ps(_mm256_and_ps(q, sign_bit),
                                   _mm256_set1_ps(1.0f));  // copysign(1, q)
  __m256 rounded = _mm256_add_ps(tr, _mm256_and_ps(away, step));
  rounded = _mm256_and_ps(rounded, _mm256_cmp_ps(q, q, _CMP_ORD_Q));
  rounded = _mm256_min_ps(rounded, _mm256_set1_ps(detail::kIntQClamp));
  rounded = _mm256_max_ps(rounded, _mm256_set1_ps(-detail::kIntQClamp));
  return _mm256_cvttps_epi32(rounded);
}

/// float(q_s * q_x + q_t) * so for 8 lanes. The product and sum run in
/// int64 (vpmuldq on sign-extended halves); int64 -> float goes through the
/// exact 2^52+2^51 bias trick into double, then one rounding cvtpd2ps.
static inline __m256 int_mac8(__m256i qs, __m256i qx, __m256i qt, __m256 vso) {
  const __m256i bias_i = _mm256_set1_epi64x(0x4338000000000000LL);
  const __m256d bias_d = _mm256_set1_pd(6755399441055744.0);  // 2^52 + 2^51
  __m128 f[2];
  for (int h = 0; h < 2; ++h) {
    const __m128i s32 = h == 0 ? _mm256_castsi256_si128(qs)
                               : _mm256_extracti128_si256(qs, 1);
    const __m128i x32 = h == 0 ? _mm256_castsi256_si128(qx)
                               : _mm256_extracti128_si256(qx, 1);
    const __m128i t32 = h == 0 ? _mm256_castsi256_si128(qt)
                               : _mm256_extracti128_si256(qt, 1);
    const __m256i prod = _mm256_mul_epi32(_mm256_cvtepi32_epi64(s32),
                                          _mm256_cvtepi32_epi64(x32));
    const __m256i acc = _mm256_add_epi64(prod, _mm256_cvtepi32_epi64(t32));
    const __m256d d = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_add_epi64(acc, bias_i)), bias_d);
    f[h] = _mm256_cvtpd_ps(d);
  }
  return _mm256_mul_ps(_mm256_set_m128(f[1], f[0]), vso);
}

}  // namespace nnlut::simd::avx2detail
