// AVX-512F tier of the LUT plan evaluators: 16 activations per register.
//
// Identical operation sequence to the AVX2 tier (and therefore to the
// scalar reference), twice the width, with two upgrades the ISA makes
// natural: comparator results live in mask registers (one k-reg per
// compare, accumulated with mask_add), and the whole 32-entry linear-scan
// class fetches (slope, intercept) with register permutes — vpermps for
// banks of <= 16 padded entries, vpermt2ps across a register pair for the
// full 32 — so the paper's comparator-bank-plus-one-MAC unit runs entirely
// in registers. Bisection tables gather one probe per step as before.
//
// The same ISA-invariance rules apply: explicit mul then add (no FMA), the
// exact round-half-away-from-zero quantizer, and int64 accumulators
// converted through the exact bias-to-double trick. Tails shorter than one
// vector run the shared scalar block (internal-linkage copy in this TU).
//
// Compiled with -mavx512f only when the toolchain supports it; dispatch
// requires CPUID avx512f before routing here.
#include <cstddef>
#include <cstdint>

#include "core/lut_kernel_simd.h"
#include "core/lut_kernel_simd_detail.h"

#ifndef __AVX512F__
#error "lut_kernel_simd_avx512.cpp must be compiled with -mavx512f"
#endif
#include <immintrin.h>

namespace nnlut::simd {
namespace {

/// Segment indices for 16 FP32 lanes; _CMP_NLT_UQ is exactly !(x < d).
inline __m512i fp32_indices(__m512 x, const float* bp, std::size_t nb,
                            bool linear) {
  if (linear) {
    const __m512i one = _mm512_set1_epi32(1);
    __m512i idx = _mm512_setzero_si512();
    for (std::size_t j = 0; j < nb; ++j) {
      const __m512 d = _mm512_set1_ps(bp[j]);
      const __mmask16 ge = _mm512_cmp_ps_mask(x, d, _CMP_NLT_UQ);
      idx = _mm512_mask_add_epi32(idx, ge, idx, one);
    }
    return idx;
  }
  __m512i pos = _mm512_setzero_si512();
  for (std::uint32_t step = static_cast<std::uint32_t>(nb + 1) >> 1; step != 0;
       step >>= 1) {
    const __m512i vstep = _mm512_set1_epi32(static_cast<int>(step));
    const __m512i probe =
        _mm512_add_epi32(pos, _mm512_set1_epi32(static_cast<int>(step) - 1));
    const __m512 d = _mm512_i32gather_ps(probe, bp, 4);
    const __mmask16 ge = _mm512_cmp_ps_mask(x, d, _CMP_NLT_UQ);
    pos = _mm512_mask_add_epi32(pos, ge, pos, vstep);
  }
  return pos;
}

/// Segment indices for 16 quantized INT32 lanes.
inline __m512i int32_indices(__m512i qx, const std::int32_t* bp,
                             std::size_t nb, bool linear) {
  if (linear) {
    const __m512i one = _mm512_set1_epi32(1);
    __m512i idx = _mm512_setzero_si512();
    for (std::size_t j = 0; j < nb; ++j) {
      const __m512i d = _mm512_set1_epi32(bp[j]);
      const __mmask16 ge = _mm512_cmp_epi32_mask(qx, d, _MM_CMPINT_NLT);
      idx = _mm512_mask_add_epi32(idx, ge, idx, one);
    }
    return idx;
  }
  __m512i pos = _mm512_setzero_si512();
  for (std::uint32_t step = static_cast<std::uint32_t>(nb + 1) >> 1; step != 0;
       step >>= 1) {
    const __m512i vstep = _mm512_set1_epi32(static_cast<int>(step));
    const __m512i probe =
        _mm512_add_epi32(pos, _mm512_set1_epi32(static_cast<int>(step) - 1));
    const __m512i d = _mm512_i32gather_epi32(probe, bp, 4);
    const __mmask16 ge = _mm512_cmp_epi32_mask(qx, d, _MM_CMPINT_NLT);
    pos = _mm512_mask_add_epi32(pos, ge, pos, vstep);
  }
  return pos;
}

/// detail::int_quantize on 16 lanes, step for step (see the AVX2 twin for
/// the exactness argument).
inline __m512i int_quantize16(__m512 x, __m512 vsx) {
  const __m512 q = _mm512_div_ps(x, vsx);
  const __m512 tr =
      _mm512_roundscale_ps(q, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
  const __m512 r = _mm512_sub_ps(q, tr);
  const __mmask16 away =
      _mm512_cmp_ps_mask(_mm512_abs_ps(r), _mm512_set1_ps(0.5f), _CMP_GE_OQ);
  const __m512i sign_bit = _mm512_set1_epi32(INT32_MIN);
  const __m512 step = _mm512_castsi512_ps(_mm512_or_epi32(
      _mm512_and_epi32(_mm512_castps_si512(q), sign_bit),
      _mm512_castps_si512(_mm512_set1_ps(1.0f))));  // copysign(1, q)
  __m512 rounded = _mm512_mask_add_ps(tr, away, tr, step);
  rounded =
      _mm512_maskz_mov_ps(_mm512_cmp_ps_mask(q, q, _CMP_ORD_Q), rounded);
  rounded = _mm512_min_ps(rounded, _mm512_set1_ps(detail::kIntQClamp));
  rounded = _mm512_max_ps(rounded, _mm512_set1_ps(-detail::kIntQClamp));
  return _mm512_cvttps_epi32(rounded);
}

/// float(q_s * q_x + q_t) * so for 16 lanes; int64 math on two 8-lane
/// halves, exact bias-to-double conversion, one rounding cvtpd2ps each.
inline __m512 int_mac16(__m512i qs, __m512i qx, __m512i qt, __m512 vso) {
  const __m512i bias_i = _mm512_set1_epi64(0x4338000000000000LL);
  const __m512d bias_d = _mm512_set1_pd(6755399441055744.0);  // 2^52 + 2^51
  __m256 f[2];
  for (int h = 0; h < 2; ++h) {
    const __m256i s32 = h == 0 ? _mm512_castsi512_si256(qs)
                               : _mm512_extracti64x4_epi64(qs, 1);
    const __m256i x32 = h == 0 ? _mm512_castsi512_si256(qx)
                               : _mm512_extracti64x4_epi64(qx, 1);
    const __m256i t32 = h == 0 ? _mm512_castsi512_si256(qt)
                               : _mm512_extracti64x4_epi64(qt, 1);
    const __m512i prod = _mm512_mul_epi32(_mm512_cvtepi32_epi64(s32),
                                          _mm512_cvtepi32_epi64(x32));
    const __m512i acc = _mm512_add_epi64(prod, _mm512_cvtepi32_epi64(t32));
    const __m512d d = _mm512_sub_pd(
        _mm512_castsi512_pd(_mm512_add_epi64(acc, bias_i)), bias_d);
    f[h] = _mm512_cvtpd_ps(d);
  }
  const __m512 lo = _mm512_castps256_ps512(f[0]);
  const __m512 hi = _mm512_castps256_ps512(f[1]);
  return _mm512_mul_ps(_mm512_shuffle_f32x4(lo, hi, 0x44), vso);
}

void avx512_fp32_eval(const float* bp, std::size_t nb, bool linear,
                      const float* s, const float* t, float* p,
                      std::size_t n) {
  std::size_t i = 0;
  if (nb == 0) {
    const __m512 vs = _mm512_set1_ps(s[0]);
    const __m512 vt = _mm512_set1_ps(t[0]);
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      _mm512_storeu_ps(p + i, _mm512_add_ps(_mm512_mul_ps(vs, x), vt));
    }
  } else if (nb + 1 <= 16) {
    const __mmask16 lanes =
        static_cast<__mmask16>((1u << (nb + 1)) - 1u);
    const __m512 vs = _mm512_maskz_loadu_ps(lanes, s);
    const __m512 vt = _mm512_maskz_loadu_ps(lanes, t);
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i idx = fp32_indices(x, bp, nb, /*linear=*/true);
      const __m512 ss = _mm512_permutexvar_ps(idx, vs);
      const __m512 tt = _mm512_permutexvar_ps(idx, vt);
      _mm512_storeu_ps(p + i, _mm512_add_ps(_mm512_mul_ps(ss, x), tt));
    }
  } else if (nb + 1 == 32) {
    // The whole linear-scan class stays in registers: a vpermt2ps across a
    // register pair covers padded banks of exactly 32 entries.
    const __m512 vs_lo = _mm512_loadu_ps(s);
    const __m512 vs_hi = _mm512_loadu_ps(s + 16);
    const __m512 vt_lo = _mm512_loadu_ps(t);
    const __m512 vt_hi = _mm512_loadu_ps(t + 16);
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i idx = fp32_indices(x, bp, nb, /*linear=*/true);
      const __m512 ss = _mm512_permutex2var_ps(vs_lo, idx, vs_hi);
      const __m512 tt = _mm512_permutex2var_ps(vt_lo, idx, vt_hi);
      _mm512_storeu_ps(p + i, _mm512_add_ps(_mm512_mul_ps(ss, x), tt));
    }
  } else {
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i idx = fp32_indices(x, bp, nb, linear);
      const __m512 ss = _mm512_i32gather_ps(idx, s, 4);
      const __m512 tt = _mm512_i32gather_ps(idx, t, 4);
      _mm512_storeu_ps(p + i, _mm512_add_ps(_mm512_mul_ps(ss, x), tt));
    }
  }
  if (i < n) detail::scalar_fp32_eval(bp, nb, linear, s, t, p + i, n - i);
}

void avx512_int32_eval(const std::int32_t* bp, std::size_t nb, bool linear,
                       const std::int32_t* s, const std::int32_t* t, float sx,
                       float so, float* p, std::size_t n) {
  const __m512 vsx = _mm512_set1_ps(sx);
  const __m512 vso = _mm512_set1_ps(so);
  std::size_t i = 0;
  if (nb != 0 && nb + 1 <= 16) {
    const __mmask16 lanes =
        static_cast<__mmask16>((1u << (nb + 1)) - 1u);
    const __m512i vs = _mm512_maskz_loadu_epi32(lanes, s);
    const __m512i vt = _mm512_maskz_loadu_epi32(lanes, t);
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i qx = int_quantize16(x, vsx);
      const __m512i idx = int32_indices(qx, bp, nb, /*linear=*/true);
      const __m512i qs = _mm512_permutexvar_epi32(idx, vs);
      const __m512i qt = _mm512_permutexvar_epi32(idx, vt);
      _mm512_storeu_ps(p + i, int_mac16(qs, qx, qt, vso));
    }
  } else if (nb + 1 == 32) {
    const __m512i vs_lo = _mm512_loadu_si512(s);
    const __m512i vs_hi = _mm512_loadu_si512(s + 16);
    const __m512i vt_lo = _mm512_loadu_si512(t);
    const __m512i vt_hi = _mm512_loadu_si512(t + 16);
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i qx = int_quantize16(x, vsx);
      const __m512i idx = int32_indices(qx, bp, nb, /*linear=*/true);
      const __m512i qs = _mm512_permutex2var_epi32(vs_lo, idx, vs_hi);
      const __m512i qt = _mm512_permutex2var_epi32(vt_lo, idx, vt_hi);
      _mm512_storeu_ps(p + i, int_mac16(qs, qx, qt, vso));
    }
  } else {
    const __m512i zero = _mm512_setzero_si512();
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i qx = int_quantize16(x, vsx);
      const __m512i idx = nb == 0 ? zero : int32_indices(qx, bp, nb, linear);
      const __m512i qs = _mm512_i32gather_epi32(idx, s, 4);
      const __m512i qt = _mm512_i32gather_epi32(idx, t, 4);
      _mm512_storeu_ps(p + i, int_mac16(qs, qx, qt, vso));
    }
  }
  if (i < n)
    detail::scalar_int32_eval(bp, nb, linear, s, t, sx, so, p + i, n - i);
}

}  // namespace

const SimdKernelOps& avx512_kernel_ops() {
  static constexpr SimdKernelOps ops{SimdTier::kAvx512, &avx512_fp32_eval,
                                     &avx512_int32_eval};
  return ops;
}

}  // namespace nnlut::simd
