// AVX-512F tier of the LUT plan evaluators: 16 activations per register.
//
// Identical operation sequence to the AVX2 tier (and therefore to the
// scalar reference), twice the width. The 16-lane primitives live in
// lut_kernel_simd_avx512_common.h, shared with the VNNI TU; this TU
// provides the FP32, FP16 and INT32 entry points the dispatch table
// installs for the avx512 tier. FP16 needs no extra ISA here: the 512-bit
// vcvtps2ph/vcvtph2ps forms are AVX-512F, so the binary16 rounding chain
// runs wide on every AVX-512 machine (bit-identical to numerics/half.h,
// NaN payloads and denormals included).
//
// The same ISA-invariance rules apply: explicit mul then add (no FMA), the
// exact round-half-away-from-zero quantizer, and int64 accumulators
// converted through the exact bias-to-double trick. Tails shorter than one
// vector run the shared scalar block (internal-linkage copy in this TU).
//
// Compiled with -mavx512f only when the toolchain supports it; dispatch
// requires CPUID avx512f before routing here.
#include <cstddef>
#include <cstdint>

#include "core/lut_kernel_simd.h"
#include "core/lut_kernel_simd_detail.h"

#ifndef __AVX512F__
#error "lut_kernel_simd_avx512.cpp must be compiled with -mavx512f"
#endif
#include "core/lut_kernel_simd_avx512_common.h"

namespace nnlut::simd {
namespace {

namespace a5 = avx512detail;

/// round_to_half on 16 lanes: one vcvtps2ph (round-to-nearest-even) and the
/// exact vcvtph2ps widen back. 512-bit forms are plain AVX-512F.
inline __m512 round16_to_half(__m512 v) {
  return _mm512_cvtph_ps(
      _mm512_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
}

/// detail::half_mac on 16 lanes: every intermediate rounds through binary16.
inline __m512 half_mac16(__m512 ss, __m512 xh, __m512 tt) {
  const __m512 m = round16_to_half(_mm512_mul_ps(ss, xh));
  return round16_to_half(_mm512_add_ps(m, tt));
}

}  // namespace

void avx512_fp32_eval(const float* bp, std::size_t nb, bool linear,
                      const float* s, const float* t, float* p,
                      std::size_t n) {
  std::size_t i = 0;
  if (nb == 0) {
    const __m512 vs = _mm512_set1_ps(s[0]);
    const __m512 vt = _mm512_set1_ps(t[0]);
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      _mm512_storeu_ps(p + i, _mm512_add_ps(_mm512_mul_ps(vs, x), vt));
    }
  } else if (nb + 1 <= 16) {
    const __mmask16 lanes = static_cast<__mmask16>((1u << (nb + 1)) - 1u);
    const __m512 vs = _mm512_maskz_loadu_ps(lanes, s);
    const __m512 vt = _mm512_maskz_loadu_ps(lanes, t);
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i idx = a5::fp32_scan16(x, bp, nb);
      const __m512 ss = _mm512_permutexvar_ps(idx, vs);
      const __m512 tt = _mm512_permutexvar_ps(idx, vt);
      _mm512_storeu_ps(p + i, _mm512_add_ps(_mm512_mul_ps(ss, x), tt));
    }
  } else if (nb + 1 == 32) {
    // The whole linear-scan class stays in registers: a vpermt2ps across a
    // register pair covers padded banks of exactly 32 entries.
    const __m512 vs_lo = _mm512_loadu_ps(s);
    const __m512 vs_hi = _mm512_loadu_ps(s + 16);
    const __m512 vt_lo = _mm512_loadu_ps(t);
    const __m512 vt_hi = _mm512_loadu_ps(t + 16);
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i idx = a5::fp32_scan16(x, bp, nb);
      const __m512 ss = _mm512_permutex2var_ps(vs_lo, idx, vs_hi);
      const __m512 tt = _mm512_permutex2var_ps(vt_lo, idx, vt_hi);
      _mm512_storeu_ps(p + i, _mm512_add_ps(_mm512_mul_ps(ss, x), tt));
    }
  } else if (linear) {
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i idx = a5::fp32_scan16(x, bp, nb);
      const __m512 ss = _mm512_i32gather_ps(idx, s, 4);
      const __m512 tt = _mm512_i32gather_ps(idx, t, 4);
      _mm512_storeu_ps(p + i, _mm512_add_ps(_mm512_mul_ps(ss, x), tt));
    }
  } else {
    const a5::ResidentTreePs rt = a5::load_resident_tree_ps(bp, nb);
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i idx = a5::fp32_bisect16(x, bp, nb, rt);
      const __m512 ss = _mm512_i32gather_ps(idx, s, 4);
      const __m512 tt = _mm512_i32gather_ps(idx, t, 4);
      _mm512_storeu_ps(p + i, _mm512_add_ps(_mm512_mul_ps(ss, x), tt));
    }
  }
  if (i < n) detail::scalar_fp32_eval(bp, nb, linear, s, t, p + i, n - i);
}

void avx512_fp16_eval(const float* bp, std::size_t nb, bool linear,
                      const float* s, const float* t, float* p,
                      std::size_t n) {
  std::size_t i = 0;
  if (nb == 0) {
    const __m512 vs = _mm512_set1_ps(s[0]);
    const __m512 vt = _mm512_set1_ps(t[0]);
    for (; i + 16 <= n; i += 16) {
      const __m512 xh = round16_to_half(_mm512_loadu_ps(p + i));
      _mm512_storeu_ps(p + i, half_mac16(vs, xh, vt));
    }
  } else if (nb + 1 <= 16) {
    const __mmask16 lanes = static_cast<__mmask16>((1u << (nb + 1)) - 1u);
    const __m512 vs = _mm512_maskz_loadu_ps(lanes, s);
    const __m512 vt = _mm512_maskz_loadu_ps(lanes, t);
    for (; i + 16 <= n; i += 16) {
      const __m512 xh = round16_to_half(_mm512_loadu_ps(p + i));
      const __m512i idx = a5::fp32_scan16(xh, bp, nb);
      const __m512 ss = _mm512_permutexvar_ps(idx, vs);
      const __m512 tt = _mm512_permutexvar_ps(idx, vt);
      _mm512_storeu_ps(p + i, half_mac16(ss, xh, tt));
    }
  } else if (nb + 1 == 32) {
    const __m512 vs_lo = _mm512_loadu_ps(s);
    const __m512 vs_hi = _mm512_loadu_ps(s + 16);
    const __m512 vt_lo = _mm512_loadu_ps(t);
    const __m512 vt_hi = _mm512_loadu_ps(t + 16);
    for (; i + 16 <= n; i += 16) {
      const __m512 xh = round16_to_half(_mm512_loadu_ps(p + i));
      const __m512i idx = a5::fp32_scan16(xh, bp, nb);
      const __m512 ss = _mm512_permutex2var_ps(vs_lo, idx, vs_hi);
      const __m512 tt = _mm512_permutex2var_ps(vt_lo, idx, vt_hi);
      _mm512_storeu_ps(p + i, half_mac16(ss, xh, tt));
    }
  } else if (linear) {
    for (; i + 16 <= n; i += 16) {
      const __m512 xh = round16_to_half(_mm512_loadu_ps(p + i));
      const __m512i idx = a5::fp32_scan16(xh, bp, nb);
      const __m512 ss = _mm512_i32gather_ps(idx, s, 4);
      const __m512 tt = _mm512_i32gather_ps(idx, t, 4);
      _mm512_storeu_ps(p + i, half_mac16(ss, xh, tt));
    }
  } else {
    const a5::ResidentTreePs rt = a5::load_resident_tree_ps(bp, nb);
    for (; i + 16 <= n; i += 16) {
      const __m512 xh = round16_to_half(_mm512_loadu_ps(p + i));
      const __m512i idx = a5::fp32_bisect16(xh, bp, nb, rt);
      const __m512 ss = _mm512_i32gather_ps(idx, s, 4);
      const __m512 tt = _mm512_i32gather_ps(idx, t, 4);
      _mm512_storeu_ps(p + i, half_mac16(ss, xh, tt));
    }
  }
  if (i < n) detail::scalar_fp16_eval(bp, nb, linear, s, t, p + i, n - i);
}

void avx512_int32_eval(const std::int32_t* bp, std::size_t nb, bool linear,
                       const std::int32_t* s, const std::int32_t* t, float sx,
                       float so, float* p, std::size_t n) {
  a5::int32_eval16(bp, nb, linear, s, t, sx, so, p, n, a5::Int64Mac{});
}

}  // namespace nnlut::simd
