// Shared scalar building blocks of the LUT plan evaluators.
//
// Included by the precision kernels (core/lut_kernel.cpp), the scalar
// dispatch tier, and the AVX2/AVX-512 translation units (which run these
// loops on sub-vector tails). Everything here has INTERNAL linkage on
// purpose: the SIMD TUs are compiled with -mavx2 / -mavx512f, and if these
// helpers had external linkage the linker could keep the copy containing
// AVX instructions and hand it to generic TUs — an illegal-instruction trap
// on narrower machines. `static` gives every TU its own copy compiled under
// its own flags; with floating-point contraction disabled project-wide
// (-ffp-contract=off, see CMakeLists.txt) all copies are bit-identical in
// behaviour.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "numerics/half.h"

namespace nnlut::simd::detail {

// Elements per indexing block: the element block plus the scratch index
// buffer stay in L1 between the scan pass and the MAC pass.
inline constexpr std::size_t kBlock = 512;

// Clamp bound of the float->int32 quantizer: the largest round magnitude
// still representable in int32 (so the cast below is always defined).
inline constexpr float kIntQClamp = 2.147e9f;

/// I-BERT-style quantization: round-half-away-from-zero, NaN -> 0,
/// saturating at +-kIntQClamp.
[[maybe_unused]] static inline std::int32_t int_quantize(float v,
                                                         float scale) {
  const float q = std::round(v / scale);
  if (std::isnan(q)) return 0;
  return static_cast<std::int32_t>(std::clamp(q, -kIntQClamp, kIntQClamp));
}

/// Branchless segment index: the number of breakpoints d with !(x < d),
/// which equals std::upper_bound(..) - begin for every input including NaN
/// (all comparisons true -> padded tail, which replicates the last segment).
/// Requires nb + 1 to be a power of two.
template <typename T, typename X>
static inline std::uint32_t bisect_index(const T* bp, std::size_t nb, X x) {
  std::uint32_t pos = 0;
  for (std::uint32_t step = static_cast<std::uint32_t>(nb + 1) >> 1; step != 0;
       step >>= 1) {
    if (!(x < bp[pos + step - 1])) pos += step;
  }
  return pos;
}

template <typename T, typename X>
static inline void fill_indices(const T* bp, std::size_t nb, bool linear,
                                const X* xs, std::size_t m,
                                std::uint32_t* idx) {
  if (linear) {
    for (std::size_t i = 0; i < m; ++i) idx[i] = 0;
    // Breakpoint-outer / element-inner: the inner loop is a contiguous
    // compare-and-accumulate the vectorizer handles; this is the software
    // shape of the hardware's parallel comparator bank.
    for (std::size_t j = 0; j < nb; ++j) {
      const T b = bp[j];
      for (std::size_t i = 0; i < m; ++i)
        idx[i] += static_cast<std::uint32_t>(!(xs[i] < b));
    }
  } else {
    for (std::size_t i = 0; i < m; ++i) idx[i] = bisect_index(bp, nb, xs[i]);
  }
}

/// Breakpoints of the first `max_levels` bisection-tree levels in
/// binary-heap order (slot t-1 holds heap node t): the register-resident
/// window the wide tiers probe with vpermps/vpermt2ps before the first
/// gather. Walking level l (1-based) from heap node t, the probed
/// breakpoint is bp[(2u+1)*step - 1] with u = t - 2^(l-1) and
/// step = (nb+1) >> l — the same sequence the scalar bisect_index visits.
/// Returns the number of levels filled (min of max_levels and the tree
/// depth); `out` slots past 2^levels - 1 are left untouched.
template <typename T>
static inline int fill_bisect_nodes(const T* bp, std::size_t nb,
                                    int max_levels, T* out) {
  int depth = 0;
  for (std::size_t p = nb + 1; p > 1; p >>= 1) ++depth;
  const int levels = depth < max_levels ? depth : max_levels;
  std::size_t t = 1;
  for (int l = 1; l <= levels; ++l) {
    const std::size_t step = (nb + 1) >> l;
    for (std::size_t u = 0; u < (std::size_t{1} << (l - 1)); ++u, ++t)
      out[t - 1] = bp[(2 * u + 1) * step - 1];
  }
  return levels;
}

/// FP16 MAC: every intermediate rounds through binary16. Operands must
/// already be binary16 values (exact in FP32).
[[maybe_unused]] static inline float half_mac(float s, float xh, float t) {
  return round_to_half(round_to_half(s * xh) + t);
}

/// True when the INT32 MAC of this padded table provably fits the VNNI
/// int16-pair contract for every representable quantized input: every
/// slope fits int16 and |q_s| * 2^15 + |q_t| stays within int32 (the
/// quantized input is range-checked per vector at run time — it must
/// itself fit int16, giving |q_x| <= 2^15). Tables failing this keep the
/// exact int64 MAC.
[[maybe_unused]] static inline bool int32_mac_fits_int16_pairs(
    const std::int32_t* s, const std::int32_t* t, std::size_t padded) {
  for (std::size_t e = 0; e < padded; ++e) {
    const std::int64_t as = s[e] < 0 ? -static_cast<std::int64_t>(s[e]) : s[e];
    const std::int64_t at = t[e] < 0 ? -static_cast<std::int64_t>(t[e]) : t[e];
    if (as > 32767 || as * 32768 + at > 2147483647) return false;
  }
  return true;
}

/// FP32 plan evaluation, scalar reference shape: blockwise index fill, then
/// a mul+add MAC per element. This IS the portable tier; the wide tiers
/// call it on tails shorter than one vector.
[[maybe_unused]] static inline void scalar_fp32_eval(
    const float* bp, std::size_t nb, bool linear, const float* s,
    const float* t, float* p, std::size_t n) {
  if (nb == 0) {
    const float s0 = s[0], t0 = t[0];
    for (std::size_t i = 0; i < n; ++i) p[i] = s0 * p[i] + t0;
    return;
  }
  std::uint32_t idx[kBlock];
  while (n != 0) {
    const std::size_t m = std::min(n, kBlock);
    fill_indices(bp, nb, linear, p, m, idx);
    for (std::size_t i = 0; i < m; ++i) p[i] = s[idx[i]] * p[i] + t[idx[i]];
    p += m;
    n -= m;
  }
}

/// FP16 plan evaluation, scalar reference shape: round inputs through
/// binary16, index on the half-rounded images, then the binary16 MAC. The
/// wide tiers replace the software rounding chain with vcvtps2ph/vcvtph2ps
/// round-trips (bit-identical — numerics/half.h matches the hardware
/// conversions exactly, NaN payloads included) and call this on tails.
[[maybe_unused]] static inline void scalar_fp16_eval(
    const float* bp, std::size_t nb, bool linear, const float* s,
    const float* t, float* p, std::size_t n) {
  float xh[kBlock];
  std::uint32_t idx[kBlock];
  while (n != 0) {
    const std::size_t m = std::min(n, kBlock);
    for (std::size_t i = 0; i < m; ++i) xh[i] = round_to_half(p[i]);
    if (nb == 0) {
      for (std::size_t i = 0; i < m; ++i) p[i] = half_mac(s[0], xh[i], t[0]);
    } else {
      fill_indices(bp, nb, linear, xh, m, idx);
      for (std::size_t i = 0; i < m; ++i)
        p[i] = half_mac(s[idx[i]], xh[i], t[idx[i]]);
    }
    p += m;
    n -= m;
  }
}

/// INT32 plan evaluation, scalar reference shape: quantize, index, integer
/// MAC, dequantize.
[[maybe_unused]] static inline void scalar_int32_eval(
    const std::int32_t* bp, std::size_t nb, bool linear, const std::int32_t* s,
    const std::int32_t* t, float sx, float so, float* p, std::size_t n) {
  std::int32_t qx[kBlock];
  std::uint32_t idx[kBlock];
  while (n != 0) {
    const std::size_t m = std::min(n, kBlock);
    for (std::size_t i = 0; i < m; ++i) qx[i] = int_quantize(p[i], sx);
    if (nb == 0) {
      for (std::size_t i = 0; i < m; ++i) idx[i] = 0;
    } else {
      fill_indices(bp, nb, linear, qx, m, idx);
    }
    for (std::size_t i = 0; i < m; ++i) {
      // Integer MAC. |q_s| <= 2^15 keeps the product in int64 for any
      // clamped q_x; int64 keeps the C++ arithmetic well-defined after the
      // intercept add.
      const std::int64_t acc = static_cast<std::int64_t>(s[idx[i]]) * qx[i] +
                               static_cast<std::int64_t>(t[idx[i]]);
      p[i] = static_cast<float>(acc) * so;
    }
    p += m;
    n -= m;
  }
}

}  // namespace nnlut::simd::detail
