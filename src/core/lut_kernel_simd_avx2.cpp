// AVX2 tier of the LUT plan evaluators: 8 activations per register.
//
// The 8-lane primitives (comparator-bank scan, register-resident bisection,
// exact quantizer, int64 MAC) live in lut_kernel_simd_avx2_common.h, shared
// with the F16C FP16 TU. This TU provides the FP32 and INT32 entry points
// the dispatch table installs for the avx2 tier. (Slope, intercept) fetch
// is a vpermps register permute when the padded bank fits one register
// (<= 8 entries) and a _mm256_i32gather_ps / _epi32 gather otherwise;
// tables past the 32-entry linear-scan cutoff use branchless uniform
// bisection with the first tree levels register-resident.
//
// ISA-invariance: the MAC is an explicit mul then add (never FMA — the
// single-rounding contraction would break bit-identity with the scalar
// tier), the INT32 quantizer reproduces round-half-away-from-zero through
// exact trunc/remainder steps, and int64 accumulators convert to float via
// an exact int64->double bias trick + one correctly-rounded cvtpd2ps, which
// equals the scalar static_cast<float>(int64). Tails shorter than one
// vector run the shared scalar block (internal-linkage copy in this TU).
//
// This TU is compiled with -mavx2 only when the toolchain supports it; the
// dispatch TU never calls into it unless CPUID reports AVX2.
#include <cstddef>
#include <cstdint>

#include "core/lut_kernel_simd.h"
#include "core/lut_kernel_simd_detail.h"

#ifndef __AVX2__
#error "lut_kernel_simd_avx2.cpp must be compiled with -mavx2"
#endif
#include "core/lut_kernel_simd_avx2_common.h"

namespace nnlut::simd {

namespace a2 = avx2detail;

void avx2_fp32_eval(const float* bp, std::size_t nb, bool linear,
                    const float* s, const float* t, float* p, std::size_t n) {
  std::size_t i = 0;
  if (nb == 0) {
    const __m256 vs = _mm256_broadcast_ss(s);
    const __m256 vt = _mm256_broadcast_ss(t);
    for (; i + 8 <= n; i += 8) {
      const __m256 x = _mm256_loadu_ps(p + i);
      _mm256_storeu_ps(p + i, _mm256_add_ps(_mm256_mul_ps(vs, x), vt));
    }
  } else if (nb + 1 <= 8) {
    // The whole padded bank fits one register: fetch by permute.
    const __m256i lanes = a2::leading_lanes(nb + 1);
    const __m256 vs = _mm256_maskload_ps(s, lanes);
    const __m256 vt = _mm256_maskload_ps(t, lanes);
    for (; i + 8 <= n; i += 8) {
      const __m256 x = _mm256_loadu_ps(p + i);
      const __m256i idx = a2::fp32_scan8(x, bp, nb);
      const __m256 ss = _mm256_permutevar8x32_ps(vs, idx);
      const __m256 tt = _mm256_permutevar8x32_ps(vt, idx);
      _mm256_storeu_ps(p + i, _mm256_add_ps(_mm256_mul_ps(ss, x), tt));
    }
  } else if (linear) {
    for (; i + 8 <= n; i += 8) {
      const __m256 x = _mm256_loadu_ps(p + i);
      const __m256i idx = a2::fp32_scan8(x, bp, nb);
      const __m256 ss = _mm256_i32gather_ps(s, idx, 4);
      const __m256 tt = _mm256_i32gather_ps(t, idx, 4);
      _mm256_storeu_ps(p + i, _mm256_add_ps(_mm256_mul_ps(ss, x), tt));
    }
  } else {
    const a2::ResidentTreePs rt = a2::load_resident_tree_ps(bp, nb);
    for (; i + 8 <= n; i += 8) {
      const __m256 x = _mm256_loadu_ps(p + i);
      const __m256i idx = a2::fp32_bisect8(x, bp, nb, rt);
      const __m256 ss = _mm256_i32gather_ps(s, idx, 4);
      const __m256 tt = _mm256_i32gather_ps(t, idx, 4);
      _mm256_storeu_ps(p + i, _mm256_add_ps(_mm256_mul_ps(ss, x), tt));
    }
  }
  if (i < n) detail::scalar_fp32_eval(bp, nb, linear, s, t, p + i, n - i);
}

void avx2_int32_eval(const std::int32_t* bp, std::size_t nb, bool linear,
                     const std::int32_t* s, const std::int32_t* t, float sx,
                     float so, float* p, std::size_t n) {
  const __m256 vsx = _mm256_set1_ps(sx);
  const __m256 vso = _mm256_set1_ps(so);
  std::size_t i = 0;
  if (nb + 1 <= 8 && nb != 0) {
    const __m256i lanes = a2::leading_lanes(nb + 1);
    const __m256i vs = _mm256_maskload_epi32(s, lanes);
    const __m256i vt = _mm256_maskload_epi32(t, lanes);
    for (; i + 8 <= n; i += 8) {
      const __m256 x = _mm256_loadu_ps(p + i);
      const __m256i qx = a2::int_quantize8(x, vsx);
      const __m256i idx = a2::int32_scan8(qx, bp, nb);
      const __m256i qs = _mm256_permutevar8x32_epi32(vs, idx);
      const __m256i qt = _mm256_permutevar8x32_epi32(vt, idx);
      _mm256_storeu_ps(p + i, a2::int_mac8(qs, qx, qt, vso));
    }
  } else if (nb == 0 || linear) {
    const __m256i zero = _mm256_setzero_si256();
    for (; i + 8 <= n; i += 8) {
      const __m256 x = _mm256_loadu_ps(p + i);
      const __m256i qx = a2::int_quantize8(x, vsx);
      const __m256i idx = nb == 0 ? zero : a2::int32_scan8(qx, bp, nb);
      const __m256i qs = _mm256_i32gather_epi32(s, idx, 4);
      const __m256i qt = _mm256_i32gather_epi32(t, idx, 4);
      _mm256_storeu_ps(p + i, a2::int_mac8(qs, qx, qt, vso));
    }
  } else {
    const a2::ResidentTreeEpi32 rt = a2::load_resident_tree_epi32(bp, nb);
    for (; i + 8 <= n; i += 8) {
      const __m256 x = _mm256_loadu_ps(p + i);
      const __m256i qx = a2::int_quantize8(x, vsx);
      const __m256i idx = a2::int32_bisect8(qx, bp, nb, rt);
      const __m256i qs = _mm256_i32gather_epi32(s, idx, 4);
      const __m256i qt = _mm256_i32gather_epi32(t, idx, 4);
      _mm256_storeu_ps(p + i, a2::int_mac8(qs, qx, qt, vso));
    }
  }
  if (i < n)
    detail::scalar_int32_eval(bp, nb, linear, s, t, sx, so, p + i, n - i);
}

}  // namespace nnlut::simd
