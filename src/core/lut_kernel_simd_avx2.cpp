// AVX2 tier of the LUT plan evaluators: 8 activations per register.
//
// The comparator bank of Eq. 4 maps to `_mm256_cmp_ps(x, d_j, _CMP_NLT_UQ)`
// per breakpoint — one vector compare evaluates 8 comparators at once, and
// the mask-accumulate reproduces the scalar index formula (count of
// breakpoints with !(x < d), NaN landing in the padded tail) exactly.
// (Slope, intercept) fetch is a `vpermps` register permute when the padded
// bank fits one register (<= 8 entries) and a `_mm256_i32gather_ps` / `_epi32`
// gather otherwise; tables past the 32-entry linear-scan cutoff use the same
// branchless uniform bisection as the scalar plan, one gather per step.
//
// ISA-invariance: the MAC is an explicit mul then add (never FMA — the
// single-rounding contraction would break bit-identity with the scalar
// tier), the INT32 quantizer reproduces round-half-away-from-zero through
// exact trunc/remainder steps, and int64 accumulators convert to float via
// an exact int64->double bias trick + one correctly-rounded cvtpd2ps, which
// equals the scalar static_cast<float>(int64). Tails shorter than one
// vector run the shared scalar block (internal-linkage copy in this TU).
//
// This TU is compiled with -mavx2 only when the toolchain supports it; the
// dispatch TU never calls into it unless CPUID reports AVX2.
#include <cstddef>
#include <cstdint>

#include "core/lut_kernel_simd.h"
#include "core/lut_kernel_simd_detail.h"

#ifndef __AVX2__
#error "lut_kernel_simd_avx2.cpp must be compiled with -mavx2"
#endif
#include <immintrin.h>

namespace nnlut::simd {
namespace {

// Lane masks for _mm256_maskload_*: window of k leading -1 lanes starting
// at kLaneMask + (8 - k).
alignas(32) constexpr std::int32_t kLaneMask[16] = {-1, -1, -1, -1, -1, -1,
                                                    -1, -1, 0,  0,  0,  0,
                                                    0,  0,  0,  0};

inline __m256i leading_lanes(std::size_t k) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kLaneMask + (8 - k)));
}

/// Segment indices for 8 FP32 lanes: comparator-bank scan (mask-accumulate,
/// one broadcast compare per breakpoint) or branchless bisection (one
/// gather + compare per step). _CMP_NLT_UQ is exactly !(x < d): true for
/// x >= d and for NaN.
inline __m256i fp32_indices(__m256 x, const float* bp, std::size_t nb,
                            bool linear) {
  if (linear) {
    __m256i idx = _mm256_setzero_si256();
    for (std::size_t j = 0; j < nb; ++j) {
      const __m256 d = _mm256_broadcast_ss(bp + j);
      const __m256i ge =
          _mm256_castps_si256(_mm256_cmp_ps(x, d, _CMP_NLT_UQ));
      idx = _mm256_sub_epi32(idx, ge);  // ge lanes are -1: subtract to count
    }
    return idx;
  }
  __m256i pos = _mm256_setzero_si256();
  for (std::uint32_t step = static_cast<std::uint32_t>(nb + 1) >> 1; step != 0;
       step >>= 1) {
    const __m256i probe =
        _mm256_add_epi32(pos, _mm256_set1_epi32(static_cast<int>(step) - 1));
    const __m256 d = _mm256_i32gather_ps(bp, probe, 4);
    const __m256i ge = _mm256_castps_si256(_mm256_cmp_ps(x, d, _CMP_NLT_UQ));
    pos = _mm256_add_epi32(
        pos, _mm256_and_si256(ge, _mm256_set1_epi32(static_cast<int>(step))));
  }
  return pos;
}

/// Segment indices for 8 quantized INT32 lanes (same selection semantics on
/// the integer grid; padded INT32_MAX sentinels never fire because the
/// quantizer saturates below them).
inline __m256i int32_indices(__m256i qx, const std::int32_t* bp,
                             std::size_t nb, bool linear) {
  if (linear) {
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t j = 0; j < nb; ++j) {
      const __m256i d = _mm256_set1_epi32(bp[j]);
      acc = _mm256_add_epi32(acc, _mm256_cmpgt_epi32(d, qx));  // -1 per x < d
    }
    return _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(nb)), acc);
  }
  __m256i pos = _mm256_setzero_si256();
  for (std::uint32_t step = static_cast<std::uint32_t>(nb + 1) >> 1; step != 0;
       step >>= 1) {
    const __m256i probe =
        _mm256_add_epi32(pos, _mm256_set1_epi32(static_cast<int>(step) - 1));
    const __m256i d = _mm256_i32gather_epi32(bp, probe, 4);
    const __m256i lt = _mm256_cmpgt_epi32(d, qx);
    pos = _mm256_add_epi32(
        pos,
        _mm256_andnot_si256(lt, _mm256_set1_epi32(static_cast<int>(step))));
  }
  return pos;
}

/// The quantizer of detail::int_quantize on 8 lanes, step for step:
/// q = x / sx (one correctly-rounded divide), round-half-away-from-zero
/// (exact: r = q - trunc(q) is exact by Sterbenz, |r| >= 0.5 decides the
/// away-step), NaN -> 0, clamp to +-kIntQClamp, truncating convert.
inline __m256i int_quantize8(__m256 x, __m256 vsx) {
  const __m256 q = _mm256_div_ps(x, vsx);
  const __m256 tr =
      _mm256_round_ps(q, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
  const __m256 r = _mm256_sub_ps(q, tr);
  const __m256 sign_bit = _mm256_set1_ps(-0.0f);
  const __m256 away = _mm256_cmp_ps(_mm256_andnot_ps(sign_bit, r),
                                    _mm256_set1_ps(0.5f), _CMP_GE_OQ);
  const __m256 step = _mm256_or_ps(_mm256_and_ps(q, sign_bit),
                                   _mm256_set1_ps(1.0f));  // copysign(1, q)
  __m256 rounded = _mm256_add_ps(tr, _mm256_and_ps(away, step));
  rounded = _mm256_and_ps(rounded, _mm256_cmp_ps(q, q, _CMP_ORD_Q));
  rounded = _mm256_min_ps(rounded, _mm256_set1_ps(detail::kIntQClamp));
  rounded = _mm256_max_ps(rounded, _mm256_set1_ps(-detail::kIntQClamp));
  return _mm256_cvttps_epi32(rounded);
}

/// float(q_s * q_x + q_t) * so for 8 lanes. The product and sum run in
/// int64 (vpmuldq on sign-extended halves); int64 -> float goes through the
/// exact 2^52+2^51 bias trick into double, then one rounding cvtpd2ps.
inline __m256 int_mac8(__m256i qs, __m256i qx, __m256i qt, __m256 vso) {
  const __m256i bias_i = _mm256_set1_epi64x(0x4338000000000000LL);
  const __m256d bias_d = _mm256_set1_pd(6755399441055744.0);  // 2^52 + 2^51
  __m128 f[2];
  for (int h = 0; h < 2; ++h) {
    const __m128i s32 = h == 0 ? _mm256_castsi256_si128(qs)
                               : _mm256_extracti128_si256(qs, 1);
    const __m128i x32 = h == 0 ? _mm256_castsi256_si128(qx)
                               : _mm256_extracti128_si256(qx, 1);
    const __m128i t32 = h == 0 ? _mm256_castsi256_si128(qt)
                               : _mm256_extracti128_si256(qt, 1);
    const __m256i prod = _mm256_mul_epi32(_mm256_cvtepi32_epi64(s32),
                                          _mm256_cvtepi32_epi64(x32));
    const __m256i acc = _mm256_add_epi64(prod, _mm256_cvtepi32_epi64(t32));
    const __m256d d = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_add_epi64(acc, bias_i)), bias_d);
    f[h] = _mm256_cvtpd_ps(d);
  }
  return _mm256_mul_ps(_mm256_set_m128(f[1], f[0]), vso);
}

void avx2_fp32_eval(const float* bp, std::size_t nb, bool linear,
                    const float* s, const float* t, float* p, std::size_t n) {
  std::size_t i = 0;
  if (nb == 0) {
    const __m256 vs = _mm256_broadcast_ss(s);
    const __m256 vt = _mm256_broadcast_ss(t);
    for (; i + 8 <= n; i += 8) {
      const __m256 x = _mm256_loadu_ps(p + i);
      _mm256_storeu_ps(p + i, _mm256_add_ps(_mm256_mul_ps(vs, x), vt));
    }
  } else if (nb + 1 <= 8) {
    // The whole padded bank fits one register: fetch by permute.
    const __m256i lanes = leading_lanes(nb + 1);
    const __m256 vs = _mm256_maskload_ps(s, lanes);
    const __m256 vt = _mm256_maskload_ps(t, lanes);
    for (; i + 8 <= n; i += 8) {
      const __m256 x = _mm256_loadu_ps(p + i);
      const __m256i idx = fp32_indices(x, bp, nb, /*linear=*/true);
      const __m256 ss = _mm256_permutevar8x32_ps(vs, idx);
      const __m256 tt = _mm256_permutevar8x32_ps(vt, idx);
      _mm256_storeu_ps(p + i, _mm256_add_ps(_mm256_mul_ps(ss, x), tt));
    }
  } else {
    for (; i + 8 <= n; i += 8) {
      const __m256 x = _mm256_loadu_ps(p + i);
      const __m256i idx = fp32_indices(x, bp, nb, linear);
      const __m256 ss = _mm256_i32gather_ps(s, idx, 4);
      const __m256 tt = _mm256_i32gather_ps(t, idx, 4);
      _mm256_storeu_ps(p + i, _mm256_add_ps(_mm256_mul_ps(ss, x), tt));
    }
  }
  if (i < n) detail::scalar_fp32_eval(bp, nb, linear, s, t, p + i, n - i);
}

void avx2_int32_eval(const std::int32_t* bp, std::size_t nb, bool linear,
                     const std::int32_t* s, const std::int32_t* t, float sx,
                     float so, float* p, std::size_t n) {
  const __m256 vsx = _mm256_set1_ps(sx);
  const __m256 vso = _mm256_set1_ps(so);
  std::size_t i = 0;
  if (nb + 1 <= 8 && nb != 0) {
    const __m256i lanes = leading_lanes(nb + 1);
    const __m256i vs = _mm256_maskload_epi32(s, lanes);
    const __m256i vt = _mm256_maskload_epi32(t, lanes);
    for (; i + 8 <= n; i += 8) {
      const __m256 x = _mm256_loadu_ps(p + i);
      const __m256i qx = int_quantize8(x, vsx);
      const __m256i idx = int32_indices(qx, bp, nb, /*linear=*/true);
      const __m256i qs = _mm256_permutevar8x32_epi32(vs, idx);
      const __m256i qt = _mm256_permutevar8x32_epi32(vt, idx);
      _mm256_storeu_ps(p + i, int_mac8(qs, qx, qt, vso));
    }
  } else {
    const __m256i zero = _mm256_setzero_si256();
    for (; i + 8 <= n; i += 8) {
      const __m256 x = _mm256_loadu_ps(p + i);
      const __m256i qx = int_quantize8(x, vsx);
      const __m256i idx = nb == 0 ? zero : int32_indices(qx, bp, nb, linear);
      const __m256i qs = _mm256_i32gather_epi32(s, idx, 4);
      const __m256i qt = _mm256_i32gather_epi32(t, idx, 4);
      _mm256_storeu_ps(p + i, int_mac8(qs, qx, qt, vso));
    }
  }
  if (i < n)
    detail::scalar_int32_eval(bp, nb, linear, s, t, sx, so, p + i, n - i);
}

}  // namespace

const SimdKernelOps& avx2_kernel_ops() {
  static constexpr SimdKernelOps ops{SimdTier::kAvx2, &avx2_fp32_eval,
                                     &avx2_int32_eval};
  return ops;
}

}  // namespace nnlut::simd
