// Drop-in replacements for the transformer's non-linear operations, composed
// from scalar approximators exactly as the paper deploys them:
//   GELU      -> one LUT on (-5, 5)
//   Softmax   -> EXP LUT on (x - max) plus a reciprocal ("Divide") LUT on the
//                normalizer (Sec. 3.3.1, Table 1)
//   LayerNorm -> exact mean/variance (MAC-array work) plus a 1/SQRT LUT with
//                power-of-two input scaling for small variances (Sec. 3.3.2)
//
// All three ops are batch-granular: single-row entry points feed one span
// through the backend's batched primitive, and the rows() entry points
// evaluate a whole [rows x cols] block with one backend call per LUT (all
// shifted logits through the EXP LUT at once, all row normalizers through
// the Divide LUT at once, all row variances through the 1/SQRT LUT at once).
#pragma once

#include <cmath>
#include <optional>
#include <span>

#include "core/scalar_fn.h"
#include "numerics/math.h"

namespace nnlut {

/// Element-wise GELU replacement.
class GeluApprox {
 public:
  explicit GeluApprox(const ScalarFn& fn) : fn_(&fn) {}
  void operator()(std::span<float> row) const { fn_->eval_inplace(row); }
  float eval(float x) const { return fn_->eval(x); }

 private:
  const ScalarFn* fn_;
};

/// Softmax replacement: y_i = explut(x_i - max) * reciplut(sum_j explut(...)).
///
/// Inputs to the EXP LUT are clipped to `exp_clip` (default: the Table-1
/// training range). The paper's hardware assumes inputs pre-scaled to the
/// unit's covered range (Sec. 5.1); exp(-256) underflows FP32 anyway, so the
/// clip changes nothing mathematically but keeps linear extrapolation of the
/// leftmost segment from injecting garbage for extreme logits.
class SoftmaxApprox {
 public:
  SoftmaxApprox(const ScalarFn& exp_fn, const ScalarFn& recip_fn,
                InputRange exp_clip = kExpRange)
      : exp_fn_(&exp_fn), recip_fn_(&recip_fn), exp_clip_(exp_clip) {}

  /// One row, in place.
  void operator()(std::span<float> row) const;

  /// `nrows` contiguous rows of length `ncols`, in place. Row blocks are
  /// sharded across the runtime thread pool (rows are independent, so the
  /// result is bit-identical for any pool size); each block runs one EXP LUT
  /// call over all its shifted logits and one Divide LUT call over all its
  /// normalizers.
  void rows(std::span<float> data, std::size_t nrows, std::size_t ncols) const;

 private:
  void rows_block(float* data, std::size_t nrows, std::size_t ncols) const;

  const ScalarFn* exp_fn_;
  const ScalarFn* recip_fn_;
  InputRange exp_clip_;
};

/// LayerNorm replacement. Mean/variance stay exact (they are dot products the
/// MAC array computes); only 1/sqrt(var + eps) goes through the LUT.
///
/// Input scaling (Sec. 3.3.2): the LUT is trained on (0.1, 1024). When the
/// variance v < 1, evaluate lut(v * S) * sqrt(S) with S = 2^10 so the LUT
/// only ever sees its well-trained monotonous range; S power-of-two makes
/// the scaling a bit-shift in hardware.
class LayerNormApprox {
 public:
  struct Options {
    bool input_scaling = true;
    float scale = 1024.0f;  // S = 2^10
    float eps = 1e-5f;
    // Disable when the rsqrt ScalarFn is stateful (e.g. a CapturingFn whose
    // sink must see rows in order from one thread): rows() then runs the
    // whole block on the calling thread instead of sharding it.
    bool allow_parallel = true;
  };

  explicit LayerNormApprox(const ScalarFn& rsqrt_fn)
      : rsqrt_fn_(&rsqrt_fn), opt_() {}
  LayerNormApprox(const ScalarFn& rsqrt_fn, Options opt)
      : rsqrt_fn_(&rsqrt_fn), opt_(opt) {}

  void operator()(std::span<const float> x, std::span<float> y,
                  std::span<const float> gamma,
                  std::span<const float> beta) const;

  /// `nrows` contiguous rows of length `ncols`, sharded row-blockwise across
  /// the runtime thread pool (bit-identical for any pool size): each block
  /// computes exact per-row mean/variance, then ONE 1/SQRT LUT call over all
  /// its row variances.
  void rows(std::span<const float> x, std::span<float> y, std::size_t nrows,
            std::size_t ncols, std::span<const float> gamma,
            std::span<const float> beta) const;

  /// The (possibly input-scaled) 1/sqrt evaluation on variance v.
  float inv_std(float v) const;

 private:
  void rows_block(const float* x, float* y, std::size_t nrows,
                  std::size_t ncols, std::span<const float> gamma,
                  std::span<const float> beta) const;

  const ScalarFn* rsqrt_fn_;
  Options opt_;
};

}  // namespace nnlut
