// F16C FP16 path of the AVX2 tier: 8 activations per register.
//
// The FP16 plan stores FP32 images of half-rounded constants and rounds
// every MAC intermediate through binary16. The scalar path does that with
// the software conversions in numerics/half.h; this TU replaces the
// rounding chain with vcvtps2ph/vcvtph2ps round-trips
// (_MM_FROUND_TO_NEAREST_INT), which numerics/half.h matches bit for bit —
// including denormals, NaN payload propagation and the quieting of
// signaling NaNs (verified exhaustively over all 2^32 float and 2^16 half
// patterns). The comparator scan runs on the FP32 images of the
// half-rounded inputs (half -> float is exact, so compares match), reusing
// the 8-lane index helpers shared with the plain AVX2 TU, including the
// register-resident bisection top levels.
//
// Per element the chain is: xh = h2f(f2h(x)); m = f2h(s * xh);
// out = f2h(h2f(m) + t) widened — exactly detail::half_mac. The mul and
// add are explicit (no FMA) and each intermediate is materialized through
// packed binary16, so the wide path is bit-identical to forced scalar.
//
// This TU is compiled with -mavx2 -mf16c only when the toolchain supports
// both; the dispatch TU installs this entry in the avx2 tier's FP16 slot
// only when CPUID also reports f16c (the AVX-512 tiers use the native
// 512-bit conversion forms instead and never route here).
#include <cstddef>
#include <cstdint>

#include "core/lut_kernel_simd.h"
#include "core/lut_kernel_simd_detail.h"

#if !defined(__AVX2__) || !defined(__F16C__)
#error "lut_kernel_simd_f16c.cpp must be compiled with -mavx2 -mf16c"
#endif
#include "core/lut_kernel_simd_avx2_common.h"

namespace nnlut::simd {
namespace {

namespace a2 = avx2detail;

/// round_to_half on 8 lanes: one vcvtps2ph (round-to-nearest-even) and the
/// exact vcvtph2ps widen back.
inline __m256 round8_to_half(__m256 v) {
  return _mm256_cvtph_ps(
      _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
}

/// detail::half_mac on 8 lanes: every intermediate rounds through binary16.
inline __m256 half_mac8(__m256 ss, __m256 xh, __m256 tt) {
  const __m256 m = round8_to_half(_mm256_mul_ps(ss, xh));
  return round8_to_half(_mm256_add_ps(m, tt));
}

}  // namespace

void f16c_fp16_eval(const float* bp, std::size_t nb, bool linear,
                    const float* s, const float* t, float* p, std::size_t n) {
  std::size_t i = 0;
  if (nb == 0) {
    const __m256 vs = _mm256_broadcast_ss(s);
    const __m256 vt = _mm256_broadcast_ss(t);
    for (; i + 8 <= n; i += 8) {
      const __m256 xh = round8_to_half(_mm256_loadu_ps(p + i));
      _mm256_storeu_ps(p + i, half_mac8(vs, xh, vt));
    }
  } else if (nb + 1 <= 8) {
    const __m256i lanes = a2::leading_lanes(nb + 1);
    const __m256 vs = _mm256_maskload_ps(s, lanes);
    const __m256 vt = _mm256_maskload_ps(t, lanes);
    for (; i + 8 <= n; i += 8) {
      const __m256 xh = round8_to_half(_mm256_loadu_ps(p + i));
      const __m256i idx = a2::fp32_scan8(xh, bp, nb);
      const __m256 ss = _mm256_permutevar8x32_ps(vs, idx);
      const __m256 tt = _mm256_permutevar8x32_ps(vt, idx);
      _mm256_storeu_ps(p + i, half_mac8(ss, xh, tt));
    }
  } else if (linear) {
    for (; i + 8 <= n; i += 8) {
      const __m256 xh = round8_to_half(_mm256_loadu_ps(p + i));
      const __m256i idx = a2::fp32_scan8(xh, bp, nb);
      const __m256 ss = _mm256_i32gather_ps(s, idx, 4);
      const __m256 tt = _mm256_i32gather_ps(t, idx, 4);
      _mm256_storeu_ps(p + i, half_mac8(ss, xh, tt));
    }
  } else {
    const a2::ResidentTreePs rt = a2::load_resident_tree_ps(bp, nb);
    for (; i + 8 <= n; i += 8) {
      const __m256 xh = round8_to_half(_mm256_loadu_ps(p + i));
      const __m256i idx = a2::fp32_bisect8(xh, bp, nb, rt);
      const __m256 ss = _mm256_i32gather_ps(s, idx, 4);
      const __m256 tt = _mm256_i32gather_ps(t, idx, 4);
      _mm256_storeu_ps(p + i, half_mac8(ss, xh, tt));
    }
  }
  if (i < n) detail::scalar_fp16_eval(bp, nb, linear, s, t, p + i, n - i);
}

}  // namespace nnlut::simd
