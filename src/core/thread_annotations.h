// Compile-time concurrency contract: Clang thread-safety annotations plus
// the project's annotated synchronization vocabulary.
//
// The determinism contract (docs/ARCHITECTURE.md) leans on lock discipline:
// every shared field of the serving stack is owned by exactly one mutex,
// and a field touched outside its guard is a latent race that can turn
// bit-identical logits into timing-dependent ones. Clang's -Wthread-safety
// analysis proves that discipline at compile time — IF it can see the
// locks. libstdc++'s std::mutex / std::lock_guard carry no annotations and
// are invisible to the analysis, so this header provides zero-cost
// annotated wrappers (Mutex, SharedMutex, MutexLock, UniqueLock,
// ReaderLock, WriterLock, CondVar) that all of src/ uses instead of the
// raw primitives; tools/nnlut_lint.py (rule raw-sync-primitive) enforces
// the substitution. On GCC every macro expands to nothing and every
// wrapper inlines to the std type it holds.
//
// Conventions (docs/STATIC_ANALYSIS.md has the full guide):
//   - Every shared field is declared NNLUT_GUARDED_BY(its mutex).
//   - Private helpers called under a lock are NNLUT_REQUIRES(mu).
//   - Condition-variable predicates are explicit `while (!pred) cv.wait(lk)`
//     loops, never predicate lambdas: the analysis treats a lambda body as
//     a separate function that cannot see the enclosing scope's held
//     capability, so `cv.wait(lk, [&]{ return guarded_; })` is a false
//     positive by construction. CondVar therefore offers no predicate
//     overloads at all.
//   - NNLUT_NO_THREAD_SAFETY_ANALYSIS is a last resort and needs a comment
//     explaining why the analysis cannot express the invariant.
//
// Verified by the `clang-thread-safety` CI job:
//   clang++ -Wthread-safety -Werror=thread-safety (NNLUT_WERROR_THREAD_SAFETY).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define NNLUT_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define NNLUT_THREAD_ANNOTATION__(x)  // no-op: GCC has no -Wthread-safety
#endif

// A type that acts as a lock (capability) / a scoped lock object.
#define NNLUT_CAPABILITY(x) NNLUT_THREAD_ANNOTATION__(capability(x))
#define NNLUT_SCOPED_CAPABILITY NNLUT_THREAD_ANNOTATION__(scoped_lockable)

// Data members: which mutex protects them (pointer variant guards the
// pointee, not the pointer).
#define NNLUT_GUARDED_BY(x) NNLUT_THREAD_ANNOTATION__(guarded_by(x))
#define NNLUT_PT_GUARDED_BY(x) NNLUT_THREAD_ANNOTATION__(pt_guarded_by(x))

// Functions: capabilities they need held / acquire / release.
#define NNLUT_REQUIRES(...) \
  NNLUT_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define NNLUT_REQUIRES_SHARED(...) \
  NNLUT_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define NNLUT_ACQUIRE(...) \
  NNLUT_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define NNLUT_ACQUIRE_SHARED(...) \
  NNLUT_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define NNLUT_RELEASE(...) \
  NNLUT_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define NNLUT_RELEASE_SHARED(...) \
  NNLUT_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define NNLUT_RELEASE_GENERIC(...) \
  NNLUT_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
#define NNLUT_TRY_ACQUIRE(...) \
  NNLUT_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define NNLUT_EXCLUDES(...) NNLUT_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define NNLUT_ASSERT_CAPABILITY(x) \
  NNLUT_THREAD_ANNOTATION__(assert_capability(x))
#define NNLUT_RETURN_CAPABILITY(x) NNLUT_THREAD_ANNOTATION__(lock_returned(x))
#define NNLUT_NO_THREAD_SAFETY_ANALYSIS \
  NNLUT_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace nnlut {

/// Annotated std::mutex. Methods carry the acquire/release annotations the
/// std type lacks; the bodies touch only the raw primitive, so the analysis
/// sees exactly one acquisition per lock() (never a double-count from an
/// annotated callee).
class NNLUT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NNLUT_ACQUIRE() { mu_.lock(); }
  void unlock() NNLUT_RELEASE() { mu_.unlock(); }
  bool try_lock() NNLUT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped primitive, for the scoped lock types and CondVar only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Annotated std::shared_mutex (reader/writer lock).
class NNLUT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() NNLUT_ACQUIRE() { mu_.lock(); }
  void unlock() NNLUT_RELEASE() { mu_.unlock(); }
  void lock_shared() NNLUT_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() NNLUT_RELEASE_SHARED() { mu_.unlock_shared(); }

  std::shared_mutex& native() { return mu_; }

 private:
  std::shared_mutex mu_;
};

/// std::lock_guard analogue: holds the mutex for the full scope.
class NNLUT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NNLUT_ACQUIRE(mu) : mu_(mu.native()) {
    mu_.lock();
  }
  ~MutexLock() NNLUT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  std::mutex& mu_;
};

/// Relockable scoped lock for condition-variable waits and mid-scope
/// unlock/relock (the thread-pool worker loop). The analysis tracks the
/// lock()/unlock() state machine; the destructor releases only if held.
class NNLUT_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) NNLUT_ACQUIRE(mu) : lk_(mu.native()) {}
  ~UniqueLock() NNLUT_RELEASE() {}  // lk_ releases only if currently held

  void lock() NNLUT_ACQUIRE() { lk_.lock(); }
  void unlock() NNLUT_RELEASE() { lk_.unlock(); }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// For CondVar only — waits atomically release/reacquire through this.
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

/// std::unique_lock<std::shared_mutex> analogue, exclusive (writer) side.
class NNLUT_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) NNLUT_ACQUIRE(mu) : mu_(mu.native()) {
    mu_.lock();
  }
  ~WriterLock() NNLUT_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  std::shared_mutex& mu_;
};

/// std::shared_lock analogue (reader side). The destructor's generic
/// release matches however the scope acquired, per the scoped-capability
/// model.
class NNLUT_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) NNLUT_ACQUIRE_SHARED(mu)
      : mu_(mu.native()) {
    mu_.lock_shared();
  }
  ~ReaderLock() NNLUT_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  std::shared_mutex& mu_;
};

/// Condition variable over a UniqueLock. Deliberately predicate-free:
/// call sites spell the wait as `while (!pred) cv.wait(lk);` so the
/// guarded predicate reads stay inside the annotated scope (a predicate
/// lambda would be analyzed as a lockless separate function). The
/// release-while-blocked / reacquire-on-return transition inside wait is
/// invisible to the analysis, which is sound: the capability is held at
/// both edges of the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(UniqueLock& lk) { cv_.wait(lk.native()); }

  std::cv_status wait_until(UniqueLock& lk,
                            std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lk.native(), deadline);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lk,
                          std::chrono::duration<Rep, Period> timeout) {
    return cv_.wait_for(lk.native(), timeout);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace nnlut
