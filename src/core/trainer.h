// Training of the approximation network (Sec. 3.3.1 / Table 1 of the paper):
// uniform samples of the target function, ADAM optimizer, L1 loss,
// learning rate 1e-3 with multi-step decay, and per-function sign recipes
// for the first-layer weight/bias initialization.
#pragma once

#include <cstdint>
#include <functional>

#include "core/approx_net.h"
#include "numerics/math.h"
#include "numerics/rng.h"

namespace nnlut {

/// Sign constraint used when initializing first-layer parameters (Table 1):
/// GELU uses unconstrained ("Random") init; EXP uses positive weights;
/// Divide and 1/SQRT use negative weights with positive biases.
enum class SignInit { kAny, kPositive, kNegative };

enum class LossKind { kL1, kL2 };

enum class SampleDist {
  kUniform,       // the paper's choice: uniform over [lo, hi]
  kLogUniform,    // denser near lo for 1/x-like functions (positive ranges)
  kLogMagnitude,  // |x| log-uniform, sign of the range; concentrates samples
                  // near zero for exp on (-256, 0] where all variation lives
};

struct TrainConfig {
  int hidden = 15;  // H = N-1 neurons -> 16-entry LUT (the paper's setting)
  InputRange range{-1.0f, 1.0f};
  SignInit weight_sign = SignInit::kAny;
  SignInit bias_sign = SignInit::kAny;

  int dataset_size = 100'000;  // paper: "dataset size of 100K was enough"
  int epochs = 60;
  int batch_size = 512;
  float lr = 1e-3f;  // paper: 0.001 with multi-step decay
  // Multi-step schedule: lr *= 0.1 when reaching these fractions of epochs.
  float decay_at_frac1 = 0.6f;
  float decay_at_frac2 = 0.85f;

  LossKind loss = LossKind::kL1;  // paper: L1 slightly outperforms
  SampleDist sampling = SampleDist::kUniform;

  int restarts = 3;  // train several seeds, keep the best validation L1
  // Closed-form least-squares refit of the output layer (m, c) after Adam,
  // kept only if it improves validation L1. Cheap and strictly beneficial.
  bool refit_output = true;

  std::uint64_t seed = 1;
};

struct TrainResult {
  ApproxNet net;
  double validation_l1 = 0.0;   // mean |NN - f| on a dense held-out grid
  double validation_max = 0.0;  // max  |NN - f| on that grid
};

/// Fit an approximation network to `target` following `cfg`.
TrainResult fit_approx_net(const std::function<float(float)>& target,
                           const TrainConfig& cfg);

/// Initialize a network per the Table-1 recipe: kinks spread uniformly over
/// the input range, weight/bias signs per the recipe, small random output
/// layer. Exposed for tests and ablations.
ApproxNet init_approx_net(const TrainConfig& cfg, Rng& rng,
                          const std::function<float(float)>& target);

/// One Adam training run (no restarts / refit). Exposed for calibration,
/// which continues training an existing net on captured activations.
void train_adam(ApproxNet& net, std::span<const float> xs,
                std::span<const float> ys, const TrainConfig& cfg, Rng& rng);

/// Mean |net - target| over a dense uniform grid on cfg.range.
double grid_l1_error(const ApproxNet& net,
                     const std::function<float(float)>& target,
                     InputRange range, int points = 4096);

/// Least-squares refit of (m, c) with first layer frozen; returns false when
/// the normal equations are singular (net left unchanged).
bool refit_output_layer(ApproxNet& net, std::span<const float> xs,
                        std::span<const float> ys);

}  // namespace nnlut
