#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace nnlut {

namespace {

float signed_magnitude(Rng& rng, SignInit sign, float lo, float hi) {
  const float mag = rng.uniform(lo, hi);
  switch (sign) {
    case SignInit::kPositive:
      return mag;
    case SignInit::kNegative:
      return -mag;
    case SignInit::kAny:
      return rng.coin() ? mag : -mag;
  }
  return mag;
}

float sample_one(const TrainConfig& cfg, Rng& rng) {
  // Log-uniform requires a positive range; fall back to uniform otherwise.
  if (cfg.sampling == SampleDist::kLogUniform && cfg.range.lo > 0.0f) {
    const float llo = std::log(cfg.range.lo), lhi = std::log(cfg.range.hi);
    return std::exp(rng.uniform(llo, lhi));
  }
  if (cfg.sampling == SampleDist::kLogMagnitude) {
    // |x| log-uniform between a small floor and the range's max magnitude,
    // carrying the sign of the dominant side. Designed for exp on (-256, 0]:
    // most samples land where exp still has curvature.
    const float max_mag = std::max(std::abs(cfg.range.lo), std::abs(cfg.range.hi));
    const float min_mag = max_mag * 1e-5f;
    const float mag = std::exp(rng.uniform(std::log(min_mag), std::log(max_mag)));
    const float sign = (std::abs(cfg.range.lo) > std::abs(cfg.range.hi)) ? -1.0f : 1.0f;
    return sign * mag;
  }
  return rng.uniform(cfg.range.lo, cfg.range.hi);
}

std::vector<float> sample_inputs(const TrainConfig& cfg, Rng& rng, int count) {
  std::vector<float> xs(static_cast<std::size_t>(count));
  for (float& x : xs) x = sample_one(cfg, rng);
  return xs;
}

double dataset_l1(const ApproxNet& net, std::span<const float> xs,
                  std::span<const float> ys) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    s += std::abs(static_cast<double>(net(xs[i])) - ys[i]);
  return s / static_cast<double>(xs.size());
}

struct Adam {
  std::vector<float> m1, m2;
  float beta1 = 0.9f, beta2 = 0.999f, eps = 1e-8f;
  long t = 0;

  explicit Adam(std::size_t params) : m1(params, 0.0f), m2(params, 0.0f) {}

  void step(std::span<float> w, std::span<const float> g, float lr) {
    ++t;
    const float c1 = 1.0f - std::pow(beta1, static_cast<float>(t));
    const float c2 = 1.0f - std::pow(beta2, static_cast<float>(t));
    for (std::size_t i = 0; i < w.size(); ++i) {
      m1[i] = beta1 * m1[i] + (1 - beta1) * g[i];
      m2[i] = beta2 * m2[i] + (1 - beta2) * g[i] * g[i];
      const float mh = m1[i] / c1;
      const float vh = m2[i] / c2;
      w[i] -= lr * mh / (std::sqrt(vh) + eps);
    }
  }
};

}  // namespace

ApproxNet init_approx_net(const TrainConfig& cfg, Rng& rng,
                          const std::function<float(float)>& target) {
  if (cfg.hidden < 1) throw std::invalid_argument("hidden must be >= 1");
  if (!(cfg.range.lo < cfg.range.hi))
    throw std::invalid_argument("invalid input range");

  const std::size_t h = static_cast<std::size_t>(cfg.hidden);
  ApproxNet net;
  net.n.resize(h);
  net.b.resize(h);
  net.m.resize(h);

  // Spread the initial kinks d_i = -b_i/n_i randomly over the input range —
  // drawn from the same distribution the training data uses, so functions
  // sampled log-uniformly start with kinks in their high-curvature decades —
  // then derive b from the chosen signs. This realizes Table 1: e.g. EXP
  // trains on (-256, 0] with positive n and positive b (kinks -b/n land in
  // the negative range automatically).
  std::vector<float> kinks(h);
  for (float& d : kinks) d = sample_one(cfg, rng);
  std::sort(kinks.begin(), kinks.end());

  for (std::size_t i = 0; i < h; ++i) {
    net.n[i] = signed_magnitude(rng, cfg.weight_sign, 0.5f, 2.0f);
    net.b[i] = -net.n[i] * kinks[i];
    // Respect the bias-sign recipe when it conflicts with the kink placement
    // (can only happen for SignInit::kAny weight recipes).
    if (cfg.bias_sign == SignInit::kPositive && net.b[i] < 0.0f)
      net.b[i] = -net.b[i];
    if (cfg.bias_sign == SignInit::kNegative && net.b[i] > 0.0f)
      net.b[i] = -net.b[i];
    net.m[i] = rng.normal(0.0f, 1.0f / std::sqrt(static_cast<float>(h)));
  }

  // Start the output bias at the mean of the target over a few probes; this
  // centres the initial approximation.
  double mean = 0.0;
  constexpr int kProbes = 64;
  for (int i = 0; i < kProbes; ++i) {
    const float x =
        cfg.range.lo + (cfg.range.hi - cfg.range.lo) *
                           (static_cast<float>(i) + 0.5f) / kProbes;
    mean += target(x);
  }
  net.c = static_cast<float>(mean / kProbes);
  return net;
}

void train_adam(ApproxNet& net, std::span<const float> xs,
                std::span<const float> ys, const TrainConfig& cfg, Rng& rng) {
  if (xs.size() != ys.size() || xs.empty())
    throw std::invalid_argument("train_adam: bad dataset");

  const std::size_t h = net.hidden_size();
  const std::size_t params = 3 * h + 1;  // n, b, m, c
  Adam adam(params);

  std::vector<float> grad(params, 0.0f);
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  const int batches_per_epoch = static_cast<int>(
      (xs.size() + cfg.batch_size - 1) / static_cast<std::size_t>(cfg.batch_size));

  float lr = cfg.lr;
  const int decay1 = static_cast<int>(cfg.decay_at_frac1 * cfg.epochs);
  const int decay2 = static_cast<int>(cfg.decay_at_frac2 * cfg.epochs);

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (epoch == decay1 || epoch == decay2) lr *= 0.1f;
    std::shuffle(order.begin(), order.end(), rng.engine());

    for (int bi = 0; bi < batches_per_epoch; ++bi) {
      const std::size_t begin = static_cast<std::size_t>(bi) * cfg.batch_size;
      const std::size_t end = std::min(xs.size(), begin + cfg.batch_size);
      if (begin >= end) break;
      std::fill(grad.begin(), grad.end(), 0.0f);

      for (std::size_t s = begin; s < end; ++s) {
        const float x = xs[order[s]];
        const float y = ys[order[s]];

        // Forward.
        float yhat = net.c;
        for (std::size_t i = 0; i < h; ++i) {
          const float pre = net.n[i] * x + net.b[i];
          if (pre > 0.0f) yhat += net.m[i] * pre;
        }

        // Loss gradient.
        const float e = yhat - y;
        float g;
        if (cfg.loss == LossKind::kL1) {
          g = (e > 0.0f) ? 1.0f : (e < 0.0f ? -1.0f : 0.0f);
        } else {
          g = e;
        }

        // Backward. grad layout: [n(0..h) | b(h..2h) | m(2h..3h) | c].
        for (std::size_t i = 0; i < h; ++i) {
          const float pre = net.n[i] * x + net.b[i];
          if (pre > 0.0f) {
            grad[2 * h + i] += g * pre;           // dm
            const float dpre = g * net.m[i];
            grad[i] += dpre * x;                  // dn
            grad[h + i] += dpre;                  // db
          }
        }
        grad[3 * h] += g;  // dc
      }

      const float inv = 1.0f / static_cast<float>(end - begin);
      for (float& gv : grad) gv *= inv;

      // Adam update over the concatenated parameter vector.
      std::vector<float> w(params);
      std::copy(net.n.begin(), net.n.end(), w.begin());
      std::copy(net.b.begin(), net.b.end(), w.begin() + h);
      std::copy(net.m.begin(), net.m.end(), w.begin() + 2 * h);
      w[3 * h] = net.c;
      adam.step(w, grad, lr);
      std::copy(w.begin(), w.begin() + h, net.n.begin());
      std::copy(w.begin() + h, w.begin() + 2 * h, net.b.begin());
      std::copy(w.begin() + 2 * h, w.begin() + 3 * h, net.m.begin());
      net.c = w[3 * h];
    }
  }
}

double grid_l1_error(const ApproxNet& net,
                     const std::function<float(float)>& target,
                     InputRange range, int points) {
  double sum = 0.0;
  for (int i = 0; i < points; ++i) {
    const float x = range.lo + (range.hi - range.lo) *
                                   (static_cast<float>(i) + 0.5f) / points;
    sum += std::abs(static_cast<double>(net(x)) - target(x));
  }
  return sum / points;
}

bool refit_output_layer(ApproxNet& net, std::span<const float> xs,
                        std::span<const float> ys) {
  const std::size_t h = net.hidden_size();
  const std::size_t p = h + 1;  // m_0..m_{h-1}, c

  // Normal equations A w = r with features phi_i(x) = relu(n_i x + b_i), 1.
  std::vector<double> a(p * p, 0.0), r(p, 0.0), phi(p, 0.0);
  for (std::size_t s = 0; s < xs.size(); ++s) {
    const float x = xs[s];
    for (std::size_t i = 0; i < h; ++i) {
      const float pre = net.n[i] * x + net.b[i];
      phi[i] = pre > 0.0f ? pre : 0.0f;
    }
    phi[h] = 1.0;
    for (std::size_t i = 0; i < p; ++i) {
      r[i] += phi[i] * ys[s];
      for (std::size_t j = 0; j <= i; ++j) a[i * p + j] += phi[i] * phi[j];
    }
  }
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = i + 1; j < p; ++j) a[i * p + j] = a[j * p + i];
  // Tikhonov damping keeps near-dead neurons from blowing up the solve.
  for (std::size_t i = 0; i < p; ++i) a[i * p + i] += 1e-6;

  // Cholesky decomposition.
  std::vector<double> l(p * p, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a[i * p + j];
      for (std::size_t k = 0; k < j; ++k) s -= l[i * p + k] * l[j * p + k];
      if (i == j) {
        if (s <= 0.0) return false;
        l[i * p + i] = std::sqrt(s);
      } else {
        l[i * p + j] = s / l[j * p + j];
      }
    }
  }
  // Solve L y = r, then L^T w = y.
  std::vector<double> y(p, 0.0), w(p, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    double s = r[i];
    for (std::size_t k = 0; k < i; ++k) s -= l[i * p + k] * y[k];
    y[i] = s / l[i * p + i];
  }
  for (std::size_t ii = p; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < p; ++k) s -= l[k * p + ii] * w[k];
    w[ii] = s / l[ii * p + ii];
  }

  for (std::size_t i = 0; i < h; ++i) net.m[i] = static_cast<float>(w[i]);
  net.c = static_cast<float>(w[h]);
  return true;
}

TrainResult fit_approx_net(const std::function<float(float)>& target,
                           const TrainConfig& cfg) {
  TrainResult best;
  best.validation_l1 = std::numeric_limits<double>::infinity();

  // Held-out validation set drawn from the *training* distribution, so
  // restart selection and refit acceptance optimize the distribution the
  // deployment will see (log-uniform sampling would otherwise be judged by
  // a uniform grid dominated by the flat tail).
  Rng val_rng(cfg.seed ^ 0x9e3779b97f4a7c15ull);
  const std::vector<float> vxs = sample_inputs(cfg, val_rng, 8192);
  std::vector<float> vys(vxs.size());
  for (std::size_t i = 0; i < vxs.size(); ++i) vys[i] = target(vxs[i]);

  for (int restart = 0; restart < std::max(1, cfg.restarts); ++restart) {
    Rng rng(cfg.seed + static_cast<std::uint64_t>(restart) * 7919u);

    std::vector<float> xs = sample_inputs(cfg, rng, cfg.dataset_size);
    std::vector<float> ys(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = target(xs[i]);

    ApproxNet net = init_approx_net(cfg, rng, target);
    train_adam(net, xs, ys, cfg, rng);

    double err = dataset_l1(net, vxs, vys);

    if (cfg.refit_output) {
      ApproxNet refit = net;
      if (refit_output_layer(refit, xs, ys)) {
        const double refit_err = dataset_l1(refit, vxs, vys);
        if (refit_err < err) {
          net = std::move(refit);
          err = refit_err;
        }
      }
    }

    if (err < best.validation_l1) {
      best.net = std::move(net);
      best.validation_l1 = err;
    }
  }

  // Dense max-error diagnostic for the winner.
  double mx = 0.0;
  constexpr int kPoints = 4096;
  for (int i = 0; i < kPoints; ++i) {
    const float x = cfg.range.lo + (cfg.range.hi - cfg.range.lo) *
                                       (static_cast<float>(i) + 0.5f) / kPoints;
    mx = std::max(mx, std::abs(static_cast<double>(best.net(x)) - target(x)));
  }
  best.validation_max = mx;
  return best;
}

}  // namespace nnlut
