// The paper's Table 1: the four scalar functions that cover every non-linear
// operation of a BERT-style transformer, with their training input ranges and
// initialization recipes, plus a convenience "bundle" that trains all four
// NN-LUTs at once.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "core/piecewise_linear.h"
#include "core/trainer.h"
#include "numerics/math.h"

namespace nnlut {

enum class TargetFn {
  // The paper's Table-1 functions (cover GELU, Softmax and LayerNorm):
  kGelu,        // GELU activation,          range (-5, 5)
  kExp,         // Softmax numerator,        range (-256, 0)
  kReciprocal,  // Softmax "Divide",         range (1, 1024)
  kRsqrt,       // LayerNorm 1/SQRT,         range (0.1, 1024)
  // Additional activation functions the NN-LUT unit serves by swapping
  // table contents (listed in the paper's Fig. 3a):
  kSwish,       // x * sigmoid(x),           range (-6, 6)
  kHswish,      // x * relu6(x + 3) / 6,     range (-6, 6)
  kTanh,        //                           range (-4, 4)
  kSigmoid,     //                           range (-8, 8)
};

struct FnSpec {
  TargetFn id;
  const char* name;
  float (*fn)(float);
  InputRange range;
  SignInit weight_sign;  // Table 1 "Weight Init"
  SignInit bias_sign;    // Table 1 "Bias Init"
};

/// Lookup of the Table-1 recipe for a target function.
const FnSpec& fn_spec(TargetFn id);

/// Lookup by name ("gelu", "exp", "div", "1/sqrt", "swish", "hswish",
/// "tanh", "sigmoid"); returns nullptr for unknown names.
const FnSpec* fn_spec_by_name(std::string_view name);

/// All registered target functions.
std::span<const FnSpec> all_fn_specs();

/// Effort presets for training the approximators. kPaper mirrors the paper's
/// setup (100K samples); kFast trades a little fidelity for bench runtime.
enum class FitPreset { kFast, kPaper };

/// The paper's default training configuration for one target function with
/// an `entries`-entry LUT (hidden size = entries - 1).
TrainConfig recipe(TargetFn id, int entries = 16,
                   FitPreset preset = FitPreset::kPaper,
                   std::uint64_t seed = 1);

/// Train the network for `id` and return both the net and its LUT form.
struct FittedLut {
  ApproxNet net;
  PiecewiseLinear lut;
  double validation_l1 = 0.0;
};
FittedLut fit_lut(TargetFn id, int entries = 16,
                  FitPreset preset = FitPreset::kPaper, std::uint64_t seed = 1);

/// All four NN-LUTs needed to replace GELU, Softmax and LayerNorm.
struct NnlutBundle {
  FittedLut gelu;
  FittedLut exp;
  FittedLut reciprocal;
  FittedLut rsqrt;
};

NnlutBundle train_bundle(int entries = 16, FitPreset preset = FitPreset::kPaper,
                         std::uint64_t seed = 1);

}  // namespace nnlut
