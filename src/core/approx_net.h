// One-hidden-layer ReLU approximation network (Eq. 5 of the paper):
//
//   NN(x) = sum_i m_i * relu(n_i * x + b_i) + c
//
// with H = N-1 hidden neurons for an N-entry LUT. The paper's Eq. 5 omits
// the output bias c; we keep it (it folds into every LUT intercept and makes
// training markedly easier for functions with a non-zero asymptote).
#pragma once

#include <cstddef>
#include <vector>

namespace nnlut {

struct ApproxNet {
  std::vector<float> n;  // first-layer weights
  std::vector<float> b;  // first-layer biases
  std::vector<float> m;  // second-layer weights
  float c = 0.0f;        // output bias

  std::size_t hidden_size() const { return n.size(); }

  /// NN(x) per Eq. 5.
  float operator()(float x) const;

  /// Breakpoint implied by neuron i: d_i = -b_i / n_i.
  /// Neurons with |n_i| below `dead_eps` have no kink (constant contribution).
  static constexpr float kDeadEps = 1e-12f;
};

}  // namespace nnlut
