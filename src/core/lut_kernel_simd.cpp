// Dispatch TU: resolves the ISA tier once (CPUID + environment caps) and
// installs the matching kernel table behind an atomic pointer. The wide
// tiers live in their own translation units (lut_kernel_simd_avx2.cpp,
// lut_kernel_simd_f16c.cpp, lut_kernel_simd_avx512.cpp,
// lut_kernel_simd_vnni.cpp) compiled with the matching -m flags; this file
// is compiled with the portable baseline so it can run anywhere. Tier
// tables are assembled here from the per-TU entry points: the avx2 tier's
// FP16 slot picks the F16C kernel only when CPUID reports f16c, and the
// avx512vnni tier shares the avx512 FP32/FP16 kernels, differing only in
// the INT32 slot.
#include "core/lut_kernel_simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/lut_kernel_simd_detail.h"

namespace nnlut::simd {

// Per-tier kernel entry points, each defined in its own -m flagged TU.
#ifdef NNLUT_HAVE_AVX2
void avx2_fp32_eval(const float*, std::size_t, bool, const float*,
                    const float*, float*, std::size_t);
void avx2_int32_eval(const std::int32_t*, std::size_t, bool,
                     const std::int32_t*, const std::int32_t*, float, float,
                     float*, std::size_t);
#endif
#ifdef NNLUT_HAVE_F16C
void f16c_fp16_eval(const float*, std::size_t, bool, const float*,
                    const float*, float*, std::size_t);
#endif
#ifdef NNLUT_HAVE_AVX512
void avx512_fp32_eval(const float*, std::size_t, bool, const float*,
                      const float*, float*, std::size_t);
void avx512_fp16_eval(const float*, std::size_t, bool, const float*,
                      const float*, float*, std::size_t);
void avx512_int32_eval(const std::int32_t*, std::size_t, bool,
                       const std::int32_t*, const std::int32_t*, float, float,
                       float*, std::size_t);
#endif
#ifdef NNLUT_HAVE_AVX512VNNI
void avx512vnni_int32_eval(const std::int32_t*, std::size_t, bool,
                           const std::int32_t*, const std::int32_t*, float,
                           float, float*, std::size_t);
#endif

namespace {

void scalar_fp32(const float* bp, std::size_t nb, bool linear, const float* s,
                 const float* t, float* xs, std::size_t n) {
  detail::scalar_fp32_eval(bp, nb, linear, s, t, xs, n);
}

void scalar_fp16(const float* bp, std::size_t nb, bool linear, const float* s,
                 const float* t, float* xs, std::size_t n) {
  detail::scalar_fp16_eval(bp, nb, linear, s, t, xs, n);
}

void scalar_int32(const std::int32_t* bp, std::size_t nb, bool linear,
                  const std::int32_t* s, const std::int32_t* t, float sx,
                  float so, float* xs, std::size_t n) {
  detail::scalar_int32_eval(bp, nb, linear, s, t, sx, so, xs, n);
}

constexpr SimdKernelOps kScalarOps{SimdTier::kScalar, &scalar_fp32,
                                   &scalar_fp16, &scalar_int32};

const SimdKernelOps& ops_for(SimdTier tier) {
  switch (tier) {
#ifdef NNLUT_HAVE_AVX512VNNI
    case SimdTier::kAvx512Vnni: {
      static constexpr SimdKernelOps ops{SimdTier::kAvx512Vnni,
                                         &avx512_fp32_eval, &avx512_fp16_eval,
                                         &avx512vnni_int32_eval};
      return ops;
    }
#endif
#ifdef NNLUT_HAVE_AVX512
    case SimdTier::kAvx512: {
      static constexpr SimdKernelOps ops{SimdTier::kAvx512, &avx512_fp32_eval,
                                         &avx512_fp16_eval,
                                         &avx512_int32_eval};
      return ops;
    }
#endif
#ifdef NNLUT_HAVE_AVX2
    case SimdTier::kAvx2: {
      // FP16 runs wide on this tier only with the f16c conversion
      // instructions (a separate CPUID bit from avx2); without them the
      // FP16 slot stays scalar while FP32/INT32 run wide.
      static const SimdKernelOps ops{SimdTier::kAvx2, &avx2_fp32_eval,
                                     has_f16c() ? &f16c_fp16_eval
                                                : &scalar_fp16,
                                     &avx2_int32_eval};
      return ops;
    }
#endif
    default:
      return kScalarOps;
  }
}

std::atomic<const SimdKernelOps*> g_active{nullptr};

}  // namespace

const char* simd_tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAvx512Vnni:
      return "avx512vnni";
    case SimdTier::kAvx512:
      return "avx512";
    case SimdTier::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

std::string simd_tier_names() {
  std::string names;
  for (SimdTier t : available_simd_tiers()) {
    if (!names.empty()) names += ", ";
    names += simd_tier_name(t);
  }
  return names;
}

std::optional<SimdTier> parse_simd_tier(std::string_view name) {
  if (name == "scalar") return SimdTier::kScalar;
  if (name == "avx2") return SimdTier::kAvx2;
  if (name == "avx512") return SimdTier::kAvx512;
  if (name == "avx512vnni") return SimdTier::kAvx512Vnni;
  return std::nullopt;
}

bool has_f16c() {
#ifdef NNLUT_HAVE_F16C
  static const bool have = __builtin_cpu_supports("f16c") != 0;
  return have;
#else
  return false;
#endif
}

bool has_avx512vnni() {
#ifdef NNLUT_HAVE_AVX512VNNI
  static const bool have = __builtin_cpu_supports("avx512f") != 0 &&
                           __builtin_cpu_supports("avx512vnni") != 0;
  return have;
#else
  return false;
#endif
}

SimdTier detected_simd_tier() {
  static const SimdTier tier = [] {
#ifdef NNLUT_HAVE_AVX512VNNI
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512vnni"))
      return SimdTier::kAvx512Vnni;
#endif
#ifdef NNLUT_HAVE_AVX512
    if (__builtin_cpu_supports("avx512f")) return SimdTier::kAvx512;
#endif
#ifdef NNLUT_HAVE_AVX2
    if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
#endif
    return SimdTier::kScalar;
  }();
  return tier;
}

SimdTier env_capped_tier(const char* force_scalar, const char* tier_name,
                         SimdTier detected) {
  if (force_scalar != nullptr && *force_scalar != '\0' &&
      std::string_view(force_scalar) != "0")
    return SimdTier::kScalar;
  if (tier_name != nullptr) {
    if (const auto cap = parse_simd_tier(tier_name))
      return std::min(*cap, detected);
  }
  return detected;
}

SimdTier auto_simd_tier() {
  // Function-local static (not a namespace-scope global): plan evaluation
  // during another TU's static initialization must still resolve the real
  // tier, not a zero-initialized placeholder. The environment is read once
  // here — dispatch must not change behind a running server's back because
  // the wall clock crossed a getenv call.
  static const SimdTier tier = [] {
    const char* force_scalar = std::getenv("NNLUT_FORCE_SCALAR");
    const char* tier_name = std::getenv("NNLUT_SIMD_TIER");
    const SimdTier detected = detected_simd_tier();
    const SimdTier capped =
        env_capped_tier(force_scalar, tier_name, detected);
    // The cap itself stays pure and silent (env_capped_tier is unit-tested
    // as a function); the once-per-process resolution is where a surprising
    // request gets a diagnostic naming what this machine can actually run.
    if (tier_name != nullptr && capped != SimdTier::kScalar) {
      const auto requested = parse_simd_tier(tier_name);
      if (!requested) {
        std::fprintf(stderr,
                     "nnlut: ignoring unknown NNLUT_SIMD_TIER='%s' "
                     "(available tiers: %s)\n",
                     tier_name, simd_tier_names().c_str());
      } else if (*requested > detected) {
        std::fprintf(stderr,
                     "nnlut: NNLUT_SIMD_TIER='%s' exceeds this machine; "
                     "capping at detected tier '%s' (available tiers: %s)\n",
                     tier_name, simd_tier_name(detected),
                     simd_tier_names().c_str());
      }
    }
    return capped;
  }();
  return tier;
}

std::vector<SimdTier> available_simd_tiers() {
  std::vector<SimdTier> tiers{SimdTier::kScalar};
  const SimdTier top = detected_simd_tier();
  if (top >= SimdTier::kAvx2) tiers.push_back(SimdTier::kAvx2);
  if (top >= SimdTier::kAvx512) tiers.push_back(SimdTier::kAvx512);
  if (top >= SimdTier::kAvx512Vnni) tiers.push_back(SimdTier::kAvx512Vnni);
  return tiers;
}

const SimdKernelOps& active_simd_ops() {
  const SimdKernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // First use (or a benign race with another first user): install the
    // automatic tier. compare_exchange keeps a concurrent set_simd_tier win.
    const SimdKernelOps* expected = nullptr;
    g_active.compare_exchange_strong(expected, &ops_for(auto_simd_tier()),
                                     std::memory_order_acq_rel);
    ops = g_active.load(std::memory_order_acquire);
  }
  return *ops;
}

SimdTier active_simd_tier() { return active_simd_ops().tier; }

void set_simd_tier(std::optional<SimdTier> tier) {
  if (tier.has_value() && *tier > detected_simd_tier())
    throw std::invalid_argument(
        std::string("set_simd_tier: tier '") + simd_tier_name(*tier) +
        "' exceeds the detected tier '" +
        simd_tier_name(detected_simd_tier()) + "' (available tiers: " +
        simd_tier_names() + ")");
  g_active.store(&ops_for(tier.value_or(auto_simd_tier())),
                 std::memory_order_release);
}

}  // namespace nnlut::simd
