// Dispatch TU: resolves the ISA tier once (CPUID + environment caps) and
// installs the matching kernel table behind an atomic pointer. The wide
// tiers live in their own translation units (lut_kernel_simd_avx2.cpp,
// lut_kernel_simd_avx512.cpp) compiled with the matching -m flags; this file
// is compiled with the portable baseline so it can run anywhere.
#include "core/lut_kernel_simd.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/lut_kernel_simd_detail.h"

namespace nnlut::simd {

#ifdef NNLUT_HAVE_AVX2
const SimdKernelOps& avx2_kernel_ops();  // defined in lut_kernel_simd_avx2.cpp
#endif
#ifdef NNLUT_HAVE_AVX512
const SimdKernelOps& avx512_kernel_ops();  // lut_kernel_simd_avx512.cpp
#endif

namespace {

void scalar_fp32(const float* bp, std::size_t nb, bool linear, const float* s,
                 const float* t, float* xs, std::size_t n) {
  detail::scalar_fp32_eval(bp, nb, linear, s, t, xs, n);
}

void scalar_int32(const std::int32_t* bp, std::size_t nb, bool linear,
                  const std::int32_t* s, const std::int32_t* t, float sx,
                  float so, float* xs, std::size_t n) {
  detail::scalar_int32_eval(bp, nb, linear, s, t, sx, so, xs, n);
}

constexpr SimdKernelOps kScalarOps{SimdTier::kScalar, &scalar_fp32,
                                   &scalar_int32};

const SimdKernelOps& ops_for(SimdTier tier) {
  switch (tier) {
#ifdef NNLUT_HAVE_AVX512
    case SimdTier::kAvx512:
      return avx512_kernel_ops();
#endif
#ifdef NNLUT_HAVE_AVX2
    case SimdTier::kAvx2:
      return avx2_kernel_ops();
#endif
    default:
      return kScalarOps;
  }
}

std::atomic<const SimdKernelOps*> g_active{nullptr};

}  // namespace

const char* simd_tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAvx512:
      return "avx512";
    case SimdTier::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

std::optional<SimdTier> parse_simd_tier(std::string_view name) {
  if (name == "scalar") return SimdTier::kScalar;
  if (name == "avx2") return SimdTier::kAvx2;
  if (name == "avx512") return SimdTier::kAvx512;
  return std::nullopt;
}

SimdTier detected_simd_tier() {
  static const SimdTier tier = [] {
#ifdef NNLUT_HAVE_AVX512
    if (__builtin_cpu_supports("avx512f")) return SimdTier::kAvx512;
#endif
#ifdef NNLUT_HAVE_AVX2
    if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
#endif
    return SimdTier::kScalar;
  }();
  return tier;
}

SimdTier env_capped_tier(const char* force_scalar, const char* tier_name,
                         SimdTier detected) {
  if (force_scalar != nullptr && *force_scalar != '\0' &&
      std::string_view(force_scalar) != "0")
    return SimdTier::kScalar;
  if (tier_name != nullptr) {
    if (const auto cap = parse_simd_tier(tier_name))
      return std::min(*cap, detected);
  }
  return detected;
}

SimdTier auto_simd_tier() {
  // Function-local static (not a namespace-scope global): plan evaluation
  // during another TU's static initialization must still resolve the real
  // tier, not a zero-initialized placeholder. The environment is read once
  // here — dispatch must not change behind a running server's back because
  // the wall clock crossed a getenv call.
  static const SimdTier tier =
      env_capped_tier(std::getenv("NNLUT_FORCE_SCALAR"),
                      std::getenv("NNLUT_SIMD_TIER"), detected_simd_tier());
  return tier;
}

std::vector<SimdTier> available_simd_tiers() {
  std::vector<SimdTier> tiers{SimdTier::kScalar};
  const SimdTier top = detected_simd_tier();
  if (top >= SimdTier::kAvx2) tiers.push_back(SimdTier::kAvx2);
  if (top >= SimdTier::kAvx512) tiers.push_back(SimdTier::kAvx512);
  return tiers;
}

const SimdKernelOps& active_simd_ops() {
  const SimdKernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // First use (or a benign race with another first user): install the
    // automatic tier. compare_exchange keeps a concurrent set_simd_tier win.
    const SimdKernelOps* expected = nullptr;
    g_active.compare_exchange_strong(expected, &ops_for(auto_simd_tier()),
                                     std::memory_order_acq_rel);
    ops = g_active.load(std::memory_order_acquire);
  }
  return *ops;
}

SimdTier active_simd_tier() { return active_simd_ops().tier; }

void set_simd_tier(std::optional<SimdTier> tier) {
  if (tier.has_value() && *tier > detected_simd_tier())
    throw std::invalid_argument(
        std::string("set_simd_tier: tier '") + simd_tier_name(*tier) +
        "' exceeds the detected tier '" +
        simd_tier_name(detected_simd_tier()) + "'");
  g_active.store(&ops_for(tier.value_or(auto_simd_tier())),
                 std::memory_order_release);
}

}  // namespace nnlut::simd
