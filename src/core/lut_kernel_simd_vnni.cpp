// AVX-512 VNNI variant of the INT32 quantize+MAC path.
//
// vpdpwssd computes, per 32-bit lane, src + a.lo16*b.lo16 + a.hi16*b.hi16.
// With a = q_s (a full sign-extended int32 whose value fits int16: its low
// half IS q_s as int16 and its high half is the sign extension) and
// b = q_x & 0xffff (low half = q_x as int16, high half forced to zero so
// a's sign-extension bits contribute nothing), one instruction yields
// q_t + q_s * q_x exactly in int32 — replacing the two vpmuldq halves, two
// int64 adds and two double-bias conversions of the int64 MAC.
//
// Exactness gate, two levels:
//   - per table (once per eval): every padded slope fits int16 and
//     |q_s| * 2^15 + |q_t| <= INT32_MAX (detail::int32_mac_fits_int16_pairs),
//     so no representable quantized input can overflow the int32
//     accumulator. Tables that fail keep the int64 MAC wholesale.
//   - per vector: every lane's q_x must itself fit int16 (checked by a
//     shift-pair sign-extension round-trip); vectors with any wider lane
//     fall back to the int64 MAC for that vector.
// In the fast path the int32 accumulator equals the scalar int64
// accumulator value, and vcvtdq2ps rounds it to float exactly like the
// scalar static_cast<float>(int64) — so results are bit-identical to the
// avx512 tier and to forced scalar on every input; the fallback paths are
// the avx512 tier's own code.
//
// Everything but the MAC (quantize, comparator scan, register-resident
// bisection, permute/gather fetch) is the shared 16-lane template from
// lut_kernel_simd_avx512_common.h, instantiated in this TU.
//
// Compiled with -mavx512f -mavx512vnni only when the toolchain supports
// both; dispatch requires CPUID avx512f AND avx512vnni before routing here.
#include <cstddef>
#include <cstdint>

#include "core/lut_kernel_simd.h"
#include "core/lut_kernel_simd_detail.h"

#if !defined(__AVX512F__) || !defined(__AVX512VNNI__)
#error "lut_kernel_simd_vnni.cpp must be compiled with -mavx512f -mavx512vnni"
#endif
#include "core/lut_kernel_simd_avx512_common.h"

namespace nnlut::simd {
namespace {

namespace a5 = avx512detail;

/// int16-pair MAC with the per-vector q_x range guard. The table-level
/// contract is already established by the caller.
struct VnniMac {
  __m512 operator()(__m512i qs, __m512i qx, __m512i qt, __m512 vso) const {
    const __m512i sext =
        _mm512_srai_epi32(_mm512_slli_epi32(qx, 16), 16);
    if (_mm512_cmpeq_epi32_mask(qx, sext) != 0xffffu)
      return a5::int_mac16(qs, qx, qt, vso);
    const __m512i acc = _mm512_dpwssd_epi32(
        qt, qs, _mm512_and_si512(qx, _mm512_set1_epi32(0xffff)));
    return _mm512_mul_ps(_mm512_cvtepi32_ps(acc), vso);
  }
};

}  // namespace

void avx512vnni_int32_eval(const std::int32_t* bp, std::size_t nb,
                           bool linear, const std::int32_t* s,
                           const std::int32_t* t, float sx, float so,
                           float* p, std::size_t n) {
  if (detail::int32_mac_fits_int16_pairs(s, t, nb + 1)) {
    a5::int32_eval16(bp, nb, linear, s, t, sx, so, p, n, VnniMac{});
  } else {
    a5::int32_eval16(bp, nb, linear, s, t, sx, so, p, n, a5::Int64Mac{});
  }
}

}  // namespace nnlut::simd
