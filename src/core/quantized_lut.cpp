#include "core/quantized_lut.h"

#include <memory>
#include <stdexcept>

namespace nnlut {

std::unique_ptr<ScalarFn> make_lut_fn(const PiecewiseLinear& lut,
                                      LutPrecision precision,
                                      float input_max_abs) {
  switch (precision) {
    case LutPrecision::kFp32:
      return std::make_unique<LutFp32>(lut);
    case LutPrecision::kFp16:
      return std::make_unique<LutFp16>(lut);
    case LutPrecision::kInt32:
      return std::make_unique<LutInt32>(lut, input_max_abs);
  }
  throw std::invalid_argument("unknown LutPrecision");
}

}  // namespace nnlut
