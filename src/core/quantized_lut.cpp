#include "core/quantized_lut.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace nnlut {

LutFp16::LutFp16(const PiecewiseLinear& lut) {
  for (float d : lut.breakpoints()) breakpoints_.push_back(float_to_half_bits(d));
  for (float s : lut.slopes()) slopes_.push_back(float_to_half_bits(s));
  for (float t : lut.intercepts()) intercepts_.push_back(float_to_half_bits(t));
}

float LutFp16::eval(float x) const {
  const Half hx(x);
  // Comparator bank over FP16 breakpoints.
  std::size_t i = 0;
  while (i < breakpoints_.size() &&
         !(hx.to_float() < half_bits_to_float(breakpoints_[i])))
    ++i;
  const Half s = Half::from_bits(slopes_[i]);
  const Half t = Half::from_bits(intercepts_[i]);
  return ((s * hx) + t).to_float();
}

namespace {
constexpr float kQMax = 32767.0f;  // +-2^15 - 1 budget for both MAC operands

std::int32_t quantize(float v, float scale) {
  const float q = std::round(v / scale);
  const float lim = 2.147e9f;
  return static_cast<std::int32_t>(std::clamp(q, -lim, lim));
}
}  // namespace

LutInt32::LutInt32(const PiecewiseLinear& lut, float input_max_abs) {
  if (!(input_max_abs > 0.0f))
    throw std::invalid_argument("LutInt32: input_max_abs must be positive");

  sx_ = input_max_abs / kQMax;

  float max_slope = 0.0f;
  for (float s : lut.slopes()) max_slope = std::max(max_slope, std::abs(s));
  ss_ = (max_slope > 0.0f ? max_slope : 1.0f) / kQMax;

  for (float d : lut.breakpoints()) breakpoints_.push_back(quantize(d, sx_));
  for (float s : lut.slopes()) slopes_.push_back(quantize(s, ss_));
  const float st = ss_ * sx_;
  for (float t : lut.intercepts()) intercepts_.push_back(quantize(t, st));
}

float LutInt32::eval(float x) const {
  const std::int32_t qx = quantize(x, sx_);
  std::size_t i = 0;
  while (i < breakpoints_.size() && qx >= breakpoints_[i]) ++i;
  // Integer MAC. With |q_s|,|q_x| <= 2^15 the product fits in int32; we use
  // int64 here only to keep the C++ arithmetic well-defined after the
  // intercept addition.
  const std::int64_t acc = static_cast<std::int64_t>(slopes_[i]) * qx +
                           static_cast<std::int64_t>(intercepts_[i]);
  return static_cast<float>(acc) * (ss_ * sx_);
}

std::unique_ptr<ScalarFn> make_lut_fn(const PiecewiseLinear& lut,
                                      LutPrecision precision,
                                      float input_max_abs) {
  switch (precision) {
    case LutPrecision::kFp32:
      return std::make_unique<LutFp32>(lut);
    case LutPrecision::kFp16:
      return std::make_unique<LutFp16>(lut);
    case LutPrecision::kInt32:
      return std::make_unique<LutInt32>(lut, input_max_abs);
  }
  throw std::invalid_argument("unknown LutPrecision");
}

}  // namespace nnlut
