#include "core/function_library.h"

#include <cctype>
#include <cmath>
#include <stdexcept>

#include "core/transform.h"

namespace nnlut {

namespace {

float swish_fn(float x) { return x / (1.0f + std::exp(-x)); }
float hswish_fn(float x) {
  const float r6 = std::min(std::max(x + 3.0f, 0.0f), 6.0f);
  return x * r6 / 6.0f;
}
float tanh_fn(float x) { return std::tanh(x); }
float sigmoid_fn(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// Table 1 of the paper, plus the extra Fig. 3(a) activation functions.
constexpr FnSpec kSpecs[] = {
    {TargetFn::kGelu, "GELU", &gelu_exact, kGeluRange, SignInit::kAny,
     SignInit::kAny},
    {TargetFn::kExp, "EXP", &exp_exact, kExpRange, SignInit::kPositive,
     SignInit::kPositive},
    {TargetFn::kReciprocal, "DIV", &reciprocal_exact, kDivideRange,
     SignInit::kNegative, SignInit::kPositive},
    {TargetFn::kRsqrt, "1/SQRT", &rsqrt_exact, kRsqrtRange,
     SignInit::kNegative, SignInit::kPositive},
    {TargetFn::kSwish, "Swish", &swish_fn, {-6.0f, 6.0f}, SignInit::kAny,
     SignInit::kAny},
    {TargetFn::kHswish, "HSwish", &hswish_fn, {-6.0f, 6.0f}, SignInit::kAny,
     SignInit::kAny},
    {TargetFn::kTanh, "Tanh", &tanh_fn, {-4.0f, 4.0f}, SignInit::kAny,
     SignInit::kAny},
    {TargetFn::kSigmoid, "Sigmoid", &sigmoid_fn, {-8.0f, 8.0f}, SignInit::kAny,
     SignInit::kAny},
};

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

}  // namespace

const FnSpec& fn_spec(TargetFn id) {
  for (const FnSpec& s : kSpecs)
    if (s.id == id) return s;
  throw std::invalid_argument("unknown TargetFn");
}

const FnSpec* fn_spec_by_name(std::string_view name) {
  for (const FnSpec& s : kSpecs)
    if (iequals(s.name, name)) return &s;
  // Friendly aliases.
  if (iequals(name, "reciprocal") || iequals(name, "divide"))
    return &fn_spec(TargetFn::kReciprocal);
  if (iequals(name, "rsqrt") || iequals(name, "isqrt"))
    return &fn_spec(TargetFn::kRsqrt);
  return nullptr;
}

std::span<const FnSpec> all_fn_specs() { return kSpecs; }

TrainConfig recipe(TargetFn id, int entries, FitPreset preset,
                   std::uint64_t seed) {
  if (entries < 2) throw std::invalid_argument("LUT needs at least 2 entries");
  const FnSpec& spec = fn_spec(id);

  TrainConfig cfg;
  cfg.hidden = entries - 1;
  cfg.range = spec.range;
  cfg.weight_sign = spec.weight_sign;
  cfg.bias_sign = spec.bias_sign;
  cfg.seed = seed + static_cast<std::uint64_t>(id) * 1000003u;

  if (preset == FitPreset::kPaper) {
    cfg.dataset_size = 100'000;
    cfg.epochs = 100;
    cfg.restarts = 3;
  } else {
    cfg.dataset_size = 20'000;
    cfg.epochs = 50;
    cfg.restarts = 3;
  }

  // Functions with all their curvature in one corner of a wide range need
  // the sampler (and therefore the kink initialization) concentrated there:
  // 1/x-like functions near the low end of (1, 1024), exp near zero on
  // (-256, 0]. The covered range stays exactly Table 1's; only the density
  // changes (see the ablation_fitting bench for uniform-vs-log evidence).
  if (id == TargetFn::kReciprocal || id == TargetFn::kRsqrt)
    cfg.sampling = SampleDist::kLogUniform;
  if (id == TargetFn::kExp) cfg.sampling = SampleDist::kLogMagnitude;

  return cfg;
}

FittedLut fit_lut(TargetFn id, int entries, FitPreset preset,
                  std::uint64_t seed) {
  const FnSpec& spec = fn_spec(id);
  const TrainConfig cfg = recipe(id, entries, preset, seed);
  TrainResult r = fit_approx_net(spec.fn, cfg);
  FittedLut out;
  out.lut = nn_to_lut(r.net);
  out.net = std::move(r.net);
  out.validation_l1 = r.validation_l1;
  return out;
}

NnlutBundle train_bundle(int entries, FitPreset preset, std::uint64_t seed) {
  NnlutBundle b;
  b.gelu = fit_lut(TargetFn::kGelu, entries, preset, seed);
  b.exp = fit_lut(TargetFn::kExp, entries, preset, seed);
  b.reciprocal = fit_lut(TargetFn::kReciprocal, entries, preset, seed);
  b.rsqrt = fit_lut(TargetFn::kRsqrt, entries, preset, seed);
  return b;
}

}  // namespace nnlut
