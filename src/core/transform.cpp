#include "core/transform.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace nnlut {

PiecewiseLinear nn_to_lut(const ApproxNet& net, float merge_eps) {
  const std::size_t h = net.hidden_size();

  // Constant contribution of dead neurons (|n| ~ 0): active iff bias > 0.
  float const_offset = net.c;
  std::vector<float> kinks;
  kinks.reserve(h);
  for (std::size_t i = 0; i < h; ++i) {
    if (std::abs(net.n[i]) <= ApproxNet::kDeadEps) {
      if (net.b[i] > 0.0f) const_offset += net.m[i] * net.b[i];
    } else {
      kinks.push_back(-net.b[i] / net.n[i]);
    }
  }
  std::sort(kinks.begin(), kinks.end());

  // Merge kinks that coincide (or nearly so, when merge_eps > 0).
  std::vector<float> bps;
  bps.reserve(kinks.size());
  for (float d : kinks) {
    if (!std::isfinite(d)) continue;
    if (!bps.empty()) {
      const float scale = std::max({1.0f, std::abs(bps.back()), std::abs(d)});
      if (d - bps.back() <= merge_eps * scale || d <= bps.back()) continue;
    }
    bps.push_back(d);
  }

  const std::size_t segments = bps.size() + 1;
  std::vector<float> slopes(segments, 0.0f);
  std::vector<float> intercepts(segments, const_offset);

  // Representative point of each interval; the active set is constant inside.
  auto representative = [&](std::size_t seg) -> float {
    if (bps.empty()) return 0.0f;
    if (seg == 0) return bps.front() - 1.0f;
    if (seg == segments - 1) return bps.back() + 1.0f;
    return 0.5f * (bps[seg - 1] + bps[seg]);
  };

  for (std::size_t seg = 0; seg < segments; ++seg) {
    const float x = representative(seg);
    float s = 0.0f;
    float t = 0.0f;
    for (std::size_t j = 0; j < h; ++j) {
      if (std::abs(net.n[j]) <= ApproxNet::kDeadEps) continue;
      // Active test at the representative point. On the open interval the
      // sign of n_j*x + b_j never changes, so this decides the whole segment.
      if (net.n[j] * x + net.b[j] > 0.0f) {
        s += net.m[j] * net.n[j];
        t += net.m[j] * net.b[j];
      }
    }
    slopes[seg] = s;
    intercepts[seg] += t;
  }

  return PiecewiseLinear(std::move(bps), std::move(slopes), std::move(intercepts));
}

}  // namespace nnlut
