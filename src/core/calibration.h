// Dataset-free calibration of NN-LUT parameters (Sec. 3.3.3 of the paper):
// with all transformer parameters frozen, the inputs actually reaching a
// non-linear operation are captured on a small unlabeled set, the originating
// approximation network is regressed against the full-precision reference on
// that captured distribution, and the result is re-transformed into a LUT.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "core/approx_net.h"
#include "core/piecewise_linear.h"

namespace nnlut {

struct CalibrationConfig {
  int epochs = 5;  // paper: five epochs over the capture set
  float lr = 2e-4f;
  int batch_size = 256;
  int max_samples = 50'000;  // subsample large capture buffers
  std::uint64_t seed = 99;
};

struct CalibrationResult {
  ApproxNet net;
  PiecewiseLinear lut;
  double error_before = 0.0;  // mean |approx - ref| on the captured inputs
  double error_after = 0.0;
  bool improved = false;
};

/// Calibrate `start` against `reference` on the captured input distribution.
/// If continued training does not improve the captured-distribution error,
/// the original network is kept (calibration can never hurt).
CalibrationResult calibrate(const ApproxNet& start,
                            std::span<const float> captured_inputs,
                            const std::function<float(float)>& reference,
                            const CalibrationConfig& cfg = {});

}  // namespace nnlut
