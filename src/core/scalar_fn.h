// Scalar-function evaluation interface shared by every approximation backend
// (exact reference, FP32/FP16/INT32 LUTs, I-BERT integer kernels) plus the
// capture decorator used by dataset-free calibration (Sec. 3.3.3).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/piecewise_linear.h"

namespace nnlut {

/// A scalar function y = f(x), the unit of approximation in this library.
class ScalarFn {
 public:
  virtual ~ScalarFn() = default;
  virtual float eval(float x) const = 0;

  /// Batch evaluation, in place. Overridable for vectorized backends.
  virtual void eval_inplace(std::span<float> xs) const {
    for (float& x : xs) x = eval(x);
  }
};

/// Exact reference implementation wrapping any callable.
class ExactFn final : public ScalarFn {
 public:
  explicit ExactFn(std::function<float(float)> fn) : fn_(std::move(fn)) {}
  float eval(float x) const override { return fn_(x); }

 private:
  std::function<float(float)> fn_;
};

/// FP32 LUT evaluation (the plain NN-LUT / Linear-LUT deployment).
class LutFp32 final : public ScalarFn {
 public:
  explicit LutFp32(PiecewiseLinear lut) : lut_(std::move(lut)) {}
  float eval(float x) const override { return lut_(x); }
  const PiecewiseLinear& lut() const { return lut_; }

 private:
  PiecewiseLinear lut_;
};

/// Decorator that records every input it sees before delegating; the
/// recorded distribution drives NN-LUT calibration. The sink outlives the
/// decorator and is owned by the caller.
class CapturingFn final : public ScalarFn {
 public:
  CapturingFn(const ScalarFn& base, std::vector<float>& sink)
      : base_(&base), sink_(&sink) {}
  float eval(float x) const override {
    sink_->push_back(x);
    return base_->eval(x);
  }

 private:
  const ScalarFn* base_;
  std::vector<float>* sink_;
};

}  // namespace nnlut
