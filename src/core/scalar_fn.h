// Scalar-function evaluation interface shared by every approximation backend
// (exact reference, FP32/FP16/INT32 LUTs, I-BERT integer kernels) plus the
// capture decorator used by dataset-free calibration (Sec. 3.3.3).
//
// The contract is batched-first: eval_inplace(span) is the pure-virtual
// primitive every backend implements over a contiguous span, and scalar
// eval(x) is a non-virtual convenience that routes a 1-element span through
// it. Consumers should hand backends the largest span they have (a whole
// tensor, all attention rows) — per-element virtual dispatch is the slow
// path this design retires.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/piecewise_linear.h"

namespace nnlut {

/// A scalar function y = f(x), the unit of approximation in this library.
class ScalarFn {
 public:
  virtual ~ScalarFn() = default;

  /// Batch evaluation, in place: THE evaluation primitive.
  virtual void eval_inplace(std::span<float> xs) const = 0;

  /// Scalar convenience, routed through the batched primitive so derived
  /// classes observe every input exactly once.
  float eval(float x) const {
    eval_inplace(std::span<float>(&x, 1));
    return x;
  }
};

/// Exact reference implementation wrapping any callable.
class ExactFn final : public ScalarFn {
 public:
  explicit ExactFn(std::function<float(float)> fn) : fn_(std::move(fn)) {}
  void eval_inplace(std::span<float> xs) const override {
    for (float& x : xs) x = fn_(x);
  }

 private:
  std::function<float(float)> fn_;
};

/// FP32 LUT evaluation (the plain NN-LUT / Linear-LUT deployment), through
/// the table's compiled plan.
class LutFp32 final : public ScalarFn {
 public:
  explicit LutFp32(PiecewiseLinear lut) : lut_(std::move(lut)) {}
  void eval_inplace(std::span<float> xs) const override {
    lut_.eval_inplace(xs);
  }
  const PiecewiseLinear& lut() const { return lut_; }

 private:
  PiecewiseLinear lut_;
};

/// Decorator that records every input it sees before delegating; the
/// recorded distribution drives NN-LUT calibration. The sink outlives the
/// decorator and is owned by the caller. Batched inputs are bulk-appended
/// and then delegated to the base's batched evaluation, so capture neither
/// misses spans nor knocks the base off its vectorized path.
class CapturingFn final : public ScalarFn {
 public:
  CapturingFn(const ScalarFn& base, std::vector<float>& sink)
      : base_(&base), sink_(&sink) {}
  void eval_inplace(std::span<float> xs) const override {
    sink_->insert(sink_->end(), xs.begin(), xs.end());
    base_->eval_inplace(xs);
  }

 private:
  const ScalarFn* base_;
  std::vector<float>* sink_;
};

}  // namespace nnlut
