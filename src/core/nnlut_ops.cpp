#include "core/nnlut_ops.h"

#include <algorithm>
#include <cassert>

namespace nnlut {

void SoftmaxApprox::operator()(std::span<float> row) const {
  if (row.empty()) return;
  const float mx = *std::max_element(row.begin(), row.end());
  float sum = 0.0f;
  for (float& v : row) {
    const float shifted = std::clamp(v - mx, exp_clip_.lo, exp_clip_.hi);
    v = exp_fn_->eval(shifted);
    sum += v;
  }
  // The normalizer lies in [1, row_size] because the max element maps to
  // exp(0) = 1; Table 1 trains the Divide LUT on (1, 1024) for exactly this.
  const float inv = recip_fn_->eval(sum);
  for (float& v : row) v *= inv;
}

float LayerNormApprox::inv_std(float v) const {
  if (opt_.input_scaling && v < 1.0f) {
    // v*S stays within the trained range (0.1, 1024) for v > S^-1; smaller
    // variances saturate at the LUT boundary, which is the intended
    // behaviour of the power-of-two pre-scaler.
    return rsqrt_fn_->eval(v * opt_.scale) * std::sqrt(opt_.scale);
  }
  return rsqrt_fn_->eval(v);
}

void LayerNormApprox::operator()(std::span<const float> x, std::span<float> y,
                                 std::span<const float> gamma,
                                 std::span<const float> beta) const {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n == 0) return;

  double mean = 0.0;
  for (float v : x) mean += v;
  mean /= static_cast<double>(n);

  double var = 0.0;
  for (float v : x) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(n);

  const float inv = inv_std(static_cast<float>(var) + opt_.eps);
  for (std::size_t i = 0; i < n; ++i) {
    float v = (x[i] - static_cast<float>(mean)) * inv;
    if (!gamma.empty()) v *= gamma[i];
    if (!beta.empty()) v += beta[i];
    y[i] = v;
  }
}

}  // namespace nnlut
