#include "core/nnlut_ops.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "runtime/thread_pool.h"

namespace nnlut {

namespace {

/// Exact mean and variance of one row (the MAC-array work), accumulated in
/// double exactly like the reference implementation.
void row_moments(const float* x, std::size_t n, float& mean_out,
                 float& var_out) {
  double mean = 0.0;
  for (std::size_t j = 0; j < n; ++j) mean += x[j];
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double d = x[j] - mean;
    var += d * d;
  }
  var /= static_cast<double>(n);
  mean_out = static_cast<float>(mean);
  var_out = static_cast<float>(var);
}

void affine_row(const float* x, float* y, std::size_t n, float mean, float inv,
                std::span<const float> gamma, std::span<const float> beta) {
  for (std::size_t j = 0; j < n; ++j) {
    float v = (x[j] - mean) * inv;
    if (!gamma.empty()) v *= gamma[j];
    if (!beta.empty()) v += beta[j];
    y[j] = v;
  }
}

// Per-thread block scratch. The rows_block kernels run either on the caller
// or on pool worker threads, both long-lived, so once a thread has seen the
// largest block of a warmed serving slot these never reallocate. Every
// element is (re)written before it is read, so recycled contents cannot
// leak into results.
thread_local std::vector<float> t_softmax_inv;
thread_local std::vector<float> t_ln_mean;
thread_local std::vector<float> t_ln_vs;
thread_local std::vector<unsigned char> t_ln_scaled;

}  // namespace

void SoftmaxApprox::operator()(std::span<float> row) const {
  if (row.empty()) return;
  const float mx = *std::max_element(row.begin(), row.end());
  for (float& v : row) v = std::clamp(v - mx, exp_clip_.lo, exp_clip_.hi);
  exp_fn_->eval_inplace(row);
  float sum = 0.0f;
  for (float v : row) sum += v;
  // The normalizer lies in [1, row_size] because the max element maps to
  // exp(0) = 1; Table 1 trains the Divide LUT on (1, 1024) for exactly this.
  const float inv = recip_fn_->eval(sum);
  for (float& v : row) v *= inv;
}

void SoftmaxApprox::rows(std::span<float> data, std::size_t nrows,
                         std::size_t ncols) const {
  assert(data.size() == nrows * ncols);
  if (nrows == 0 || ncols == 0) return;
  if (nrows == 1) {
    (*this)(data);
    return;
  }
  // Rows are independent: shard row blocks across the pool, each block
  // running the batched three-pass kernel over its sub-span.
  runtime::parallel_for(0, nrows, runtime::grain_for(3 * ncols),
                        [&](std::size_t r0, std::size_t r1) {
                          rows_block(data.data() + r0 * ncols, r1 - r0, ncols);
                        });
}

void SoftmaxApprox::rows_block(float* data, std::size_t nrows,
                               std::size_t ncols) const {
  for (std::size_t r = 0; r < nrows; ++r) {
    float* row = data + r * ncols;
    float mx = row[0];
    for (std::size_t j = 1; j < ncols; ++j) mx = std::max(mx, row[j]);
    for (std::size_t j = 0; j < ncols; ++j)
      row[j] = std::clamp(row[j] - mx, exp_clip_.lo, exp_clip_.hi);
  }
  // One EXP LUT pass over every shifted logit of every row in the block.
  exp_fn_->eval_inplace(std::span<float>(data, nrows * ncols));
  std::vector<float>& inv = t_softmax_inv;
  inv.resize(nrows);
  for (std::size_t r = 0; r < nrows; ++r) {
    const float* row = data + r * ncols;
    float sum = 0.0f;
    for (std::size_t j = 0; j < ncols; ++j) sum += row[j];
    inv[r] = sum;
  }
  // One Divide LUT pass over all the block's row normalizers.
  recip_fn_->eval_inplace(inv);
  for (std::size_t r = 0; r < nrows; ++r) {
    float* row = data + r * ncols;
    for (std::size_t j = 0; j < ncols; ++j) row[j] *= inv[r];
  }
}

float LayerNormApprox::inv_std(float v) const {
  if (opt_.input_scaling && v < 1.0f) {
    // v*S stays within the trained range (0.1, 1024) for v > S^-1; smaller
    // variances saturate at the LUT boundary, which is the intended
    // behaviour of the power-of-two pre-scaler.
    return rsqrt_fn_->eval(v * opt_.scale) * std::sqrt(opt_.scale);
  }
  return rsqrt_fn_->eval(v);
}

void LayerNormApprox::operator()(std::span<const float> x, std::span<float> y,
                                 std::span<const float> gamma,
                                 std::span<const float> beta) const {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n == 0) return;

  float mean = 0.0f, var = 0.0f;
  row_moments(x.data(), n, mean, var);
  const float inv = inv_std(var + opt_.eps);
  affine_row(x.data(), y.data(), n, mean, inv, gamma, beta);
}

void LayerNormApprox::rows(std::span<const float> x, std::span<float> y,
                           std::size_t nrows, std::size_t ncols,
                           std::span<const float> gamma,
                           std::span<const float> beta) const {
  assert(x.size() == nrows * ncols && y.size() == nrows * ncols);
  if (nrows == 0 || ncols == 0) return;
  if (!opt_.allow_parallel) {
    rows_block(x.data(), y.data(), nrows, ncols, gamma, beta);
    return;
  }
  runtime::parallel_for(0, nrows, runtime::grain_for(4 * ncols),
                        [&](std::size_t r0, std::size_t r1) {
                          rows_block(x.data() + r0 * ncols,
                                     y.data() + r0 * ncols, r1 - r0, ncols,
                                     gamma, beta);
                        });
}

void LayerNormApprox::rows_block(const float* x, float* y, std::size_t nrows,
                                 std::size_t ncols,
                                 std::span<const float> gamma,
                                 std::span<const float> beta) const {
  std::vector<float>& mean = t_ln_mean;
  std::vector<float>& vs = t_ln_vs;
  std::vector<unsigned char>& scaled = t_ln_scaled;
  mean.resize(nrows);
  vs.resize(nrows);
  scaled.assign(nrows, 0);  // assign, not resize: stale 1s must clear
  for (std::size_t r = 0; r < nrows; ++r) {
    float m = 0.0f, v = 0.0f;
    row_moments(x + r * ncols, ncols, m, v);
    mean[r] = m;
    vs[r] = v + opt_.eps;
    if (opt_.input_scaling && vs[r] < 1.0f) {
      vs[r] = vs[r] * opt_.scale;
      scaled[r] = 1;
    }
  }
  // One 1/SQRT LUT pass over every (pre-scaled) row variance.
  rsqrt_fn_->eval_inplace(vs);
  const float root_s = std::sqrt(opt_.scale);
  for (std::size_t r = 0; r < nrows; ++r) {
    const float inv = scaled[r] ? vs[r] * root_s : vs[r];
    affine_row(x + r * ncols, y + r * ncols, ncols, mean[r], inv, gamma, beta);
  }
}

}  // namespace nnlut
