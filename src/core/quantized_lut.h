// Reduced-precision LUT deployments (Sec. 4.1, footnote 3 of the paper):
//  - FP16: breakpoints and parameters rounded to binary16, and the
//    multiply/add computed in binary16 arithmetic;
//  - INT32: breakpoints and parameters quantized with I-BERT-style scaling
//    factors; the lookup compares integer inputs and the MAC runs in integer
//    arithmetic.
//
// Both are thin ScalarFn adapters over the precision-specialized compiled
// plans in core/lut_kernel.h; batched evaluation is the primitive.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "core/lut_kernel.h"
#include "core/piecewise_linear.h"
#include "core/scalar_fn.h"

namespace nnlut {

/// FP16 LUT: every stored constant is binary16 and every arithmetic result
/// is rounded through binary16, emulating a genuine half-precision datapath.
class LutFp16 final : public ScalarFn {
 public:
  explicit LutFp16(const PiecewiseLinear& lut)
      : kernel_(lut.breakpoints(), lut.slopes(), lut.intercepts()) {}

  void eval_inplace(std::span<float> xs) const override { kernel_.eval(xs); }
  const LutKernelFp16& kernel() const { return kernel_; }

 private:
  LutKernelFp16 kernel_;
};

/// INT32 LUT following I-BERT's scaling-factor quantization: a value v is
/// represented as integer q with real value q * S. The input arrives with
/// scale Sx (computed from the covered range), slopes use scale Ss, and
/// intercepts share the product scale Ss*Sx so the integer MAC
/// q_out = q_s * q_x + q_t needs no alignment. Magnitudes are budgeted so
/// q_s*q_x fits comfortably in 32 bits (|q| <= 2^15 on both sides).
class LutInt32 final : public ScalarFn {
 public:
  /// `input_max_abs` bounds |x| of the pre-scaled integer input (I-BERT
  /// assumes inputs pre-scaled by the previous layer; we derive Sx from it).
  LutInt32(const PiecewiseLinear& lut, float input_max_abs)
      : kernel_(lut.breakpoints(), lut.slopes(), lut.intercepts(),
                input_max_abs) {}

  void eval_inplace(std::span<float> xs) const override { kernel_.eval(xs); }
  const LutKernelInt32& kernel() const { return kernel_; }

  float input_scale() const { return kernel_.input_scale(); }
  float output_scale() const { return kernel_.output_scale(); }

 private:
  LutKernelInt32 kernel_;
};

/// Precision of a deployed LUT, used by benches and the transformer backends.
enum class LutPrecision { kFp32, kFp16, kInt32 };

/// Factory: wrap `lut` at the requested precision. For kInt32 the input
/// range must be supplied via `input_max_abs`.
std::unique_ptr<ScalarFn> make_lut_fn(const PiecewiseLinear& lut,
                                      LutPrecision precision,
                                      float input_max_abs = 1024.0f);

}  // namespace nnlut
