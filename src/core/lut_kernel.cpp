#include "core/lut_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "core/lut_kernel_simd.h"
#include "core/lut_kernel_simd_detail.h"
#include "core/thread_annotations.h"
#include "numerics/half.h"

namespace nnlut {
namespace {

using simd::detail::bisect_index;
using simd::detail::half_mac;
using simd::detail::int_quantize;

/// Next power of two >= entries.
std::size_t pad_entries(std::size_t entries) {
  std::size_t p = 1;
  while (p < entries) p <<= 1;
  return p;
}

// Tables at or below this padded size use the linear comparator-bank scan;
// larger ones use branchless bisection.
constexpr std::size_t kLinearScanMax = 32;

constexpr float kIntQMax = 32767.0f;  // +-2^15 - 1 budget for MAC operands

}  // namespace

// ------------------------------------------------------------- LutKernel ---

LutKernel::LutKernel(std::span<const float> breakpoints,
                     std::span<const float> slopes,
                     std::span<const float> intercepts) {
  entries_ = slopes.size();
  if (entries_ == 0) return;
  const std::size_t padded = pad_entries(entries_);
  breakpoints_.assign(breakpoints.begin(), breakpoints.end());
  breakpoints_.resize(padded - 1, std::numeric_limits<float>::infinity());
  slopes_.assign(slopes.begin(), slopes.end());
  slopes_.resize(padded, slopes.back());
  intercepts_.assign(intercepts.begin(), intercepts.end());
  intercepts_.resize(padded, intercepts.back());
  linear_scan_ = padded <= kLinearScanMax;
}

void LutKernel::eval(std::span<float> xs) const {
  if (entries_ == 0 || xs.empty()) return;
  // One indirect call per span through the runtime-selected ISA tier; every
  // tier is bit-identical (core/lut_kernel_simd.h).
  simd::active_simd_ops().fp32_eval(breakpoints_.data(), breakpoints_.size(),
                                    linear_scan_, slopes_.data(),
                                    intercepts_.data(), xs.data(), xs.size());
}

float LutKernel::eval_scalar(float x) const {
  if (entries_ == 0) return x;
  const std::size_t nb = breakpoints_.size();
  std::uint32_t k = 0;
  if (nb != 0) {
    if (linear_scan_) {
      for (std::size_t j = 0; j < nb; ++j)
        k += static_cast<std::uint32_t>(!(x < breakpoints_[j]));
    } else {
      k = bisect_index(breakpoints_.data(), nb, x);
    }
  }
  return slopes_[k] * x + intercepts_[k];
}

// --------------------------------------------------------- LutKernelFp16 ---

LutKernelFp16::LutKernelFp16(std::span<const float> breakpoints,
                             std::span<const float> slopes,
                             std::span<const float> intercepts) {
  entries_ = slopes.size();
  if (entries_ == 0) return;
  const std::size_t padded = pad_entries(entries_);
  breakpoints_.reserve(padded - 1);
  for (float d : breakpoints) breakpoints_.push_back(round_to_half(d));
  breakpoints_.resize(padded - 1, std::numeric_limits<float>::infinity());
  slopes_.reserve(padded);
  for (float v : slopes) slopes_.push_back(round_to_half(v));
  slopes_.resize(padded, slopes_.back());
  intercepts_.reserve(padded);
  for (float v : intercepts) intercepts_.push_back(round_to_half(v));
  intercepts_.resize(padded, intercepts_.back());
  linear_scan_ = padded <= kLinearScanMax;
}

void LutKernelFp16::eval(std::span<float> xs) const {
  if (entries_ == 0 || xs.empty()) return;
  // Same tier dispatch as the FP32 plan; the tier's fp16_eval entry rounds
  // inputs and every MAC intermediate through binary16 (F16C / AVX-512
  // vcvtps2ph round-trips on the wide tiers, numerics/half.h when scalar —
  // bit-identical either way).
  simd::active_simd_ops().fp16_eval(breakpoints_.data(), breakpoints_.size(),
                                    linear_scan_, slopes_.data(),
                                    intercepts_.data(), xs.data(), xs.size());
}

float LutKernelFp16::eval_scalar(float x) const {
  if (entries_ == 0) return x;
  const float xh = round_to_half(x);
  const std::size_t nb = breakpoints_.size();
  std::uint32_t k = 0;
  if (nb != 0) {
    if (linear_scan_) {
      for (std::size_t j = 0; j < nb; ++j)
        k += static_cast<std::uint32_t>(!(xh < breakpoints_[j]));
    } else {
      k = bisect_index(breakpoints_.data(), nb, xh);
    }
  }
  return half_mac(slopes_[k], xh, intercepts_[k]);
}

// -------------------------------------------------------- LutKernelInt32 ---

LutKernelInt32::LutKernelInt32(std::span<const float> breakpoints,
                               std::span<const float> slopes,
                               std::span<const float> intercepts,
                               float input_max_abs) {
  if (!(input_max_abs > 0.0f))
    throw std::invalid_argument("LutKernelInt32: input_max_abs must be positive");
  entries_ = slopes.size();
  if (entries_ == 0) return;

  sx_ = input_max_abs / kIntQMax;
  float max_slope = 0.0f;
  for (float v : slopes) max_slope = std::max(max_slope, std::abs(v));
  ss_ = (max_slope > 0.0f ? max_slope : 1.0f) / kIntQMax;

  const std::size_t padded = pad_entries(entries_);
  breakpoints_.reserve(padded - 1);
  for (float d : breakpoints) breakpoints_.push_back(int_quantize(d, sx_));
  // INT32_MAX sentinel: quantized inputs are clamped below it, so padded
  // comparators never fire.
  breakpoints_.resize(padded - 1, std::numeric_limits<std::int32_t>::max());
  slopes_.reserve(padded);
  for (float v : slopes) slopes_.push_back(int_quantize(v, ss_));
  slopes_.resize(padded, slopes_.back());
  const float st = ss_ * sx_;
  intercepts_.reserve(padded);
  for (float v : intercepts) intercepts_.push_back(int_quantize(v, st));
  intercepts_.resize(padded, intercepts_.back());
  linear_scan_ = padded <= kLinearScanMax;
}

void LutKernelInt32::eval(std::span<float> xs) const {
  if (entries_ == 0 || xs.empty()) return;
  simd::active_simd_ops().int32_eval(breakpoints_.data(), breakpoints_.size(),
                                     linear_scan_, slopes_.data(),
                                     intercepts_.data(), sx_, ss_ * sx_,
                                     xs.data(), xs.size());
}

float LutKernelInt32::eval_scalar(float x) const {
  if (entries_ == 0) return x;
  const std::int32_t qx = int_quantize(x, sx_);
  const std::size_t nb = breakpoints_.size();
  std::uint32_t k = 0;
  if (nb != 0) {
    if (linear_scan_) {
      for (std::size_t j = 0; j < nb; ++j)
        k += static_cast<std::uint32_t>(!(qx < breakpoints_[j]));
    } else {
      k = bisect_index(breakpoints_.data(), nb, qx);
    }
  }
  const std::int64_t acc = static_cast<std::int64_t>(slopes_[k]) * qx +
                           static_cast<std::int64_t>(intercepts_[k]);
  return static_cast<float>(acc) * (ss_ * sx_);
}

// ---------------------------------------------------------- plan cache ---

namespace {

/// FNV-1a over the raw bytes of a float span (bitwise: -0.0 vs 0.0 and
/// distinct NaN payloads hash differently, matching the equality test).
std::uint64_t fnv1a(std::uint64_t h, std::span<const float> xs) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(xs.data());
  const std::size_t n = xs.size() * sizeof(float);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t table_hash(std::span<const float> breakpoints,
                         std::span<const float> slopes,
                         std::span<const float> intercepts) {
  std::uint64_t h = 14695981039346656037ull;
  h = fnv1a(h, breakpoints);
  h ^= 0x9e3779b97f4a7c15ull;  // separator so ({a},{b}) != ({a,b},{})
  h = fnv1a(h, slopes);
  h ^= 0x9e3779b97f4a7c15ull;
  h = fnv1a(h, intercepts);
  return h;
}

bool bitwise_equal(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// Compilation is deterministic and the padded arrays embed the unpadded
// table as a prefix, so (entries, padded arrays) equality == input equality.
bool same_table(const LutKernel& plan, std::size_t entries,
                std::span<const float> breakpoints,
                std::span<const float> slopes,
                std::span<const float> intercepts) {
  if (plan.entries() != entries) return false;
  const auto pb = plan.padded_breakpoints();
  const auto ps = plan.padded_slopes();
  const auto pt = plan.padded_intercepts();
  return bitwise_equal(pb.first(breakpoints.size()), breakpoints) &&
         bitwise_equal(ps.first(slopes.size()), slopes) &&
         bitwise_equal(pt.first(intercepts.size()), intercepts);
}

// Every kSweepPeriod lookups, drop expired weak references map-wide so
// one-off tables (fitting sweeps compile thousands, each hashed once and
// never looked up again) cannot grow the map without bound.
constexpr std::size_t kSweepPeriod = 64;

struct PlanCache {
  Mutex mu;
  // Hash buckets of weak refs; collisions resolved by content comparison.
  std::unordered_map<std::uint64_t, std::vector<std::weak_ptr<const LutKernel>>>
      plans NNLUT_GUARDED_BY(mu);
  std::size_t hits NNLUT_GUARDED_BY(mu) = 0;
  std::size_t misses NNLUT_GUARDED_BY(mu) = 0;
  std::size_t sweep_countdown NNLUT_GUARDED_BY(mu) = kSweepPeriod;

  void sweep() NNLUT_REQUIRES(mu) {
    // Unordered iteration is safe here: the sweep only drops expired weak
    // refs, so visit order changes which entry is erased first but never
    // what survives — nothing here feeds an output path.
    // lint:allow unordered-iter
    for (auto it = plans.begin(); it != plans.end();) {
      auto& bucket = it->second;
      std::erase_if(bucket, [](const std::weak_ptr<const LutKernel>& w) {
        return w.expired();
      });
      it = bucket.empty() ? plans.erase(it) : std::next(it);
    }
  }
};

PlanCache& plan_cache() {
  static PlanCache* cache = new PlanCache;  // leaked: usable at exit
  return *cache;
}

}  // namespace

std::shared_ptr<const LutKernel> compile_plan_cached(
    std::span<const float> breakpoints, std::span<const float> slopes,
    std::span<const float> intercepts) {
  PlanCache& cache = plan_cache();
  const std::uint64_t h = table_hash(breakpoints, slopes, intercepts);
  MutexLock lk(cache.mu);
  if (--cache.sweep_countdown == 0) {
    cache.sweep_countdown = kSweepPeriod;
    cache.sweep();
  }
  auto& bucket = cache.plans[h];
  for (auto it = bucket.begin(); it != bucket.end();) {
    if (std::shared_ptr<const LutKernel> plan = it->lock()) {
      if (same_table(*plan, slopes.size(), breakpoints, slopes, intercepts)) {
        ++cache.hits;
        return plan;
      }
      ++it;
    } else {
      it = bucket.erase(it);  // prune expired entries as we pass them
    }
  }
  ++cache.misses;
  auto plan = std::make_shared<const LutKernel>(breakpoints, slopes, intercepts);
  bucket.push_back(plan);
  return plan;
}

PlanCacheStats plan_cache_stats() {
  PlanCache& cache = plan_cache();
  MutexLock lk(cache.mu);
  PlanCacheStats s;
  s.hits = cache.hits;
  s.misses = cache.misses;
  // Order-independent sums over the buckets; diagnostics only.
  // lint:allow unordered-iter
  for (const auto& kv : cache.plans) {
    s.cached += kv.second.size();
    for (const auto& weak : kv.second)
      if (!weak.expired()) ++s.live;
  }
  return s;
}

}  // namespace nnlut
