#include "core/calibration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/trainer.h"
#include "core/transform.h"
#include "numerics/rng.h"

namespace nnlut {

namespace {
double mean_abs_error_on(const ApproxNet& net, std::span<const float> xs,
                         const std::function<float(float)>& reference) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (float x : xs) s += std::abs(static_cast<double>(net(x)) - reference(x));
  return s / static_cast<double>(xs.size());
}
}  // namespace

CalibrationResult calibrate(const ApproxNet& start,
                            std::span<const float> captured_inputs,
                            const std::function<float(float)>& reference,
                            const CalibrationConfig& cfg) {
  if (captured_inputs.empty())
    throw std::invalid_argument("calibrate: empty capture buffer");

  Rng rng(cfg.seed);

  // Subsample the capture buffer if it exceeds the budget.
  std::vector<float> xs(captured_inputs.begin(), captured_inputs.end());
  if (static_cast<int>(xs.size()) > cfg.max_samples) {
    std::shuffle(xs.begin(), xs.end(), rng.engine());
    xs.resize(static_cast<std::size_t>(cfg.max_samples));
  }
  std::vector<float> ys(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = reference(xs[i]);

  CalibrationResult out;
  out.error_before = mean_abs_error_on(start, xs, reference);

  // Continue Adam/L1 training from the deployed parameters, on the captured
  // distribution, with a small constant learning rate.
  ApproxNet net = start;
  TrainConfig tc;
  tc.hidden = static_cast<int>(start.hidden_size());
  tc.epochs = cfg.epochs;
  tc.batch_size = cfg.batch_size;
  tc.lr = cfg.lr;
  tc.decay_at_frac1 = 2.0f;  // no decay within 5 epochs
  tc.decay_at_frac2 = 2.0f;
  tc.loss = LossKind::kL1;
  train_adam(net, xs, ys, tc, rng);

  // Closed-form output refit on the captured data is cheap and safe.
  ApproxNet refit = net;
  if (refit_output_layer(refit, xs, ys) &&
      mean_abs_error_on(refit, xs, reference) <
          mean_abs_error_on(net, xs, reference)) {
    net = std::move(refit);
  }

  out.error_after = mean_abs_error_on(net, xs, reference);
  out.improved = out.error_after < out.error_before;
  if (!out.improved) {
    net = start;  // never deploy a worse approximator
    out.error_after = out.error_before;
  }
  out.lut = nn_to_lut(net);
  out.net = std::move(net);
  return out;
}

}  // namespace nnlut
