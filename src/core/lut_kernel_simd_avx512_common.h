// 16-lane (AVX-512F) building blocks shared by the AVX-512 tier TUs:
// lut_kernel_simd_avx512.cpp (-mavx512f) and lut_kernel_simd_vnni.cpp
// (-mavx512f -mavx512vnni). `static` internal linkage for the same reason
// as lut_kernel_simd_detail.h: each TU compiles its own copy under its own
// -m flags, so the linker can never hand a wide copy to a generic TU. Both
// including TUs target the identical 16-lane ISA subset for everything
// here, and with -ffp-contract=off the copies are bit-identical.
//
// Comparator results live in mask registers (one k-reg per compare,
// accumulated with mask_add), and the whole 32-entry linear-scan class
// fetches (slope, intercept) with register permutes — vpermps for banks of
// <= 16 padded entries, vpermt2ps across a register pair for the full 32.
// Bisection keeps the first (up to) 5 tree levels register-resident: 31
// heap nodes in a register pair probed by vpermt2ps/vpermt2d, so each lane
// narrows to a 32-entry window before the first gather; remaining levels
// gather one probe per step.
//
// The INT32 evaluation loop is a template over the MAC so the VNNI TU can
// swap in its vpdpwssd MAC while keeping byte-for-byte the same quantize /
// index / fetch sequence — the eligibility fallback then provably changes
// nothing but the MAC instruction.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/lut_kernel_simd_detail.h"

#ifndef __AVX512F__
#error "lut_kernel_simd_avx512_common.h requires -mavx512f"
#endif
#include <immintrin.h>

namespace nnlut::simd::avx512detail {

/// The register-resident top of a bisection tree: heap nodes 1..2^levels-1
/// (levels <= 5, so up to 31 nodes) spread over a register pair, probed by
/// a two-source permute on the heap index.
struct ResidentTreePs {
  __m512 lo, hi;
  int levels;
};

struct ResidentTreeEpi32 {
  __m512i lo, hi;
  int levels;
};

static inline ResidentTreePs load_resident_tree_ps(const float* bp,
                                                   std::size_t nb) {
  alignas(64) float a[32] = {};
  const int levels = detail::fill_bisect_nodes(bp, nb, 5, a);
  return {_mm512_load_ps(a), _mm512_load_ps(a + 16), levels};
}

static inline ResidentTreeEpi32 load_resident_tree_epi32(
    const std::int32_t* bp, std::size_t nb) {
  alignas(64) std::int32_t a[32] = {};
  const int levels = detail::fill_bisect_nodes(bp, nb, 5, a);
  return {_mm512_load_si512(a), _mm512_load_si512(a + 16), levels};
}

/// Comparator-bank scan for 16 FP32 lanes; _CMP_NLT_UQ is exactly !(x < d):
/// true for x >= d and for NaN.
static inline __m512i fp32_scan16(__m512 x, const float* bp, std::size_t nb) {
  const __m512i one = _mm512_set1_epi32(1);
  __m512i idx = _mm512_setzero_si512();
  for (std::size_t j = 0; j < nb; ++j) {
    const __m512 d = _mm512_set1_ps(bp[j]);
    const __mmask16 ge = _mm512_cmp_ps_mask(x, d, _CMP_NLT_UQ);
    idx = _mm512_mask_add_epi32(idx, ge, idx, one);
  }
  return idx;
}

/// Branchless bisection for 16 FP32 lanes: the first rt.levels probes come
/// from the resident register pair (vpermt2ps on the heap index), the rest
/// gather. Step for step this visits the same breakpoints as the scalar
/// bisect_index.
static inline __m512i fp32_bisect16(__m512 x, const float* bp, std::size_t nb,
                                    const ResidentTreePs& rt) {
  const __m512i one = _mm512_set1_epi32(1);
  __m512i pos = _mm512_setzero_si512();
  __m512i node = one;  // heap index of the next resident probe
  std::uint32_t step = static_cast<std::uint32_t>(nb + 1) >> 1;
  for (int l = 0; l < rt.levels; ++l, step >>= 1) {
    const __m512 d =
        _mm512_permutex2var_ps(rt.lo, _mm512_sub_epi32(node, one), rt.hi);
    const __mmask16 ge = _mm512_cmp_ps_mask(x, d, _CMP_NLT_UQ);
    const __m512i vstep = _mm512_set1_epi32(static_cast<int>(step));
    pos = _mm512_mask_add_epi32(pos, ge, pos, vstep);
    const __m512i node2 = _mm512_add_epi32(node, node);
    node = _mm512_mask_add_epi32(node2, ge, node2, one);  // 2t + (ge ? 1 : 0)
  }
  for (; step != 0; step >>= 1) {
    const __m512i vstep = _mm512_set1_epi32(static_cast<int>(step));
    const __m512i probe =
        _mm512_add_epi32(pos, _mm512_set1_epi32(static_cast<int>(step) - 1));
    const __m512 d = _mm512_i32gather_ps(probe, bp, 4);
    const __mmask16 ge = _mm512_cmp_ps_mask(x, d, _CMP_NLT_UQ);
    pos = _mm512_mask_add_epi32(pos, ge, pos, vstep);
  }
  return pos;
}

/// Comparator-bank scan for 16 quantized INT32 lanes.
static inline __m512i int32_scan16(__m512i qx, const std::int32_t* bp,
                                   std::size_t nb) {
  const __m512i one = _mm512_set1_epi32(1);
  __m512i idx = _mm512_setzero_si512();
  for (std::size_t j = 0; j < nb; ++j) {
    const __m512i d = _mm512_set1_epi32(bp[j]);
    const __mmask16 ge = _mm512_cmp_epi32_mask(qx, d, _MM_CMPINT_NLT);
    idx = _mm512_mask_add_epi32(idx, ge, idx, one);
  }
  return idx;
}

/// Branchless bisection for 16 quantized INT32 lanes, resident top levels
/// then gathers, mirroring fp32_bisect16.
static inline __m512i int32_bisect16(__m512i qx, const std::int32_t* bp,
                                     std::size_t nb,
                                     const ResidentTreeEpi32& rt) {
  const __m512i one = _mm512_set1_epi32(1);
  __m512i pos = _mm512_setzero_si512();
  __m512i node = one;
  std::uint32_t step = static_cast<std::uint32_t>(nb + 1) >> 1;
  for (int l = 0; l < rt.levels; ++l, step >>= 1) {
    const __m512i d =
        _mm512_permutex2var_epi32(rt.lo, _mm512_sub_epi32(node, one), rt.hi);
    const __mmask16 ge = _mm512_cmp_epi32_mask(qx, d, _MM_CMPINT_NLT);
    const __m512i vstep = _mm512_set1_epi32(static_cast<int>(step));
    pos = _mm512_mask_add_epi32(pos, ge, pos, vstep);
    const __m512i node2 = _mm512_add_epi32(node, node);
    node = _mm512_mask_add_epi32(node2, ge, node2, one);
  }
  for (; step != 0; step >>= 1) {
    const __m512i vstep = _mm512_set1_epi32(static_cast<int>(step));
    const __m512i probe =
        _mm512_add_epi32(pos, _mm512_set1_epi32(static_cast<int>(step) - 1));
    const __m512i d = _mm512_i32gather_epi32(probe, bp, 4);
    const __mmask16 ge = _mm512_cmp_epi32_mask(qx, d, _MM_CMPINT_NLT);
    pos = _mm512_mask_add_epi32(pos, ge, pos, vstep);
  }
  return pos;
}

/// detail::int_quantize on 16 lanes, step for step (see the AVX2 twin for
/// the exactness argument).
static inline __m512i int_quantize16(__m512 x, __m512 vsx) {
  const __m512 q = _mm512_div_ps(x, vsx);
  const __m512 tr =
      _mm512_roundscale_ps(q, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
  const __m512 r = _mm512_sub_ps(q, tr);
  const __mmask16 away =
      _mm512_cmp_ps_mask(_mm512_abs_ps(r), _mm512_set1_ps(0.5f), _CMP_GE_OQ);
  const __m512i sign_bit = _mm512_set1_epi32(INT32_MIN);
  const __m512 step = _mm512_castsi512_ps(_mm512_or_epi32(
      _mm512_and_epi32(_mm512_castps_si512(q), sign_bit),
      _mm512_castps_si512(_mm512_set1_ps(1.0f))));  // copysign(1, q)
  __m512 rounded = _mm512_mask_add_ps(tr, away, tr, step);
  rounded = _mm512_maskz_mov_ps(_mm512_cmp_ps_mask(q, q, _CMP_ORD_Q), rounded);
  rounded = _mm512_min_ps(rounded, _mm512_set1_ps(detail::kIntQClamp));
  rounded = _mm512_max_ps(rounded, _mm512_set1_ps(-detail::kIntQClamp));
  return _mm512_cvttps_epi32(rounded);
}

/// float(q_s * q_x + q_t) * so for 16 lanes; int64 math on two 8-lane
/// halves, exact bias-to-double conversion, one rounding cvtpd2ps each.
static inline __m512 int_mac16(__m512i qs, __m512i qx, __m512i qt,
                               __m512 vso) {
  const __m512i bias_i = _mm512_set1_epi64(0x4338000000000000LL);
  const __m512d bias_d = _mm512_set1_pd(6755399441055744.0);  // 2^52 + 2^51
  __m256 f[2];
  for (int h = 0; h < 2; ++h) {
    const __m256i s32 = h == 0 ? _mm512_castsi512_si256(qs)
                               : _mm512_extracti64x4_epi64(qs, 1);
    const __m256i x32 = h == 0 ? _mm512_castsi512_si256(qx)
                               : _mm512_extracti64x4_epi64(qx, 1);
    const __m256i t32 = h == 0 ? _mm512_castsi512_si256(qt)
                               : _mm512_extracti64x4_epi64(qt, 1);
    const __m512i prod = _mm512_mul_epi32(_mm512_cvtepi32_epi64(s32),
                                          _mm512_cvtepi32_epi64(x32));
    const __m512i acc = _mm512_add_epi64(prod, _mm512_cvtepi32_epi64(t32));
    const __m512d d = _mm512_sub_pd(
        _mm512_castsi512_pd(_mm512_add_epi64(acc, bias_i)), bias_d);
    f[h] = _mm512_cvtpd_ps(d);
  }
  const __m512 lo = _mm512_castps256_ps512(f[0]);
  const __m512 hi = _mm512_castps256_ps512(f[1]);
  return _mm512_mul_ps(_mm512_shuffle_f32x4(lo, hi, 0x44), vso);
}

/// Functor form of int_mac16 for the templated eval below.
struct Int64Mac {
  __m512 operator()(__m512i qs, __m512i qx, __m512i qt, __m512 vso) const {
    return int_mac16(qs, qx, qt, vso);
  }
};

/// The complete 16-lane INT32 evaluation loop, parameterized on the MAC:
/// the avx512 tier instantiates it with Int64Mac, the avx512vnni tier with
/// its vpdpwssd MAC. Everything before the MAC (quantize, index, fetch) is
/// the same instantiation-for-instantiation, so two tiers can only differ
/// where the VNNI contract proves they do not.
template <typename MacFn>
static inline void int32_eval16(const std::int32_t* bp, std::size_t nb,
                                bool linear, const std::int32_t* s,
                                const std::int32_t* t, float sx, float so,
                                float* p, std::size_t n, MacFn mac) {
  const __m512 vsx = _mm512_set1_ps(sx);
  const __m512 vso = _mm512_set1_ps(so);
  std::size_t i = 0;
  if (nb != 0 && nb + 1 <= 16) {
    const __mmask16 lanes = static_cast<__mmask16>((1u << (nb + 1)) - 1u);
    const __m512i vs = _mm512_maskz_loadu_epi32(lanes, s);
    const __m512i vt = _mm512_maskz_loadu_epi32(lanes, t);
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i qx = int_quantize16(x, vsx);
      const __m512i idx = int32_scan16(qx, bp, nb);
      const __m512i qs = _mm512_permutexvar_epi32(idx, vs);
      const __m512i qt = _mm512_permutexvar_epi32(idx, vt);
      _mm512_storeu_ps(p + i, mac(qs, qx, qt, vso));
    }
  } else if (nb + 1 == 32) {
    const __m512i vs_lo = _mm512_loadu_si512(s);
    const __m512i vs_hi = _mm512_loadu_si512(s + 16);
    const __m512i vt_lo = _mm512_loadu_si512(t);
    const __m512i vt_hi = _mm512_loadu_si512(t + 16);
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i qx = int_quantize16(x, vsx);
      const __m512i idx = int32_scan16(qx, bp, nb);
      const __m512i qs = _mm512_permutex2var_epi32(vs_lo, idx, vs_hi);
      const __m512i qt = _mm512_permutex2var_epi32(vt_lo, idx, vt_hi);
      _mm512_storeu_ps(p + i, mac(qs, qx, qt, vso));
    }
  } else if (nb == 0 || linear) {
    const __m512i zero = _mm512_setzero_si512();
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i qx = int_quantize16(x, vsx);
      const __m512i idx = nb == 0 ? zero : int32_scan16(qx, bp, nb);
      const __m512i qs = _mm512_i32gather_epi32(idx, s, 4);
      const __m512i qt = _mm512_i32gather_epi32(idx, t, 4);
      _mm512_storeu_ps(p + i, mac(qs, qx, qt, vso));
    }
  } else {
    const ResidentTreeEpi32 rt = load_resident_tree_epi32(bp, nb);
    for (; i + 16 <= n; i += 16) {
      const __m512 x = _mm512_loadu_ps(p + i);
      const __m512i qx = int_quantize16(x, vsx);
      const __m512i idx = int32_bisect16(qx, bp, nb, rt);
      const __m512i qs = _mm512_i32gather_epi32(idx, s, 4);
      const __m512i qt = _mm512_i32gather_epi32(idx, t, 4);
      _mm512_storeu_ps(p + i, mac(qs, qx, qt, vso));
    }
  }
  if (i < n)
    detail::scalar_int32_eval(bp, nb, linear, s, t, sx, so, p + i, n - i);
}

}  // namespace nnlut::simd::avx512detail
