// Plain-text serialization of trained approximators and their LUTs, so a
// table trained once (the paper: "two minutes on one V100, a one-time cost")
// can be shipped to deployments. Format is a line-oriented text format with
// full float round-trip precision (hex floats).
//
//   nnlut-lut v1
//   entries <N>
//   breakpoints <d_1> ... <d_{N-1}>
//   slopes <s_1> ... <s_N>
//   intercepts <t_1> ... <t_N>
//
//   nnlut-net v1
//   hidden <H>
//   n <...> / b <...> / m <...> / c <...>
#pragma once

#include <iosfwd>
#include <string>

#include "core/approx_net.h"
#include "core/piecewise_linear.h"

namespace nnlut {

void write_lut(std::ostream& os, const PiecewiseLinear& lut);
/// Throws std::runtime_error on malformed input.
PiecewiseLinear read_lut(std::istream& is);

void write_net(std::ostream& os, const ApproxNet& net);
ApproxNet read_net(std::istream& is);

/// Convenience file wrappers (throw std::runtime_error on I/O failure).
void save_lut(const std::string& path, const PiecewiseLinear& lut);
PiecewiseLinear load_lut(const std::string& path);
void save_net(const std::string& path, const ApproxNet& net);
ApproxNet load_net(const std::string& path);

}  // namespace nnlut
