#include "core/approx_net.h"

namespace nnlut {

float ApproxNet::operator()(float x) const {
  float acc = c;
  const std::size_t h = n.size();
  for (std::size_t i = 0; i < h; ++i) {
    const float pre = n[i] * x + b[i];
    if (pre > 0.0f) acc += m[i] * pre;
  }
  return acc;
}

}  // namespace nnlut
