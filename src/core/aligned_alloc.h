// Cache-line-aligned storage for compiled LUT plans.
//
// Plan arrays (breakpoints / slopes / intercepts) are loaded by the SIMD
// kernel tiers with 256/512-bit vector loads; allocating them on 64-byte
// boundaries keeps every full-vector table load inside one cache line and
// lets the padded bank of a small table be fetched with a single aligned
// load. The allocator only changes alignment — size, value semantics and
// the element type are untouched, so `std::span<const float>` views over
// plan storage are unaffected.
#pragma once

#include <cstddef>
#include <new>

namespace nnlut {

template <typename T, std::size_t Align = 64>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

}  // namespace nnlut
