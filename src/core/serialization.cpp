#include "core/serialization.h"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace nnlut {

namespace {

// Hex-float formatting round-trips binary32 exactly.
void write_floats(std::ostream& os, const char* key,
                  std::span<const float> vals) {
  os << key;
  char buf[48];
  for (float v : vals) {
    std::snprintf(buf, sizeof buf, " %a", static_cast<double>(v));
    os << buf;
  }
  os << '\n';
}

std::vector<float> read_floats(std::istream& is, const char* key,
                               std::size_t expect) {
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error(std::string("serialization: missing line for ") + key);
  std::istringstream ls(line);
  std::string got_key;
  ls >> got_key;
  if (got_key != key)
    throw std::runtime_error("serialization: expected key '" + std::string(key) +
                             "', got '" + got_key + "'");
  std::vector<float> out;
  std::string tok;
  while (ls >> tok) {
    out.push_back(std::strtof(tok.c_str(), nullptr));
  }
  if (out.size() != expect)
    throw std::runtime_error("serialization: wrong count for key '" +
                             std::string(key) + "'");
  return out;
}

std::size_t read_count(std::istream& is, const char* key) {
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("serialization: truncated input");
  std::istringstream ls(line);
  std::string got_key;
  long long n = -1;
  ls >> got_key >> n;
  if (got_key != key || n < 0)
    throw std::runtime_error("serialization: bad count line for '" +
                             std::string(key) + "'");
  return static_cast<std::size_t>(n);
}

void expect_header(std::istream& is, const std::string& magic) {
  std::string line;
  if (!std::getline(is, line) || line != magic)
    throw std::runtime_error("serialization: bad header, expected '" + magic +
                             "'");
}

}  // namespace

void write_lut(std::ostream& os, const PiecewiseLinear& lut) {
  os << "nnlut-lut v1\n";
  os << "entries " << lut.entries() << '\n';
  write_floats(os, "breakpoints", lut.breakpoints());
  write_floats(os, "slopes", lut.slopes());
  write_floats(os, "intercepts", lut.intercepts());
}

PiecewiseLinear read_lut(std::istream& is) {
  expect_header(is, "nnlut-lut v1");
  const std::size_t entries = read_count(is, "entries");
  if (entries == 0) throw std::runtime_error("serialization: zero entries");
  auto bps = read_floats(is, "breakpoints", entries - 1);
  auto slopes = read_floats(is, "slopes", entries);
  auto intercepts = read_floats(is, "intercepts", entries);
  return PiecewiseLinear(std::move(bps), std::move(slopes),
                         std::move(intercepts));
}

void write_net(std::ostream& os, const ApproxNet& net) {
  os << "nnlut-net v1\n";
  os << "hidden " << net.hidden_size() << '\n';
  write_floats(os, "n", net.n);
  write_floats(os, "b", net.b);
  write_floats(os, "m", net.m);
  const float c[] = {net.c};
  write_floats(os, "c", c);
}

ApproxNet read_net(std::istream& is) {
  expect_header(is, "nnlut-net v1");
  const std::size_t hidden = read_count(is, "hidden");
  ApproxNet net;
  net.n = read_floats(is, "n", hidden);
  net.b = read_floats(is, "b", hidden);
  net.m = read_floats(is, "m", hidden);
  net.c = read_floats(is, "c", 1)[0];
  return net;
}

namespace {
template <typename WriteFn>
void save_to(const std::string& path, WriteFn&& fn) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  fn(os);
  if (!os) throw std::runtime_error("write failed: " + path);
}
}  // namespace

void save_lut(const std::string& path, const PiecewiseLinear& lut) {
  save_to(path, [&](std::ostream& os) { write_lut(os, lut); });
}

PiecewiseLinear load_lut(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_lut(is);
}

void save_net(const std::string& path, const ApproxNet& net) {
  save_to(path, [&](std::ostream& os) { write_net(os, net); });
}

ApproxNet load_net(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_net(is);
}

}  // namespace nnlut
