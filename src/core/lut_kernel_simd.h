// Runtime-dispatched SIMD tiers for the compiled LUT plans.
//
// The paper's hardware evaluates an N-entry table with a *parallel*
// comparator bank feeding one MAC (Eq. 4); the software analogue is a wide
// vector lane set: one AVX2/AVX-512 register holds 8/16 activations, every
// breakpoint is compared against all of them at once, and the selected
// (slope, intercept) pairs are fetched with a register permute (banks that
// fit one register) or a hardware gather (larger tables / bisection).
//
// Dispatch model:
//   - the ISA tier is resolved ONCE at first use from CPUID
//     (__builtin_cpu_supports) — scalar < AVX2 < AVX-512F < AVX-512F+VNNI —
//     and installed behind an atomic pointer that LutKernel::eval reads per
//     call;
//   - `NNLUT_FORCE_SCALAR` (any value except "" / "0") caps the automatic
//     choice at scalar; `NNLUT_SIMD_TIER=scalar|avx2|avx512|avx512vnni`
//     caps it at a named tier. Both only *lower* the tier — they can never
//     select an ISA the CPU does not have;
//   - `set_simd_tier` is the programmatic override (tests, RuntimeConfig):
//     forcing a tier above the detected one throws (the message names the
//     available set), `std::nullopt` restores the automatic choice.
//
// Determinism contract (ISA-invariance): every tier performs the exact same
// IEEE operation sequence per element as the scalar reference — compare,
// gather, one multiply, one add, with no FMA contraction — so evaluation is
// bit-identical across tiers for all inputs including values exactly on
// breakpoints, ±inf and NaN. This extends the repo's existing guarantee
// (thread-count- and batch-invariant results) to the ISA dimension; the
// forced-tier suite in tests/lut_kernel_test.cpp asserts it.
//
// The FP16 plan runs wide too: its binary16 rounding chain maps to
// vcvtps2ph/vcvtph2ps round-trips (F16C on the AVX2 tier, native 512-bit
// forms on AVX-512F), which numerics/half.h reproduces bit-for-bit
// including NaN payloads and denormals — so the emulated FP16 datapath is
// ISA-invariant like the other precisions. On AVX2 CPUs without F16C the
// FP16 slot falls back to the shared scalar block while FP32/INT32 stay
// wide.
//
// The avx512vnni tier differs from avx512 only in the INT32 MAC: when a
// compiled table provably fits the int16-pair contract, q_s*q_x + q_t runs
// as one vpdpwssd per vector; otherwise (and for any vector whose
// quantized inputs overflow int16) it falls back to the exact int64 chain,
// so results stay bit-identical either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nnlut::simd {

/// ISA tiers in strictly increasing capability; ordering comparisons are
/// meaningful (a CPU supporting a tier supports all lower tiers —
/// avx512vnni implies avx512f).
enum class SimdTier : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kAvx512Vnni = 3,
};

/// "scalar" | "avx2" | "avx512" | "avx512vnni".
const char* simd_tier_name(SimdTier tier);

/// Comma-separated names of every tier this process can run (the
/// available_simd_tiers() list) — the string error paths and logs embed so
/// an unsupported request always says what *is* supported.
std::string simd_tier_names();

/// Parse a tier name (as accepted in NNLUT_SIMD_TIER); nullopt if unknown.
std::optional<SimdTier> parse_simd_tier(std::string_view name);

/// Widest tier this CPU supports (and this build carries kernels for).
SimdTier detected_simd_tier();

/// Every tier this process can actually run, narrowest first: scalar, then
/// each wide tier up to detected_simd_tier(). The one list parity tests
/// and benchmark sweeps should iterate.
std::vector<SimdTier> available_simd_tiers();

/// The tier automatic dispatch resolves to: detected, capped by the
/// NNLUT_FORCE_SCALAR / NNLUT_SIMD_TIER environment (read once).
SimdTier auto_simd_tier();

/// Tier of the currently installed kernel table.
SimdTier active_simd_tier();

/// Force a tier (tests, benches, RuntimeConfig::simd). Throws
/// std::invalid_argument naming the available tier set if `tier` exceeds
/// detected_simd_tier(). std::nullopt restores automatic selection.
/// Thread-safe; kernels already executing finish on the table they loaded.
void set_simd_tier(std::optional<SimdTier> tier);

/// True when this build carries the F16C FP16 kernels and the CPU has the
/// f16c conversion instructions: the AVX2 tier's FP16 slot is wide. The
/// AVX-512 tiers always run FP16 wide (512-bit vcvtps2ph is AVX-512F).
bool has_f16c();

/// True when this build carries the VNNI INT32 MAC and the CPU reports
/// avx512vnni — i.e. the avx512vnni tier is detectable here.
bool has_avx512vnni();

/// Pure form of the environment policy, exposed for tests: the tier cap
/// implied by (NNLUT_FORCE_SCALAR, NNLUT_SIMD_TIER) values, clamped to
/// `detected`. nullptr means the variable is unset.
SimdTier env_capped_tier(const char* force_scalar, const char* tier_name,
                         SimdTier detected);

/// One per-tier kernel table. Every entry point evaluates a whole span in
/// place through a compiled plan; `nb` is the padded breakpoint count
/// (padded_entries - 1), `linear_scan` selects comparator-bank scan vs
/// uniform bisection exactly as the plan compiled it. The FP16 entry takes
/// the FP32 images of the plan's half-rounded constants (half -> float is
/// exact) and rounds every intermediate through binary16.
struct SimdKernelOps {
  SimdTier tier;
  void (*fp32_eval)(const float* bp, std::size_t nb, bool linear_scan,
                    const float* slopes, const float* intercepts, float* xs,
                    std::size_t n);
  void (*fp16_eval)(const float* bp, std::size_t nb, bool linear_scan,
                    const float* slopes, const float* intercepts, float* xs,
                    std::size_t n);
  void (*int32_eval)(const std::int32_t* bp, std::size_t nb, bool linear_scan,
                     const std::int32_t* slopes,
                     const std::int32_t* intercepts, float input_scale,
                     float output_scale, float* xs, std::size_t n);
};

/// The installed kernel table (the LutKernel::eval dispatch pointer).
/// Resolves the automatic tier on first use.
const SimdKernelOps& active_simd_ops();

}  // namespace nnlut::simd
