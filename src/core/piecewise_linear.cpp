#include "core/piecewise_linear.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nnlut {

PiecewiseLinear::PiecewiseLinear(std::vector<float> breakpoints,
                                 std::vector<float> slopes,
                                 std::vector<float> intercepts)
    : breakpoints_(std::move(breakpoints)),
      slopes_(std::move(slopes)),
      intercepts_(std::move(intercepts)) {
  if (slopes_.empty())
    throw std::invalid_argument("PiecewiseLinear: needs at least one segment");
  if (slopes_.size() != intercepts_.size())
    throw std::invalid_argument(
        "PiecewiseLinear: slopes/intercepts size mismatch");
  if (breakpoints_.size() + 1 != slopes_.size())
    throw std::invalid_argument(
        "PiecewiseLinear: need exactly one more segment than breakpoints");
  for (std::size_t i = 0; i < breakpoints_.size(); ++i) {
    if (!std::isfinite(breakpoints_[i]))
      throw std::invalid_argument("PiecewiseLinear: non-finite breakpoint");
    if (i > 0 && !(breakpoints_[i - 1] < breakpoints_[i]))
      throw std::invalid_argument(
          "PiecewiseLinear: breakpoints must be strictly ascending");
  }
  kernel_ = compile_plan_cached(breakpoints_, slopes_, intercepts_);
}

const LutKernel& PiecewiseLinear::kernel() const {
  static const LutKernel empty;  // default-constructed tables have no plan
  return kernel_ ? *kernel_ : empty;
}

std::size_t PiecewiseLinear::segment_index(float x) const {
  // First breakpoint strictly greater than x gives the segment; hardware
  // implements this as a parallel comparator bank (16 entries -> 15 compares).
  const auto it = std::upper_bound(breakpoints_.begin(), breakpoints_.end(), x);
  return static_cast<std::size_t>(it - breakpoints_.begin());
}

float PiecewiseLinear::operator()(float x) const {
  const std::size_t i = segment_index(x);
  return slopes_[i] * x + intercepts_[i];
}

void PiecewiseLinear::eval_inplace(std::span<float> xs) const {
  if (kernel_) kernel_->eval(xs);
}

}  // namespace nnlut
