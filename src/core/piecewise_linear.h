// First-order look-up table approximation (Eq. 4 of the paper):
//
//            { s_1 x + t_1          if x <  d_1
//   LUT(x) = { s_i x + t_i          if d_{i-1} <= x < d_i
//            { s_N x + t_N          if x >= d_{N-1}
//
// An N-entry LUT stores N (slope, intercept) pairs and N-1 ascending
// breakpoints. In hardware this is one comparator bank, one table read, one
// multiply and one add — the same unit serves any scalar function.
//
// Construction compiles the table into an immutable SoA evaluation plan
// (core/lut_kernel.h); batched evaluation through the plan is the primitive,
// bit-identical to the per-element reference operator().
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/lut_kernel.h"

namespace nnlut {

class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// breakpoints.size() + 1 must equal slopes.size() == intercepts.size();
  /// breakpoints must be strictly ascending and finite.
  /// Throws std::invalid_argument otherwise.
  PiecewiseLinear(std::vector<float> breakpoints, std::vector<float> slopes,
                  std::vector<float> intercepts);

  /// Number of table entries N (= segments).
  std::size_t entries() const { return slopes_.size(); }

  std::span<const float> breakpoints() const { return breakpoints_; }
  std::span<const float> slopes() const { return slopes_; }
  std::span<const float> intercepts() const { return intercepts_; }

  /// Index of the segment containing x (0-based, in [0, entries())).
  std::size_t segment_index(float x) const;

  /// Evaluate LUT(x) through the per-element reference path (binary search
  /// over the original breakpoints).
  float operator()(float x) const;

  /// Evaluate over a batch, in place, through the compiled plan.
  void eval_inplace(std::span<float> xs) const;

  /// The compiled SoA evaluation plan (obtained at construction from the
  /// process-wide plan cache; tables with identical content share one plan).
  const LutKernel& kernel() const;

 private:
  std::vector<float> breakpoints_;  // N-1, strictly ascending
  std::vector<float> slopes_;       // N
  std::vector<float> intercepts_;   // N
  std::shared_ptr<const LutKernel> kernel_;
};

}  // namespace nnlut
