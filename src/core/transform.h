// The paper's core result (Sec. 3.2, Eq. 6-7): a trained one-hidden-layer
// ReLU network is *exactly* equivalent to a first-order LUT whose
// breakpoints are the neuron kinks d_i = -b_i/n_i and whose per-interval
// slope/intercept are the sums of active-neuron contributions.
#pragma once

#include "core/approx_net.h"
#include "core/piecewise_linear.h"

namespace nnlut {

/// Transform a trained approximation network into its equivalent LUT.
///
/// For every interval between consecutive sorted kinks, the set of active
/// neurons is constant, so NN(x) restricted to the interval is the line
///   z_i(x) = [sum_{j active} m_j n_j] x + [c + sum_{j active} m_j b_j].
///
/// The returned LUT satisfies LUT(x) == NN(x) for all x (bit-identical up to
/// float summation order). Neurons with |n_i| <= ApproxNet::kDeadEps act as
/// constant offsets (active iff b_i > 0) and produce no breakpoint. Kinks
/// closer than `merge_eps` (relative) are merged to keep breakpoints strictly
/// ascending.
PiecewiseLinear nn_to_lut(const ApproxNet& net, float merge_eps = 0.0f);

}  // namespace nnlut
