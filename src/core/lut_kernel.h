// Compiled SoA evaluation plans for piecewise-linear tables.
//
// A LUT is *compiled once* into an immutable plan: contiguous breakpoint /
// slope / intercept arrays padded to a power-of-two entry count (padding
// breakpoints are +inf / INT32_MAX sentinels and padded segments replicate
// the last real segment, so padded lookups return the same value as the real
// last segment). Evaluation is batch-granular and branchless:
//
//   - <= 32 padded entries: a linear comparator-bank scan, structured
//     breakpoint-outer / element-inner so the compiler vectorizes the
//     compare-and-accumulate over contiguous elements. This mirrors the
//     paper's hardware (Eq. 4): an N-entry unit is a parallel comparator
//     bank feeding one MAC.
//   - larger tables: branchless uniform bisection over the 2^k - 1 padded
//     breakpoints (k conditional-add steps, no data-dependent branches).
//
// Segment selection reproduces std::upper_bound semantics exactly, including
// for NaN (every comparison `!(x < d)` is true, so NaN lands in the padded
// tail, which replicates the last real segment) and +/-inf, so plan
// evaluation is bit-identical to the per-element reference path.
//
// FP32, FP16 and INT32 plan evaluation all dispatch through the
// runtime-selected SIMD tier (core/lut_kernel_simd.h): scalar, AVX2 (with
// F16C for the FP16 rounding chain when the CPU has it), AVX-512, or
// AVX-512+VNNI, chosen once from CPUID and overridable via
// NNLUT_FORCE_SCALAR / NNLUT_SIMD_TIER / set_simd_tier. Every tier performs
// the identical IEEE operation sequence, so results are bit-identical
// across tiers; plan arrays are allocated on 64-byte boundaries
// (core/aligned_alloc.h) so a padded comparator bank is loaded with aligned
// full-register table loads.
//
// Three precision-specialized plans live here:
//   LutKernel       FP32 multiply-add,
//   LutKernelFp16   operands rounded through binary16 and the MAC computed
//                   in binary16 arithmetic,
//   LutKernelInt32  I-BERT-style scaling-factor quantization with an
//                   integer MAC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/aligned_alloc.h"

namespace nnlut {

/// Plan array storage: cache-line aligned so SIMD tiers can table-load a
/// whole padded bank with aligned vector loads.
template <typename T>
using PlanVec = std::vector<T, AlignedAllocator<T>>;

/// FP32 plan. Breakpoints/slopes/intercepts must satisfy the
/// PiecewiseLinear invariants (this type does not re-validate them).
class LutKernel {
 public:
  LutKernel() = default;
  LutKernel(std::span<const float> breakpoints, std::span<const float> slopes,
            std::span<const float> intercepts);

  /// Real (unpadded) table entries; 0 for a default-constructed plan.
  std::size_t entries() const { return entries_; }
  /// Power-of-two padded entry count (= slopes().size()).
  std::size_t padded_entries() const { return slopes_.size(); }
  bool linear_scan() const { return linear_scan_; }

  /// Batched evaluation, in place. The primitive everything else derives.
  void eval(std::span<float> xs) const;
  /// One element through the same plan (bit-identical to eval on a
  /// 1-element span).
  float eval_scalar(float x) const;

  std::span<const float> padded_breakpoints() const { return breakpoints_; }
  std::span<const float> padded_slopes() const { return slopes_; }
  std::span<const float> padded_intercepts() const { return intercepts_; }

 private:
  PlanVec<float> breakpoints_;  // padded_entries - 1, +inf padded
  PlanVec<float> slopes_;       // padded_entries, last segment replicated
  PlanVec<float> intercepts_;   // padded_entries
  std::size_t entries_ = 0;
  bool linear_scan_ = true;
};

/// Binary16 plan: stored constants are half-rounded and the MAC rounds every
/// intermediate through binary16, emulating a genuine FP16 datapath.
class LutKernelFp16 {
 public:
  LutKernelFp16() = default;
  LutKernelFp16(std::span<const float> breakpoints,
                std::span<const float> slopes,
                std::span<const float> intercepts);

  std::size_t entries() const { return entries_; }
  std::size_t padded_entries() const { return slopes_.size(); }
  bool linear_scan() const { return linear_scan_; }

  void eval(std::span<float> xs) const;
  float eval_scalar(float x) const;

  std::span<const float> padded_breakpoints() const { return breakpoints_; }
  std::span<const float> padded_slopes() const { return slopes_; }
  std::span<const float> padded_intercepts() const { return intercepts_; }

 private:
  // Comparator constants as FP32 values of the half-rounded breakpoints
  // (half -> float is exact, so FP32 compares == FP16 compares).
  PlanVec<float> breakpoints_;
  PlanVec<float> slopes_;      // FP32 values of half-rounded slopes
  PlanVec<float> intercepts_;  // FP32 values of half-rounded intercepts
  std::size_t entries_ = 0;
  bool linear_scan_ = true;
};

/// Integer plan with I-BERT scaling factors: input scale Sx derived from
/// `input_max_abs`, slope scale Ss from the largest slope magnitude,
/// intercepts on the product scale Ss*Sx so q_out = q_s * q_x + q_t needs no
/// alignment. |q| <= 2^15 on both MAC operands.
class LutKernelInt32 {
 public:
  LutKernelInt32() = default;
  /// Throws std::invalid_argument unless input_max_abs > 0.
  LutKernelInt32(std::span<const float> breakpoints,
                 std::span<const float> slopes,
                 std::span<const float> intercepts, float input_max_abs);

  std::size_t entries() const { return entries_; }
  std::size_t padded_entries() const { return slopes_.size(); }
  bool linear_scan() const { return linear_scan_; }

  void eval(std::span<float> xs) const;
  float eval_scalar(float x) const;

  float input_scale() const { return sx_; }
  float output_scale() const { return ss_ * sx_; }

  std::span<const std::int32_t> padded_breakpoints() const {
    return breakpoints_;
  }
  std::span<const std::int32_t> padded_slopes() const { return slopes_; }
  std::span<const std::int32_t> padded_intercepts() const {
    return intercepts_;
  }

 private:
  PlanVec<std::int32_t> breakpoints_;  // INT32_MAX padded
  PlanVec<std::int32_t> slopes_;
  PlanVec<std::int32_t> intercepts_;
  std::size_t entries_ = 0;
  bool linear_scan_ = true;
  float sx_ = 1.0f;  // input scale
  float ss_ = 1.0f;  // slope scale
};

// ---------------------------------------------------------- plan cache ---

/// Compile an FP32 plan through the process-wide content-addressed cache:
/// calibrated per-site LUTs mostly share identical tables, and bitwise-equal
/// (breakpoints, slopes, intercepts) triples map to one shared immutable
/// plan. The cache holds weak references — a plan is freed once the last
/// table using it is destroyed. Thread-safe.
std::shared_ptr<const LutKernel> compile_plan_cached(
    std::span<const float> breakpoints, std::span<const float> slopes,
    std::span<const float> intercepts);

/// Counters for the plan cache (process lifetime; tests assert deltas).
struct PlanCacheStats {
  std::size_t hits = 0;    // lookups that reused a live plan
  std::size_t misses = 0;  // lookups that compiled a new plan
  std::size_t live = 0;    // cached plans still referenced somewhere
  std::size_t cached = 0;  // cache entries held, incl. expired ones awaiting
                           // the periodic sweep (bounded by live + period)
};
PlanCacheStats plan_cache_stats();

}  // namespace nnlut
