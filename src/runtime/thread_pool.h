// Parallel runtime for the encoder hot path. NN-LUT's hardware evaluates
// independent rows on parallel comparator banks; the software analogue is a
// persistent worker pool that shards row blocks of the batched kernels
// (softmax_rows, layer_norm_rows, activation spans, matmul output rows).
//
// Determinism contract: parallel_for partitions [begin, end) into FIXED
// contiguous shards (static partitioning, one shard per pool lane, no
// work-stealing and no atomics in the result path). Every shard runs the
// existing single-thread kernel over its sub-range, so as long as items are
// independent — which every sharded call site guarantees row-wise — results
// are bit-identical to a single-threaded run for ANY pool size. Setting
// RuntimeConfig::threads = 1 recovers the exact serial execution path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/lut_kernel_simd.h"
#include "core/thread_annotations.h"

namespace nnlut::runtime {

/// Non-owning callable reference, the zero-allocation replacement for
/// `const std::function&` on the kernel dispatch path: constructing a
/// std::function from a capturing lambda heap-allocates once its captures
/// outgrow the small-buffer slot, which put one hidden allocation on EVERY
/// parallel_for call — exactly the steady-state churn the buffer-pool work
/// eliminates elsewhere. A FunctionRef is two words (object pointer +
/// trampoline) and never allocates. The referenced callable must outlive
/// the call, which parallel_for/ThreadPool::run guarantee by blocking until
/// every shard drains.
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT: implicit by design, mirrors std::function
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }
  explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

/// Process-wide runtime knobs. `threads` is the total number of execution
/// lanes (the calling thread counts as lane 0); 0 means
/// std::thread::hardware_concurrency(). Reconfiguring is safe at any time,
/// including while kernels are in flight on other threads (a serving loop
/// resizing its budget): in-flight kernels keep a handle on the pool they
/// started on and drain there; subsequent kernels see the new pool.
///
/// `simd` pins the LUT-kernel ISA tier (scalar / AVX2 / AVX-512 /
/// AVX-512+VNNI) for the
/// whole process; nullopt restores automatic CPUID + environment selection
/// (core/lut_kernel_simd.h). The two knobs compose as "shards across
/// cores, wide lanes within a shard": parallel_for splits rows over the
/// pool and each shard evaluates its block through the selected SIMD tier.
/// Results are bit-identical for every (threads, simd) combination.
struct RuntimeConfig {
  std::size_t threads = 0;
  std::optional<simd::SimdTier> simd = std::nullopt;
};

void set_runtime_config(const RuntimeConfig& cfg);
RuntimeConfig runtime_config();

/// Name the calling thread for profilers, TSan reports and /proc
/// (pthread_setname_np). Names longer than the platform limit (15 chars on
/// Linux) are truncated; a no-op on platforms without the facility. The
/// pool names its workers "nnlut-worker-N" and each serving scheduler is
/// named "nnlut-sched-<model>" (compacted to "ns-<model>" when the model
/// id would not fit).
void set_current_thread_name(const char* name);

/// Persistent pool of `lanes - 1` workers plus the calling thread. A job is
/// a shard function executed as fn(s) for s in [0, nshards); shard s runs on
/// lane s (the caller executes shard 0), which keeps the shard → thread
/// mapping fixed.
///
/// One orchestrator uses the workers at a time; concurrent orchestrators
/// (the per-model scheduler threads of a multi-model Engine, or a server
/// plus a direct caller) are admitted FAIRLY, in FIFO arrival order via a
/// ticket lock: a late orchestrator waits for its turn on the workers
/// instead of degrading to inline-serial execution, so N models sharing the
/// process pool each still get "shards across cores, wide within a shard"
/// and none can starve the others. Results are bit-identical either way —
/// admission order changes scheduling, never bits. Nested calls from inside
/// a shard still execute inline (they hold the workers already).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t lanes);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t lanes() const { return workers_.size() + 1; }

  /// `fn` is borrowed for the duration of the call only (run() blocks until
  /// every shard drains), so passing a stack lambda is safe and free.
  void run(std::size_t nshards, FunctionRef<void(std::size_t)> fn);

 private:
  void worker_loop(std::size_t lane);

  std::vector<std::thread> workers_;  // immutable after construction
  Mutex mu_;
  CondVar cv_start_;
  CondVar cv_done_;
  FunctionRef<void(std::size_t)> job_ NNLUT_GUARDED_BY(mu_);
  std::size_t job_shards_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t epoch_ NNLUT_GUARDED_BY(mu_) = 0;
  std::size_t done_ NNLUT_GUARDED_BY(mu_) = 0;
  // First shard failure, rethrown by run().
  std::exception_ptr error_ NNLUT_GUARDED_BY(mu_);
  bool stop_ NNLUT_GUARDED_BY(mu_) = false;

  // FIFO ticket lock admitting one orchestrator at a time, in arrival
  // order. Kept separate from mu_ (the job mutex) so a waiting orchestrator
  // never contends with workers synchronizing shard completion; the two
  // mutexes are never held together.
  Mutex orch_mu_;
  CondVar cv_orch_;
  std::uint64_t orch_next_ticket_ NNLUT_GUARDED_BY(orch_mu_) = 0;
  std::uint64_t orch_serving_ NNLUT_GUARDED_BY(orch_mu_) = 0;
};

/// Acquire the process-wide pool, created lazily from the current
/// RuntimeConfig. The returned handle keeps the pool alive even if a
/// concurrent set_runtime_config retires it mid-job; the retired pool joins
/// its workers once the last in-flight holder releases it.
std::shared_ptr<ThreadPool> acquire_pool();

/// Process-wide pool execution counters, maintained with relaxed atomics
/// (readers may observe slightly stale values; the counters survive pool
/// rebuilds). `busy_lanes` is instantaneous occupancy — lanes executing a
/// shard at the moment of the read — the value the metrics registry
/// exposes as the occupancy gauge.
struct ThreadPoolStats {
  std::uint64_t jobs = 0;         // parallel jobs dispatched through run()
  std::uint64_t inline_runs = 0;  // run() calls that executed inline
  std::uint64_t shards = 0;       // shard executions, lane 0 included
  std::size_t lanes = 0;          // execution lanes of the current config
  std::size_t busy_lanes = 0;     // lanes inside a shard right now
};
ThreadPoolStats thread_pool_stats();

/// Shard [begin, end) into at most `lanes` contiguous blocks of at least
/// `grain` items each and run fn(block_begin, block_end) on each block.
/// Blocks are disjoint, cover the range exactly, and are assigned to fixed
/// lanes; when one block suffices it runs inline on the caller. Takes a
/// FunctionRef, so calling with a capturing lambda never allocates.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  FunctionRef<void(std::size_t, std::size_t)> fn);

/// Minimum per-shard workload (in scalar ops) under which forking a shard
/// costs more than it saves.
inline constexpr std::size_t kMinShardWork = 16384;

/// Grain (items per shard) so each shard carries >= kMinShardWork scalar ops
/// given the per-item cost, e.g. grain_for(ncols) for row-sharded kernels.
inline std::size_t grain_for(std::size_t work_per_item) {
  if (work_per_item == 0) return kMinShardWork;
  return (kMinShardWork + work_per_item - 1) / work_per_item;
}

}  // namespace nnlut::runtime
