// Size-classed slab pool for the serving hot path.
//
// Every served request used to allocate its activation / attention-score /
// quantization-scratch tensors fresh; at sustained QPS the allocator — not
// the SIMD kernels — becomes the bottleneck and fragmentation the failure
// mode. A BufferPool keeps retired slabs on per-size-class free lists so a
// warmed serving slot reaches a zero-allocation steady state: every
// acquisition is served by recycling a previously allocated slab.
//
// Design:
//   - Size classes are power-of-two byte buckets (minimum 64 B), so two
//     tensors whose element counts differ but round to the same bucket share
//     slabs — the batcher's same-seq merging maps 1:1 onto pool classes.
//   - Slabs are 64-byte aligned (same contract as core/aligned_alloc.h) so
//     pooled tensors feed the AVX2/AVX-512 kernel tiers with aligned loads.
//   - Free lists are strict LIFO (the most recently released slab is handed
//     out first): reuse is deterministic and cache-warm, and — because
//     consumers zero or fully overwrite acquired memory — results never
//     depend on recycled contents. Pools change WHERE bytes live, never
//     which bits come out; logits are bit-identical pools-on vs pools-off.
//   - One mutex guards the free lists and counters. Acquisition happens on
//     a slot's scheduler thread; release can happen on any thread (a client
//     destroying a pooled result tensor returns its slab cross-thread).
//   - PooledBuffer is the RAII handle. It shares ownership of the pool's
//     core, so a slab released after the BufferPool itself was destroyed is
//     freed directly instead of touching a dead free list — results handed
//     to clients stay valid across engine shutdown.
//
// Stats are exact and mutex-consistent: alloc_count counts heap
// allocations (pool misses), reuse_count counts free-list hits, and a
// warmed steady-state window shows alloc_count deltas of ZERO — the
// counter the serving StatsLedger surfaces and CI asserts on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace nnlut::runtime {

/// Counters of one BufferPool since construction. bytes_live covers both
/// outstanding (held by PooledBuffers) and cached (free-listed) slabs;
/// bytes_peak is its high-water mark.
struct PoolStats {
  std::uint64_t alloc_count = 0;  // heap allocations (pool misses)
  std::uint64_t reuse_count = 0;  // acquisitions served from a free list
  std::size_t outstanding = 0;    // slabs currently held by PooledBuffers
  std::size_t bytes_outstanding = 0;
  std::size_t bytes_cached = 0;  // free-listed, ready for reuse
  std::size_t bytes_live = 0;    // bytes_outstanding + bytes_cached
  std::size_t bytes_peak = 0;    // high-water mark of bytes_live
};

namespace detail {
class PoolCore;
}  // namespace detail

/// Movable RAII handle on one slab. Destruction returns the slab to its
/// pool's free list (LIFO), or frees it directly when the pool is gone.
/// The handle keeps the pool core alive, so it is always safe to destroy —
/// on any thread, before or after the owning BufferPool.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  ~PooledBuffer() { release(); }

  PooledBuffer(PooledBuffer&& o) noexcept
      : core_(std::move(o.core_)), data_(o.data_), capacity_(o.capacity_) {
    o.data_ = nullptr;
    o.capacity_ = 0;
  }
  PooledBuffer& operator=(PooledBuffer&& o) noexcept {
    if (this != &o) {
      release();
      core_ = std::move(o.core_);
      data_ = o.data_;
      capacity_ = o.capacity_;
      o.data_ = nullptr;
      o.capacity_ = 0;
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  void* data() const { return data_; }
  /// Usable bytes: the slab's size class, >= the requested size.
  std::size_t capacity() const { return capacity_; }
  explicit operator bool() const { return data_ != nullptr; }

  /// Return the slab to the pool now (idempotent).
  void release();

  /// Acquire a fresh slab from the same pool this buffer came from; null
  /// when this buffer is null. Lets a holder grow without a BufferPool*.
  PooledBuffer acquire_sibling(std::size_t bytes) const;

 private:
  friend class BufferPool;
  friend class detail::PoolCore;
  PooledBuffer(std::shared_ptr<detail::PoolCore> core, void* data,
               std::size_t capacity)
      : core_(std::move(core)), data_(data), capacity_(capacity) {}

  std::shared_ptr<detail::PoolCore> core_;
  void* data_ = nullptr;
  std::size_t capacity_ = 0;
};

class BufferPool {
 public:
  BufferPool();
  /// Frees every cached slab. Outstanding PooledBuffers stay valid: they
  /// share the core and free their slab directly on release.
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A slab of at least `bytes` (rounded up to the size class), 64-byte
  /// aligned, LIFO-recycled when the class has a cached slab. Contents are
  /// unspecified — callers zero or overwrite. bytes == 0 yields a null
  /// buffer.
  PooledBuffer acquire(std::size_t bytes);

  /// Exact counter snapshot (one mutex, consistent).
  PoolStats stats() const;

  /// Drop every cached slab (outstanding ones are unaffected). Shrinks
  /// bytes_cached to 0; bytes_peak is retained.
  void trim();

  /// Largest supported size class (2^53 bytes, dwarfing any real tensor).
  /// acquire() and size_class() throw std::bad_alloc beyond it — before
  /// touching any free list or counter — instead of walking off the class
  /// table or overflowing the power-of-two round-up.
  static constexpr std::size_t kMaxClassBytes = std::size_t{1} << 53;

  /// The power-of-two byte bucket `bytes` lands in: the smallest power of
  /// two >= max(bytes, 64). Throws std::bad_alloc above kMaxClassBytes.
  static std::size_t size_class(std::size_t bytes);

 private:
  std::shared_ptr<detail::PoolCore> core_;
};

}  // namespace nnlut::runtime
