#include "runtime/buffer_pool.h"

#include <algorithm>
#include <new>
#include <vector>

#include "core/thread_annotations.h"
#include "obs/trace.h"

namespace nnlut::runtime {

namespace detail {

namespace {
constexpr std::size_t kMinClassBytes = 64;  // one cache line
constexpr std::size_t kAlign = 64;
// Classes cover [64, kMaxClassBytes] in power-of-two steps; size_class
// rejects anything larger before a class index is ever computed.
constexpr std::size_t kNumClasses = 48;
static_assert(kMinClassBytes << (kNumClasses - 1) == BufferPool::kMaxClassBytes,
              "class table must end exactly at kMaxClassBytes");

std::size_t class_index(std::size_t klass) {
  std::size_t idx = 0;
  while ((kMinClassBytes << idx) < klass) ++idx;
  return idx;
}
}  // namespace

/// Free lists + counters, shared between the BufferPool and every
/// PooledBuffer it handed out. `closed` flips when the BufferPool dies:
/// releases then free directly instead of caching on a list nobody will
/// ever drain again.
class PoolCore {
 public:
  ~PoolCore() { drop_cached(); }

  PooledBuffer acquire(const std::shared_ptr<PoolCore>& self,
                       std::size_t bytes) {
    if (bytes == 0) return {};
    const std::size_t klass = BufferPool::size_class(bytes);  // may throw
    const std::size_t idx = class_index(klass);
    void* slab = nullptr;
    {
      MutexLock lk(mu_);
      std::vector<void*>& list = free_[idx];
      if (!list.empty()) {
        slab = list.back();  // strict LIFO: last released, first reused
        list.pop_back();
        ++stats_.reuse_count;
        stats_.bytes_cached -= klass;
        ++stats_.outstanding;
        stats_.bytes_outstanding += klass;
      }
    }
    if (slab == nullptr) {
      // Miss: allocate outside the lock, and only count the slab once the
      // allocator succeeded — a throwing ::operator new must leave every
      // counter exactly as it found them (no phantom outstanding slab).
      // A pool.miss instant in a warmed steady-state window is exactly the
      // anomaly the zero-alloc contract forbids, so make it visible.
      obs::instant("pool.miss", klass);
      slab = ::operator new(klass, std::align_val_t{kAlign});
      MutexLock lk(mu_);
      ++stats_.alloc_count;
      stats_.bytes_live += klass;
      stats_.bytes_peak = std::max(stats_.bytes_peak, stats_.bytes_live);
      ++stats_.outstanding;
      stats_.bytes_outstanding += klass;
    }
    return PooledBuffer(self, slab, klass);
  }

  void release(void* slab, std::size_t klass) {
    {
      MutexLock lk(mu_);
      --stats_.outstanding;
      stats_.bytes_outstanding -= klass;
      if (!closed_) {
        free_[class_index(klass)].push_back(slab);
        stats_.bytes_cached += klass;
        return;
      }
      stats_.bytes_live -= klass;
    }
    ::operator delete(slab, std::align_val_t{kAlign});
  }

  void close() {
    MutexLock lk(mu_);
    closed_ = true;
  }

  void drop_cached() {
    std::vector<void*> doomed;
    {
      MutexLock lk(mu_);
      for (std::size_t i = 0; i < kNumClasses; ++i) {
        for (void* p : free_[i]) {
          doomed.push_back(p);
          stats_.bytes_live -= kMinClassBytes << i;
        }
        free_[i].clear();
      }
      stats_.bytes_cached = 0;
    }
    for (void* p : doomed) ::operator delete(p, std::align_val_t{kAlign});
  }

  PoolStats stats() const {
    MutexLock lk(mu_);
    return stats_;
  }

 private:
  mutable Mutex mu_;
  std::vector<void*> free_[kNumClasses] NNLUT_GUARDED_BY(mu_);
  PoolStats stats_ NNLUT_GUARDED_BY(mu_);
  bool closed_ NNLUT_GUARDED_BY(mu_) = false;
};

}  // namespace detail

void PooledBuffer::release() {
  if (data_ == nullptr) return;
  core_->release(data_, capacity_);
  core_.reset();
  data_ = nullptr;
  capacity_ = 0;
}

PooledBuffer PooledBuffer::acquire_sibling(std::size_t bytes) const {
  if (!core_) return {};
  return core_->acquire(core_, bytes);
}

BufferPool::BufferPool() : core_(std::make_shared<detail::PoolCore>()) {}

BufferPool::~BufferPool() {
  core_->close();
  core_->drop_cached();
}

PooledBuffer BufferPool::acquire(std::size_t bytes) {
  return core_->acquire(core_, bytes);
}

PoolStats BufferPool::stats() const { return core_->stats(); }

void BufferPool::trim() { core_->drop_cached(); }

std::size_t BufferPool::size_class(std::size_t bytes) {
  // Reject before rounding: past kMaxClassBytes the round-up loop would
  // shift klass to zero (and spin), and class_index would run off the end
  // of the free-list table.
  if (bytes > kMaxClassBytes) throw std::bad_alloc();
  std::size_t klass = detail::kMinClassBytes;
  while (klass < bytes) klass <<= 1;
  return klass;
}

}  // namespace nnlut::runtime
