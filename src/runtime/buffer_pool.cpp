#include "runtime/buffer_pool.h"

#include <algorithm>
#include <mutex>
#include <new>
#include <vector>

namespace nnlut::runtime {

namespace detail {

namespace {
constexpr std::size_t kMinClassBytes = 64;  // one cache line
constexpr std::size_t kAlign = 64;
// log2 of the largest supported class (2^48 bytes dwarfs any real tensor;
// larger requests throw bad_alloc from the aligned allocator anyway).
constexpr std::size_t kNumClasses = 48;

std::size_t class_index(std::size_t klass) {
  std::size_t idx = 0;
  while ((kMinClassBytes << idx) < klass) ++idx;
  return idx;
}
}  // namespace

/// Free lists + counters, shared between the BufferPool and every
/// PooledBuffer it handed out. `closed` flips when the BufferPool dies:
/// releases then free directly instead of caching on a list nobody will
/// ever drain again.
class PoolCore {
 public:
  ~PoolCore() { drop_cached(); }

  PooledBuffer acquire(const std::shared_ptr<PoolCore>& self,
                       std::size_t bytes) {
    if (bytes == 0) return {};
    const std::size_t klass = BufferPool::size_class(bytes);
    const std::size_t idx = class_index(klass);
    void* slab = nullptr;
    {
      std::lock_guard<std::mutex> lk(mu_);
      std::vector<void*>& list = free_[idx];
      if (!list.empty()) {
        slab = list.back();  // strict LIFO: last released, first reused
        list.pop_back();
        ++stats_.reuse_count;
        stats_.bytes_cached -= klass;
      } else {
        ++stats_.alloc_count;
        stats_.bytes_live += klass;
        stats_.bytes_peak = std::max(stats_.bytes_peak, stats_.bytes_live);
      }
      ++stats_.outstanding;
      stats_.bytes_outstanding += klass;
    }
    // The heap allocation itself happens outside the lock; counters were
    // already updated, so a concurrent stats() is at worst momentarily
    // ahead of the allocator, never behind.
    if (slab == nullptr)
      slab = ::operator new(klass, std::align_val_t{kAlign});
    return PooledBuffer(self, slab, klass);
  }

  void release(void* slab, std::size_t klass) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      --stats_.outstanding;
      stats_.bytes_outstanding -= klass;
      if (!closed_) {
        free_[class_index(klass)].push_back(slab);
        stats_.bytes_cached += klass;
        return;
      }
      stats_.bytes_live -= klass;
    }
    ::operator delete(slab, std::align_val_t{kAlign});
  }

  void close() {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }

  void drop_cached() {
    std::vector<void*> doomed;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (std::size_t i = 0; i < kNumClasses; ++i) {
        for (void* p : free_[i]) {
          doomed.push_back(p);
          stats_.bytes_live -= kMinClassBytes << i;
        }
        free_[i].clear();
      }
      stats_.bytes_cached = 0;
    }
    for (void* p : doomed) ::operator delete(p, std::align_val_t{kAlign});
  }

  PoolStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<void*> free_[kNumClasses];
  PoolStats stats_;
  bool closed_ = false;
};

}  // namespace detail

void PooledBuffer::release() {
  if (data_ == nullptr) return;
  core_->release(data_, capacity_);
  core_.reset();
  data_ = nullptr;
  capacity_ = 0;
}

PooledBuffer PooledBuffer::acquire_sibling(std::size_t bytes) const {
  if (!core_) return {};
  return core_->acquire(core_, bytes);
}

BufferPool::BufferPool() : core_(std::make_shared<detail::PoolCore>()) {}

BufferPool::~BufferPool() {
  core_->close();
  core_->drop_cached();
}

PooledBuffer BufferPool::acquire(std::size_t bytes) {
  return core_->acquire(core_, bytes);
}

PoolStats BufferPool::stats() const { return core_->stats(); }

void BufferPool::trim() { core_->drop_cached(); }

std::size_t BufferPool::size_class(std::size_t bytes) {
  std::size_t klass = detail::kMinClassBytes;
  while (klass < bytes) klass <<= 1;
  return klass;
}

}  // namespace nnlut::runtime
