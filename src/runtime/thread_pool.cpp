#include "runtime/thread_pool.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>

#include "obs/trace.h"

#if defined(__linux__) || defined(__APPLE__)
#include <pthread.h>
#endif

namespace nnlut::runtime {

void set_current_thread_name(const char* name) {
#if defined(__linux__)
  char buf[16];  // kernel limit: 15 chars + NUL
  std::strncpy(buf, name, sizeof(buf) - 1);
  buf[sizeof(buf) - 1] = '\0';
  pthread_setname_np(pthread_self(), buf);
#elif defined(__APPLE__)
  pthread_setname_np(name);
#else
  (void)name;  // no-op where the platform has no thread names
#endif
}

namespace {

Mutex g_config_mu;
RuntimeConfig g_config NNLUT_GUARDED_BY(g_config_mu);
std::shared_ptr<ThreadPool> g_pool NNLUT_GUARDED_BY(g_config_mu);

// Set while a lane executes a shard; nested parallel regions (a sharded
// kernel calling another sharded kernel) run inline instead of deadlocking
// on the pool.
thread_local bool t_in_shard = false;

// ThreadPoolStats counters — process-global (not per-pool) so they survive
// set_runtime_config pool rebuilds. Relaxed: monitoring only, never
// synchronization.
std::atomic<std::uint64_t> g_jobs{0};
std::atomic<std::uint64_t> g_inline_runs{0};
std::atomic<std::uint64_t> g_shards_run{0};
std::atomic<std::size_t> g_busy_lanes{0};

}  // namespace

void set_runtime_config(const RuntimeConfig& cfg) {
  // Validate the SIMD override first so a bad tier leaves the pool and the
  // stored config untouched (set_simd_tier throws above the detected tier).
  simd::set_simd_tier(cfg.simd);
  // Retire the old pool outside the config lock: destroying it joins its
  // workers, and a worker running a nested parallel_for briefly takes
  // g_config_mu — joining under the lock could deadlock. Kernels in flight
  // on the retired pool hold their own shared_ptr and finish undisturbed.
  std::shared_ptr<ThreadPool> retired;
  {
    MutexLock lk(g_config_mu);
    if (cfg.threads != g_config.threads) retired = std::move(g_pool);
    g_config = cfg;
  }
}

RuntimeConfig runtime_config() {
  MutexLock lk(g_config_mu);
  return g_config;
}

namespace {
std::size_t lanes_for_config(const RuntimeConfig& cfg) {
  std::size_t lanes = cfg.threads;
  if (lanes == 0) lanes = std::thread::hardware_concurrency();
  if (lanes == 0) lanes = 1;
  return lanes;
}
}  // namespace

std::shared_ptr<ThreadPool> acquire_pool() {
  MutexLock lk(g_config_mu);
  if (!g_pool) g_pool = std::make_shared<ThreadPool>(lanes_for_config(g_config));
  return g_pool;
}

ThreadPoolStats thread_pool_stats() {
  ThreadPoolStats s;
  s.jobs = g_jobs.load(std::memory_order_relaxed);
  s.inline_runs = g_inline_runs.load(std::memory_order_relaxed);
  s.shards = g_shards_run.load(std::memory_order_relaxed);
  s.busy_lanes = g_busy_lanes.load(std::memory_order_relaxed);
  {
    MutexLock lk(g_config_mu);
    s.lanes = g_pool ? g_pool->lanes() : lanes_for_config(g_config);
  }
  return s;
}

ThreadPool::ThreadPool(std::size_t lanes) {
  const std::size_t workers = lanes == 0 ? 0 : lanes - 1;
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    workers_.emplace_back([this, w] {
      set_current_thread_name(
          ("nnlut-worker-" + std::to_string(w + 1)).c_str());
      worker_loop(w + 1);
    });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  UniqueLock lk(mu_);
  for (;;) {
    while (!stop_ && epoch_ == seen) cv_start_.wait(lk);
    if (stop_) return;
    seen = epoch_;
    const FunctionRef<void(std::size_t)> job = job_;
    const std::size_t shards = job_shards_;
    // Only participating lanes report completion, so run() never waits on a
    // lane the job does not use. A straggler that slept through a whole
    // epoch sees a cleared job (run() resets it before returning) and just
    // rearms; it owed that epoch nothing.
    if (!job || lane >= shards) continue;
    lk.unlock();
    std::exception_ptr err;
    t_in_shard = true;
    g_busy_lanes.fetch_add(1, std::memory_order_relaxed);
    g_shards_run.fetch_add(1, std::memory_order_relaxed);
    try {
      obs::ScopedSpan span("pool.shard", lane);
      job(lane);
    } catch (...) {
      err = std::current_exception();
    }
    g_busy_lanes.fetch_sub(1, std::memory_order_relaxed);
    t_in_shard = false;
    lk.lock();
    if (err && !error_) error_ = err;  // first failure wins
    if (++done_ == job_shards_ - 1) cv_done_.notify_one();
  }
}

void ThreadPool::run(std::size_t nshards, FunctionRef<void(std::size_t)> fn) {
  if (nshards == 0) return;
  // Inline when the pool cannot host every shard on its own lane (single
  // lane, a nested call from inside a shard, or a pool rebuilt smaller
  // between the caller's lane count read and this call).
  if (nshards == 1 || workers_.empty() || t_in_shard || nshards > lanes()) {
    g_inline_runs.fetch_add(1, std::memory_order_relaxed);
    g_shards_run.fetch_add(nshards, std::memory_order_relaxed);
    for (std::size_t s = 0; s < nshards; ++s) fn(s);
    return;
  }
  g_jobs.fetch_add(1, std::memory_order_relaxed);
  // Claim the workers through the FIFO ticket lock. Concurrent
  // orchestrators (one scheduler thread per Engine model slot, or a direct
  // caller racing a server) must not touch job_/epoch_ while a job is in
  // flight; each takes a ticket and is admitted in arrival order, so every
  // orchestrator gets the full pool for its job and none can starve.
  {
    obs::ScopedSpan wait_span("pool.wait_turn", nshards);
    UniqueLock lk(orch_mu_);
    const std::uint64_t ticket = orch_next_ticket_++;
    while (orch_serving_ != ticket) cv_orch_.wait(lk);
  }
  // Covers job publication through worker drain and handoff — the
  // orchestrator's whole turn on the workers.
  obs::ScopedSpan turn_span("pool.turn", nshards);
  {
    MutexLock lk(mu_);
    job_ = fn;
    job_shards_ = nshards;
    done_ = 0;
    ++epoch_;
  }
  cv_start_.notify_all();
  // The caller is lane 0. Whether its shard throws or a worker shard threw
  // (stored as an exception_ptr), the job must drain before `fn` goes out of
  // scope; the first failure is then rethrown on the calling thread.
  std::exception_ptr err;
  t_in_shard = true;
  g_busy_lanes.fetch_add(1, std::memory_order_relaxed);
  g_shards_run.fetch_add(1, std::memory_order_relaxed);
  try {
    obs::ScopedSpan span("pool.shard", 0);
    fn(0);
  } catch (...) {
    err = std::current_exception();
  }
  g_busy_lanes.fetch_sub(1, std::memory_order_relaxed);
  t_in_shard = false;
  {
    UniqueLock lk(mu_);
    while (done_ != job_shards_ - 1) cv_done_.wait(lk);
    job_ = {};
    if (!err) err = error_;
    error_ = nullptr;
  }
  // Pass the workers to the next ticket holder — on the error path too.
  {
    MutexLock olk(orch_mu_);
    ++orch_serving_;
  }
  cv_orch_.notify_all();
  if (err) std::rethrow_exception(err);
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  FunctionRef<void(std::size_t, std::size_t)> fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  // Decide the shard count from the config alone so sub-grain work runs
  // inline without ever instantiating the worker pool.
  const std::size_t lanes = [] {
    MutexLock lk(g_config_mu);
    return lanes_for_config(g_config);
  }();
  const std::size_t max_shards = (n + grain - 1) / grain;
  const std::size_t nshards = std::min(lanes, max_shards);
  if (nshards <= 1) {
    fn(begin, end);
    return;
  }
  const std::shared_ptr<ThreadPool> pool = acquire_pool();
  // Fixed partition: shard s gets chunk (+1 for the first rem shards)
  // contiguous items. Depends only on (n, nshards), never on timing.
  const std::size_t chunk = n / nshards;
  const std::size_t rem = n % nshards;
  pool->run(nshards, [&](std::size_t s) {
    const std::size_t lo = begin + s * chunk + std::min(s, rem);
    const std::size_t hi = lo + chunk + (s < rem ? 1 : 0);
    fn(lo, hi);
  });
}

}  // namespace nnlut::runtime
