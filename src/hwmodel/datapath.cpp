#include "hwmodel/datapath.h"

#include <algorithm>
#include <stdexcept>

namespace nnlut::hw {

void Datapath::add(const std::string& instance_name, const CellCost& cost) {
  instances_.push_back({instance_name, cost});
}

const Instance* Datapath::find(const std::string& instance_name) const {
  for (const Instance& inst : instances_)
    if (inst.name == instance_name) return &inst;
  return nullptr;
}

void Datapath::add_stage(const std::vector<std::string>& instance_names) {
  double delay = 0.0;
  for (const std::string& n : instance_names) {
    const Instance* inst = find(n);
    if (inst == nullptr)
      throw std::invalid_argument("Datapath stage references unknown instance: " + n);
    delay += inst->cost.delay_ns;
  }
  stage_delays_.push_back(delay);
}

void Datapath::add_schedule(OpSchedule schedule) {
  schedules_.push_back(std::move(schedule));
}

double Datapath::total_area() const {
  double a = 0.0;
  for (const Instance& i : instances_) a += i.cost.area_um2;
  return a;
}

double Datapath::total_leakage_mw() const {
  double l = 0.0;
  for (const Instance& i : instances_) l += i.cost.leakage_mw;
  return l;
}

double Datapath::total_energy_pj() const {
  double e = 0.0;
  for (const Instance& i : instances_) e += i.cost.energy_pj;
  return e;
}

double Datapath::critical_path_ns() const {
  if (stage_delays_.empty()) return 0.0;
  return *std::max_element(stage_delays_.begin(), stage_delays_.end());
}

UnitReport Datapath::report(double frequency_ghz) const {
  UnitReport r;
  r.unit_name = name_;
  r.area_um2 = total_area();
  r.delay_ns = critical_path_ns();

  // Dynamic power: energy-per-cycle x frequency, with the unit busy on a
  // steady stream of operations (throughput mode, as in an NPU SFU).
  // energy/cycle = total switching energy x mean schedule activity.
  double mean_activity = 0.0;
  for (const OpSchedule& s : schedules_) {
    mean_activity += s.activity;
    r.latency_cycles[s.op_name] = s.latency_cycles;
    r.initiation_interval[s.op_name] = s.initiation_interval;
  }
  if (!schedules_.empty())
    mean_activity /= static_cast<double>(schedules_.size());

  const double dynamic_mw =
      total_energy_pj() * mean_activity * frequency_ghz;  // pJ * GHz == mW
  r.power_mw = total_leakage_mw() + dynamic_mw;
  return r;
}

}  // namespace nnlut::hw
