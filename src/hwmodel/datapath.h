// A Datapath is a named bag of cell instances plus pipeline-stage structure
// and per-operation activity schedules. From it we derive the quantities the
// paper's Table 4 reports: area, power at a target frequency, critical-path
// delay and per-function cycle latency.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hwmodel/cell_library.h"

namespace nnlut::hw {

struct Instance {
  std::string name;
  CellCost cost;
  /// Fraction of cycles this cell toggles while the unit executes (0..1),
  /// set per operation schedule below for dynamic power.
};

/// How one non-linear function uses the datapath: how many cycles it takes
/// and which fraction of the datapath's switching capacitance is active per
/// cycle (iterative ops keep their cells toggling every cycle of the loop).
struct OpSchedule {
  std::string op_name;
  int latency_cycles = 1;
  /// Initiation interval: a new element can enter every `ii` cycles.
  double initiation_interval = 1.0;
  /// Average fraction of the unit's total switching energy dissipated per
  /// active cycle (pipelined lookup units touch a small slice; iterative
  /// integer pipelines re-toggle most of the datapath each cycle).
  double activity = 0.3;
};

struct UnitReport {
  std::string unit_name;
  double area_um2 = 0.0;
  double power_mw = 0.0;   // leakage + dynamic at the target frequency
  double delay_ns = 0.0;   // critical path (max stage delay)
  std::map<std::string, int> latency_cycles;  // per non-linear function
  std::map<std::string, double> initiation_interval;
};

class Datapath {
 public:
  explicit Datapath(std::string name) : name_(std::move(name)) {}

  void add(const std::string& instance_name, const CellCost& cost);
  /// Declare a pipeline stage whose combinational path is the sum of the
  /// given instances' delays (instances must have been added).
  void add_stage(const std::vector<std::string>& instance_names);
  void add_schedule(OpSchedule schedule);

  double total_area() const;
  double total_leakage_mw() const;
  double total_energy_pj() const;
  /// Max combinational stage delay.
  double critical_path_ns() const;

  /// Full report at `frequency_ghz`, averaging dynamic power over the
  /// schedules (duty-weighted mean activity across the listed ops).
  UnitReport report(double frequency_ghz = 1.0) const;

  const std::string& name() const { return name_; }

 private:
  const Instance* find(const std::string& instance_name) const;

  std::string name_;
  std::vector<Instance> instances_;
  std::vector<double> stage_delays_;
  std::vector<OpSchedule> schedules_;
};

}  // namespace nnlut::hw
