// Datapath netlists of the two arithmetic units compared in Table 4:
//
//  - build_nnlut_unit: Fig. 3(a) — comparator bank + LUT storage feeding a
//    single multiply-add; two pipeline stages, so every non-linear function
//    (GELU, EXP, DIV, 1/SQRT) takes 2 cycles with II = 1.
//
//  - build_ibert_unit: Fig. 3(b) — the multiplier/adder/shifter/divider
//    ensemble required by I-BERT's integer GELU/EXP/SQRT sequences, with
//    muxed multi-cycle loops (i-GELU 3, i-EXP 4, i-SQRT 5 cycles).
//
// Area, delay and latency are structural predictions of the cell model; the
// per-schedule switching-activity factors are calibrated against the power
// column of Table 4 (see EXPERIMENTS.md for the calibration discussion).
#pragma once

#include "hwmodel/datapath.h"

namespace nnlut::hw {

enum class UnitPrecision { kInt32, kFp16, kFp32 };

const char* precision_name(UnitPrecision p);

/// NN-LUT approximation unit with `entries` table entries.
Datapath build_nnlut_unit(const CellLibrary& lib, UnitPrecision precision,
                          int entries = 16);

/// I-BERT integer arithmetic unit (INT32, per the paper's comparison).
Datapath build_ibert_unit(const CellLibrary& lib);

/// The full Table-4 row set at a given frequency.
struct Table4 {
  UnitReport ibert_int32;
  UnitReport nnlut_int32;
  UnitReport nnlut_fp16;
  UnitReport nnlut_fp32;
};
Table4 make_table4(const CellLibrary& lib, double frequency_ghz = 1.0,
                   int entries = 16);

}  // namespace nnlut::hw
