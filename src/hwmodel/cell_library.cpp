#include "hwmodel/cell_library.h"

#include <algorithm>
#include <cmath>

namespace nnlut::hw {

namespace {
double log2i(int v) { return std::log2(static_cast<double>(std::max(v, 2))); }
}  // namespace

CellCost CellLibrary::from_gates(double gates, double levels) const {
  CellCost c;
  c.area_um2 = gates * tech_.area_per_gate_um2;
  c.leakage_mw = gates * tech_.leakage_per_gate_mw;
  c.energy_pj = gates * tech_.energy_per_gate_pj;
  c.delay_ns = levels * tech_.delay_per_level_ns;
  return c;
}

CellCost CellLibrary::adder(int bits) const {
  // Carry-select: ~7 gate-eq per bit; delay ~ sqrt-ish, model as
  // 4 + log2(bits) levels.
  return from_gates(7.0 * bits, 4.0 + log2i(bits));
}

CellCost CellLibrary::multiplier(int a_bits, int b_bits) const {
  // Wallace tree: partial products a*b AND gates + ~5 gate-eq per FA, FAs
  // roughly a*b; delay ~ CSA tree levels plus the final carry-propagate
  // adder over the double-width product.
  const double gates = 6.0 * a_bits * b_bits;
  const double levels = 8.0 + 2.8 * log2i(std::max(a_bits, b_bits));
  return from_gates(gates, levels);
}

CellCost CellLibrary::divider(int bits) const {
  // Restoring array divider: bits stages x (subtractor + mux) -> ~9 gate-eq
  // per bit per stage; combinational delay grows linearly with width, which
  // is why dividers dominate datapath critical paths.
  const double gates = 9.0 * bits * bits;
  const double levels = 3.5 * bits;
  return from_gates(gates, levels);
}

CellCost CellLibrary::shifter(int bits) const {
  // Barrel shifter: log2(bits) mux stages, 3 gate-eq per bit per stage.
  const double stages = log2i(bits);
  return from_gates(3.0 * bits * stages, 1.5 * stages);
}

CellCost CellLibrary::mux(int bits, int ways) const {
  // (ways-1) 2:1 muxes per bit, ~3 gate-eq each, tree depth log2(ways).
  return from_gates(3.0 * bits * std::max(ways - 1, 1), 1.2 * log2i(ways));
}

CellCost CellLibrary::comparator(int bits) const {
  return from_gates(3.5 * bits, 2.0 + log2i(bits));
}

CellCost CellLibrary::reg(int bits) const {
  // DFF ~ 4.5 gate-eq; clk-to-q delay one level.
  return from_gates(4.5 * bits, 1.0);
}

CellCost CellLibrary::table(int entries, int bits_per_entry) const {
  // Register-file storage (latch-based): ~1.8 gate-eq per bit plus a read
  // mux tree across entries.
  const double storage = 1.8 * entries * bits_per_entry;
  const CellCost rd = mux(bits_per_entry, entries);
  CellCost c = from_gates(storage, 1.0);
  c.area_um2 += rd.area_um2;
  c.leakage_mw += rd.leakage_mw;
  c.energy_pj += rd.energy_pj;
  c.delay_ns += rd.delay_ns;
  return c;
}

CellCost CellLibrary::fp_multiplier(int mant_bits, int exp_bits) const {
  // Significand multiplier + exponent adder + normalize/round/flag logic.
  // The rounding + special-case handling of synthesized FP units adds
  // substantial gate count and depth beyond the bare significand multiply.
  CellCost c = multiplier(mant_bits, mant_bits);
  const CellCost e = adder(exp_bits);
  const CellCost norm = shifter(mant_bits);
  const double extra_gates = 60.0 * mant_bits;  // round/sticky/denorm/flags
  c.area_um2 += e.area_um2 + norm.area_um2 + extra_gates * tech_.area_per_gate_um2;
  c.leakage_mw +=
      e.leakage_mw + norm.leakage_mw + extra_gates * tech_.leakage_per_gate_mw;
  c.energy_pj +=
      e.energy_pj + norm.energy_pj + extra_gates * tech_.energy_per_gate_pj;
  c.delay_ns += norm.delay_ns + 10.0 * tech_.delay_per_level_ns;
  return c;
}

CellCost CellLibrary::fp_adder(int mant_bits, int exp_bits) const {
  // Align (shifter) + add + leading-zero detect + normalize + round; FP
  // adders are famously larger and slower than integer adders.
  CellCost c = adder(mant_bits + 1);
  const CellCost align = shifter(mant_bits);
  const CellCost norm = shifter(mant_bits);
  const CellCost e = adder(exp_bits);
  const double extra_gates = 50.0 * mant_bits;  // LZD/round/flags
  for (const CellCost* part : {&align, &norm, &e}) {
    c.area_um2 += part->area_um2;
    c.leakage_mw += part->leakage_mw;
    c.energy_pj += part->energy_pj;
  }
  c.area_um2 += extra_gates * tech_.area_per_gate_um2;
  c.leakage_mw += extra_gates * tech_.leakage_per_gate_mw;
  c.energy_pj += extra_gates * tech_.energy_per_gate_pj;
  c.delay_ns +=
      align.delay_ns + norm.delay_ns + 10.0 * tech_.delay_per_level_ns;
  return c;
}

CellCost CellLibrary::fp_comparator(int mant_bits, int exp_bits) const {
  return comparator(mant_bits + exp_bits + 1);
}

}  // namespace nnlut::hw
