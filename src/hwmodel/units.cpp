#include "hwmodel/units.h"

namespace nnlut::hw {

const char* precision_name(UnitPrecision p) {
  switch (p) {
    case UnitPrecision::kInt32:
      return "INT32";
    case UnitPrecision::kFp16:
      return "FP16";
    case UnitPrecision::kFp32:
      return "FP32";
  }
  return "?";
}

namespace {
struct WidthSpec {
  int word;       // stored word width
  int mant, exp;  // FP split (unused for INT32)
  bool is_fp;
};

WidthSpec width_of(UnitPrecision p) {
  switch (p) {
    case UnitPrecision::kInt32:
      return {32, 0, 0, false};
    case UnitPrecision::kFp16:
      return {16, 11, 5, true};
    case UnitPrecision::kFp32:
      return {32, 24, 8, true};
  }
  return {32, 0, 0, false};
}
}  // namespace

Datapath build_nnlut_unit(const CellLibrary& lib, UnitPrecision precision,
                          int entries) {
  const WidthSpec w = width_of(precision);
  Datapath dp(std::string("NN-LUT(") + precision_name(precision) + ")");

  // Fig. 3(a): input register -> comparator bank over breakpoints + table
  // read of (s, t) -> multiplier -> adder -> output register.
  dp.add("reg_in", lib.reg(w.word));
  const int n_cmp = entries - 1;
  for (int i = 0; i < n_cmp; ++i) {
    dp.add("cmp" + std::to_string(i),
           w.is_fp ? lib.fp_comparator(w.mant, w.exp) : lib.comparator(w.word));
  }
  dp.add("bp_table", lib.table(n_cmp, w.word));
  dp.add("st_table", lib.table(entries, 2 * w.word));
  dp.add("reg_s", lib.reg(w.word));
  dp.add("reg_t", lib.reg(w.word));
  dp.add("mult0",
         w.is_fp ? lib.fp_multiplier(w.mant, w.exp) : lib.multiplier(w.word, w.word));
  dp.add("add0", w.is_fp ? lib.fp_adder(w.mant, w.exp) : lib.adder(w.word));
  dp.add("reg_out", lib.reg(w.word));

  // Two pipeline stages: (compare + table read) and (multiply + add).
  // The comparator bank is parallel, so one comparator delay + the read.
  dp.add_stage({"reg_in", "cmp0", "st_table"});
  dp.add_stage({"reg_s", "mult0", "add0"});

  // All four functions share the identical 2-cycle schedule; the effective
  // toggle rate per lookup is low (one comparator column resolves, one table
  // row is read, one MAC fires against mostly-static operands). The 0.012
  // activity factor is the power-calibration knob documented in
  // EXPERIMENTS.md.
  for (const char* op : {"GELU", "EXP", "DIV", "1/SQRT"}) {
    OpSchedule s;
    s.op_name = op;
    s.latency_cycles = 2;
    s.initiation_interval = 1.0;
    s.activity = 0.010;
    dp.add_schedule(s);
  }
  return dp;
}

Datapath build_ibert_unit(const CellLibrary& lib) {
  Datapath dp("I-BERT(INT32)");

  // Fig. 3(b): two multipliers, five adders, three shifters, one divider,
  // muxed feedback paths and a deep register file to sequence the i-GELU /
  // i-EXP / i-SQRT loops, plus constant registers (q_ln2, q_b, q_c, q_1).
  //
  // Although inputs are INT32, the intermediate values of the I-BERT
  // algorithms are wider: i_poly squares (q + q_b) before adding q_c, so the
  // accumulate/shift/divide paths carry ~64-bit operands (our own software
  // kernels require int64 for exactly these steps). The datapath widths
  // reflect that.
  dp.add("mult0", lib.multiplier(32, 32));
  dp.add("mult1", lib.multiplier(32, 32));
  for (int i = 0; i < 5; ++i)
    dp.add("add" + std::to_string(i), lib.adder(64));
  for (int i = 0; i < 3; ++i)
    dp.add("shft" + std::to_string(i), lib.shifter(64));
  dp.add("div0", lib.divider(44));  // i-sqrt / softmax reciprocal divide
  for (int i = 0; i < 8; ++i)
    dp.add("mux" + std::to_string(i), lib.mux(64, 2));
  dp.add("demux0", lib.mux(64, 2));
  for (int i = 0; i < 11; ++i)
    dp.add("reg" + std::to_string(i), lib.reg(64));
  dp.add("const_regs", lib.reg(4 * 32));
  dp.add("ctrl", lib.reg(48));  // loop counters / FSM state

  // Stage structure per the figure: the divider path dominates the critical
  // path (q / x_k inside the i-sqrt Newton iteration).
  dp.add_stage({"reg0", "mux0", "add0"});
  dp.add_stage({"reg1", "mult0", "add1"});
  dp.add_stage({"reg2", "mux1", "div0"});
  dp.add_stage({"reg3", "shft0", "mux2", "add2"});

  // Latencies from the paper's pipeline mapping: i-GELU 3, i-EXP 4,
  // i-SQRT 5 cycles; loops keep most of the datapath toggling every cycle,
  // hence the high activity (power-calibration knob, see EXPERIMENTS.md).
  OpSchedule gelu{"GELU", 3, 1.5, 0.22};
  OpSchedule exp{"EXP", 4, 2.0, 0.22};
  OpSchedule sqrt{"1/SQRT", 5, 2.5, 0.22};
  dp.add_schedule(gelu);
  dp.add_schedule(exp);
  dp.add_schedule(sqrt);
  return dp;
}

Table4 make_table4(const CellLibrary& lib, double frequency_ghz, int entries) {
  Table4 t;
  t.ibert_int32 = build_ibert_unit(lib).report(frequency_ghz);
  t.nnlut_int32 =
      build_nnlut_unit(lib, UnitPrecision::kInt32, entries).report(frequency_ghz);
  t.nnlut_fp16 =
      build_nnlut_unit(lib, UnitPrecision::kFp16, entries).report(frequency_ghz);
  t.nnlut_fp32 =
      build_nnlut_unit(lib, UnitPrecision::kFp32, entries).report(frequency_ghz);
  return t;
}

}  // namespace nnlut::hw
