// Gate-level cost model standing in for commercial 7-nm synthesis (the paper
// synthesizes its arithmetic units with a commercial 7-nm library; no PDK is
// available offline, see DESIGN.md substitution table).
//
// Every datapath cell is reduced to NAND2-equivalent gate counts with
// technology constants for area, leakage, switching energy and stage delay.
// Gate counts follow standard structural estimates (ripple/carry-select
// adders, Wallace-tree multipliers, restoring array dividers, barrel
// shifters). The technology constants are calibrated once against the
// I-BERT INT32 column of the paper's Table 4 and then held fixed for every
// other unit, so all *ratios* are genuine model outputs.
#pragma once

#include <string>

namespace nnlut::hw {

/// Cost of one cell instance.
struct CellCost {
  double area_um2 = 0.0;
  double leakage_mw = 0.0;
  double energy_pj = 0.0;  // dynamic energy per activation
  double delay_ns = 0.0;   // input-to-output critical path

  CellCost& operator+=(const CellCost& o) {
    area_um2 += o.area_um2;
    leakage_mw += o.leakage_mw;
    energy_pj += o.energy_pj;
    // Delay does not add here; path delay is handled by Datapath stages.
    return *this;
  }
};

/// Technology constants (per NAND2-equivalent gate). Calibrated once against
/// the I-BERT INT32 column of the paper's Table 4; see EXPERIMENTS.md.
struct Technology {
  std::string name = "generic-7nm-class";
  double area_per_gate_um2 = 0.055;
  double leakage_per_gate_mw = 1.2e-6;
  double energy_per_gate_pj = 2.4e-4;
  double delay_per_level_ns = 0.016;  // one logic level (FO4-ish)

  static Technology generic_7nm() { return {}; }
};

class CellLibrary {
 public:
  explicit CellLibrary(Technology tech = Technology::generic_7nm())
      : tech_(tech) {}

  const Technology& technology() const { return tech_; }

  /// Carry-select adder, `bits` wide.
  CellCost adder(int bits) const;
  /// Wallace-tree multiplier, a_bits x b_bits.
  CellCost multiplier(int a_bits, int b_bits) const;
  /// Restoring array divider, `bits` wide (combinational; delay ~ bits).
  CellCost divider(int bits) const;
  /// Barrel shifter, `bits` wide.
  CellCost shifter(int bits) const;
  /// ways:1 multiplexer, `bits` wide.
  CellCost mux(int bits, int ways) const;
  /// Magnitude comparator, `bits` wide.
  CellCost comparator(int bits) const;
  /// DFF register bank, `bits` wide.
  CellCost reg(int bits) const;
  /// Register-file LUT storage: `entries` x `bits_per_entry`.
  CellCost table(int entries, int bits_per_entry) const;

  /// Floating-point multiplier / adder with the given mantissa+exponent
  /// split (FP16: 11-bit significand, 5-bit exponent; FP32: 24 / 8).
  CellCost fp_multiplier(int mant_bits, int exp_bits) const;
  CellCost fp_adder(int mant_bits, int exp_bits) const;
  /// FP magnitude comparator (sign/exp/mant compare).
  CellCost fp_comparator(int mant_bits, int exp_bits) const;

 private:
  CellCost from_gates(double gates, double levels) const;
  Technology tech_;
};

}  // namespace nnlut::hw
