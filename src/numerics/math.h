// Reference (full-precision) implementations of the non-linear functions the
// paper approximates, plus the input ranges from Table 1 of the paper.
#pragma once

#include <cmath>
#include <span>

namespace nnlut {

/// Exact GELU: x/2 * (1 + erf(x / sqrt(2))).
inline float gelu_exact(float x) {
  return 0.5f * x * (1.0f + std::erf(x * static_cast<float>(M_SQRT1_2)));
}

inline float exp_exact(float x) { return std::exp(x); }

/// "Divide" in the paper is the reciprocal used for Softmax normalization.
inline float reciprocal_exact(float x) { return 1.0f / x; }

/// 1/sqrt used by LayerNorm.
inline float rsqrt_exact(float x) { return 1.0f / std::sqrt(x); }

/// Numerically-stable exact softmax over a row, in place.
void softmax_exact(std::span<float> row);

/// Exact LayerNorm over a row: y = (x - mean) / sqrt(var + eps) * gamma + beta.
/// gamma/beta may be empty (treated as 1 / 0).
void layer_norm_exact(std::span<const float> x, std::span<float> y,
                      std::span<const float> gamma, std::span<const float> beta,
                      float eps = 1e-5f);

/// Table 1 of the paper: training input range per target function.
struct InputRange {
  float lo;
  float hi;
};

inline constexpr InputRange kGeluRange{-5.0f, 5.0f};
inline constexpr InputRange kExpRange{-256.0f, 0.0f};
inline constexpr InputRange kDivideRange{1.0f, 1024.0f};
inline constexpr InputRange kRsqrtRange{0.1f, 1024.0f};

}  // namespace nnlut
