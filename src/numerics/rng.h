// Deterministic random number generation. Every stochastic component in the
// library (approximator init, dataset synthesis, model init) takes an
// explicit Rng so runs are reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace nnlut {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'c0de'1234'5678ull) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    std::uniform_real_distribution<float> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled by stddev.
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> d(mean, stddev);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli trial.
  bool coin(double p = 0.5) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace nnlut
