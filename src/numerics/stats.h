// Evaluation statistics used by the GLUE / SQuAD benchmarks of the paper:
// accuracy, binary F1 (MRPC/QQP), Matthews correlation (CoLA),
// Pearson/Spearman correlation (STS-B), and token-overlap F1 (SQuAD).
#pragma once

#include <span>
#include <vector>

namespace nnlut {

/// Fraction of positions where pred == label. Empty input -> 0.
double accuracy(std::span<const int> pred, std::span<const int> label);

/// Binary F1 with positive class = 1.
double f1_binary(std::span<const int> pred, std::span<const int> label);

/// Matthews correlation coefficient for binary labels {0,1}.
/// Returns 0 when undefined (degenerate confusion matrix).
double matthews_corrcoef(std::span<const int> pred, std::span<const int> label);

/// Pearson correlation. Returns 0 when either side has zero variance.
double pearson(std::span<const float> a, std::span<const float> b);

/// Spearman rank correlation (average ranks for ties).
double spearman(std::span<const float> a, std::span<const float> b);

/// SQuAD-style span F1: token-overlap F1 between predicted span
/// [pred_start, pred_end] and gold span [gold_start, gold_end] (inclusive
/// token indices), averaged over examples by the caller.
double span_f1(int pred_start, int pred_end, int gold_start, int gold_end);

/// SQuAD-style exact match for a single example.
bool span_exact_match(int pred_start, int pred_end, int gold_start, int gold_end);

/// Mean of |a - b| over the common length.
double mean_abs_error(std::span<const float> a, std::span<const float> b);

/// Max of |a - b| over the common length.
double max_abs_error(std::span<const float> a, std::span<const float> b);

/// Assign fractional ranks (1-based, ties averaged).
std::vector<double> fractional_ranks(std::span<const float> v);

}  // namespace nnlut
