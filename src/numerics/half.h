// IEEE 754 binary16 ("half") emulation.
//
// The paper evaluates FP16 variants of the LUT (Table 3, Table 4). The host
// has no native half type, so we provide bit-exact conversion with
// round-to-nearest-even, plus a small value type that models "compute in
// FP16": every arithmetic result is rounded back through binary16.
//
// NaN semantics match the x86 F16C conversion instructions exactly
// (float->half keeps the top payload bits and sets the quiet bit;
// half->float widens the payload and quiets signaling NaNs), so the
// SIMD FP16 tier's vcvtps2ph/vcvtph2ps round-trips are bit-identical to
// these functions for every input — the tier parity suite asserts it.
#pragma once

#include <cstdint>

namespace nnlut {

/// Convert an FP32 value to the nearest binary16 bit pattern
/// (round-to-nearest-even, with proper handling of subnormals, infinities
/// and NaN).
std::uint16_t float_to_half_bits(float f);

/// Convert a binary16 bit pattern to FP32 (exact).
float half_bits_to_float(std::uint16_t h);

/// Round an FP32 value through binary16 and back. This is the primitive used
/// to emulate FP16 datapaths: `fp16(x) == half_bits_to_float(float_to_half_bits(x))`.
float round_to_half(float f);

/// A value that lives in binary16. All arithmetic rounds through binary16,
/// so chains of operations behave like a genuine FP16 datapath.
class Half {
 public:
  Half() = default;
  explicit Half(float f) : bits_(float_to_half_bits(f)) {}

  static Half from_bits(std::uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  float to_float() const { return half_bits_to_float(bits_); }
  std::uint16_t bits() const { return bits_; }

  friend Half operator+(Half a, Half b) { return Half(a.to_float() + b.to_float()); }
  friend Half operator-(Half a, Half b) { return Half(a.to_float() - b.to_float()); }
  friend Half operator*(Half a, Half b) { return Half(a.to_float() * b.to_float()); }
  friend Half operator/(Half a, Half b) { return Half(a.to_float() / b.to_float()); }
  friend bool operator==(Half a, Half b) { return a.to_float() == b.to_float(); }
  friend bool operator<(Half a, Half b) { return a.to_float() < b.to_float(); }

 private:
  std::uint16_t bits_ = 0;
};

}  // namespace nnlut
