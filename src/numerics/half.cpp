#include "numerics/half.h"

#include <bit>
#include <cstring>

namespace nnlut {

namespace {
constexpr std::uint32_t kF32SignMask = 0x8000'0000u;
constexpr int kF32ExpBias = 127;
constexpr int kF16ExpBias = 15;
}  // namespace

std::uint16_t float_to_half_bits(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint16_t sign = static_cast<std::uint16_t>((x & kF32SignMask) >> 16);
  const std::uint32_t abs = x & 0x7fff'ffffu;

  if (abs >= 0x7f80'0000u) {
    // Inf or NaN. NaN keeps the top 10 payload bits and gains the quiet
    // bit — exactly what x86 vcvtps2ph produces, so the SIMD FP16 tier is
    // bit-identical to this software path (verified exhaustively over all
    // 2^32 float patterns against F16C hardware).
    if (abs > 0x7f80'0000u)
      return static_cast<std::uint16_t>(sign | 0x7e00u |
                                        ((abs & 0x007f'ffffu) >> 13));
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  const int exp32 = static_cast<int>(abs >> 23);
  const std::uint32_t mant32 = abs & 0x007f'ffffu;
  int exp16 = exp32 - kF32ExpBias + kF16ExpBias;

  if (exp16 >= 0x1f) {
    // Overflow: round to infinity.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  if (exp16 <= 0) {
    // Subnormal (or zero) in half precision.
    if (exp16 < -10) return sign;  // Rounds to zero.
    // Add the implicit leading 1 then shift into subnormal position.
    std::uint32_t mant = mant32 | 0x0080'0000u;
    const int shift = 14 - exp16;  // 14..24
    const std::uint32_t rounded = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint16_t out = static_cast<std::uint16_t>(rounded);
    if (rem > halfway || (rem == halfway && (out & 1u))) ++out;
    return static_cast<std::uint16_t>(sign | out);
  }

  // Normal number: keep 10 mantissa bits with round-to-nearest-even.
  std::uint16_t out =
      static_cast<std::uint16_t>((exp16 << 10) | (mant32 >> 13));
  const std::uint32_t rem = mant32 & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;  // May carry into exp: correct.
  return static_cast<std::uint16_t>(sign | out);
}

float half_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const int exp16 = (h >> 10) & 0x1f;
  const std::uint32_t mant16 = h & 0x3ffu;

  std::uint32_t out;
  if (exp16 == 0) {
    if (mant16 == 0) {
      out = sign;  // Signed zero.
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mant16;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      const std::uint32_t exp32 =
          static_cast<std::uint32_t>(kF32ExpBias - kF16ExpBias - e);
      out = sign | (exp32 << 23) | ((m & 0x3ffu) << 13);
    }
  } else if (exp16 == 0x1f) {
    // Inf / NaN. A NaN payload widens left-aligned and the quiet bit is
    // forced on (signaling NaNs come out quieted) — exactly what x86
    // vcvtph2ps produces, so the SIMD FP16 tier matches bit for bit
    // (verified exhaustively over all 2^16 half patterns).
    out = sign | 0x7f80'0000u |
          (mant16 != 0 ? (0x0040'0000u | (mant16 << 13)) : 0u);
  } else {
    const std::uint32_t exp32 =
        static_cast<std::uint32_t>(exp16 - kF16ExpBias + kF32ExpBias);
    out = sign | (exp32 << 23) | (mant16 << 13);
  }
  return std::bit_cast<float>(out);
}

float round_to_half(float f) { return half_bits_to_float(float_to_half_bits(f)); }

}  // namespace nnlut
