#include "numerics/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace nnlut {

double accuracy(std::span<const int> pred, std::span<const int> label) {
  assert(pred.size() == label.size());
  if (pred.empty()) return 0.0;
  std::size_t hit = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == label[i]) ++hit;
  return static_cast<double>(hit) / static_cast<double>(pred.size());
}

namespace {
struct Confusion {
  double tp = 0, fp = 0, tn = 0, fn = 0;
};

Confusion confusion(std::span<const int> pred, std::span<const int> label) {
  assert(pred.size() == label.size());
  Confusion c;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (label[i] == 1) {
      (pred[i] == 1 ? c.tp : c.fn) += 1;
    } else {
      (pred[i] == 1 ? c.fp : c.tn) += 1;
    }
  }
  return c;
}
}  // namespace

double f1_binary(std::span<const int> pred, std::span<const int> label) {
  const Confusion c = confusion(pred, label);
  const double denom = 2 * c.tp + c.fp + c.fn;
  if (denom == 0) return 0.0;
  return 2 * c.tp / denom;
}

double matthews_corrcoef(std::span<const int> pred, std::span<const int> label) {
  const Confusion c = confusion(pred, label);
  const double denom = std::sqrt((c.tp + c.fp) * (c.tp + c.fn) * (c.tn + c.fp) *
                                 (c.tn + c.fn));
  if (denom == 0) return 0.0;
  return (c.tp * c.tn - c.fp * c.fn) / denom;
}

double pearson(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  if (n == 0) return 0.0;
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0 || vb == 0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::vector<double> fractional_ranks(std::span<const float> v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t i, std::size_t j) { return v[i] < v[j]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    // Average 1-based rank over the tie group [i, j].
    const double r = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = r;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  const std::vector<double> ra = fractional_ranks(a);
  const std::vector<double> rb = fractional_ranks(b);
  std::vector<float> fa(ra.begin(), ra.end());
  std::vector<float> fb(rb.begin(), rb.end());
  return pearson(fa, fb);
}

double span_f1(int pred_start, int pred_end, int gold_start, int gold_end) {
  if (pred_end < pred_start || gold_end < gold_start) return 0.0;
  const int lo = std::max(pred_start, gold_start);
  const int hi = std::min(pred_end, gold_end);
  const int overlap = std::max(0, hi - lo + 1);
  if (overlap == 0) return 0.0;
  const double precision =
      static_cast<double>(overlap) / static_cast<double>(pred_end - pred_start + 1);
  const double recall =
      static_cast<double>(overlap) / static_cast<double>(gold_end - gold_start + 1);
  return 2 * precision * recall / (precision + recall);
}

bool span_exact_match(int pred_start, int pred_end, int gold_start, int gold_end) {
  return pred_start == gold_start && pred_end == gold_end;
}

double mean_abs_error(std::span<const float> a, std::span<const float> b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double s = 0;
  for (std::size_t i = 0; i < n; ++i) s += std::abs(static_cast<double>(a[i]) - b[i]);
  return s / static_cast<double>(n);
}

double max_abs_error(std::span<const float> a, std::span<const float> b) {
  const std::size_t n = std::min(a.size(), b.size());
  double m = 0;
  for (std::size_t i = 0; i < n; ++i)
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  return m;
}

}  // namespace nnlut
