#include "numerics/math.h"

#include <algorithm>
#include <cassert>

namespace nnlut {

void softmax_exact(std::span<float> row) {
  if (row.empty()) return;
  const float mx = *std::max_element(row.begin(), row.end());
  float sum = 0.0f;
  for (float& v : row) {
    v = std::exp(v - mx);
    sum += v;
  }
  const float inv = 1.0f / sum;
  for (float& v : row) v *= inv;
}

void layer_norm_exact(std::span<const float> x, std::span<float> y,
                      std::span<const float> gamma, std::span<const float> beta,
                      float eps) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n == 0) return;

  double mean = 0.0;
  for (float v : x) mean += v;
  mean /= static_cast<double>(n);

  double var = 0.0;
  for (float v : x) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(n);

  const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps);
  for (std::size_t i = 0; i < n; ++i) {
    float v = (x[i] - static_cast<float>(mean)) * inv_std;
    if (!gamma.empty()) v *= gamma[i];
    if (!beta.empty()) v += beta[i];
    y[i] = v;
  }
}

}  // namespace nnlut
