#include "net/client.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <utility>

#include "net/socket_io.h"

namespace nnlut::net {

namespace {

/// Arm SO_RCVTIMEO for the time left until `deadline` (floor 1 ms so a
/// nearly-expired deadline still makes one attempt rather than arming an
/// infinite wait with a zero timeval).
void arm_recv_timeout(int fd, std::chrono::steady_clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::microseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left < std::chrono::milliseconds(1)) left = std::chrono::milliseconds(1);
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(left.count() / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(left.count() % 1000000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

}  // namespace

Client::Client(const std::string& address, std::uint16_t port) {
  fd_ = connect_to(address, port);
  set_nodelay(fd_);
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    shutdown_fd(fd_);
    close_fd(fd_);
    fd_ = -1;
  }
}

std::uint64_t Client::submit(std::string_view model_id,
                             const transformer::BatchInput& in) {
  const std::uint64_t id = next_id_++;
  submit_as(id, model_id, in);
  return id;
}

void Client::submit_as(std::uint64_t request_id, std::string_view model_id,
                       const transformer::BatchInput& in) {
  SubmitFrame f;
  f.model_id.assign(model_id);
  f.input = in;
  std::vector<std::uint8_t> payload;
  encode_submit(f, payload);
  const auto frame = make_frame(FrameType::kSubmit, request_id, payload);
  send_raw(frame.data(), frame.size());
}

void Client::send_raw(const std::uint8_t* data, std::size_t len) {
  if (fd_ < 0 || !send_all(fd_, data, len))
    throw ConnectionClosed("net: client connection closed during send");
}

void Client::pump_one(std::chrono::steady_clock::time_point deadline,
                      const char* waiting_for) {
  if (fd_ < 0)
    throw ConnectionClosed("net: client connection is closed");
  if (std::chrono::steady_clock::now() >= deadline)
    throw TimeoutError(std::string("net: timed out waiting for ") +
                       waiting_for);
  arm_recv_timeout(fd_, deadline);
  std::uint8_t hdr[kHeaderSize];
  switch (recv_all(fd_, hdr, kHeaderSize)) {
    case RecvStatus::kOk:
      break;
    case RecvStatus::kTimeout:
      throw TimeoutError(std::string("net: timed out waiting for ") +
                         waiting_for);
    default:
      throw ConnectionClosed(
          "net: server closed the connection (or read error)");
  }
  FrameHeader h;
  if (decode_header(hdr, h) != HeaderStatus::kOk)
    throw ProtocolError("net: malformed frame header from server");
  if (h.payload_len > kDefaultMaxPayloadBytes)
    throw ProtocolError("net: server frame over the payload bound");
  std::vector<std::uint8_t> payload(h.payload_len);
  if (h.payload_len > 0) {
    switch (recv_all(fd_, payload.data(), payload.size())) {
      case RecvStatus::kOk:
        break;
      case RecvStatus::kTimeout:
        // A timeout INSIDE a frame loses sync; the connection is done.
        throw TimeoutError(std::string("net: timed out mid-frame waiting "
                                       "for ") +
                           waiting_for);
      default:
        throw ConnectionClosed("net: connection lost mid-frame");
    }
  }
  switch (h.type) {
    case FrameType::kResult: {
      Completion c;
      c.request_id = h.request_id;
      c.ok = true;
      c.logits = decode_result(payload);
      completions_[h.request_id] = std::move(c);
      return;
    }
    case FrameType::kError: {
      const ErrorFrame e = decode_error(payload);
      Completion c;
      c.request_id = h.request_id;
      c.ok = false;
      c.code = e.code;
      c.message = e.message;
      completions_[h.request_id] = std::move(c);
      return;
    }
    case FrameType::kCancelAck:
      cancel_acks_[h.request_id] = decode_cancel_ack(payload);
      return;
    case FrameType::kStatsResult:
      stats_pages_.push_back(decode_text(payload));
      return;
    default:
      throw ProtocolError("net: server sent a client-bound frame type");
  }
}

Completion Client::await(std::uint64_t request_id,
                         std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto it = completions_.find(request_id);
    if (it != completions_.end()) {
      Completion c = std::move(it->second);
      completions_.erase(it);
      return c;
    }
    pump_one(deadline, "completion");
  }
}

bool Client::cancel(std::uint64_t request_id,
                    std::chrono::milliseconds timeout) {
  std::vector<std::uint8_t> empty;
  const auto frame = make_frame(FrameType::kCancel, request_id, empty);
  send_raw(frame.data(), frame.size());
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto it = cancel_acks_.find(request_id);
    if (it != cancel_acks_.end()) {
      const bool ack = it->second;
      cancel_acks_.erase(it);
      return ack;
    }
    pump_one(deadline, "cancel ack");
  }
}

std::string Client::stats(std::chrono::milliseconds timeout) {
  std::vector<std::uint8_t> empty;
  const auto frame = make_frame(FrameType::kStats, next_id_++, empty);
  send_raw(frame.data(), frame.size());
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (stats_pages_.empty()) pump_one(deadline, "stats page");
  std::string page = std::move(stats_pages_.front());
  stats_pages_.erase(stats_pages_.begin());
  return page;
}

}  // namespace nnlut::net
