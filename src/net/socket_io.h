// Thin POSIX socket helpers shared by TcpServer, Client and the net test
// suites: bind/listen, connect, and exact-count send/recv loops that handle
// short transfers, EINTR, and peer resets without ever raising SIGPIPE
// (every send uses MSG_NOSIGNAL — a mid-request disconnect must surface as
// an error return, not kill the process).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace nnlut::net {

/// Create a TCP listener bound to `address:port` (port 0 = kernel-assigned
/// ephemeral; read it back with local_port). Returns the listening fd.
/// Throws std::system_error on failure.
int listen_on(const std::string& address, std::uint16_t port, int backlog);

/// The locally bound port of a socket fd (how a port-0 server learns its
/// ephemeral port). Throws std::system_error.
std::uint16_t local_port(int fd);

/// Blocking connect to a dotted-quad IPv4 `address`. Returns the connected
/// fd; throws std::system_error.
int connect_to(const std::string& address, std::uint16_t port);

/// Write exactly `len` bytes. False on any error or peer close.
bool send_all(int fd, const std::uint8_t* data, std::size_t len);

enum class RecvStatus : std::uint8_t {
  kOk,       // exactly `len` bytes read
  kClosed,   // orderly EOF before (or at) the first byte of this read
  kError,    // socket error, or EOF mid-buffer (a truncated frame)
  kTimeout,  // SO_RCVTIMEO expired (only on sockets with one configured)
};

/// Read exactly `len` bytes.
RecvStatus recv_all(int fd, std::uint8_t* data, std::size_t len);

/// shutdown(2) both directions — wakes any thread blocked in send/recv on
/// this fd. Safe on an already-shut-down fd; never throws.
void shutdown_fd(int fd);

/// close(2); never throws.
void close_fd(int fd);

/// Disable Nagle (TCP_NODELAY): the protocol is request/response with small
/// frames, where 40 ms delayed-ACK stalls dominate latency. Best-effort.
void set_nodelay(int fd);

}  // namespace nnlut::net
