// TCP front-end over serve::Engine: the wire for the multi-model serving
// stack. One TcpServer owns a listener plus a multi-threaded accept/IO
// loop — an accept thread spawns a reader and a writer thread per
// connection — speaking the length-prefixed binary protocol of
// net/protocol.h (submit/cancel/stats verbs, per-connection request ids,
// out-of-order completion). See docs/NETWORKING.md.
//
//   client ──frames──▶ Session reader ──Engine::submit(model, in)──▶ slot
//                          │    PendingResult::on_ready(callback)     │
//   client ◀──frames── Session writer ◀──bounded write queue ◀────────┘
//
// Completions are ASYNCHRONOUS: no thread blocks per request. The reader
// registers an on_ready callback holding a weak_ptr to the session; when
// the slot's scheduler resolves the request, the callback encodes the
// result (or its typed error frame) and drops it on the owning
// connection's write queue. A session that died first simply fails the
// weak_ptr lock and the response is counted dropped — never a touch of
// freed session state (the contract pinned by serve_test and the chaos
// suite).
//
// Backpressure composes with PR 5 admission control in two layers:
//   - shed-before-parse: when Engine::overloaded(model) says the slot's
//     bounded queue is at depth, the reader classifies the submit frame by
//     its model-id prefix alone and answers kOverloaded without ever
//     deserializing tokens, validating, or taking the queue mutex.
//   - bounded write queues: a connection may buffer at most
//     max_write_queue_bytes of undelivered responses; a slow reader that
//     lets the bound overflow is evicted (queue cleared, socket shut down)
//     rather than allowed to wedge memory or a writer thread.
//
// Error taxonomy on the wire mirrors the in-process one 1:1 — see
// net::ErrorCode. Header-level corruption (bad magic/version/oversized
// payload) loses framing and closes the connection; payload-level
// corruption keeps framing and answers a typed kError frame.
//
// Observability: nnlut_net_* counter families (labeled listen="<port>")
// hang off the engine's metrics registry and deregister on stop();
// net.accept / net.read_frame / net.write_frame spans join the PR 8
// lifecycle trace, correlated by request id with the req.* spans.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"
#include "net/protocol.h"
#include "serve/engine.h"

namespace nnlut::net {

struct TcpServerConfig {
  /// Listen address; loopback by default (tests, single-host deployments).
  std::string bind_address = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; read it back with port().
  std::uint16_t port = 0;
  int backlog = 64;
  /// Reject any frame whose header claims a larger payload (kFrameTooLarge,
  /// then disconnect) — enforced before allocating or reading the payload.
  std::size_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Per-connection bound on buffered undelivered response bytes; at the
  /// bound the connection is evicted as a slow reader.
  std::size_t max_write_queue_bytes = std::size_t{4} << 20;
  /// Register the nnlut_net_* families on the engine's metrics registry
  /// (deregistered on stop()).
  bool register_metrics = true;
};

/// Monotonic counters of one server's lifetime, readable while serving.
/// Reconciliation identity (exact once the engine has drained and every
/// session is closed — asserted by the chaos suite):
///   submits_forwarded == completions_enqueued + responses_dropped
/// Pre-parse sheds, protocol errors, cancels and stats answer inline and
/// are counted separately; they never enter the in-flight map.
struct NetStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t frames_read = 0;
  std::uint64_t frames_written = 0;
  /// Submit frames that reached Engine::submit (each resolves through the
  /// on_ready callback exactly once).
  std::uint64_t submits_forwarded = 0;
  /// Responses (results or typed errors) placed on a write queue.
  std::uint64_t completions_enqueued = 0;
  /// Completions whose session was gone or already closing — the request
  /// itself still resolved and reconciled in the slot's ledger.
  std::uint64_t responses_dropped = 0;
  /// Submits answered kOverloaded from the model-id prefix alone.
  std::uint64_t sheds_preparse = 0;
  /// Malformed headers/payloads and misused verbs.
  std::uint64_t protocol_errors = 0;
  /// Connections evicted at the write-queue bound.
  std::uint64_t slow_reader_evictions = 0;
  /// Cancel verbs processed (acked true or false).
  std::uint64_t cancels = 0;
};

class TcpServer {
 public:
  /// Binds, listens and starts the accept loop. `engine` must outlive the
  /// server. Throws std::system_error when the address/port cannot be
  /// bound.
  explicit TcpServer(serve::Engine& engine, TcpServerConfig cfg = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (the ephemeral one the kernel picked when cfg.port
  /// was 0).
  std::uint16_t port() const { return port_; }

  NetStats stats() const;
  /// Sessions currently alive (accepted, not yet fully torn down).
  std::size_t open_connections() const;

  /// Close the listener, evict every live connection, join all threads,
  /// and deregister the nnlut_net_* metric series. Idempotent; the
  /// destructor calls it. In-flight engine requests keep resolving — their
  /// completions count as responses_dropped.
  void stop();

 private:
  struct Counters;
  class Session;

  void accept_main();
  void reap_finished();
  void register_metrics();

  serve::Engine& engine_;
  const TcpServerConfig cfg_;
  std::shared_ptr<Counters> counters_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string port_label_;  // listen="<port>" label value for deregistration
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::uint64_t next_conn_id_ = 0;  // accept thread only
  mutable Mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_
      NNLUT_GUARDED_BY(sessions_mu_);
  std::thread accept_thread_;  // last: joined before members go away
};

}  // namespace nnlut::net
