#include "net/tcp_server.h"

#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <exception>
#include <string_view>
#include <utility>

#include "net/socket_io.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace nnlut::net {

/// Lifetime note: counters live in a shared_ptr held by the server, every
/// session, every on_ready callback, and the metric callbacks until
/// deregistration — so a completion that outlives its session (or the whole
/// server teardown racing a scheduler thread) still has somewhere safe to
/// count itself.
struct TcpServer::Counters {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> bytes_written{0};
  std::atomic<std::uint64_t> frames_read{0};
  std::atomic<std::uint64_t> frames_written{0};
  std::atomic<std::uint64_t> submits_forwarded{0};
  std::atomic<std::uint64_t> completions_enqueued{0};
  std::atomic<std::uint64_t> responses_dropped{0};
  std::atomic<std::uint64_t> sheds_preparse{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> slow_reader_evictions{0};
  std::atomic<std::uint64_t> cancels{0};
};

namespace {

std::uint64_t frame_request_id(const std::vector<std::uint8_t>& frame) {
  // Bytes 12..19 of the header, little-endian (see net/protocol.h).
  std::uint64_t id = 0;
  for (int i = 7; i >= 0; --i)
    id = (id << 8) | frame[12 + static_cast<std::size_t>(i)];
  return id;
}

}  // namespace

/// One accepted connection: an owning fd, a reader thread (frame loop +
/// dispatch), a writer thread draining the bounded response queue, and the
/// in-flight map from client request id to PendingResult. Sessions are
/// shared_ptr-owned; completion callbacks hold only a weak_ptr, so a dead
/// session is observed as an expired weak_ptr, never as freed memory.
class TcpServer::Session : public std::enable_shared_from_this<Session> {
 public:
  static std::shared_ptr<Session> spawn(int fd, std::uint64_t conn_id,
                                        serve::Engine& engine,
                                        const TcpServerConfig& cfg,
                                        std::shared_ptr<Counters> counters) {
    auto s = std::shared_ptr<Session>(
        new Session(fd, conn_id, engine, cfg, std::move(counters)));
    s->reader_ = std::thread([s] { s->reader_main(); });
    return s;
  }

  ~Session() { close_fd(fd_); }

  /// Server-side teardown: wake both threads and shut the socket down. The
  /// reader observes the failed recv and runs its normal exit path.
  void close() {
    {
      MutexLock lk(mu_);
      closing_ = true;
    }
    wcv_.notify_all();
    shutdown_fd(fd_);
  }

  /// Join the reader (which joins the writer itself). Only after
  /// finished() or close().
  void join() {
    if (reader_.joinable()) reader_.join();
  }

  bool finished() const { return finished_.load(std::memory_order_acquire); }

  /// Resolve-side entry: called by the on_ready callback on whatever thread
  /// resolved the request (scheduler, canceller, an evicting submitter).
  /// Pops the in-flight entry, maps the outcome onto a kResult/kError frame
  /// and enqueues it toward the client.
  void complete(std::uint64_t request_id) {
    serve::PendingResult pending;
    {
      MutexLock lk(mu_);
      auto it = inflight_.find(request_id);
      if (it == inflight_.end()) {
        // Reader teardown already abandoned the in-flight map.
        counters_->responses_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      pending = std::move(it->second);
      inflight_.erase(it);
    }
    std::vector<std::uint8_t> payload;
    FrameType type = FrameType::kResult;
    // The request is done (on_ready fired), so get() cannot block; it
    // either yields the logits or rethrows the request's error, which maps
    // 1:1 onto the wire taxonomy. Order matters only for documentation —
    // these types don't derive from one another.
    try {
      const Tensor logits = pending.get();
      encode_result(logits, payload);
    } catch (const serve::ServerOverloaded& e) {
      type = FrameType::kError;
      encode_error({ErrorCode::kOverloaded, e.what()}, payload);
    } catch (const serve::RequestCancelled& e) {
      type = FrameType::kError;
      encode_error({ErrorCode::kCancelled, e.what()}, payload);
    } catch (const std::invalid_argument& e) {
      type = FrameType::kError;
      encode_error({ErrorCode::kInvalidArgument, e.what()}, payload);
    } catch (const std::out_of_range& e) {
      type = FrameType::kError;
      encode_error({ErrorCode::kOutOfRange, e.what()}, payload);
    } catch (const std::exception& e) {
      type = FrameType::kError;
      encode_error({ErrorCode::kInternal, e.what()}, payload);
    }
    if (!enqueue(make_frame(type, request_id, payload),
                 &counters_->completions_enqueued))
      counters_->responses_dropped.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  Session(int fd, std::uint64_t conn_id, serve::Engine& engine,
          const TcpServerConfig& cfg, std::shared_ptr<Counters> counters)
      : fd_(fd), conn_id_(conn_id), engine_(engine), cfg_(cfg),
        counters_(std::move(counters)) {
    set_nodelay(fd_);
  }

  void reader_main() {
    {
      char name[16];
      std::snprintf(name, sizeof name, "nn-r-%llu",
                    static_cast<unsigned long long>(conn_id_));
      runtime::set_current_thread_name(name);
    }
    auto self = shared_from_this();
    writer_ = std::thread([self] { self->writer_main(); });

    std::uint8_t hdr[kHeaderSize];
    std::vector<std::uint8_t> payload;
    for (;;) {
      if (recv_all(fd_, hdr, kHeaderSize) != RecvStatus::kOk) break;
      FrameHeader h;
      const HeaderStatus hs = decode_header(hdr, h);
      if (hs != HeaderStatus::kOk) {
        counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        // Framing is lost: disconnect. Bad magic gets no reply at all (the
        // peer is not speaking this protocol); the rest get a parting
        // error frame that may or may not flush before the close.
        if (hs != HeaderStatus::kBadMagic)
          send_protocol_error(h.request_id, ErrorCode::kMalformedFrame,
                              "malformed frame header");
        break;
      }
      if (h.payload_len > cfg_.max_payload_bytes) {
        counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        send_protocol_error(h.request_id, ErrorCode::kFrameTooLarge,
                            "payload length over server bound");
        break;  // the claimed payload is never read (nor allocated)
      }
      {
        obs::ScopedSpan span("net.read_frame", h.request_id);
        payload.resize(h.payload_len);
        if (h.payload_len > 0 &&
            recv_all(fd_, payload.data(), payload.size()) != RecvStatus::kOk)
          break;  // truncated frame (half-written then RST): disconnect
        counters_->frames_read.fetch_add(1, std::memory_order_relaxed);
        counters_->bytes_read.fetch_add(kHeaderSize + payload.size(),
                                        std::memory_order_relaxed);
        dispatch(h, payload);
      }
    }

    // Teardown: wake the writer and abandon the in-flight map. Outstanding
    // engine requests keep executing; their on_ready callbacks will find
    // the id gone (or the enqueue refused) and count responses_dropped.
    {
      MutexLock lk(mu_);
      closing_ = true;
      inflight_.clear();
    }
    wcv_.notify_all();
    writer_.join();
    // The writer has flushed (or dropped) everything it ever will; push the
    // FIN out NOW rather than when the server reaps this session, so a
    // peer blocked on a read sees EOF promptly after a server-initiated
    // disconnect.
    shutdown_fd(fd_);
    counters_->connections_closed.fetch_add(1, std::memory_order_relaxed);
    finished_.store(true, std::memory_order_release);
  }

  void writer_main() {
    {
      char name[16];
      std::snprintf(name, sizeof name, "nn-w-%llu",
                    static_cast<unsigned long long>(conn_id_));
      runtime::set_current_thread_name(name);
    }
    for (;;) {
      std::vector<std::uint8_t> frame;
      {
        UniqueLock lk(mu_);
        while (writeq_.empty() && !closing_) wcv_.wait(lk);
        if (writeq_.empty()) break;  // closing, nothing left to flush
        frame = std::move(writeq_.front());
        writeq_.pop_front();
        writeq_bytes_ -= frame.size();
      }
      obs::ScopedSpan span("net.write_frame", frame_request_id(frame));
      if (!send_all(fd_, frame.data(), frame.size())) {
        // Peer gone mid-write: stop delivering, drop whatever is queued.
        {
          MutexLock lk(mu_);
          closing_ = true;
          writeq_.clear();
          writeq_bytes_ = 0;
        }
        shutdown_fd(fd_);
        break;
      }
      counters_->frames_written.fetch_add(1, std::memory_order_relaxed);
      counters_->bytes_written.fetch_add(frame.size(),
                                         std::memory_order_relaxed);
    }
  }

  void dispatch(const FrameHeader& h, std::span<const std::uint8_t> payload) {
    switch (h.type) {
      case FrameType::kSubmit:
        handle_submit(h.request_id, payload);
        return;
      case FrameType::kCancel:
        handle_cancel(h.request_id, payload);
        return;
      case FrameType::kStats: {
        if (!payload.empty()) {
          counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
          send_protocol_error(h.request_id, ErrorCode::kMalformedFrame,
                              "stats frame carries a payload");
          return;
        }
        std::vector<std::uint8_t> body;
        encode_text(engine_.scrape(), body);
        enqueue(make_frame(FrameType::kStatsResult, h.request_id, body));
        return;
      }
      default: {
        // A server-bound direction violation (client sent kResult & co).
        counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        send_protocol_error(h.request_id, ErrorCode::kMalformedFrame,
                            "server-bound frame type");
        return;
      }
    }
  }

  void handle_submit(std::uint64_t request_id,
                     std::span<const std::uint8_t> payload) {
    bool duplicate = false;
    {
      MutexLock lk(mu_);
      duplicate = inflight_.count(request_id) != 0;
    }
    // Answered outside mu_: the error path re-enters enqueue(), which takes
    // the same (non-recursive) mutex.
    if (duplicate) {
      counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_protocol_error(request_id, ErrorCode::kMalformedFrame,
                          "request id already in flight");
      return;
    }
    // Shed before parse: classify the frame by its model-id prefix alone.
    // Under overload the server's cost per refused request is two header
    // fields and a queue-depth read — tokens are never deserialized,
    // validation never runs, the queue mutex is never taken.
    try {
      const std::string_view model = peek_submit_model(payload);
      if (engine_.overloaded(model)) {
        counters_->sheds_preparse.fetch_add(1, std::memory_order_relaxed);
        std::vector<std::uint8_t> body;
        encode_error({ErrorCode::kOverloaded,
                      "net: slot queue at depth bound (shed before parse)"},
                     body);
        enqueue(make_frame(FrameType::kError, request_id, body));
        return;
      }
    } catch (const ProtocolError& e) {
      counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_protocol_error(request_id, ErrorCode::kMalformedFrame, e.what());
      return;
    }
    SubmitFrame frame;
    try {
      frame = decode_submit(payload);
    } catch (const ProtocolError& e) {
      counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_protocol_error(request_id, ErrorCode::kMalformedFrame, e.what());
      return;
    }
    serve::PendingResult pending =
        engine_.submit(frame.model_id, std::move(frame.input));
    counters_->submits_forwarded.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lk(mu_);
      inflight_.emplace(request_id, pending);
    }
    // May fire immediately (validation rejects resolve synchronously) — on
    // this thread, after the map insert above, so complete() always finds
    // its entry. The callback holds the session only weakly: a session torn
    // down before the request resolves is an expired weak_ptr, and the
    // completion counts as dropped instead of touching freed state.
    pending.on_ready(
        [weak = weak_from_this(), counters = counters_, request_id] {
          if (auto session = weak.lock()) {
            session->complete(request_id);
          } else {
            counters->responses_dropped.fetch_add(1,
                                                  std::memory_order_relaxed);
          }
        });
  }

  void handle_cancel(std::uint64_t request_id,
                     std::span<const std::uint8_t> payload) {
    if (!payload.empty()) {
      counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_protocol_error(request_id, ErrorCode::kMalformedFrame,
                          "cancel frame carries a payload");
      return;
    }
    serve::PendingResult pending;
    {
      MutexLock lk(mu_);
      auto it = inflight_.find(request_id);
      if (it != inflight_.end()) pending = it->second;  // copy shares state
    }
    // cancel() outside mu_: a successful cancel resolves the request and
    // runs the on_ready callback synchronously on THIS thread, which
    // re-enters complete() and takes mu_ itself. The client then sees two
    // frames: the ack below and the submit's kError(kCancelled) completion.
    const bool cancelled = pending.valid() && pending.cancel();
    counters_->cancels.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::uint8_t> body;
    encode_cancel_ack(cancelled, body);
    enqueue(make_frame(FrameType::kCancelAck, request_id, body));
  }

  void send_protocol_error(std::uint64_t request_id, ErrorCode code,
                           const char* msg) {
    std::vector<std::uint8_t> body;
    encode_error({code, msg}, body);
    enqueue(make_frame(FrameType::kError, request_id, body));
  }

  /// Place a frame on the bounded write queue. False (frame dropped) when
  /// the session is closing or the bound overflowed — the latter evicts
  /// the connection: a reader that cannot keep up with its responses gets
  /// disconnected rather than an unbounded buffer or a wedged writer.
  /// `on_delivery` (optional) is incremented under mu_ at push time, BEFORE
  /// the frame becomes visible to the writer: once a client can observe the
  /// response, the counter is already set, so stats() scraped at any moment
  /// satisfies forwarded == enqueued + dropped.
  bool enqueue(std::vector<std::uint8_t> frame,
               std::atomic<std::uint64_t>* on_delivery = nullptr) {
    bool evicted = false;
    {
      MutexLock lk(mu_);
      if (closing_) return false;
      if (writeq_bytes_ + frame.size() > cfg_.max_write_queue_bytes) {
        closing_ = true;
        writeq_.clear();
        writeq_bytes_ = 0;
        evicted = true;
      } else {
        if (on_delivery) on_delivery->fetch_add(1, std::memory_order_relaxed);
        writeq_bytes_ += frame.size();
        writeq_.push_back(std::move(frame));
      }
    }
    wcv_.notify_all();
    if (evicted) {
      counters_->slow_reader_evictions.fetch_add(1,
                                                 std::memory_order_relaxed);
      shutdown_fd(fd_);  // wakes the blocked reader and writer
      return false;
    }
    return true;
  }

  const int fd_;
  const std::uint64_t conn_id_;
  serve::Engine& engine_;
  const TcpServerConfig& cfg_;  // owned by TcpServer, which outlives us
  const std::shared_ptr<Counters> counters_;

  mutable Mutex mu_;
  CondVar wcv_;
  std::deque<std::vector<std::uint8_t>> writeq_ NNLUT_GUARDED_BY(mu_);
  std::size_t writeq_bytes_ NNLUT_GUARDED_BY(mu_) = 0;
  bool closing_ NNLUT_GUARDED_BY(mu_) = false;
  /// Client request id -> its engine handle. std::map (ordered) per the
  /// determinism lint; sized by the client's in-flight window.
  std::map<std::uint64_t, serve::PendingResult> inflight_
      NNLUT_GUARDED_BY(mu_);

  std::atomic<bool> finished_{false};
  std::thread writer_;  // joined by the reader on its way out
  std::thread reader_;  // joined by TcpServer (reap or stop)

  friend class TcpServer;
};

TcpServer::TcpServer(serve::Engine& engine, TcpServerConfig cfg)
    : engine_(engine),
      cfg_(std::move(cfg)),
      counters_(std::make_shared<Counters>()) {
  listen_fd_ = listen_on(cfg_.bind_address, cfg_.port, cfg_.backlog);
  port_ = local_port(listen_fd_);
  port_label_ = std::to_string(port_);
  if (cfg_.register_metrics) register_metrics();
  accept_thread_ = std::thread([this] { accept_main(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::accept_main() {
  runtime::set_current_thread_name("nnlut-net-acc");
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener is broken; stop accepting
    }
    if (stopping_.load(std::memory_order_acquire)) {
      close_fd(fd);
      break;
    }
    const std::uint64_t conn_id = ++next_conn_id_;
    obs::ScopedSpan span("net.accept", conn_id);
    counters_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    auto session = Session::spawn(fd, conn_id, engine_, cfg_, counters_);
    {
      MutexLock lk(sessions_mu_);
      sessions_.push_back(std::move(session));
    }
    reap_finished();
  }
}

void TcpServer::reap_finished() {
  std::vector<std::shared_ptr<Session>> done;
  {
    MutexLock lk(sessions_mu_);
    for (std::size_t i = 0; i < sessions_.size();) {
      if (sessions_[i]->finished()) {
        done.push_back(std::move(sessions_[i]));
        sessions_.erase(sessions_.begin() +
                        static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (const auto& s : done) s->join();  // outside the lock
}

void TcpServer::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock accept(2) with shutdown, join, THEN close the fd — closing a
  // descriptor another thread is blocked on is a use-after-close race.
  shutdown_fd(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  close_fd(listen_fd_);
  listen_fd_ = -1;

  std::vector<std::shared_ptr<Session>> sessions;
  {
    MutexLock lk(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (const auto& s : sessions) s->close();
  for (const auto& s : sessions) s->join();
  sessions.clear();

  if (cfg_.register_metrics)
    engine_.metrics().remove_labeled("listen", port_label_);
}

NetStats TcpServer::stats() const {
  NetStats out;
  out.connections_accepted =
      counters_->connections_accepted.load(std::memory_order_relaxed);
  out.connections_closed =
      counters_->connections_closed.load(std::memory_order_relaxed);
  out.bytes_read = counters_->bytes_read.load(std::memory_order_relaxed);
  out.bytes_written = counters_->bytes_written.load(std::memory_order_relaxed);
  out.frames_read = counters_->frames_read.load(std::memory_order_relaxed);
  out.frames_written =
      counters_->frames_written.load(std::memory_order_relaxed);
  out.submits_forwarded =
      counters_->submits_forwarded.load(std::memory_order_relaxed);
  out.completions_enqueued =
      counters_->completions_enqueued.load(std::memory_order_relaxed);
  out.responses_dropped =
      counters_->responses_dropped.load(std::memory_order_relaxed);
  out.sheds_preparse =
      counters_->sheds_preparse.load(std::memory_order_relaxed);
  out.protocol_errors =
      counters_->protocol_errors.load(std::memory_order_relaxed);
  out.slow_reader_evictions =
      counters_->slow_reader_evictions.load(std::memory_order_relaxed);
  out.cancels = counters_->cancels.load(std::memory_order_relaxed);
  return out;
}

std::size_t TcpServer::open_connections() const {
  MutexLock lk(sessions_mu_);
  return sessions_.size();
}

void TcpServer::register_metrics() {
  using Labels = obs::MetricsRegistry::Labels;
  obs::MetricsRegistry& reg = engine_.metrics();
  const Labels base{{"listen", port_label_}};
  // Callbacks capture the counters shared_ptr, never `this`: they are
  // deregistered in stop(), but even a scrape racing teardown only ever
  // reads the atomics.
  const auto c = counters_;
  struct Family {
    const char* name;
    const char* help;
    std::atomic<std::uint64_t> Counters::*field;
  };
  static const Family kFamilies[] = {
      {"nnlut_net_connections_total", "TCP connections accepted.",
       &Counters::connections_accepted},
      {"nnlut_net_connections_closed_total",
       "TCP connections fully torn down.", &Counters::connections_closed},
      {"nnlut_net_submits_total",
       "Submit frames forwarded into Engine::submit.",
       &Counters::submits_forwarded},
      {"nnlut_net_shed_total",
       "Submits answered kOverloaded before parsing (socket-layer "
       "backpressure composing with admission control).",
       &Counters::sheds_preparse},
      {"nnlut_net_protocol_errors_total",
       "Malformed headers/payloads and misused verbs.",
       &Counters::protocol_errors},
      {"nnlut_net_slow_reader_evictions_total",
       "Connections evicted at the write-queue byte bound.",
       &Counters::slow_reader_evictions},
      {"nnlut_net_cancels_total", "Cancel verbs processed.",
       &Counters::cancels},
  };
  for (const Family& f : kFamilies)
    reg.add_counter(f.name, f.help, base,
                    [c, field = f.field] {
                      return (*c.*field).load(std::memory_order_relaxed);
                    });
  struct Directional {
    const char* dir;
    std::atomic<std::uint64_t> Counters::*bytes;
    std::atomic<std::uint64_t> Counters::*frames;
  };
  static const Directional kDirs[] = {
      {"read", &Counters::bytes_read, &Counters::frames_read},
      {"written", &Counters::bytes_written, &Counters::frames_written},
  };
  for (const Directional& d : kDirs) {
    Labels labels = base;
    labels.emplace_back("dir", d.dir);
    reg.add_counter("nnlut_net_bytes_total",
                    "Frame bytes through the socket layer, by direction.",
                    labels, [c, field = d.bytes] {
                      return (*c.*field).load(std::memory_order_relaxed);
                    });
    reg.add_counter("nnlut_net_frames_total",
                    "Frames through the socket layer, by direction.", labels,
                    [c, field = d.frames] {
                      return (*c.*field).load(std::memory_order_relaxed);
                    });
  }
  struct Outcome {
    const char* outcome;
    std::atomic<std::uint64_t> Counters::*field;
  };
  static const Outcome kOutcomes[] = {
      {"enqueued", &Counters::completions_enqueued},
      {"dropped", &Counters::responses_dropped},
  };
  for (const Outcome& o : kOutcomes) {
    Labels labels = base;
    labels.emplace_back("outcome", o.outcome);
    reg.add_counter(
        "nnlut_net_completions_total",
        "Request completions, by delivery outcome: enqueued toward the "
        "client, or dropped because its connection was gone. "
        "submits == enqueued + dropped once drained.",
        labels, [c, field = o.field] {
          return (*c.*field).load(std::memory_order_relaxed);
        });
  }
}

}  // namespace nnlut::net
