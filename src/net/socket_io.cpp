#include "net/socket_io.h"

#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <system_error>
#include <unistd.h>

namespace nnlut::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    throw_errno("net: invalid IPv4 address");
  }
  return addr;
}

}  // namespace

int listen_on(const std::string& address, std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("net: socket");
  // REUSEADDR so a restarted server rebinds its port without waiting out
  // TIME_WAIT sockets from the previous instance's connections.
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in addr = make_addr(address, port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("net: bind");
  }
  if (::listen(fd, backlog) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("net: listen");
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    throw_errno("net: getsockname");
  return ntohs(addr.sin_port);
}

int connect_to(const std::string& address, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("net: socket");
  const sockaddr_in addr = make_addr(address, port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0)
      return fd;
    if (errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("net: connect");
  }
}

bool send_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n =
        ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // error or peer gone (EPIPE/ECONNRESET, never SIGPIPE)
  }
  return true;
}

RecvStatus recv_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return RecvStatus::kTimeout;  // SO_RCVTIMEO expired
    if (n == 0)  // orderly EOF: clean between frames, truncation inside one
      return got == 0 ? RecvStatus::kClosed : RecvStatus::kError;
    return RecvStatus::kError;
  }
  return RecvStatus::kOk;
}

void shutdown_fd(int fd) { ::shutdown(fd, SHUT_RDWR); }

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace nnlut::net
