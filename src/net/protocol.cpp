#include "net/protocol.h"

#include <cstring>
#include <limits>

namespace nnlut::net {

namespace {

// Explicit little-endian field codecs: the wire format must not depend on
// host byte order or struct layout.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);  // raw IEEE-754 pattern, no rounding
  put_u32(out, bits);
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_u64(std::uint8_t* p, std::uint64_t v) {
  store_u32(p, static_cast<std::uint32_t>(v));
  store_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
}

/// Bounds-checked sequential reader over a payload span. Every read is
/// range-checked BEFORE touching memory, so decoders are total functions of
/// arbitrary bytes: the only outcomes are a value or ProtocolError.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8(const char* what) {
    need(1, what);
    return bytes_[pos_++];
  }

  std::uint16_t u16(const char* what) {
    need(2, what);
    const std::uint16_t v =
        static_cast<std::uint16_t>(bytes_[pos_] |
                                   (static_cast<std::uint16_t>(
                                        bytes_[pos_ + 1])
                                    << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    const std::uint32_t v = load_u32(bytes_.data() + pos_);
    pos_ += 4;
    return v;
  }

  std::int32_t i32(const char* what) {
    return static_cast<std::int32_t>(u32(what));
  }

  float f32(const char* what) {
    const std::uint32_t bits = u32(what);
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::span<const std::uint8_t> bytes(std::size_t n, const char* what) {
    need(n, what);
    auto s = bytes_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }

  /// Decoders call this last: trailing bytes mean the sender's and our idea
  /// of the payload disagree — reject rather than silently ignore.
  void expect_end(const char* what) const {
    if (pos_ != bytes_.size())
      throw ProtocolError(std::string("net: trailing bytes after ") + what);
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (bytes_.size() - pos_ < n)
      throw ProtocolError(std::string("net: truncated payload reading ") +
                          what);
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

bool is_client_frame_type(std::uint8_t t) {
  return t == static_cast<std::uint8_t>(FrameType::kSubmit) ||
         t == static_cast<std::uint8_t>(FrameType::kCancel) ||
         t == static_cast<std::uint8_t>(FrameType::kStats);
}

namespace {
bool is_known_frame_type(std::uint8_t t) {
  return is_client_frame_type(t) ||
         t == static_cast<std::uint8_t>(FrameType::kResult) ||
         t == static_cast<std::uint8_t>(FrameType::kError) ||
         t == static_cast<std::uint8_t>(FrameType::kCancelAck) ||
         t == static_cast<std::uint8_t>(FrameType::kStatsResult);
}
}  // namespace

void encode_header(const FrameHeader& h, std::uint8_t* out) {
  store_u32(out, kMagic);
  out[4] = kProtocolVersion;
  out[5] = static_cast<std::uint8_t>(h.type);
  out[6] = 0;
  out[7] = 0;
  store_u32(out + 8, h.payload_len);
  store_u64(out + 12, h.request_id);
}

HeaderStatus decode_header(const std::uint8_t* in, FrameHeader& out) {
  if (load_u32(in) != kMagic) return HeaderStatus::kBadMagic;
  if (in[4] != kProtocolVersion) return HeaderStatus::kBadVersion;
  if (!is_known_frame_type(in[5])) return HeaderStatus::kBadType;
  if (in[6] != 0 || in[7] != 0) return HeaderStatus::kBadReserved;
  out.type = static_cast<FrameType>(in[5]);
  out.payload_len = load_u32(in + 8);
  out.request_id = load_u64(in + 12);
  return HeaderStatus::kOk;
}

void encode_submit(const SubmitFrame& f, std::vector<std::uint8_t>& out) {
  if (f.model_id.size() > kMaxModelIdLen)
    throw ProtocolError("net: model id over kMaxModelIdLen");
  if (f.input.token_ids.size() >
          std::numeric_limits<std::uint32_t>::max() ||
      f.input.type_ids.size() > std::numeric_limits<std::uint32_t>::max() ||
      f.input.batch > std::numeric_limits<std::uint32_t>::max() ||
      f.input.seq > std::numeric_limits<std::uint32_t>::max())
    throw ProtocolError("net: request dimensions exceed u32 wire fields");
  out.clear();
  put_u16(out, static_cast<std::uint16_t>(f.model_id.size()));
  out.insert(out.end(), f.model_id.begin(), f.model_id.end());
  put_u32(out, static_cast<std::uint32_t>(f.input.batch));
  put_u32(out, static_cast<std::uint32_t>(f.input.seq));
  put_u32(out, static_cast<std::uint32_t>(f.input.token_ids.size()));
  for (const int t : f.input.token_ids)
    put_u32(out, static_cast<std::uint32_t>(t));
  put_u32(out, static_cast<std::uint32_t>(f.input.type_ids.size()));
  for (const int t : f.input.type_ids)
    put_u32(out, static_cast<std::uint32_t>(t));
}

SubmitFrame decode_submit(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  SubmitFrame f;
  const std::uint16_t id_len = r.u16("model id length");
  if (id_len > kMaxModelIdLen)
    throw ProtocolError("net: model id over kMaxModelIdLen");
  const auto id = r.bytes(id_len, "model id");
  f.model_id.assign(reinterpret_cast<const char*>(id.data()), id.size());
  f.input.batch = r.u32("batch");
  f.input.seq = r.u32("seq");
  const std::uint32_t n_tokens = r.u32("token count");
  // The remaining payload is the only budget the arrays may claim: a count
  // larger than the bytes actually present is rejected BEFORE any reserve,
  // so a 16-byte frame can never make the decoder allocate 4 GiB.
  if (static_cast<std::size_t>(n_tokens) * 4 > r.remaining())
    throw ProtocolError("net: token count exceeds payload");
  if (n_tokens != f.input.batch * f.input.seq)
    throw ProtocolError("net: token count != batch * seq");
  f.input.token_ids.reserve(n_tokens);
  for (std::uint32_t i = 0; i < n_tokens; ++i)
    f.input.token_ids.push_back(r.i32("token id"));
  const std::uint32_t n_types = r.u32("type count");
  if (n_types != 0 && n_types != n_tokens)
    throw ProtocolError("net: type count must be 0 or the token count");
  if (static_cast<std::size_t>(n_types) * 4 > r.remaining())
    throw ProtocolError("net: type count exceeds payload");
  f.input.type_ids.reserve(n_types);
  for (std::uint32_t i = 0; i < n_types; ++i)
    f.input.type_ids.push_back(r.i32("type id"));
  r.expect_end("submit payload");
  return f;
}

std::string_view peek_submit_model(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const std::uint16_t id_len = r.u16("model id length");
  if (id_len > kMaxModelIdLen)
    throw ProtocolError("net: model id over kMaxModelIdLen");
  const auto id = r.bytes(id_len, "model id");
  return std::string_view(reinterpret_cast<const char*>(id.data()), id.size());
}

void encode_result(const Tensor& logits, std::vector<std::uint8_t>& out) {
  const auto& shape = logits.shape();
  if (shape.size() > kMaxResultRank)
    throw ProtocolError("net: result rank over kMaxResultRank");
  out.clear();
  put_u32(out, static_cast<std::uint32_t>(shape.size()));
  for (const std::size_t d : shape) {
    if (d > std::numeric_limits<std::uint32_t>::max())
      throw ProtocolError("net: result dim exceeds u32 wire field");
    put_u32(out, static_cast<std::uint32_t>(d));
  }
  for (const float v : logits.flat()) put_f32(out, v);
}

Tensor decode_result(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const std::uint32_t rank = r.u32("result rank");
  if (rank < 1 || rank > kMaxResultRank)
    throw ProtocolError("net: result rank must be 1..kMaxResultRank");
  std::vector<std::size_t> shape(rank);
  // The element count is bounded by the bytes actually on the wire (4 per
  // f32), checked as the product accumulates — a 12-byte frame claiming a
  // 2^32-element tensor is rejected before any allocation, and the bound
  // also keeps the product far from size_t overflow.
  std::size_t n = 1;
  const std::size_t max_elems = payload.size() / 4;
  for (std::uint32_t i = 0; i < rank; ++i) {
    shape[i] = r.u32("result dim");
    if (shape[i] == 0)
      throw ProtocolError("net: zero result dimension");
    if (n > max_elems / shape[i])
      throw ProtocolError("net: result element count exceeds payload");
    n *= shape[i];
  }
  if (n * 4 != r.remaining())
    throw ProtocolError("net: result data size mismatch");
  Tensor t(shape);
  auto flat = t.flat();
  for (std::size_t i = 0; i < n; ++i) flat[i] = r.f32("result value");
  r.expect_end("result payload");
  return t;
}

void encode_error(const ErrorFrame& f, std::vector<std::uint8_t>& out) {
  out.clear();
  put_u16(out, static_cast<std::uint16_t>(f.code));
  put_u32(out, static_cast<std::uint32_t>(f.message.size()));
  out.insert(out.end(), f.message.begin(), f.message.end());
}

ErrorFrame decode_error(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ErrorFrame f;
  const std::uint16_t code = r.u16("error code");
  if (code < 1 || code > static_cast<std::uint16_t>(ErrorCode::kInternal))
    throw ProtocolError("net: unknown error code");
  f.code = static_cast<ErrorCode>(code);
  const std::uint32_t len = r.u32("error message length");
  if (len > r.remaining())
    throw ProtocolError("net: error message length exceeds payload");
  const auto msg = r.bytes(len, "error message");
  f.message.assign(reinterpret_cast<const char*>(msg.data()), msg.size());
  r.expect_end("error payload");
  return f;
}

void encode_cancel_ack(bool cancelled, std::vector<std::uint8_t>& out) {
  out.assign(1, cancelled ? 1 : 0);
}

bool decode_cancel_ack(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const std::uint8_t v = r.u8("cancel ack flag");
  if (v > 1) throw ProtocolError("net: cancel ack flag must be 0 or 1");
  r.expect_end("cancel ack payload");
  return v == 1;
}

void encode_text(std::string_view text, std::vector<std::uint8_t>& out) {
  out.assign(text.begin(), text.end());
}

std::string decode_text(std::span<const std::uint8_t> payload) {
  return std::string(reinterpret_cast<const char*>(payload.data()),
                     payload.size());
}

std::vector<std::uint8_t> make_frame(FrameType type, std::uint64_t request_id,
                                     std::span<const std::uint8_t> payload) {
  if (payload.size() > std::numeric_limits<std::uint32_t>::max())
    throw ProtocolError("net: payload exceeds u32 length field");
  std::vector<std::uint8_t> frame(kHeaderSize + payload.size());
  FrameHeader h;
  h.type = type;
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  h.request_id = request_id;
  encode_header(h, frame.data());
  if (!payload.empty())  // empty frames: span.data() may be null
    std::memcpy(frame.data() + kHeaderSize, payload.data(), payload.size());
  return frame;
}

}  // namespace nnlut::net
