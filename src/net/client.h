// Blocking client for the NN-LUT wire protocol: submit/cancel/stats with
// out-of-order completion demultiplexing. One Client is one connection and
// is NOT thread-safe — concurrency tests and the load generator run one
// Client per thread, which also matches the per-connection request-id
// scope of the protocol.
//
// Because the server completes requests in whatever order the batchers
// resolve them, await(id) reads frames until id's completion arrives,
// parking every other completion in a buffer for its own await. All waits
// take an explicit timeout so a chaos scenario that kills the server can
// never hang a test: expiry throws TimeoutError.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.h"
#include "tensor/tensor.h"
#include "transformer/encoder.h"

namespace nnlut::net {

/// await()/stats() deadline expired before the server answered.
class TimeoutError : public std::runtime_error {
 public:
  explicit TimeoutError(const std::string& what) : std::runtime_error(what) {}
};

/// The connection closed (or errored) under a read/write.
class ConnectionClosed : public std::runtime_error {
 public:
  explicit ConnectionClosed(const std::string& what)
      : std::runtime_error(what) {}
};

/// One submit's completion: kResult (logits) or kError (typed code).
struct Completion {
  std::uint64_t request_id = 0;
  bool ok = false;          // true: logits valid; false: code/message valid
  Tensor logits;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

class Client {
 public:
  /// Connects immediately; throws std::system_error on refusal.
  explicit Client(const std::string& address, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one submit frame under a fresh auto-assigned request id (returned;
  /// ids count up from 1 per connection). Throws ConnectionClosed when the
  /// socket is gone.
  std::uint64_t submit(std::string_view model_id,
                       const transformer::BatchInput& in);
  /// Same, under a caller-chosen id (protocol tests exercise duplicate-id
  /// handling through this).
  void submit_as(std::uint64_t request_id, std::string_view model_id,
                 const transformer::BatchInput& in);

  /// Block until the completion for `request_id` arrives (other requests'
  /// completions are buffered for their own await). Throws TimeoutError /
  /// ConnectionClosed / ProtocolError.
  Completion await(std::uint64_t request_id,
                   std::chrono::milliseconds timeout =
                       std::chrono::milliseconds(30000));

  /// Send a cancel for `request_id` and block for the ack: true iff the
  /// cancel landed while the request was still queued (its completion frame
  /// — kError(kCancelled) on success — still arrives separately).
  bool cancel(std::uint64_t request_id,
              std::chrono::milliseconds timeout =
                  std::chrono::milliseconds(30000));

  /// Fetch the server's Prometheus scrape page.
  std::string stats(std::chrono::milliseconds timeout =
                        std::chrono::milliseconds(30000));

  /// Raw escape hatches for the fault-injection suites: ship arbitrary
  /// bytes down the socket / half-close it / the naked fd.
  void send_raw(const std::uint8_t* data, std::size_t len);
  int fd() const { return fd_; }

  /// Completions received but not yet awaited (buffered by the demux).
  std::size_t pending_completions() const { return completions_.size(); }

  /// Close the socket now (the destructor also does).
  void close();

 private:
  /// Read one frame within `deadline`, file it into the right buffer.
  void pump_one(std::chrono::steady_clock::time_point deadline,
                const char* waiting_for);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Completion> completions_;
  std::map<std::uint64_t, bool> cancel_acks_;
  std::vector<std::string> stats_pages_;
};

}  // namespace nnlut::net
