// Wire protocol of the NN-LUT network front-end: length-prefixed binary
// frames over TCP, little-endian, versioned. One frame = one fixed 20-byte
// header + `payload_len` payload bytes. See docs/NETWORKING.md for the
// field-by-field tables.
//
//   header:  u32 magic "NLUT" | u8 version | u8 type | u16 reserved(0)
//          | u32 payload_len  | u64 request_id
//
// Request ids are PER-CONNECTION and client-assigned: the client picks the
// id on submit, the server echoes it on every frame it sends back, and
// completions may arrive in any order (the batcher resolves whole batches
// at once). Distinct connections reuse ids freely.
//
// Robustness contract (pinned by the fuzz suite in tests/net_test.cpp):
// decoders NEVER crash, read out of bounds, or allocate proportionally to
// an attacker-claimed length on arbitrary bytes — every structural
// violation throws ProtocolError, which the server maps to a typed kError
// frame (payload malformed, framing intact) or a disconnect (header
// malformed, framing lost).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/tensor.h"
#include "transformer/encoder.h"

namespace nnlut::net {

/// "NLUT" in the first four wire bytes (encoded little-endian as a u32).
inline constexpr std::uint32_t kMagic = 0x54554C4E;
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 20;
/// Default cap a server enforces on payload_len before reading the payload:
/// a claimed length above it is answered with kFrameTooLarge and the
/// connection closes without ever allocating the claimed amount.
inline constexpr std::size_t kDefaultMaxPayloadBytes = std::size_t{1} << 20;

enum class FrameType : std::uint8_t {
  // client -> server
  kSubmit = 1,  // payload: SubmitFrame — run one request on a named model
  kCancel = 2,  // empty payload; header id names the submit to cancel
  kStats = 3,   // empty payload; id echoed on the reply
  // server -> client
  kResult = 16,      // payload: logits tensor (completion of a submit)
  kError = 17,       // payload: ErrorFrame (completion of a submit, or
                     // a protocol-level complaint with the offending id)
  kCancelAck = 18,   // payload: u8 — 1 iff the cancel landed while queued
  kStatsResult = 19, // payload: Prometheus text exposition (engine scrape)
};

/// True for the values a client may legally send.
bool is_client_frame_type(std::uint8_t t);

/// Typed error codes carried by kError frames. The mapping from the serve
/// layer's exception taxonomy is fixed: every error a PendingResult can
/// carry has exactly one code, so a remote client sees the same taxonomy an
/// in-process caller does.
enum class ErrorCode : std::uint16_t {
  kInvalidArgument = 1,  // validation: std::invalid_argument (empty request)
  kOutOfRange = 2,       // validation: std::out_of_range (bad token ids,
                         // over-long seq) and unknown model ids
  kOverloaded = 3,       // serve::ServerOverloaded — admission-control shed,
                         // or the socket layer's shed-before-parse
  kCancelled = 4,        // serve::RequestCancelled — cancel verb or shutdown
  kMalformedFrame = 5,   // payload failed structural decode; framing intact
  kFrameTooLarge = 6,    // payload_len over the server bound; server closes
  kInternal = 7,         // anything else thrown during execution
};

struct FrameHeader {
  FrameType type = FrameType::kSubmit;
  std::uint32_t payload_len = 0;
  std::uint64_t request_id = 0;
};

enum class HeaderStatus : std::uint8_t {
  kOk,
  kBadMagic,    // not talking our protocol: disconnect without replying
  kBadVersion,  // version skew: error frame, then disconnect
  kBadType,     // unknown frame type value
  kBadReserved, // reserved bits set: reject now so v2 can use them
};

/// Encode `h` into exactly kHeaderSize bytes at `out`.
void encode_header(const FrameHeader& h, std::uint8_t* out);

/// Decode a header from exactly kHeaderSize bytes. Never throws: header
/// bytes arrive from the wire before any trust is established.
HeaderStatus decode_header(const std::uint8_t* in, FrameHeader& out);

/// Structural violation inside a payload (truncation, trailing garbage,
/// length fields disagreeing with the actual byte count, caps exceeded).
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// kSubmit payload:
///   u16 model_id_len | model_id bytes
/// | u32 batch | u32 seq
/// | u32 n_tokens | i32 token_ids[n_tokens]
/// | u32 n_types  | i32 type_ids[n_types]     (n_types is 0 or n_tokens)
struct SubmitFrame {
  std::string model_id;
  transformer::BatchInput input;
};

/// Decoder caps, separate from the transport payload bound: a frame that
/// passes the byte-length cap can still claim absurd logical shapes; these
/// bound what decode_submit will materialize. Validation proper (vocab
/// range, max_seq) stays the engine's job — the codec only guards memory.
inline constexpr std::size_t kMaxModelIdLen = 256;

/// Every encode_* below REPLACES `out` with the encoded payload (the
/// out-param exists so send loops can reuse one buffer's capacity).
void encode_submit(const SubmitFrame& f, std::vector<std::uint8_t>& out);
SubmitFrame decode_submit(std::span<const std::uint8_t> payload);

/// Read ONLY the model id prefix of a kSubmit payload — the shed-before-
/// parse path: under overload the server classifies the frame for the cost
/// of two fields and never touches the token arrays. The view aliases
/// `payload`.
std::string_view peek_submit_model(std::span<const std::uint8_t> payload);

/// kResult payload: u32 rank | u32 dims[rank] | f32 data[prod(dims)].
/// Floats cross the wire as raw IEEE-754 bit patterns, so served logits are
/// bit-identical to the in-process tensor — the property the loopback
/// parity suite pins.
void encode_result(const Tensor& logits, std::vector<std::uint8_t>& out);
Tensor decode_result(std::span<const std::uint8_t> payload);
inline constexpr std::size_t kMaxResultRank = 8;

/// kError payload: u16 code | u32 msg_len | msg bytes.
struct ErrorFrame {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

void encode_error(const ErrorFrame& f, std::vector<std::uint8_t>& out);
ErrorFrame decode_error(std::span<const std::uint8_t> payload);

/// kCancelAck payload: u8 (0/1).
void encode_cancel_ack(bool cancelled, std::vector<std::uint8_t>& out);
bool decode_cancel_ack(std::span<const std::uint8_t> payload);

/// kStatsResult payload: UTF-8 text, no structure to validate.
void encode_text(std::string_view text, std::vector<std::uint8_t>& out);
std::string decode_text(std::span<const std::uint8_t> payload);

/// Assemble a complete frame (header + payload) for `type`/`request_id`
/// around an already-encoded payload. The workhorse of both sides' send
/// paths.
std::vector<std::uint8_t> make_frame(FrameType type, std::uint64_t request_id,
                                     std::span<const std::uint8_t> payload);

}  // namespace nnlut::net
