// Approximation-aware fine-tuning layers (extension; cf. the paper's Sec. 1:
// I-BERT and Softermax "take advantage of approximation-aware fine-tuning to
// adjust the entire model parameters for compensation of approximation
// errors" — NN-LUT's pitch is that it does NOT need this. These layers make
// the comparison measurable: they run a LUT *inside* the training graph, so
// gradient descent adapts the transformer weights to the approximation.
//
// Backward passes use the LUT's exact derivative: the active segment's
// slope (the LUT is piecewise-linear, so this is its true gradient almost
// everywhere).
#pragma once

#include "core/piecewise_linear.h"
#include "nn/layers.h"

namespace nnlut::nn {

/// Elementwise activation through a LUT (e.g. an approximated GELU).
class LutAct {
 public:
  LutAct() = default;
  /// The LUT must outlive this layer.
  explicit LutAct(const PiecewiseLinear* lut) : lut_(lut) {}

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

  bool has_lut() const { return lut_ != nullptr; }

 private:
  const PiecewiseLinear* lut_ = nullptr;
  Tensor x_cache_;
};

/// Trainable LayerNorm whose 1/sqrt(var + eps) comes from a LUT, with the
/// paper's power-of-two input scaling. Forward matches
/// core::LayerNormApprox; backward differentiates through the piecewise
/// inv-std, including the d(inv_std)/d(var) term:
///   dx_j = r*(g_j - mean(g)) + (2 u_j / n) * r'(v) * sum_i g_i u_i
/// with u = x - mu, r = LUT-based inv_std, g = dy * gamma.
class LutLayerNorm {
 public:
  LutLayerNorm() = default;
  LutLayerNorm(std::size_t dim, const PiecewiseLinear* rsqrt_lut,
               bool input_scaling = true, float scale = 1024.0f);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

  std::vector<Param*> params() { return {&gamma, &beta}; }

  /// inv_std and its derivative w.r.t. v (= var + eps), through the LUT and
  /// the input-scaling branch.
  float inv_std(float v) const;
  float inv_std_grad(float v) const;

  Param gamma;
  Param beta;
  float eps = 1e-5f;

 private:
  const PiecewiseLinear* rsqrt_ = nullptr;
  bool input_scaling_ = true;
  float scale_ = 1024.0f;

  Tensor u_cache_;               // x - mu per element
  std::vector<float> r_cache_;   // inv_std per row
  std::vector<float> v_cache_;   // var + eps per row
};

}  // namespace nnlut::nn
