// Training losses: softmax cross-entropy (classification, span extraction)
// and mean-squared error (STS-B-style regression).
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace nnlut::nn {

struct LossResult {
  double loss = 0.0;
  Tensor dlogits;  // gradient w.r.t. the logits, already averaged over rows
};

/// Softmax cross-entropy over rows of logits [n, classes] with integer
/// labels. Ignores rows whose label is negative (used for padding).
LossResult cross_entropy(const Tensor& logits, std::span<const int> labels);

/// Mean squared error for single-output regression: logits [n, 1].
LossResult mse(const Tensor& logits, std::span<const float> targets);

/// Row-wise argmax of logits [n, classes].
std::vector<int> argmax_rows(const Tensor& logits);

}  // namespace nnlut::nn
