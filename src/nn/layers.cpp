#include "nn/layers.h"

#include <cassert>
#include <cmath>

#include "numerics/math.h"
#include "tensor/ops.h"

namespace nnlut::nn {

namespace {
void xavier_init(Tensor& t, std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : t.flat()) v = rng.uniform(-bound, bound);
}
}  // namespace

// -------------------------------------------------------------- Linear ----

Linear::Linear(std::size_t in, std::size_t out, Rng& rng)
    : w({in, out}), b({out}) {
  xavier_init(w.value, in, out, rng);
}

Tensor Linear::forward(const Tensor& x) {
  assert(x.rank() == 2 && x.dim(1) == in_features());
  x_cache_ = x;
  Tensor y({x.dim(0), out_features()});
  matmul(x, w.value, y);
  add_row_bias(y, b.value.flat());
  return y;
}

Tensor Linear::backward(const Tensor& dy) {
  assert(dy.rank() == 2 && dy.dim(1) == out_features());
  assert(dy.dim(0) == x_cache_.dim(0));
  // dW += X^T dY ; db += colsum(dY) ; dX = dY W^T.
  matmul_at_accumulate(x_cache_, dy, w.grad);
  col_sum_accumulate(dy, b.grad.flat());
  Tensor dx({dy.dim(0), in_features()});
  matmul_bt(dy, w.value, dx);
  return dx;
}

// ----------------------------------------------------------- LayerNorm ----

LayerNorm::LayerNorm(std::size_t dim) : gamma({dim}), beta({dim}) {
  gamma.value.fill(1.0f);
}

Tensor LayerNorm::forward(const Tensor& x) {
  assert(x.rank() == 2 && x.dim(1) == gamma.value.dim(0));
  const std::size_t rows = x.dim(0), dim = x.dim(1);
  xhat_cache_ = Tensor({rows, dim});
  inv_std_.assign(rows, 0.0f);
  Tensor y({rows, dim});

  for (std::size_t r = 0; r < rows; ++r) {
    const auto xin = x.row(r);
    double mean = 0.0;
    for (float v : xin) mean += v;
    mean /= static_cast<double>(dim);
    double var = 0.0;
    for (float v : xin) {
      const double d = v - mean;
      var += d * d;
    }
    var /= static_cast<double>(dim);
    const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    inv_std_[r] = inv;
    auto xh = xhat_cache_.row(r);
    auto yo = y.row(r);
    for (std::size_t j = 0; j < dim; ++j) {
      xh[j] = (xin[j] - static_cast<float>(mean)) * inv;
      yo[j] = xh[j] * gamma.value[j] + beta.value[j];
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& dy) {
  const std::size_t rows = dy.dim(0), dim = dy.dim(1);
  assert(rows == xhat_cache_.dim(0));
  Tensor dx({rows, dim});

  for (std::size_t r = 0; r < rows; ++r) {
    const auto dyr = dy.row(r);
    const auto xh = xhat_cache_.row(r);
    auto dxr = dx.row(r);

    // dgamma_j += dy_j * xhat_j ; dbeta_j += dy_j.
    double sum_g = 0.0, sum_gx = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      const float g = dyr[j] * gamma.value[j];
      gamma.grad[j] += dyr[j] * xh[j];
      beta.grad[j] += dyr[j];
      sum_g += g;
      sum_gx += static_cast<double>(g) * xh[j];
    }
    // Standard LayerNorm backward:
    // dx = inv_std * (g - mean(g) - xhat * mean(g * xhat)).
    const float mg = static_cast<float>(sum_g / dim);
    const float mgx = static_cast<float>(sum_gx / dim);
    for (std::size_t j = 0; j < dim; ++j) {
      const float g = dyr[j] * gamma.value[j];
      dxr[j] = inv_std_[r] * (g - mg - xh[j] * mgx);
    }
  }
  return dx;
}

// -------------------------------------------------------------- NoNorm ----

NoNorm::NoNorm(std::size_t dim) : gamma({dim}), beta({dim}) {
  gamma.value.fill(1.0f);
}

Tensor NoNorm::forward(const Tensor& x) {
  assert(x.rank() == 2 && x.dim(1) == gamma.value.dim(0));
  x_cache_ = x;
  const std::size_t rows = x.dim(0), dim = x.dim(1);
  Tensor y({rows, dim});
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t j = 0; j < dim; ++j)
      y.at(r, j) = x.at(r, j) * gamma.value[j] + beta.value[j];
  return y;
}

Tensor NoNorm::backward(const Tensor& dy) {
  const std::size_t rows = dy.dim(0), dim = dy.dim(1);
  Tensor dx({rows, dim});
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t j = 0; j < dim; ++j) {
      gamma.grad[j] += dy.at(r, j) * x_cache_.at(r, j);
      beta.grad[j] += dy.at(r, j);
      dx.at(r, j) = dy.at(r, j) * gamma.value[j];
    }
  return dx;
}

// ----------------------------------------------------------- Embedding ----

Embedding::Embedding(std::size_t vocab, std::size_t dim, Rng& rng)
    : table({vocab, dim}) {
  for (float& v : table.value.flat()) v = rng.normal(0.0f, 0.02f);
}

Tensor Embedding::forward(std::span<const int> ids) {
  ids_cache_.assign(ids.begin(), ids.end());
  const std::size_t dim = table.value.dim(1);
  Tensor y({ids.size(), dim});
  for (std::size_t r = 0; r < ids.size(); ++r) {
    assert(ids[r] >= 0 &&
           static_cast<std::size_t>(ids[r]) < table.value.dim(0));
    const auto src = table.value.row(static_cast<std::size_t>(ids[r]));
    auto dst = y.row(r);
    for (std::size_t j = 0; j < dim; ++j) dst[j] = src[j];
  }
  return y;
}

void Embedding::backward(const Tensor& dy) {
  assert(dy.dim(0) == ids_cache_.size());
  const std::size_t dim = table.value.dim(1);
  for (std::size_t r = 0; r < ids_cache_.size(); ++r) {
    auto dst = table.grad.row(static_cast<std::size_t>(ids_cache_[r]));
    const auto src = dy.row(r);
    for (std::size_t j = 0; j < dim; ++j) dst[j] += src[j];
  }
}

// --------------------------------------------------------- Activations ----

float gelu_grad(float x) {
  // d/dx [x * Phi(x)] = Phi(x) + x * phi(x), with Phi the normal CDF.
  const float phi = std::exp(-0.5f * x * x) * 0.3989422804f;  // 1/sqrt(2pi)
  const float Phi = 0.5f * (1.0f + std::erf(x * static_cast<float>(M_SQRT1_2)));
  return Phi + x * phi;
}

Tensor GeluAct::forward(const Tensor& x) {
  x_cache_ = x;
  Tensor y = x;
  for (float& v : y.flat()) v = gelu_exact(v);
  return y;
}

Tensor GeluAct::backward(const Tensor& dy) {
  assert(dy.size() == x_cache_.size());
  Tensor dx = dy;
  const auto xs = x_cache_.flat();
  auto d = dx.flat();
  for (std::size_t i = 0; i < d.size(); ++i) d[i] *= gelu_grad(xs[i]);
  return dx;
}

Tensor ReluAct::forward(const Tensor& x) {
  x_cache_ = x;
  Tensor y = x;
  for (float& v : y.flat())
    if (v < 0.0f) v = 0.0f;
  return y;
}

Tensor ReluAct::backward(const Tensor& dy) {
  assert(dy.size() == x_cache_.size());
  Tensor dx = dy;
  const auto xs = x_cache_.flat();
  auto d = dx.flat();
  for (std::size_t i = 0; i < d.size(); ++i)
    if (xs[i] <= 0.0f) d[i] = 0.0f;
  return dx;
}

}  // namespace nnlut::nn
