#include "nn/approx_training.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace nnlut::nn {

Tensor LutAct::forward(const Tensor& x) {
  if (lut_ == nullptr) throw std::logic_error("LutAct used without a LUT");
  x_cache_ = x;
  Tensor y = x;
  lut_->eval_inplace(y.flat());  // whole tensor through the compiled plan
  return y;
}

Tensor LutAct::backward(const Tensor& dy) {
  assert(dy.size() == x_cache_.size());
  Tensor dx = dy;
  const auto xs = x_cache_.flat();
  auto d = dx.flat();
  const auto slopes = lut_->slopes();
  for (std::size_t i = 0; i < d.size(); ++i)
    d[i] *= slopes[lut_->segment_index(xs[i])];
  return dx;
}

LutLayerNorm::LutLayerNorm(std::size_t dim, const PiecewiseLinear* rsqrt_lut,
                           bool input_scaling, float scale)
    : gamma({dim}),
      beta({dim}),
      rsqrt_(rsqrt_lut),
      input_scaling_(input_scaling),
      scale_(scale) {
  gamma.value.fill(1.0f);
}

float LutLayerNorm::inv_std(float v) const {
  if (input_scaling_ && v < 1.0f)
    return (*rsqrt_)(v * scale_) * std::sqrt(scale_);
  return (*rsqrt_)(v);
}

float LutLayerNorm::inv_std_grad(float v) const {
  const auto slopes = rsqrt_->slopes();
  if (input_scaling_ && v < 1.0f) {
    const float xs = v * scale_;
    return slopes[rsqrt_->segment_index(xs)] * scale_ * std::sqrt(scale_);
  }
  return slopes[rsqrt_->segment_index(v)];
}

Tensor LutLayerNorm::forward(const Tensor& x) {
  if (rsqrt_ == nullptr)
    throw std::logic_error("LutLayerNorm used without a LUT");
  assert(x.rank() == 2 && x.dim(1) == gamma.value.dim(0));
  const std::size_t rows = x.dim(0), dim = x.dim(1);

  u_cache_ = Tensor({rows, dim});
  r_cache_.assign(rows, 0.0f);
  v_cache_.assign(rows, 0.0f);
  Tensor y({rows, dim});

  for (std::size_t r = 0; r < rows; ++r) {
    const auto xin = x.row(r);
    double mean = 0.0;
    for (float vv : xin) mean += vv;
    mean /= static_cast<double>(dim);
    double var = 0.0;
    for (float vv : xin) {
      const double d = vv - mean;
      var += d * d;
    }
    var /= static_cast<double>(dim);

    const float v = static_cast<float>(var) + eps;
    const float inv = inv_std(v);
    v_cache_[r] = v;
    r_cache_[r] = inv;

    auto u = u_cache_.row(r);
    auto yo = y.row(r);
    for (std::size_t j = 0; j < dim; ++j) {
      u[j] = xin[j] - static_cast<float>(mean);
      yo[j] = u[j] * inv * gamma.value[j] + beta.value[j];
    }
  }
  return y;
}

Tensor LutLayerNorm::backward(const Tensor& dy) {
  const std::size_t rows = dy.dim(0), dim = dy.dim(1);
  assert(rows == u_cache_.dim(0));
  Tensor dx({rows, dim});
  const float inv_n = 1.0f / static_cast<float>(dim);

  for (std::size_t r = 0; r < rows; ++r) {
    const auto dyr = dy.row(r);
    const auto u = u_cache_.row(r);
    auto dxr = dx.row(r);
    const float rr = r_cache_[r];
    const float rp = inv_std_grad(v_cache_[r]);

    double sum_g = 0.0, sum_gu = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      const float g = dyr[j] * gamma.value[j];
      gamma.grad[j] += dyr[j] * u[j] * rr;
      beta.grad[j] += dyr[j];
      sum_g += g;
      sum_gu += static_cast<double>(g) * u[j];
    }
    const float mg = static_cast<float>(sum_g) * inv_n;
    const float gu = static_cast<float>(sum_gu);

    for (std::size_t j = 0; j < dim; ++j) {
      const float g = dyr[j] * gamma.value[j];
      dxr[j] = rr * (g - mg) + 2.0f * u[j] * inv_n * rp * gu;
    }
  }
  return dx;
}

}  // namespace nnlut::nn
