// Adam optimizer over a flat list of Params (the transformer fine-tuning
// optimizer; the 1-D approximator has its own dedicated loop in core/).
#pragma once

#include <vector>

#include "nn/layers.h"

namespace nnlut::nn {

class Adam {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
    float grad_clip = 1.0f;  // global-norm clip; <= 0 disables
  };

  Adam(std::vector<Param*> params, Options opt);

  void step();
  void zero_grad();
  void set_lr(float lr) { opt_.lr = lr; }
  float lr() const { return opt_.lr; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> m1_, m2_;
  Options opt_;
  long t_ = 0;
};

}  // namespace nnlut::nn
