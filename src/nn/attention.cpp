#include "nn/attention.h"

#include <cassert>
#include <cmath>

#include "numerics/math.h"
#include "tensor/ops.h"

namespace nnlut::nn {

MultiHeadAttention::MultiHeadAttention(std::size_t hidden, std::size_t heads_n,
                                       Rng& rng)
    : wq(hidden, hidden, rng),
      wk(hidden, hidden, rng),
      wv(hidden, hidden, rng),
      wo(hidden, hidden, rng),
      heads(heads_n) {
  assert(hidden % heads_n == 0);
}

std::vector<Param*> MultiHeadAttention::params() {
  std::vector<Param*> ps;
  for (Linear* l : {&wq, &wk, &wv, &wo})
    for (Param* p : l->params()) ps.push_back(p);
  return ps;
}

namespace {
/// Index of the (b, h, s) row in head layout [batch*heads*seq, head_dim].
inline std::size_t head_row(std::size_t b, std::size_t h, std::size_t s,
                            std::size_t heads, std::size_t seq) {
  return (b * heads + h) * seq + s;
}
}  // namespace

Tensor MultiHeadAttention::forward(const Tensor& x, std::size_t batch,
                                   std::size_t seq) {
  const std::size_t hidden = x.dim(1);
  assert(x.dim(0) == batch * seq);
  batch_ = batch;
  seq_ = seq;
  head_dim_ = hidden / heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  const Tensor q_flat = wq.forward(x);  // [B*S, H]
  const Tensor k_flat = wk.forward(x);
  const Tensor v_flat = wv.forward(x);

  // Rearrange into head layout for cache (contiguous per (b,h)).
  q_ = Tensor({batch * heads * seq, head_dim_});
  k_ = Tensor({batch * heads * seq, head_dim_});
  v_ = Tensor({batch * heads * seq, head_dim_});
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t s = 0; s < seq; ++s)
      for (std::size_t h = 0; h < heads; ++h) {
        const std::size_t src = b * seq + s;
        const std::size_t dst = head_row(b, h, s, heads, seq);
        for (std::size_t j = 0; j < head_dim_; ++j) {
          q_.at(dst, j) = q_flat.at(src, h * head_dim_ + j);
          k_.at(dst, j) = k_flat.at(src, h * head_dim_ + j);
          v_.at(dst, j) = v_flat.at(src, h * head_dim_ + j);
        }
      }

  probs_ = Tensor({batch * heads, seq, seq});
  Tensor context({batch * seq, hidden});

  for (std::size_t bh = 0; bh < batch * heads; ++bh) {
    const std::size_t base = bh * seq;
    // Scores, then row-wise softmax.
    for (std::size_t i = 0; i < seq; ++i) {
      float* prow = probs_.data() + (bh * seq + i) * seq;
      for (std::size_t j = 0; j < seq; ++j) {
        float acc = 0.0f;
        const float* qi = q_.data() + (base + i) * head_dim_;
        const float* kj = k_.data() + (base + j) * head_dim_;
        for (std::size_t d = 0; d < head_dim_; ++d) acc += qi[d] * kj[d];
        prow[j] = acc * scale;
      }
      softmax_exact({prow, seq});
    }
    // Context = P V, scattered back to [B*S, H] layout.
    const std::size_t b = bh / heads;
    const std::size_t h = bh % heads;
    for (std::size_t i = 0; i < seq; ++i) {
      const float* prow = probs_.data() + (bh * seq + i) * seq;
      float* out = context.data() + (b * seq + i) * hidden + h * head_dim_;
      for (std::size_t d = 0; d < head_dim_; ++d) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < seq; ++j)
          acc += prow[j] * v_.at(base + j, d);
        out[d] = acc;
      }
    }
  }

  return wo.forward(context);
}

Tensor MultiHeadAttention::backward(const Tensor& dy) {
  const std::size_t hidden = heads * head_dim_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  const Tensor dcontext = wo.backward(dy);  // [B*S, H]

  Tensor dq_flat({batch_ * seq_, hidden});
  Tensor dk_flat({batch_ * seq_, hidden});
  Tensor dv_flat({batch_ * seq_, hidden});

  std::vector<float> dscores(seq_);

  for (std::size_t bh = 0; bh < batch_ * heads; ++bh) {
    const std::size_t base = bh * seq_;
    const std::size_t b = bh / heads;
    const std::size_t h = bh % heads;

    // dV[j] += sum_i P[i,j] * dC[i] ; dP[i,j] = dC[i] . V[j].
    for (std::size_t i = 0; i < seq_; ++i) {
      const float* prow = probs_.data() + (bh * seq_ + i) * seq_;
      const float* dc = dcontext.data() + (b * seq_ + i) * hidden + h * head_dim_;

      // Softmax backward on the fly: ds[j] = P[j] * (dP[j] - sum_k P[k] dP[k]).
      double dot = 0.0;
      for (std::size_t j = 0; j < seq_; ++j) {
        float dp = 0.0f;
        const float* vj = v_.data() + (base + j) * head_dim_;
        for (std::size_t d = 0; d < head_dim_; ++d) dp += dc[d] * vj[d];
        dscores[j] = dp;
        dot += static_cast<double>(prow[j]) * dp;
      }
      for (std::size_t j = 0; j < seq_; ++j)
        dscores[j] = prow[j] * (dscores[j] - static_cast<float>(dot));

      // Accumulate dV, dQ, dK from this row.
      const float* qi = q_.data() + (base + i) * head_dim_;
      float* dqi =
          dq_flat.data() + (b * seq_ + i) * hidden + h * head_dim_;
      for (std::size_t j = 0; j < seq_; ++j) {
        const float* kj = k_.data() + (base + j) * head_dim_;
        float* dvj =
            dv_flat.data() + (b * seq_ + j) * hidden + h * head_dim_;
        float* dkj =
            dk_flat.data() + (b * seq_ + j) * hidden + h * head_dim_;
        const float ds = dscores[j] * scale;
        for (std::size_t d = 0; d < head_dim_; ++d) {
          dvj[d] += prow[j] * dc[d];
          dqi[d] += ds * kj[d];
          dkj[d] += ds * qi[d];
        }
      }
    }
  }

  Tensor dx = wq.backward(dq_flat);
  add_inplace(dx, wk.backward(dk_flat));
  add_inplace(dx, wv.backward(dv_flat));
  return dx;
}

}  // namespace nnlut::nn
