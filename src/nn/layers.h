// Trainable layers with hand-written forward/backward passes. This is the
// substrate that lets the repository train transformer models from scratch
// (the paper evaluates on *fine-tuned* RoBERTa/MobileBERT; without their
// checkpoints we must be able to produce trained models ourselves).
//
// Convention: activations are 2-D tensors [rows, features] with
// rows = batch * seq for transformer layers. backward(dy) returns dx and
// accumulates parameter gradients (call Param::zero_grad between steps).
#pragma once

#include <span>
#include <vector>

#include "numerics/rng.h"
#include "tensor/tensor.h"

namespace nnlut::nn {

/// A trainable parameter: value plus accumulated gradient.
struct Param {
  Tensor value;
  Tensor grad;

  Param() = default;
  explicit Param(std::vector<std::size_t> shape)
      : value(shape), grad(std::move(shape)) {}

  void zero_grad() { grad.zero(); }
  std::size_t size() const { return value.size(); }
};

/// y = x W + b with W [in, out].
class Linear {
 public:
  Linear() = default;
  Linear(std::size_t in, std::size_t out, Rng& rng);

  Tensor forward(const Tensor& x);
  /// Returns dx; accumulates dW, db.
  Tensor backward(const Tensor& dy);

  std::size_t in_features() const { return w.value.dim(0); }
  std::size_t out_features() const { return w.value.dim(1); }
  std::vector<Param*> params() { return {&w, &b}; }

  Param w;
  Param b;

 private:
  Tensor x_cache_;
};

/// Trainable LayerNorm over the last dimension.
class LayerNorm {
 public:
  LayerNorm() = default;
  explicit LayerNorm(std::size_t dim);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

  std::vector<Param*> params() { return {&gamma, &beta}; }

  Param gamma;
  Param beta;
  float eps = 1e-5f;

 private:
  Tensor xhat_cache_;           // normalized activations
  std::vector<float> inv_std_;  // per row
};

/// MobileBERT-style NoNorm: y = gamma * x + beta (element-wise affine, no
/// cross-feature statistics — hence no 1/sqrt non-linearity at inference).
class NoNorm {
 public:
  NoNorm() = default;
  explicit NoNorm(std::size_t dim);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

  std::vector<Param*> params() { return {&gamma, &beta}; }

  Param gamma;
  Param beta;

 private:
  Tensor x_cache_;
};

/// Token embedding lookup: ids -> rows of a [vocab, dim] table.
class Embedding {
 public:
  Embedding() = default;
  Embedding(std::size_t vocab, std::size_t dim, Rng& rng);

  Tensor forward(std::span<const int> ids);
  /// Scatter-accumulates gradients for the rows used in forward.
  void backward(const Tensor& dy);

  std::vector<Param*> params() { return {&table}; }

  Param table;

 private:
  std::vector<int> ids_cache_;
};

/// Elementwise activations with cached inputs.
class GeluAct {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

 private:
  Tensor x_cache_;
};

class ReluAct {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);

 private:
  Tensor x_cache_;
};

/// Derivative of GELU at x (used by GeluAct and exposed for tests).
float gelu_grad(float x);

}  // namespace nnlut::nn
