#include "nn/optimizer.h"

#include <cmath>

namespace nnlut::nn {

Adam::Adam(std::vector<Param*> params, Options opt)
    : params_(std::move(params)), opt_(opt) {
  m1_.reserve(params_.size());
  m2_.reserve(params_.size());
  for (const Param* p : params_) {
    m1_.emplace_back(p->value.shape());
    m2_.emplace_back(p->value.shape());
  }
}

void Adam::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

void Adam::step() {
  ++t_;

  float scale = 1.0f;
  if (opt_.grad_clip > 0.0f) {
    double norm_sq = 0.0;
    for (const Param* p : params_)
      for (float g : p->grad.flat()) norm_sq += static_cast<double>(g) * g;
    const float norm = static_cast<float>(std::sqrt(norm_sq));
    if (norm > opt_.grad_clip) scale = opt_.grad_clip / norm;
  }

  const float c1 = 1.0f - std::pow(opt_.beta1, static_cast<float>(t_));
  const float c2 = 1.0f - std::pow(opt_.beta2, static_cast<float>(t_));

  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    auto w = p.value.flat();
    auto g = p.grad.flat();
    auto m = m1_[i].flat();
    auto v = m2_[i].flat();
    for (std::size_t j = 0; j < w.size(); ++j) {
      float gj = g[j] * scale;
      if (opt_.weight_decay > 0.0f) gj += opt_.weight_decay * w[j];
      m[j] = opt_.beta1 * m[j] + (1 - opt_.beta1) * gj;
      v[j] = opt_.beta2 * v[j] + (1 - opt_.beta2) * gj * gj;
      const float mh = m[j] / c1;
      const float vh = v[j] / c2;
      w[j] -= opt_.lr * mh / (std::sqrt(vh) + opt_.eps);
    }
  }
}

}  // namespace nnlut::nn
