#include "nn/losses.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "numerics/math.h"

namespace nnlut::nn {

LossResult cross_entropy(const Tensor& logits, std::span<const int> labels) {
  assert(logits.rank() == 2 && logits.dim(0) == labels.size());
  const std::size_t n = logits.dim(0), c = logits.dim(1);

  LossResult out;
  out.dlogits = Tensor({n, c});
  std::size_t counted = 0;
  for (std::size_t r = 0; r < n; ++r) {
    if (labels[r] < 0) continue;  // ignored row
    ++counted;
  }
  if (counted == 0) return out;
  const float inv = 1.0f / static_cast<float>(counted);

  std::vector<float> probs(c);
  for (std::size_t r = 0; r < n; ++r) {
    if (labels[r] < 0) continue;
    const auto row = logits.row(r);
    std::copy(row.begin(), row.end(), probs.begin());
    softmax_exact(probs);
    const auto y = static_cast<std::size_t>(labels[r]);
    assert(y < c);
    out.loss -= std::log(std::max(probs[y], 1e-12f)) * inv;
    auto d = out.dlogits.row(r);
    for (std::size_t j = 0; j < c; ++j) d[j] = probs[j] * inv;
    d[y] -= inv;
  }
  return out;
}

LossResult mse(const Tensor& logits, std::span<const float> targets) {
  assert(logits.rank() == 2 && logits.dim(1) == 1);
  assert(logits.dim(0) == targets.size());
  const std::size_t n = logits.dim(0);

  LossResult out;
  out.dlogits = Tensor({n, 1});
  if (n == 0) return out;
  const float inv = 1.0f / static_cast<float>(n);
  for (std::size_t r = 0; r < n; ++r) {
    const float e = logits.at(r, 0) - targets[r];
    out.loss += 0.5 * static_cast<double>(e) * e * inv;
    out.dlogits.at(r, 0) = e * inv;
  }
  return out;
}

std::vector<int> argmax_rows(const Tensor& logits) {
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  std::vector<int> out(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = logits.row(r);
    out[r] = static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin());
    (void)c;
  }
  return out;
}

}  // namespace nnlut::nn
