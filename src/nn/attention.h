// Multi-head self-attention with hand-written backward pass.
// Activations are [batch*seq, hidden]; the layer reshapes internally.
#pragma once

#include <vector>

#include "nn/layers.h"

namespace nnlut::nn {

class MultiHeadAttention {
 public:
  MultiHeadAttention() = default;
  MultiHeadAttention(std::size_t hidden, std::size_t heads, Rng& rng);

  /// x: [batch*seq, hidden]. Full (unmasked) bidirectional attention, the
  /// BERT-encoder setting.
  Tensor forward(const Tensor& x, std::size_t batch, std::size_t seq);
  Tensor backward(const Tensor& dy);

  std::vector<Param*> params();

  Linear wq, wk, wv, wo;
  std::size_t heads = 1;

 private:
  std::size_t batch_ = 0, seq_ = 0, head_dim_ = 0;
  // Caches from forward (per batch*head, flattened): Q, K, V in head layout
  // [batch*heads*seq, head_dim], attention probabilities [batch*heads, seq, seq].
  Tensor q_, k_, v_;
  Tensor probs_;
};

}  // namespace nnlut::nn
