// TaskModel = encoder + task head. Supports sequence classification
// (GLUE-style, via the [CLS] position), regression (STS-B-style) and span
// extraction (SQuAD-style start/end logits).
#pragma once

#include <span>

#include "transformer/encoder.h"

namespace nnlut::transformer {

enum class HeadKind { kClassify, kRegress, kSpan };

class TaskModel {
 public:
  TaskModel() = default;
  /// num_outputs: classes for kClassify, 1 for kRegress, 2 for kSpan.
  TaskModel(const ModelConfig& cfg, HeadKind head, std::size_t num_outputs,
            Rng& rng);

  /// Classification / regression: logits [batch, num_outputs] from [CLS].
  /// Span: logits [batch*seq, 2] (start/end scores per token).
  Tensor forward(const BatchInput& in);
  void backward(const Tensor& dlogits);

  std::vector<nn::Param*> params();

  HeadKind head() const { return head_; }
  std::size_t num_outputs() const { return head_lin.out_features(); }
  const ModelConfig& config() const { return encoder.config(); }

  Encoder encoder;
  nn::Linear head_lin;

 private:
  HeadKind head_ = HeadKind::kClassify;
  std::size_t batch_ = 0, seq_ = 0;
};

/// Extract start/end span predictions from span logits [batch*seq, 2]:
/// argmax over positions for start and (>= start) for end.
std::vector<std::pair<int, int>> decode_spans(const Tensor& span_logits,
                                              std::size_t batch,
                                              std::size_t seq);

}  // namespace nnlut::transformer
