// Trainable BERT-style encoder built from src/nn layers.
#pragma once

#include <span>
#include <vector>

#include "nn/approx_training.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "transformer/config.h"

namespace nnlut::transformer {

/// Normalization slot that is either LayerNorm or NoNorm per ModelConfig.
/// For approximation-aware fine-tuning, a LayerNorm slot can be switched to
/// run its 1/sqrt through a LUT inside the training graph
/// (install_lut_rsqrt); the affine parameters are shared, so switching back
/// and forth preserves training state.
class NormSlot {
 public:
  NormSlot() = default;
  NormSlot(NormKind kind, std::size_t dim);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dy);
  std::vector<nn::Param*> params();

  NormKind kind() const { return kind_; }
  /// Affine parameters (shared accessor for the inference engine).
  const nn::Param& gamma() const;
  const nn::Param& beta() const;

  /// Route this LayerNorm through `lut` during training (nullptr restores
  /// the exact op). No-op for NoNorm slots. The LUT must outlive the model.
  void install_lut_rsqrt(const PiecewiseLinear* lut, bool input_scaling = true);

 private:
  NormKind kind_ = NormKind::kLayerNorm;
  nn::LayerNorm ln_;
  nn::NoNorm nonorm_;
  nn::LutLayerNorm lut_ln_;
  const PiecewiseLinear* lut_rsqrt_ = nullptr;
};

/// One post-norm transformer encoder layer:
///   x1 = Norm(x + Attention(x)) ; x2 = Norm(x1 + FF2(Act(FF1(x1)))).
class EncoderLayer {
 public:
  EncoderLayer() = default;
  EncoderLayer(const ModelConfig& cfg, Rng& rng);

  Tensor forward(const Tensor& x, std::size_t batch, std::size_t seq);
  Tensor backward(const Tensor& dy);
  std::vector<nn::Param*> params();

  /// Route the activation through `lut` during training (nullptr restores
  /// the exact op). The LUT must outlive the model.
  void install_lut_activation(const PiecewiseLinear* lut);

  nn::MultiHeadAttention attn;
  NormSlot norm1, norm2;
  nn::Linear ff1, ff2;

 private:
  ActKind act_ = ActKind::kGelu;
  nn::GeluAct gelu_;
  nn::ReluAct relu_;
  nn::LutAct lut_act_;
  bool use_lut_act_ = false;
};

/// Input ids for a batch of fixed-length sequences.
struct BatchInput {
  std::size_t batch = 0;
  std::size_t seq = 0;
  std::vector<int> token_ids;  // batch * seq
  std::vector<int> type_ids;   // batch * seq (segment A/B)
};

class Encoder {
 public:
  Encoder() = default;
  Encoder(const ModelConfig& cfg, Rng& rng);

  /// Returns hidden states [batch*seq, hidden].
  Tensor forward(const BatchInput& in);
  void backward(const Tensor& dhidden);
  std::vector<nn::Param*> params();

  const ModelConfig& config() const { return cfg_; }

  nn::Embedding tok_emb, pos_emb, type_emb;
  NormSlot emb_norm;
  std::vector<EncoderLayer> layers;

 private:
  ModelConfig cfg_;
  std::size_t batch_ = 0, seq_ = 0;
};

}  // namespace nnlut::transformer
