#include "transformer/backends.h"

#include <cmath>
#include <stdexcept>

#include "ibert/ibert_kernels.h"
#include "numerics/math.h"
#include "runtime/thread_pool.h"

namespace nnlut::transformer {

namespace {

/// Elementwise activation over a span, sharded across the pool (elementwise
/// maps are trivially independent, so results are pool-size invariant).
void activation_sharded(std::span<float> xs, ActKind act) {
  runtime::parallel_for(0, xs.size(), runtime::grain_for(8),
                        [&](std::size_t i0, std::size_t i1) {
                          if (act == ActKind::kGelu) {
                            for (std::size_t i = i0; i < i1; ++i)
                              xs[i] = gelu_exact(xs[i]);
                          } else {
                            for (std::size_t i = i0; i < i1; ++i)
                              if (xs[i] < 0.0f) xs[i] = 0.0f;
                          }
                        });
}

/// Exact softmax over row blocks, sharded (used by the exact backend and by
/// the LUT backend when softmax is not selected for approximation).
void softmax_exact_rows(std::span<float> data, std::size_t nrows,
                        std::size_t ncols) {
  if (nrows == 0 || ncols == 0) return;
  runtime::parallel_for(0, nrows, runtime::grain_for(4 * ncols),
                        [&](std::size_t r0, std::size_t r1) {
                          for (std::size_t r = r0; r < r1; ++r)
                            softmax_exact(data.subspan(r * ncols, ncols));
                        });
}

/// Exact LayerNorm over row blocks, sharded (same two call sites).
void layer_norm_exact_rows(std::span<const float> x, std::span<float> y,
                           std::size_t nrows, std::size_t ncols,
                           std::span<const float> gamma,
                           std::span<const float> beta) {
  if (nrows == 0 || ncols == 0) return;
  runtime::parallel_for(0, nrows, runtime::grain_for(4 * ncols),
                        [&](std::size_t r0, std::size_t r1) {
                          for (std::size_t r = r0; r < r1; ++r)
                            layer_norm_exact(x.subspan(r * ncols, ncols),
                                             y.subspan(r * ncols, ncols),
                                             gamma, beta);
                        });
}

}  // namespace

// ------------------------------------------------- ExactNonlinearities ----

void ExactNonlinearities::activation(std::span<float> xs, int /*site*/) {
  activation_sharded(xs, act_);
}

void ExactNonlinearities::softmax(std::span<float> row, int /*site*/) {
  softmax_exact(row);
}

void ExactNonlinearities::layer_norm(std::span<const float> x,
                                     std::span<float> y,
                                     std::span<const float> gamma,
                                     std::span<const float> beta,
                                     int /*site*/) {
  layer_norm_exact(x, y, gamma, beta);
}

void ExactNonlinearities::softmax_rows(std::span<float> data,
                                       std::size_t nrows, std::size_t ncols,
                                       int /*site*/) {
  softmax_exact_rows(data, nrows, ncols);
}

void ExactNonlinearities::layer_norm_rows(std::span<const float> x,
                                          std::span<float> y,
                                          std::size_t nrows, std::size_t ncols,
                                          std::span<const float> gamma,
                                          std::span<const float> beta,
                                          int /*site*/) {
  layer_norm_exact_rows(x, y, nrows, ncols, gamma, beta);
}

// --------------------------------------------------- LutNonlinearities ----

LutNonlinearities::LutNonlinearities(std::unique_ptr<ScalarFn> gelu,
                                     std::unique_ptr<ScalarFn> exp,
                                     std::unique_ptr<ScalarFn> recip,
                                     std::unique_ptr<ScalarFn> rsqrt,
                                     Options opt)
    : gelu_fn_(std::move(gelu)),
      exp_fn_(std::move(exp)),
      recip_fn_(std::move(recip)),
      rsqrt_fn_(std::move(rsqrt)),
      opt_(opt) {}

void LutNonlinearities::activation(std::span<float> xs, int /*site*/) {
  if (opt_.select.gelu && opt_.act == ActKind::kGelu) {
    // Elementwise plan evaluation: shard sub-spans across the pool.
    runtime::parallel_for(0, xs.size(), runtime::grain_for(8),
                          [&](std::size_t i0, std::size_t i1) {
                            gelu_fn_->eval_inplace(xs.subspan(i0, i1 - i0));
                          });
    return;
  }
  // Exact fallback (including ReLU models: ReLU is not approximated).
  activation_sharded(xs, opt_.act);
}

void LutNonlinearities::softmax(std::span<float> row, int site) {
  softmax_rows(row, 1, row.size(), site);
}

void LutNonlinearities::softmax_rows(std::span<float> data, std::size_t nrows,
                                     std::size_t ncols, int /*site*/) {
  if (!opt_.select.softmax) {
    softmax_exact_rows(data, nrows, ncols);
    return;
  }
  const SoftmaxApprox sm(*exp_fn_, *recip_fn_);
  sm.rows(data, nrows, ncols);
}

const ScalarFn& LutNonlinearities::rsqrt_for_site(int site) const {
  if (site >= 0 && static_cast<std::size_t>(site) < site_rsqrt_.size() &&
      site_rsqrt_[static_cast<std::size_t>(site)]) {
    return *site_rsqrt_[static_cast<std::size_t>(site)];
  }
  return *rsqrt_fn_;
}

void LutNonlinearities::layer_norm(std::span<const float> x,
                                   std::span<float> y,
                                   std::span<const float> gamma,
                                   std::span<const float> beta, int site) {
  layer_norm_rows(x, y, 1, x.size(), gamma, beta, site);
}

void LutNonlinearities::layer_norm_rows(std::span<const float> x,
                                        std::span<float> y, std::size_t nrows,
                                        std::size_t ncols,
                                        std::span<const float> gamma,
                                        std::span<const float> beta,
                                        int site) {
  if (!opt_.select.layer_norm) {
    layer_norm_exact_rows(x, y, nrows, ncols, gamma, beta);
    return;
  }

  LayerNormApprox::Options lopt;
  lopt.input_scaling = opt_.input_scaling;

  if (capture_) {
    if (capture_buffers_.size() <= static_cast<std::size_t>(site))
      capture_buffers_.resize(static_cast<std::size_t>(site) + 1);
    const CapturingFn cap(rsqrt_for_site(site),
                          capture_buffers_[static_cast<std::size_t>(site)]);
    // The capture sink is single-threaded state; keep the block serial so
    // calibration sees every row exactly once and in order.
    lopt.allow_parallel = false;
    const LayerNormApprox ln(cap, lopt);
    ln.rows(x, y, nrows, ncols, gamma, beta);
    return;
  }

  const LayerNormApprox ln(rsqrt_for_site(site), lopt);
  ln.rows(x, y, nrows, ncols, gamma, beta);
}

void LutNonlinearities::set_site_rsqrt(int site, std::unique_ptr<ScalarFn> fn) {
  if (site < 0) throw std::invalid_argument("site must be non-negative");
  if (site_rsqrt_.size() <= static_cast<std::size_t>(site))
    site_rsqrt_.resize(static_cast<std::size_t>(site) + 1);
  site_rsqrt_[static_cast<std::size_t>(site)] = std::move(fn);
}

void LutNonlinearities::enable_rsqrt_capture() { capture_ = true; }

void LutNonlinearities::disable_rsqrt_capture() { capture_ = false; }

const std::vector<float>& LutNonlinearities::captured_rsqrt_inputs(
    int site) const {
  static const std::vector<float> kEmpty;
  if (site < 0 || static_cast<std::size_t>(site) >= capture_buffers_.size())
    return kEmpty;
  return capture_buffers_[static_cast<std::size_t>(site)];
}

// ------------------------------------------------- IBertNonlinearities ----

void IBertNonlinearities::activation(std::span<float> xs, int /*site*/) {
  if (act_ == ActKind::kGelu) {
    ibert::gelu_row(xs);  // shared scale, sharded elementwise map
  } else {
    activation_sharded(xs, ActKind::kRelu);
  }
}

void IBertNonlinearities::activation_rows(std::span<float> data,
                                          std::size_t nrows, std::size_t ncols,
                                          int /*site*/) {
  if (act_ == ActKind::kGelu) {
    ibert::gelu_rows(data, nrows, ncols);  // one scale per token row
  } else {
    activation_sharded(data, ActKind::kRelu);  // elementwise, row-agnostic
  }
}

void IBertNonlinearities::softmax(std::span<float> row, int /*site*/) {
  ibert::softmax_row(row);
}

void IBertNonlinearities::layer_norm(std::span<const float> x,
                                     std::span<float> y,
                                     std::span<const float> gamma,
                                     std::span<const float> beta,
                                     int /*site*/) {
  ibert::layernorm_row(x, y, gamma, beta);
}

void IBertNonlinearities::softmax_rows(std::span<float> data,
                                       std::size_t nrows, std::size_t ncols,
                                       int /*site*/) {
  ibert::softmax_rows(data, nrows, ncols);
}

void IBertNonlinearities::layer_norm_rows(std::span<const float> x,
                                          std::span<float> y,
                                          std::size_t nrows, std::size_t ncols,
                                          std::span<const float> gamma,
                                          std::span<const float> beta,
                                          int /*site*/) {
  ibert::layernorm_rows(x, y, nrows, ncols, gamma, beta);
}

// ------------------------------------------------------------ factories ---

std::unique_ptr<LutNonlinearities> make_lut_backend(
    const LutSet& luts, LutPrecision precision,
    LutNonlinearities::Options opt) {
  // Input magnitude bounds for INT32 quantization, from the Table-1 training
  // ranges (the paper pre-scales unit inputs to the covered range).
  auto gelu = make_lut_fn(luts.gelu, precision, 5.0f);
  auto exp = make_lut_fn(luts.exp, precision, 256.0f);
  auto recip = make_lut_fn(luts.reciprocal, precision, 1024.0f);
  auto rsqrt = make_lut_fn(luts.rsqrt, precision, 1024.0f);
  return std::make_unique<LutNonlinearities>(std::move(gelu), std::move(exp),
                                             std::move(recip), std::move(rsqrt),
                                             opt);
}

}  // namespace nnlut::transformer
