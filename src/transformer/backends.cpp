#include "transformer/backends.h"

#include <cmath>
#include <stdexcept>

#include "ibert/ibert_kernels.h"
#include "numerics/math.h"

namespace nnlut::transformer {

// ------------------------------------------------- ExactNonlinearities ----

void ExactNonlinearities::activation(std::span<float> xs, int /*site*/) {
  if (act_ == ActKind::kGelu) {
    for (float& v : xs) v = gelu_exact(v);
  } else {
    for (float& v : xs)
      if (v < 0.0f) v = 0.0f;
  }
}

void ExactNonlinearities::softmax(std::span<float> row, int /*site*/) {
  softmax_exact(row);
}

void ExactNonlinearities::layer_norm(std::span<const float> x,
                                     std::span<float> y,
                                     std::span<const float> gamma,
                                     std::span<const float> beta,
                                     int /*site*/) {
  layer_norm_exact(x, y, gamma, beta);
}

// --------------------------------------------------- LutNonlinearities ----

LutNonlinearities::LutNonlinearities(std::unique_ptr<ScalarFn> gelu,
                                     std::unique_ptr<ScalarFn> exp,
                                     std::unique_ptr<ScalarFn> recip,
                                     std::unique_ptr<ScalarFn> rsqrt,
                                     Options opt)
    : gelu_fn_(std::move(gelu)),
      exp_fn_(std::move(exp)),
      recip_fn_(std::move(recip)),
      rsqrt_fn_(std::move(rsqrt)),
      opt_(opt) {}

void LutNonlinearities::activation(std::span<float> xs, int /*site*/) {
  if (opt_.select.gelu && opt_.act == ActKind::kGelu) {
    gelu_fn_->eval_inplace(xs);
    return;
  }
  // Exact fallback (including ReLU models: ReLU is not approximated).
  if (opt_.act == ActKind::kGelu) {
    for (float& v : xs) v = gelu_exact(v);
  } else {
    for (float& v : xs)
      if (v < 0.0f) v = 0.0f;
  }
}

void LutNonlinearities::softmax(std::span<float> row, int site) {
  softmax_rows(row, 1, row.size(), site);
}

void LutNonlinearities::softmax_rows(std::span<float> data, std::size_t nrows,
                                     std::size_t ncols, int /*site*/) {
  if (!opt_.select.softmax) {
    for (std::size_t r = 0; r < nrows; ++r)
      softmax_exact(data.subspan(r * ncols, ncols));
    return;
  }
  const SoftmaxApprox sm(*exp_fn_, *recip_fn_);
  sm.rows(data, nrows, ncols);
}

const ScalarFn& LutNonlinearities::rsqrt_for_site(int site) const {
  if (site >= 0 && static_cast<std::size_t>(site) < site_rsqrt_.size() &&
      site_rsqrt_[static_cast<std::size_t>(site)]) {
    return *site_rsqrt_[static_cast<std::size_t>(site)];
  }
  return *rsqrt_fn_;
}

void LutNonlinearities::layer_norm(std::span<const float> x,
                                   std::span<float> y,
                                   std::span<const float> gamma,
                                   std::span<const float> beta, int site) {
  layer_norm_rows(x, y, 1, x.size(), gamma, beta, site);
}

void LutNonlinearities::layer_norm_rows(std::span<const float> x,
                                        std::span<float> y, std::size_t nrows,
                                        std::size_t ncols,
                                        std::span<const float> gamma,
                                        std::span<const float> beta,
                                        int site) {
  if (!opt_.select.layer_norm) {
    for (std::size_t r = 0; r < nrows; ++r)
      layer_norm_exact(x.subspan(r * ncols, ncols),
                       y.subspan(r * ncols, ncols), gamma, beta);
    return;
  }

  LayerNormApprox::Options lopt;
  lopt.input_scaling = opt_.input_scaling;

  if (capture_) {
    if (capture_buffers_.size() <= static_cast<std::size_t>(site))
      capture_buffers_.resize(static_cast<std::size_t>(site) + 1);
    const CapturingFn cap(rsqrt_for_site(site),
                          capture_buffers_[static_cast<std::size_t>(site)]);
    const LayerNormApprox ln(cap, lopt);
    ln.rows(x, y, nrows, ncols, gamma, beta);
    return;
  }

  const LayerNormApprox ln(rsqrt_for_site(site), lopt);
  ln.rows(x, y, nrows, ncols, gamma, beta);
}

void LutNonlinearities::set_site_rsqrt(int site, std::unique_ptr<ScalarFn> fn) {
  if (site < 0) throw std::invalid_argument("site must be non-negative");
  if (site_rsqrt_.size() <= static_cast<std::size_t>(site))
    site_rsqrt_.resize(static_cast<std::size_t>(site) + 1);
  site_rsqrt_[static_cast<std::size_t>(site)] = std::move(fn);
}

void LutNonlinearities::enable_rsqrt_capture() { capture_ = true; }

void LutNonlinearities::disable_rsqrt_capture() { capture_ = false; }

const std::vector<float>& LutNonlinearities::captured_rsqrt_inputs(
    int site) const {
  static const std::vector<float> kEmpty;
  if (site < 0 || static_cast<std::size_t>(site) >= capture_buffers_.size())
    return kEmpty;
  return capture_buffers_[static_cast<std::size_t>(site)];
}

// ------------------------------------------------- IBertNonlinearities ----

void IBertNonlinearities::activation(std::span<float> xs, int /*site*/) {
  if (act_ == ActKind::kGelu) {
    ibert::gelu_row(xs);
  } else {
    for (float& v : xs)
      if (v < 0.0f) v = 0.0f;
  }
}

void IBertNonlinearities::softmax(std::span<float> row, int /*site*/) {
  ibert::softmax_row(row);
}

void IBertNonlinearities::layer_norm(std::span<const float> x,
                                     std::span<float> y,
                                     std::span<const float> gamma,
                                     std::span<const float> beta,
                                     int /*site*/) {
  ibert::layernorm_row(x, y, gamma, beta);
}

// ------------------------------------------------------------ factories ---

std::unique_ptr<LutNonlinearities> make_lut_backend(
    const LutSet& luts, LutPrecision precision,
    LutNonlinearities::Options opt) {
  // Input magnitude bounds for INT32 quantization, from the Table-1 training
  // ranges (the paper pre-scales unit inputs to the covered range).
  auto gelu = make_lut_fn(luts.gelu, precision, 5.0f);
  auto exp = make_lut_fn(luts.exp, precision, 256.0f);
  auto recip = make_lut_fn(luts.reciprocal, precision, 1024.0f);
  auto rsqrt = make_lut_fn(luts.rsqrt, precision, 1024.0f);
  return std::make_unique<LutNonlinearities>(std::move(gelu), std::move(exp),
                                             std::move(recip), std::move(rsqrt),
                                             opt);
}

}  // namespace nnlut::transformer
