// Per-call scratch for the inference encoder, recycled across requests.
//
// InferenceModel::encode used to allocate every intermediate — embeddings,
// per-layer activations, attention scores/context, FFN scratch — fresh on
// each call, which made the allocator the bottleneck of a warmed serving
// slot. A Workspace hoists all of those intermediates into named slots that
// persist across calls: prepare() reshapes a slot in place when its storage
// already fits (no allocation — the steady-state path) and otherwise
// (re)acquires from the attached BufferPool, whose power-of-two size
// classes mean every request of a seq bucket lands on the same slabs the
// previous one just returned.
//
// Threading: a Workspace is single-caller state, exactly like the model's
// forward pass — each Engine ModelSlot owns one and only its scheduler
// thread touches it. The pool may be nullptr (pools-off): slots then live
// on the heap but are still recycled via vector-capacity reuse.
//
// Determinism: slots are zero-filled on prepare() and every kernel writes
// the same values in the same order regardless of where the bytes live, so
// logits are bit-identical with any pool configuration, including none.
#pragma once

#include <cstddef>
#include <initializer_list>

#include "runtime/buffer_pool.h"
#include "tensor/tensor.h"

namespace nnlut::transformer {

class Workspace {
 public:
  /// `pool`, when given, must outlive the workspace's use (the Engine's
  /// ModelSlot owns both, pool first).
  explicit Workspace(runtime::BufferPool* pool = nullptr) : pool_(pool) {}

  runtime::BufferPool* pool() const { return pool_; }

  /// Shape slot `t` to `shape`, zero-filled: in place when the current
  /// storage fits, from the pool (or heap when pool-less) when it must
  /// grow. Returns `t` for call-site brevity.
  Tensor& prepare(Tensor& t, std::initializer_list<std::size_t> shape) {
    if (pool_ != nullptr && !t.pool_backed() &&
        t.capacity() < shape_numel({shape.begin(), shape.size()})) {
      t = Tensor::pooled(shape, pool_);
    } else {
      t.reset(shape);
    }
    return t;
  }

  // Slots, named for the encoder intermediate each carries (infer.cpp).
  Tensor x;         // running hidden states [rows, hidden]
  Tensor xn;        // norm_rows output, swapped with x
  Tensor q, k, v;   // attention projections [rows, hidden]
  Tensor scores;    // attention scores [batch*heads*seq, seq]
  Tensor context;   // attention context [rows, hidden]
  Tensor attn_out;  // W_O projection + residual [rows, hidden]
  Tensor x1, x2;    // post-norm states [rows, hidden]
  Tensor hmid;      // FFN inner activation [rows, ffn]
  Tensor f;         // FFN output + residual [rows, hidden]
  Tensor proj;      // matmul-operand projection scratch (fp16/int8 modes)
  Tensor cls;       // [CLS] row gather for classification heads

 private:
  runtime::BufferPool* pool_;
};

}  // namespace nnlut::transformer
