#include "transformer/encoder.h"

#include <cassert>
#include <stdexcept>

#include "tensor/ops.h"

namespace nnlut::transformer {

// ------------------------------------------------------------ NormSlot ----

NormSlot::NormSlot(NormKind kind, std::size_t dim) : kind_(kind) {
  if (kind_ == NormKind::kLayerNorm) {
    ln_ = nn::LayerNorm(dim);
  } else {
    nonorm_ = nn::NoNorm(dim);
  }
}

void NormSlot::install_lut_rsqrt(const PiecewiseLinear* lut,
                                 bool input_scaling) {
  if (kind_ != NormKind::kLayerNorm) return;  // NoNorm has no 1/sqrt
  lut_rsqrt_ = lut;
  if (lut != nullptr) {
    // Share the affine parameters with the exact layer so switching the
    // implementation preserves the trained gamma/beta (and their gradients
    // accumulate into the same tensors).
    lut_ln_ = nn::LutLayerNorm(ln_.gamma.value.dim(0), lut, input_scaling);
    lut_ln_.gamma.value = ln_.gamma.value;
    lut_ln_.beta.value = ln_.beta.value;
  }
}

Tensor NormSlot::forward(const Tensor& x) {
  if (kind_ != NormKind::kLayerNorm) return nonorm_.forward(x);
  if (lut_rsqrt_ != nullptr) {
    // Keep the LUT layer's affine params in sync with the canonical ones.
    lut_ln_.gamma.value = ln_.gamma.value;
    lut_ln_.beta.value = ln_.beta.value;
    return lut_ln_.forward(x);
  }
  return ln_.forward(x);
}

Tensor NormSlot::backward(const Tensor& dy) {
  if (kind_ != NormKind::kLayerNorm) return nonorm_.backward(dy);
  if (lut_rsqrt_ != nullptr) {
    lut_ln_.gamma.zero_grad();
    lut_ln_.beta.zero_grad();
    Tensor dx = lut_ln_.backward(dy);
    // Accumulate into the canonical parameter gradients.
    for (std::size_t i = 0; i < ln_.gamma.grad.size(); ++i) {
      ln_.gamma.grad[i] += lut_ln_.gamma.grad[i];
      ln_.beta.grad[i] += lut_ln_.beta.grad[i];
    }
    return dx;
  }
  return ln_.backward(dy);
}

std::vector<nn::Param*> NormSlot::params() {
  return kind_ == NormKind::kLayerNorm ? ln_.params() : nonorm_.params();
}

const nn::Param& NormSlot::gamma() const {
  return kind_ == NormKind::kLayerNorm ? ln_.gamma : nonorm_.gamma;
}

const nn::Param& NormSlot::beta() const {
  return kind_ == NormKind::kLayerNorm ? ln_.beta : nonorm_.beta;
}

// -------------------------------------------------------- EncoderLayer ----

EncoderLayer::EncoderLayer(const ModelConfig& cfg, Rng& rng)
    : attn(cfg.hidden, cfg.heads, rng),
      norm1(cfg.norm, cfg.hidden),
      norm2(cfg.norm, cfg.hidden),
      ff1(cfg.hidden, cfg.ffn, rng),
      ff2(cfg.ffn, cfg.hidden, rng),
      act_(cfg.act) {}

void EncoderLayer::install_lut_activation(const PiecewiseLinear* lut) {
  use_lut_act_ = (lut != nullptr);
  lut_act_ = nn::LutAct(lut);
}

Tensor EncoderLayer::forward(const Tensor& x, std::size_t batch,
                             std::size_t seq) {
  Tensor a = attn.forward(x, batch, seq);
  add_inplace(a, x);  // residual
  const Tensor x1 = norm1.forward(a);

  Tensor h = ff1.forward(x1);
  if (use_lut_act_) {
    h = lut_act_.forward(h);
  } else {
    h = (act_ == ActKind::kGelu) ? gelu_.forward(h) : relu_.forward(h);
  }
  Tensor f = ff2.forward(h);
  add_inplace(f, x1);  // residual
  return norm2.forward(f);
}

Tensor EncoderLayer::backward(const Tensor& dy) {
  Tensor df = norm2.backward(dy);  // gradient of (f + x1)

  Tensor dh = ff2.backward(df);
  if (use_lut_act_) {
    dh = lut_act_.backward(dh);
  } else {
    dh = (act_ == ActKind::kGelu) ? gelu_.backward(dh) : relu_.backward(dh);
  }
  Tensor dx1 = ff1.backward(dh);
  add_inplace(dx1, df);  // residual path

  Tensor da = norm1.backward(dx1);  // gradient of (a + x)
  Tensor dx = attn.backward(da);
  add_inplace(dx, da);  // residual path
  return dx;
}

std::vector<nn::Param*> EncoderLayer::params() {
  std::vector<nn::Param*> ps = attn.params();
  for (auto* p : norm1.params()) ps.push_back(p);
  for (auto* p : norm2.params()) ps.push_back(p);
  for (auto* p : ff1.params()) ps.push_back(p);
  for (auto* p : ff2.params()) ps.push_back(p);
  return ps;
}

// ------------------------------------------------------------- Encoder ----

Encoder::Encoder(const ModelConfig& cfg, Rng& rng)
    : tok_emb(cfg.vocab, cfg.hidden, rng),
      pos_emb(cfg.max_seq, cfg.hidden, rng),
      type_emb(cfg.type_vocab, cfg.hidden, rng),
      emb_norm(cfg.norm, cfg.hidden),
      cfg_(cfg) {
  layers.reserve(cfg.layers);
  for (std::size_t i = 0; i < cfg.layers; ++i) layers.emplace_back(cfg, rng);
}

Tensor Encoder::forward(const BatchInput& in) {
  if (in.token_ids.size() != in.batch * in.seq ||
      in.type_ids.size() != in.batch * in.seq)
    throw std::invalid_argument("Encoder::forward: bad batch shape");
  if (in.seq > cfg_.max_seq)
    throw std::invalid_argument("Encoder::forward: sequence too long");
  batch_ = in.batch;
  seq_ = in.seq;

  Tensor x = tok_emb.forward(in.token_ids);

  std::vector<int> pos_ids(in.batch * in.seq);
  for (std::size_t b = 0; b < in.batch; ++b)
    for (std::size_t s = 0; s < in.seq; ++s)
      pos_ids[b * in.seq + s] = static_cast<int>(s);
  add_inplace(x, pos_emb.forward(pos_ids));
  add_inplace(x, type_emb.forward(in.type_ids));

  x = emb_norm.forward(x);
  for (EncoderLayer& layer : layers) x = layer.forward(x, in.batch, in.seq);
  return x;
}

void Encoder::backward(const Tensor& dhidden) {
  Tensor d = dhidden;
  for (std::size_t i = layers.size(); i-- > 0;) d = layers[i].backward(d);
  d = emb_norm.backward(d);
  tok_emb.backward(d);
  pos_emb.backward(d);
  type_emb.backward(d);
}

std::vector<nn::Param*> Encoder::params() {
  std::vector<nn::Param*> ps;
  for (auto* p : tok_emb.params()) ps.push_back(p);
  for (auto* p : pos_emb.params()) ps.push_back(p);
  for (auto* p : type_emb.params()) ps.push_back(p);
  for (auto* p : emb_norm.params()) ps.push_back(p);
  for (EncoderLayer& l : layers)
    for (auto* p : l.params()) ps.push_back(p);
  return ps;
}

}  // namespace nnlut::transformer
