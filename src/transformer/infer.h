// Forward-only inference engine with approximated nonlinearities and
// reduced-precision matrix multiplication. This is the vehicle for the
// paper's accuracy experiments: train a TaskModel in FP32, then run
// inference with
//   - a NonlinearitySet backend (exact / Linear-LUT / NN-LUT / I-BERT), and
//   - a MatmulMode (FP32 / FP16 / INT8-simulated)
// and measure the task metric.
//
// Site numbering (for per-instance calibration): for layer l,
//   activation and softmax sites = l;
//   LayerNorm sites = 2l (post-attention) and 2l+1 (post-FFN);
//   the embedding LayerNorm is site 2*layers.
#pragma once

#include "transformer/backends.h"
#include "transformer/model.h"
#include "transformer/workspace.h"

namespace nnlut::transformer {

enum class MatmulMode {
  kFp32,  // reference
  kFp16,  // weights & every matmul operand/result rounded through binary16
  kInt8,  // weights & matmul operands symmetric-fake-quantized to 8 bits
          // (accumulation in FP32 stands in for the INT32 accumulator;
          // see DESIGN.md substitution table)
};

class InferenceModel {
 public:
  /// Borrows the trained model and the backend; both must outlive this.
  InferenceModel(const TaskModel& model, NonlinearitySet& nl,
                 MatmulMode mode = MatmulMode::kFp32);

  /// Hidden states [batch*seq, hidden] after the encoder stack.
  Tensor encode(const BatchInput& in);

  /// Task logits with the same shapes as TaskModel::forward.
  Tensor logits(const BatchInput& in);

  /// Workspace-backed variants: every intermediate lives in `ws`, recycled
  /// across calls (zero allocations once the workspace is warm for the
  /// request's seq bucket), and the returned logits draw their storage from
  /// ws.pool() so the slab returns to the pool when the caller destroys the
  /// result. Bit-identical to the plain overloads — the workspace moves
  /// bytes, never values. `ws` is single-caller state: use one workspace
  /// per serving thread (each Engine slot's scheduler owns one).
  Tensor logits(const BatchInput& in, Workspace& ws);
  Tensor encode(const BatchInput& in, Workspace& ws);

  /// All input checks encode() performs, without running the model: throws
  /// std::invalid_argument on shape mismatches and std::out_of_range on
  /// token/type ids outside the embedding tables or seq beyond the position
  /// table. The serving layer pre-validates each request with this so a
  /// malformed submission rejects alone instead of poisoning its batch;
  /// it is const and touches only this model's tables, so every Engine
  /// ModelSlot validates concurrently on client threads against its own
  /// InferenceModel with no shared state.
  void validate(const BatchInput& in) const;

  /// Site id of the embedding LayerNorm.
  int embedding_norm_site() const;

 private:
  struct PreparedLinear {
    Tensor w;  // weight copy, projected to the matmul precision
    Tensor b;
    /// y = project(x) * w + b at `mode`. `y` must be preshaped to
    /// [x.rows, w.cols] (matmul's contract; it is overwritten). The operand
    /// projection (a precision-rounded copy of x) stages in ws.proj; in
    /// kFp32 mode x feeds the matmul directly and ws.proj is untouched, so
    /// apply carries no allocations of its own.
    void apply_into(const Tensor& x, MatmulMode mode, Workspace& ws,
                    Tensor& y) const;
  };

  /// Encoder stack with every intermediate in `ws`; the result is ws.x.
  const Tensor& encode_into(const BatchInput& in, Workspace& ws);

  void norm_rows(const Tensor& x, Tensor& y, const NormSlot& slot, int site);

  const TaskModel* model_;
  NonlinearitySet* nl_;
  MatmulMode mode_;

  // Pre-projected copies of all weights (layout mirrors the encoder).
  struct LayerWeights {
    PreparedLinear wq, wk, wv, wo, ff1, ff2;
  };
  std::vector<LayerWeights> layers_;
  PreparedLinear head_;
};

}  // namespace nnlut::transformer
