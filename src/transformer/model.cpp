#include "transformer/model.h"

#include <cassert>

namespace nnlut::transformer {

TaskModel::TaskModel(const ModelConfig& cfg, HeadKind head,
                     std::size_t num_outputs, Rng& rng)
    : encoder(cfg, rng),
      head_lin(cfg.hidden, num_outputs, rng),
      head_(head) {}

Tensor TaskModel::forward(const BatchInput& in) {
  batch_ = in.batch;
  seq_ = in.seq;
  const Tensor hidden = encoder.forward(in);  // [B*S, H]

  if (head_ == HeadKind::kSpan) {
    return head_lin.forward(hidden);  // [B*S, 2]
  }

  // Pool the [CLS] position (row b*seq) of each sequence.
  Tensor cls({in.batch, encoder.config().hidden});
  for (std::size_t b = 0; b < in.batch; ++b) {
    const auto src = hidden.row(b * in.seq);
    auto dst = cls.row(b);
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] = src[j];
  }
  return head_lin.forward(cls);
}

void TaskModel::backward(const Tensor& dlogits) {
  if (head_ == HeadKind::kSpan) {
    const Tensor dhidden = head_lin.backward(dlogits);
    encoder.backward(dhidden);
    return;
  }

  const Tensor dcls = head_lin.backward(dlogits);  // [B, H]
  Tensor dhidden({batch_ * seq_, encoder.config().hidden});
  for (std::size_t b = 0; b < batch_; ++b) {
    const auto src = dcls.row(b);
    auto dst = dhidden.row(b * seq_);
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] = src[j];
  }
  encoder.backward(dhidden);
}

std::vector<nn::Param*> TaskModel::params() {
  std::vector<nn::Param*> ps = encoder.params();
  for (auto* p : head_lin.params()) ps.push_back(p);
  return ps;
}

std::vector<std::pair<int, int>> decode_spans(const Tensor& span_logits,
                                              std::size_t batch,
                                              std::size_t seq) {
  assert(span_logits.dim(0) == batch * seq && span_logits.dim(1) == 2);
  std::vector<std::pair<int, int>> out;
  out.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    int best_start = 0;
    float best_sv = span_logits.at(b * seq, 0);
    for (std::size_t s = 1; s < seq; ++s) {
      const float v = span_logits.at(b * seq + s, 0);
      if (v > best_sv) {
        best_sv = v;
        best_start = static_cast<int>(s);
      }
    }
    int best_end = best_start;
    float best_ev = span_logits.at(b * seq + static_cast<std::size_t>(best_start), 1);
    for (std::size_t s = static_cast<std::size_t>(best_start); s < seq; ++s) {
      const float v = span_logits.at(b * seq + s, 1);
      if (v > best_ev) {
        best_ev = v;
        best_end = static_cast<int>(s);
      }
    }
    out.emplace_back(best_start, best_end);
  }
  return out;
}

}  // namespace nnlut::transformer
