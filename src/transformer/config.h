// Model configurations. Two presets mirror the paper's evaluation subjects:
//  - roberta_like(): LayerNorm + GELU encoder (RoBERTa structure), so GELU,
//    Softmax and LayerNorm all appear in every layer;
//  - mobilebert_like(): NoNorm (element-wise affine) + ReLU, the MobileBERT
//    design where "Softmax is the only non-linear operation involved in the
//    transformer layer" (paper Sec. 4.3, Table 3).
// Dimensions are scaled down so the models train from scratch in seconds on
// synthetic tasks; the *structure* (which nonlinearities appear where) is
// what the accuracy experiments depend on.
#pragma once

#include <cstddef>

namespace nnlut::transformer {

enum class NormKind { kLayerNorm, kNoNorm };
enum class ActKind { kGelu, kRelu };

struct ModelConfig {
  std::size_t vocab = 64;
  std::size_t hidden = 64;
  std::size_t layers = 2;
  std::size_t heads = 4;
  std::size_t ffn = 192;
  std::size_t max_seq = 32;
  std::size_t type_vocab = 2;
  NormKind norm = NormKind::kLayerNorm;
  ActKind act = ActKind::kGelu;

  static ModelConfig roberta_like() {
    ModelConfig c;
    c.norm = NormKind::kLayerNorm;
    c.act = ActKind::kGelu;
    return c;
  }

  static ModelConfig mobilebert_like() {
    ModelConfig c;
    c.norm = NormKind::kNoNorm;
    c.act = ActKind::kRelu;
    return c;
  }
};

}  // namespace nnlut::transformer
