#include "transformer/infer.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "ibert/quantization.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace nnlut::transformer {

namespace {

/// Project a tensor to the matmul operand precision, in place.
void project(Tensor& t, MatmulMode mode) {
  switch (mode) {
    case MatmulMode::kFp32:
      return;
    case MatmulMode::kFp16:
      ibert::fake_quantize_fp16(t.flat());
      return;
    case MatmulMode::kInt8:
      ibert::fake_quantize(t.flat(), 8);
      return;
  }
}

Tensor prepared_weight(const Tensor& w, MatmulMode mode) {
  Tensor copy = w;
  project(copy, mode);
  return copy;
}

}  // namespace

Tensor InferenceModel::PreparedLinear::apply(const Tensor& x,
                                             MatmulMode mode) const {
  Tensor xin = x;
  project(xin, mode);
  Tensor y({x.dim(0), w.dim(1)});
  matmul(xin, w, y);
  add_row_bias(y, b.flat());
  if (mode == MatmulMode::kFp16) ibert::fake_quantize_fp16(y.flat());
  return y;
}

InferenceModel::InferenceModel(const TaskModel& model, NonlinearitySet& nl,
                               MatmulMode mode)
    : model_(&model), nl_(&nl), mode_(mode) {
  layers_.reserve(model.encoder.layers.size());
  for (const EncoderLayer& l : model.encoder.layers) {
    LayerWeights lw;
    lw.wq = {prepared_weight(l.attn.wq.w.value, mode), l.attn.wq.b.value};
    lw.wk = {prepared_weight(l.attn.wk.w.value, mode), l.attn.wk.b.value};
    lw.wv = {prepared_weight(l.attn.wv.w.value, mode), l.attn.wv.b.value};
    lw.wo = {prepared_weight(l.attn.wo.w.value, mode), l.attn.wo.b.value};
    lw.ff1 = {prepared_weight(l.ff1.w.value, mode), l.ff1.b.value};
    lw.ff2 = {prepared_weight(l.ff2.w.value, mode), l.ff2.b.value};
    layers_.push_back(std::move(lw));
  }
  // The classification head stays FP32 (it is a tiny readout; the paper's
  // experiments quantize the transformer body).
  head_ = {model.head_lin.w.value, model.head_lin.b.value};
}

int InferenceModel::embedding_norm_site() const {
  return static_cast<int>(2 * model_->encoder.layers.size());
}

void InferenceModel::norm_rows(const Tensor& x, Tensor& y,
                               const NormSlot& slot, int site) {
  const std::size_t rows = x.dim(0), dim = x.dim(1);
  const auto gamma = slot.gamma().value.flat();
  const auto beta = slot.beta().value.flat();
  if (slot.kind() == NormKind::kLayerNorm) {
    // One backend call for the whole [rows x dim] block.
    nl_->layer_norm_rows(x.flat(), y.flat(), rows, dim, gamma, beta, site);
  } else {
    // NoNorm: element-wise affine; no non-linearity to approximate.
    runtime::parallel_for(0, rows, runtime::grain_for(2 * dim),
                          [&](std::size_t r0, std::size_t r1) {
                            for (std::size_t r = r0; r < r1; ++r) {
                              const auto xin = x.row(r);
                              auto yo = y.row(r);
                              for (std::size_t j = 0; j < dim; ++j)
                                yo[j] = xin[j] * gamma[j] + beta[j];
                            }
                          });
  }
}

void InferenceModel::validate(const BatchInput& in) const {
  const Encoder& enc = model_->encoder;
  if (in.token_ids.size() != in.batch * in.seq)
    throw std::invalid_argument("InferenceModel::encode: bad batch shape");

  if (!in.type_ids.empty() && in.type_ids.size() != in.token_ids.size())
    throw std::invalid_argument("InferenceModel::encode: bad type_ids shape");

  // Validate every id before touching the embedding tables: a negative or
  // out-of-vocabulary id would otherwise index out of bounds.
  const std::size_t rows = in.batch * in.seq;
  const int vocab = static_cast<int>(enc.tok_emb.table.value.dim(0));
  const int type_vocab = static_cast<int>(enc.type_emb.table.value.dim(0));
  if (in.seq > enc.pos_emb.table.value.dim(0))
    throw std::out_of_range(
        "InferenceModel::encode: seq exceeds the position-embedding table");
  for (std::size_t r = 0; r < rows; ++r) {
    const int tok = in.token_ids[r];
    if (tok < 0 || tok >= vocab)
      throw std::out_of_range("InferenceModel::encode: token id " +
                              std::to_string(tok) + " at position " +
                              std::to_string(r) + " outside vocab of " +
                              std::to_string(vocab));
    if (!in.type_ids.empty()) {
      const int typ = in.type_ids[r];
      if (typ < 0 || typ >= type_vocab)
        throw std::out_of_range("InferenceModel::encode: type id " +
                                std::to_string(typ) + " at position " +
                                std::to_string(r) + " outside type vocab of " +
                                std::to_string(type_vocab));
    }
  }
}

Tensor InferenceModel::encode(const BatchInput& in) {
  const Encoder& enc = model_->encoder;
  const ModelConfig& cfg = enc.config();
  validate(in);

  const std::size_t rows = in.batch * in.seq;
  const std::size_t hidden = cfg.hidden;

  // Embeddings (kept FP32; they are table reads, not matmuls).
  Tensor x({rows, hidden});
  runtime::parallel_for(
      0, rows, runtime::grain_for(3 * hidden),
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          const int tok = in.token_ids[r];
          const int typ = in.type_ids.empty() ? 0 : in.type_ids[r];
          const int pos = static_cast<int>(r % in.seq);
          const auto te =
              enc.tok_emb.table.value.row(static_cast<std::size_t>(tok));
          const auto pe =
              enc.pos_emb.table.value.row(static_cast<std::size_t>(pos));
          const auto ye =
              enc.type_emb.table.value.row(static_cast<std::size_t>(typ));
          auto dst = x.row(r);
          for (std::size_t j = 0; j < hidden; ++j) dst[j] = te[j] + pe[j] + ye[j];
        }
      });

  Tensor xn({rows, hidden});
  norm_rows(x, xn, enc.emb_norm, embedding_norm_site());
  x = std::move(xn);

  const std::size_t heads = cfg.heads;
  const std::size_t hd = hidden / heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // One [batch*heads*seq, seq] score buffer reused by every layer.
  const std::size_t score_rows = in.batch * heads * in.seq;
  Tensor scores({score_rows, in.seq});

  for (std::size_t li = 0; li < enc.layers.size(); ++li) {
    const LayerWeights& lw = layers_[li];
    const int site = static_cast<int>(li);

    Tensor q = lw.wq.apply(x, mode_);
    Tensor k = lw.wk.apply(x, mode_);
    Tensor v = lw.wv.apply(x, mode_);
    // Attention-score matmuls run at the same precision as the projections.
    project(q, mode_);
    project(k, mode_);
    project(v, mode_);

    // Score every (batch, head, query) row first, then run softmax over ALL
    // attention rows of the layer in one backend call. Score rows are
    // independent: shard the flattened (batch, head, query) index space.
    runtime::parallel_for(
        0, score_rows, runtime::grain_for(in.seq * hd),
        [&](std::size_t f0, std::size_t f1) {
          for (std::size_t f = f0; f < f1; ++f) {
            const std::size_t b = f / (heads * in.seq);
            const std::size_t h = (f / in.seq) % heads;
            const std::size_t i = f % in.seq;
            const float* qi = q.data() + (b * in.seq + i) * hidden + h * hd;
            auto prow = scores.row(f);
            for (std::size_t j = 0; j < in.seq; ++j) {
              const float* kj = k.data() + (b * in.seq + j) * hidden + h * hd;
              float acc = 0.0f;
              for (std::size_t d = 0; d < hd; ++d) acc += qi[d] * kj[d];
              prow[j] = acc * scale;
            }
          }
        });
    if (mode_ == MatmulMode::kFp16) ibert::fake_quantize_fp16(scores.flat());
    nl_->softmax_rows(scores.flat(), score_rows, in.seq, site);

    // Context (scores · V): each flattened (batch, head, query) row writes a
    // disjoint hd-slice of `context`, so the same sharding applies.
    Tensor context({rows, hidden});
    runtime::parallel_for(
        0, score_rows, runtime::grain_for(in.seq * hd),
        [&](std::size_t f0, std::size_t f1) {
          for (std::size_t f = f0; f < f1; ++f) {
            const std::size_t b = f / (heads * in.seq);
            const std::size_t h = (f / in.seq) % heads;
            const std::size_t i = f % in.seq;
            const auto prow = scores.row(f);
            float* out = context.data() + (b * in.seq + i) * hidden + h * hd;
            for (std::size_t d = 0; d < hd; ++d) {
              float acc = 0.0f;
              for (std::size_t j = 0; j < in.seq; ++j)
                acc += prow[j] * v.at(b * in.seq + j, d + h * hd);
              out[d] = acc;
            }
          }
        });

    Tensor attn_out = lw.wo.apply(context, mode_);
    add_inplace(attn_out, x);  // residual
    Tensor x1({rows, hidden});
    norm_rows(attn_out, x1, enc.layers[li].norm1, 2 * site);

    Tensor hmid = lw.ff1.apply(x1, mode_);
    // Activation over the whole [tokens x d_ff] tensor in one backend call;
    // the row-granular entry point keeps backends with grouped quantization
    // scales (I-BERT) independent of how requests were packed into the batch.
    nl_->activation_rows(hmid.flat(), hmid.dim(0), hmid.dim(1), site);
    Tensor f = lw.ff2.apply(hmid, mode_);
    add_inplace(f, x1);  // residual
    Tensor x2({rows, hidden});
    norm_rows(f, x2, enc.layers[li].norm2, 2 * site + 1);
    x = std::move(x2);
  }
  return x;
}

Tensor InferenceModel::logits(const BatchInput& in) {
  const Tensor hidden = encode(in);
  if (model_->head() == HeadKind::kSpan) {
    return head_.apply(hidden, MatmulMode::kFp32);
  }
  Tensor cls({in.batch, model_->config().hidden});
  for (std::size_t b = 0; b < in.batch; ++b) {
    const auto src = hidden.row(b * in.seq);
    auto dst = cls.row(b);
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] = src[j];
  }
  return head_.apply(cls, MatmulMode::kFp32);
}

}  // namespace nnlut::transformer
