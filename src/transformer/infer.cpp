#include "transformer/infer.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "ibert/quantization.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace nnlut::transformer {

namespace {

/// Project a tensor to the matmul operand precision, in place.
void project(Tensor& t, MatmulMode mode) {
  switch (mode) {
    case MatmulMode::kFp32:
      return;
    case MatmulMode::kFp16:
      ibert::fake_quantize_fp16(t.flat());
      return;
    case MatmulMode::kInt8:
      ibert::fake_quantize(t.flat(), 8);
      return;
  }
}

Tensor prepared_weight(const Tensor& w, MatmulMode mode) {
  Tensor copy = w;
  project(copy, mode);
  return copy;
}

}  // namespace

void InferenceModel::PreparedLinear::apply_into(const Tensor& x,
                                                MatmulMode mode, Workspace& ws,
                                                Tensor& y) const {
  assert(y.rank() == 2 && y.dim(0) == x.dim(0) && y.dim(1) == w.dim(1));
  const Tensor* operand = &x;
  if (mode != MatmulMode::kFp32) {
    ws.prepare(ws.proj, {x.dim(0), x.dim(1)});
    std::memcpy(ws.proj.data(), x.data(), x.size() * sizeof(float));
    project(ws.proj, mode);
    operand = &ws.proj;
  }
  matmul(*operand, w, y);  // matmul zero-fills y before accumulating
  add_row_bias(y, b.flat());
  if (mode == MatmulMode::kFp16) ibert::fake_quantize_fp16(y.flat());
}

InferenceModel::InferenceModel(const TaskModel& model, NonlinearitySet& nl,
                               MatmulMode mode)
    : model_(&model), nl_(&nl), mode_(mode) {
  layers_.reserve(model.encoder.layers.size());
  for (const EncoderLayer& l : model.encoder.layers) {
    LayerWeights lw;
    lw.wq = {prepared_weight(l.attn.wq.w.value, mode), l.attn.wq.b.value};
    lw.wk = {prepared_weight(l.attn.wk.w.value, mode), l.attn.wk.b.value};
    lw.wv = {prepared_weight(l.attn.wv.w.value, mode), l.attn.wv.b.value};
    lw.wo = {prepared_weight(l.attn.wo.w.value, mode), l.attn.wo.b.value};
    lw.ff1 = {prepared_weight(l.ff1.w.value, mode), l.ff1.b.value};
    lw.ff2 = {prepared_weight(l.ff2.w.value, mode), l.ff2.b.value};
    layers_.push_back(std::move(lw));
  }
  // The classification head stays FP32 (it is a tiny readout; the paper's
  // experiments quantize the transformer body).
  head_ = {model.head_lin.w.value, model.head_lin.b.value};
}

int InferenceModel::embedding_norm_site() const {
  return static_cast<int>(2 * model_->encoder.layers.size());
}

void InferenceModel::norm_rows(const Tensor& x, Tensor& y,
                               const NormSlot& slot, int site) {
  const std::size_t rows = x.dim(0), dim = x.dim(1);
  const auto gamma = slot.gamma().value.flat();
  const auto beta = slot.beta().value.flat();
  if (slot.kind() == NormKind::kLayerNorm) {
    // One backend call for the whole [rows x dim] block.
    nl_->layer_norm_rows(x.flat(), y.flat(), rows, dim, gamma, beta, site);
  } else {
    // NoNorm: element-wise affine; no non-linearity to approximate.
    runtime::parallel_for(0, rows, runtime::grain_for(2 * dim),
                          [&](std::size_t r0, std::size_t r1) {
                            for (std::size_t r = r0; r < r1; ++r) {
                              const auto xin = x.row(r);
                              auto yo = y.row(r);
                              for (std::size_t j = 0; j < dim; ++j)
                                yo[j] = xin[j] * gamma[j] + beta[j];
                            }
                          });
  }
}

void InferenceModel::validate(const BatchInput& in) const {
  const Encoder& enc = model_->encoder;
  if (in.token_ids.size() != in.batch * in.seq)
    throw std::invalid_argument("InferenceModel::encode: bad batch shape");

  if (!in.type_ids.empty() && in.type_ids.size() != in.token_ids.size())
    throw std::invalid_argument("InferenceModel::encode: bad type_ids shape");

  // Validate every id before touching the embedding tables: a negative or
  // out-of-vocabulary id would otherwise index out of bounds.
  const std::size_t rows = in.batch * in.seq;
  const int vocab = static_cast<int>(enc.tok_emb.table.value.dim(0));
  const int type_vocab = static_cast<int>(enc.type_emb.table.value.dim(0));
  if (in.seq > enc.pos_emb.table.value.dim(0))
    throw std::out_of_range(
        "InferenceModel::encode: seq exceeds the position-embedding table");
  for (std::size_t r = 0; r < rows; ++r) {
    const int tok = in.token_ids[r];
    if (tok < 0 || tok >= vocab)
      throw std::out_of_range("InferenceModel::encode: token id " +
                              std::to_string(tok) + " at position " +
                              std::to_string(r) + " outside vocab of " +
                              std::to_string(vocab));
    if (!in.type_ids.empty()) {
      const int typ = in.type_ids[r];
      if (typ < 0 || typ >= type_vocab)
        throw std::out_of_range("InferenceModel::encode: type id " +
                                std::to_string(typ) + " at position " +
                                std::to_string(r) + " outside type vocab of " +
                                std::to_string(type_vocab));
    }
  }
}

const Tensor& InferenceModel::encode_into(const BatchInput& in,
                                          Workspace& ws) {
  const Encoder& enc = model_->encoder;
  const ModelConfig& cfg = enc.config();
  validate(in);

  const std::size_t rows = in.batch * in.seq;
  const std::size_t hidden = cfg.hidden;

  // Embeddings (kept FP32; they are table reads, not matmuls).
  ws.prepare(ws.x, {rows, hidden});
  runtime::parallel_for(
      0, rows, runtime::grain_for(3 * hidden),
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          const int tok = in.token_ids[r];
          const int typ = in.type_ids.empty() ? 0 : in.type_ids[r];
          const int pos = static_cast<int>(r % in.seq);
          const auto te =
              enc.tok_emb.table.value.row(static_cast<std::size_t>(tok));
          const auto pe =
              enc.pos_emb.table.value.row(static_cast<std::size_t>(pos));
          const auto ye =
              enc.type_emb.table.value.row(static_cast<std::size_t>(typ));
          auto dst = ws.x.row(r);
          for (std::size_t j = 0; j < hidden; ++j) dst[j] = te[j] + pe[j] + ye[j];
        }
      });

  ws.prepare(ws.xn, {rows, hidden});
  norm_rows(ws.x, ws.xn, enc.emb_norm, embedding_norm_site());
  std::swap(ws.x, ws.xn);  // bytes move, values don't: x now holds the norm

  const std::size_t heads = cfg.heads;
  const std::size_t hd = hidden / heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // One [batch*heads*seq, seq] score slot reused by every layer.
  const std::size_t score_rows = in.batch * heads * in.seq;
  ws.prepare(ws.scores, {score_rows, in.seq});

  for (std::size_t li = 0; li < enc.layers.size(); ++li) {
    const LayerWeights& lw = layers_[li];
    const int site = static_cast<int>(li);
    Tensor& x = ws.x;

    Tensor& q = ws.prepare(ws.q, {rows, hidden});
    lw.wq.apply_into(x, mode_, ws, q);
    Tensor& k = ws.prepare(ws.k, {rows, hidden});
    lw.wk.apply_into(x, mode_, ws, k);
    Tensor& v = ws.prepare(ws.v, {rows, hidden});
    lw.wv.apply_into(x, mode_, ws, v);
    // Attention-score matmuls run at the same precision as the projections.
    project(q, mode_);
    project(k, mode_);
    project(v, mode_);

    // Score every (batch, head, query) row first, then run softmax over ALL
    // attention rows of the layer in one backend call. Score rows are
    // independent: shard the flattened (batch, head, query) index space.
    Tensor& scores = ws.scores;
    runtime::parallel_for(
        0, score_rows, runtime::grain_for(in.seq * hd),
        [&](std::size_t f0, std::size_t f1) {
          for (std::size_t f = f0; f < f1; ++f) {
            const std::size_t b = f / (heads * in.seq);
            const std::size_t h = (f / in.seq) % heads;
            const std::size_t i = f % in.seq;
            const float* qi = q.data() + (b * in.seq + i) * hidden + h * hd;
            auto prow = scores.row(f);
            for (std::size_t j = 0; j < in.seq; ++j) {
              const float* kj = k.data() + (b * in.seq + j) * hidden + h * hd;
              float acc = 0.0f;
              for (std::size_t d = 0; d < hd; ++d) acc += qi[d] * kj[d];
              prow[j] = acc * scale;
            }
          }
        });
    if (mode_ == MatmulMode::kFp16) ibert::fake_quantize_fp16(scores.flat());
    nl_->softmax_rows(scores.flat(), score_rows, in.seq, site);

    // Context (scores · V): each flattened (batch, head, query) row writes a
    // disjoint hd-slice of `context`, so the same sharding applies.
    Tensor& context = ws.prepare(ws.context, {rows, hidden});
    runtime::parallel_for(
        0, score_rows, runtime::grain_for(in.seq * hd),
        [&](std::size_t f0, std::size_t f1) {
          for (std::size_t f = f0; f < f1; ++f) {
            const std::size_t b = f / (heads * in.seq);
            const std::size_t h = (f / in.seq) % heads;
            const std::size_t i = f % in.seq;
            const auto prow = scores.row(f);
            float* out = context.data() + (b * in.seq + i) * hidden + h * hd;
            for (std::size_t d = 0; d < hd; ++d) {
              float acc = 0.0f;
              for (std::size_t j = 0; j < in.seq; ++j)
                acc += prow[j] * v.at(b * in.seq + j, d + h * hd);
              out[d] = acc;
            }
          }
        });

    Tensor& attn_out = ws.prepare(ws.attn_out, {rows, hidden});
    lw.wo.apply_into(context, mode_, ws, attn_out);
    add_inplace(attn_out, x);  // residual
    Tensor& x1 = ws.prepare(ws.x1, {rows, hidden});
    norm_rows(attn_out, x1, enc.layers[li].norm1, 2 * site);

    Tensor& hmid = ws.prepare(ws.hmid, {rows, lw.ff1.w.dim(1)});
    lw.ff1.apply_into(x1, mode_, ws, hmid);
    // Activation over the whole [tokens x d_ff] tensor in one backend call;
    // the row-granular entry point keeps backends with grouped quantization
    // scales (I-BERT) independent of how requests were packed into the batch.
    nl_->activation_rows(hmid.flat(), hmid.dim(0), hmid.dim(1), site);
    Tensor& f = ws.prepare(ws.f, {rows, hidden});
    lw.ff2.apply_into(hmid, mode_, ws, f);
    add_inplace(f, x1);  // residual
    Tensor& x2 = ws.prepare(ws.x2, {rows, hidden});
    norm_rows(f, x2, enc.layers[li].norm2, 2 * site + 1);
    std::swap(ws.x, ws.x2);
  }
  return ws.x;
}

Tensor InferenceModel::encode(const BatchInput& in) {
  Workspace ws;  // pool-less: slots are heap tensors local to this call
  encode_into(in, ws);
  return std::move(ws.x);
}

Tensor InferenceModel::encode(const BatchInput& in, Workspace& ws) {
  const Tensor& hidden = encode_into(in, ws);
  // The result escapes the workspace: give it its own slab so ws.x stays
  // recyclable and the copy returns to the pool with the caller.
  Tensor out = Tensor::pooled({hidden.dim(0), hidden.dim(1)}, ws.pool());
  std::memcpy(out.data(), hidden.data(), hidden.size() * sizeof(float));
  return out;
}

Tensor InferenceModel::logits(const BatchInput& in) {
  Workspace ws;
  return logits(in, ws);
}

Tensor InferenceModel::logits(const BatchInput& in, Workspace& ws) {
  const Tensor& hidden = encode_into(in, ws);
  if (model_->head() == HeadKind::kSpan) {
    Tensor out = Tensor::pooled({hidden.dim(0), head_.w.dim(1)}, ws.pool());
    head_.apply_into(hidden, MatmulMode::kFp32, ws, out);
    return out;
  }
  Tensor& cls = ws.prepare(ws.cls, {in.batch, model_->config().hidden});
  for (std::size_t b = 0; b < in.batch; ++b) {
    const auto src = hidden.row(b * in.seq);
    auto dst = cls.row(b);
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] = src[j];
  }
  Tensor out = Tensor::pooled({in.batch, head_.w.dim(1)}, ws.pool());
  head_.apply_into(cls, MatmulMode::kFp32, ws, out);
  return out;
}

}  // namespace nnlut::transformer
