// Nonlinearity backends for approximate inference. The inference engine
// calls these instead of the exact ops; swapping the backend realizes the
// paper's experiments:
//   ExactNonlinearities    - FP32 reference (Table 2 "Baseline")
//   LutNonlinearities      - NN-LUT or Linear-LUT at FP32/FP16/INT32, with
//                            per-op selection (Table 2a rows) and per-site
//                            LUTs + capture for calibration (Table 2b "+C")
//   IBertNonlinearities    - I-BERT integer kernels (Table 2b baseline)
//
// `site` identifies the op instance (layer number baked in by the inference
// engine) so calibration can specialize LUTs per layer.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/nnlut_ops.h"
#include "core/quantized_lut.h"
#include "core/scalar_fn.h"
#include "transformer/config.h"

namespace nnlut::transformer {

class NonlinearitySet {
 public:
  virtual ~NonlinearitySet() = default;

  /// Elementwise activation (GELU or ReLU depending on the model) over any
  /// contiguous span — callers should pass the whole tensor, not rows.
  virtual void activation(std::span<float> xs, int site) = 0;
  /// In-place softmax over one attention row.
  virtual void softmax(std::span<float> row, int site) = 0;
  /// LayerNorm with affine params.
  virtual void layer_norm(std::span<const float> x, std::span<float> y,
                          std::span<const float> gamma,
                          std::span<const float> beta, int site) = 0;

  /// In-place softmax over `nrows` contiguous rows of length `ncols` — one
  /// backend call for a whole attention-score block. Default: row loop;
  /// batched backends override with a plan-granular implementation.
  virtual void softmax_rows(std::span<float> data, std::size_t nrows,
                            std::size_t ncols, int site) {
    for (std::size_t r = 0; r < nrows; ++r)
      softmax(data.subspan(r * ncols, ncols), site);
  }

  /// LayerNorm over `nrows` contiguous rows of length `ncols`. Default: row
  /// loop; batched backends override.
  virtual void layer_norm_rows(std::span<const float> x, std::span<float> y,
                               std::size_t nrows, std::size_t ncols,
                               std::span<const float> gamma,
                               std::span<const float> beta, int site) {
    for (std::size_t r = 0; r < nrows; ++r)
      layer_norm(x.subspan(r * ncols, ncols), y.subspan(r * ncols, ncols),
                 gamma, beta, site);
  }

  /// Activation over `nrows` contiguous rows of length `ncols` (the
  /// [tokens x d_ff] FFN block). Default: one whole-span activation call —
  /// exact for elementwise backends. Backends whose activation quantizes
  /// over a shared group MUST override with a row-granular version so
  /// results are independent of batch composition (the serving batcher
  /// packs requests into one tensor and relies on per-row invariance).
  virtual void activation_rows(std::span<float> data, std::size_t nrows,
                               std::size_t ncols, int site) {
    (void)nrows;
    (void)ncols;
    activation(data, site);
  }
};

/// Exact FP32 reference implementations. The block entry points shard row
/// blocks (and the activation span) across the runtime thread pool so the
/// baseline comparison against the LUT backend is thread-for-thread fair.
class ExactNonlinearities final : public NonlinearitySet {
 public:
  explicit ExactNonlinearities(ActKind act = ActKind::kGelu) : act_(act) {}
  void activation(std::span<float> xs, int site) override;
  void softmax(std::span<float> row, int site) override;
  void layer_norm(std::span<const float> x, std::span<float> y,
                  std::span<const float> gamma, std::span<const float> beta,
                  int site) override;
  void softmax_rows(std::span<float> data, std::size_t nrows,
                    std::size_t ncols, int site) override;
  void layer_norm_rows(std::span<const float> x, std::span<float> y,
                       std::size_t nrows, std::size_t ncols,
                       std::span<const float> gamma,
                       std::span<const float> beta, int site) override;

 private:
  ActKind act_;
};

/// Which operations are replaced by LUTs (the others stay exact) — the row
/// structure of Table 2(a).
struct ApproxSelection {
  bool gelu = true;
  bool softmax = true;
  bool layer_norm = true;

  static ApproxSelection all() { return {}; }
  static ApproxSelection gelu_only() { return {true, false, false}; }
  static ApproxSelection softmax_only() { return {false, true, false}; }
  static ApproxSelection layernorm_only() { return {false, false, true}; }
};

/// LUT-backed nonlinearities. Owns the ScalarFn evaluators. The four base
/// functions are shared across sites by default; `set_site_rsqrt` installs a
/// calibrated per-site replacement (Sec. 3.3.3). Capture mode records the
/// inputs reaching each LayerNorm's 1/sqrt so calibration can regress on
/// them.
class LutNonlinearities final : public NonlinearitySet {
 public:
  struct Options {
    ApproxSelection select;
    ActKind act = ActKind::kGelu;  // exact fallback when gelu not selected
    bool input_scaling = true;     // Sec. 3.3.2, applied to LayerNorm
  };

  /// The ScalarFns must outlive this object if supplied externally; the
  /// factory functions below create owning instances.
  LutNonlinearities(std::unique_ptr<ScalarFn> gelu, std::unique_ptr<ScalarFn> exp,
                    std::unique_ptr<ScalarFn> recip,
                    std::unique_ptr<ScalarFn> rsqrt, Options opt);

  void activation(std::span<float> xs, int site) override;
  void softmax(std::span<float> row, int site) override;
  void layer_norm(std::span<const float> x, std::span<float> y,
                  std::span<const float> gamma, std::span<const float> beta,
                  int site) override;
  void softmax_rows(std::span<float> data, std::size_t nrows,
                    std::size_t ncols, int site) override;
  void layer_norm_rows(std::span<const float> x, std::span<float> y,
                       std::size_t nrows, std::size_t ncols,
                       std::span<const float> gamma,
                       std::span<const float> beta, int site) override;

  /// Install a calibrated rsqrt evaluator for one LayerNorm site.
  void set_site_rsqrt(int site, std::unique_ptr<ScalarFn> fn);

  /// Enable capture: inputs to each site's rsqrt are recorded (post input
  /// scaling, i.e. exactly what the LUT sees).
  void enable_rsqrt_capture();
  void disable_rsqrt_capture();
  const std::vector<float>& captured_rsqrt_inputs(int site) const;

 private:
  const ScalarFn& rsqrt_for_site(int site) const;

  std::unique_ptr<ScalarFn> gelu_fn_, exp_fn_, recip_fn_, rsqrt_fn_;
  std::vector<std::unique_ptr<ScalarFn>> site_rsqrt_;  // index = site
  Options opt_;

  bool capture_ = false;
  mutable std::vector<std::vector<float>> capture_buffers_;
};

/// I-BERT integer kernels for all three ops (ReLU models keep ReLU exact —
/// it is not a transcendental op). The block entry points route through
/// ibert's *_rows kernels, which shard row blocks across the runtime pool —
/// the same harness the LUT backend runs under, keeping the baseline fair.
class IBertNonlinearities final : public NonlinearitySet {
 public:
  explicit IBertNonlinearities(ActKind act = ActKind::kGelu) : act_(act) {}
  void activation(std::span<float> xs, int site) override;
  /// Per-row quantization scales (ibert::gelu_rows), unlike the whole-span
  /// activation(): batch-packing invariant, required by the serving layer.
  void activation_rows(std::span<float> data, std::size_t nrows,
                       std::size_t ncols, int site) override;
  void softmax(std::span<float> row, int site) override;
  void layer_norm(std::span<const float> x, std::span<float> y,
                  std::span<const float> gamma, std::span<const float> beta,
                  int site) override;
  void softmax_rows(std::span<float> data, std::size_t nrows,
                    std::size_t ncols, int site) override;
  void layer_norm_rows(std::span<const float> x, std::span<float> y,
                       std::size_t nrows, std::size_t ncols,
                       std::span<const float> gamma,
                       std::span<const float> beta, int site) override;

 private:
  ActKind act_;
};

// ------------------------------------------------------------ factories ---

/// The trained (or fitted) LUTs for the four base functions.
struct LutSet {
  PiecewiseLinear gelu;
  PiecewiseLinear exp;
  PiecewiseLinear reciprocal;
  PiecewiseLinear rsqrt;
};

/// Build a LUT backend from tables at the requested deployed precision.
std::unique_ptr<LutNonlinearities> make_lut_backend(
    const LutSet& luts, LutPrecision precision, LutNonlinearities::Options opt);

}  // namespace nnlut::transformer
