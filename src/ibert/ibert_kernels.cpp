#include "ibert/ibert_kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "runtime/thread_pool.h"

namespace nnlut::ibert {

namespace {
/// Saturating float -> int64 for scale-derived grid constants (q_b, q_c,
/// q_ln2, clip bounds): casting a float beyond int64 range is UB, which a
/// pathologically fine or coarse scale would otherwise trigger. Values within
/// the row-level kernels' floored scales never saturate (see row_scale).
std::int64_t sat_q(float x) {
  constexpr float kLim = 4.0e18f;  // < 2^62, exactly representable as float
  if (std::isnan(x)) return 0;
  return static_cast<std::int64_t>(std::clamp(x, -kLim, kLim));
}
}  // namespace

QValue i_poly(QValue in, float a, float b, float c) {
  const std::int64_t qb = sat_q(std::floor(b / in.s));
  const float s_out = a * in.s * in.s;
  const std::int64_t qc = sat_q(std::floor(c / s_out));
  const std::int64_t base = in.q + qb;
  QValue out;
  out.q = base * base + qc;
  out.s = s_out;
  return out;
}

QValue i_erf(QValue in) {
  constexpr float a = -0.2888f;
  constexpr float b = -1.769f;
  constexpr float c = 1.0f;

  const std::int64_t sgn = in.q >= 0 ? 1 : -1;
  const std::int64_t q_abs = std::abs(in.q);
  // Clip |x| at -b = 1.769 where the polynomial reaches erf's plateau.
  const std::int64_t q_clip_max = sat_q(std::floor(-b / in.s));
  QValue clipped;
  clipped.q = std::min(q_abs, q_clip_max);
  clipped.s = in.s;

  QValue l = i_poly(clipped, a, b, c);
  l.q *= sgn;
  return l;
}

QValue i_gelu(QValue in) {
  QValue x_for_erf;
  x_for_erf.q = in.q;
  x_for_erf.s = in.s / static_cast<float>(M_SQRT2);
  const QValue erf = i_erf(x_for_erf);

  const std::int64_t q_one = sat_q(std::floor(1.0f / erf.s));
  QValue out;
  out.q = in.q * (erf.q + q_one);
  out.s = in.s * erf.s / 2.0f;
  return out;
}

QValue i_exp(QValue in) {
  constexpr float a = 0.3585f;
  constexpr float b = 1.353f;
  constexpr float c = 0.344f;
  constexpr float kLn2 = 0.69314718056f;

  if (in.q > 0) in.q = 0;  // softmax always feeds x - max <= 0

  // When the input scale is coarser than ln2 (s > ln2), floor(ln2 / s) is 0
  // and the range-reduction division below would divide by zero. Clamp to 1:
  // each quantization step then counts as (at least) one halving, which is
  // the closest representable behaviour on such a grid. Normal scales
  // (s <= ln2) are unaffected.
  std::int64_t q_ln2 = sat_q(std::floor(kLn2 / in.s));
  if (q_ln2 < 1) q_ln2 = 1;

  const std::int64_t z = (-in.q) / q_ln2;  // floor for non-negative operands
  QValue p;
  p.q = in.q + z * q_ln2;  // p in (-ln2, 0]
  p.s = in.s;

  QValue l = i_poly(p, a, b, c);
  l.q = l.q >> std::min<std::int64_t>(z, 62);
  return l;
}

std::int64_t i_sqrt(std::int64_t n, int max_iter) {
  if (n <= 0) return 0;
  // Initial guess 2^ceil(bits/2) >= sqrt(n) guarantees monotone descent.
  int bits = 0;
  while ((n >> bits) != 0) ++bits;
  std::int64_t x = std::int64_t{1} << ((bits + 1) / 2);
  for (int i = 0; i < max_iter; ++i) {
    const std::int64_t next = (x + n / x) >> 1;
    if (next >= x) break;  // converged (floor-sqrt reached)
    x = next;
  }
  return x;
}

int i_sqrt_iterations(std::int64_t n, int max_iter) {
  if (n <= 0) return 0;
  int bits = 0;
  while ((n >> bits) != 0) ++bits;
  std::int64_t x = std::int64_t{1} << ((bits + 1) / 2);
  for (int i = 0; i < max_iter; ++i) {
    const std::int64_t next = (x + n / x) >> 1;
    if (next >= x) return i;
    x = next;
  }
  return max_iter;
}

namespace {
/// Symmetric scale so that max finite |row| maps to 2^bits - 1. Non-finite
/// entries follow the same spirit as lut_kernel's int_quantize sanitization:
/// NaN and ±inf contribute nothing to the scale (±inf later saturates the
/// quantization budget in quantize(), i.e. behaves as "largest value on the
/// grid"; letting it drive the scale would blow up every downstream s^2).
/// The max magnitude is floored at 2^-6: scale-derived integer constants of
/// the polynomial pipelines grow as 1/s and 1/s^2, and an unbounded-fine
/// scale would push their int64 squares/products into (undefined) overflow.
/// Rows whose magnitudes all sit below the floor just land on the floor's
/// grid — near-zero inputs of these ops map to near-zero outputs anyway.
float row_scale(std::span<const float> row, int bits) {
  constexpr float kMinRowMax = 0.015625f;  // 2^-6
  float mx = 0.0f;
  for (float v : row) {
    if (!std::isfinite(v)) continue;
    mx = std::max(mx, std::abs(v));
  }
  mx = std::max(mx, kMinRowMax);
  return mx / static_cast<float>((1 << bits) - 1);
}

/// llround of a non-finite value is UB; sanitize like lut_kernel's
/// int_quantize: NaN -> 0, everything else saturates the caller's budget
/// (±inf behaves like the largest value the caller's grid represents),
/// which keeps every downstream int64 square/sum/product (i_poly, layernorm
/// variance, i_gelu's x * (erf + 1)) well-defined. gelu/layernorm pass the
/// grid budget 2^bits - 1 (finite values quantized against their own row's
/// scale never clamp); softmax passes 2^24, because its ln2/4 scale cap
/// intentionally lets coarse rows quantize beyond the nominal grid.
std::int64_t quantize(float v, float s, float lim) {
  const float q = std::round(v / s);
  if (std::isnan(q)) return 0;
  return static_cast<std::int64_t>(std::clamp(q, -lim, lim));
}

float grid_budget(int bits) { return static_cast<float>((1 << bits) - 1); }

constexpr float kSoftmaxBudget = 16777216.0f;  // 2^24
}  // namespace

namespace {
/// One softmax row with caller-provided scratch (hoisted out of the per-row
/// loop by the block API).
void softmax_span(std::span<float> row, std::vector<std::int64_t>& qe,
                  int input_bits, int out_bits) {
  if (row.empty()) return;
  // Cap the scale at ln2/4: i_exp's range reduction then always has at least
  // four grid steps per halving, so even rows with huge logit magnitudes
  // (where the nominal per-row scale would be coarser than ln2) produce a
  // valid, near-one-hot softmax instead of a degenerate all-zero table.
  // Normal attention rows (max |logit| <= ~5.7e3 at 15 bits) are unaffected.
  constexpr float kCoarsestScale = 0.25f * 0.69314718056f;
  const float s = std::min(row_scale(row, input_bits), kCoarsestScale);

  std::int64_t qmax = std::numeric_limits<std::int64_t>::min();
  for (float v : row) qmax = std::max(qmax, quantize(v, s, kSoftmaxBudget));

  // i_exp of the shifted entries; all share one output scale.
  qe.resize(row.size());
  std::int64_t qsum = 0;
  for (std::size_t i = 0; i < row.size(); ++i) {
    QValue in{quantize(row[i], s, kSoftmaxBudget) - qmax, s};
    const QValue e = i_exp(in);
    qe[i] = e.q;
    qsum += e.q;
  }
  if (qsum <= 0) qsum = 1;

  // Fixed-point reciprocal of the integer sum. A 64-bit dividend keeps the
  // quotient fine-grained; the final right shift lands on 2^-out_bits scale.
  const int recip_bits = 62;
  const std::int64_t factor = (std::int64_t{1} << recip_bits) / qsum;
  const int shift = recip_bits - out_bits;
  const float s_out = 1.0f / static_cast<float>(std::int64_t{1} << out_bits);
  for (std::size_t i = 0; i < row.size(); ++i) {
    const std::int64_t q = (qe[i] * factor) >> shift;
    row[i] = static_cast<float>(q) * s_out;
  }
}
}  // namespace

namespace {
// Integer scratch rows, one per thread. Pool workers persist across calls,
// so after the first request of a seq bucket the resize inside the span
// kernels never reallocates — the row kernels go allocation-free at steady
// state. Each thread owns its vector outright (no sharing, TSan-clean).
thread_local std::vector<std::int64_t> t_softmax_scratch;
thread_local std::vector<std::int64_t> t_layernorm_scratch;
}  // namespace

void softmax_row(std::span<float> row, int input_bits, int out_bits) {
  softmax_span(row, t_softmax_scratch, input_bits, out_bits);
}

void softmax_rows(std::span<float> data, std::size_t nrows, std::size_t ncols,
                  int input_bits, int out_bits) {
  assert(data.size() == nrows * ncols);
  if (nrows == 0 || ncols == 0) return;
  // Per-row scales make rows fully independent: shard row blocks across the
  // pool, each shard on its own thread's scratch row.
  runtime::parallel_for(0, nrows, runtime::grain_for(8 * ncols),
                        [&](std::size_t r0, std::size_t r1) {
                          for (std::size_t r = r0; r < r1; ++r)
                            softmax_span(data.subspan(r * ncols, ncols),
                                         t_softmax_scratch, input_bits,
                                         out_bits);
                        });
}

void gelu_row(std::span<float> row, int input_bits) {
  if (row.empty()) return;
  // The whole span shares one scale (computed serially so the result does
  // not depend on the pool size); the elementwise integer GELU map shards.
  const float s = row_scale(row, input_bits);
  const float budget = grid_budget(input_bits);
  runtime::parallel_for(0, row.size(), runtime::grain_for(16),
                        [&](std::size_t i0, std::size_t i1) {
                          for (std::size_t i = i0; i < i1; ++i) {
                            const QValue out =
                                i_gelu({quantize(row[i], s, budget), s});
                            row[i] = out.value();
                          }
                        });
}

void gelu_rows(std::span<float> data, std::size_t nrows, std::size_t ncols,
               int input_bits) {
  if (nrows == 0 || ncols == 0) return;
  assert(data.size() == nrows * ncols);
  const float budget = grid_budget(input_bits);
  runtime::parallel_for(
      0, nrows, runtime::grain_for(4 * ncols),
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          const std::span<float> row = data.subspan(r * ncols, ncols);
          const float s = row_scale(row, input_bits);
          for (std::size_t i = 0; i < ncols; ++i) {
            const QValue out = i_gelu({quantize(row[i], s, budget), s});
            row[i] = out.value();
          }
        }
      });
}

namespace {
void layernorm_span(std::span<const float> x, std::span<float> y,
                    std::span<const float> gamma, std::span<const float> beta,
                    std::vector<std::int64_t>& q, int input_bits) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n == 0) return;

  const float s = row_scale(x, input_bits);
  q.resize(n);
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = quantize(x[i], s, grid_budget(input_bits));
    sum += q[i];
  }
  const std::int64_t mean =
      (sum >= 0 ? sum + static_cast<std::int64_t>(n) / 2
                : sum - static_cast<std::int64_t>(n) / 2) /
      static_cast<std::int64_t>(n);

  std::int64_t var_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    q[i] -= mean;
    var_sum += q[i] * q[i];
  }
  // std_q = sqrt(sum (q - mu)^2) = sqrt(n) * sigma_q, via integer Newton.
  std::int64_t std_q = i_sqrt(var_sum);
  if (std_q == 0) std_q = 1;

  // Fixed-point reciprocal multiply: (q_i / std_q) * sqrt(n) normalizes.
  const std::int64_t factor = (std::int64_t{1} << 31) / std_q;
  const float s_out =
      std::sqrt(static_cast<float>(n)) / static_cast<float>(std::int64_t{1} << 31);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t qo = q[i] * factor;
    float v = static_cast<float>(qo) * s_out;
    if (!gamma.empty()) v *= gamma[i];
    if (!beta.empty()) v += beta[i];
    y[i] = v;
  }
}
}  // namespace

void layernorm_row(std::span<const float> x, std::span<float> y,
                   std::span<const float> gamma, std::span<const float> beta,
                   int input_bits) {
  layernorm_span(x, y, gamma, beta, t_layernorm_scratch, input_bits);
}

void layernorm_rows(std::span<const float> x, std::span<float> y,
                    std::size_t nrows, std::size_t ncols,
                    std::span<const float> gamma, std::span<const float> beta,
                    int input_bits) {
  assert(x.size() == nrows * ncols && y.size() == nrows * ncols);
  if (nrows == 0 || ncols == 0) return;
  runtime::parallel_for(0, nrows, runtime::grain_for(6 * ncols),
                        [&](std::size_t r0, std::size_t r1) {
                          for (std::size_t r = r0; r < r1; ++r)
                            layernorm_span(x.subspan(r * ncols, ncols),
                                           y.subspan(r * ncols, ncols), gamma,
                                           beta, t_layernorm_scratch,
                                           input_bits);
                        });
}

}  // namespace nnlut::ibert
