#include "ibert/ibert_kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace nnlut::ibert {

QValue i_poly(QValue in, float a, float b, float c) {
  const std::int64_t qb = static_cast<std::int64_t>(std::floor(b / in.s));
  const float s_out = a * in.s * in.s;
  const std::int64_t qc = static_cast<std::int64_t>(std::floor(c / s_out));
  const std::int64_t base = in.q + qb;
  QValue out;
  out.q = base * base + qc;
  out.s = s_out;
  return out;
}

QValue i_erf(QValue in) {
  constexpr float a = -0.2888f;
  constexpr float b = -1.769f;
  constexpr float c = 1.0f;

  const std::int64_t sgn = in.q >= 0 ? 1 : -1;
  const std::int64_t q_abs = std::abs(in.q);
  // Clip |x| at -b = 1.769 where the polynomial reaches erf's plateau.
  const std::int64_t q_clip_max =
      static_cast<std::int64_t>(std::floor(-b / in.s));
  QValue clipped;
  clipped.q = std::min(q_abs, q_clip_max);
  clipped.s = in.s;

  QValue l = i_poly(clipped, a, b, c);
  l.q *= sgn;
  return l;
}

QValue i_gelu(QValue in) {
  QValue x_for_erf;
  x_for_erf.q = in.q;
  x_for_erf.s = in.s / static_cast<float>(M_SQRT2);
  const QValue erf = i_erf(x_for_erf);

  const std::int64_t q_one =
      static_cast<std::int64_t>(std::floor(1.0f / erf.s));
  QValue out;
  out.q = in.q * (erf.q + q_one);
  out.s = in.s * erf.s / 2.0f;
  return out;
}

QValue i_exp(QValue in) {
  constexpr float a = 0.3585f;
  constexpr float b = 1.353f;
  constexpr float c = 0.344f;
  constexpr float kLn2 = 0.69314718056f;

  if (in.q > 0) in.q = 0;  // softmax always feeds x - max <= 0

  const std::int64_t q_ln2 =
      static_cast<std::int64_t>(std::floor(kLn2 / in.s));
  assert(q_ln2 > 0 && "input scale too coarse for i_exp");

  const std::int64_t z = (-in.q) / q_ln2;  // floor for non-negative operands
  QValue p;
  p.q = in.q + z * q_ln2;  // p in (-ln2, 0]
  p.s = in.s;

  QValue l = i_poly(p, a, b, c);
  l.q = l.q >> std::min<std::int64_t>(z, 62);
  return l;
}

std::int64_t i_sqrt(std::int64_t n, int max_iter) {
  if (n <= 0) return 0;
  // Initial guess 2^ceil(bits/2) >= sqrt(n) guarantees monotone descent.
  int bits = 0;
  while ((n >> bits) != 0) ++bits;
  std::int64_t x = std::int64_t{1} << ((bits + 1) / 2);
  for (int i = 0; i < max_iter; ++i) {
    const std::int64_t next = (x + n / x) >> 1;
    if (next >= x) break;  // converged (floor-sqrt reached)
    x = next;
  }
  return x;
}

int i_sqrt_iterations(std::int64_t n, int max_iter) {
  if (n <= 0) return 0;
  int bits = 0;
  while ((n >> bits) != 0) ++bits;
  std::int64_t x = std::int64_t{1} << ((bits + 1) / 2);
  for (int i = 0; i < max_iter; ++i) {
    const std::int64_t next = (x + n / x) >> 1;
    if (next >= x) return i;
    x = next;
  }
  return max_iter;
}

namespace {
/// Symmetric scale so that max|row| maps to 2^bits - 1.
float row_scale(std::span<const float> row, int bits) {
  float mx = 0.0f;
  for (float v : row) mx = std::max(mx, std::abs(v));
  if (mx == 0.0f) mx = 1.0f;
  return mx / static_cast<float>((1 << bits) - 1);
}

std::int64_t quantize(float v, float s) {
  return static_cast<std::int64_t>(std::llround(v / s));
}
}  // namespace

void softmax_row(std::span<float> row, int input_bits, int out_bits) {
  if (row.empty()) return;
  const float s = row_scale(row, input_bits);

  std::int64_t qmax = std::numeric_limits<std::int64_t>::min();
  for (float v : row) qmax = std::max(qmax, quantize(v, s));

  // i_exp of the shifted entries; all share one output scale.
  std::vector<std::int64_t> qe(row.size());
  std::int64_t qsum = 0;
  for (std::size_t i = 0; i < row.size(); ++i) {
    QValue in{quantize(row[i], s) - qmax, s};
    const QValue e = i_exp(in);
    qe[i] = e.q;
    qsum += e.q;
  }
  if (qsum <= 0) qsum = 1;

  // Fixed-point reciprocal of the integer sum. A 64-bit dividend keeps the
  // quotient fine-grained; the final right shift lands on 2^-out_bits scale.
  const int recip_bits = 62;
  const std::int64_t factor = (std::int64_t{1} << recip_bits) / qsum;
  const int shift = recip_bits - out_bits;
  const float s_out = 1.0f / static_cast<float>(std::int64_t{1} << out_bits);
  for (std::size_t i = 0; i < row.size(); ++i) {
    const std::int64_t q = (qe[i] * factor) >> shift;
    row[i] = static_cast<float>(q) * s_out;
  }
}

void gelu_row(std::span<float> row, int input_bits) {
  if (row.empty()) return;
  const float s = row_scale(row, input_bits);
  for (float& v : row) {
    const QValue out = i_gelu({quantize(v, s), s});
    v = out.value();
  }
}

void layernorm_row(std::span<const float> x, std::span<float> y,
                   std::span<const float> gamma, std::span<const float> beta,
                   int input_bits) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n == 0) return;

  const float s = row_scale(x, input_bits);
  std::vector<std::int64_t> q(n);
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = quantize(x[i], s);
    sum += q[i];
  }
  const std::int64_t mean =
      (sum >= 0 ? sum + static_cast<std::int64_t>(n) / 2
                : sum - static_cast<std::int64_t>(n) / 2) /
      static_cast<std::int64_t>(n);

  std::int64_t var_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    q[i] -= mean;
    var_sum += q[i] * q[i];
  }
  // std_q = sqrt(sum (q - mu)^2) = sqrt(n) * sigma_q, via integer Newton.
  std::int64_t std_q = i_sqrt(var_sum);
  if (std_q == 0) std_q = 1;

  // Fixed-point reciprocal multiply: (q_i / std_q) * sqrt(n) normalizes.
  const std::int64_t factor = (std::int64_t{1} << 31) / std_q;
  const float s_out =
      std::sqrt(static_cast<float>(n)) / static_cast<float>(std::int64_t{1} << 31);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t qo = q[i] * factor;
    float v = static_cast<float>(qo) * s_out;
    if (!gamma.empty()) v *= gamma[i];
    if (!beta.empty()) v += beta[i];
    y[i] = v;
  }
}

}  // namespace nnlut::ibert
