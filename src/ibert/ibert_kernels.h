// Reimplementation of I-BERT's integer-only approximations of non-linear
// operations (Kim et al., "I-BERT: Integer-only BERT Quantization",
// ICML 2021 — Algorithms 2-4), used by the paper as the state-of-the-art
// baseline for both accuracy (Table 2b) and hardware cost (Table 4).
//
// Quantized values are (q, S) pairs with real value q * S. All arithmetic on
// q is integer; scales are tracked on the side exactly as in I-BERT.
#pragma once

#include <cstdint>
#include <span>

namespace nnlut::ibert {

/// A quantized scalar: real value = q * s. The integer field is 64 bits wide
/// because intermediate products of the I-BERT pipelines (e.g. x * (erf + 1))
/// legitimately exceed 32 bits before the final requantization step; the
/// hardware datapath sizes those stages accordingly (cf. Fig. 3b).
struct QValue {
  std::int64_t q = 0;
  float s = 1.0f;
  float value() const { return static_cast<float>(q) * s; }
};

/// Integer-only second-order polynomial a*(x+b)^2 + c (I-BERT Alg. 1):
/// q_out = (q + q_b)^2 + q_c with q_b = floor(b/S), q_c = floor(c/(a S^2)),
/// S_out = a * S^2.
QValue i_poly(QValue in, float a, float b, float c);

/// Integer erf via the sign-symmetric clipped polynomial (I-BERT Alg. 2):
/// a = -0.2888, b = -1.769, c = 1; |x| clipped to -b.
QValue i_erf(QValue in);

/// Integer GELU: x/2 * (1 + i_erf(x / sqrt(2))) (I-BERT Alg. 2).
QValue i_gelu(QValue in);

/// Integer exponential for non-positive inputs (I-BERT Alg. 3):
/// x = -z ln2 + p with p in (-ln2, 0]; exp(x) = i_poly(p) >> z.
/// Inputs with q > 0 are clamped to 0 (softmax always feeds x - max <= 0).
/// Scales coarser than ln2 (s > ln2, where floor(ln2/s) = 0) are handled by
/// clamping the quantized ln2 to one grid step instead of dividing by zero.
QValue i_exp(QValue in);

/// Integer square root by Newton iteration (I-BERT Alg. 4):
/// x_{k+1} = floor((x_k + floor(n / x_k)) / 2), run to convergence
/// (at most `max_iter`). Returns floor(sqrt(n)).
std::int64_t i_sqrt(std::int64_t n, int max_iter = 20);

/// Number of Newton iterations i_sqrt needed for n (for latency analysis).
int i_sqrt_iterations(std::int64_t n, int max_iter = 20);

// ---------------------------------------------------------------------------
// Row-level operations used when swapping I-BERT kernels into a transformer.
// Inputs/outputs are float tensors; each function quantizes its input with a
// symmetric per-row scale (I-BERT pre-scales inputs in the same spirit),
// runs the integer pipeline, and dequantizes the result.
//
// Non-finite input contract (matches lut_kernel's int_quantize): NaN entries
// quantize to 0 and contribute nothing to the row scale; ±inf entries also
// skip the row scale and saturate the quantization budget (the grid maximum
// 2^bits - 1 for gelu/layernorm, 2^24 for softmax), i.e. they behave as the
// largest representable magnitude. No input value invokes UB in these
// row-level kernels — llround is never applied to a non-finite value, the
// row scale floors the max magnitude at 2^-6 (so scale-derived integer
// constants like floor(b/S) stay far from int64 limits), and softmax caps
// the scale at ln2/4 (so the integer exp's range reduction stays valid for
// rows whose magnitudes dwarf the grid: they produce a near-one-hot result,
// as exact softmax would, rather than a degenerate all-zero table).
//
// The *_rows block entry points process `nrows` contiguous rows with per-row
// scales; rows are independent, so row blocks are sharded across the runtime
// thread pool (runtime/thread_pool.h) with scratch buffers hoisted per
// shard. Results are bit-identical for any pool size.
// ---------------------------------------------------------------------------

/// Integer softmax (I-BERT Alg. 3): subtract integer max, i_exp each entry,
/// normalize by the integer sum with a 2^bits fixed-point reciprocal.
void softmax_row(std::span<float> row, int input_bits = 15, int out_bits = 30);

/// Integer softmax over `nrows` contiguous rows of length `ncols`.
void softmax_rows(std::span<float> data, std::size_t nrows, std::size_t ncols,
                  int input_bits = 15, int out_bits = 30);

/// Integer GELU over a span with ONE shared symmetric scale (computed
/// serially over the whole span; the elementwise integer map is sharded).
void gelu_row(std::span<float> row, int input_bits = 15);

/// Integer GELU over `nrows` contiguous rows of length `ncols` with one
/// scale PER ROW. Each row's result depends only on that row's content, so
/// — unlike the whole-span gelu_row — packed multi-request batches match
/// solo execution bit-for-bit (the serving batcher's contract).
void gelu_rows(std::span<float> data, std::size_t nrows, std::size_t ncols,
               int input_bits = 15);

/// Integer LayerNorm: integer mean/variance, i_sqrt for the standard
/// deviation, fixed-point reciprocal multiply; gamma/beta folded in after
/// dequantization (they are channelwise affine constants).
void layernorm_row(std::span<const float> x, std::span<float> y,
                   std::span<const float> gamma, std::span<const float> beta,
                   int input_bits = 15);

/// Integer LayerNorm over `nrows` contiguous rows of length `ncols`.
void layernorm_rows(std::span<const float> x, std::span<float> y,
                    std::size_t nrows, std::size_t ncols,
                    std::span<const float> gamma, std::span<const float> beta,
                    int input_bits = 15);

}  // namespace nnlut::ibert
