// Reimplementation of I-BERT's integer-only approximations of non-linear
// operations (Kim et al., "I-BERT: Integer-only BERT Quantization",
// ICML 2021 — Algorithms 2-4), used by the paper as the state-of-the-art
// baseline for both accuracy (Table 2b) and hardware cost (Table 4).
//
// Quantized values are (q, S) pairs with real value q * S. All arithmetic on
// q is integer; scales are tracked on the side exactly as in I-BERT.
#pragma once

#include <cstdint>
#include <span>

namespace nnlut::ibert {

/// A quantized scalar: real value = q * s. The integer field is 64 bits wide
/// because intermediate products of the I-BERT pipelines (e.g. x * (erf + 1))
/// legitimately exceed 32 bits before the final requantization step; the
/// hardware datapath sizes those stages accordingly (cf. Fig. 3b).
struct QValue {
  std::int64_t q = 0;
  float s = 1.0f;
  float value() const { return static_cast<float>(q) * s; }
};

/// Integer-only second-order polynomial a*(x+b)^2 + c (I-BERT Alg. 1):
/// q_out = (q + q_b)^2 + q_c with q_b = floor(b/S), q_c = floor(c/(a S^2)),
/// S_out = a * S^2.
QValue i_poly(QValue in, float a, float b, float c);

/// Integer erf via the sign-symmetric clipped polynomial (I-BERT Alg. 2):
/// a = -0.2888, b = -1.769, c = 1; |x| clipped to -b.
QValue i_erf(QValue in);

/// Integer GELU: x/2 * (1 + i_erf(x / sqrt(2))) (I-BERT Alg. 2).
QValue i_gelu(QValue in);

/// Integer exponential for non-positive inputs (I-BERT Alg. 3):
/// x = -z ln2 + p with p in (-ln2, 0]; exp(x) = i_poly(p) >> z.
/// Inputs with q > 0 are clamped to 0 (softmax always feeds x - max <= 0).
QValue i_exp(QValue in);

/// Integer square root by Newton iteration (I-BERT Alg. 4):
/// x_{k+1} = floor((x_k + floor(n / x_k)) / 2), run to convergence
/// (at most `max_iter`). Returns floor(sqrt(n)).
std::int64_t i_sqrt(std::int64_t n, int max_iter = 20);

/// Number of Newton iterations i_sqrt needed for n (for latency analysis).
int i_sqrt_iterations(std::int64_t n, int max_iter = 20);

// ---------------------------------------------------------------------------
// Row-level operations used when swapping I-BERT kernels into a transformer.
// Inputs/outputs are float tensors; each function quantizes its input with a
// symmetric per-row scale (I-BERT pre-scales inputs in the same spirit),
// runs the integer pipeline, and dequantizes the result.
// ---------------------------------------------------------------------------

/// Integer softmax (I-BERT Alg. 3): subtract integer max, i_exp each entry,
/// normalize by the integer sum with a 2^bits fixed-point reciprocal.
void softmax_row(std::span<float> row, int input_bits = 15, int out_bits = 30);

/// Integer GELU over a row with a shared symmetric scale.
void gelu_row(std::span<float> row, int input_bits = 15);

/// Integer LayerNorm: integer mean/variance, i_sqrt for the standard
/// deviation, fixed-point reciprocal multiply; gamma/beta folded in after
/// dequantization (they are channelwise affine constants).
void layernorm_row(std::span<const float> x, std::span<float> y,
                   std::span<const float> gamma, std::span<const float> beta,
                   int input_bits = 15);

}  // namespace nnlut::ibert
