// Symmetric linear quantization utilities used to emulate the INT8
// matrix-multiplication setting of Table 2(b) ("the model is fine-tuned with
// INT8 matrix multiplication and FP32 non-linear operations") and the FP16
// MatMul setting of Table 3.
#pragma once

#include <span>

namespace nnlut::ibert {

/// Symmetric per-tensor scale mapping max|v| to the signed b-bit maximum.
float symmetric_scale(std::span<const float> values, int bits);

/// Fake-quantize in place: round(v / s) clamped to b-bit signed range, then
/// dequantize. This is the standard simulation of integer matmul inputs.
void fake_quantize(std::span<float> values, int bits);

/// Fake-quantize with an externally chosen scale (e.g. a weight scale fixed
/// at load time).
void fake_quantize_with_scale(std::span<float> values, float scale, int bits);

/// Round every value through IEEE binary16 (Table 3's "MatMul computed in
/// FP16" setting).
void fake_quantize_fp16(std::span<float> values);

}  // namespace nnlut::ibert
