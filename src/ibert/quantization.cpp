#include "ibert/quantization.h"

#include <algorithm>
#include <cmath>

#include "numerics/half.h"

namespace nnlut::ibert {

float symmetric_scale(std::span<const float> values, int bits) {
  float mx = 0.0f;
  for (float v : values) mx = std::max(mx, std::abs(v));
  if (mx == 0.0f) return 1.0f;
  return mx / static_cast<float>((1 << (bits - 1)) - 1);
}

void fake_quantize_with_scale(std::span<float> values, float scale, int bits) {
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  for (float& v : values) {
    float q = std::round(v / scale);
    q = std::clamp(q, -qmax, qmax);
    v = q * scale;
  }
}

void fake_quantize(std::span<float> values, int bits) {
  fake_quantize_with_scale(values, symmetric_scale(values, bits), bits);
}

void fake_quantize_fp16(std::span<float> values) {
  for (float& v : values) v = round_to_half(v);
}

}  // namespace nnlut::ibert
