#include "approx/linear_lut.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace nnlut {

std::vector<float> make_breakpoints(InputRange range, int entries,
                                    BreakpointMode mode) {
  if (entries < 2) throw std::invalid_argument("LUT needs at least 2 entries");
  if (!(range.lo < range.hi)) throw std::invalid_argument("invalid range");

  const int n_bp = entries - 1;
  std::vector<float> bps;
  bps.reserve(static_cast<std::size_t>(n_bp));

  if (mode == BreakpointMode::kLinear) {
    for (int i = 1; i <= n_bp; ++i)
      bps.push_back(range.lo + (range.hi - range.lo) * static_cast<float>(i) /
                                   static_cast<float>(entries));
    return bps;
  }

  // Exponential mode.
  if (range.lo > 0.0f) {
    const float ratio = range.hi / range.lo;
    for (int i = 1; i <= n_bp; ++i)
      bps.push_back(range.lo *
                    std::pow(ratio, static_cast<float>(i) / entries));
  } else if (range.hi <= 0.0f) {
    // Mirror of the positive case.
    const float lo = -range.hi, hi = -range.lo;
    const float safe_lo = std::max(lo, hi * 1e-6f);
    const float ratio = hi / safe_lo;
    for (int i = 1; i <= n_bp; ++i)
      bps.push_back(-safe_lo *
                    std::pow(ratio, static_cast<float>(n_bp - i + 1) / entries));
  } else {
    // Range spans zero: symmetric geometric spacing by magnitude with half
    // the breakpoints on each side and one at zero for odd counts.
    const float hi = std::max(std::abs(range.lo), std::abs(range.hi));
    const float lo = hi / std::pow(2.0f, static_cast<float>((n_bp + 1) / 2));
    const int per_side = n_bp / 2;
    for (int i = per_side; i >= 1; --i)
      bps.push_back(-lo * std::pow(hi / lo, static_cast<float>(i) / per_side));
    if (n_bp % 2) bps.push_back(0.0f);
    for (int i = 1; i <= per_side; ++i)
      bps.push_back(lo * std::pow(hi / lo, static_cast<float>(i) / per_side));
  }
  std::sort(bps.begin(), bps.end());
  bps.erase(std::unique(bps.begin(), bps.end()), bps.end());
  return bps;
}

namespace {

/// Least-squares straight line through samples of f on [a, b].
void fit_segment_ls(const std::function<float(float)>& f, float a, float b,
                    int samples, float& slope, float& intercept) {
  // Degenerate interval: constant function.
  if (!(a < b)) {
    slope = 0.0f;
    intercept = f(a);
    return;
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (int i = 0; i < samples; ++i) {
    const double x = a + (b - a) * (i + 0.5) / samples;
    const double y = f(static_cast<float>(x));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double n = samples;
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-30) {
    slope = 0.0f;
    intercept = static_cast<float>(sy / n);
    return;
  }
  slope = static_cast<float>((n * sxy - sx * sy) / denom);
  intercept = static_cast<float>((sy - slope * sx) / n);
}

void fit_segment_interp(const std::function<float(float)>& f, float a, float b,
                        float& slope, float& intercept) {
  if (!(a < b)) {
    slope = 0.0f;
    intercept = f(a);
    return;
  }
  const float fa = f(a), fb = f(b);
  slope = (fb - fa) / (b - a);
  intercept = fa - slope * a;
}

}  // namespace

PiecewiseLinear fit_fixed_breakpoint_lut(const std::function<float(float)>& f,
                                         InputRange range, int entries,
                                         BreakpointMode mode, SegmentFit fit,
                                         int samples_per_segment) {
  const std::vector<float> bps = make_breakpoints(range, entries, mode);
  const std::size_t segments = bps.size() + 1;
  std::vector<float> slopes(segments), intercepts(segments);

  for (std::size_t seg = 0; seg < segments; ++seg) {
    // Edge segments are fitted over their in-range portion; outside the
    // range the LUT extrapolates that line, same as NN-LUT does.
    const float a = (seg == 0) ? range.lo : bps[seg - 1];
    const float b = (seg == segments - 1) ? range.hi : bps[seg];
    if (fit == SegmentFit::kLeastSquares) {
      fit_segment_ls(f, a, b, samples_per_segment, slopes[seg],
                     intercepts[seg]);
    } else {
      fit_segment_interp(f, a, b, slopes[seg], intercepts[seg]);
    }
  }
  return PiecewiseLinear(bps, std::move(slopes), std::move(intercepts));
}

}  // namespace nnlut
