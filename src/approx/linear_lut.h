// Baseline LUT constructions with *fixed* breakpoints (Sec. 3.1 of the
// paper): Linear-mode (equally spaced) and Exponential-mode (geometric
// spacing, dense near the low end). Segment parameters come from classic
// curve fitting — per-segment least squares on the first-order polynomial —
// or from endpoint interpolation. Unlike NN-LUT these cannot move their
// breakpoints, which is exactly the weakness Table 2(a) exposes.
#pragma once

#include <functional>

#include "core/piecewise_linear.h"
#include "numerics/math.h"

namespace nnlut {

enum class BreakpointMode {
  kLinear,       // equally spaced over the range
  kExponential,  // geometric spacing: short intervals at low values
};

enum class SegmentFit {
  kLeastSquares,   // first-order polynomial fit per segment (paper's choice)
  kInterpolation,  // straight line through the segment endpoints
};

/// Place `entries - 1` breakpoints over `range` in the given mode.
/// Exponential mode requires a positive lower bound for pure geometric
/// spacing; ranges spanning zero use symmetric geometric spacing by
/// magnitude (the NVDLA-style layout).
std::vector<float> make_breakpoints(InputRange range, int entries,
                                    BreakpointMode mode);

/// Build a baseline LUT for `f` on `range`.
PiecewiseLinear fit_fixed_breakpoint_lut(
    const std::function<float(float)>& f, InputRange range, int entries,
    BreakpointMode mode = BreakpointMode::kLinear,
    SegmentFit fit = SegmentFit::kLeastSquares, int samples_per_segment = 64);

/// Convenience: the paper's "Linear-LUT" baseline (linear breakpoints,
/// first-order least-squares curve fitting).
inline PiecewiseLinear fit_linear_lut(const std::function<float(float)>& f,
                                      InputRange range, int entries = 16) {
  return fit_fixed_breakpoint_lut(f, range, entries, BreakpointMode::kLinear,
                                  SegmentFit::kLeastSquares);
}

}  // namespace nnlut
