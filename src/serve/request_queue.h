// Thread-safe submission queue for the serving subsystem. Clients enqueue
// tokenized requests (a BatchInput of one or more fixed-length sequences)
// and receive a PendingResult — a promise/future pair over the logits
// Tensor with cancellation and per-request error propagation. The batcher's
// scheduler thread is the single consumer: it blocks on wait_drain() until
// work arrives, a flush deadline passes, or the queue closes.
//
// Lifecycle of a request:
//   submit() -> kQueued -> claim() by the scheduler -> kRunning
//            -> set_value / set_error -> done (get() returns / throws)
// cancel() succeeds only in kQueued: the result is rejected immediately and
// the scheduler discards the submission when it drains it. A request that
// already entered a batch runs to completion.
//
// Admission control: an AdmissionConfig bounds the queue depth. At the
// bound, ShedPolicy::kRejectNew refuses the incoming request and
// kRejectOldest evicts the oldest queued request to admit the new one;
// either way the shed request's PendingResult resolves with
// ServerOverloaded, so under overload every submission still resolves as
// exactly one of: completed, failed, cancelled, or ServerOverloaded.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/thread_annotations.h"
#include "serve/stats.h"
#include "tensor/tensor.h"
#include "transformer/encoder.h"

namespace nnlut::serve {

namespace detail {

/// Shared promise/future state for one request. All transitions happen
/// under `mu`; waiters block on `cv`.
class ResultState {
 public:
  enum class Phase { kQueued, kRunning, kDone };

  /// Scheduler side: transition kQueued -> kRunning. Returns false if the
  /// request was cancelled (already done) and must be skipped.
  bool claim();

  /// Fulfil with logits / reject with an error. Reject works from any
  /// not-done phase (cancel rejects a queued request, the batcher rejects a
  /// running one).
  void set_value(Tensor logits);
  void set_error(std::exception_ptr err);

  /// Admission-control eviction: reject with `err` only if the request is
  /// still queued. Returns false when it already resolved (i.e. was
  /// cancelled) so the caller can account for it correctly.
  bool reject_if_queued(std::exception_ptr err);

  /// Client side.
  bool cancel();  // true if the request was still queued and is now rejected
  void wait() const;
  bool wait_for(std::chrono::microseconds timeout) const;
  bool done() const;
  /// Register `cb` to run EXACTLY ONCE when the request resolves — by
  /// set_value, set_error, reject_if_queued (eviction / shutdown drain) or
  /// cancel — on whichever thread performs the resolving transition. If the
  /// request already resolved, `cb` runs immediately on the calling thread.
  /// Invariants the network front-end leans on:
  ///   - `cb` is invoked OUTSIDE the state's mutex, so it may take its own
  ///     locks, call done()/take(), or re-enter the queue freely.
  ///   - `cb` is destroyed right after it runs (its captures are released),
  ///     so a callback holding a weak_ptr to its submitter neither keeps
  ///     the submitter alive nor touches it after expiry — the resolved-
  ///     after-submitter-gone contract pinned by serve_test.
  /// At most one callback per request: a second registration throws
  /// std::logic_error; a null callback throws std::invalid_argument.
  void on_done(std::function<void()> cb);
  /// Blocks until done; throws the stored error if rejected. The logits
  /// move out exactly once: a second take() (from this handle or any copy
  /// sharing the state) throws std::logic_error instead of returning a
  /// moved-from tensor. Error results stay rethrowable any number of times.
  Tensor take();

 private:
  mutable Mutex mu_;
  mutable CondVar cv_;
  Phase phase_ NNLUT_GUARDED_BY(mu_) = Phase::kQueued;
  bool taken_ NNLUT_GUARDED_BY(mu_) = false;  // value moved out by take()
  Tensor value_ NNLUT_GUARDED_BY(mu_);
  std::exception_ptr error_ NNLUT_GUARDED_BY(mu_);
  /// Pending completion hook; moved out (captures released) by the
  /// resolving transition and invoked after mu_ is dropped.
  std::function<void()> done_cb_ NNLUT_GUARDED_BY(mu_);
  bool done_cb_registered_ NNLUT_GUARDED_BY(mu_) = false;
};

}  // namespace detail

/// Raised into a PendingResult when the request is cancelled or the queue
/// shuts down before execution.
class RequestCancelled : public std::runtime_error {
 public:
  explicit RequestCancelled(const std::string& what)
      : std::runtime_error(what) {}
};

/// Raised into a PendingResult shed by admission control: the queue was at
/// its depth bound and the request was either refused at submit
/// (ShedPolicy::kRejectNew) or evicted while queued (kRejectOldest).
class ServerOverloaded : public std::runtime_error {
 public:
  explicit ServerOverloaded(const std::string& what)
      : std::runtime_error(what) {}
};

/// What to shed when a bounded queue is full.
enum class ShedPolicy {
  kRejectNew,     // refuse the incoming request (favors queued work)
  kRejectOldest,  // evict the oldest queued request (favors fresh work)
};

/// Per-slot admission control, enforced inside RequestQueue::submit under
/// the queue mutex so depth accounting and shedding are atomic.
struct AdmissionConfig {
  /// Maximum requests queued (not yet drained by the scheduler);
  /// 0 = unbounded.
  std::size_t max_queue_depth = 0;
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
};

/// Client-side handle on a submitted request. Copyable (copies share the
/// underlying state); default-constructed handles are invalid.
class PendingResult {
 public:
  PendingResult() = default;

  bool valid() const { return state_ != nullptr; }
  /// Result (or error) is available; get() will not block.
  bool ready() const;
  void wait() const;
  /// False on timeout.
  bool wait_for(std::chrono::microseconds timeout) const;
  /// Blocks until done, then returns the logits or rethrows the request's
  /// error (std::out_of_range from validation, RequestCancelled,
  /// ServerOverloaded, ...). Moves the tensor out — the result is one-shot:
  /// a second get() on this handle (or on any copy, since copies share the
  /// state) throws std::logic_error rather than silently returning a
  /// moved-from tensor. A rejected request's error, by contrast, rethrows
  /// on every get().
  Tensor get();
  /// Best-effort cancel: true if the request had not started executing and
  /// is now rejected with RequestCancelled; false if it already ran (its
  /// result stays available) or already finished.
  bool cancel();
  /// Async completion: run `cb` exactly once when the request resolves
  /// (immediately, on this thread, if it already has). See
  /// detail::ResultState::on_done for the invocation contract. The network
  /// front-end uses this to route results back to the owning connection
  /// without a blocked thread per request. Throws std::logic_error on an
  /// invalid handle or a second registration.
  void on_ready(std::function<void()> cb);

 private:
  friend class RequestQueue;
  explicit PendingResult(std::shared_ptr<detail::ResultState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::ResultState> state_;
};

/// One queue entry, handed to the batcher by wait_drain().
struct Submission {
  std::shared_ptr<detail::ResultState> state;
  transformer::BatchInput input;
  std::chrono::steady_clock::time_point enqueued;
  /// Stamped by the batcher when it drains this entry; epoch (i.e. unset)
  /// until then. Feeds the queue-wait stage histogram and trace spans.
  std::chrono::steady_clock::time_point dequeued{};
  /// PROCESS-GLOBAL request id (atomic counter across every queue), so
  /// trace spans from different threads — and different model slots —
  /// correlate unambiguously by id.
  std::uint64_t id = 0;
};

/// How one submit() resolved at the queue, for admission accounting.
struct SubmitOutcome {
  enum class Status {
    kAccepted,          // queued; will resolve completed/failed/cancelled
    kRejectedClosed,    // queue closed: handle carries RequestCancelled
    kRejectedOverload,  // depth bound + kRejectNew: carries ServerOverloaded
  };
  Status status = Status::kAccepted;
  /// kRejectOldest only: queued requests evicted (rejected with
  /// ServerOverloaded) to admit this one.
  std::size_t evicted_overload = 0;
  /// Evicted entries found already cancelled — they resolve as cancelled,
  /// not as overload sheds, and the scheduler will never drain them.
  std::size_t evicted_cancelled = 0;
};

class RequestQueue {
 public:
  /// `admission` bounds the queue depth (0 = unbounded) and picks the shed
  /// policy applied at the bound. `ledger` (optional, must outlive the
  /// queue) receives ALL submit-side accounting — admitted / overload
  /// rejects / shutdown rejects / kRejectOldest evictions — recorded under
  /// the queue mutex, atomically with the queue operation itself. That
  /// ordering guarantees (a) a request's record_admitted always precedes
  /// any record for its later fate (done, cancel drain, eviction), so
  /// counters can never transiently underflow, and (b) a client observing
  /// its rejection or eviction always finds it already counted in a stats
  /// snapshot. Validation rejects never reach the queue; the caller
  /// records those itself.
  explicit RequestQueue(AdmissionConfig admission = {},
                        StatsLedger* ledger = nullptr);

  /// Enqueue a request. After close() the request is rejected immediately
  /// (the returned handle's get() throws RequestCancelled); at the depth
  /// bound, admission control sheds per the policy (see SubmitOutcome).
  /// `outcome`, when given, reports what happened so callers can keep
  /// exact admission counters.
  PendingResult submit(transformer::BatchInput in,
                       SubmitOutcome* outcome = nullptr);

  /// Reject-and-enqueue-nothing variant: returns a handle already rejected
  /// with `err`. Used by the server front-end for failed validation.
  static PendingResult rejected(std::exception_ptr err);

  /// Stop accepting submissions and wake the consumer. Idempotent.
  void close();
  bool closed() const;

  /// Requests currently queued (not yet drained).
  std::size_t depth() const;
  /// High-water mark of depth() over the queue's lifetime.
  std::size_t peak_depth() const;

  /// Consistent {depth, peak} pair taken under ONE lock acquisition.
  /// Separate depth() + peak_depth() calls can interleave with a submit and
  /// report depth > peak — an impossible state no monitoring math should
  /// ever see. Snapshot consumers (Engine::model_stats/stats) use this.
  struct Depths {
    std::size_t depth = 0;
    std::size_t peak = 0;
  };
  Depths depths() const;

  const AdmissionConfig& admission() const { return admission_; }

  /// Consumer side: block until the queue is non-empty, `deadline` passes,
  /// or close() is called; then move out everything queued. May return empty
  /// (timeout or close with nothing pending).
  std::vector<Submission> wait_drain(
      std::optional<std::chrono::steady_clock::time_point> deadline);

  /// Allocation-recycling variant: clears `out` and moves everything queued
  /// into it, reusing its capacity. The batcher drains into one long-lived
  /// vector so the steady-state scheduler cycle performs no heap allocation
  /// of its own (the queue's deque nodes are submit-side and out of scope).
  void wait_drain(std::optional<std::chrono::steady_clock::time_point> deadline,
                  std::vector<Submission>& out);

 private:
  const AdmissionConfig admission_;
  StatsLedger* const ledger_;  // eviction accounting only; may be null
  mutable Mutex mu_;
  mutable CondVar cv_;
  std::deque<Submission> items_ NNLUT_GUARDED_BY(mu_);
  bool closed_ NNLUT_GUARDED_BY(mu_) = false;
  std::size_t peak_depth_ NNLUT_GUARDED_BY(mu_) = 0;
};

}  // namespace nnlut::serve
