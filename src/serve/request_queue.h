// Thread-safe submission queue for the serving subsystem. Clients enqueue
// tokenized requests (a BatchInput of one or more fixed-length sequences)
// and receive a PendingResult — a promise/future pair over the logits
// Tensor with cancellation and per-request error propagation. The batcher's
// scheduler thread is the single consumer: it blocks on wait_drain() until
// work arrives, a flush deadline passes, or the queue closes.
//
// Lifecycle of a request:
//   submit() -> kQueued -> claim() by the scheduler -> kRunning
//            -> set_value / set_error -> done (get() returns / throws)
// cancel() succeeds only in kQueued: the result is rejected immediately and
// the scheduler discards the submission when it drains it. A request that
// already entered a batch runs to completion.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "transformer/encoder.h"

namespace nnlut::serve {

namespace detail {

/// Shared promise/future state for one request. All transitions happen
/// under `mu`; waiters block on `cv`.
class ResultState {
 public:
  enum class Phase { kQueued, kRunning, kDone };

  /// Scheduler side: transition kQueued -> kRunning. Returns false if the
  /// request was cancelled (already done) and must be skipped.
  bool claim();

  /// Fulfil with logits / reject with an error. Reject works from any
  /// not-done phase (cancel rejects a queued request, the batcher rejects a
  /// running one).
  void set_value(Tensor logits);
  void set_error(std::exception_ptr err);

  /// Client side.
  bool cancel();  // true if the request was still queued and is now rejected
  void wait() const;
  bool wait_for(std::chrono::microseconds timeout) const;
  bool done() const;
  Tensor take();  // blocks until done; throws the stored error if rejected

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  Phase phase_ = Phase::kQueued;
  Tensor value_;
  std::exception_ptr error_;
};

}  // namespace detail

/// Raised into a PendingResult when the request is cancelled or the queue
/// shuts down before execution.
class RequestCancelled : public std::runtime_error {
 public:
  explicit RequestCancelled(const std::string& what)
      : std::runtime_error(what) {}
};

/// Client-side handle on a submitted request. Copyable (copies share the
/// underlying state); default-constructed handles are invalid.
class PendingResult {
 public:
  PendingResult() = default;

  bool valid() const { return state_ != nullptr; }
  /// Result (or error) is available; get() will not block.
  bool ready() const;
  void wait() const;
  /// False on timeout.
  bool wait_for(std::chrono::microseconds timeout) const;
  /// Blocks until done, then returns the logits or rethrows the request's
  /// error (std::out_of_range from validation, RequestCancelled, ...).
  /// Moves the tensor out: call once.
  Tensor get();
  /// Best-effort cancel: true if the request had not started executing and
  /// is now rejected with RequestCancelled; false if it already ran (its
  /// result stays available) or already finished.
  bool cancel();

 private:
  friend class RequestQueue;
  explicit PendingResult(std::shared_ptr<detail::ResultState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::ResultState> state_;
};

/// One queue entry, handed to the batcher by wait_drain().
struct Submission {
  std::shared_ptr<detail::ResultState> state;
  transformer::BatchInput input;
  std::chrono::steady_clock::time_point enqueued;
  std::uint64_t id = 0;  // submission order, for diagnostics
};

class RequestQueue {
 public:
  /// Enqueue a request. After close() the request is rejected immediately
  /// (the returned handle's get() throws RequestCancelled); `accepted`, when
  /// given, reports which of the two happened so callers can keep accurate
  /// admission counters.
  PendingResult submit(transformer::BatchInput in, bool* accepted = nullptr);

  /// Reject-and-enqueue-nothing variant: returns a handle already rejected
  /// with `err`. Used by the server front-end for failed validation.
  static PendingResult rejected(std::exception_ptr err);

  /// Stop accepting submissions and wake the consumer. Idempotent.
  void close();
  bool closed() const;

  /// Requests currently queued (not yet drained).
  std::size_t depth() const;
  /// High-water mark of depth() over the queue's lifetime.
  std::size_t peak_depth() const;

  /// Consumer side: block until the queue is non-empty, `deadline` passes,
  /// or close() is called; then move out everything queued. May return empty
  /// (timeout or close with nothing pending).
  std::vector<Submission> wait_drain(
      std::optional<std::chrono::steady_clock::time_point> deadline);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Submission> items_;
  bool closed_ = false;
  std::uint64_t next_id_ = 0;
  std::size_t peak_depth_ = 0;
};

}  // namespace nnlut::serve
