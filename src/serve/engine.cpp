#include "serve/engine.h"

#include <algorithm>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "core/lut_kernel.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace nnlut::serve {

namespace {
// Stored and effective config must agree: the batcher treats max_batch 0
// as 1, so normalize before the slot keeps its copy.
SlotConfig normalized(SlotConfig cfg) {
  if (cfg.max_batch == 0) cfg.max_batch = 1;
  return cfg;
}

// LatencyHistogram -> pull-time registry snapshot. 31 finite upper edges
// (2 µs .. 2^31 µs); the last log2 bucket becomes the +Inf overflow entry.
obs::HistogramSnapshot histogram_snapshot(const LatencyHistogram& h) {
  obs::HistogramSnapshot out;
  out.upper_bounds.reserve(LatencyHistogram::kBuckets - 1);
  out.counts.reserve(LatencyHistogram::kBuckets);
  for (std::size_t b = 0; b + 1 < LatencyHistogram::kBuckets; ++b)
    out.upper_bounds.push_back(LatencyHistogram::bucket_upper_us(b));
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b)
    out.counts.push_back(h.bucket_count(b));
  out.sum = static_cast<double>(h.sum_us());
  out.count = h.count();
  return out;
}
}  // namespace

Engine::ModelSlot::ModelSlot(std::string id_,
                             const transformer::TaskModel& model_in,
                             transformer::NonlinearitySet& nl, SlotConfig cfg_)
    : id(std::move(id_)),
      cfg(normalized(cfg_)),
      model(model_in, nl, cfg_.matmul),
      queue(cfg_.admission, &ledger),
      pool(cfg.use_pool ? std::make_unique<runtime::BufferPool>() : nullptr),
      ws(pool.get()) {
  BatcherConfig bcfg;
  bcfg.max_batch = cfg.max_batch;
  bcfg.max_wait = cfg.max_wait;
  bcfg.pool = pool.get();
  // Linux truncates thread names at 15 chars; when the canonical
  // "nnlut-sched-<model>" would lose the model id to truncation, fall back
  // to the compact "ns-<model>" so concurrent slots stay distinguishable
  // in profiles and TSan reports.
  bcfg.thread_name = "nnlut-sched-" + id;
  if (bcfg.thread_name.size() > 15) bcfg.thread_name = "ns-" + id;
  // The slot's scheduler thread is the only caller of its model (and of the
  // slot's workspace); N slots mean N orchestrators, admitted FIFO-fairly
  // by the process pool.
  const bool pooled = cfg.use_pool;
  batcher = std::make_unique<Batcher>(
      queue,
      [this, pooled](const transformer::BatchInput& in) {
        return pooled ? model.logits(in, ws) : model.logits(in);
      },
      std::move(bcfg), &ledger);
}

Engine::Engine(EngineConfig cfg) : cfg_(cfg) {
  runtime::set_runtime_config({cfg_.threads, cfg_.simd});
  register_process_metrics();
}

Engine::~Engine() { shutdown(); }

void Engine::register_model(const std::string& model_id,
                            const transformer::TaskModel& model,
                            transformer::NonlinearitySet& nl, SlotConfig cfg) {
  if (model_id.empty())
    throw std::invalid_argument("Engine::register_model: empty model id");
  WriterLock lk(mu_);
  if (shut_down_)
    throw std::logic_error("Engine::register_model: engine is shut down");
  if (slots_.count(model_id) != 0)
    throw std::invalid_argument("Engine::register_model: duplicate model id '" +
                                model_id + "'");
  auto [it, inserted] = slots_.emplace(
      model_id, std::make_unique<ModelSlot>(model_id, model, nl, cfg));
  order_.push_back(model_id);
  register_slot_metrics(it->second.get());
}

void Engine::register_slot_metrics(ModelSlot* slot) {
  using Labels = obs::MetricsRegistry::Labels;
  const std::string& id = slot->id;
  const auto snap = [slot] {
    const RequestQueue::Depths d = slot->queue.depths();
    if (slot->pool) {
      const runtime::PoolStats ps = slot->pool->stats();
      return slot->ledger.snapshot(d.depth, d.peak, &ps);
    }
    return slot->ledger.snapshot(d.depth, d.peak);
  };

  struct CounterField {
    const char* label;
    std::uint64_t SlotStats::*field;
  };
  static const CounterField kOutcomes[] = {
      {"completed", &SlotStats::completed},
      {"failed", &SlotStats::failed},
      {"cancelled", &SlotStats::cancelled},
  };
  for (const CounterField& o : kOutcomes)
    metrics_.add_counter("nnlut_requests_total",
                         "Requests resolved, by final outcome.",
                         Labels{{"model", id}, {"outcome", o.label}},
                         [snap, f = o.field] { return snap().*f; });
  static const CounterField kReasons[] = {
      {"validation", &SlotStats::rejected_validation},
      {"overload", &SlotStats::rejected_overload},
      {"shutdown", &SlotStats::rejected_shutdown},
  };
  for (const CounterField& r : kReasons)
    metrics_.add_counter("nnlut_rejected_total",
                         "Requests refused, by rejection reason.",
                         Labels{{"model", id}, {"reason", r.label}},
                         [snap, f = r.field] { return snap().*f; });
  metrics_.add_counter("nnlut_submitted_total",
                       "Requests admitted into the slot's queue.",
                       Labels{{"model", id}},
                       [snap] { return snap().submitted; });
  metrics_.add_counter("nnlut_batches_total",
                       "Model invocations (merged batches).",
                       Labels{{"model", id}}, [snap] { return snap().batches; });
  metrics_.add_gauge("nnlut_queue_depth",
                     "Requests queued (admitted, not yet drained).",
                     Labels{{"model", id}}, [slot] {
                       return static_cast<double>(slot->queue.depths().depth);
                     });
  metrics_.add_gauge("nnlut_queue_peak_depth",
                     "High-water mark of nnlut_queue_depth.",
                     Labels{{"model", id}}, [slot] {
                       return static_cast<double>(slot->queue.depths().peak);
                     });

  metrics_.add_counter("nnlut_pool_alloc_total",
                       "Buffer-pool acquisitions that hit the heap (misses). "
                       "Zero delta over a warmed window is the zero-alloc "
                       "steady-state contract.",
                       Labels{{"model", id}},
                       [snap] { return snap().pool_alloc_count; });
  metrics_.add_counter("nnlut_pool_reuse_total",
                       "Buffer-pool acquisitions served from free lists.",
                       Labels{{"model", id}},
                       [snap] { return snap().pool_reuse_count; });
  metrics_.add_gauge("nnlut_pool_outstanding",
                     "Pool slabs currently checked out.", Labels{{"model", id}},
                     [snap] {
                       return static_cast<double>(snap().pool_outstanding);
                     });
  metrics_.add_gauge("nnlut_pool_bytes_live",
                     "Outstanding + cached pool bytes.", Labels{{"model", id}},
                     [snap] {
                       return static_cast<double>(snap().pool_bytes_live);
                     });
  metrics_.add_gauge("nnlut_pool_bytes_peak",
                     "High-water mark of nnlut_pool_bytes_live.",
                     Labels{{"model", id}}, [snap] {
                       return static_cast<double>(snap().pool_bytes_peak);
                     });

  struct Stage {
    const char* name;
    LatencyHistogram SlotStats::*hist;
  };
  static const Stage kStages[] = {
      {"queue_wait", &SlotStats::hist_queue_wait},
      {"batch_wait", &SlotStats::hist_batch_wait},
      {"exec", &SlotStats::hist_exec},
      {"resolve", &SlotStats::hist_resolve},
  };
  for (const Stage& stage : kStages)
    metrics_.add_histogram(
        "nnlut_stage_latency_us",
        "Per-stage request latency (µs, log2 buckets): queue_wait = submit "
        "to drain, batch_wait = drain to execution, exec = model "
        "invocation, resolve = execution to client handoff.",
        Labels{{"model", id}, {"stage", stage.name}},
        [snap, hist = stage.hist] { return histogram_snapshot(snap().*hist); });
  metrics_.add_histogram(
      "nnlut_request_latency_us",
      "End-to-end request latency (µs, log2 buckets), submit to resolve.",
      Labels{{"model", id}},
      [snap] { return histogram_snapshot(snap().hist_total); });
}

void Engine::register_process_metrics() {
  using Labels = obs::MetricsRegistry::Labels;
  metrics_.add_counter(
      "nnlut_rejected_unknown_model_total",
      "submit() calls naming a model id that was never registered.",
      Labels{}, [this]() -> std::uint64_t {
        MutexLock lk(unknown_mu_);
        return rejected_unknown_model_;
      });
  metrics_.add_counter("nnlut_plan_cache_hits_total",
                       "LUT plan-cache lookups that reused a live plan.",
                       Labels{},
                       [] { return std::uint64_t{plan_cache_stats().hits}; });
  metrics_.add_counter("nnlut_plan_cache_misses_total",
                       "LUT plan-cache lookups that compiled a new plan.",
                       Labels{},
                       [] { return std::uint64_t{plan_cache_stats().misses}; });
  metrics_.add_gauge("nnlut_plan_cache_live", "Cached plans still referenced.",
                     Labels{}, [] {
                       return static_cast<double>(plan_cache_stats().live);
                     });
  metrics_.add_gauge("nnlut_plan_cache_entries",
                     "Plan-cache entries held (incl. expired awaiting sweep).",
                     Labels{}, [] {
                       return static_cast<double>(plan_cache_stats().cached);
                     });
  metrics_.add_counter(
      "nnlut_threadpool_jobs_total",
      "Parallel jobs dispatched through the process thread pool.", Labels{},
      [] { return runtime::thread_pool_stats().jobs; });
  metrics_.add_counter("nnlut_threadpool_inline_runs_total",
                       "Pool run() calls that executed inline on the caller.",
                       Labels{},
                       [] { return runtime::thread_pool_stats().inline_runs; });
  metrics_.add_counter("nnlut_threadpool_shards_total",
                       "Shard executions across all lanes (lane 0 included).",
                       Labels{},
                       [] { return runtime::thread_pool_stats().shards; });
  metrics_.add_gauge("nnlut_threadpool_lanes",
                     "Execution lanes of the current runtime config.",
                     Labels{}, [] {
                       return static_cast<double>(
                           runtime::thread_pool_stats().lanes);
                     });
  metrics_.add_gauge("nnlut_threadpool_busy_lanes",
                     "Lanes executing a shard at scrape time (occupancy).",
                     Labels{}, [] {
                       return static_cast<double>(
                           runtime::thread_pool_stats().busy_lanes);
                     });
  metrics_.add_counter(
      "nnlut_trace_events_recorded_total",
      "Trace events pushed this tracing session (retained + overwritten).",
      Labels{},
      [] { return obs::TraceRecorder::instance().stats().recorded; });
  metrics_.add_counter(
      "nnlut_trace_events_dropped_total",
      "Trace events overwritten by ring wraparound this session (exact).",
      Labels{},
      [] { return obs::TraceRecorder::instance().stats().dropped; });
  metrics_.add_gauge("nnlut_trace_threads",
                     "Threads with a trace ring this session.", Labels{}, [] {
                       return static_cast<double>(
                           obs::TraceRecorder::instance().stats().threads);
                     });
}

Engine::ModelSlot* Engine::find_slot(std::string_view model_id) const {
  ReaderLock lk(mu_);
  auto it = slots_.find(model_id);
  return it == slots_.end() ? nullptr : it->second.get();
}

PendingResult Engine::submit(std::string_view model_id,
                             transformer::BatchInput in) {
  ModelSlot* slot = find_slot(model_id);
  if (slot == nullptr) {
    {
      MutexLock lk(unknown_mu_);
      ++rejected_unknown_model_;
    }
    return RequestQueue::rejected(std::make_exception_ptr(std::out_of_range(
        "Engine::submit: unknown model '" + std::string(model_id) + "'")));
  }
  // Validation first, so a malformed request never occupies a queue slot
  // and never triggers shedding.
  try {
    if (in.batch == 0 || in.seq == 0)
      throw std::invalid_argument("serve: empty request (batch or seq is 0)");
    slot->model.validate(in);
  } catch (...) {
    slot->ledger.record_rejected_validation();
    return RequestQueue::rejected(std::current_exception());
  }
  // The queue records the submit outcome (admitted / overload / shutdown)
  // in the slot's ledger itself, under the queue mutex, so accounting is
  // atomic with the queue operation.
  return slot->queue.submit(std::move(in));
}

bool Engine::has_model(std::string_view model_id) const {
  return find_slot(model_id) != nullptr;
}

bool Engine::overloaded(std::string_view model_id) const {
  ModelSlot* slot = find_slot(model_id);
  if (slot == nullptr) return false;
  const AdmissionConfig& adm = slot->queue.admission();
  return adm.max_queue_depth > 0 &&
         slot->queue.depth() >= adm.max_queue_depth;
}

std::vector<std::string> Engine::model_ids() const {
  ReaderLock lk(mu_);
  return order_;
}

const SlotConfig& Engine::model_config(std::string_view model_id) const {
  ModelSlot* slot = find_slot(model_id);
  if (slot == nullptr)
    throw std::out_of_range("Engine::model_config: unknown model '" +
                            std::string(model_id) + "'");
  return slot->cfg;
}

SlotStats Engine::model_stats(std::string_view model_id) const {
  ModelSlot* slot = find_slot(model_id);
  if (slot == nullptr)
    throw std::out_of_range("Engine::model_stats: unknown model '" +
                            std::string(model_id) + "'");
  // depths() reads {depth, peak} under one lock: two separate depth() /
  // peak_depth() calls can interleave with a submit and snapshot an
  // impossible depth > peak.
  const RequestQueue::Depths d = slot->queue.depths();
  if (slot->pool) {
    const runtime::PoolStats ps = slot->pool->stats();
    return slot->ledger.snapshot(d.depth, d.peak, &ps);
  }
  return slot->ledger.snapshot(d.depth, d.peak);
}

EngineStats Engine::stats() const {
  // Snapshot the slot list under mu_, then each ledger under its own lock:
  // per-slot snapshots are exact, the cross-slot view is a near-instant.
  std::vector<ModelSlot*> slots;
  {
    ReaderLock lk(mu_);
    slots.reserve(order_.size());
    for (const std::string& id : order_) slots.push_back(slots_.at(id).get());
  }
  EngineStats out;
  for (ModelSlot* slot : slots) {
    SlotStats s;
    const RequestQueue::Depths d = slot->queue.depths();
    if (slot->pool) {
      const runtime::PoolStats ps = slot->pool->stats();
      s = slot->ledger.snapshot(d.depth, d.peak, &ps);
    } else {
      s = slot->ledger.snapshot(d.depth, d.peak);
    }
    out.total.submitted += s.submitted;
    out.total.rejected += s.rejected;
    out.total.rejected_validation += s.rejected_validation;
    out.total.rejected_overload += s.rejected_overload;
    out.total.rejected_shutdown += s.rejected_shutdown;
    out.total.completed += s.completed;
    out.total.failed += s.failed;
    out.total.cancelled += s.cancelled;
    out.total.batches += s.batches;
    out.total.pool_alloc_count += s.pool_alloc_count;
    out.total.pool_reuse_count += s.pool_reuse_count;
    out.total.pool_outstanding += s.pool_outstanding;
    out.total.pool_bytes_live += s.pool_bytes_live;
    // Like peak_queue_depth: per-slot peaks need not coincide in time, so
    // report the worst single slot rather than a fictitious sum.
    out.total.pool_bytes_peak =
        std::max(out.total.pool_bytes_peak, s.pool_bytes_peak);
    out.total.queue_depth += s.queue_depth;
    // A high-water mark is not summable across slots (their peaks need not
    // coincide in time): report the worst single-slot peak, like latency.
    out.total.peak_queue_depth =
        std::max(out.total.peak_queue_depth, s.peak_queue_depth);
    out.total.p50_latency_us = std::max(out.total.p50_latency_us,
                                        s.p50_latency_us);
    out.total.p95_latency_us = std::max(out.total.p95_latency_us,
                                        s.p95_latency_us);
    // Stage histograms aggregate exactly (bucket-wise sums), unlike the
    // quantile fields above; the total's stage snapshots are recomputed
    // from the merged histograms below.
    out.total.hist_queue_wait.merge(s.hist_queue_wait);
    out.total.hist_batch_wait.merge(s.hist_batch_wait);
    out.total.hist_exec.merge(s.hist_exec);
    out.total.hist_resolve.merge(s.hist_resolve);
    out.total.hist_total.merge(s.hist_total);
    out.models.emplace(slot->id, std::move(s));
  }
  out.total.stage_queue_wait = make_stage_snapshot(out.total.hist_queue_wait);
  out.total.stage_batch_wait = make_stage_snapshot(out.total.hist_batch_wait);
  out.total.stage_exec = make_stage_snapshot(out.total.hist_exec);
  out.total.stage_resolve = make_stage_snapshot(out.total.hist_resolve);
  // Aggregate occupancy: batch-weighted mean across slots.
  if (out.total.batches > 0) {
    double requests = 0.0, sequences = 0.0;
    for (const auto& kv : out.models) {
      requests += kv.second.mean_batch_requests *
                  static_cast<double>(kv.second.batches);
      sequences += kv.second.mean_batch_occupancy *
                   static_cast<double>(kv.second.batches);
    }
    out.total.mean_batch_requests =
        requests / static_cast<double>(out.total.batches);
    out.total.mean_batch_occupancy =
        sequences / static_cast<double>(out.total.batches);
  }
  {
    MutexLock lk(unknown_mu_);
    out.rejected_unknown_model = rejected_unknown_model_;
  }
  return out;
}

void Engine::shutdown() {
  // Mark shut down, then stop slots outside mu_: Batcher::stop joins a
  // scheduler thread that may be mid-batch, and submit() must stay able to
  // look up slots (and get queue-closed rejections) meanwhile.
  std::vector<ModelSlot*> slots;
  {
    WriterLock lk(mu_);
    shut_down_ = true;
    for (const std::string& id : order_) slots.push_back(slots_.at(id).get());
  }
  for (ModelSlot* slot : slots)
    if (slot->batcher) slot->batcher->stop();
}

}  // namespace nnlut::serve
