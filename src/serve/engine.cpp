#include "serve/engine.h"

#include <algorithm>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "runtime/thread_pool.h"

namespace nnlut::serve {

namespace {
// Stored and effective config must agree: the batcher treats max_batch 0
// as 1, so normalize before the slot keeps its copy.
SlotConfig normalized(SlotConfig cfg) {
  if (cfg.max_batch == 0) cfg.max_batch = 1;
  return cfg;
}
}  // namespace

Engine::ModelSlot::ModelSlot(std::string id_,
                             const transformer::TaskModel& model_in,
                             transformer::NonlinearitySet& nl, SlotConfig cfg_)
    : id(std::move(id_)),
      cfg(normalized(cfg_)),
      model(model_in, nl, cfg_.matmul),
      queue(cfg_.admission, &ledger),
      pool(cfg.use_pool ? std::make_unique<runtime::BufferPool>() : nullptr),
      ws(pool.get()) {
  BatcherConfig bcfg;
  bcfg.max_batch = cfg.max_batch;
  bcfg.max_wait = cfg.max_wait;
  bcfg.pool = pool.get();
  // Linux truncates thread names at 15 chars; when the canonical
  // "nnlut-sched-<model>" would lose the model id to truncation, fall back
  // to the compact "ns-<model>" so concurrent slots stay distinguishable
  // in profiles and TSan reports.
  bcfg.thread_name = "nnlut-sched-" + id;
  if (bcfg.thread_name.size() > 15) bcfg.thread_name = "ns-" + id;
  // The slot's scheduler thread is the only caller of its model (and of the
  // slot's workspace); N slots mean N orchestrators, admitted FIFO-fairly
  // by the process pool.
  const bool pooled = cfg.use_pool;
  batcher = std::make_unique<Batcher>(
      queue,
      [this, pooled](const transformer::BatchInput& in) {
        return pooled ? model.logits(in, ws) : model.logits(in);
      },
      std::move(bcfg), &ledger);
}

Engine::Engine(EngineConfig cfg) : cfg_(cfg) {
  runtime::set_runtime_config({cfg_.threads, cfg_.simd});
}

Engine::~Engine() { shutdown(); }

void Engine::register_model(const std::string& model_id,
                            const transformer::TaskModel& model,
                            transformer::NonlinearitySet& nl, SlotConfig cfg) {
  if (model_id.empty())
    throw std::invalid_argument("Engine::register_model: empty model id");
  WriterLock lk(mu_);
  if (shut_down_)
    throw std::logic_error("Engine::register_model: engine is shut down");
  if (slots_.count(model_id) != 0)
    throw std::invalid_argument("Engine::register_model: duplicate model id '" +
                                model_id + "'");
  slots_.emplace(model_id,
                 std::make_unique<ModelSlot>(model_id, model, nl, cfg));
  order_.push_back(model_id);
}

Engine::ModelSlot* Engine::find_slot(std::string_view model_id) const {
  ReaderLock lk(mu_);
  auto it = slots_.find(model_id);
  return it == slots_.end() ? nullptr : it->second.get();
}

PendingResult Engine::submit(std::string_view model_id,
                             transformer::BatchInput in) {
  ModelSlot* slot = find_slot(model_id);
  if (slot == nullptr) {
    {
      MutexLock lk(unknown_mu_);
      ++rejected_unknown_model_;
    }
    return RequestQueue::rejected(std::make_exception_ptr(std::out_of_range(
        "Engine::submit: unknown model '" + std::string(model_id) + "'")));
  }
  // Validation first, so a malformed request never occupies a queue slot
  // and never triggers shedding.
  try {
    if (in.batch == 0 || in.seq == 0)
      throw std::invalid_argument("serve: empty request (batch or seq is 0)");
    slot->model.validate(in);
  } catch (...) {
    slot->ledger.record_rejected_validation();
    return RequestQueue::rejected(std::current_exception());
  }
  // The queue records the submit outcome (admitted / overload / shutdown)
  // in the slot's ledger itself, under the queue mutex, so accounting is
  // atomic with the queue operation.
  return slot->queue.submit(std::move(in));
}

bool Engine::has_model(std::string_view model_id) const {
  return find_slot(model_id) != nullptr;
}

std::vector<std::string> Engine::model_ids() const {
  ReaderLock lk(mu_);
  return order_;
}

const SlotConfig& Engine::model_config(std::string_view model_id) const {
  ModelSlot* slot = find_slot(model_id);
  if (slot == nullptr)
    throw std::out_of_range("Engine::model_config: unknown model '" +
                            std::string(model_id) + "'");
  return slot->cfg;
}

SlotStats Engine::model_stats(std::string_view model_id) const {
  ModelSlot* slot = find_slot(model_id);
  if (slot == nullptr)
    throw std::out_of_range("Engine::model_stats: unknown model '" +
                            std::string(model_id) + "'");
  // depths() reads {depth, peak} under one lock: two separate depth() /
  // peak_depth() calls can interleave with a submit and snapshot an
  // impossible depth > peak.
  const RequestQueue::Depths d = slot->queue.depths();
  if (slot->pool) {
    const runtime::PoolStats ps = slot->pool->stats();
    return slot->ledger.snapshot(d.depth, d.peak, &ps);
  }
  return slot->ledger.snapshot(d.depth, d.peak);
}

EngineStats Engine::stats() const {
  // Snapshot the slot list under mu_, then each ledger under its own lock:
  // per-slot snapshots are exact, the cross-slot view is a near-instant.
  std::vector<ModelSlot*> slots;
  {
    ReaderLock lk(mu_);
    slots.reserve(order_.size());
    for (const std::string& id : order_) slots.push_back(slots_.at(id).get());
  }
  EngineStats out;
  for (ModelSlot* slot : slots) {
    SlotStats s;
    const RequestQueue::Depths d = slot->queue.depths();
    if (slot->pool) {
      const runtime::PoolStats ps = slot->pool->stats();
      s = slot->ledger.snapshot(d.depth, d.peak, &ps);
    } else {
      s = slot->ledger.snapshot(d.depth, d.peak);
    }
    out.total.submitted += s.submitted;
    out.total.rejected += s.rejected;
    out.total.rejected_validation += s.rejected_validation;
    out.total.rejected_overload += s.rejected_overload;
    out.total.rejected_shutdown += s.rejected_shutdown;
    out.total.completed += s.completed;
    out.total.failed += s.failed;
    out.total.cancelled += s.cancelled;
    out.total.batches += s.batches;
    out.total.pool_alloc_count += s.pool_alloc_count;
    out.total.pool_reuse_count += s.pool_reuse_count;
    out.total.pool_outstanding += s.pool_outstanding;
    out.total.pool_bytes_live += s.pool_bytes_live;
    // Like peak_queue_depth: per-slot peaks need not coincide in time, so
    // report the worst single slot rather than a fictitious sum.
    out.total.pool_bytes_peak =
        std::max(out.total.pool_bytes_peak, s.pool_bytes_peak);
    out.total.queue_depth += s.queue_depth;
    // A high-water mark is not summable across slots (their peaks need not
    // coincide in time): report the worst single-slot peak, like latency.
    out.total.peak_queue_depth =
        std::max(out.total.peak_queue_depth, s.peak_queue_depth);
    out.total.p50_latency_us = std::max(out.total.p50_latency_us,
                                        s.p50_latency_us);
    out.total.p95_latency_us = std::max(out.total.p95_latency_us,
                                        s.p95_latency_us);
    out.models.emplace(slot->id, std::move(s));
  }
  // Aggregate occupancy: batch-weighted mean across slots.
  if (out.total.batches > 0) {
    double requests = 0.0, sequences = 0.0;
    for (const auto& kv : out.models) {
      requests += kv.second.mean_batch_requests *
                  static_cast<double>(kv.second.batches);
      sequences += kv.second.mean_batch_occupancy *
                   static_cast<double>(kv.second.batches);
    }
    out.total.mean_batch_requests =
        requests / static_cast<double>(out.total.batches);
    out.total.mean_batch_occupancy =
        sequences / static_cast<double>(out.total.batches);
  }
  {
    MutexLock lk(unknown_mu_);
    out.rejected_unknown_model = rejected_unknown_model_;
  }
  return out;
}

void Engine::shutdown() {
  // Mark shut down, then stop slots outside mu_: Batcher::stop joins a
  // scheduler thread that may be mid-batch, and submit() must stay able to
  // look up slots (and get queue-closed rejections) meanwhile.
  std::vector<ModelSlot*> slots;
  {
    WriterLock lk(mu_);
    shut_down_ = true;
    for (const std::string& id : order_) slots.push_back(slots_.at(id).get());
  }
  for (ModelSlot* slot : slots)
    if (slot->batcher) slot->batcher->stop();
}

}  // namespace nnlut::serve
