#include "serve/server.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "runtime/thread_pool.h"

namespace nnlut::serve {

void LatencyHistogram::record(std::chrono::microseconds latency) {
  const std::uint64_t us =
      latency.count() < 0 ? 0 : static_cast<std::uint64_t>(latency.count());
  std::size_t bucket = 0;
  while (bucket + 1 < kBuckets && (1ull << (bucket + 1)) <= us) ++bucket;
  ++counts_[bucket];
  ++total_;
}

double LatencyHistogram::quantile_us(double q) const {
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (static_cast<double>(seen) >= target)
      return static_cast<double>(1ull << (b + 1));  // upper bucket boundary
  }
  return static_cast<double>(1ull << kBuckets);
}

Server::Server(const transformer::TaskModel& model,
               transformer::NonlinearitySet& nl, ServeConfig cfg)
    : cfg_(cfg), model_(model, nl, cfg.matmul) {
  runtime::set_runtime_config({cfg_.threads, cfg_.simd});

  BatchObserver observer;
  observer.on_batch = [this](std::size_t requests, std::size_t sequences) {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++batches_;
    batch_requests_ += requests;
    batch_sequences_ += sequences;
  };
  observer.on_done = [this](std::chrono::microseconds latency, bool ok) {
    std::lock_guard<std::mutex> lk(stats_mu_);
    if (ok) {
      ++completed_;
    } else {
      ++failed_;
    }
    latency_.record(latency);
  };
  observer.on_cancelled = [this] {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++cancelled_;
  };

  // The scheduler thread is the only caller of the model, satisfying the
  // single-orchestrator contract of the runtime pool.
  batcher_ = std::make_unique<Batcher>(
      queue_,
      [this](const transformer::BatchInput& in) { return model_.logits(in); },
      BatcherConfig{cfg_.max_batch, cfg_.max_wait}, std::move(observer));
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  if (batcher_) batcher_->stop();
}

PendingResult Server::submit(transformer::BatchInput in) {
  try {
    if (in.batch == 0 || in.seq == 0)
      throw std::invalid_argument("serve: empty request (batch or seq is 0)");
    model_.validate(in);
  } catch (...) {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++rejected_;
    return RequestQueue::rejected(std::current_exception());
  }
  bool accepted = false;
  PendingResult result = queue_.submit(std::move(in), &accepted);
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    if (accepted) {
      ++submitted_;  // will resolve as completed, failed or cancelled
    } else {
      ++rejected_;  // raced shutdown: rejected without entering the queue
    }
  }
  return result;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  ServerStats s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.batches = batches_;
  if (batches_ > 0) {
    s.mean_batch_requests =
        static_cast<double>(batch_requests_) / static_cast<double>(batches_);
    s.mean_batch_occupancy =
        static_cast<double>(batch_sequences_) / static_cast<double>(batches_);
  }
  s.p50_latency_us = latency_.quantile_us(0.50);
  s.p95_latency_us = latency_.quantile_us(0.95);
  s.peak_queue_depth = queue_.peak_depth();
  return s;
}

}  // namespace nnlut::serve
