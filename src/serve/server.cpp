#include "serve/server.h"

#include <utility>

namespace nnlut::serve {

const std::string& Server::model_id() {
  static const std::string kId = "default";
  return kId;
}

Server::Server(const transformer::TaskModel& model,
               transformer::NonlinearitySet& nl, ServeConfig cfg)
    : cfg_(cfg), engine_(EngineConfig{cfg.threads, cfg.simd}) {
  SlotConfig slot;
  slot.max_batch = cfg_.max_batch;
  slot.max_wait = cfg_.max_wait;
  slot.matmul = cfg_.matmul;
  slot.admission = cfg_.admission;
  slot.use_pool = cfg_.use_pool;
  engine_.register_model(model_id(), model, nl, slot);
}

Server::~Server() { shutdown(); }

void Server::shutdown() { engine_.shutdown(); }

PendingResult Server::submit(transformer::BatchInput in) {
  return engine_.submit(model_id(), std::move(in));
}

ServerStats Server::stats() const { return engine_.model_stats(model_id()); }

}  // namespace nnlut::serve
