#include "serve/stats.h"

namespace nnlut::serve {

StageSnapshot make_stage_snapshot(const LatencyHistogram& h) {
  StageSnapshot s;
  s.count = h.count();
  if (s.count == 0) return s;
  s.p50_us = h.quantile(0.50);
  s.p95_us = h.quantile(0.95);
  s.mean_us = static_cast<double>(h.sum_us()) / static_cast<double>(s.count);
  return s;
}

void LatencyHistogram::record(std::chrono::microseconds latency) {
  const std::uint64_t us =
      latency.count() < 0 ? 0 : static_cast<std::uint64_t>(latency.count());
  std::size_t bucket = 0;
  while (bucket + 1 < kBuckets && (1ull << (bucket + 1)) <= us) ++bucket;
  ++counts_[bucket];
  ++total_;
  sum_us_ += us;
}

double LatencyHistogram::quantile_us(double q) const {
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (static_cast<double>(seen) >= target)
      return static_cast<double>(1ull << (b + 1));  // upper bucket boundary
  }
  return static_cast<double>(1ull << kBuckets);
}

double LatencyHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += counts_[b];
    if (static_cast<double>(seen) < target) continue;
    // The q-quantile lands in bucket b = [2^b, 2^(b+1)); place it by the
    // fraction of the bucket's mass below the target, observations assumed
    // uniform within the bucket. Bucket 0 spans [0, 2) so its lower edge is
    // treated as 0.
    const double lower = b == 0 ? 0.0 : static_cast<double>(1ull << b);
    const double upper = static_cast<double>(1ull << (b + 1));
    double frac = (target - before) / static_cast<double>(counts_[b]);
    if (frac < 0.0) frac = 0.0;
    if (frac > 1.0) frac = 1.0;
    return lower + frac * (upper - lower);
  }
  return static_cast<double>(1ull << kBuckets);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  sum_us_ += other.sum_us_;
}

void StatsLedger::record_admitted() {
  MutexLock lk(mu_);
  ++submitted_;
}

void StatsLedger::record_shed_oldest() {
  MutexLock lk(mu_);
  // The victim was counted submitted when it was admitted; it resolves as
  // ServerOverloaded now.
  --submitted_;
  ++rejected_overload_;
}

void StatsLedger::record_rejected_validation() {
  MutexLock lk(mu_);
  ++rejected_validation_;
}

void StatsLedger::record_rejected_overload() {
  MutexLock lk(mu_);
  ++rejected_overload_;
}

void StatsLedger::record_rejected_shutdown() {
  MutexLock lk(mu_);
  ++rejected_shutdown_;
}

void StatsLedger::record_batch(std::size_t requests, std::size_t sequences) {
  MutexLock lk(mu_);
  ++batches_;
  batch_requests_ += requests;
  batch_sequences_ += sequences;
}

void StatsLedger::record_done(const StageLatency& stages, bool ok) {
  MutexLock lk(mu_);
  if (ok) {
    ++completed_;
  } else {
    ++failed_;
  }
  latency_.record(stages.total);
  queue_wait_.record(stages.queue_wait);
  batch_wait_.record(stages.batch_wait);
  exec_.record(stages.exec);
  resolve_.record(stages.resolve);
}

void StatsLedger::record_cancelled() {
  MutexLock lk(mu_);
  ++cancelled_;
}

SlotStats StatsLedger::snapshot(std::size_t queue_depth,
                                std::size_t peak_queue_depth,
                                const runtime::PoolStats* pool) const {
  MutexLock lk(mu_);
  SlotStats s;
  s.submitted = submitted_;
  s.rejected_validation = rejected_validation_;
  s.rejected_overload = rejected_overload_;
  s.rejected_shutdown = rejected_shutdown_;
  s.rejected = rejected_validation_ + rejected_overload_ + rejected_shutdown_;
  s.completed = completed_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.batches = batches_;
  if (batches_ > 0) {
    s.mean_batch_requests =
        static_cast<double>(batch_requests_) / static_cast<double>(batches_);
    s.mean_batch_occupancy =
        static_cast<double>(batch_sequences_) / static_cast<double>(batches_);
  }
  s.p50_latency_us = latency_.quantile_us(0.50);
  s.p95_latency_us = latency_.quantile_us(0.95);
  s.queue_depth = queue_depth;
  s.peak_queue_depth = peak_queue_depth;
  s.stage_queue_wait = make_stage_snapshot(queue_wait_);
  s.stage_batch_wait = make_stage_snapshot(batch_wait_);
  s.stage_exec = make_stage_snapshot(exec_);
  s.stage_resolve = make_stage_snapshot(resolve_);
  s.hist_queue_wait = queue_wait_;
  s.hist_batch_wait = batch_wait_;
  s.hist_exec = exec_;
  s.hist_resolve = resolve_;
  s.hist_total = latency_;
  if (pool != nullptr) {
    s.pool_alloc_count = pool->alloc_count;
    s.pool_reuse_count = pool->reuse_count;
    s.pool_outstanding = pool->outstanding;
    s.pool_bytes_live = pool->bytes_live;
    s.pool_bytes_peak = pool->bytes_peak;
  }
  return s;
}

}  // namespace nnlut::serve
