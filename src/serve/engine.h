// Multi-model serving engine: a registry of named ModelSlots, each owning
// an InferenceModel, a RequestQueue with admission control, a StatsLedger
// and a Batcher (one scheduler thread per slot). The deployment shape the
// paper's premise generalizes to: one process, one shared thread pool, many
// NN-LUT-approximated models served at once.
//
//   clients ──submit(model_id, in)──▶ Engine registry
//        │ per-slot validate + admission control (bounded queue, shedding)
//        ▼
//   ModelSlot["a"]: RequestQueue ─▶ Batcher (nnlut-sched-a) ─▶ logits
//   ModelSlot["b"]: RequestQueue ─▶ Batcher (nnlut-sched-b) ─▶ logits
//        │             the scheduler threads share the process ThreadPool
//        ▼             (FIFO-fair orchestrator admission): shards across
//   PendingResult      cores, wide SIMD within a shard, per model in turn
//
// Determinism: each slot's scheduler is the only caller of its model, only
// identical-seq requests of the SAME slot merge, and the pool admits
// orchestrators one at a time — so logits served for any model are
// bit-identical to direct single-threaded calls regardless of how many
// other models are being served concurrently.
//
// Admission control: each slot bounds its queue depth
// (AdmissionConfig{max_queue_depth, shed_policy}); at the bound the slot
// sheds per policy and the shed request resolves with ServerOverloaded.
// After shutdown the slot's stats reconcile exactly:
//   submit calls == submitted + rejected_validation + rejected_overload
//                 + rejected_shutdown
//   submitted    == completed + failed + cancelled
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/lut_kernel_simd.h"
#include "core/thread_annotations.h"
#include "obs/metrics.h"
#include "serve/batcher.h"
#include "serve/request_queue.h"
#include "serve/stats.h"
#include "transformer/infer.h"

namespace nnlut::serve {

/// Per-model serving configuration.
struct SlotConfig {
  /// Flush threshold in sequences; 1 disables aggregation.
  std::size_t max_batch = 32;
  /// Longest a request may sit in an under-full bucket.
  std::chrono::microseconds max_wait{2000};
  /// Matmul precision of the slot's InferenceModel.
  transformer::MatmulMode matmul = transformer::MatmulMode::kFp32;
  /// Bounded queue depth + shed policy; default unbounded.
  AdmissionConfig admission = {};
  /// Size-classed buffer pools through the slot's memory path: the forward
  /// pass runs in a persistent Workspace, and result tensors draw pool
  /// slabs that return when clients destroy them. false takes the original
  /// allocate-per-call path (the baseline the determinism suite compares
  /// against). Logits are bit-identical either way.
  bool use_pool = true;
};

/// Process-wide knobs, applied to the RuntimeConfig at Engine construction.
struct EngineConfig {
  /// Execution lanes for the encoder kernels; 0 = hardware_concurrency.
  std::size_t threads = 0;
  /// LUT-kernel ISA tier; nullopt = automatic (CPUID + env caps).
  std::optional<simd::SimdTier> simd = std::nullopt;
};

class Engine {
 public:
  explicit Engine(EngineConfig cfg = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Register a model under `model_id` and start its scheduler thread
  /// ("nnlut-sched-<model_id>", compacted to "nns-<model_id>" when the
  /// 15-char Linux thread-name limit would otherwise truncate the model
  /// id away). Borrows the trained model and backend; both must outlive
  /// the engine. Throws std::invalid_argument on an empty or duplicate id,
  /// std::logic_error after shutdown.
  void register_model(const std::string& model_id,
                      const transformer::TaskModel& model,
                      transformer::NonlinearitySet& nl, SlotConfig cfg = {});

  /// Validate and enqueue one request for `model_id`. Takes a string_view
  /// (transparent registry lookup) so the per-request hot path never
  /// allocates for the id. Errors come back through the PendingResult,
  /// never as thrown exceptions:
  ///   - unknown model_id        -> std::out_of_range
  ///   - malformed input         -> std::invalid_argument / std::out_of_range
  ///   - queue at depth bound    -> ServerOverloaded (per the shed policy)
  ///   - submit after shutdown   -> RequestCancelled
  PendingResult submit(std::string_view model_id, transformer::BatchInput in);

  /// True when the slot's bounded queue is at (or over) its admission
  /// depth right now — i.e. a submit at this instant would shed. False for
  /// unbounded slots and unknown ids. The network front-end consults this
  /// BEFORE deserializing a request's tokens ("shed before parse"): under
  /// overload the expensive part of admission is refused at the socket for
  /// the cost of a depth read. Advisory by nature — the queue re-checks
  /// under its own mutex at submit, which remains the authoritative shed.
  bool overloaded(std::string_view model_id) const;

  bool has_model(std::string_view model_id) const;
  /// Registered ids in registration order.
  std::vector<std::string> model_ids() const;
  /// The slot's effective config (normalized: max_batch 0 becomes 1, as
  /// the batcher runs it); throws std::out_of_range on unknown id.
  const SlotConfig& model_config(std::string_view model_id) const;

  /// One slot's counters; throws std::out_of_range on unknown id.
  SlotStats model_stats(std::string_view model_id) const;
  /// Every slot plus the aggregate (counters summed, latency quantiles the
  /// worst across slots; stage histograms merged bucket-wise).
  EngineStats stats() const;

  /// Prometheus text exposition of every registered instrument, evaluated
  /// at call time: per-slot serving counters, queue depths, stage-latency
  /// histograms and pool counters (model="<id>" labels), plus process-wide
  /// plan-cache, thread-pool and tracer series. See docs/OBSERVABILITY.md.
  std::string scrape() const { return metrics_.scrape(); }
  /// The engine's registry, for embedders that want to hang extra
  /// instruments onto the same scrape page.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Drain every slot's outstanding requests and stop all scheduler
  /// threads. Idempotent; the destructor calls it. submit() after shutdown
  /// rejects immediately; register_model() after shutdown throws.
  void shutdown();

 private:
  /// One registered model: the unit of isolation. Slots never share
  /// queues or ledgers; they share only the process ThreadPool.
  struct ModelSlot {
    ModelSlot(std::string id_, const transformer::TaskModel& model,
              transformer::NonlinearitySet& nl, SlotConfig cfg_);

    const std::string id;
    const SlotConfig cfg;
    transformer::InferenceModel model;
    StatsLedger ledger;  // before queue: the queue records evictions to it
    RequestQueue queue;
    // Memory path (use_pool only; null/empty otherwise). Declared before
    // the batcher so the scheduler thread stops before they go away, and
    // the pool before the workspace that draws from it. The pool itself
    // outlives even that teardown wherever clients still hold result
    // tensors — slabs released after pool destruction free directly.
    std::unique_ptr<runtime::BufferPool> pool;
    transformer::Workspace ws;
    std::unique_ptr<Batcher> batcher;  // last member: stops before the rest
  };

  /// nullptr when unknown. The returned pointer stays valid until the
  /// engine is destroyed (slots are never erased, only shut down).
  ModelSlot* find_slot(std::string_view model_id) const;

  /// Hang one slot's instruments onto metrics_ (called once per
  /// register_model; callbacks capture the ModelSlot*, which stays valid
  /// for the engine's lifetime since slots are never erased).
  void register_slot_metrics(ModelSlot* slot);
  /// Process-wide instruments (plan cache, thread pool, tracer, unknown-
  /// model rejects), registered once at construction.
  void register_process_metrics();

  EngineConfig cfg_;
  // Declared before the slot registry: destroyed after it, and callbacks
  // only run through scrape() on a live engine.
  obs::MetricsRegistry metrics_;
  // Reader/writer lock over the registry: submits (every request, all
  // models) take it shared, so the hot path never serializes across slots;
  // register_model/shutdown take it exclusive. Slots themselves are never
  // erased, so a ModelSlot* read under a ReaderLock stays valid afterwards.
  mutable SharedMutex mu_;
  bool shut_down_ NNLUT_GUARDED_BY(mu_) = false;
  // std::less<> enables heterogeneous (string_view) lookup.
  std::map<std::string, std::unique_ptr<ModelSlot>, std::less<>> slots_
      NNLUT_GUARDED_BY(mu_);
  std::vector<std::string> order_ NNLUT_GUARDED_BY(mu_);  // registration order
  mutable Mutex unknown_mu_;
  std::uint64_t rejected_unknown_model_ NNLUT_GUARDED_BY(unknown_mu_) = 0;
};

}  // namespace nnlut::serve
