// Server facade: owns the InferenceModel, the request queue, the dynamic
// batcher and a stats ledger — the piece that turns the library into a
// servable system.
//
//   clients ──submit()──▶ RequestQueue ──▶ Batcher (scheduler thread)
//                                             │  merge same-seq requests
//                                             ▼
//                                      InferenceModel::logits
//                                             │  split rows per request
//                                             ▼
//                        PendingResult.get() ◀─ per-request logits / error
//
// ServeConfig plugs the serving thread budget into the runtime
// (RuntimeConfig): the scheduler thread is the single model orchestrator,
// and the encoder kernels it invokes shard across the process pool.
//
// Results carry no wall-clock data — timing exists only in ServerStats
// (fixed-bucket latency histogram, batch occupancy counters).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "core/lut_kernel_simd.h"
#include "serve/batcher.h"
#include "serve/request_queue.h"
#include "transformer/infer.h"

namespace nnlut::serve {

struct ServeConfig {
  /// Flush threshold in sequences; 1 disables aggregation.
  std::size_t max_batch = 32;
  /// Longest a request may sit in an under-full bucket. Latency/throughput
  /// dial: larger waits form fuller batches.
  std::chrono::microseconds max_wait{2000};
  /// Execution lanes for the encoder kernels, applied to the process-wide
  /// RuntimeConfig at server construction; 0 = hardware_concurrency.
  std::size_t threads = 0;
  /// LUT-kernel ISA tier for the encoder kernels, applied to the
  /// process-wide RuntimeConfig with `threads`; nullopt = automatic
  /// (CPUID + NNLUT_FORCE_SCALAR / NNLUT_SIMD_TIER). Served logits are
  /// bit-identical for every tier.
  std::optional<simd::SimdTier> simd = std::nullopt;
  /// Matmul precision of the owned InferenceModel.
  transformer::MatmulMode matmul = transformer::MatmulMode::kFp32;
};

/// Fixed-bucket log2 latency histogram: bucket i counts completions with
/// latency in [2^i, 2^(i+1)) microseconds. Quantiles come from the bucket
/// boundaries — coarse but allocation-free and O(1) to record.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(std::chrono::microseconds latency);
  std::uint64_t count() const { return total_; }
  /// Upper bucket boundary (µs) at quantile q in [0, 1]; 0 when empty.
  double quantile_us(double q) const;

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

/// Snapshot of serving counters since construction. After a full drain
/// (shutdown), submitted == completed + failed + cancelled; rejected counts
/// requests that never entered the queue (validation failure or submit
/// after shutdown) and is disjoint from submitted.
struct ServerStats {
  std::uint64_t submitted = 0;  // accepted into the queue
  std::uint64_t rejected = 0;   // refused at submit (validation / closed)
  std::uint64_t completed = 0;  // resolved with logits
  std::uint64_t failed = 0;     // resolved with an execution error
  std::uint64_t cancelled = 0;  // withdrawn via cancel() before execution
  std::uint64_t batches = 0;    // model invocations
  double mean_batch_requests = 0.0;   // requests per model invocation
  double mean_batch_occupancy = 0.0;  // sequences per model invocation
  double p50_latency_us = 0.0;  // submit -> resolve, histogram boundary
  double p95_latency_us = 0.0;
  std::size_t peak_queue_depth = 0;
};

class Server {
 public:
  /// Borrows the trained model and backend; both must outlive the server.
  /// Applies cfg.threads to the process RuntimeConfig.
  Server(const transformer::TaskModel& model, transformer::NonlinearitySet& nl,
         ServeConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Validate and enqueue one request. Malformed inputs (bad shape, ids
  /// outside the embedding tables, overlong seq, empty batch) come back as
  /// an already-rejected PendingResult carrying the validation error —
  /// they never reach the batcher, so they cannot poison anyone's batch.
  PendingResult submit(transformer::BatchInput in);

  /// Drain outstanding requests, stop the scheduler. Idempotent; the
  /// destructor calls it. submit() after shutdown rejects immediately.
  void shutdown();

  ServerStats stats() const;
  const ServeConfig& config() const { return cfg_; }

 private:
  ServeConfig cfg_;
  transformer::InferenceModel model_;
  RequestQueue queue_;

  mutable std::mutex stats_mu_;
  std::uint64_t submitted_ = 0, rejected_ = 0, completed_ = 0, failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t batches_ = 0, batch_requests_ = 0, batch_sequences_ = 0;
  LatencyHistogram latency_;

  std::unique_ptr<Batcher> batcher_;  // last member: stops before the rest dies
};

}  // namespace nnlut::serve
