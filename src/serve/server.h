// Single-model serving facade: a thin veneer over the multi-model Engine
// (serve/engine.h) that registers exactly one slot and forwards to it.
// Existing callers keep the one-model API — submit/stats/shutdown — while
// all mechanics (queue, admission control, batcher, stats ledger) live in
// the Engine's ModelSlot. Construct an Engine directly to serve several
// models from one process.
//
//   clients ──submit()──▶ Engine["default"]: RequestQueue ──▶ Batcher
//                                             │  merge same-seq requests
//                                             ▼
//                                      InferenceModel::logits
//                                             │  split rows per request
//                                             ▼
//                        PendingResult.get() ◀─ per-request logits / error
//
// Results carry no wall-clock data — timing exists only in ServerStats
// (fixed-bucket latency histogram, batch occupancy counters).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/lut_kernel_simd.h"
#include "serve/engine.h"
#include "serve/request_queue.h"
#include "serve/stats.h"
#include "transformer/infer.h"

namespace nnlut::serve {

struct ServeConfig {
  /// Flush threshold in sequences; 1 disables aggregation.
  std::size_t max_batch = 32;
  /// Longest a request may sit in an under-full bucket. Latency/throughput
  /// dial: larger waits form fuller batches.
  std::chrono::microseconds max_wait{2000};
  /// Execution lanes for the encoder kernels, applied to the process-wide
  /// RuntimeConfig at server construction; 0 = hardware_concurrency.
  std::size_t threads = 0;
  /// LUT-kernel ISA tier for the encoder kernels, applied to the
  /// process-wide RuntimeConfig with `threads`; nullopt = automatic
  /// (CPUID + NNLUT_FORCE_SCALAR / NNLUT_SIMD_TIER). Served logits are
  /// bit-identical for every tier.
  std::optional<simd::SimdTier> simd = std::nullopt;
  /// Matmul precision of the owned InferenceModel.
  transformer::MatmulMode matmul = transformer::MatmulMode::kFp32;
  /// Admission control: bounded queue depth + shed policy (default
  /// unbounded). At the bound, submit() resolves with ServerOverloaded per
  /// the policy.
  AdmissionConfig admission = {};
  /// Size-classed buffer pools through the slot's memory path (see
  /// SlotConfig::use_pool). false restores the allocate-per-call baseline;
  /// served logits are bit-identical either way.
  bool use_pool = true;
};

/// Snapshot of serving counters since construction (SlotStats of the one
/// slot). After a full drain (shutdown), submitted == completed + failed +
/// cancelled; the reject counters (validation / overload / shutdown) are
/// disjoint from submitted and from each other.
using ServerStats = SlotStats;

class Server {
 public:
  /// Borrows the trained model and backend; both must outlive the server.
  /// Applies cfg.threads/cfg.simd to the process RuntimeConfig.
  Server(const transformer::TaskModel& model, transformer::NonlinearitySet& nl,
         ServeConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Validate and enqueue one request. Malformed inputs (bad shape, ids
  /// outside the embedding tables, overlong seq, empty batch) come back as
  /// an already-rejected PendingResult carrying the validation error —
  /// they never reach the batcher, so they cannot poison anyone's batch.
  /// With a bounded queue, an at-capacity submit resolves (itself or the
  /// shed oldest request) with ServerOverloaded.
  PendingResult submit(transformer::BatchInput in);

  /// Drain outstanding requests, stop the scheduler. Idempotent; the
  /// destructor calls it. submit() after shutdown rejects immediately.
  void shutdown();

  ServerStats stats() const;
  /// Prometheus text exposition of the underlying engine's instruments
  /// (the one slot carries model="default" labels).
  std::string scrape() const { return engine_.scrape(); }
  const ServeConfig& config() const { return cfg_; }

  /// The underlying engine (one slot, model_id() = "default"), for callers
  /// migrating to multi-model serving.
  Engine& engine() { return engine_; }
  /// The facade's slot name, as a long-lived string so the per-request
  /// submit path never allocates for the id.
  static const std::string& model_id();

 private:
  ServeConfig cfg_;
  Engine engine_;
};

}  // namespace nnlut::serve
