// Dynamic batch former: drains the request queue on a dedicated scheduler
// thread, buckets submissions by sequence length, and flushes a bucket as a
// single merged BatchInput when it holds max_batch sequences or its oldest
// request has waited max_wait.
//
// Determinism: only requests with identical `seq` merge, and the merged
// input is the row-wise concatenation of the member requests. Every kernel
// under InferenceModel::logits is independent per batch element (matmul
// output rows, attention rows offset by batch index, softmax/LayerNorm
// rows), so the rows a request gets back from a merged batch are
// BIT-IDENTICAL to running it alone — batching changes scheduling, never
// results.
//
// Error isolation: if a merged batch throws, the batcher falls back to
// running each member solo, so an error rejects only the request that owns
// it while the rest still complete (with identical bits, per the contract
// above). The scheduler thread survives any request error.
//
// Concurrency story (why this class carries no GUARDED_BY annotations,
// unlike every other serve/ type — see core/thread_annotations.h): the
// batcher owns NO mutex. All staging state below is confined to the
// scheduler thread; the only cross-thread members are the RequestQueue
// (internally annotated) and `stopped_`, an atomic flag whose exchange()
// makes stop() idempotent; the scheduler join() provides the happens-after
// edge for everything the final drain wrote.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "runtime/buffer_pool.h"
#include "serve/request_queue.h"
#include "serve/stats.h"

namespace nnlut::serve {

struct BatcherConfig {
  /// Flush threshold, counted in sequences (a request with batch=k
  /// contributes k). A request larger than max_batch still runs, alone.
  std::size_t max_batch = 32;
  /// How long the oldest request in a bucket may wait before the bucket is
  /// flushed even if under-full. 0 flushes every drain cycle (latency
  /// floor, no aggregation beyond what arrives together).
  std::chrono::microseconds max_wait{2000};
  /// OS-visible name for the scheduler thread (pthread_setname_np,
  /// truncated to 15 chars; no-op where unsupported). The Engine names each
  /// slot's scheduler "nnlut-sched-<model>", compacted to "ns-<model>"
  /// when the 15-char limit would truncate the model id away. Empty =
  /// "nnlut-sched".
  std::string thread_name = {};
  /// When set (must outlive the batcher), result slices of merged batches
  /// draw their storage from this pool instead of the heap, so each piece's
  /// slab returns for reuse when the client destroys the tensor. nullptr =
  /// plain heap tensors (identical bits either way).
  runtime::BufferPool* pool = nullptr;
};

class Batcher {
 public:
  /// `run` maps a merged BatchInput to logits ([batch, outputs] or
  /// [batch*seq, outputs] — any leading dim divisible by batch). It is only
  /// ever invoked from the scheduler thread.
  using RunFn = std::function<Tensor(const transformer::BatchInput&)>;

  /// `ledger` (optional, must outlive the batcher) observes execution from
  /// the scheduler thread: record_batch per model invocation, record_done
  /// per resolved request, record_cancelled per drained-but-cancelled
  /// request.
  Batcher(RequestQueue& queue, RunFn run, BatcherConfig cfg,
          StatsLedger* ledger = nullptr);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Close the queue, execute everything still pending, join the scheduler
  /// thread. Idempotent.
  void stop();

 private:
  struct Bucket {
    std::vector<Submission> items;
    std::size_t sequences = 0;  // sum of items[i].input.batch
  };

  void loop();
  /// Execute up to max_batch sequences from the front of `bucket`.
  void flush_chunk(Bucket& bucket);
  /// Runs the submissions in chunk_ (cleared on return).
  void execute();
  /// Resolve-side accounting for one request: stage-decomposed latency into
  /// the ledger, plus the request's lifecycle trace spans (queue-wait /
  /// batch-wait / exec / resolve, correlated by sub.id). `exec_start` /
  /// `exec_end` bracket the model invocation that served this request.
  void finish(const Submission& sub, bool ok,
              std::chrono::steady_clock::time_point exec_start,
              std::chrono::steady_clock::time_point exec_end);

  RequestQueue* queue_;
  RunFn run_;
  BatcherConfig cfg_;
  StatsLedger* ledger_;  // may be null (no stats)
  std::map<std::size_t, Bucket> buckets_;  // keyed by seq; scheduler-only
  // Scheduler-thread staging, recycled across cycles so the drain -> bucket
  // -> flush -> merge path reuses its vector capacity instead of
  // reallocating per batch. All scheduler-only state.
  std::vector<Submission> drained_;        // wait_drain target
  std::vector<Submission> chunk_;          // flush_chunk -> execute handoff
  std::vector<Submission> live_;           // claim() survivors
  transformer::BatchInput merged_;         // row-wise concatenation buffer
  std::thread scheduler_;
  std::atomic<bool> stopped_{false};  // first stop() wins; later calls no-op
};

}  // namespace nnlut::serve
