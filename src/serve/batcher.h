// Dynamic batch former: drains the request queue on a dedicated scheduler
// thread, buckets submissions by sequence length, and flushes a bucket as a
// single merged BatchInput when it holds max_batch sequences or its oldest
// request has waited max_wait.
//
// Determinism: only requests with identical `seq` merge, and the merged
// input is the row-wise concatenation of the member requests. Every kernel
// under InferenceModel::logits is independent per batch element (matmul
// output rows, attention rows offset by batch index, softmax/LayerNorm
// rows), so the rows a request gets back from a merged batch are
// BIT-IDENTICAL to running it alone — batching changes scheduling, never
// results.
//
// Error isolation: if a merged batch throws, the batcher falls back to
// running each member solo, so an error rejects only the request that owns
// it while the rest still complete (with identical bits, per the contract
// above). The scheduler thread survives any request error.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "serve/request_queue.h"

namespace nnlut::serve {

struct BatcherConfig {
  /// Flush threshold, counted in sequences (a request with batch=k
  /// contributes k). A request larger than max_batch still runs, alone.
  std::size_t max_batch = 32;
  /// How long the oldest request in a bucket may wait before the bucket is
  /// flushed even if under-full. 0 flushes every drain cycle (latency
  /// floor, no aggregation beyond what arrives together).
  std::chrono::microseconds max_wait{2000};
};

/// Stats hooks, invoked on the scheduler thread. Any may be empty.
struct BatchObserver {
  /// After each executed batch: member request count and merged sequence
  /// count (occupancy).
  std::function<void(std::size_t requests, std::size_t sequences)> on_batch;
  /// After each request completes: queue+execute latency and success flag.
  std::function<void(std::chrono::microseconds latency, bool ok)> on_done;
  /// For each drained request found cancelled (it never executes and never
  /// reaches on_done) — keeps completion counters reconcilable.
  std::function<void()> on_cancelled;
};

class Batcher {
 public:
  /// `run` maps a merged BatchInput to logits ([batch, outputs] or
  /// [batch*seq, outputs] — any leading dim divisible by batch). It is only
  /// ever invoked from the scheduler thread.
  using RunFn = std::function<Tensor(const transformer::BatchInput&)>;

  Batcher(RequestQueue& queue, RunFn run, BatcherConfig cfg,
          BatchObserver observer = {});
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Close the queue, execute everything still pending, join the scheduler
  /// thread. Idempotent.
  void stop();

 private:
  struct Bucket {
    std::vector<Submission> items;
    std::size_t sequences = 0;  // sum of items[i].input.batch
  };

  void loop();
  /// Execute up to max_batch sequences from the front of `bucket`.
  void flush_chunk(Bucket& bucket);
  void execute(std::vector<Submission> batch);
  void finish(const Submission& sub, bool ok);

  RequestQueue* queue_;
  RunFn run_;
  BatcherConfig cfg_;
  BatchObserver observer_;
  std::map<std::size_t, Bucket> buckets_;  // keyed by seq; scheduler-only
  std::thread scheduler_;
  std::atomic<bool> stopped_{false};  // first stop() wins; later calls no-op
};

}  // namespace nnlut::serve
