// Serving statistics, extracted from the Server so every ModelSlot of the
// multi-model Engine owns one ledger and EngineStats can aggregate them.
//
// StatsLedger is the single mutex-guarded accounting object of the serving
// subsystem: the submit path records admission decisions, the batcher's
// scheduler thread records execution events, and snapshot() produces a
// consistent SlotStats. Wall-clock exists only here, never in results.
//
// Reconciliation contract (exact after a full drain / shutdown):
//
//   submit() calls == submitted + rejected_validation
//                   + rejected_overload + rejected_shutdown
//   submitted      == completed + failed + cancelled
//
// The two reject families are disjoint: validation rejects never touched
// the queue; overload rejects are admission-control sheds (ServerOverloaded).
// Under ShedPolicy::kRejectOldest a shed victim was *previously* counted
// submitted, so record_shed_oldest() reclassifies it (submitted ->
// rejected_overload) to keep both identities exact.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "core/thread_annotations.h"
#include "runtime/buffer_pool.h"

namespace nnlut::serve {

/// Fixed-bucket log2 latency histogram: bucket i counts completions with
/// latency in [2^i, 2^(i+1)) microseconds. Quantiles come from the bucket
/// boundaries — coarse but allocation-free and O(1) to record. Not
/// thread-safe on its own; StatsLedger guards it.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(std::chrono::microseconds latency);
  std::uint64_t count() const { return total_; }
  /// Upper bucket boundary (µs) at quantile q in [0, 1]; 0 when empty.
  double quantile_us(double q) const;

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

/// Snapshot of one model slot's serving counters since construction. The
/// single-model Server exposes this as ServerStats.
struct SlotStats {
  std::uint64_t submitted = 0;  // accepted into the queue
  std::uint64_t rejected = 0;   // all refusals: validation+overload+shutdown
  std::uint64_t rejected_validation = 0;  // malformed input, never queued
  std::uint64_t rejected_overload = 0;    // admission-control sheds
  std::uint64_t rejected_shutdown = 0;    // submit after/racing shutdown
  std::uint64_t completed = 0;  // resolved with logits
  std::uint64_t failed = 0;     // resolved with an execution error
  std::uint64_t cancelled = 0;  // withdrawn via cancel() before execution
  std::uint64_t batches = 0;    // model invocations
  double mean_batch_requests = 0.0;   // requests per model invocation
  double mean_batch_occupancy = 0.0;  // sequences per model invocation
  double p50_latency_us = 0.0;  // submit -> resolve, histogram boundary
  double p95_latency_us = 0.0;
  std::size_t queue_depth = 0;  // requests queued at snapshot time
  std::size_t peak_queue_depth = 0;

  // Buffer-pool counters of the slot's memory path (all zero when the slot
  // runs pools-off). pool_alloc_count is the heap-miss count: acquisitions
  // the pool had to serve with a fresh allocation. A warmed slot serves
  // every acquisition from its free lists, so over a steady-state window
  // the DELTA of pool_alloc_count is zero — the property the memory bench
  // and CI assert.
  std::uint64_t pool_alloc_count = 0;  // pool acquisitions that hit the heap
  std::uint64_t pool_reuse_count = 0;  // acquisitions served from free lists
  std::uint64_t pool_outstanding = 0;  // slabs currently out of the pool
  std::size_t pool_bytes_live = 0;     // outstanding + cached bytes
  std::size_t pool_bytes_peak = 0;     // high-water mark of bytes_live
};

/// Thread-safe serving counters + latency histogram for one model slot.
/// Submit-side records run on client threads, execution-side records on the
/// slot's scheduler thread; one mutex covers both so snapshots are
/// consistent.
class StatsLedger {
 public:
  // --- submit path (client threads) ---
  void record_admitted();
  void record_rejected_validation();
  void record_rejected_overload();  // refused at the door (kRejectNew)
  void record_rejected_shutdown();
  /// kRejectOldest eviction: reclassify a previously-admitted request as an
  /// overload shed (submitted -> rejected_overload). The queue records this
  /// BEFORE resolving the victim's PendingResult, so a stats() snapshot
  /// taken after the victim observes ServerOverloaded always includes it.
  void record_shed_oldest();

  // --- execution path (scheduler thread) ---
  /// After each executed batch: member request count and merged sequence
  /// count (occupancy).
  void record_batch(std::size_t requests, std::size_t sequences);
  /// After each request resolves: queue+execute latency and success flag.
  void record_done(std::chrono::microseconds latency, bool ok);
  /// A drained request found cancelled (it never executes and never reaches
  /// record_done) — keeps completion counters reconcilable.
  void record_cancelled();

  /// Consistent snapshot; queue depths are passed in by the owner (the
  /// queue keeps its own high-water mark), as are the buffer-pool counters
  /// (`pool` may be null — pools-off slots report zeros).
  SlotStats snapshot(std::size_t queue_depth = 0,
                     std::size_t peak_queue_depth = 0,
                     const runtime::PoolStats* pool = nullptr) const;

 private:
  mutable Mutex mu_;
  std::uint64_t submitted_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_validation_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_overload_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_shutdown_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t failed_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t cancelled_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t batches_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t batch_requests_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t batch_sequences_ NNLUT_GUARDED_BY(mu_) = 0;
  LatencyHistogram latency_ NNLUT_GUARDED_BY(mu_);
};

/// Engine-wide view: per-model slot snapshots plus an aggregate in which
/// counters sum and latency quantiles are the worst (max) across slots.
struct EngineStats {
  std::map<std::string, SlotStats> models;
  SlotStats total;
  /// submit() calls naming a model_id that was never registered; these have
  /// no slot ledger to land in.
  std::uint64_t rejected_unknown_model = 0;
};

}  // namespace nnlut::serve
