// Serving statistics, extracted from the Server so every ModelSlot of the
// multi-model Engine owns one ledger and EngineStats can aggregate them.
//
// StatsLedger is the single mutex-guarded accounting object of the serving
// subsystem: the submit path records admission decisions, the batcher's
// scheduler thread records execution events, and snapshot() produces a
// consistent SlotStats. Wall-clock exists only here, never in results.
//
// Reconciliation contract (exact after a full drain / shutdown):
//
//   submit() calls == submitted + rejected_validation
//                   + rejected_overload + rejected_shutdown
//   submitted      == completed + failed + cancelled
//
// The two reject families are disjoint: validation rejects never touched
// the queue; overload rejects are admission-control sheds (ServerOverloaded).
// Under ShedPolicy::kRejectOldest a shed victim was *previously* counted
// submitted, so record_shed_oldest() reclassifies it (submitted ->
// rejected_overload) to keep both identities exact.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "core/thread_annotations.h"
#include "runtime/buffer_pool.h"

namespace nnlut::serve {

/// Fixed-bucket log2 latency histogram: bucket i counts completions with
/// latency in [2^i, 2^(i+1)) microseconds (bucket 0 also takes 0 µs, the
/// last bucket everything above its lower edge). Allocation-free and O(1)
/// to record. Not thread-safe on its own; StatsLedger guards it.
///
/// Two quantile readings:
///   - quantile_us(q): the UPPER BOUNDARY of the bucket containing the
///     q-quantile — a conservative bound ("p95 < 1024 µs"), never an
///     estimate below the true value. SlotStats::p50/p95_latency_us keep
///     this historical semantics.
///   - quantile(q): within-bucket LINEAR INTERPOLATION — assumes
///     observations spread uniformly inside the bucket and returns a point
///     estimate. The per-stage snapshots (queue-wait / batch-wait / exec /
///     resolve) use this.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(std::chrono::microseconds latency);
  std::uint64_t count() const { return total_; }
  /// Sum of recorded latencies (µs) — the Prometheus histogram `_sum`.
  std::uint64_t sum_us() const { return sum_us_; }
  /// Upper boundary (µs) of the bucket holding quantile q in [0, 1]; 0 when
  /// empty. See the class comment for the boundary-vs-interpolated split.
  double quantile_us(double q) const;
  /// Point estimate (µs) at quantile q via within-bucket linear
  /// interpolation; 0 when empty.
  double quantile(double q) const;

  /// Raw bucket count (i in [0, kBuckets)).
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  /// Upper edge (µs) of bucket i: 2^(i+1).
  static double bucket_upper_us(std::size_t i) {
    return static_cast<double>(1ull << (i + 1));
  }

  /// Add another histogram's observations into this one (bucket-wise).
  /// EngineStats uses this to aggregate per-slot stage histograms.
  void merge(const LatencyHistogram& other);

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
  std::uint64_t sum_us_ = 0;
};

/// Stage decomposition of one served request's latency, measured by the
/// batcher's scheduler thread (wall-clock lives only in serve//obs/):
///   queue_wait  submit (enqueue) -> drained by the scheduler
///   batch_wait  drained -> its batch starts executing (bucket residence)
///   exec        model invocation (merged batch) wall time
///   resolve     execution done -> result handed to the waiting client
///   total       submit -> resolved (== the end-to-end latency histogram)
struct StageLatency {
  std::chrono::microseconds queue_wait{0};
  std::chrono::microseconds batch_wait{0};
  std::chrono::microseconds exec{0};
  std::chrono::microseconds resolve{0};
  std::chrono::microseconds total{0};
};

/// Summary of one stage histogram: count, interpolated p50/p95 and mean.
/// Unlike SlotStats::p50/p95_latency_us (bucket upper boundaries), these
/// quantiles use LatencyHistogram::quantile() interpolation.
struct StageSnapshot {
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double mean_us = 0.0;
};

/// Build a StageSnapshot (interpolated quantiles + mean) from a histogram.
StageSnapshot make_stage_snapshot(const LatencyHistogram& h);

/// Snapshot of one model slot's serving counters since construction. The
/// single-model Server exposes this as ServerStats.
struct SlotStats {
  std::uint64_t submitted = 0;  // accepted into the queue
  std::uint64_t rejected = 0;   // all refusals: validation+overload+shutdown
  std::uint64_t rejected_validation = 0;  // malformed input, never queued
  std::uint64_t rejected_overload = 0;    // admission-control sheds
  std::uint64_t rejected_shutdown = 0;    // submit after/racing shutdown
  std::uint64_t completed = 0;  // resolved with logits
  std::uint64_t failed = 0;     // resolved with an execution error
  std::uint64_t cancelled = 0;  // withdrawn via cancel() before execution
  std::uint64_t batches = 0;    // model invocations
  double mean_batch_requests = 0.0;   // requests per model invocation
  double mean_batch_occupancy = 0.0;  // sequences per model invocation
  // End-to-end submit->resolve quantiles. These are log2-bucket UPPER
  // BOUNDARIES (LatencyHistogram::quantile_us), i.e. conservative bounds
  // like "p95 < 1024 µs" — not interpolated point estimates. The stage
  // snapshots below carry interpolated quantiles.
  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  std::size_t queue_depth = 0;  // requests queued at snapshot time
  std::size_t peak_queue_depth = 0;

  // Per-stage latency decomposition (see StageLatency for stage meanings),
  // with interpolated quantiles.
  StageSnapshot stage_queue_wait;
  StageSnapshot stage_batch_wait;
  StageSnapshot stage_exec;
  StageSnapshot stage_resolve;

  // Raw histogram copies for exposition (MetricsRegistry histogram
  // callbacks); hist_total is the end-to-end latency histogram behind
  // p50/p95_latency_us.
  LatencyHistogram hist_queue_wait;
  LatencyHistogram hist_batch_wait;
  LatencyHistogram hist_exec;
  LatencyHistogram hist_resolve;
  LatencyHistogram hist_total;

  // Buffer-pool counters of the slot's memory path (all zero when the slot
  // runs pools-off). pool_alloc_count is the heap-miss count: acquisitions
  // the pool had to serve with a fresh allocation. A warmed slot serves
  // every acquisition from its free lists, so over a steady-state window
  // the DELTA of pool_alloc_count is zero — the property the memory bench
  // and CI assert.
  std::uint64_t pool_alloc_count = 0;  // pool acquisitions that hit the heap
  std::uint64_t pool_reuse_count = 0;  // acquisitions served from free lists
  std::uint64_t pool_outstanding = 0;  // slabs currently out of the pool
  std::size_t pool_bytes_live = 0;     // outstanding + cached bytes
  std::size_t pool_bytes_peak = 0;     // high-water mark of bytes_live
};

/// Thread-safe serving counters + latency histogram for one model slot.
/// Submit-side records run on client threads, execution-side records on the
/// slot's scheduler thread; one mutex covers both so snapshots are
/// consistent.
class StatsLedger {
 public:
  // --- submit path (client threads) ---
  void record_admitted();
  void record_rejected_validation();
  void record_rejected_overload();  // refused at the door (kRejectNew)
  void record_rejected_shutdown();
  /// kRejectOldest eviction: reclassify a previously-admitted request as an
  /// overload shed (submitted -> rejected_overload). The queue records this
  /// BEFORE resolving the victim's PendingResult, so a stats() snapshot
  /// taken after the victim observes ServerOverloaded always includes it.
  void record_shed_oldest();

  // --- execution path (scheduler thread) ---
  /// After each executed batch: member request count and merged sequence
  /// count (occupancy).
  void record_batch(std::size_t requests, std::size_t sequences);
  /// After each request resolves: its stage-decomposed latency and success
  /// flag. `stages.total` feeds the end-to-end histogram.
  void record_done(const StageLatency& stages, bool ok);
  /// A drained request found cancelled (it never executes and never reaches
  /// record_done) — keeps completion counters reconcilable.
  void record_cancelled();

  /// Consistent snapshot; queue depths are passed in by the owner (the
  /// queue keeps its own high-water mark), as are the buffer-pool counters
  /// (`pool` may be null — pools-off slots report zeros).
  SlotStats snapshot(std::size_t queue_depth = 0,
                     std::size_t peak_queue_depth = 0,
                     const runtime::PoolStats* pool = nullptr) const;

 private:
  mutable Mutex mu_;
  std::uint64_t submitted_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_validation_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_overload_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_shutdown_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t failed_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t cancelled_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t batches_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t batch_requests_ NNLUT_GUARDED_BY(mu_) = 0;
  std::uint64_t batch_sequences_ NNLUT_GUARDED_BY(mu_) = 0;
  LatencyHistogram latency_ NNLUT_GUARDED_BY(mu_);
  LatencyHistogram queue_wait_ NNLUT_GUARDED_BY(mu_);
  LatencyHistogram batch_wait_ NNLUT_GUARDED_BY(mu_);
  LatencyHistogram exec_ NNLUT_GUARDED_BY(mu_);
  LatencyHistogram resolve_ NNLUT_GUARDED_BY(mu_);
};

/// Engine-wide view: per-model slot snapshots plus an aggregate in which
/// counters sum and latency quantiles are the worst (max) across slots.
struct EngineStats {
  std::map<std::string, SlotStats> models;
  SlotStats total;
  /// submit() calls naming a model_id that was never registered; these have
  /// no slot ledger to land in.
  std::uint64_t rejected_unknown_model = 0;
};

}  // namespace nnlut::serve
