#include "serve/batcher.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace nnlut::serve {

Batcher::Batcher(RequestQueue& queue, RunFn run, BatcherConfig cfg,
                 StatsLedger* ledger)
    : queue_(&queue), run_(std::move(run)), cfg_(std::move(cfg)),
      ledger_(ledger) {
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  scheduler_ = std::thread([this] {
    runtime::set_current_thread_name(
        cfg_.thread_name.empty() ? "nnlut-sched" : cfg_.thread_name.c_str());
    loop();
  });
}

Batcher::~Batcher() { stop(); }

void Batcher::stop() {
  if (stopped_.exchange(true)) return;
  queue_->close();
  if (scheduler_.joinable()) scheduler_.join();
}

void Batcher::loop() {
  for (;;) {
    // Sleep until new work, the nearest bucket flush deadline, or close.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    for (const auto& kv : buckets_) {
      const auto d = kv.second.items.front().enqueued + cfg_.max_wait;
      if (!deadline || d < *deadline) deadline = d;
    }
    queue_->wait_drain(deadline, drained_);
    const bool closed = queue_->closed();

    if (!drained_.empty()) {
      // One stamp per drain cycle: every request drained together left the
      // queue at the same scheduler instant.
      obs::instant("batcher.drain", drained_.size());
      const auto drained_at = std::chrono::steady_clock::now();
      for (Submission& sub : drained_) sub.dequeued = drained_at;
    }

    for (Submission& sub : drained_) {
      Bucket& b = buckets_[sub.input.seq];
      b.sequences += sub.input.batch;
      b.items.push_back(std::move(sub));
    }

    // Flush buckets that reached the batch threshold.
    for (auto& kv : buckets_)
      while (kv.second.sequences >= cfg_.max_batch) flush_chunk(kv.second);

    // Flush buckets whose oldest member has waited out max_wait — and, on
    // shutdown, everything still buffered.
    const auto now = std::chrono::steady_clock::now();
    for (auto& kv : buckets_) {
      Bucket& b = kv.second;
      while (!b.items.empty() &&
             (closed || b.items.front().enqueued + cfg_.max_wait <= now))
        flush_chunk(b);
    }

    for (auto it = buckets_.begin(); it != buckets_.end();)
      it = it->second.items.empty() ? buckets_.erase(it) : std::next(it);

    // Exit once closed and fully drained. A submission that raced the close
    // still sits in the queue (depth > 0) and gets one more cycle.
    if (closed && buckets_.empty() && queue_->depth() == 0) return;
  }
}

void Batcher::flush_chunk(Bucket& bucket) {
  // Requests never split across batches: take whole requests from the front
  // until max_batch sequences are aboard. The first request always goes, so
  // one larger than max_batch still runs (alone).
  chunk_.clear();
  std::size_t seqs = 0;
  std::size_t taken = 0;
  while (taken < bucket.items.size()) {
    const std::size_t b = bucket.items[taken].input.batch;
    if (!chunk_.empty() && seqs + b > cfg_.max_batch) break;
    seqs += b;
    chunk_.push_back(std::move(bucket.items[taken]));
    ++taken;
    if (seqs >= cfg_.max_batch) break;
  }
  bucket.items.erase(bucket.items.begin(),
                     bucket.items.begin() + static_cast<std::ptrdiff_t>(taken));
  bucket.sequences -= seqs;
  execute();
}

// Stats records run BEFORE the result is released to the waiting client, so
// a stats() snapshot taken after get() returns always counts that request.
void Batcher::finish(const Submission& sub, bool ok,
                     std::chrono::steady_clock::time_point exec_start,
                     std::chrono::steady_clock::time_point exec_end) {
  const auto now = std::chrono::steady_clock::now();
  if (obs::trace_enabled()) {
    // Replay the request's lifecycle as four adjacent complete spans, all
    // carrying the process-global request id so a trace viewer can follow
    // one request across threads (its req.submit instant lands on the
    // client thread, these spans on the scheduler thread).
    const std::uint64_t t0 = obs::trace_ns(sub.enqueued);
    const std::uint64_t t1 = obs::trace_ns(sub.dequeued);
    const std::uint64_t t2 = obs::trace_ns(exec_start);
    const std::uint64_t t3 = obs::trace_ns(exec_end);
    const std::uint64_t t4 = obs::trace_ns(now);
    obs::complete("req.queue_wait", t0, t1, sub.id);
    obs::complete("req.batch_wait", t1, t2, sub.id);
    obs::complete("req.exec", t2, t3, sub.id);
    obs::complete("req.resolve", t3, t4, sub.id);
  }
  if (!ledger_) return;
  const auto us = [](std::chrono::steady_clock::duration d) {
    return std::chrono::duration_cast<std::chrono::microseconds>(d);
  };
  StageLatency st;
  st.queue_wait = us(sub.dequeued - sub.enqueued);
  st.batch_wait = us(exec_start - sub.dequeued);
  st.exec = us(exec_end - exec_start);
  st.resolve = us(now - exec_end);
  st.total = us(now - sub.enqueued);
  ledger_->record_done(st, ok);
}

void Batcher::execute() {
  // Claim each member; requests cancelled while queued drop out here.
  std::vector<Submission>& live = live_;
  live.clear();
  live.reserve(chunk_.size());
  for (Submission& sub : chunk_) {
    if (sub.state->claim()) {
      live.push_back(std::move(sub));
    } else {
      obs::instant("req.cancelled", sub.id);
      if (ledger_) ledger_->record_cancelled();
    }
  }
  chunk_.clear();
  if (live.empty()) return;

  const std::size_t seq = live.front().input.seq;
  std::size_t total_batch = 0;
  bool any_types = false;
  for (const Submission& s : live) {
    total_batch += s.input.batch;
    if (!s.input.type_ids.empty()) any_types = true;
  }

  // Merge: row-wise concatenation. encode() reads an empty type_ids as
  // all-zero segment ids, so zero-filling a member's missing type_ids keeps
  // its rows bit-identical when another member supplies real ones. merged_
  // is a long-lived staging buffer: clear() keeps the vectors' capacity, so
  // a warmed scheduler merges without allocating.
  const transformer::BatchInput* input;
  transformer::BatchInput& merged = merged_;
  merged.token_ids.clear();
  merged.type_ids.clear();
  if (live.size() == 1) {
    input = &live.front().input;
  } else {
    // Span id = member request count; the merged row-concat is the part of
    // batching that actually copies token data.
    obs::ScopedSpan merge_span("batch.merge", live.size());
    merged.batch = total_batch;
    merged.seq = seq;
    merged.token_ids.reserve(total_batch * seq);
    if (any_types) merged.type_ids.reserve(total_batch * seq);
    for (const Submission& s : live) {
      merged.token_ids.insert(merged.token_ids.end(), s.input.token_ids.begin(),
                              s.input.token_ids.end());
      if (any_types) {
        if (s.input.type_ids.empty()) {
          merged.type_ids.resize(merged.type_ids.size() +
                                 s.input.batch * s.input.seq);
        } else {
          merged.type_ids.insert(merged.type_ids.end(),
                                 s.input.type_ids.begin(),
                                 s.input.type_ids.end());
        }
      }
    }
    input = &merged;
  }

  Tensor out;
  std::exception_ptr batch_err;
  const auto exec_start = std::chrono::steady_clock::now();
  {
    // Span id = merged sequence count (batch occupancy).
    obs::ScopedSpan exec_span("batch.exec", total_batch);
    try {
      out = run_(*input);
      if (live.size() > 1 && (out.rank() != 2 || out.dim(0) % total_batch != 0))
        throw std::logic_error("serve: model returned an unsplittable shape");
    } catch (...) {
      batch_err = std::current_exception();
    }
  }
  const auto exec_end = std::chrono::steady_clock::now();

  if (!batch_err) {
    if (ledger_) ledger_->record_batch(live.size(), total_batch);
    if (live.size() == 1) {
      Submission& s = live.front();
      finish(s, true, exec_start, exec_end);
      s.state->set_value(std::move(out));
    } else {
      // Slice each member's rows back out. Classification heads return one
      // row per sequence, span heads `seq` rows per sequence; either way the
      // merged tensor is the concatenation of the solo results.
      const std::size_t rows_per_seq = out.dim(0) / total_batch;
      const std::size_t cols = out.dim(1);
      std::size_t row = 0;
      for (Submission& s : live) {
        const std::size_t item_rows = s.input.batch * rows_per_seq;
        Tensor piece = Tensor::pooled({item_rows, cols}, cfg_.pool);
        std::copy(out.data() + row * cols, out.data() + (row + item_rows) * cols,
                  piece.data());
        row += item_rows;
        finish(s, true, exec_start, exec_end);
        s.state->set_value(std::move(piece));
      }
    }
  } else if (live.size() == 1) {
    // Nothing to isolate: the request owns its error.
    finish(live.front(), false, exec_start, exec_end);
    live.front().state->set_error(batch_err);
  } else {
    // A member poisoned the batch (or the model rejected it whole): fall
    // back to solo execution so only the faulty request sees its error.
    // Each solo run gets its own exec window so the stage histograms and
    // req.exec spans reflect the run that actually served the request.
    for (Submission& s : live) {
      const auto solo_start = std::chrono::steady_clock::now();
      try {
        Tensor solo;
        {
          obs::ScopedSpan solo_span("batch.exec", s.input.batch);
          solo = run_(s.input);
        }
        if (ledger_) ledger_->record_batch(1, s.input.batch);
        finish(s, true, solo_start, std::chrono::steady_clock::now());
        s.state->set_value(std::move(solo));
      } catch (...) {
        finish(s, false, solo_start, std::chrono::steady_clock::now());
        s.state->set_error(std::current_exception());
      }
    }
  }
  // Release the resolved states now (clients may be the last owners);
  // clear() keeps the vector's capacity for the next chunk.
  live.clear();
}

}  // namespace nnlut::serve
