#include "serve/request_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace nnlut::serve {

namespace detail {

bool ResultState::claim() {
  std::lock_guard<std::mutex> lk(mu_);
  if (phase_ != Phase::kQueued) return false;  // cancelled while queued
  phase_ = Phase::kRunning;
  return true;
}

void ResultState::set_value(Tensor logits) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (phase_ == Phase::kDone) return;
    value_ = std::move(logits);
    phase_ = Phase::kDone;
  }
  cv_.notify_all();
}

void ResultState::set_error(std::exception_ptr err) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (phase_ == Phase::kDone) return;
    error_ = std::move(err);
    phase_ = Phase::kDone;
  }
  cv_.notify_all();
}

bool ResultState::cancel() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (phase_ != Phase::kQueued) return false;
    error_ = std::make_exception_ptr(
        RequestCancelled("serve: request cancelled before execution"));
    phase_ = Phase::kDone;
  }
  cv_.notify_all();
  return true;
}

void ResultState::wait() const {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return phase_ == Phase::kDone; });
}

bool ResultState::wait_for(std::chrono::microseconds timeout) const {
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, timeout, [&] { return phase_ == Phase::kDone; });
}

bool ResultState::done() const {
  std::lock_guard<std::mutex> lk(mu_);
  return phase_ == Phase::kDone;
}

Tensor ResultState::take() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return phase_ == Phase::kDone; });
  if (error_) std::rethrow_exception(error_);
  return std::move(value_);
}

}  // namespace detail

bool PendingResult::ready() const { return state_ && state_->done(); }

void PendingResult::wait() const {
  if (!state_) throw std::logic_error("PendingResult::wait: invalid handle");
  state_->wait();
}

bool PendingResult::wait_for(std::chrono::microseconds timeout) const {
  if (!state_) throw std::logic_error("PendingResult::wait_for: invalid handle");
  return state_->wait_for(timeout);
}

Tensor PendingResult::get() {
  if (!state_) throw std::logic_error("PendingResult::get: invalid handle");
  return state_->take();
}

bool PendingResult::cancel() { return state_ && state_->cancel(); }

PendingResult RequestQueue::submit(transformer::BatchInput in, bool* accepted) {
  auto state = std::make_shared<detail::ResultState>();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!closed_) {
      items_.push_back(Submission{state, std::move(in),
                                  std::chrono::steady_clock::now(), next_id_++});
      peak_depth_ = std::max(peak_depth_, items_.size());
      cv_.notify_all();
      if (accepted) *accepted = true;
      return PendingResult(std::move(state));
    }
  }
  if (accepted) *accepted = false;
  state->set_error(std::make_exception_ptr(
      RequestCancelled("serve: queue closed, request rejected")));
  return PendingResult(std::move(state));
}

PendingResult RequestQueue::rejected(std::exception_ptr err) {
  auto state = std::make_shared<detail::ResultState>();
  state->set_error(std::move(err));
  return PendingResult(std::move(state));
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return items_.size();
}

std::size_t RequestQueue::peak_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peak_depth_;
}

std::vector<Submission> RequestQueue::wait_drain(
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto ready = [&] { return closed_ || !items_.empty(); };
  if (deadline) {
    cv_.wait_until(lk, *deadline, ready);
  } else {
    cv_.wait(lk, ready);
  }
  std::vector<Submission> out;
  out.reserve(items_.size());
  while (!items_.empty()) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
  }
  return out;
}

}  // namespace nnlut::serve
