#include "serve/request_queue.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace nnlut::serve {

namespace {
// Process-global so request ids are unique across every queue (and so
// across model slots); trace viewers can then correlate a request's spans
// by id alone. Starts at 1: id 0 marks "no request" in span args.
std::atomic<std::uint64_t> g_next_request_id{1};
}  // namespace

namespace detail {

bool ResultState::claim() {
  MutexLock lk(mu_);
  if (phase_ != Phase::kQueued) return false;  // cancelled while queued
  phase_ = Phase::kRunning;
  return true;
}

void ResultState::set_value(Tensor logits) {
  std::function<void()> cb;
  {
    MutexLock lk(mu_);
    if (phase_ == Phase::kDone) return;
    value_ = std::move(logits);
    phase_ = Phase::kDone;
    cb = std::move(done_cb_);
    done_cb_ = nullptr;
  }
  cv_.notify_all();
  if (cb) cb();  // outside mu_, then destroyed: captures released here
}

void ResultState::set_error(std::exception_ptr err) {
  std::function<void()> cb;
  {
    MutexLock lk(mu_);
    if (phase_ == Phase::kDone) return;
    error_ = std::move(err);
    phase_ = Phase::kDone;
    cb = std::move(done_cb_);
    done_cb_ = nullptr;
  }
  cv_.notify_all();
  if (cb) cb();
}

bool ResultState::reject_if_queued(std::exception_ptr err) {
  std::function<void()> cb;
  {
    MutexLock lk(mu_);
    if (phase_ != Phase::kQueued) return false;  // already cancelled
    error_ = std::move(err);
    phase_ = Phase::kDone;
    cb = std::move(done_cb_);
    done_cb_ = nullptr;
  }
  cv_.notify_all();
  if (cb) cb();
  return true;
}

bool ResultState::cancel() {
  std::function<void()> cb;
  {
    MutexLock lk(mu_);
    if (phase_ != Phase::kQueued) return false;
    error_ = std::make_exception_ptr(
        RequestCancelled("serve: request cancelled before execution"));
    phase_ = Phase::kDone;
    cb = std::move(done_cb_);
    done_cb_ = nullptr;
  }
  cv_.notify_all();
  if (cb) cb();
  return true;
}

void ResultState::on_done(std::function<void()> cb) {
  if (!cb)
    throw std::invalid_argument("ResultState::on_done: null callback");
  bool fire_now = false;
  {
    MutexLock lk(mu_);
    if (done_cb_registered_)
      throw std::logic_error(
          "ResultState::on_done: a completion callback is already "
          "registered (at most one per request)");
    done_cb_registered_ = true;
    if (phase_ == Phase::kDone) {
      fire_now = true;  // run below, outside mu_
    } else {
      done_cb_ = std::move(cb);
    }
  }
  if (fire_now) cb();
}

void ResultState::wait() const {
  UniqueLock lk(mu_);
  while (phase_ != Phase::kDone) cv_.wait(lk);
}

bool ResultState::wait_for(std::chrono::microseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  UniqueLock lk(mu_);
  while (phase_ != Phase::kDone) {
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout)
      return phase_ == Phase::kDone;
  }
  return true;
}

bool ResultState::done() const {
  MutexLock lk(mu_);
  return phase_ == Phase::kDone;
}

Tensor ResultState::take() {
  UniqueLock lk(mu_);
  while (phase_ != Phase::kDone) cv_.wait(lk);
  if (error_) std::rethrow_exception(error_);
  if (taken_)
    throw std::logic_error(
        "PendingResult::get: result already taken (get() moves the logits "
        "out and may only be called once per request)");
  taken_ = true;
  return std::move(value_);
}

}  // namespace detail

bool PendingResult::ready() const { return state_ && state_->done(); }

void PendingResult::wait() const {
  if (!state_) throw std::logic_error("PendingResult::wait: invalid handle");
  state_->wait();
}

bool PendingResult::wait_for(std::chrono::microseconds timeout) const {
  if (!state_) throw std::logic_error("PendingResult::wait_for: invalid handle");
  return state_->wait_for(timeout);
}

Tensor PendingResult::get() {
  if (!state_) throw std::logic_error("PendingResult::get: invalid handle");
  return state_->take();
}

bool PendingResult::cancel() { return state_ && state_->cancel(); }

void PendingResult::on_ready(std::function<void()> cb) {
  if (!state_)
    throw std::logic_error("PendingResult::on_ready: invalid handle");
  state_->on_done(std::move(cb));
}

RequestQueue::RequestQueue(AdmissionConfig admission, StatsLedger* ledger)
    : admission_(admission), ledger_(ledger) {}

PendingResult RequestQueue::submit(transformer::BatchInput in,
                                   SubmitOutcome* outcome) {
  using Status = SubmitOutcome::Status;
  SubmitOutcome out;
  auto state = std::make_shared<detail::ResultState>();
  // Evicted states are rejected outside the queue mutex: set_error notifies
  // a client that may immediately re-submit (and take the same mutex).
  std::vector<std::shared_ptr<detail::ResultState>> evicted;
  {
    MutexLock lk(mu_);
    if (!closed_) {
      if (admission_.max_queue_depth > 0 &&
          items_.size() >= admission_.max_queue_depth) {
        if (admission_.shed_policy == ShedPolicy::kRejectNew) {
          out.status = Status::kRejectedOverload;
        } else {
          // kRejectOldest: free exactly the slots needed. An evicted entry
          // that was already cancelled still frees its slot but resolves as
          // cancelled, not as an overload shed. Classify and record the
          // ledger HERE, before the victim's result resolves below, so the
          // victim's client never observes ServerOverloaded ahead of the
          // shed appearing in stats. (A cancel() racing the classification
          // can at worst swap one shed for one cancel in the breakdown;
          // the reconciliation totals stay exact either way.)
          while (items_.size() >= admission_.max_queue_depth) {
            auto victim = std::move(items_.front().state);
            items_.pop_front();
            if (victim->done()) {
              ++out.evicted_cancelled;  // cancel already resolved it
              if (ledger_) ledger_->record_cancelled();
            } else {
              ++out.evicted_overload;
              if (ledger_) ledger_->record_shed_oldest();
              evicted.push_back(std::move(victim));
            }
          }
        }
      }
      if (out.status == Status::kAccepted) {
        const std::uint64_t id =
            g_next_request_id.fetch_add(1, std::memory_order_relaxed);
        items_.push_back(Submission{state, std::move(in),
                                    std::chrono::steady_clock::now(),
                                    std::chrono::steady_clock::time_point{},
                                    id});
        peak_depth_ = std::max(peak_depth_, items_.size());
        if (ledger_) ledger_->record_admitted();
        obs::instant("req.submit", id);
        cv_.notify_all();
      } else if (ledger_) {
        ledger_->record_rejected_overload();
      }
    } else {
      out.status = Status::kRejectedClosed;
      if (ledger_) ledger_->record_rejected_shutdown();
    }
  }
  for (auto& victim : evicted)
    victim->reject_if_queued(std::make_exception_ptr(
        ServerOverloaded("serve: queue full, oldest request shed "
                         "(ShedPolicy::kRejectOldest)")));
  switch (out.status) {
    case Status::kAccepted:
      break;
    case Status::kRejectedClosed:
      state->set_error(std::make_exception_ptr(
          RequestCancelled("serve: queue closed, request rejected")));
      break;
    case Status::kRejectedOverload:
      state->set_error(std::make_exception_ptr(ServerOverloaded(
          "serve: queue full, request rejected (ShedPolicy::kRejectNew)")));
      break;
  }
  if (outcome) *outcome = out;
  return PendingResult(std::move(state));
}

PendingResult RequestQueue::rejected(std::exception_ptr err) {
  auto state = std::make_shared<detail::ResultState>();
  state->set_error(std::move(err));
  return PendingResult(std::move(state));
}

void RequestQueue::close() {
  {
    MutexLock lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  MutexLock lk(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  MutexLock lk(mu_);
  return items_.size();
}

std::size_t RequestQueue::peak_depth() const {
  MutexLock lk(mu_);
  return peak_depth_;
}

RequestQueue::Depths RequestQueue::depths() const {
  MutexLock lk(mu_);
  return Depths{items_.size(), peak_depth_};
}

std::vector<Submission> RequestQueue::wait_drain(
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  std::vector<Submission> out;
  wait_drain(deadline, out);
  return out;
}

void RequestQueue::wait_drain(
    std::optional<std::chrono::steady_clock::time_point> deadline,
    std::vector<Submission>& out) {
  out.clear();
  UniqueLock lk(mu_);
  while (!closed_ && items_.empty()) {
    if (deadline) {
      if (cv_.wait_until(lk, *deadline) == std::cv_status::timeout) break;
    } else {
      cv_.wait(lk);
    }
  }
  out.reserve(items_.size());
  while (!items_.empty()) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
  }
}

}  // namespace nnlut::serve
