// Minimal dense row-major float tensor. This is the substrate for the
// from-scratch transformer (src/nn, src/transformer); it intentionally keeps
// a small surface: shapes, element access, views as spans, and a handful of
// structural helpers. Math lives in tensor/ops.h.
//
// Storage comes from one of two sources:
//   - heap (std::vector<float>): the default, used everywhere outside the
//     serving hot path; construction/copy semantics are plain value
//     semantics.
//   - a runtime::BufferPool slab (Tensor::pooled): 64-byte-aligned storage
//     recycled through the pool's size-classed free lists, used by the
//     serving Workspace and for result tensors that escape to clients (the
//     slab returns to the pool when the client destroys the tensor, from
//     any thread). The storage source is invisible to every consumer —
//     data()/flat()/at() behave identically and all math is bit-identical
//     either way.
// reset() reshapes in place, reusing the current storage whenever its
// capacity covers the new element count — the primitive the serving
// Workspace uses to reach a zero-allocation steady state.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "runtime/buffer_pool.h"

namespace nnlut {

class Tensor {
 public:
  Tensor() = default;

  /// Construct zero-filled tensor with the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  static Tensor zeros(std::initializer_list<std::size_t> shape) {
    return Tensor(shape);
  }
  static Tensor full(std::initializer_list<std::size_t> shape, float value);

  /// Zero-filled tensor whose storage is a slab acquired from `pool`
  /// (64-byte aligned, size-class recycled). nullptr pool falls back to a
  /// plain heap tensor, so call sites keep a single code path for the
  /// pools-on / pools-off configurations.
  static Tensor pooled(std::vector<std::size_t> shape,
                       runtime::BufferPool* pool);
  static Tensor pooled(std::initializer_list<std::size_t> shape,
                       runtime::BufferPool* pool) {
    return pooled(std::vector<std::size_t>(shape), pool);
  }

  /// Copies deep-copy the elements into heap storage (pool slabs are not
  /// multiplied behind the pool's back); moves transfer the slab and leave
  /// the source empty.
  Tensor(const Tensor& o);
  Tensor& operator=(const Tensor& o);
  Tensor(Tensor&& o) noexcept
      : shape_(std::move(o.shape_)),
        size_(o.size_),
        heap_(std::move(o.heap_)),
        pooled_(std::move(o.pooled_)) {
    o.size_ = 0;
    o.shape_.clear();
  }
  Tensor& operator=(Tensor&& o) noexcept {
    if (this != &o) {
      shape_ = std::move(o.shape_);
      size_ = o.size_;
      heap_ = std::move(o.heap_);
      pooled_ = std::move(o.pooled_);
      o.size_ = 0;
      o.shape_.clear();
    }
    return *this;
  }

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const {
    assert(i < shape_.size());
    return shape_[i];
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True when the storage is a pool slab (see Tensor::pooled).
  bool pool_backed() const { return static_cast<bool>(pooled_); }

  /// Elements the current storage can hold without reallocating; reset() to
  /// any shape within this is allocation-free.
  std::size_t capacity() const {
    return pooled_ ? pooled_.capacity() / sizeof(float) : heap_.capacity();
  }

  /// Reshape to `shape` and zero-fill. Reuses the current storage when its
  /// capacity covers the new element count; otherwise reallocates from the
  /// original source (the pool for pool-backed tensors — or the heap if the
  /// pool is gone — and the heap otherwise). This is the Workspace reuse
  /// primitive: at steady state every reset is allocation-free.
  void reset(std::span<const std::size_t> shape);
  void reset(std::initializer_list<std::size_t> shape) {
    reset(std::span<const std::size_t>(shape.begin(), shape.size()));
  }

  float* data() {
    return pooled_ ? static_cast<float*>(pooled_.data()) : heap_.data();
  }
  const float* data() const {
    return pooled_ ? static_cast<const float*>(pooled_.data()) : heap_.data();
  }
  std::span<float> flat() { return {data(), size_}; }
  std::span<const float> flat() const { return {data(), size_}; }

  float& operator[](std::size_t i) {
    assert(i < size_);
    return data()[i];
  }
  float operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }

  /// 2-D accessors (most of the transformer works on [rows, cols] views).
  float& at(std::size_t r, std::size_t c) {
    assert(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data()[r * shape_[1] + c];
  }
  float at(std::size_t r, std::size_t c) const {
    assert(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data()[r * shape_[1] + c];
  }

  /// 3-D accessor for [batch, rows, cols] tensors.
  float& at(std::size_t b, std::size_t r, std::size_t c) {
    assert(rank() == 3);
    return data()[(b * shape_[1] + r) * shape_[2] + c];
  }
  float at(std::size_t b, std::size_t r, std::size_t c) const {
    assert(rank() == 3);
    return data()[(b * shape_[1] + r) * shape_[2] + c];
  }

  /// Mutable view of row r of a 2-D tensor.
  std::span<float> row(std::size_t r) {
    assert(rank() == 2 && r < shape_[0]);
    return {data() + r * shape_[1], shape_[1]};
  }
  std::span<const float> row(std::size_t r) const {
    assert(rank() == 2 && r < shape_[0]);
    return {data() + r * shape_[1], shape_[1]};
  }

  /// Reinterpret with a new shape of identical element count.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// Set all elements to v.
  void fill(float v);

  /// Set all elements to 0 (used for gradient reset).
  void zero() { fill(0.0f); }

  std::string shape_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::size_t size_ = 0;
  std::vector<float> heap_;         // default storage
  runtime::PooledBuffer pooled_;    // engaged for pool-backed tensors
};

/// Total element count implied by a shape.
std::size_t shape_numel(std::span<const std::size_t> shape);

}  // namespace nnlut
