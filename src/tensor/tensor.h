// Minimal dense row-major float tensor. This is the substrate for the
// from-scratch transformer (src/nn, src/transformer); it intentionally keeps
// a small surface: shapes, element access, views as spans, and a handful of
// structural helpers. Math lives in tensor/ops.h.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace nnlut {

class Tensor {
 public:
  Tensor() = default;

  /// Construct zero-filled tensor with the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  static Tensor zeros(std::initializer_list<std::size_t> shape) {
    return Tensor(shape);
  }
  static Tensor full(std::initializer_list<std::size_t> shape, float value);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const {
    assert(i < shape_.size());
    return shape_[i];
  }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  /// 2-D accessors (most of the transformer works on [rows, cols] views).
  float& at(std::size_t r, std::size_t c) {
    assert(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }
  float at(std::size_t r, std::size_t c) const {
    assert(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }

  /// 3-D accessor for [batch, rows, cols] tensors.
  float& at(std::size_t b, std::size_t r, std::size_t c) {
    assert(rank() == 3);
    return data_[(b * shape_[1] + r) * shape_[2] + c];
  }
  float at(std::size_t b, std::size_t r, std::size_t c) const {
    assert(rank() == 3);
    return data_[(b * shape_[1] + r) * shape_[2] + c];
  }

  /// Mutable view of row r of a 2-D tensor.
  std::span<float> row(std::size_t r) {
    assert(rank() == 2 && r < shape_[0]);
    return {data_.data() + r * shape_[1], shape_[1]};
  }
  std::span<const float> row(std::size_t r) const {
    assert(rank() == 2 && r < shape_[0]);
    return {data_.data() + r * shape_[1], shape_[1]};
  }

  /// Reinterpret with a new shape of identical element count.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// Set all elements to v.
  void fill(float v);

  /// Set all elements to 0 (used for gradient reset).
  void zero() { fill(0.0f); }

  std::string shape_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// Total element count implied by a shape.
std::size_t shape_numel(std::span<const std::size_t> shape);

}  // namespace nnlut
