#include "tensor/tensor.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace nnlut {

std::size_t shape_numel(std::span<const std::size_t> shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         std::multiplies<>());
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor Tensor::full(std::initializer_list<std::size_t> shape, float value) {
  Tensor t(shape);
  t.fill(value);
  return t;
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  assert(shape_numel(new_shape) == size());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace nnlut
