#include "tensor/tensor.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace nnlut {

std::size_t shape_numel(std::span<const std::size_t> shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         std::multiplies<>());
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)),
      size_(shape_numel(shape_)),
      heap_(size_, 0.0f) {}

Tensor Tensor::full(std::initializer_list<std::size_t> shape, float value) {
  Tensor t(shape);
  t.fill(value);
  return t;
}

Tensor Tensor::pooled(std::vector<std::size_t> shape,
                      runtime::BufferPool* pool) {
  if (pool == nullptr) return Tensor(std::move(shape));
  Tensor t;
  t.shape_ = std::move(shape);
  t.size_ = shape_numel(t.shape_);
  t.pooled_ = pool->acquire(t.size_ * sizeof(float));
  t.fill(0.0f);  // pool slabs carry recycled contents
  return t;
}

Tensor::Tensor(const Tensor& o)
    : shape_(o.shape_), size_(o.size_), heap_(o.data(), o.data() + o.size_) {}

Tensor& Tensor::operator=(const Tensor& o) {
  if (this != &o) {
    shape_ = o.shape_;
    size_ = o.size_;
    heap_.assign(o.data(), o.data() + o.size_);
    pooled_.release();
  }
  return *this;
}

void Tensor::reset(std::span<const std::size_t> shape) {
  shape_.assign(shape.begin(), shape.end());
  size_ = shape_numel(shape_);
  if (pooled_) {
    if (pooled_.capacity() < size_ * sizeof(float)) {
      // Grow from the same pool this tensor came from; if the pool is gone
      // the sibling is null and the tensor falls back to heap storage.
      runtime::PooledBuffer grown =
          pooled_.acquire_sibling(size_ * sizeof(float));
      pooled_ = std::move(grown);
      if (!pooled_) heap_.resize(size_);
    }
  } else {
    heap_.resize(size_);
  }
  fill(0.0f);
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  assert(shape_numel(new_shape) == size());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.size_ = size_;
  t.heap_.assign(data(), data() + size_);
  return t;
}

void Tensor::fill(float v) { std::fill(data(), data() + size_, v); }

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace nnlut
