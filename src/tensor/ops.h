// Dense math on Tensors: matmul variants (the hot path of transformer
// training and inference), bias/elementwise helpers and row-wise reductions.
// matmul and matmul_bt shard output-row blocks across the runtime thread
// pool (runtime/thread_pool.h); per-row accumulation order is unchanged, so
// results are bit-identical for any pool size.
#pragma once

#include <functional>
#include <span>

#include "tensor/tensor.h"

namespace nnlut {

/// C = A(m,k) * B(k,n). C must be preshaped to (m,n); it is overwritten.
void matmul(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A(m,k) * B(n,k)^T  -> (m,n).
void matmul_bt(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A(k,m)^T * B(k,n) -> (m,n).
void matmul_at(const Tensor& a, const Tensor& b, Tensor& c);

/// C += A(k,m)^T * B(k,n). Used for weight-gradient accumulation.
void matmul_at_accumulate(const Tensor& a, const Tensor& b, Tensor& c);

/// y += x (same shape).
void add_inplace(Tensor& y, const Tensor& x);

/// Adds bias vector b (len n) to every row of 2-D tensor y (m,n).
void add_row_bias(Tensor& y, std::span<const float> b);

/// y = alpha * y.
void scale_inplace(Tensor& y, float alpha);

/// Column sums of 2-D tensor x (m,n), accumulated into out (len n).
void col_sum_accumulate(const Tensor& x, std::span<float> out);

/// Apply f to every element in place.
void apply(Tensor& t, const std::function<float(float)>& f);

/// Max |x| over the whole tensor (0 for empty).
float abs_max(const Tensor& t);

}  // namespace nnlut
