#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "runtime/thread_pool.h"

namespace nnlut {

namespace {
void check_2d(const Tensor& t) {
  assert(t.rank() == 2);
  (void)t;
}
}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  check_2d(a);
  check_2d(b);
  check_2d(c);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  assert(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n);
  c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // i-k-j order: streams B rows, vectorizes the inner j loop. Output rows
  // are independent, so row blocks shard across the runtime pool with the
  // per-row accumulation order unchanged (bit-identical for any pool size).
  runtime::parallel_for(
      0, m, runtime::grain_for(k * n), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t kk = 0; kk < k; ++kk) {
            const float av = pa[i * k + kk];
            if (av == 0.0f) continue;
            const float* brow = pb + kk * n;
            float* crow = pc + i * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      });
}

void matmul_bt(const Tensor& a, const Tensor& b, Tensor& c) {
  check_2d(a);
  check_2d(b);
  check_2d(c);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  assert(b.dim(1) == k && c.dim(0) == m && c.dim(1) == n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  runtime::parallel_for(
      0, m, runtime::grain_for(k * n), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float* arow = pa + i * k;
          for (std::size_t j = 0; j < n; ++j) {
            const float* brow = pb + j * k;
            float acc = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
            pc[i * n + j] = acc;
          }
        }
      });
}

void matmul_at(const Tensor& a, const Tensor& b, Tensor& c) {
  c.zero();
  matmul_at_accumulate(a, b, c);
}

void matmul_at_accumulate(const Tensor& a, const Tensor& b, Tensor& c) {
  check_2d(a);
  check_2d(b);
  check_2d(c);
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  assert(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void add_inplace(Tensor& y, const Tensor& x) {
  assert(y.size() == x.size());
  float* py = y.data();
  const float* px = x.data();
  for (std::size_t i = 0; i < y.size(); ++i) py[i] += px[i];
}

void add_row_bias(Tensor& y, std::span<const float> b) {
  check_2d(y);
  assert(y.dim(1) == b.size());
  const std::size_t m = y.dim(0), n = y.dim(1);
  float* p = y.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) p[i * n + j] += b[j];
}

void scale_inplace(Tensor& y, float alpha) {
  for (float& v : y.flat()) v *= alpha;
}

void col_sum_accumulate(const Tensor& x, std::span<float> out) {
  check_2d(x);
  assert(x.dim(1) == out.size());
  const std::size_t m = x.dim(0), n = x.dim(1);
  const float* p = x.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) out[j] += p[i * n + j];
}

void apply(Tensor& t, const std::function<float(float)>& f) {
  for (float& v : t.flat()) v = f(v);
}

float abs_max(const Tensor& t) {
  float m = 0.0f;
  for (float v : t.flat()) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace nnlut
