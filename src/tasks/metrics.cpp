#include "tasks/metrics.h"

#include <cassert>
#include <stdexcept>

#include "numerics/stats.h"

namespace nnlut::tasks {

double compute_metric(const TaskData& task, std::span<const Example> examples,
                      const Predictions& pred) {
  const std::size_t n = examples.size();

  if (task.is_span) {
    if (pred.spans.size() != n)
      throw std::invalid_argument("span predictions size mismatch");
    double f1 = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      f1 += span_f1(pred.spans[i].first, pred.spans[i].second,
                    examples[i].span_start, examples[i].span_end);
    return n ? 100.0 * f1 / static_cast<double>(n) : 0.0;
  }

  if (task.is_regression) {
    if (pred.scores.size() != n)
      throw std::invalid_argument("regression predictions size mismatch");
    std::vector<float> gold(n);
    for (std::size_t i = 0; i < n; ++i) gold[i] = examples[i].target;
    return 100.0 * spearman(pred.scores, gold);
  }

  if (pred.labels.size() != n)
    throw std::invalid_argument("label predictions size mismatch");
  std::vector<int> gold(n);
  for (std::size_t i = 0; i < n; ++i) gold[i] = examples[i].label;

  switch (task.metric) {
    case MetricKind::kAccuracy:
      return 100.0 * accuracy(pred.labels, gold);
    case MetricKind::kF1:
      return 100.0 * f1_binary(pred.labels, gold);
    case MetricKind::kMatthews:
      return 100.0 * matthews_corrcoef(pred.labels, gold);
    default:
      throw std::invalid_argument("metric/task mismatch");
  }
}

}  // namespace nnlut::tasks
