// Task-level metric computation over model outputs.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "tasks/tasks.h"

namespace nnlut::tasks {

/// Model outputs for a dataset, in example order. Only the member matching
/// the task kind is read.
struct Predictions {
  std::vector<int> labels;                     // classification
  std::vector<float> scores;                   // regression
  std::vector<std::pair<int, int>> spans;      // span extraction
};

/// Compute the task's headline metric (the number reported in the paper's
/// tables) over the dev split. Scale: [0, 100] like GLUE conventions.
double compute_metric(const TaskData& task, std::span<const Example> examples,
                      const Predictions& pred);

}  // namespace nnlut::tasks
