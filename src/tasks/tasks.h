// Synthetic stand-ins for the paper's evaluation datasets (GLUE tasks and
// SQuAD v1.1). Each generator mirrors the *shape* of its GLUE counterpart:
// input format (single sentence vs sentence pair), label space (2/3-way
// classification, regression, span) and evaluation metric. The linguistic
// content is synthetic — token-level structures a small transformer must use
// attention to solve — because the real datasets are not available offline.
// DESIGN.md documents this substitution.
//
// Token conventions: 0 = [PAD] (unused; sequences are generated at full
// length), 1 = [CLS], 2 = [SEP], 3 = filler, content tokens are 4..vocab-1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "numerics/rng.h"

namespace nnlut::tasks {

enum class TaskId {
  kMrpc,   // paraphrase pair, accuracy (shuffled copy vs corrupted copy)
  kRte,    // entailment pair, accuracy (hypothesis tokens subset of premise)
  kCola,   // acceptability, Matthews corr (cyclic token-class grammar)
  kSst2,   // sentiment, accuracy (signed token valence sum)
  kStsb,   // similarity regression, Spearman (Jaccard overlap * 5)
  kQqp,    // duplicate pair, F1 (shuffle + one synonym swap)
  kMnli,   // 3-way entailment, accuracy (subset / disjoint / partial)
  kQnli,   // question-passage entailment, accuracy (answer token present)
  kSquad,  // span extraction, F1 (marker-introduced answer span)
};

enum class MetricKind { kAccuracy, kF1, kMatthews, kSpearman, kSpanF1 };

struct Example {
  std::vector<int> tokens;    // length = seq_len, [CLS] at position 0
  std::vector<int> type_ids;  // 0 for segment A / single, 1 for segment B
  int label = 0;              // classification tasks
  float target = 0.0f;        // regression tasks
  int span_start = 0;         // span tasks (inclusive token indices)
  int span_end = 0;
};

struct TaskData {
  TaskId id{};
  std::string name;
  MetricKind metric{};
  int num_labels = 2;   // 1 for regression, 2 for span (start/end logits)
  bool is_regression = false;
  bool is_span = false;
  std::size_t seq_len = 24;
  std::size_t vocab = 64;
  std::vector<Example> train;
  std::vector<Example> dev;
};

struct TaskGenOptions {
  std::size_t n_train = 4096;
  std::size_t n_dev = 512;
  std::size_t seq_len = 24;
  std::size_t vocab = 64;
  std::uint64_t seed = 1;
};

/// Generate the dataset for one task.
TaskData make_task(TaskId id, const TaskGenOptions& opt = {});

/// Table-2 column order of the paper.
std::vector<TaskId> glue_suite();

const char* task_name(TaskId id);
const char* metric_name(MetricKind m);

/// Special token ids.
inline constexpr int kPad = 0;
inline constexpr int kCls = 1;
inline constexpr int kSep = 2;
inline constexpr int kFiller = 3;
inline constexpr int kFirstContent = 4;

}  // namespace nnlut::tasks
