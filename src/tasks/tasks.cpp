#include "tasks/tasks.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>
#include <stdexcept>

namespace nnlut::tasks {

namespace {

int content_range(const TaskGenOptions& opt) {
  return static_cast<int>(opt.vocab) - kFirstContent;
}

int random_content(Rng& rng, const TaskGenOptions& opt) {
  return kFirstContent + rng.uniform_int(0, content_range(opt) - 1);
}

/// Assemble "[CLS] a... [SEP]" padded with filler to seq_len (single segment).
Example single_segment(const std::vector<int>& a, const TaskGenOptions& opt) {
  Example e;
  e.tokens.assign(opt.seq_len, kFiller);
  e.type_ids.assign(opt.seq_len, 0);
  e.tokens[0] = kCls;
  std::size_t pos = 1;
  for (int t : a) {
    if (pos + 1 >= opt.seq_len) break;
    e.tokens[pos++] = t;
  }
  if (pos < opt.seq_len) e.tokens[pos] = kSep;
  return e;
}

/// Assemble "[CLS] a... [SEP] b... [SEP]" with type ids 0/1.
Example pair_segments(const std::vector<int>& a, const std::vector<int>& b,
                      const TaskGenOptions& opt) {
  Example e;
  e.tokens.assign(opt.seq_len, kFiller);
  e.type_ids.assign(opt.seq_len, 1);
  e.tokens[0] = kCls;
  e.type_ids[0] = 0;
  std::size_t pos = 1;
  for (int t : a) {
    if (pos + 2 >= opt.seq_len) break;
    e.tokens[pos] = t;
    e.type_ids[pos] = 0;
    ++pos;
  }
  e.tokens[pos] = kSep;
  e.type_ids[pos] = 0;
  ++pos;
  for (int t : b) {
    if (pos + 1 >= opt.seq_len) break;
    e.tokens[pos] = t;
    e.type_ids[pos] = 1;
    ++pos;
  }
  if (pos < opt.seq_len) e.tokens[pos] = kSep;
  return e;
}

std::vector<int> random_tokens(std::size_t n, Rng& rng,
                               const TaskGenOptions& opt) {
  std::vector<int> v(n);
  for (int& t : v) t = random_content(rng, opt);
  return v;
}

std::vector<int> distinct_tokens(std::size_t n, Rng& rng,
                                 const TaskGenOptions& opt) {
  std::set<int> s;
  while (s.size() < n) s.insert(random_content(rng, opt));
  return {s.begin(), s.end()};
}

// --------------------------------------------------------- generators -----

/// MRPC-style: B is a shuffled copy of A (positive) or a shuffled copy with
/// half the tokens replaced (negative). Set-overlap decides the label.
/// QQP-style (`positional = true`): B keeps A's word order; positives
/// replace at most one position, negatives at least half — the positional
/// analogue, testable with aligned attention like STS-B.
Example gen_paraphrase(Rng& rng, const TaskGenOptions& opt, bool positional) {
  const std::size_t len = (opt.seq_len - 3) / 2;
  std::vector<int> a = random_tokens(len, rng, opt);
  std::vector<int> b = a;
  const bool positive = rng.coin();

  const int replacements =
      positive ? rng.uniform_int(0, 1)
               : rng.uniform_int(static_cast<int>(len) / 2,
                                 static_cast<int>(len) - 1);
  for (int k = 0; k < replacements; ++k) {
    const std::size_t i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(len) - 1));
    int t;
    do {
      t = random_content(rng, opt);
    } while (std::find(a.begin(), a.end(), t) != a.end());
    b[i] = t;
  }
  if (!positional) std::shuffle(b.begin(), b.end(), rng.engine());

  Example e = pair_segments(a, b, opt);
  e.label = positive ? 1 : 0;
  return e;
}

/// RTE-style: entail iff every hypothesis token appears in the premise.
/// Negatives replace two of the three hypothesis tokens with tokens absent
/// from the premise (presence fraction 1 vs 1/3 — a margin a small model
/// can detect reliably).
Example gen_entailment(Rng& rng, const TaskGenOptions& opt) {
  const std::size_t prem_len = opt.seq_len - 8;
  const std::vector<int> premise = distinct_tokens(prem_len, rng, opt);
  std::vector<int> hyp(3);
  const bool entail = rng.coin();
  for (int k = 0; k < 3; ++k)
    hyp[static_cast<std::size_t>(k)] =
        premise[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(premise.size()) - 1))];
  if (!entail) {
    auto not_in_premise = [&] {
      int t;
      do {
        t = random_content(rng, opt);
      } while (std::find(premise.begin(), premise.end(), t) != premise.end());
      return t;
    };
    const int keep = rng.uniform_int(0, 2);
    for (int k = 0; k < 3; ++k)
      if (k != keep) hyp[static_cast<std::size_t>(k)] = not_in_premise();
  }
  Example e = pair_segments(premise, hyp, opt);
  e.label = entail ? 1 : 0;
  return e;
}

/// CoLA-style: token classes c(t) = (t - first) mod 4; acceptable sequences
/// follow the cyclic class order c_{i+1} = (c_i + 1) mod 4. Corrupted
/// sequences are full shuffles: the token multiset is unchanged, so only a
/// positional bigram circuit (not a bag-of-tokens shortcut) separates the
/// labels — the essence of grammaticality judgement.
Example gen_acceptability(Rng& rng, const TaskGenOptions& opt) {
  const std::size_t len = opt.seq_len - 3;
  std::vector<int> a(len);
  int cls = rng.uniform_int(0, 3);
  for (std::size_t i = 0; i < len; ++i) {
    // Random token of class `cls`.
    int t;
    do {
      t = random_content(rng, opt);
    } while ((t - kFirstContent) % 4 != cls);
    a[i] = t;
    cls = (cls + 1) % 4;
  }
  const bool acceptable = rng.coin();
  if (!acceptable) {
    // Shuffle the whole sequence: the token multiset is preserved (so a
    // bag-of-tokens shortcut cannot separate the classes) but ~3/4 of the
    // class bigrams are broken — dense positional evidence.
    std::shuffle(a.begin(), a.end(), rng.engine());
  }
  Example e = single_segment(a, opt);
  e.label = acceptable ? 1 : 0;
  return e;
}

/// SST-2-style: valence(t) = +1 for the upper half of the content range,
/// -1 for the lower half; label = sign of the valence sum (resampled until
/// non-zero so labels are unambiguous).
Example gen_sentiment(Rng& rng, const TaskGenOptions& opt) {
  const std::size_t len = opt.seq_len - 3;
  const int cr = content_range(opt);
  std::vector<int> a;
  int sum = 0;
  do {
    a = random_tokens(len, rng, opt);
    sum = 0;
    for (int t : a) sum += ((t - kFirstContent) < cr / 2) ? -1 : 1;
  } while (sum == 0);
  Example e = single_segment(a, opt);
  e.label = sum > 0 ? 1 : 0;
  return e;
}

/// STS-B-style: B is a copy of A with k positions replaced; the similarity
/// target is 5 * (1 - k/len). Positional overlap (rather than set overlap)
/// keeps the regression learnable by a small model: each B position attends
/// to its aligned A position and tests equality.
Example gen_similarity(Rng& rng, const TaskGenOptions& opt) {
  const std::size_t len = (opt.seq_len - 3) / 2;
  const std::vector<int> a = distinct_tokens(len, rng, opt);
  std::vector<int> b = a;
  const int k = rng.uniform_int(0, static_cast<int>(len));
  // Replace k distinct positions with tokens not present in A.
  std::vector<std::size_t> idx(len);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), rng.engine());
  for (int r = 0; r < k; ++r) {
    int t;
    do {
      t = random_content(rng, opt);
    } while (std::find(a.begin(), a.end(), t) != a.end());
    b[idx[static_cast<std::size_t>(r)]] = t;
  }

  Example e = pair_segments(a, b, opt);
  e.target =
      5.0f * (1.0f - static_cast<float>(k) / static_cast<float>(len));
  return e;
}

/// MNLI-style 3-way: hypothesis subset of premise -> entailment (0);
/// disjoint -> contradiction (2); partial overlap -> neutral (1).
Example gen_nli3(Rng& rng, const TaskGenOptions& opt) {
  const std::size_t prem_len = opt.seq_len - 9;
  const std::vector<int> premise = distinct_tokens(prem_len, rng, opt);
  const int label = rng.uniform_int(0, 2);
  std::vector<int> hyp;
  auto not_in_premise = [&] {
    int t;
    do {
      t = random_content(rng, opt);
    } while (std::find(premise.begin(), premise.end(), t) != premise.end());
    return t;
  };
  auto in_premise = [&] {
    return premise[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(premise.size()) - 1))];
  };
  switch (label) {
    case 0:  // entail: all 4 from premise
      for (int k = 0; k < 4; ++k) hyp.push_back(in_premise());
      break;
    case 2:  // contradiction: none from premise
      for (int k = 0; k < 4; ++k) hyp.push_back(not_in_premise());
      break;
    default:  // neutral: exactly half overlap
      hyp.push_back(in_premise());
      hyp.push_back(in_premise());
      hyp.push_back(not_in_premise());
      hyp.push_back(not_in_premise());
      std::shuffle(hyp.begin(), hyp.end(), rng.engine());
      break;
  }
  Example e = pair_segments(premise, hyp, opt);
  e.label = label;
  return e;
}

/// QNLI-style: entail iff the question token itself occurs in the passage
/// (the lexical-overlap core of question answerability). The question is
/// repeated in segment A and, when answerable, occurs at three passage
/// positions — the graded-overlap signal a small model can aggregate.
Example gen_qnli(Rng& rng, const TaskGenOptions& opt) {
  const int cr = content_range(opt);
  const int q = random_content(rng, opt);

  const std::size_t pass_len = opt.seq_len - 9;
  std::vector<int> passage = random_tokens(pass_len, rng, opt);
  // Scrub accidental occurrences, then plant per label.
  for (int& t : passage)
    if (t == q) t = kFirstContent + ((q - kFirstContent) + 1) % cr;
  const bool entail = rng.coin();
  if (entail) {
    for (int k = 0; k < 3; ++k) {
      const std::size_t slot = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(pass_len) - 1));
      passage[slot] = q;
    }
  }

  Example e = pair_segments({q, q, q}, passage, opt);
  e.label = entail ? 1 : 0;
  return e;
}

/// SQuAD-style: sequence is "[CLS] q [SEP] passage... [SEP]". Two question
/// types (tokens q0, q1) select between two marker tokens (m0, m1); both
/// markers appear in every passage, and the answer is the two tokens after
/// the marker matching the question. The model must condition its span
/// search on the question — a question-answering pattern a small model can
/// learn — while decoys rule out question-independent shortcuts.
Example gen_squad(Rng& rng, const TaskGenOptions& opt) {
  // Fixed task vocabulary roles (within the content range).
  const int q0 = kFirstContent, q1 = kFirstContent + 1;
  const int m0 = kFirstContent + 2, m1 = kFirstContent + 3;

  const bool which = rng.coin();
  const int q = which ? q1 : q0;
  const int true_marker = which ? m1 : m0;
  const int decoy_marker = which ? m0 : m1;

  const std::size_t pass_start = 3;  // [CLS] q [SEP]
  const std::size_t pass_len = opt.seq_len - pass_start - 1;

  // Passage of tokens that are neither markers nor question tokens.
  std::vector<int> passage(pass_len);
  for (int& t : passage) {
    do {
      t = random_content(rng, opt);
    } while (t == q0 || t == q1 || t == m0 || t == m1);
  }

  // Place both markers, each with room for a 2-token answer after it and no
  // overlap between the two marker neighbourhoods.
  const int half = static_cast<int>(pass_len) / 2;
  std::size_t pos_a = static_cast<std::size_t>(rng.uniform_int(0, half - 4));
  std::size_t pos_b =
      static_cast<std::size_t>(rng.uniform_int(half, static_cast<int>(pass_len) - 4));
  if (rng.coin()) std::swap(pos_a, pos_b);
  passage[pos_a] = true_marker;
  passage[pos_b] = decoy_marker;

  Example e;
  e.tokens.assign(opt.seq_len, kFiller);
  e.type_ids.assign(opt.seq_len, 1);
  e.tokens[0] = kCls;
  e.type_ids[0] = 0;
  e.tokens[1] = q;
  e.type_ids[1] = 0;
  e.tokens[2] = kSep;
  e.type_ids[2] = 0;
  for (std::size_t i = 0; i < pass_len; ++i) e.tokens[pass_start + i] = passage[i];
  e.tokens[opt.seq_len - 1] = kSep;

  e.span_start = static_cast<int>(pass_start + pos_a + 1);
  e.span_end = static_cast<int>(pass_start + pos_a + 2);
  return e;
}

Example generate(TaskId id, Rng& rng, const TaskGenOptions& opt) {
  switch (id) {
    case TaskId::kMrpc:
      return gen_paraphrase(rng, opt, /*positional=*/false);
    case TaskId::kQqp:
      return gen_paraphrase(rng, opt, /*positional=*/true);
    case TaskId::kRte:
      return gen_entailment(rng, opt);
    case TaskId::kCola:
      return gen_acceptability(rng, opt);
    case TaskId::kSst2:
      return gen_sentiment(rng, opt);
    case TaskId::kStsb:
      return gen_similarity(rng, opt);
    case TaskId::kMnli:
      return gen_nli3(rng, opt);
    case TaskId::kQnli:
      return gen_qnli(rng, opt);
    case TaskId::kSquad:
      return gen_squad(rng, opt);
  }
  throw std::invalid_argument("unknown TaskId");
}

}  // namespace

const char* task_name(TaskId id) {
  switch (id) {
    case TaskId::kMrpc:
      return "MRPC";
    case TaskId::kRte:
      return "RTE";
    case TaskId::kCola:
      return "CoLA";
    case TaskId::kSst2:
      return "SST-2";
    case TaskId::kStsb:
      return "STS-B";
    case TaskId::kQqp:
      return "QQP";
    case TaskId::kMnli:
      return "MNLI";
    case TaskId::kQnli:
      return "QNLI";
    case TaskId::kSquad:
      return "SQuAD";
  }
  return "?";
}

const char* metric_name(MetricKind m) {
  switch (m) {
    case MetricKind::kAccuracy:
      return "acc";
    case MetricKind::kF1:
      return "F1";
    case MetricKind::kMatthews:
      return "mcc";
    case MetricKind::kSpearman:
      return "spearman";
    case MetricKind::kSpanF1:
      return "span-F1";
  }
  return "?";
}

std::vector<TaskId> glue_suite() {
  return {TaskId::kMrpc, TaskId::kRte,  TaskId::kCola, TaskId::kSst2,
          TaskId::kStsb, TaskId::kQqp,  TaskId::kMnli, TaskId::kQnli};
}

TaskData make_task(TaskId id, const TaskGenOptions& opt) {
  if (opt.vocab < 16 || opt.seq_len < 12)
    throw std::invalid_argument("task needs vocab >= 16 and seq_len >= 12");

  TaskData d;
  d.id = id;
  d.name = task_name(id);
  d.seq_len = opt.seq_len;
  d.vocab = opt.vocab;

  switch (id) {
    case TaskId::kCola:
      d.metric = MetricKind::kMatthews;
      break;
    case TaskId::kQqp:
      d.metric = MetricKind::kF1;
      break;
    case TaskId::kStsb:
      d.metric = MetricKind::kSpearman;
      d.num_labels = 1;
      d.is_regression = true;
      break;
    case TaskId::kMnli:
      d.metric = MetricKind::kAccuracy;
      d.num_labels = 3;
      break;
    case TaskId::kSquad:
      d.metric = MetricKind::kSpanF1;
      d.num_labels = 2;
      d.is_span = true;
      break;
    default:
      d.metric = MetricKind::kAccuracy;
      break;
  }

  Rng rng(opt.seed * 1000003u + static_cast<std::uint64_t>(id) * 7919u);
  d.train.reserve(opt.n_train);
  for (std::size_t i = 0; i < opt.n_train; ++i)
    d.train.push_back(generate(id, rng, opt));
  d.dev.reserve(opt.n_dev);
  for (std::size_t i = 0; i < opt.n_dev; ++i)
    d.dev.push_back(generate(id, rng, opt));
  return d;
}

}  // namespace nnlut::tasks
