// Model-level calibration (Sec. 3.3.3 of the paper): with all transformer
// parameters frozen, capture the inputs reaching every LayerNorm's 1/sqrt on
// a small unlabeled set, regress each site's approximation network against
// the full-precision reference on its captured distribution, and install the
// calibrated LUTs back into the backend.
#pragma once

#include <span>

#include "core/calibration.h"
#include "core/function_library.h"
#include "tasks/tasks.h"
#include "transformer/backends.h"
#include "transformer/infer.h"
#include "transformer/model.h"

namespace nnlut::eval {

struct SiteCalibration {
  int site = 0;
  std::size_t samples = 0;
  double error_before = 0.0;
  double error_after = 0.0;
};

struct ModelCalibrationReport {
  std::vector<SiteCalibration> sites;
};

/// Calibrate every LayerNorm site of `backend` for `model`.
///
/// `unlabeled` is the calibration set (the paper uses one tenth of the
/// training data, without labels). `rsqrt_base` is the offline-trained
/// approximator to start from; `precision` decides how the calibrated LUTs
/// are deployed (FP32 or INT32, matching Table 2b's +C rows).
ModelCalibrationReport calibrate_layernorm_sites(
    const transformer::TaskModel& model,
    transformer::LutNonlinearities& backend, const FittedLut& rsqrt_base,
    std::span<const tasks::Example> unlabeled,
    transformer::MatmulMode mode = transformer::MatmulMode::kFp32,
    LutPrecision precision = LutPrecision::kFp32,
    const CalibrationConfig& cfg = {});

}  // namespace nnlut::eval
