#include "eval/finetune.h"

namespace nnlut::eval {

void finetune_with_luts(transformer::TaskModel& model,
                        const tasks::TaskData& task,
                        const PiecewiseLinear* gelu_lut,
                        const PiecewiseLinear* rsqrt_lut,
                        const FinetuneOptions& opt) {
  // Install the approximations into the training graph.
  for (auto& layer : model.encoder.layers) {
    layer.install_lut_activation(gelu_lut);
    layer.norm1.install_lut_rsqrt(rsqrt_lut);
    layer.norm2.install_lut_rsqrt(rsqrt_lut);
  }
  model.encoder.emb_norm.install_lut_rsqrt(rsqrt_lut);

  TrainOptions topt;
  topt.epochs = opt.epochs;
  topt.batch_size = opt.batch_size;
  topt.lr = opt.lr;
  topt.lr_decay_at = 2.0f;  // constant LR for the short fine-tune
  topt.seed = opt.seed;
  run_training(model, task, topt);

  // Restore the exact graph; the adapted weights remain.
  for (auto& layer : model.encoder.layers) {
    layer.install_lut_activation(nullptr);
    layer.norm1.install_lut_rsqrt(nullptr);
    layer.norm2.install_lut_rsqrt(nullptr);
  }
  model.encoder.emb_norm.install_lut_rsqrt(nullptr);
}

}  // namespace nnlut::eval
