#include "eval/pipeline.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <numeric>

#include "nn/losses.h"
#include "nn/optimizer.h"

namespace nnlut::eval {

using tasks::Example;
using tasks::TaskData;
using transformer::BatchInput;
using transformer::HeadKind;
using transformer::InferenceModel;
using transformer::TaskModel;

transformer::BatchInput to_batch(std::span<const Example> examples,
                                 std::size_t begin, std::size_t count) {
  assert(begin + count <= examples.size());
  assert(count > 0);
  const std::size_t seq = examples[begin].tokens.size();
  BatchInput in;
  in.batch = count;
  in.seq = seq;
  in.token_ids.reserve(count * seq);
  in.type_ids.reserve(count * seq);
  for (std::size_t i = 0; i < count; ++i) {
    const Example& e = examples[begin + i];
    assert(e.tokens.size() == seq);
    in.token_ids.insert(in.token_ids.end(), e.tokens.begin(), e.tokens.end());
    in.type_ids.insert(in.type_ids.end(), e.type_ids.begin(),
                       e.type_ids.end());
  }
  return in;
}

namespace {

HeadKind head_for(const TaskData& task) {
  if (task.is_span) return HeadKind::kSpan;
  if (task.is_regression) return HeadKind::kRegress;
  return HeadKind::kClassify;
}

/// Span losses need the [B*S, 2] logits reshaped to per-batch position
/// distributions; this computes the summed start+end cross-entropy and the
/// gradient in the original layout.
nn::LossResult span_loss(const Tensor& logits, std::span<const Example> batch,
                         std::size_t seq) {
  const std::size_t bsz = batch.size();
  Tensor start_logits({bsz, seq}), end_logits({bsz, seq});
  for (std::size_t b = 0; b < bsz; ++b)
    for (std::size_t s = 0; s < seq; ++s) {
      start_logits.at(b, s) = logits.at(b * seq + s, 0);
      end_logits.at(b, s) = logits.at(b * seq + s, 1);
    }
  std::vector<int> starts(bsz), ends(bsz);
  for (std::size_t b = 0; b < bsz; ++b) {
    starts[b] = batch[b].span_start;
    ends[b] = batch[b].span_end;
  }
  const nn::LossResult ls = nn::cross_entropy(start_logits, starts);
  const nn::LossResult le = nn::cross_entropy(end_logits, ends);

  nn::LossResult out;
  out.loss = 0.5 * (ls.loss + le.loss);
  out.dlogits = Tensor({bsz * seq, 2});
  for (std::size_t b = 0; b < bsz; ++b)
    for (std::size_t s = 0; s < seq; ++s) {
      out.dlogits.at(b * seq + s, 0) = 0.5f * ls.dlogits.at(b, s);
      out.dlogits.at(b * seq + s, 1) = 0.5f * le.dlogits.at(b, s);
    }
  return out;
}

}  // namespace

TaskModel train_model(const TaskData& task, const transformer::ModelConfig& cfg,
                      const TrainOptions& opt) {
  Rng rng(opt.seed);
  const std::size_t outputs = task.is_span          ? 2
                              : task.is_regression  ? 1
                                                    : static_cast<std::size_t>(
                                                          task.num_labels);
  TaskModel model(cfg, head_for(task), outputs, rng);
  run_training(model, task, opt);
  return model;
}

void run_training(TaskModel& model, const TaskData& task,
                  const TrainOptions& opt) {
  Rng rng(opt.seed + 0x9e37u);

  nn::Adam::Options aopt;
  aopt.lr = opt.lr;
  nn::Adam adam(model.params(), aopt);

  std::vector<std::size_t> order(task.train.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  const int decay_epoch =
      static_cast<int>(opt.lr_decay_at * static_cast<float>(opt.epochs));

  std::vector<Example> batch_examples(
      static_cast<std::size_t>(opt.batch_size));

  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    if (epoch == decay_epoch) adam.set_lr(opt.lr * 0.1f);
    std::shuffle(order.begin(), order.end(), rng.engine());

    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t pos = 0; pos + static_cast<std::size_t>(opt.batch_size) <=
                              task.train.size();
         pos += static_cast<std::size_t>(opt.batch_size)) {
      for (std::size_t i = 0; i < batch_examples.size(); ++i)
        batch_examples[i] = task.train[order[pos + i]];

      const BatchInput in = to_batch(batch_examples, 0, batch_examples.size());
      adam.zero_grad();
      const Tensor logits = model.forward(in);

      nn::LossResult loss;
      if (task.is_span) {
        loss = span_loss(logits, batch_examples, in.seq);
      } else if (task.is_regression) {
        std::vector<float> targets(batch_examples.size());
        for (std::size_t i = 0; i < targets.size(); ++i)
          targets[i] = batch_examples[i].target;
        loss = nn::mse(logits, targets);
      } else {
        std::vector<int> labels(batch_examples.size());
        for (std::size_t i = 0; i < labels.size(); ++i)
          labels[i] = batch_examples[i].label;
        loss = nn::cross_entropy(logits, labels);
      }

      model.backward(loss.dlogits);
      adam.step();
      epoch_loss += loss.loss;
      ++batches;
    }
    if (opt.verbose && batches) {
      std::printf("  [%s] epoch %d loss %.4f\n", task.name.c_str(), epoch,
                  epoch_loss / static_cast<double>(batches));
    }
  }
}

tasks::Predictions predict(InferenceModel& infer, const TaskData& task,
                           std::span<const Example> examples,
                           std::size_t batch_size) {
  tasks::Predictions pred;
  for (std::size_t pos = 0; pos < examples.size(); pos += batch_size) {
    const std::size_t count = std::min(batch_size, examples.size() - pos);
    const BatchInput in = to_batch(examples, pos, count);
    const Tensor logits = infer.logits(in);

    if (task.is_span) {
      const auto spans = transformer::decode_spans(logits, count, in.seq);
      pred.spans.insert(pred.spans.end(), spans.begin(), spans.end());
    } else if (task.is_regression) {
      for (std::size_t b = 0; b < count; ++b)
        pred.scores.push_back(logits.at(b, 0));
    } else {
      const auto labels = nn::argmax_rows(logits);
      pred.labels.insert(pred.labels.end(), labels.begin(), labels.end());
    }
  }
  return pred;
}

double evaluate(const TaskModel& model, const TaskData& task,
                transformer::NonlinearitySet& nl, transformer::MatmulMode mode,
                std::size_t batch_size) {
  InferenceModel infer(model, nl, mode);
  const tasks::Predictions pred = predict(infer, task, task.dev, batch_size);
  return tasks::compute_metric(task, task.dev, pred);
}

double evaluate_baseline(const TaskModel& model, const TaskData& task) {
  transformer::ExactNonlinearities exact(model.config().act);
  return evaluate(model, task, exact);
}

}  // namespace nnlut::eval
