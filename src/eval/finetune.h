// Approximation-aware fine-tuning (extension; the alternative the paper's
// rivals require, Sec. 1). Installs LUTs for GELU and LayerNorm *inside the
// training graph* of an already-trained model and continues training, so the
// transformer weights compensate for the approximation error. Softmax stays
// exact in the fine-tuning graph (its LUT replacement happens at inference);
// this mirrors the dominant cost structure — LayerNorm is the most sensitive
// op (paper Table 2a) and GELU the most frequent.
//
// Contrast with core/calibration.h: calibration adjusts only the tiny
// 1-D approximator on unlabeled data (cheap); fine-tuning adjusts the whole
// transformer on labeled data (expensive) — which is exactly the trade-off
// the paper argues NN-LUT avoids.
#pragma once

#include "eval/pipeline.h"

namespace nnlut::eval {

struct FinetuneOptions {
  int epochs = 3;
  int batch_size = 32;
  float lr = 2e-4f;  // gentler than initial training
  std::uint64_t seed = 17;
};

/// Continue training `model` with `gelu_lut` / `rsqrt_lut` live in the
/// graph (either may be nullptr to keep that op exact). The LUTs must
/// outlive the call; they are uninstalled before returning, leaving the
/// model's weights adapted but its graph exact again.
void finetune_with_luts(transformer::TaskModel& model,
                        const tasks::TaskData& task,
                        const PiecewiseLinear* gelu_lut,
                        const PiecewiseLinear* rsqrt_lut,
                        const FinetuneOptions& opt = {});

}  // namespace nnlut::eval
