// End-to-end pipelines tying tasks, training and approximate inference
// together. These functions implement the experimental procedure of the
// paper's Sec. 4: fine-tune a model in full precision, swap non-linear
// operations for approximations, and measure the task metric — *without*
// approximation-aware fine-tuning (direct approximation).
#pragma once

#include <cstdint>

#include "tasks/metrics.h"
#include "tasks/tasks.h"
#include "transformer/infer.h"
#include "transformer/model.h"

namespace nnlut::eval {

struct TrainOptions {
  int epochs = 6;
  int batch_size = 32;
  float lr = 5e-4f;
  float lr_decay_at = 0.7f;  // multiply lr by 0.1 at this fraction of epochs
  std::uint64_t seed = 1;
  bool verbose = false;
};

/// Assemble a fixed-length batch from examples [begin, begin+count).
transformer::BatchInput to_batch(std::span<const tasks::Example> examples,
                                 std::size_t begin, std::size_t count);

/// Train a TaskModel on the task's train split (FP32, exact nonlinearities).
transformer::TaskModel train_model(const tasks::TaskData& task,
                                   const transformer::ModelConfig& cfg,
                                   const TrainOptions& opt);

/// The mini-batch training loop behind train_model, usable on an existing
/// model (continued training / approximation-aware fine-tuning).
void run_training(transformer::TaskModel& model, const tasks::TaskData& task,
                  const TrainOptions& opt);

/// Run the approximate-inference engine over examples and decode outputs.
tasks::Predictions predict(transformer::InferenceModel& infer,
                           const tasks::TaskData& task,
                           std::span<const tasks::Example> examples,
                           std::size_t batch_size = 64);

/// Metric of `model` on the dev split under the given backend and matmul
/// precision. This is a row of Table 2/3.
double evaluate(const transformer::TaskModel& model,
                const tasks::TaskData& task, transformer::NonlinearitySet& nl,
                transformer::MatmulMode mode = transformer::MatmulMode::kFp32,
                std::size_t batch_size = 64);

/// Convenience: FP32 exact baseline metric.
double evaluate_baseline(const transformer::TaskModel& model,
                         const tasks::TaskData& task);

}  // namespace nnlut::eval
