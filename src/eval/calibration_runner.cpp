#include "eval/calibration_runner.h"

#include "eval/pipeline.h"
#include "numerics/math.h"

namespace nnlut::eval {

ModelCalibrationReport calibrate_layernorm_sites(
    const transformer::TaskModel& model,
    transformer::LutNonlinearities& backend, const FittedLut& rsqrt_base,
    std::span<const tasks::Example> unlabeled, transformer::MatmulMode mode,
    LutPrecision precision, const CalibrationConfig& cfg) {
  ModelCalibrationReport report;

  // Pass 1: run the frozen model over the unlabeled set with capture on.
  backend.enable_rsqrt_capture();
  transformer::InferenceModel infer(model, backend, mode);
  for (std::size_t pos = 0; pos < unlabeled.size(); pos += 64) {
    const std::size_t count = std::min<std::size_t>(64, unlabeled.size() - pos);
    const transformer::BatchInput in = to_batch(unlabeled, pos, count);
    (void)infer.encode(in);
  }

  // Pass 2: per-site regression against the exact reference, then install
  // the re-transformed LUT at the deployment precision.
  const int num_sites =
      static_cast<int>(2 * model.encoder.layers.size()) + 1;  // + embedding LN
  for (int site = 0; site < num_sites; ++site) {
    const std::vector<float>& captured = backend.captured_rsqrt_inputs(site);
    if (captured.empty()) continue;

    const CalibrationResult r =
        calibrate(rsqrt_base.net, captured, rsqrt_exact, cfg);

    SiteCalibration sc;
    sc.site = site;
    sc.samples = captured.size();
    sc.error_before = r.error_before;
    sc.error_after = r.error_after;
    report.sites.push_back(sc);

    backend.set_site_rsqrt(site, make_lut_fn(r.lut, precision, 1024.0f));
  }

  backend.disable_rsqrt_capture();
  return report;
}

}  // namespace nnlut::eval
