#include "accel/workload.h"

namespace nnlut::accel {

Op Op::matmul(std::string name, std::size_t m, std::size_t k, std::size_t n) {
  Op op;
  op.kind = OpKind::kMatMul;
  op.name = std::move(name);
  op.m = m;
  op.k = k;
  op.n = n;
  return op;
}

Op Op::elementwise(OpKind kind, std::string name, std::size_t rows,
                   std::size_t row_len) {
  Op op;
  op.kind = kind;
  op.name = std::move(name);
  op.rows = rows;
  op.row_len = row_len;
  return op;
}

std::vector<Op> build_roberta_ops(const BertShape& sh, std::size_t seq) {
  std::vector<Op> ops;
  const std::size_t S = seq, H = sh.hidden, F = sh.ffn, A = sh.heads;
  const std::size_t hd = H / A;

  // Embedding sum + embedding LayerNorm.
  ops.push_back(Op::elementwise(OpKind::kEtc, "emb-add", S, H));
  ops.push_back(Op::elementwise(OpKind::kLayerNorm, "emb-ln", S, H));

  for (std::size_t l = 0; l < sh.layers; ++l) {
    // Built via append (not operator+ on a temporary) to sidestep GCC 12's
    // -Wrestrict false positive in the inlined libstdc++ concatenation.
    std::string p = "L";
    p += std::to_string(l);
    p += '.';
    // QKV projections.
    ops.push_back(Op::matmul(p + "q", S, H, H));
    ops.push_back(Op::matmul(p + "k", S, H, H));
    ops.push_back(Op::matmul(p + "v", S, H, H));
    // Attention scores and context, per head: [S, hd] x [hd, S], [S,S]x[S,hd].
    ops.push_back(Op::matmul(p + "scores", A * S, hd, S));
    ops.push_back(Op::elementwise(OpKind::kSoftmax, p + "softmax", A * S, S));
    ops.push_back(Op::matmul(p + "context", A * S, S, hd));
    ops.push_back(Op::matmul(p + "attn-out", S, H, H));
    ops.push_back(Op::elementwise(OpKind::kEtc, p + "residual1", S, H));
    ops.push_back(Op::elementwise(OpKind::kLayerNorm, p + "ln1", S, H));
    // Feed-forward.
    ops.push_back(Op::matmul(p + "ff1", S, H, F));
    ops.push_back(Op::elementwise(OpKind::kGelu, p + "gelu", S, F));
    ops.push_back(Op::matmul(p + "ff2", S, F, H));
    ops.push_back(Op::elementwise(OpKind::kEtc, p + "residual2", S, H));
    ops.push_back(Op::elementwise(OpKind::kLayerNorm, p + "ln2", S, H));
  }

  // Pooler / classifier glue.
  ops.push_back(Op::matmul("pooler", 1, H, H));
  ops.push_back(Op::elementwise(OpKind::kEtc, "pooler-act", 1, H));
  return ops;
}

double total_macs(const std::vector<Op>& ops) {
  double macs = 0.0;
  for (const Op& op : ops)
    if (op.kind == OpKind::kMatMul)
      macs += static_cast<double>(op.m) * op.k * op.n;
  return macs;
}

}  // namespace nnlut::accel
