// Cycle-level simulator of the accelerator core in Fig. 3(c): a control
// unit, a 1 MB scratchpad, two compute engines (32x32 MAC arrays, i.e. 64
// dot-products of 16-dim vectors per cycle each) and a vector of special
// function units. Swapping the SFU timing model between the NN-LUT unit and
// the I-BERT unit reproduces Table 5's relative-cycle breakdown and speedup.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "accel/workload.h"

namespace nnlut::accel {

/// Per-element / per-row timing of one SFU flavour. All values are in
/// cycles; `ii` values are per element *per lane*, so the simulator divides
/// element counts by the lane count.
struct SfuTiming {
  std::string name;

  double gelu_ii = 1.0;       // activation, per element
  double exp_ii = 1.0;        // softmax numerator, per element
  double softmax_scale_ii = 1.0;   // multiply by the reciprocal, per element
  double recip_per_row = 2.0;      // softmax denominator lookup, per row

  double reduce_ii = 1.0;     // mean/variance/sum accumulate, per element
  double norm_scale_ii = 1.0; // (x - mu) * inv_std fused MAC, per element
  double rsqrt_per_row = 2.0; // 1/sqrt evaluation, per row

  double etc_ii = 0.5;        // residual adds etc. on the wide vector unit

  int pipeline_latency = 2;   // fill cycles per op launch
};

/// NN-LUT SFU: every scalar function is the same pipelined 2-cycle LUT unit
/// (II = 1), and normalization fuses into the LUT's multiply-add.
SfuTiming nnlut_sfu_timing();

/// I-BERT SFU: per-function iterative integer sequences (i-GELU 3, i-EXP 4,
/// i-SQRT 5 cycles, partially pipelined), a true integer divide per softmax
/// row, and a separate factor-multiply + shift normalization epilogue.
SfuTiming ibert_sfu_timing();

struct AcceleratorConfig {
  int engines = 2;
  int macs_per_engine_per_cycle = 1024;  // 64 x 16-dim dot products
  int dot_width = 16;                    // K-dimension granularity
  int sfu_lanes = 16;
  double frequency_ghz = 1.0;
};

/// Cycle totals per operation category (the paper's Table 5 rows).
struct Breakdown {
  double gelu = 0.0;
  double layernorm = 0.0;
  double softmax = 0.0;
  double matmul = 0.0;
  double etc = 0.0;

  double total() const { return gelu + layernorm + softmax + matmul + etc; }
  double percent(double part) const {
    const double t = total();
    return t > 0 ? 100.0 * part / t : 0.0;
  }
};

class CycleSimulator {
 public:
  CycleSimulator(AcceleratorConfig cfg, SfuTiming sfu)
      : cfg_(cfg), sfu_(std::move(sfu)) {}

  /// Cycles for one op on its resource.
  double op_cycles(const Op& op) const;

  /// Serial schedule over the op list (layer ops are dependency-chained; the
  /// paper's breakdown likewise attributes 100% of time across categories).
  Breakdown run(const std::vector<Op>& ops) const;

  const AcceleratorConfig& config() const { return cfg_; }
  const SfuTiming& sfu() const { return sfu_; }

 private:
  AcceleratorConfig cfg_;
  SfuTiming sfu_;
};

/// One row pair of Table 5: both backends at a sequence length.
struct SystemComparison {
  std::size_t seq = 0;
  Breakdown ibert;
  Breakdown nnlut;
  double speedup = 0.0;  // total_ibert / total_nnlut
};

SystemComparison compare_at_seq(const BertShape& shape, std::size_t seq,
                                const AcceleratorConfig& cfg);

}  // namespace nnlut::accel
