// Transformer inference workload expressed as a sequence of accelerator
// operations with exact shape-derived work counts. This feeds the cycle
// simulator (Fig. 3(c) of the paper: control unit, scratchpad, two MAC
// engines, vector special-function unit).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nnlut::accel {

/// RoBERTa-base dimensions (the paper's Table 5 subject).
struct BertShape {
  std::size_t layers = 12;
  std::size_t hidden = 768;
  std::size_t heads = 12;
  std::size_t ffn = 3072;

  static BertShape roberta_base() { return {}; }
};

enum class OpKind {
  kMatMul,     // MAC-array work
  kGelu,       // elementwise activation on the SFU
  kLayerNorm,  // reductions + 1/sqrt + normalization
  kSoftmax,    // exp per element + reciprocal per row + scale per element
  kEtc,        // residual adds, embeddings, pooler glue
};

struct Op {
  OpKind kind{};
  std::string name;
  // MatMul: C[m,n] += A[m,k] * B[k,n].
  std::size_t m = 0, k = 0, n = 0;
  // SFU ops: element/row structure.
  std::size_t rows = 0;
  std::size_t row_len = 0;

  static Op matmul(std::string name, std::size_t m, std::size_t k,
                   std::size_t n);
  static Op elementwise(OpKind kind, std::string name, std::size_t rows,
                        std::size_t row_len);
};

/// The full encoder forward pass at sequence length `seq` (one batch item;
/// relative cycle shares are batch-invariant in this serial model).
std::vector<Op> build_roberta_ops(const BertShape& shape, std::size_t seq);

/// Total MAC count of all matmuls (sanity checks / utilization reports).
double total_macs(const std::vector<Op>& ops);

}  // namespace nnlut::accel
