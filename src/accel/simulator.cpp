#include "accel/simulator.h"

#include <cmath>
#include <stdexcept>

namespace nnlut::accel {

SfuTiming nnlut_sfu_timing() {
  SfuTiming t;
  t.name = "NN-LUT";
  // One shared LUT unit type, fully pipelined: II = 1 for every function.
  t.gelu_ii = 1.0;
  t.exp_ii = 1.0;
  // The per-element multiply by the row reciprocal fuses into the LUT
  // unit's own MAC (the unit computes s*x + t; streaming the elements with
  // s preloaded to the reciprocal performs the scaling in the same pass).
  t.softmax_scale_ii = 0.0;
  t.recip_per_row = 2.0;  // 2-cycle LUT latency, once per row
  t.reduce_ii = 0.75;     // vector adder tree handles accumulations
  t.norm_scale_ii = 0.85; // (x-mu)*inv_std is exactly the LUT unit's MAC
  t.rsqrt_per_row = 2.0;
  t.etc_ii = 0.5;
  t.pipeline_latency = 2;
  return t;
}

SfuTiming ibert_sfu_timing() {
  SfuTiming t;
  t.name = "I-BERT";
  // Multi-step integer sequences, partially pipelined (II = latency / 2):
  // i-GELU 3 cycles, i-EXP 4 cycles, i-SQRT 5 cycles.
  t.gelu_ii = 1.5;
  t.exp_ii = 2.0;
  t.softmax_scale_ii = 0.5;   // factor multiply + shift per element
  t.recip_per_row = 32.0;     // integer divide for the row reciprocal
  t.reduce_ii = 0.75;         // same vector adders as NN-LUT
  t.norm_scale_ii = 2.7;      // factor mult (II 2) + shift, not a fused MAC
  t.rsqrt_per_row = 5.0;      // i-sqrt Newton iterations
  t.etc_ii = 0.5;
  t.pipeline_latency = 4;
  return t;
}

double CycleSimulator::op_cycles(const Op& op) const {
  const double lanes = static_cast<double>(cfg_.sfu_lanes);
  switch (op.kind) {
    case OpKind::kMatMul: {
      // Each engine: 64 dot products of `dot_width`-dim vectors per cycle.
      const double dot_segments =
          static_cast<double>(op.m) * static_cast<double>(op.n) *
          std::ceil(static_cast<double>(op.k) / cfg_.dot_width);
      const double dots_per_cycle =
          static_cast<double>(cfg_.engines) *
          (static_cast<double>(cfg_.macs_per_engine_per_cycle) / cfg_.dot_width);
      return std::ceil(dot_segments / dots_per_cycle);
    }
    case OpKind::kGelu: {
      const double elems = static_cast<double>(op.rows) * op.row_len;
      return std::ceil(elems / lanes * sfu_.gelu_ii) + sfu_.pipeline_latency;
    }
    case OpKind::kSoftmax: {
      const double elems = static_cast<double>(op.rows) * op.row_len;
      const double exp_c = elems / lanes * sfu_.exp_ii;
      const double recip_c =
          static_cast<double>(op.rows) / lanes * sfu_.recip_per_row;
      const double scale_c = elems / lanes * sfu_.softmax_scale_ii;
      return std::ceil(exp_c + recip_c + scale_c) + sfu_.pipeline_latency;
    }
    case OpKind::kLayerNorm: {
      const double elems = static_cast<double>(op.rows) * op.row_len;
      const double reduce_c = 2.0 * elems / lanes * sfu_.reduce_ii;  // mu, var
      const double rsqrt_c =
          static_cast<double>(op.rows) / lanes * sfu_.rsqrt_per_row;
      const double scale_c = elems / lanes * sfu_.norm_scale_ii;
      return std::ceil(reduce_c + rsqrt_c + scale_c) + sfu_.pipeline_latency;
    }
    case OpKind::kEtc: {
      const double elems = static_cast<double>(op.rows) * op.row_len;
      return std::ceil(elems / lanes * sfu_.etc_ii) + 1.0;
    }
  }
  throw std::invalid_argument("unknown OpKind");
}

Breakdown CycleSimulator::run(const std::vector<Op>& ops) const {
  Breakdown b;
  for (const Op& op : ops) {
    const double c = op_cycles(op);
    switch (op.kind) {
      case OpKind::kMatMul:
        b.matmul += c;
        break;
      case OpKind::kGelu:
        b.gelu += c;
        break;
      case OpKind::kLayerNorm:
        b.layernorm += c;
        break;
      case OpKind::kSoftmax:
        b.softmax += c;
        break;
      case OpKind::kEtc:
        b.etc += c;
        break;
    }
  }
  return b;
}

SystemComparison compare_at_seq(const BertShape& shape, std::size_t seq,
                                const AcceleratorConfig& cfg) {
  const std::vector<Op> ops = build_roberta_ops(shape, seq);
  const CycleSimulator sim_i(cfg, ibert_sfu_timing());
  const CycleSimulator sim_n(cfg, nnlut_sfu_timing());

  SystemComparison out;
  out.seq = seq;
  out.ibert = sim_i.run(ops);
  out.nnlut = sim_n.run(ops);
  out.speedup = out.nnlut.total() > 0 ? out.ibert.total() / out.nnlut.total()
                                      : 0.0;
  return out;
}

}  // namespace nnlut::accel
