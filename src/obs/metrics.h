// Unified metrics registry with Prometheus text exposition.
//
// The serving stack keeps its counters where they are cheap to record —
// StatsLedger under its own mutex, BufferPool counters under the pool
// mutex, the plan cache and thread pool under theirs. MetricsRegistry does
// NOT duplicate that state; it is a pull-model directory of instruments:
// each registered series carries a callback that reads the live value at
// scrape() time. One scrape therefore yields one coherent text page across
// slots, pools, the thread pool, the plan cache and the tracer, without
// adding a single instruction to any hot path.
//
// Exposition follows the Prometheus text format (# HELP / # TYPE lines,
// `name{label="value"} value` series, histogram `_bucket`/`_sum`/`_count`
// with CUMULATIVE le buckets). Output order is deterministic: families in
// first-registration order, series in registration order within a family —
// the property the scrape golden test pins.
//
// Thread safety: registration and scrape() are mutex-guarded. Callbacks run
// under the registry mutex, so they must not call back into the registry;
// they may (and do) take subsystem locks — the registry lock is always
// acquired first and no subsystem calls into the registry, so the order is
// acyclic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/thread_annotations.h"

namespace nnlut::obs {

/// Pull-time snapshot of one histogram instrument. `upper_bounds` are the
/// finite bucket upper edges, ascending; `counts` has one entry per bound
/// PLUS a final overflow entry (the implicit +Inf bucket), all
/// NON-cumulative (scrape() accumulates for the `le` exposition). `sum` is
/// the sum of observed values in the same unit as the bounds.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> counts;
  double sum = 0.0;
  std::uint64_t count = 0;
};

class MetricsRegistry {
 public:
  /// Label set of one series, rendered in the given order. Values are
  /// escaped on exposition; names must be valid Prometheus label names.
  using Labels = std::vector<std::pair<std::string, std::string>>;
  using CounterFn = std::function<std::uint64_t()>;
  using GaugeFn = std::function<double()>;
  using HistogramFn = std::function<HistogramSnapshot()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register one series under the family `name`. The first registration of
  /// a family fixes its help text and kind; a later registration with a
  /// conflicting kind, or a duplicate (name, labels) series, throws
  /// std::invalid_argument. Callbacks must stay valid for the registry's
  /// lifetime and be safe to call from any thread.
  void add_counter(const std::string& name, const std::string& help,
                   Labels labels, CounterFn fn);
  void add_gauge(const std::string& name, const std::string& help,
                 Labels labels, GaugeFn fn);
  void add_histogram(const std::string& name, const std::string& help,
                     Labels labels, HistogramFn fn);

  /// Unregister every series whose label set contains the label
  /// `name="value"`; families left with no series disappear from the
  /// scrape. Returns how many series were removed. This exists for
  /// DYNAMIC components that hang instruments onto a longer-lived
  /// registry — a TcpServer on the engine's scrape page deregisters its
  /// nnlut_net_* series (labeled with its listen port) on stop(), so its
  /// callbacks never outlive it and a later server reusing the port can
  /// register cleanly. Static components (model slots) never deregister:
  /// family-then-registration scrape order stays deterministic either way.
  std::size_t remove_labeled(const std::string& name, const std::string& value);

  /// Prometheus text exposition of every registered series, evaluated now.
  std::string scrape() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    CounterFn counter;      // kCounter
    GaugeFn gauge;          // kGauge
    HistogramFn histogram;  // kHistogram
  };

  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<Series> series;
  };

  Family& family(const std::string& name, const std::string& help, Kind kind)
      NNLUT_REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<Family> families_ NNLUT_GUARDED_BY(mu_);
};

}  // namespace nnlut::obs
