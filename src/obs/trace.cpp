#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <ostream>
#include <utility>
#include <vector>

#include "core/thread_annotations.h"
#include "obs/trace_ring.h"

#if defined(__linux__) || defined(__APPLE__)
#include <pthread.h>
#endif

namespace nnlut::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

/// One thread's ring plus its export identity. The owning thread is the
/// only writer; the exporter and stats() read under `mu`. The storage array
/// is allocated exactly once, here — everything past construction is the
/// allocation-free SpanRing path.
struct ThreadRing {
  ThreadRing(std::size_t capacity, std::uint32_t tid_in)
      : storage(capacity == 0 ? nullptr : new TraceEvent[capacity]),
        tid(tid_in) {
    ring.reset(storage.get(), capacity);
#if defined(__linux__) || defined(__APPLE__)
    pthread_getname_np(pthread_self(), name, sizeof(name));
#endif
    if (name[0] == '\0')
      std::snprintf(name, sizeof(name), "thread-%u", tid);
  }

  Mutex mu;
  SpanRing ring NNLUT_GUARDED_BY(mu);
  const std::unique_ptr<TraceEvent[]> storage;  // fixed at construction
  const std::uint32_t tid;   // registration order within the session, from 1
  char name[32] = {};        // OS thread name at first recorded event
};

Mutex g_mu;
std::vector<std::shared_ptr<ThreadRing>> g_rings NNLUT_GUARDED_BY(g_mu);
std::size_t g_capacity NNLUT_GUARDED_BY(g_mu) =
    TraceRecorder::kDefaultRingCapacity;
std::uint64_t g_epoch_ns NNLUT_GUARDED_BY(g_mu) = 0;
// Bumped by every enable(); threads lazily re-register when their cached
// session falls behind, so a new session starts from an empty ring set
// without touching other threads.
std::atomic<std::uint64_t> g_session{0};

thread_local std::shared_ptr<ThreadRing> t_ring;
thread_local std::uint64_t t_session = 0;

/// The calling thread's ring for the current session, registering it on
/// first use (the only allocation of the recording path, once per thread
/// per session). Null when tracing is disabled.
ThreadRing* local_ring() {
  const std::uint64_t session = g_session.load(std::memory_order_relaxed);
  if (t_session != session) {
    t_session = session;
    t_ring.reset();
    MutexLock lk(g_mu);
    if (trace_enabled()) {
      auto ring = std::make_shared<ThreadRing>(
          g_capacity, static_cast<std::uint32_t>(g_rings.size() + 1));
      g_rings.push_back(ring);
      t_ring = std::move(ring);
    }
  }
  return t_ring.get();
}

void append_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      os << buf;
    } else {
      os << c;
    }
  }
}

}  // namespace

TraceRecorder& TraceRecorder::instance() {
  // Intentionally leaked: instrumented subsystems may record while their
  // own statics tear down, so the recorder must outlive every other static.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::enable(std::size_t events_per_thread) {
  MutexLock lk(g_mu);
  g_rings.clear();
  g_capacity = events_per_thread;
  g_epoch_ns = trace_now_ns();
  g_session.fetch_add(1, std::memory_order_relaxed);
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void TraceRecorder::record_complete(const char* name, std::uint64_t start_ns,
                                    std::uint64_t dur_ns, std::uint64_t id) {
  ThreadRing* ring = local_ring();
  if (ring == nullptr) return;
  const TraceEvent ev{name, start_ns, dur_ns, id, EventKind::kComplete};
  MutexLock lk(ring->mu);
  ring->ring.push(ev);
}

void TraceRecorder::record_instant(const char* name, std::uint64_t id) {
  ThreadRing* ring = local_ring();
  if (ring == nullptr) return;
  const TraceEvent ev{name, trace_now_ns(), 0, id, EventKind::kInstant};
  MutexLock lk(ring->mu);
  ring->ring.push(ev);
}

TraceRecorder::Stats TraceRecorder::stats() const {
  Stats out;
  MutexLock lk(g_mu);
  out.threads = g_rings.size();
  for (const auto& ring : g_rings) {
    MutexLock rlk(ring->mu);
    out.recorded += ring->ring.pushed();
    out.dropped += ring->ring.dropped();
  }
  return out;
}

void TraceRecorder::export_json(std::ostream& os) const {
  MutexLock lk(g_mu);
  const double epoch_us = static_cast<double>(g_epoch_ns) / 1000.0;
  os << "{\"traceEvents\":[\n"
     << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"nnlut\"}}";
  for (const auto& ring : g_rings) {
    os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << ring->tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(os, ring->name);
    os << "\"}}";
  }
  char buf[160];
  for (const auto& ring : g_rings) {
    MutexLock rlk(ring->mu);
    for (std::size_t i = 0; i < ring->ring.size(); ++i) {
      const TraceEvent& ev = ring->ring.at(i);
      // Rebase onto the session epoch; an event that straddled enable()
      // clamps to 0 rather than going negative.
      double ts_us = static_cast<double>(ev.ts_ns) / 1000.0 - epoch_us;
      if (ts_us < 0.0) ts_us = 0.0;
      os << ",\n{\"ph\":\"";
      if (ev.kind == EventKind::kComplete) {
        std::snprintf(buf, sizeof(buf),
                      "X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                      ring->tid, ts_us,
                      static_cast<double>(ev.dur_ns) / 1000.0);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "i\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"s\":\"t\"",
                      ring->tid, ts_us);
      }
      os << buf << ",\"name\":\"";
      append_escaped(os, ev.name == nullptr ? "" : ev.name);
      std::snprintf(buf, sizeof(buf), "\",\"args\":{\"id\":%llu}}",
                    static_cast<unsigned long long>(ev.id));
      os << buf;
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool TraceRecorder::export_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  export_json(os);
  return os.good();
}

}  // namespace nnlut::obs
