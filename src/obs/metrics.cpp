#include "obs/metrics.h"

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <stdexcept>

namespace nnlut::obs {

namespace {

void append_label_value(std::string& out, const std::string& v) {
  for (const char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

void append_labels(std::string& out, const MetricsRegistry::Labels& labels,
                   const char* extra_name = nullptr,
                   const std::string* extra_value = nullptr) {
  if (labels.empty() && extra_name == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out += ',';
    first = false;
    out += kv.first;
    out += "=\"";
    append_label_value(out, kv.second);
    out += '"';
  }
  if (extra_name != nullptr) {
    if (!first) out += ',';
    out += extra_name;
    out += "=\"";
    append_label_value(out, *extra_value);
    out += '"';
  }
  out += '}';
}

/// Prometheus sample values: integral values print without an exponent or
/// trailing ".000000" so counters and log2 bucket edges stay readable (and
/// golden-testable); everything else falls back to shortest-ish %.9g.
void append_value(std::string& out, double v) {
  char buf[48];
  if (std::nearbyint(v) == v && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out += buf;
}

void append_value(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

bool same_labels(const MetricsRegistry::Labels& a,
                 const MetricsRegistry::Labels& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

}  // namespace

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                 const std::string& help,
                                                 Kind kind) {
  if (name.empty())
    throw std::invalid_argument("MetricsRegistry: empty metric name");
  for (Family& f : families_) {
    if (f.name != name) continue;
    if (f.kind != kind)
      throw std::invalid_argument("MetricsRegistry: metric '" + name +
                                  "' re-registered with a different kind");
    return f;
  }
  families_.push_back(Family{name, help, kind, {}});
  return families_.back();
}

void MetricsRegistry::add_counter(const std::string& name,
                                  const std::string& help, Labels labels,
                                  CounterFn fn) {
  MutexLock lk(mu_);
  Family& f = family(name, help, Kind::kCounter);
  for (const Series& s : f.series)
    if (same_labels(s.labels, labels))
      throw std::invalid_argument("MetricsRegistry: duplicate series for '" +
                                  name + "'");
  f.series.push_back(Series{std::move(labels), std::move(fn), {}, {}});
}

void MetricsRegistry::add_gauge(const std::string& name,
                                const std::string& help, Labels labels,
                                GaugeFn fn) {
  MutexLock lk(mu_);
  Family& f = family(name, help, Kind::kGauge);
  for (const Series& s : f.series)
    if (same_labels(s.labels, labels))
      throw std::invalid_argument("MetricsRegistry: duplicate series for '" +
                                  name + "'");
  f.series.push_back(Series{std::move(labels), {}, std::move(fn), {}});
}

void MetricsRegistry::add_histogram(const std::string& name,
                                    const std::string& help, Labels labels,
                                    HistogramFn fn) {
  MutexLock lk(mu_);
  Family& f = family(name, help, Kind::kHistogram);
  for (const Series& s : f.series)
    if (same_labels(s.labels, labels))
      throw std::invalid_argument("MetricsRegistry: duplicate series for '" +
                                  name + "'");
  f.series.push_back(Series{std::move(labels), {}, {}, std::move(fn)});
}

std::size_t MetricsRegistry::remove_labeled(const std::string& name,
                                            const std::string& value) {
  MutexLock lk(mu_);
  std::size_t removed = 0;
  for (std::size_t fi = 0; fi < families_.size();) {
    Family& f = families_[fi];
    for (std::size_t si = 0; si < f.series.size();) {
      const Labels& ls = f.series[si].labels;
      bool match = false;
      for (const auto& kv : ls)
        if (kv.first == name && kv.second == value) {
          match = true;
          break;
        }
      if (match) {
        f.series.erase(f.series.begin() + static_cast<std::ptrdiff_t>(si));
        ++removed;
      } else {
        ++si;
      }
    }
    if (f.series.empty())
      families_.erase(families_.begin() + static_cast<std::ptrdiff_t>(fi));
    else
      ++fi;
  }
  return removed;
}

std::string MetricsRegistry::scrape() const {
  MutexLock lk(mu_);
  std::string out;
  for (const Family& f : families_) {
    out += "# HELP " + f.name + " " + f.help + "\n";
    out += "# TYPE " + f.name + " ";
    out += f.kind == Kind::kCounter
               ? "counter"
               : (f.kind == Kind::kGauge ? "gauge" : "histogram");
    out += "\n";
    for (const Series& s : f.series) {
      switch (f.kind) {
        case Kind::kCounter: {
          out += f.name;
          append_labels(out, s.labels);
          out += ' ';
          append_value(out, s.counter());
          out += '\n';
          break;
        }
        case Kind::kGauge: {
          out += f.name;
          append_labels(out, s.labels);
          out += ' ';
          append_value(out, s.gauge());
          out += '\n';
          break;
        }
        case Kind::kHistogram: {
          const HistogramSnapshot h = s.histogram();
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
            cumulative += b < h.counts.size() ? h.counts[b] : 0;
            std::string le;
            append_value(le, h.upper_bounds[b]);
            out += f.name + "_bucket";
            append_labels(out, s.labels, "le", &le);
            out += ' ';
            append_value(out, cumulative);
            out += '\n';
          }
          // The +Inf bucket must equal _count by construction.
          const std::string inf = "+Inf";
          out += f.name + "_bucket";
          append_labels(out, s.labels, "le", &inf);
          out += ' ';
          append_value(out, h.count);
          out += '\n';
          out += f.name + "_sum";
          append_labels(out, s.labels);
          out += ' ';
          append_value(out, h.sum);
          out += '\n';
          out += f.name + "_count";
          append_labels(out, s.labels);
          out += ' ';
          append_value(out, h.count);
          out += '\n';
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace nnlut::obs
