// Fixed-capacity span ring for the trace recorder (src/obs/trace.h).
//
// One SpanRing belongs to one recording thread; the recorder wraps it in a
// mutex so the exporter can read a quiescent copy. The ring itself is the
// HOT PATH of tracing — every span and instant event lands here — so this
// file is tagged hot-path in tools/lint_manifest.json (no-hot-alloc): the
// ring never allocates. Storage is a caller-owned array fixed at reset();
// when the ring is full, push() overwrites the OLDEST event (a trace wants
// the most recent activity) and the overwrite count is exact:
// dropped() == pushed() - size() at all times.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nnlut::obs {

enum class EventKind : std::uint8_t {
  kComplete,  // begin/end pair collapsed into {ts, dur}
  kInstant,   // point event, dur unused
};

/// One recorded event. `name` must be a string with static storage duration
/// (the recorder never copies it — that is what keeps recording
/// allocation-free); `id` correlates events across threads (request id) and
/// is exported as an arg.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;   // steady-clock nanoseconds (absolute)
  std::uint64_t dur_ns = 0;  // kComplete only
  std::uint64_t id = 0;      // correlation id; 0 = none
  EventKind kind = EventKind::kInstant;
};

/// Overwrite-oldest ring over caller-owned storage. Not thread-safe on its
/// own; the owning ThreadRing (trace.cpp) guards it with a mutex.
class SpanRing {
 public:
  SpanRing() = default;

  /// Point the ring at `storage[0..capacity)` and empty it. The storage must
  /// outlive the ring (the recorder owns both with matching lifetime).
  void reset(TraceEvent* storage, std::size_t capacity) {
    events_ = storage;
    capacity_ = capacity;
    head_ = 0;
    count_ = 0;
    pushed_ = 0;
  }

  /// Record one event; overwrites the oldest when full. Never allocates.
  void push(const TraceEvent& ev) {
    ++pushed_;
    if (capacity_ == 0) return;  // capacity 0: count-only ring, drops all
    events_[head_] = ev;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    if (count_ < capacity_) ++count_;
  }

  std::size_t capacity() const { return capacity_; }
  /// Events currently held: min(pushed, capacity).
  std::size_t size() const { return count_; }
  /// Total push() calls since reset().
  std::uint64_t pushed() const { return pushed_; }
  /// Events lost to overwriting, exactly: pushed() - size().
  std::uint64_t dropped() const { return pushed_ - count_; }

  /// i-th retained event, oldest first (i in [0, size())).
  const TraceEvent& at(std::size_t i) const {
    const std::size_t oldest = count_ < capacity_ ? 0 : head_;
    std::size_t idx = oldest + i;
    if (idx >= capacity_) idx -= capacity_;
    return events_[idx];
  }

 private:
  TraceEvent* events_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;   // next write position
  std::size_t count_ = 0;  // retained events
  std::uint64_t pushed_ = 0;
};

}  // namespace nnlut::obs
