// Request-lifecycle tracing for the serving stack.
//
// TraceRecorder is a process-wide recorder of begin/end spans and instant
// events into PER-THREAD fixed-capacity ring buffers (src/obs/trace_ring.h):
//
//   - Disabled cost is ONE branch: every probe starts with a relaxed load of
//     one atomic flag (trace_enabled()) and bails. No clock is read, no
//     mutex touched, nothing written.
//   - Enabled cost per span is two steady-clock reads plus one uncontended
//     mutex-guarded ring write on the recording thread's own ring. After a
//     thread's ring exists (allocated once, at that thread's first recorded
//     event of a session), recording performs ZERO heap allocation — spans
//     live in the preallocated rings and full rings overwrite their oldest
//     events (dropped counts stay exact), so tracing composes with the
//     zero-allocation steady state of the buffer-pool serving path.
//   - export_json() writes Chrome trace-event JSON (the "traceEvents"
//     format) loadable in Perfetto / chrome://tracing, with thread_name
//     metadata matching the pool / scheduler thread names
//     ("nnlut-worker-N", "ns-<model>", ...).
//
// Determinism contract: tracing observes, never steers. No result path
// reads a clock or a ring; served logits are bit-identical with tracing on
// vs. off (asserted by serving_determinism_test). All wall-clock reads of
// the tracer live in src/obs/ — the no-wallclock lint allowlists exactly
// this directory, so an instrumented file outside serve//obs/ never
// contains a clock read itself; it constructs ScopedSpan/instant() probes
// whose clock reads are here.
//
// See docs/OBSERVABILITY.md for the span taxonomy and how to open a trace.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace nnlut::obs {

namespace detail {
/// The single enabled flag behind trace_enabled(). Relaxed everywhere:
/// probes may observe an enable/disable a little late, which only moves a
/// handful of events across the boundary — never a data race (ring access
/// is mutex-guarded past the flag).
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// The one-branch gate every probe starts with.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Steady-clock nanoseconds (absolute; the exporter rebases onto the
/// enable() epoch). Only meaningful while building trace events.
inline std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Convert an already-held steady_clock time_point (e.g. a Submission's
/// enqueue stamp) into trace timestamp units. Pure arithmetic, no clock
/// read.
inline std::uint64_t trace_ns(std::chrono::steady_clock::time_point tp) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      tp.time_since_epoch())
                      .count();
  return ns < 0 ? 0 : static_cast<std::uint64_t>(ns);
}

class TraceRecorder {
 public:
  /// Default per-thread ring capacity, in events.
  static constexpr std::size_t kDefaultRingCapacity = 8192;

  /// The process-wide recorder (construct-on-first-use, never destroyed
  /// before any user: instrumented subsystems may record during static
  /// teardown of their own objects).
  static TraceRecorder& instance();

  /// Start a recording session: fix the export epoch to "now", drop every
  /// ring of a previous session, and arm trace_enabled(). Each thread's
  /// ring (capacity `events_per_thread`) is allocated once, at that
  /// thread's first recorded event of this session; recording after that
  /// allocates nothing.
  void enable(std::size_t events_per_thread = kDefaultRingCapacity);

  /// Disarm trace_enabled(). Rings are RETAINED so a quiesced trace can be
  /// exported after the traced workload (and its threads) finished.
  void disable();

  bool enabled() const { return trace_enabled(); }

  /// Record a completed span [start_ns, start_ns + dur_ns). Probes normally
  /// go through ScopedSpan / complete() below, which gate on
  /// trace_enabled() first. `name` must have static storage duration.
  void record_complete(const char* name, std::uint64_t start_ns,
                       std::uint64_t dur_ns, std::uint64_t id);
  /// Record a point event at "now".
  void record_instant(const char* name, std::uint64_t id);

  struct Stats {
    std::uint64_t recorded = 0;  // events pushed (retained + overwritten)
    std::uint64_t dropped = 0;   // overwritten by ring wraparound, exact
    std::size_t threads = 0;     // rings registered this session
  };
  Stats stats() const;

  /// Chrome trace-event JSON ("traceEvents" array object form):
  /// thread_name/process_name metadata first, then every retained event,
  /// timestamps in microseconds rebased onto the enable() epoch. Loadable
  /// in Perfetto (ui.perfetto.dev) and chrome://tracing.
  void export_json(std::ostream& os) const;
  /// export_json() into `path`; false (with no partial file guarantee
  /// beyond the OS's) when the file cannot be opened.
  bool export_json_file(const std::string& path) const;

 private:
  TraceRecorder() = default;
};

/// RAII span: stamps begin on construction, records the complete span on
/// destruction. When tracing is disabled at construction the whole object
/// is a no-op (one relaxed-atomic branch, the name pointer stays null).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::uint64_t id = 0) {
    if (!trace_enabled()) return;
    name_ = name;
    id_ = id;
    start_ns_ = trace_now_ns();
  }
  ~ScopedSpan() {
    if (name_ == nullptr) return;
    TraceRecorder::instance().record_complete(
        name_, start_ns_, trace_now_ns() - start_ns_, id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t id_ = 0;
};

/// Record a completed span from two timestamps the caller already holds
/// (e.g. a request's enqueue/dequeue stamps replayed at resolve time).
inline void complete(const char* name, std::uint64_t start_ns,
                     std::uint64_t end_ns, std::uint64_t id = 0) {
  if (!trace_enabled()) return;
  TraceRecorder::instance().record_complete(
      name, start_ns, end_ns >= start_ns ? end_ns - start_ns : 0, id);
}

/// Record a point event at "now".
inline void instant(const char* name, std::uint64_t id = 0) {
  if (!trace_enabled()) return;
  TraceRecorder::instance().record_instant(name, id);
}

}  // namespace nnlut::obs
