// Calibration ablation (Sec. 3.3.3). In the main Table-2(b) reproduction our
// direct 16-entry NN-LUTs already sit at baseline accuracy, leaving no gap
// for calibration to close. This ablation creates a genuine gap — a coarse
// 8-entry 1/SQRT LUT deployed in INT32 — and shows dataset-free calibration
// recovering it, which is the mechanism the paper's "+C" rows rely on.
#include <cstdio>
#include <vector>

#include "core/function_library.h"
#include "eval/calibration_runner.h"

#include "bench_util.h"

int main() {
  using namespace nnlut;
  using transformer::ApproxSelection;
  using transformer::LutNonlinearities;
  using transformer::LutSet;
  using transformer::MatmulMode;

  benchutil::print_header(
      "Ablation: dataset-free calibration closing a real approximation gap");

  const auto preset =
      benchutil::fast_mode() ? FitPreset::kFast : FitPreset::kPaper;

  std::printf("  %-8s %-8s %10s %10s %10s %10s\n", "task", "entries",
              "baseline", "direct", "+calib", "recovered");

  for (const tasks::TaskId id :
       {tasks::TaskId::kStsb, tasks::TaskId::kMrpc, tasks::TaskId::kRte}) {
    const tasks::TaskData task = tasks::make_task(id, benchutil::task_options());
    std::fprintf(stderr, "[ablation_calibration] training %s...\n",
                 task.name.c_str());
    const auto model = eval::train_model(task, benchutil::roberta_model(),
                                         benchutil::train_options());
    const double baseline = eval::evaluate_baseline(model, task);

    for (int entries : {8, 16}) {
      const NnlutBundle bundle = train_bundle(entries, preset, 1);
      const LutSet luts{bundle.gelu.lut, bundle.exp.lut, bundle.reciprocal.lut,
                        bundle.rsqrt.lut};
      LutNonlinearities::Options lopt;
      lopt.select = ApproxSelection::layernorm_only();
      lopt.act = model.config().act;

      auto direct = make_lut_backend(luts, LutPrecision::kInt32, lopt);
      const double d = eval::evaluate(model, task, *direct);

      auto calibrated = make_lut_backend(luts, LutPrecision::kInt32, lopt);
      const std::span<const tasks::Example> unlabeled(task.train.data(),
                                                      task.train.size() / 10);
      eval::calibrate_layernorm_sites(model, *calibrated, bundle.rsqrt,
                                      unlabeled, MatmulMode::kFp32,
                                      LutPrecision::kInt32);
      const double c = eval::evaluate(model, task, *calibrated);

      std::printf("  %-8s %-8d %10.1f %10.1f %10.1f %+10.1f\n",
                  task.name.c_str(), entries, baseline, d, c, c - d);
    }
  }

  std::printf(
      "\nExpected: with 8 entries the direct LayerNorm approximation leaves\n"
      "a visible gap that calibration narrows; with 16 entries the direct\n"
      "deployment already sits at baseline (as in our Table 2(b)\n"
      "reproduction) and calibration is a no-op within noise.\n");
  return 0;
}
