// Ablation of Sec. 3.3.2 (input scaling for wide-range approximation):
// 1/SQRT approximation error with and without the power-of-two input
// scaling, at the operator level and through the LayerNorm composite.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/function_library.h"
#include "core/nnlut_ops.h"
#include "numerics/rng.h"
#include "numerics/stats.h"

#include "bench_util.h"

int main() {
  using namespace nnlut;
  benchutil::print_header("Ablation: input scaling for 1/SQRT (Sec. 3.3.2)");

  const auto preset =
      benchutil::fast_mode() ? FitPreset::kFast : FitPreset::kPaper;
  const FittedLut rsqrt_fit = fit_lut(TargetFn::kRsqrt, 16, preset, 9);
  const LutFp32 rs(rsqrt_fit.lut);

  // Operator level: relative error of the scaled vs raw evaluation across
  // variances below the trained range.
  std::printf("\n  variance v | rel.err raw lut(v) | rel.err scaled "
              "lut(v*2^10)*2^5\n");
  LayerNormApprox::Options raw_opt;
  raw_opt.input_scaling = false;
  LayerNormApprox::Options scaled_opt;  // default: scaling on
  const LayerNormApprox raw(rs, raw_opt);
  const LayerNormApprox scaled(rs, scaled_opt);
  for (float v : {0.001f, 0.004f, 0.016f, 0.0625f, 0.25f, 0.9f}) {
    const float exact = rsqrt_exact(v);
    const float r = raw.inv_std(v);
    const float s = scaled.inv_std(v);
    std::printf("  %10.4f | %18.4f | %18.4f\n", v,
                std::abs(r - exact) / exact, std::abs(s - exact) / exact);
  }

  // Composite level: LayerNorm output error across activation scales.
  std::printf("\n  activation scale | LayerNorm mean|err| raw | scaled\n");
  Rng rng(11);
  for (float scale : {0.02f, 0.1f, 0.5f, 2.0f, 10.0f}) {
    std::vector<float> x(256), exact(256), yr(256), ys(256);
    for (float& v : x) v = rng.uniform(-scale, scale);
    layer_norm_exact(x, exact, {}, {});
    raw(x, yr, {}, {});
    scaled(x, ys, {}, {});
    std::printf("  %16.2f | %22.5f | %8.5f\n", scale,
                mean_abs_error(yr, exact), mean_abs_error(ys, exact));
  }

  std::printf(
      "\nExpected: for small variances (v < 1) the raw LUT is far outside\n"
      "its trained range and fails; scaling maps v into (1, 1024) where the\n"
      "LUT is accurate, at the cost of one bit-shift and one multiply.\n");
  return 0;
}
