// Steady-state memory behaviour of the serving hot path.
//
// BM_MemorySteadyState: closed-loop clients against a single-model Server,
// sweeping clients {1, 4} x seq-bucket mix {single, mixed} x pools
// {off, on}. Each configuration warms the server first (every seq bucket
// served enough times for the pool free lists and workspace slots to reach
// their high-water sizes), snapshots the pool counters, then measures a
// sustained window. The headline counter is alloc_delta_warm: buffer-pool
// heap misses during the measured window. Lifecycle tracing is ENABLED for
// every configuration, so the contract covers the instrumented hot path,
// not just the bare one. With pools on this is ZERO — the
// property CI asserts from the emitted JSON — while reuse_delta counts the
// recycled acquisitions that replaced those allocations. rss_delta_bytes
// reports the resident-set movement over the window (control-plane
// allocations — promise states, queue nodes, client input vectors — are
// outside the pool's scope and show up here, not in alloc_delta_warm).
//
// Unless --benchmark_out is given, results are also written as
// machine-readable JSON to BENCH_memory_steady_state.json.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "approx/linear_lut.h"
#include "bench_util.h"
#include "numerics/math.h"
#include "numerics/rng.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "serve/server.h"
#include "transformer/infer.h"

namespace {

using namespace nnlut;
using namespace nnlut::transformer;
using namespace std::chrono_literals;

constexpr std::size_t kMaxSeq = 64;
constexpr int kWarmRounds = 4;
constexpr int kRequestsPerClient = 8;

ModelConfig bench_config() {
  ModelConfig c = ModelConfig::roberta_like();
  c.vocab = 128;
  c.hidden = 64;
  c.layers = 2;
  c.heads = 4;
  c.ffn = 256;
  c.max_seq = kMaxSeq;
  return c;
}

struct Fixture {
  TaskModel model;
  std::unique_ptr<LutNonlinearities> lut;

  Fixture(const ModelConfig& cfg, Rng& rng)
      : model(cfg, HeadKind::kClassify, 2, rng) {
    LutSet luts{fit_linear_lut(gelu_exact, kGeluRange, 16),
                fit_linear_lut(exp_exact, {-16.0f, 0.0f}, 16),
                fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 1024.0f}, 16,
                                         BreakpointMode::kExponential),
                fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 16,
                                         BreakpointMode::kExponential)};
    LutNonlinearities::Options opt;
    opt.select = ApproxSelection::all();
    lut = make_lut_backend(luts, LutPrecision::kFp32, opt);
  }
};

Fixture& fixture() {
  static Rng rng(42);
  static Fixture f(bench_config(), rng);
  return f;
}

BatchInput request_for(std::uint64_t seed, std::size_t seq) {
  Rng rng(1000 + seed);
  BatchInput in;
  in.batch = 1;
  in.seq = seq;
  in.token_ids.resize(seq);
  for (int& t : in.token_ids)
    t = rng.uniform_int(0, static_cast<int>(bench_config().vocab) - 1);
  return in;
}

/// One closed-loop wave: every client runs its request stream to completion.
void run_wave(serve::Server& server,
              const std::vector<std::vector<BatchInput>>& streams) {
  std::vector<std::thread> threads;
  threads.reserve(streams.size());
  for (std::size_t c = 0; c < streams.size(); ++c) {
    threads.emplace_back([&, c] {
      for (const BatchInput& in : streams[c]) {
        Tensor logits = server.submit(in).get();
        benchmark::DoNotOptimize(logits.data());
      }
    });
  }
  for (auto& t : threads) t.join();
}

void BM_MemorySteadyState(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  const bool mixed_seq = state.range(1) != 0;
  const bool use_pool = state.range(2) != 0;

  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait = 500us;
  cfg.threads = 0;  // hardware_concurrency
  cfg.use_pool = use_pool;

  // Fixed request streams: the mixed sweep alternates seq buckets 32/64 so
  // the workspace reshapes between size classes every flush; the single
  // sweep stays in one bucket.
  std::vector<std::vector<BatchInput>> streams(clients);
  for (std::size_t c = 0; c < clients; ++c)
    for (int k = 0; k < kRequestsPerClient; ++k) {
      const std::size_t seq = mixed_seq && (k % 2 == 1) ? kMaxSeq / 2 : kMaxSeq;
      streams[c].push_back(
          request_for(c * 1001 + static_cast<std::uint64_t>(k), seq));
    }

  serve::Server server(fixture().model, *fixture().lut, cfg);

  // Trace the whole run: the per-thread rings are allocated once (at
  // enable() / first event per thread, i.e. during warmup), so the
  // alloc_delta_warm == 0 contract must hold with tracing ENABLED — the
  // instrumented hot path records into preallocated rings only.
  obs::TraceRecorder::instance().enable(/*events_per_thread=*/4096);

  // Warm every seq bucket: pool free lists and workspace slots reach their
  // high-water sizes, so the measured window below is pure steady state.
  for (int r = 0; r < kWarmRounds; ++r) run_wave(server, streams);

  const serve::ServerStats warm = server.stats();
  const benchutil::MemorySnapshot rss0 = benchutil::MemorySnapshot::take();

  for (auto _ : state) run_wave(server, streams);

  const serve::ServerStats done = server.stats();
  const benchutil::MemorySnapshot rss1 = benchutil::MemorySnapshot::take();
  server.shutdown();

  const auto total_requests =
      static_cast<std::size_t>(state.iterations()) * clients *
      static_cast<std::size_t>(kRequestsPerClient);
  state.SetItemsProcessed(static_cast<std::int64_t>(total_requests));
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(total_requests), benchmark::Counter::kIsRate);
  // Pool heap misses over the warmed window — zero with pools on.
  state.counters["alloc_delta_warm"] =
      static_cast<double>(done.pool_alloc_count - warm.pool_alloc_count);
  state.counters["reuse_delta"] =
      static_cast<double>(done.pool_reuse_count - warm.pool_reuse_count);
  state.counters["pool_bytes_peak"] =
      static_cast<double>(done.pool_bytes_peak);
  state.counters["rss_delta_bytes"] =
      rss1.supported ? static_cast<double>(rss1.rss_bytes) -
                           static_cast<double>(rss0.rss_bytes)
                     : 0.0;
  // Events recorded during this configuration — proves the zero-alloc
  // window above really exercised the tracing hot path.
  state.counters["trace_events"] = static_cast<double>(
      obs::TraceRecorder::instance().stats().recorded);
  obs::TraceRecorder::instance().disable();
  nnlut::runtime::set_runtime_config({});
}

BENCHMARK(BM_MemorySteadyState)
    ->ArgsProduct({{1, 4}, {0, 1}, {0, 1}})
    ->ArgNames({"clients", "mixed_seq", "use_pool"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Custom main: default to writing machine-readable JSON next to the working
// directory unless the caller already chose an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  static std::string out = "--benchmark_out=BENCH_memory_steady_state.json";
  static std::string fmt = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
