// Closed-loop serving load generators.
//
// BM_ServingClosedLoop: `clients` threads each submit one request at a time
// against a single-model Server (submit -> await -> next), sweeping clients
// {1, 4, 16} x max_batch {1, 8, 32}. max_batch 1 is the no-batching
// baseline — each request is its own model call; larger max_batch lets the
// dynamic batcher pack concurrent requests of the same seq into one
// LUT-evaluated batch. The acceptance target is >= 2x the requests/sec of
// max_batch 1 at 16 clients with max_batch 32 on a multi-core machine
// (batching wins come from amortized dispatch plus fuller thread-pool
// shards; on a 1-core container only the dispatch term remains).
//
// BM_EngineMultiModel: one Engine serving TWO backends (LUT fp32 + LUT
// int32 slots over the same weights), clients {4, 16} split across the two
// models, with the per-slot queue unbounded (bounded=0) or bounded at a
// small depth with ShedPolicy::kRejectNew (bounded=1). Counters report the
// shed rate (ServerOverloaded resolutions / submissions) and each model's
// p95 latency, so the artifact shows what admission control trades: bounded
// queues cap p95 under burst at the cost of shed work.
//
// Unless --benchmark_out is given, results are also written as
// machine-readable JSON to BENCH_serving_throughput.json.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "approx/linear_lut.h"
#include "numerics/math.h"
#include "numerics/rng.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "transformer/infer.h"

namespace {

using namespace nnlut;
using namespace nnlut::transformer;
using namespace std::chrono_literals;

constexpr std::size_t kSeq = 64;
constexpr int kRequestsPerClient = 8;

ModelConfig bench_config() {
  ModelConfig c = ModelConfig::roberta_like();
  c.vocab = 128;
  c.hidden = 64;
  c.layers = 2;
  c.heads = 4;
  c.ffn = 256;
  c.max_seq = kSeq;
  return c;
}

struct Fixture {
  TaskModel model;
  std::unique_ptr<LutNonlinearities> lut;
  std::unique_ptr<LutNonlinearities> lut_int32;

  Fixture(const ModelConfig& cfg, Rng& rng)
      : model(cfg, HeadKind::kClassify, 2, rng) {
    LutSet luts{fit_linear_lut(gelu_exact, kGeluRange, 16),
                fit_linear_lut(exp_exact, {-16.0f, 0.0f}, 16),
                fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 1024.0f}, 16,
                                         BreakpointMode::kExponential),
                fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 16,
                                         BreakpointMode::kExponential)};
    LutNonlinearities::Options opt;
    opt.select = ApproxSelection::all();
    lut = make_lut_backend(luts, LutPrecision::kFp32, opt);
    lut_int32 = make_lut_backend(luts, LutPrecision::kInt32, opt);
  }
};

Fixture& fixture() {
  static Rng rng(42);
  static Fixture f(bench_config(), rng);
  return f;
}

BatchInput request_for(std::uint64_t seed) {
  Rng rng(1000 + seed);
  BatchInput in;
  in.batch = 1;
  in.seq = kSeq;
  in.token_ids.resize(kSeq);
  for (int& t : in.token_ids)
    t = rng.uniform_int(0, static_cast<int>(bench_config().vocab) - 1);
  return in;
}

void BM_ServingClosedLoop(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  const std::size_t max_batch = static_cast<std::size_t>(state.range(1));

  serve::ServeConfig cfg;
  cfg.max_batch = max_batch;
  cfg.max_wait = 500us;
  cfg.threads = 0;  // hardware_concurrency

  // Each client's request stream is fixed across iterations and sweeps so
  // configurations serve identical work.
  std::vector<std::vector<BatchInput>> streams(clients);
  for (std::size_t c = 0; c < clients; ++c)
    for (int k = 0; k < kRequestsPerClient; ++k)
      streams[c].push_back(request_for(c * 1001 + static_cast<std::uint64_t>(k)));

  double occupancy = 0.0;
  for (auto _ : state) {
    serve::Server server(fixture().model, *fixture().lut, cfg);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (const BatchInput& in : streams[c]) {
          Tensor logits = server.submit(in).get();
          benchmark::DoNotOptimize(logits.data());
        }
      });
    }
    for (auto& t : threads) t.join();
    occupancy = server.stats().mean_batch_occupancy;
    server.shutdown();
  }

  const auto total_requests =
      static_cast<std::size_t>(state.iterations()) * clients *
      static_cast<std::size_t>(kRequestsPerClient);
  state.SetItemsProcessed(static_cast<std::int64_t>(total_requests));
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(total_requests), benchmark::Counter::kIsRate);
  state.counters["batch_occupancy"] = occupancy;
  nnlut::runtime::set_runtime_config({});
}

BENCHMARK(BM_ServingClosedLoop)
    ->ArgsProduct({{1, 4, 16}, {1, 8, 32}})
    ->ArgNames({"clients", "max_batch"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Multi-model sweep: two LUT backends behind one Engine, closed-loop
// clients split across them, bounded vs unbounded per-slot queues.
void BM_EngineMultiModel(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  const bool bounded = state.range(1) != 0;

  serve::SlotConfig scfg;
  scfg.max_batch = 8;
  scfg.max_wait = 500us;
  if (bounded)
    scfg.admission = {/*max_queue_depth=*/4, serve::ShedPolicy::kRejectNew};

  const char* kModels[2] = {"lut-fp32", "lut-int32"};
  std::vector<std::vector<BatchInput>> streams(clients);
  for (std::size_t c = 0; c < clients; ++c)
    for (int k = 0; k < kRequestsPerClient; ++k)
      streams[c].push_back(request_for(c * 2003 + static_cast<std::uint64_t>(k)));

  std::uint64_t submitted = 0, shed = 0;
  double p95[2] = {0.0, 0.0};
  for (auto _ : state) {
    serve::Engine engine(serve::EngineConfig{/*threads=*/0});
    engine.register_model(kModels[0], fixture().model, *fixture().lut, scfg);
    engine.register_model(kModels[1], fixture().model, *fixture().lut_int32,
                          scfg);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        const char* model = kModels[c % 2];  // half the clients per model
        for (const BatchInput& in : streams[c]) {
          serve::PendingResult r = engine.submit(model, in);
          try {
            Tensor logits = r.get();
            benchmark::DoNotOptimize(logits.data());
          } catch (const serve::ServerOverloaded&) {
            // Shed by admission control; counted from the ledger below.
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    engine.shutdown();
    const serve::EngineStats stats = engine.stats();
    submitted = stats.total.submitted + stats.total.rejected;
    shed = stats.total.rejected_overload;
    for (int mdl = 0; mdl < 2; ++mdl)
      p95[mdl] = stats.models.at(kModels[mdl]).p95_latency_us;
  }

  const auto total_requests =
      static_cast<std::size_t>(state.iterations()) * clients *
      static_cast<std::size_t>(kRequestsPerClient);
  state.SetItemsProcessed(static_cast<std::int64_t>(total_requests));
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(total_requests), benchmark::Counter::kIsRate);
  state.counters["shed_rate"] =
      submitted > 0
          ? static_cast<double>(shed) / static_cast<double>(submitted)
          : 0.0;
  state.counters["p95_us_lut_fp32"] = p95[0];
  state.counters["p95_us_lut_int32"] = p95[1];
  nnlut::runtime::set_runtime_config({});
}

BENCHMARK(BM_EngineMultiModel)
    ->ArgsProduct({{4, 16}, {0, 1}})
    ->ArgNames({"clients", "bounded"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Custom main: default to writing machine-readable JSON next to the working
// directory unless the caller already chose an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  static std::string out = "--benchmark_out=BENCH_serving_throughput.json";
  static std::string fmt = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
