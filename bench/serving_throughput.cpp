// Closed-loop serving load generator: `clients` threads each submit one
// request at a time against a Server (submit -> await -> next), sweeping
// clients {1, 4, 16} x max_batch {1, 8, 32}. max_batch 1 is the no-batching
// baseline — each request is its own model call; larger max_batch lets the
// dynamic batcher pack concurrent requests of the same seq into one
// LUT-evaluated batch. The acceptance target is >= 2x the requests/sec of
// max_batch 1 at 16 clients with max_batch 32 on a multi-core machine
// (batching wins come from amortized dispatch plus fuller thread-pool
// shards; on a 1-core container only the dispatch term remains).
//
// Unless --benchmark_out is given, results are also written as
// machine-readable JSON to BENCH_serving_throughput.json.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "approx/linear_lut.h"
#include "numerics/math.h"
#include "numerics/rng.h"
#include "runtime/thread_pool.h"
#include "serve/server.h"
#include "transformer/infer.h"

namespace {

using namespace nnlut;
using namespace nnlut::transformer;
using namespace std::chrono_literals;

constexpr std::size_t kSeq = 64;
constexpr int kRequestsPerClient = 8;

ModelConfig bench_config() {
  ModelConfig c = ModelConfig::roberta_like();
  c.vocab = 128;
  c.hidden = 64;
  c.layers = 2;
  c.heads = 4;
  c.ffn = 256;
  c.max_seq = kSeq;
  return c;
}

struct Fixture {
  TaskModel model;
  std::unique_ptr<LutNonlinearities> lut;

  Fixture(const ModelConfig& cfg, Rng& rng)
      : model(cfg, HeadKind::kClassify, 2, rng) {
    LutSet luts{fit_linear_lut(gelu_exact, kGeluRange, 16),
                fit_linear_lut(exp_exact, {-16.0f, 0.0f}, 16),
                fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 1024.0f}, 16,
                                         BreakpointMode::kExponential),
                fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 16,
                                         BreakpointMode::kExponential)};
    LutNonlinearities::Options opt;
    opt.select = ApproxSelection::all();
    lut = make_lut_backend(luts, LutPrecision::kFp32, opt);
  }
};

Fixture& fixture() {
  static Rng rng(42);
  static Fixture f(bench_config(), rng);
  return f;
}

BatchInput request_for(std::uint64_t seed) {
  Rng rng(1000 + seed);
  BatchInput in;
  in.batch = 1;
  in.seq = kSeq;
  in.token_ids.resize(kSeq);
  for (int& t : in.token_ids)
    t = rng.uniform_int(0, static_cast<int>(bench_config().vocab) - 1);
  return in;
}

void BM_ServingClosedLoop(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  const std::size_t max_batch = static_cast<std::size_t>(state.range(1));

  serve::ServeConfig cfg;
  cfg.max_batch = max_batch;
  cfg.max_wait = 500us;
  cfg.threads = 0;  // hardware_concurrency

  // Each client's request stream is fixed across iterations and sweeps so
  // configurations serve identical work.
  std::vector<std::vector<BatchInput>> streams(clients);
  for (std::size_t c = 0; c < clients; ++c)
    for (int k = 0; k < kRequestsPerClient; ++k)
      streams[c].push_back(request_for(c * 1001 + static_cast<std::uint64_t>(k)));

  double occupancy = 0.0;
  for (auto _ : state) {
    serve::Server server(fixture().model, *fixture().lut, cfg);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (const BatchInput& in : streams[c]) {
          Tensor logits = server.submit(in).get();
          benchmark::DoNotOptimize(logits.data());
        }
      });
    }
    for (auto& t : threads) t.join();
    occupancy = server.stats().mean_batch_occupancy;
    server.shutdown();
  }

  const auto total_requests =
      static_cast<std::size_t>(state.iterations()) * clients *
      static_cast<std::size_t>(kRequestsPerClient);
  state.SetItemsProcessed(static_cast<std::int64_t>(total_requests));
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(total_requests), benchmark::Counter::kIsRate);
  state.counters["batch_occupancy"] = occupancy;
  nnlut::runtime::set_runtime_config({});
}

BENCHMARK(BM_ServingClosedLoop)
    ->ArgsProduct({{1, 4, 16}, {1, 8, 32}})
    ->ArgNames({"clients", "max_batch"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Custom main: default to writing machine-readable JSON next to the working
// directory unless the caller already chose an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  static std::string out = "--benchmark_out=BENCH_serving_throughput.json";
  static std::string fmt = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
