// Table 3 of the paper: direct approximation of Softmax on a
// MobileBERT-style model (NoNorm + ReLU: Softmax is the only transcendental
// non-linearity in its transformer layer) for the SQuAD-style span task,
// with MatMul computed in FP16. Compares Linear-LUT and NN-LUT at FP32 and
// FP16 LUT precision against the exact baseline (F1).
#include <cstdio>

#include "approx/linear_lut.h"
#include "core/function_library.h"
#include "numerics/math.h"

#include "bench_util.h"

int main() {
  using namespace nnlut;
  using transformer::ApproxSelection;
  using transformer::LutNonlinearities;
  using transformer::LutSet;
  using transformer::MatmulMode;

  benchutil::print_header(
      "Table 3: Softmax direct approximation, MobileBERT-like model on "
      "SQuAD-style span task (MatMul in FP16)");

  const auto preset =
      benchutil::fast_mode() ? FitPreset::kFast : FitPreset::kPaper;

  const tasks::TaskData task =
      tasks::make_task(tasks::TaskId::kSquad, benchutil::task_options());
  std::fprintf(stderr, "[table3] training MobileBERT-like span model...\n");
  const auto model = eval::train_model(task, benchutil::mobilebert_model(),
                                       benchutil::mobilebert_train_options());

  transformer::ExactNonlinearities exact(model.config().act);
  const double baseline =
      eval::evaluate(model, task, exact, MatmulMode::kFp16);

  const NnlutBundle bundle = train_bundle(16, preset, 1);
  const LutSet nn_luts{bundle.gelu.lut, bundle.exp.lut, bundle.reciprocal.lut,
                       bundle.rsqrt.lut};
  const LutSet lin_luts{fit_linear_lut(gelu_exact, kGeluRange, 16),
                        fit_linear_lut(exp_exact, kExpRange, 16),
                        fit_linear_lut(reciprocal_exact, kDivideRange, 16),
                        fit_linear_lut(rsqrt_exact, kRsqrtRange, 16)};

  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::softmax_only();
  opt.act = model.config().act;

  auto eval_at = [&](const LutSet& luts, LutPrecision prec) {
    auto backend = make_lut_backend(luts, prec, opt);
    return eval::evaluate(model, task, *backend, MatmulMode::kFp16);
  };

  const double lin32 = eval_at(lin_luts, LutPrecision::kFp32);
  const double lin16 = eval_at(lin_luts, LutPrecision::kFp16);
  const double nn32 = eval_at(nn_luts, LutPrecision::kFp32);
  const double nn16 = eval_at(nn_luts, LutPrecision::kFp16);

  std::printf("\n  %-24s %-12s %10s %10s\n", "Approx. Type", "Softmax Prec",
              "F1", "(loss)");
  std::printf("  %-24s %-12s %10.1f %10s\n", "Baseline", "FP32", baseline, "-");
  std::printf("  %-24s %-12s %10.1f %+10.1f\n", "Linear-LUT", "FP32", lin32,
              lin32 - baseline);
  std::printf("  %-24s %-12s %10.1f %+10.1f\n", "Linear-LUT", "FP16", lin16,
              lin16 - baseline);
  std::printf("  %-24s %-12s %10.1f %+10.1f\n", "NN-LUT", "FP32", nn32,
              nn32 - baseline);
  std::printf("  %-24s %-12s %10.1f %+10.1f\n", "NN-LUT", "FP16", nn16,
              nn16 - baseline);

  std::printf(
      "\nPaper's shape (Table 3): NN-LUT matches the baseline exactly at\n"
      "both precisions (89.3 / 89.3); Linear-LUT loses ~1.5 F1 at both\n"
      "(87.8 / 87.7).\n");
  return 0;
}
