// Table 2(b) of the paper: the INT8-matmul RoBERTa setting. Baseline keeps
// non-linear ops exact in FP32; I-BERT replaces them with integer kernels;
// NN-LUT is evaluated at FP32 and INT32 deployment precision, each with and
// without dataset-free calibration of the LayerNorm LUTs ("+C" rows,
// calibrated on one tenth of the training data, unlabeled).
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/function_library.h"
#include "eval/calibration_runner.h"

#include "bench_util.h"

namespace {

using namespace nnlut;
using transformer::ApproxSelection;
using transformer::LutNonlinearities;
using transformer::LutSet;
using transformer::MatmulMode;

double mean(const std::vector<double>& v) {
  return v.empty() ? 0.0
                   : std::accumulate(v.begin(), v.end(), 0.0) /
                         static_cast<double>(v.size());
}

}  // namespace

int main() {
  benchutil::print_header(
      "Table 2(b): INT8-matmul RoBERTa-like model (I-BERT vs NN-LUT, with "
      "calibration)");

  const auto preset =
      benchutil::fast_mode() ? FitPreset::kFast : FitPreset::kPaper;
  const NnlutBundle bundle = train_bundle(16, preset, 1);
  const LutSet luts{bundle.gelu.lut, bundle.exp.lut, bundle.reciprocal.lut,
                    bundle.rsqrt.lut};

  const auto suite = tasks::glue_suite();
  std::vector<std::string> names;
  std::vector<double> base, ibert, nn32, nn32c, nni, nnic;

  for (const tasks::TaskId id : suite) {
    const tasks::TaskData task = tasks::make_task(id, benchutil::task_options());
    std::fprintf(stderr, "[table2b] training %s...\n", task.name.c_str());
    const auto model = eval::train_model(task, benchutil::roberta_model(),
                                         benchutil::train_options());
    names.push_back(task.name);

    // Baseline: INT8 matmul, exact FP32 non-linear ops.
    transformer::ExactNonlinearities exact(model.config().act);
    base.push_back(eval::evaluate(model, task, exact, MatmulMode::kInt8));

    // I-BERT: integer non-linear kernels.
    transformer::IBertNonlinearities ib(model.config().act);
    ibert.push_back(eval::evaluate(model, task, ib, MatmulMode::kInt8));

    LutNonlinearities::Options lopt;
    lopt.select = ApproxSelection::all();
    lopt.act = model.config().act;

    // Calibration set: one tenth of the training data, unlabeled.
    const std::size_t calib_n = task.train.size() / 10;
    const std::span<const tasks::Example> unlabeled(task.train.data(), calib_n);

    // NN-LUT FP32 and FP32+C.
    {
      auto b = make_lut_backend(luts, LutPrecision::kFp32, lopt);
      nn32.push_back(eval::evaluate(model, task, *b, MatmulMode::kInt8));
      auto bc = make_lut_backend(luts, LutPrecision::kFp32, lopt);
      eval::calibrate_layernorm_sites(model, *bc, bundle.rsqrt, unlabeled,
                                      MatmulMode::kInt8, LutPrecision::kFp32);
      nn32c.push_back(eval::evaluate(model, task, *bc, MatmulMode::kInt8));
    }
    // NN-LUT INT32 and INT32+C.
    {
      auto b = make_lut_backend(luts, LutPrecision::kInt32, lopt);
      nni.push_back(eval::evaluate(model, task, *b, MatmulMode::kInt8));
      auto bc = make_lut_backend(luts, LutPrecision::kInt32, lopt);
      eval::calibrate_layernorm_sites(model, *bc, bundle.rsqrt, unlabeled,
                                      MatmulMode::kInt8, LutPrecision::kInt32);
      nnic.push_back(eval::evaluate(model, task, *bc, MatmulMode::kInt8));
    }
  }

  auto print_row = [&](const char* label, const char* prec,
                       const std::vector<double>& vals) {
    std::printf("  %-10s %-9s", label, prec);
    for (double v : vals) std::printf(" %6.1f", v);
    std::printf(" | %6.1f\n", mean(vals));
  };

  std::printf("\n  %-10s %-9s", "Method", "Precision");
  for (const std::string& n : names) std::printf(" %6s", n.c_str());
  std::printf(" | %6s\n", "Avg");
  print_row("Baseline", "FP32", base);
  print_row("I-BERT", "INT32", ibert);
  print_row("NN-LUT", "FP32", nn32);
  print_row("NN-LUT", "FP32+C", nn32c);
  print_row("NN-LUT", "INT32", nni);
  print_row("NN-LUT", "INT32+C", nnic);

  std::printf(
      "\nPaper's shape (Table 2b): NN-LUT FP32 on par with I-BERT; INT32\n"
      "slightly below FP32; calibration (+C) lifts both to (or above) the\n"
      "I-BERT average — the paper reports avgs 85.4 baseline / 84.5 I-BERT /\n"
      "84.5 FP32 / 85.1 FP32+C / 84.1 INT32 / 85.1 INT32+C.\n");
  return 0;
}
