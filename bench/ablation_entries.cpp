// Ablation backing the paper's Sec. 4.1 statement that "16 entries are
// enough for NN-LUT to achieve high approximation accuracy": sweep the LUT
// entry count and report per-function approximation error for NN-LUT and the
// Linear-LUT baseline.
#include <cmath>
#include <cstdio>

#include "approx/linear_lut.h"
#include "core/function_library.h"

#include "bench_util.h"

namespace {

using namespace nnlut;

double lut_l1(const PiecewiseLinear& lut, float (*f)(float), InputRange r,
              bool log_grid) {
  double s = 0.0;
  const int n = 4096;
  for (int i = 0; i < n; ++i) {
    float x;
    if (log_grid) {
      const float llo = std::log(r.lo), lhi = std::log(r.hi);
      x = std::exp(llo + (lhi - llo) * (static_cast<float>(i) + 0.5f) / n);
    } else {
      x = r.lo + (r.hi - r.lo) * (static_cast<float>(i) + 0.5f) / n;
    }
    s += std::abs(static_cast<double>(lut(x)) - f(x));
  }
  return s / n;
}

}  // namespace

int main() {
  benchutil::print_header(
      "Ablation: LUT entry count (paper: 16 entries suffice)");

  const auto preset =
      benchutil::fast_mode() ? FitPreset::kFast : FitPreset::kPaper;

  std::printf("  %-8s %-8s %14s %14s\n", "function", "entries", "NN-LUT L1",
              "Linear-LUT L1");
  for (TargetFn id : {TargetFn::kGelu, TargetFn::kExp, TargetFn::kReciprocal,
                      TargetFn::kRsqrt}) {
    const FnSpec& spec = fn_spec(id);
    const bool log_grid = (id == TargetFn::kReciprocal || id == TargetFn::kRsqrt);
    for (int entries : {4, 8, 16, 32, 64}) {
      const FittedLut nn = fit_lut(id, entries, preset, 5);
      const PiecewiseLinear lin = fit_linear_lut(spec.fn, spec.range, entries);
      std::printf("  %-8s %-8d %14.6f %14.6f\n", spec.name, entries,
                  lut_l1(nn.lut, spec.fn, spec.range, log_grid),
                  lut_l1(lin, spec.fn, spec.range, log_grid));
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape: NN-LUT error drops fast and is already small at 16\n"
      "entries; Linear-LUT needs far more entries on EXP/DIV/1-SQRT because\n"
      "its breakpoints cannot concentrate where the curvature is.\n");
  return 0;
}
