// Table 2(a) of the paper: direct approximation (no fine-tuning, no
// calibration) of the non-linear operations of a full-precision
// RoBERTa-style model on the GLUE suite. Rows: each op replaced alone and
// all together, for the Linear-LUT baseline and for NN-LUT. Input scaling is
// applied to LayerNorm for both methods (paper Sec. 4.3).
//
// The models are trained from scratch on the synthetic GLUE suite (see
// DESIGN.md substitutions); the paper's *shape* to reproduce: Linear-LUT
// collapses when LayerNorm is replaced, NN-LUT stays at baseline everywhere.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "approx/linear_lut.h"
#include "core/function_library.h"
#include "numerics/math.h"

#include "bench_util.h"

namespace {

using namespace nnlut;
using transformer::ApproxSelection;
using transformer::LutNonlinearities;
using transformer::LutSet;

LutSet linear_luts() {
  return {fit_linear_lut(gelu_exact, kGeluRange, 16),
          fit_linear_lut(exp_exact, kExpRange, 16),
          fit_linear_lut(reciprocal_exact, kDivideRange, 16),
          fit_linear_lut(rsqrt_exact, kRsqrtRange, 16)};
}

LutSet nnlut_luts(FitPreset preset) {
  const NnlutBundle b = train_bundle(16, preset, 1);
  return {b.gelu.lut, b.exp.lut, b.reciprocal.lut, b.rsqrt.lut};
}

struct MethodRows {
  // metric per task for: gelu-only, softmax-only, layernorm-only, altogether
  std::vector<double> gelu, softmax, layernorm, all;
};

double eval_with(const transformer::TaskModel& model,
                 const tasks::TaskData& task, const LutSet& luts,
                 ApproxSelection sel) {
  LutNonlinearities::Options opt;
  opt.select = sel;
  opt.act = model.config().act;
  auto backend = make_lut_backend(luts, LutPrecision::kFp32, opt);
  return eval::evaluate(model, task, *backend);
}

}  // namespace

int main() {
  benchutil::print_header(
      "Table 2(a): direct approximation on the FP32 RoBERTa-like model, GLUE "
      "suite");

  const auto preset =
      benchutil::fast_mode() ? FitPreset::kFast : FitPreset::kPaper;
  const LutSet lin = linear_luts();
  const LutSet nn = nnlut_luts(preset);

  const auto suite = tasks::glue_suite();
  std::vector<std::string> names;
  std::vector<double> baseline;
  MethodRows linear_rows, nnlut_rows;

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const tasks::TaskData task =
        tasks::make_task(suite[i], benchutil::task_options());
    std::fprintf(stderr, "[table2a] training %s...\n", task.name.c_str());
    const auto model = eval::train_model(task, benchutil::roberta_model(),
                                         benchutil::train_options());
    names.push_back(task.name);
    baseline.push_back(eval::evaluate_baseline(model, task));

    linear_rows.gelu.push_back(
        eval_with(model, task, lin, ApproxSelection::gelu_only()));
    linear_rows.softmax.push_back(
        eval_with(model, task, lin, ApproxSelection::softmax_only()));
    linear_rows.layernorm.push_back(
        eval_with(model, task, lin, ApproxSelection::layernorm_only()));
    linear_rows.all.push_back(
        eval_with(model, task, lin, ApproxSelection::all()));

    nnlut_rows.gelu.push_back(
        eval_with(model, task, nn, ApproxSelection::gelu_only()));
    nnlut_rows.softmax.push_back(
        eval_with(model, task, nn, ApproxSelection::softmax_only()));
    nnlut_rows.layernorm.push_back(
        eval_with(model, task, nn, ApproxSelection::layernorm_only()));
    nnlut_rows.all.push_back(
        eval_with(model, task, nn, ApproxSelection::all()));
  }

  auto print_row = [&](const char* label, const std::vector<double>& vals) {
    std::printf("  %-16s", label);
    for (double v : vals) std::printf(" %6.1f", v);
    std::printf("\n");
  };

  std::printf("\n  %-16s", "Method");
  for (const std::string& n : names) std::printf(" %6s", n.c_str());
  std::printf("\n");
  print_row("Baseline", baseline);
  std::printf("  Linear-LUT(FP32)\n");
  print_row("  GELU only", linear_rows.gelu);
  print_row("  Softmax only", linear_rows.softmax);
  print_row("  LayerNorm only", linear_rows.layernorm);
  print_row("  Altogether", linear_rows.all);
  std::printf("  NN-LUT(FP32)\n");
  print_row("  GELU only", nnlut_rows.gelu);
  print_row("  Softmax only", nnlut_rows.softmax);
  print_row("  LayerNorm only", nnlut_rows.layernorm);
  print_row("  Altogether", nnlut_rows.all);

  std::printf(
      "\nPaper's shape (Table 2a): GELU/Softmax rows track the baseline for\n"
      "both methods; the Linear-LUT LayerNorm row collapses (e.g. MRPC 87.5\n"
      "-> 57.5, CoLA 62.1 -> 4.6) and drags 'Altogether' down with it, while\n"
      "every NN-LUT row stays within ~1 point of baseline.\n");
  return 0;
}
