// Table 4 of the paper: performance comparison of arithmetic units for the
// approximation of non-linear operations (7-nm synthesis). Reproduced with
// the gate-level cost model in src/hwmodel; measured numbers are printed
// next to the paper's reference values.
#include <cstdio>

#include "hwmodel/units.h"

#include "bench_util.h"

namespace {

struct PaperRow {
  const char* name;
  double area, power, delay;
};

void print_row(const nnlut::hw::UnitReport& r, const PaperRow& paper) {
  std::printf("  %-14s | %8.2f %8.2f | %8.4f %8.4f | %6.2f %6.2f\n", paper.name,
              r.area_um2, paper.area, r.power_mw, paper.power, r.delay_ns,
              paper.delay);
}

}  // namespace

int main() {
  using namespace nnlut::hw;
  nnlut::benchutil::print_header(
      "Table 4: arithmetic units for non-linear approximation");

  const CellLibrary lib;
  const Table4 t = make_table4(lib, /*frequency_ghz=*/1.0);

  std::printf("  %-14s | %8s %8s | %8s %8s | %6s %6s\n", "unit", "area",
              "(paper)", "power", "(paper)", "delay", "(papr)");
  std::printf("  %-14s | %17s | %17s | %13s\n", "", "um^2", "mW", "ns");
  print_row(t.ibert_int32, {"I-BERT INT32", 2654.32, 2.1421, 2.67});
  print_row(t.nnlut_int32, {"NN-LUT INT32", 1008.92, 0.0591, 0.68});
  print_row(t.nnlut_fp16, {"NN-LUT FP16", 498.38, 0.0250, 1.36});
  print_row(t.nnlut_fp32, {"NN-LUT FP32", 1133.60, 0.0437, 1.60});

  std::printf("\n  Latency (cycles):\n");
  std::printf("    I-BERT : I-GELU %d, I-EXP %d, I-SQRT %d  (paper: 3, 4, 5)\n",
              t.ibert_int32.latency_cycles.at("GELU"),
              t.ibert_int32.latency_cycles.at("EXP"),
              t.ibert_int32.latency_cycles.at("1/SQRT"));
  std::printf("    NN-LUT : GELU/EXP/DIV/1-SQRT all %d cycles (paper: 2)\n",
              t.nnlut_int32.latency_cycles.at("GELU"));

  const double area_r = t.ibert_int32.area_um2 / t.nnlut_int32.area_um2;
  const double power_r = t.ibert_int32.power_mw / t.nnlut_int32.power_mw;
  const double delay_r = t.ibert_int32.delay_ns / t.nnlut_int32.delay_ns;
  std::printf(
      "\n  Headline ratios (I-BERT / NN-LUT INT32):\n"
      "    area  %0.2fx   (paper 2.63x)\n"
      "    power %0.1fx   (paper 36.4x)\n"
      "    delay %0.2fx   (paper 3.93x)\n",
      area_r, power_r, delay_r);
  return 0;
}
