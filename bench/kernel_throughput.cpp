// google-benchmark microbenchmarks of the scalar kernels backing Sec. 5's
// efficiency claims: exact FP32 math vs LUT evaluation (FP32/FP16/INT32) vs
// I-BERT integer sequences, on softmax-sized activation streams.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/function_library.h"
#include "core/nnlut_ops.h"
#include "core/quantized_lut.h"
#include "core/transform.h"
#include "ibert/ibert_kernels.h"
#include "numerics/rng.h"

namespace {

using namespace nnlut;

const NnlutBundle& bundle() {
  static const NnlutBundle b = train_bundle(16, FitPreset::kFast, 77);
  return b;
}

std::vector<float> activation_stream(std::size_t n, float lo, float hi) {
  Rng rng(5);
  std::vector<float> v(n);
  for (float& x : v) x = rng.uniform(lo, hi);
  return v;
}

void BM_GeluExact(benchmark::State& state) {
  auto xs = activation_stream(4096, -5.0f, 5.0f);
  for (auto _ : state) {
    float acc = 0;
    for (float x : xs) acc += gelu_exact(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(xs.size()));
}
BENCHMARK(BM_GeluExact);

void BM_GeluNnlutFp32(benchmark::State& state) {
  auto xs = activation_stream(4096, -5.0f, 5.0f);
  const PiecewiseLinear& lut = bundle().gelu.lut;
  for (auto _ : state) {
    float acc = 0;
    for (float x : xs) acc += lut(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(xs.size()));
}
BENCHMARK(BM_GeluNnlutFp32);

void BM_GeluNnlutFp16(benchmark::State& state) {
  auto xs = activation_stream(4096, -5.0f, 5.0f);
  const LutFp16 lut(bundle().gelu.lut);
  for (auto _ : state) {
    float acc = 0;
    for (float x : xs) acc += lut.eval(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(xs.size()));
}
BENCHMARK(BM_GeluNnlutFp16);

void BM_GeluNnlutInt32(benchmark::State& state) {
  auto xs = activation_stream(4096, -5.0f, 5.0f);
  const LutInt32 lut(bundle().gelu.lut, 5.0f);
  for (auto _ : state) {
    float acc = 0;
    for (float x : xs) acc += lut.eval(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(xs.size()));
}
BENCHMARK(BM_GeluNnlutInt32);

void BM_GeluIbert(benchmark::State& state) {
  auto xs = activation_stream(4096, -5.0f, 5.0f);
  std::vector<float> buf = xs;
  for (auto _ : state) {
    buf = xs;
    ibert::gelu_row(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(xs.size()));
}
BENCHMARK(BM_GeluIbert);

void BM_SoftmaxExact(benchmark::State& state) {
  auto xs = activation_stream(static_cast<std::size_t>(state.range(0)), -6, 6);
  std::vector<float> buf = xs;
  for (auto _ : state) {
    buf = xs;
    softmax_exact(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SoftmaxExact)->Arg(128)->Arg(1024);

void BM_SoftmaxNnlut(benchmark::State& state) {
  auto xs = activation_stream(static_cast<std::size_t>(state.range(0)), -6, 6);
  const LutFp32 e(bundle().exp.lut), r(bundle().reciprocal.lut);
  const SoftmaxApprox sm(e, r);
  std::vector<float> buf = xs;
  for (auto _ : state) {
    buf = xs;
    sm(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SoftmaxNnlut)->Arg(128)->Arg(1024);

void BM_SoftmaxIbert(benchmark::State& state) {
  auto xs = activation_stream(static_cast<std::size_t>(state.range(0)), -6, 6);
  std::vector<float> buf = xs;
  for (auto _ : state) {
    buf = xs;
    ibert::softmax_row(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SoftmaxIbert)->Arg(128)->Arg(1024);

void BM_LayerNormExact(benchmark::State& state) {
  auto xs = activation_stream(768, -2, 2);
  std::vector<float> out(xs.size());
  for (auto _ : state) {
    layer_norm_exact(xs, out, {}, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 768);
}
BENCHMARK(BM_LayerNormExact);

void BM_LayerNormNnlut(benchmark::State& state) {
  auto xs = activation_stream(768, -2, 2);
  const LutFp32 rs(bundle().rsqrt.lut);
  const LayerNormApprox ln(rs);
  std::vector<float> out(xs.size());
  for (auto _ : state) {
    ln(xs, out, {}, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 768);
}
BENCHMARK(BM_LayerNormNnlut);

void BM_LayerNormIbert(benchmark::State& state) {
  auto xs = activation_stream(768, -2, 2);
  std::vector<float> out(xs.size());
  for (auto _ : state) {
    ibert::layernorm_row(xs, out, {}, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 768);
}
BENCHMARK(BM_LayerNormIbert);

void BM_NnToLutTransform(benchmark::State& state) {
  const ApproxNet& net = bundle().gelu.net;
  for (auto _ : state) {
    PiecewiseLinear lut = nn_to_lut(net);
    benchmark::DoNotOptimize(lut.entries());
  }
}
BENCHMARK(BM_NnToLutTransform);

}  // namespace

BENCHMARK_MAIN();
