// google-benchmark microbenchmarks of the kernels backing Sec. 5's
// efficiency claims: exact FP32 math vs LUT evaluation (FP32/FP16/INT32) vs
// I-BERT integer sequences, on softmax-sized activation streams; plus the
// scalar-loop vs batched-plan comparison across entry counts {8, 16, 32,
// 128} that motivates the compiled SoA kernel layer, and a per-SIMD-tier
// sweep (BM_LutTierPlan/<tier>/<precision>/<entries>) registered for every
// tier this CPU supports — the dispatch tier is pinned for the benchmark's
// duration and recorded in the JSON (per-run label + "simd_*" context
// keys), so artifacts from different machines are self-describing.
//
// Unless --benchmark_out is given, results are also written as
// machine-readable JSON to BENCH_kernel_throughput.json.
#include <benchmark/benchmark.h>

#include <cstring>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "approx/linear_lut.h"
#include "core/function_library.h"
#include "core/lut_kernel_simd.h"
#include "core/nnlut_ops.h"
#include "core/quantized_lut.h"
#include "core/transform.h"
#include "ibert/ibert_kernels.h"
#include "numerics/rng.h"

namespace {

using namespace nnlut;

const NnlutBundle& bundle() {
  static const NnlutBundle b = train_bundle(16, FitPreset::kFast, 77);
  return b;
}

std::vector<float> activation_stream(std::size_t n, float lo, float hi) {
  Rng rng(5);
  std::vector<float> v(n);
  for (float& x : v) x = rng.uniform(lo, hi);
  return v;
}

void BM_GeluExact(benchmark::State& state) {
  auto xs = activation_stream(4096, -5.0f, 5.0f);
  for (auto _ : state) {
    float acc = 0;
    for (float x : xs) acc += gelu_exact(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(xs.size()));
}
BENCHMARK(BM_GeluExact);

void BM_GeluNnlutFp32(benchmark::State& state) {
  auto xs = activation_stream(4096, -5.0f, 5.0f);
  const PiecewiseLinear& lut = bundle().gelu.lut;
  for (auto _ : state) {
    float acc = 0;
    for (float x : xs) acc += lut(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(xs.size()));
}
BENCHMARK(BM_GeluNnlutFp32);

void BM_GeluNnlutFp16(benchmark::State& state) {
  auto xs = activation_stream(4096, -5.0f, 5.0f);
  const LutFp16 lut(bundle().gelu.lut);
  for (auto _ : state) {
    float acc = 0;
    for (float x : xs) acc += lut.eval(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(xs.size()));
}
BENCHMARK(BM_GeluNnlutFp16);

void BM_GeluNnlutInt32(benchmark::State& state) {
  auto xs = activation_stream(4096, -5.0f, 5.0f);
  const LutInt32 lut(bundle().gelu.lut, 5.0f);
  for (auto _ : state) {
    float acc = 0;
    for (float x : xs) acc += lut.eval(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(xs.size()));
}
BENCHMARK(BM_GeluNnlutInt32);

void BM_GeluIbert(benchmark::State& state) {
  auto xs = activation_stream(4096, -5.0f, 5.0f);
  std::vector<float> buf = xs;
  for (auto _ : state) {
    buf = xs;
    ibert::gelu_row(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(xs.size()));
}
BENCHMARK(BM_GeluIbert);

void BM_SoftmaxExact(benchmark::State& state) {
  auto xs = activation_stream(static_cast<std::size_t>(state.range(0)), -6, 6);
  std::vector<float> buf = xs;
  for (auto _ : state) {
    buf = xs;
    softmax_exact(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SoftmaxExact)->Arg(128)->Arg(1024);

void BM_SoftmaxNnlut(benchmark::State& state) {
  auto xs = activation_stream(static_cast<std::size_t>(state.range(0)), -6, 6);
  const LutFp32 e(bundle().exp.lut), r(bundle().reciprocal.lut);
  const SoftmaxApprox sm(e, r);
  std::vector<float> buf = xs;
  for (auto _ : state) {
    buf = xs;
    sm(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SoftmaxNnlut)->Arg(128)->Arg(1024);

void BM_SoftmaxIbert(benchmark::State& state) {
  auto xs = activation_stream(static_cast<std::size_t>(state.range(0)), -6, 6);
  std::vector<float> buf = xs;
  for (auto _ : state) {
    buf = xs;
    ibert::softmax_row(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SoftmaxIbert)->Arg(128)->Arg(1024);

void BM_LayerNormExact(benchmark::State& state) {
  auto xs = activation_stream(768, -2, 2);
  std::vector<float> out(xs.size());
  for (auto _ : state) {
    layer_norm_exact(xs, out, {}, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 768);
}
BENCHMARK(BM_LayerNormExact);

void BM_LayerNormNnlut(benchmark::State& state) {
  auto xs = activation_stream(768, -2, 2);
  const LutFp32 rs(bundle().rsqrt.lut);
  const LayerNormApprox ln(rs);
  std::vector<float> out(xs.size());
  for (auto _ : state) {
    ln(xs, out, {}, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 768);
}
BENCHMARK(BM_LayerNormNnlut);

void BM_LayerNormIbert(benchmark::State& state) {
  auto xs = activation_stream(768, -2, 2);
  std::vector<float> out(xs.size());
  for (auto _ : state) {
    ibert::layernorm_row(xs, out, {}, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 768);
}
BENCHMARK(BM_LayerNormIbert);

// --------------------------------------------------------------------------
// Scalar-loop vs batched-plan, across table sizes. Row size 4096 matches a
// BERT-base FFN activation row (d_ff = 3072..4096). The baseline is the
// retired hot path: one virtual dispatch per element; the second baseline is
// the raw per-element binary search without dispatch; the batched plan is
// one eval_inplace call over the whole row.
// --------------------------------------------------------------------------

const PiecewiseLinear& sized_lut(int entries) {
  // Node-stable container: returned references survive later cache misses.
  static std::deque<std::pair<int, PiecewiseLinear>> cache;
  for (const auto& [n, lut] : cache)
    if (n == entries) return lut;
  cache.emplace_back(entries,
                     fit_linear_lut(gelu_exact, kGeluRange, entries));
  return cache.back().second;
}

constexpr std::size_t kRowLen = 4096;

void BM_LutScalarDispatch(benchmark::State& state) {
  const LutFp32 fn(sized_lut(static_cast<int>(state.range(0))));
  const ScalarFn& vfn = fn;  // per-element virtual dispatch
  const auto xs = activation_stream(kRowLen, -5.0f, 5.0f);
  std::vector<float> buf(xs.size());
  for (auto _ : state) {
    buf = xs;
    for (float& x : buf) x = vfn.eval(x);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(kRowLen));
}
BENCHMARK(BM_LutScalarDispatch)->Arg(8)->Arg(16)->Arg(32)->Arg(128);

void BM_LutScalarBinarySearch(benchmark::State& state) {
  const PiecewiseLinear& lut = sized_lut(static_cast<int>(state.range(0)));
  const auto xs = activation_stream(kRowLen, -5.0f, 5.0f);
  std::vector<float> buf(xs.size());
  for (auto _ : state) {
    buf = xs;
    for (float& x : buf) x = lut(x);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(kRowLen));
}
BENCHMARK(BM_LutScalarBinarySearch)->Arg(8)->Arg(16)->Arg(32)->Arg(128);

void BM_LutBatchedPlan(benchmark::State& state) {
  const PiecewiseLinear& lut = sized_lut(static_cast<int>(state.range(0)));
  const auto xs = activation_stream(kRowLen, -5.0f, 5.0f);
  std::vector<float> buf(xs.size());
  for (auto _ : state) {
    buf = xs;
    lut.eval_inplace(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(kRowLen));
}
BENCHMARK(BM_LutBatchedPlan)->Arg(8)->Arg(16)->Arg(32)->Arg(128);

void BM_LutBatchedPlanFp16(benchmark::State& state) {
  const LutFp16 fn(sized_lut(static_cast<int>(state.range(0))));
  const auto xs = activation_stream(kRowLen, -5.0f, 5.0f);
  std::vector<float> buf(xs.size());
  for (auto _ : state) {
    buf = xs;
    fn.eval_inplace(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(kRowLen));
}
BENCHMARK(BM_LutBatchedPlanFp16)->Arg(8)->Arg(16)->Arg(32)->Arg(128);

void BM_LutBatchedPlanInt32(benchmark::State& state) {
  const LutInt32 fn(sized_lut(static_cast<int>(state.range(0))), 5.0f);
  const auto xs = activation_stream(kRowLen, -5.0f, 5.0f);
  std::vector<float> buf(xs.size());
  for (auto _ : state) {
    buf = xs;
    fn.eval_inplace(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(kRowLen));
}
BENCHMARK(BM_LutBatchedPlanInt32)->Arg(8)->Arg(16)->Arg(32)->Arg(128);

// --------------------------------------------------------------------------
// Per-SIMD-tier plan throughput: the same batched evaluation with the
// dispatch tier pinned to each ISA this CPU supports. The acceptance target
// of the SIMD layer is >= 2x comparator-bank-scan throughput (entries <= 32)
// for the widest tier vs forced scalar; the forced-tier parity suite in
// tests/lut_kernel_test.cpp proves all tiers produce identical bits, so
// this sweep measures pure kernel speed.
// --------------------------------------------------------------------------

using simd::SimdTier;

void BM_LutTierPlanFp32(benchmark::State& state, SimdTier tier) {
  simd::set_simd_tier(tier);
  const PiecewiseLinear& lut = sized_lut(static_cast<int>(state.range(0)));
  const auto xs = activation_stream(kRowLen, -5.0f, 5.0f);
  std::vector<float> buf(xs.size());
  for (auto _ : state) {
    buf = xs;
    lut.eval_inplace(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(kRowLen));
  state.SetLabel(simd::simd_tier_name(tier));
  simd::set_simd_tier(std::nullopt);
}

void BM_LutTierPlanFp16(benchmark::State& state, SimdTier tier) {
  simd::set_simd_tier(tier);
  const LutFp16 fn(sized_lut(static_cast<int>(state.range(0))));
  const auto xs = activation_stream(kRowLen, -5.0f, 5.0f);
  std::vector<float> buf(xs.size());
  for (auto _ : state) {
    buf = xs;
    fn.eval_inplace(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(kRowLen));
  state.SetLabel(simd::simd_tier_name(tier));
  simd::set_simd_tier(std::nullopt);
}

void BM_LutTierPlanInt32(benchmark::State& state, SimdTier tier) {
  simd::set_simd_tier(tier);
  const LutInt32 fn(sized_lut(static_cast<int>(state.range(0))), 5.0f);
  const auto xs = activation_stream(kRowLen, -5.0f, 5.0f);
  std::vector<float> buf(xs.size());
  for (auto _ : state) {
    buf = xs;
    fn.eval_inplace(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(kRowLen));
  state.SetLabel(simd::simd_tier_name(tier));
  simd::set_simd_tier(std::nullopt);
}

/// Register the tier sweep for every tier this CPU can actually run.
void register_tier_benchmarks() {
  for (SimdTier tier : simd::available_simd_tiers()) {
    const std::string name(simd::simd_tier_name(tier));
    benchmark::RegisterBenchmark(("BM_LutTierPlan/" + name + "/fp32").c_str(),
                                 BM_LutTierPlanFp32, tier)
        ->Arg(8)
        ->Arg(16)
        ->Arg(32)
        ->Arg(128);
    benchmark::RegisterBenchmark(("BM_LutTierPlan/" + name + "/fp16").c_str(),
                                 BM_LutTierPlanFp16, tier)
        ->Arg(8)
        ->Arg(16)
        ->Arg(32)
        ->Arg(128);
    benchmark::RegisterBenchmark(("BM_LutTierPlan/" + name + "/int32").c_str(),
                                 BM_LutTierPlanInt32, tier)
        ->Arg(8)
        ->Arg(16)
        ->Arg(32)
        ->Arg(128);
  }
}

void BM_NnToLutTransform(benchmark::State& state) {
  const ApproxNet& net = bundle().gelu.net;
  for (auto _ : state) {
    PiecewiseLinear lut = nn_to_lut(net);
    benchmark::DoNotOptimize(lut.entries());
  }
}
BENCHMARK(BM_NnToLutTransform);

}  // namespace

// Custom main: default to writing machine-readable JSON next to the working
// directory unless the caller already chose an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  static std::string out = "--benchmark_out=BENCH_kernel_throughput.json";
  static std::string fmt = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  // The JSON artifact is self-describing about the machine's SIMD support:
  // which tiers were measurable here and what automatic dispatch resolves to.
  namespace simd = nnlut::simd;
  benchmark::AddCustomContext("simd_detected",
                              simd::simd_tier_name(simd::detected_simd_tier()));
  benchmark::AddCustomContext("simd_auto",
                              simd::simd_tier_name(simd::auto_simd_tier()));
  benchmark::AddCustomContext("simd_f16c", simd::has_f16c() ? "1" : "0");
  benchmark::AddCustomContext("simd_vnni",
                              simd::has_avx512vnni() ? "1" : "0");
  register_tier_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
