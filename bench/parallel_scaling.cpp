// Thread-scaling sweep of the sharded encoder hot path: end-to-end
// InferenceModel::encode at pool sizes {1, 2, 4, 8} x sequence lengths
// {128, 384}, for the LUT backend (the deployment configuration) and the
// exact baseline running under the same pool. The acceptance target is a
// >= 2.5x end-to-end speedup at 4 threads vs 1 thread at seq 384 on a
// >= 4-core machine; the thread-parity test suite proves the outputs are
// bit-identical across pool sizes, so this sweep measures pure scheduling.
//
// Unless --benchmark_out is given, results are also written as
// machine-readable JSON to BENCH_parallel_scaling.json.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "approx/linear_lut.h"
#include "numerics/math.h"
#include "numerics/rng.h"
#include "runtime/thread_pool.h"
#include "transformer/infer.h"

namespace {

using namespace nnlut;
using namespace nnlut::transformer;

constexpr std::size_t kMaxSeq = 384;

ModelConfig bench_config() {
  ModelConfig c = ModelConfig::roberta_like();
  c.vocab = 128;
  c.hidden = 64;
  c.layers = 2;
  c.heads = 4;
  c.ffn = 256;
  c.max_seq = kMaxSeq;
  return c;
}

struct Fixture {
  TaskModel model;
  std::unique_ptr<LutNonlinearities> lut;
  ExactNonlinearities exact;

  Fixture(const ModelConfig& cfg, Rng& rng)
      : model(cfg, HeadKind::kClassify, 2, rng), exact(cfg.act) {
    LutSet luts{fit_linear_lut(gelu_exact, kGeluRange, 16),
                fit_linear_lut(exp_exact, {-16.0f, 0.0f}, 16),
                fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 1024.0f}, 16,
                                         BreakpointMode::kExponential),
                fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 16,
                                         BreakpointMode::kExponential)};
    LutNonlinearities::Options opt;
    opt.select = ApproxSelection::all();
    lut = make_lut_backend(luts, LutPrecision::kFp32, opt);
  }
};

Fixture& fixture() {
  static Rng rng(42);
  static Fixture f(bench_config(), rng);
  return f;
}

BatchInput batch_for(std::size_t seq) {
  Rng rng(7 + seq);
  BatchInput in;
  in.batch = 1;
  in.seq = seq;
  in.token_ids.resize(seq);
  in.type_ids.assign(seq, 0);
  for (int& t : in.token_ids)
    t = rng.uniform_int(0, static_cast<int>(bench_config().vocab) - 1);
  return in;
}

void run_encoder(benchmark::State& state, NonlinearitySet& nl) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t seq = static_cast<std::size_t>(state.range(1));
  runtime::set_runtime_config({threads});
  InferenceModel infer(fixture().model, nl);
  const BatchInput in = batch_for(seq);
  for (auto _ : state) {
    Tensor h = infer.encode(in);
    benchmark::DoNotOptimize(h.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(seq));
  runtime::set_runtime_config({});
}

void BM_EncoderLut(benchmark::State& state) { run_encoder(state, *fixture().lut); }
BENCHMARK(BM_EncoderLut)
    ->ArgsProduct({{1, 2, 4, 8}, {128, 384}})
    ->ArgNames({"threads", "seq"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_EncoderExact(benchmark::State& state) { run_encoder(state, fixture().exact); }
BENCHMARK(BM_EncoderExact)
    ->ArgsProduct({{1, 2, 4, 8}, {128, 384}})
    ->ArgNames({"threads", "seq"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Custom main: default to writing machine-readable JSON next to the working
// directory unless the caller already chose an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  static std::string out = "--benchmark_out=BENCH_parallel_scaling.json";
  static std::string fmt = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
