// Approximation-aware fine-tuning ablation. The paper's competitors (I-BERT,
// Softermax) fine-tune the whole model to absorb approximation error, which
// "requires expensive training computation and labeled datasets" (Sec. 1);
// NN-LUT's claim is that it reaches baseline accuracy *without* fine-tuning.
// This bench quantifies both sides on the same footing:
//   - Linear-LUT LayerNorm degrades the model; approximation-aware
//     fine-tuning (LUT inside the training graph) recovers most of it;
//   - NN-LUT starts at baseline, so fine-tuning buys nothing.
#include <cstdio>

#include "approx/linear_lut.h"
#include "core/function_library.h"
#include "eval/finetune.h"
#include "numerics/math.h"

#include "bench_util.h"

int main() {
  using namespace nnlut;
  using transformer::ApproxSelection;
  using transformer::LutNonlinearities;
  using transformer::LutSet;

  benchutil::print_header(
      "Ablation: approximation-aware fine-tuning vs NN-LUT's direct "
      "deployment (LayerNorm replaced)");

  const auto preset =
      benchutil::fast_mode() ? FitPreset::kFast : FitPreset::kPaper;
  const NnlutBundle bundle = train_bundle(16, preset, 1);
  const LutSet nn_luts{bundle.gelu.lut, bundle.exp.lut, bundle.reciprocal.lut,
                       bundle.rsqrt.lut};
  const LutSet lin_luts{fit_linear_lut(gelu_exact, kGeluRange, 16),
                        fit_linear_lut(exp_exact, kExpRange, 16),
                        fit_linear_lut(reciprocal_exact, kDivideRange, 16),
                        fit_linear_lut(rsqrt_exact, kRsqrtRange, 16)};

  LutNonlinearities::Options lopt;
  lopt.select = ApproxSelection::layernorm_only();

  std::printf("  %-8s %10s | %10s %10s | %10s\n", "task", "baseline",
              "LinLUT", "LinLUT+FT", "NN-LUT");

  for (const tasks::TaskId id :
       {tasks::TaskId::kStsb, tasks::TaskId::kRte, tasks::TaskId::kMrpc}) {
    const tasks::TaskData task = tasks::make_task(id, benchutil::task_options());
    std::fprintf(stderr, "[ablation_finetune] training %s...\n",
                 task.name.c_str());
    auto model = eval::train_model(task, benchutil::roberta_model(),
                                   benchutil::train_options());
    const double baseline = eval::evaluate_baseline(model, task);

    auto lin_backend = make_lut_backend(lin_luts, LutPrecision::kFp32, lopt);
    const double lin_direct = eval::evaluate(model, task, *lin_backend);

    auto nn_backend = make_lut_backend(nn_luts, LutPrecision::kFp32, lopt);
    const double nn_direct = eval::evaluate(model, task, *nn_backend);

    // Fine-tune the whole transformer with the Linear-LUT rsqrt live in the
    // training graph (labels required, all weights updated).
    eval::FinetuneOptions fopt;
    fopt.epochs = benchutil::fast_mode() ? 2 : 4;
    eval::finetune_with_luts(model, task, /*gelu_lut=*/nullptr,
                             &lin_luts.rsqrt, fopt);
    const double lin_ft = eval::evaluate(model, task, *lin_backend);

    std::printf("  %-8s %10.1f | %10.1f %10.1f | %10.1f\n", task.name.c_str(),
                baseline, lin_direct, lin_ft, nn_direct);
  }

  std::printf(
      "\nExpected: LinLUT+FT recovers most of the Linear-LUT loss — at the\n"
      "cost of labeled data and full-model training — while NN-LUT is at\n"
      "baseline out of the box, which is the paper's core value proposition.\n");
  return 0;
}
