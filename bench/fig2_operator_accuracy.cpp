// Figure 2 of the paper: operation-wise approximation accuracy of NN-LUT vs
// Linear-LUT for (a) GELU, (b) Softmax, (c) LayerNorm. The paper plots
// approximated outputs on selected inputs (top row) and L1 error (bottom
// row); this bench prints the same series plus summary L1 errors.
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "approx/linear_lut.h"
#include "core/function_library.h"
#include "core/nnlut_ops.h"
#include "core/scalar_fn.h"
#include "numerics/rng.h"
#include "numerics/stats.h"

#include "bench_util.h"

namespace {

using namespace nnlut;

struct OpSeries {
  double nnlut_l1 = 0.0;
  double linear_l1 = 0.0;
};

// (a) GELU: scalar comparison on the training range.
OpSeries bench_gelu(const FittedLut& nn) {
  const PiecewiseLinear lin = fit_linear_lut(gelu_exact, kGeluRange, 16);
  std::printf("\n(a) GELU on (-5, 5)  [x, exact, NN-LUT, Linear-LUT]\n");
  OpSeries s;
  int count = 0;
  for (float x = -5.0f; x <= 5.0f; x += 0.25f, ++count) {
    const float e = gelu_exact(x);
    if (count % 4 == 0)
      std::printf("  % 6.2f  % 8.4f  % 8.4f  % 8.4f\n", x, e, nn.lut(x), lin(x));
  }
  for (float x = -5.0f; x <= 5.0f; x += 0.01f) {
    s.nnlut_l1 += std::abs(nn.lut(x) - gelu_exact(x));
    s.linear_l1 += std::abs(lin(x) - gelu_exact(x));
  }
  s.nnlut_l1 /= 1001.0;
  s.linear_l1 /= 1001.0;
  return s;
}

// (b) Softmax: full composite (EXP + Divide LUTs) on random logit rows.
OpSeries bench_softmax(const FittedLut& exp_fit, const FittedLut& div_fit) {
  const PiecewiseLinear lin_exp = fit_linear_lut(exp_exact, kExpRange, 16);
  const PiecewiseLinear lin_div =
      fit_linear_lut(reciprocal_exact, kDivideRange, 16);

  const LutFp32 nn_e(exp_fit.lut), nn_r(div_fit.lut);
  const LutFp32 li_e(lin_exp), li_r(lin_div);
  const SoftmaxApprox sm_nn(nn_e, nn_r);
  const SoftmaxApprox sm_li(li_e, li_r);

  Rng rng(42);
  OpSeries s;
  std::size_t n = 0;
  std::printf("\n(b) Softmax rows (len 64), elementwise L1 vs FP32\n");
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<float> row(64);
    for (float& v : row) v = rng.uniform(-6.0f, 6.0f);
    std::vector<float> exact = row, a = row, b = row;
    softmax_exact(exact);
    sm_nn(a);
    sm_li(b);
    for (std::size_t i = 0; i < row.size(); ++i, ++n) {
      s.nnlut_l1 += std::abs(a[i] - exact[i]);
      s.linear_l1 += std::abs(b[i] - exact[i]);
    }
    if (trial < 3)
      std::printf("  row %d: max|err| NN-LUT %.5f  Linear-LUT %.5f\n", trial,
                  max_abs_error(a, exact), max_abs_error(b, exact));
  }
  s.nnlut_l1 /= static_cast<double>(n);
  s.linear_l1 /= static_cast<double>(n);
  return s;
}

// (c) LayerNorm: composite with the 1/SQRT LUT and input scaling (both
// methods get input scaling, as in the paper's Table 2 setup).
OpSeries bench_layernorm(const FittedLut& rsqrt_fit) {
  const PiecewiseLinear lin_rsqrt = fit_linear_lut(rsqrt_exact, kRsqrtRange, 16);
  const LutFp32 nn_r(rsqrt_fit.lut);
  const LutFp32 li_r(lin_rsqrt);
  const LayerNormApprox ln_nn(nn_r);
  const LayerNormApprox ln_li(li_r);

  Rng rng(43);
  OpSeries s;
  std::size_t n = 0;
  std::printf("\n(c) LayerNorm rows (len 128) across variance scales\n");
  for (int trial = 0; trial < 48; ++trial) {
    // Sweep the input magnitude so variances cover ~1e-2 .. ~1e3.
    const float scale = std::pow(10.0f, -1.0f + 0.1f * static_cast<float>(trial % 40));
    std::vector<float> x(128), exact(128), a(128), b(128);
    for (float& v : x) v = rng.uniform(-scale, scale);
    layer_norm_exact(x, exact, {}, {});
    ln_nn(x, a, {}, {});
    ln_li(x, b, {}, {});
    for (std::size_t i = 0; i < x.size(); ++i, ++n) {
      s.nnlut_l1 += std::abs(a[i] - exact[i]);
      s.linear_l1 += std::abs(b[i] - exact[i]);
    }
    if (trial % 16 == 0)
      std::printf("  |x|<=%-8.3f max|err| NN-LUT %.5f  Linear-LUT %.5f\n",
                  scale, max_abs_error(a, exact), max_abs_error(b, exact));
  }
  s.nnlut_l1 /= static_cast<double>(n);
  s.linear_l1 /= static_cast<double>(n);
  return s;
}

}  // namespace

int main() {
  using nnlut::benchutil::print_header;
  print_header("Figure 2: operator-wise approximation accuracy (16-entry LUTs)");

  const auto preset =
      nnlut::benchutil::fast_mode() ? nnlut::FitPreset::kFast : nnlut::FitPreset::kPaper;
  const nnlut::NnlutBundle bundle = nnlut::train_bundle(16, preset, 1);

  const OpSeries g = bench_gelu(bundle.gelu);
  const OpSeries sm = bench_softmax(bundle.exp, bundle.reciprocal);
  const OpSeries ln = bench_layernorm(bundle.rsqrt);

  std::printf("\nSummary (mean L1 error, lower is better):\n");
  std::printf("  %-10s %12s %12s\n", "operator", "NN-LUT", "Linear-LUT");
  std::printf("  %-10s %12.6f %12.6f\n", "GELU", g.nnlut_l1, g.linear_l1);
  std::printf("  %-10s %12.6f %12.6f\n", "Softmax", sm.nnlut_l1, sm.linear_l1);
  std::printf("  %-10s %12.6f %12.6f\n", "LayerNorm", ln.nnlut_l1, ln.linear_l1);
  std::printf(
      "\nPaper's qualitative claim (Fig. 2): both methods fit GELU; NN-LUT's\n"
      "learned breakpoints fit Softmax and LayerNorm far better than the\n"
      "fixed-breakpoint Linear-LUT. Expected: NN-LUT column << Linear-LUT\n"
      "for Softmax/LayerNorm, comparable for GELU.\n");
  return 0;
}
