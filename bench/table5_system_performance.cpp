// Table 5 of the paper: system-level performance comparison on the
// accelerator of Fig. 3(c) — relative cycle breakdown of RoBERTa-base
// inference per operation category at sequence lengths 16..1024, for the
// I-BERT SFU vs the NN-LUT SFU, plus the end-to-end speedup row.
#include <cstdio>
#include <vector>

#include "accel/simulator.h"

#include "bench_util.h"

namespace {

struct PaperCells {
  double gelu, layernorm, softmax, matmul, etc;
};

// Paper Table 5 reference values.
const std::vector<std::size_t> kSeqLens{16, 32, 64, 128, 256, 384, 512, 1024};
const PaperCells kPaperIbert[] = {
    {6.55, 9.82, 1.36, 81.17, 1.09},  {6.58, 9.86, 1.37, 81.64, 0.55},
    {6.45, 9.68, 2.69, 80.65, 0.54},  {6.22, 9.33, 5.18, 78.76, 0.52},
    {5.80, 8.70, 9.66, 75.36, 0.48},  {5.43, 8.14, 13.57, 72.40, 0.45},
    {5.11, 7.66, 17.02, 69.79, 0.43}, {4.12, 6.19, 27.49, 61.86, 0.34}};
const PaperCells kPaperNnlut[] = {
    {4.71, 5.89, 0.59, 87.63, 1.18},  {4.73, 5.92, 0.59, 88.17, 0.59},
    {4.68, 5.85, 1.17, 87.72, 0.58},  {4.57, 5.71, 2.29, 86.86, 0.57},
    {4.37, 5.46, 4.37, 85.25, 0.55},  {4.19, 5.24, 6.28, 83.77, 0.52},
    {4.02, 5.03, 8.04, 82.41, 0.50},  {3.46, 4.33, 13.85, 77.92, 0.43}};
const double kPaperSpeedup[] = {1.08, 1.08, 1.09, 1.10, 1.13, 1.16, 1.18, 1.26};

void print_block(const char* name, const nnlut::accel::Breakdown& b,
                 const PaperCells& paper) {
  std::printf("  %-7s GELU %5.2f (%5.2f)  LayerNorm %5.2f (%5.2f)  "
              "Softmax %5.2f (%5.2f)  MatMul %5.2f (%5.2f)  etc %4.2f (%4.2f)\n",
              name, b.percent(b.gelu), paper.gelu, b.percent(b.layernorm),
              paper.layernorm, b.percent(b.softmax), paper.softmax,
              b.percent(b.matmul), paper.matmul, b.percent(b.etc), paper.etc);
}

}  // namespace

int main() {
  using namespace nnlut::accel;
  nnlut::benchutil::print_header(
      "Table 5: system-level relative cycles, RoBERTa-base (paper values in "
      "parentheses)");

  const BertShape shape = BertShape::roberta_base();
  AcceleratorConfig cfg;  // 2 engines x 1024 MAC/cycle, 16 SFU lanes

  for (std::size_t i = 0; i < kSeqLens.size(); ++i) {
    const SystemComparison c = compare_at_seq(shape, kSeqLens[i], cfg);
    std::printf("\nSeq-Length %zu:\n", kSeqLens[i]);
    print_block("I-BERT", c.ibert, kPaperIbert[i]);
    print_block("NN-LUT", c.nnlut, kPaperNnlut[i]);
    std::printf("  Speedup %.2fx (paper %.2fx)\n", c.speedup, kPaperSpeedup[i]);
  }

  std::printf(
      "\nShape checks: softmax share grows ~quadratically with SL and\n"
      "dominates I-BERT at SL=1024; NN-LUT halves the non-linear share at\n"
      "every length; speedup rises toward ~1.26x at SL=1024.\n");
  return 0;
}
