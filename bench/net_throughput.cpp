// BM_NetClosedLoop: closed-loop TCP serving throughput over loopback.
//
// `connections` client threads (one net::Client each — the protocol's
// request-id scope is per-connection) drive a TcpServer over an Engine
// with two LUT slots, sweeping connections {1, 4, 16} x admission
// {unbounded, bounded}. Each client keeps 4 requests in flight. Counters
// report client-observed p50/p95 (submit -> completion frame, i.e.
// including the wire) and the shed rate, so the artifact shows both what
// the socket layer costs over the in-process numbers of
// BENCH_serving_throughput.json and what bounded admission trades under
// fan-in: capped latency for shed work (kOverloaded completions +
// pre-parse sheds).
//
// Unless --benchmark_out is given, results are also written as
// machine-readable JSON to BENCH_net_throughput.json.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "approx/linear_lut.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "numerics/math.h"
#include "numerics/rng.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "serve/stats.h"
#include "transformer/infer.h"

namespace {

using namespace nnlut;
using namespace nnlut::transformer;
using namespace std::chrono_literals;

constexpr std::size_t kSeq = 32;
constexpr int kRequestsPerConn = 16;
constexpr std::size_t kInflight = 4;

ModelConfig bench_config() {
  ModelConfig c = ModelConfig::roberta_like();
  c.vocab = 128;
  c.hidden = 32;
  c.layers = 2;
  c.heads = 2;
  c.ffn = 128;
  c.max_seq = kSeq;
  return c;
}

struct Fixture {
  TaskModel model;
  std::unique_ptr<LutNonlinearities> lut_fp32;
  std::unique_ptr<LutNonlinearities> lut_int32;

  Fixture(const ModelConfig& cfg, Rng& rng)
      : model(cfg, HeadKind::kClassify, 2, rng) {
    LutSet luts{fit_linear_lut(gelu_exact, kGeluRange, 16),
                fit_linear_lut(exp_exact, {-16.0f, 0.0f}, 16),
                fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 1024.0f}, 16,
                                         BreakpointMode::kExponential),
                fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 16,
                                         BreakpointMode::kExponential)};
    LutNonlinearities::Options opt;
    opt.select = ApproxSelection::all();
    lut_fp32 = make_lut_backend(luts, LutPrecision::kFp32, opt);
    lut_int32 = make_lut_backend(luts, LutPrecision::kInt32, opt);
  }
};

Fixture& fixture() {
  static Rng rng(42);
  static Fixture f(bench_config(), rng);
  return f;
}

BatchInput request_for(std::uint64_t seed) {
  Rng rng(static_cast<int>(3000 + seed));
  BatchInput in;
  in.batch = 1;
  in.seq = kSeq;
  in.token_ids.resize(kSeq);
  for (int& t : in.token_ids)
    t = rng.uniform_int(0, static_cast<int>(bench_config().vocab) - 1);
  return in;
}

void BM_NetClosedLoop(benchmark::State& state) {
  const std::size_t connections = static_cast<std::size_t>(state.range(0));
  const bool bounded = state.range(1) != 0;

  serve::SlotConfig scfg;
  scfg.max_batch = 8;
  scfg.max_wait = 500us;
  if (bounded)
    scfg.admission = {/*max_queue_depth=*/4, serve::ShedPolicy::kRejectNew};
  const char* kModels[2] = {"lut-fp32", "lut-int32"};

  std::vector<std::vector<BatchInput>> streams(connections);
  for (std::size_t c = 0; c < connections; ++c)
    for (int k = 0; k < kRequestsPerConn; ++k)
      streams[c].push_back(
          request_for(c * 4007 + static_cast<std::uint64_t>(k)));

  serve::LatencyHistogram latency;
  std::uint64_t ok = 0, shed = 0;
  net::NetStats net{};
  for (auto _ : state) {
    serve::Engine engine(serve::EngineConfig{/*threads=*/0});
    engine.register_model(kModels[0], fixture().model, *fixture().lut_fp32,
                          scfg);
    engine.register_model(kModels[1], fixture().model, *fixture().lut_int32,
                          scfg);
    net::TcpServer server(engine);

    serve::LatencyHistogram iter_latency;
    std::uint64_t iter_ok = 0, iter_shed = 0;
    std::mutex agg_mu;
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        net::Client client("127.0.0.1", server.port());
        const char* model = kModels[c % 2];
        serve::LatencyHistogram local;
        std::uint64_t local_ok = 0, local_shed = 0;
        std::vector<std::pair<std::uint64_t,
                              std::chrono::steady_clock::time_point>> window;
        std::size_t next = 0;
        auto prime = [&] {
          while (next < streams[c].size() && window.size() < kInflight) {
            const auto t0 = std::chrono::steady_clock::now();
            window.emplace_back(client.submit(model, streams[c][next]), t0);
            ++next;
          }
        };
        prime();
        while (!window.empty()) {
          const auto [id, t0] = window.front();
          window.erase(window.begin());
          const net::Completion done = client.await(id);
          local.record(std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0));
          if (done.ok) {
            ++local_ok;
            benchmark::DoNotOptimize(done.logits.data());
          } else if (done.code == net::ErrorCode::kOverloaded) {
            ++local_shed;
          }
          prime();
        }
        std::lock_guard<std::mutex> lk(agg_mu);
        iter_latency.merge(local);
        iter_ok += local_ok;
        iter_shed += local_shed;
      });
    }
    for (auto& t : threads) t.join();
    net = server.stats();
    server.stop();
    engine.shutdown();
    latency = iter_latency;
    ok = iter_ok;
    shed = iter_shed;
  }

  const auto total_requests =
      static_cast<std::size_t>(state.iterations()) * connections *
      static_cast<std::size_t>(kRequestsPerConn);
  state.SetItemsProcessed(static_cast<std::int64_t>(total_requests));
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(total_requests), benchmark::Counter::kIsRate);
  state.counters["p50_us"] = latency.quantile(0.50);
  state.counters["p95_us"] = latency.quantile(0.95);
  state.counters["shed_rate"] =
      ok + shed > 0 ? static_cast<double>(shed) / static_cast<double>(ok + shed)
                    : 0.0;
  state.counters["sheds_preparse"] = static_cast<double>(net.sheds_preparse);
  nnlut::runtime::set_runtime_config({});
}

BENCHMARK(BM_NetClosedLoop)
    ->ArgsProduct({{1, 4, 16}, {0, 1}})
    ->ArgNames({"connections", "bounded"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Custom main: default to writing machine-readable JSON next to the working
// directory unless the caller already chose an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  static std::string out = "--benchmark_out=BENCH_net_throughput.json";
  static std::string fmt = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
