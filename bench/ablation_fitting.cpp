// Fitting ablations: (1) training loss L1 vs L2 (the paper found L1
// slightly better, Sec. 4.1); (2) breakpoint placement: linear-mode vs
// exponential-mode fixed breakpoints (Sec. 3.1) vs NN-LUT's learned
// breakpoints; (3) training-sample distribution (uniform vs log-uniform).
#include <cmath>
#include <cstdio>

#include "approx/linear_lut.h"
#include "core/function_library.h"
#include "core/transform.h"

#include "bench_util.h"

namespace {

using namespace nnlut;

double grid_l1(const PiecewiseLinear& lut, float (*f)(float), InputRange r) {
  double s = 0.0;
  const int n = 4096;
  for (int i = 0; i < n; ++i) {
    const float x = r.lo + (r.hi - r.lo) * (static_cast<float>(i) + 0.5f) / n;
    s += std::abs(static_cast<double>(lut(x)) - f(x));
  }
  return s / n;
}

double log_grid_l1(const PiecewiseLinear& lut, float (*f)(float), InputRange r) {
  double s = 0.0;
  const int n = 4096;
  const float llo = std::log(r.lo), lhi = std::log(r.hi);
  for (int i = 0; i < n; ++i) {
    const float x = std::exp(llo + (lhi - llo) * (static_cast<float>(i) + 0.5f) / n);
    s += std::abs(static_cast<double>(lut(x)) - f(x));
  }
  return s / n;
}

}  // namespace

int main() {
  benchutil::print_header("Ablation: fitting choices");
  const auto preset =
      benchutil::fast_mode() ? FitPreset::kFast : FitPreset::kPaper;

  // (1) L1 vs L2 training loss on GELU and 1/SQRT.
  std::printf("\n(1) training loss (16 entries)\n");
  std::printf("  %-8s %12s %12s\n", "function", "L1 loss", "L2 loss");
  for (TargetFn id : {TargetFn::kGelu, TargetFn::kRsqrt}) {
    const FnSpec& spec = fn_spec(id);
    TrainConfig l1 = recipe(id, 16, preset, 21);
    TrainConfig l2 = l1;
    l2.loss = LossKind::kL2;
    const TrainResult r1 = fit_approx_net(spec.fn, l1);
    const TrainResult r2 = fit_approx_net(spec.fn, l2);
    std::printf("  %-8s %12.6f %12.6f\n", spec.name, r1.validation_l1,
                r2.validation_l1);
  }

  // (2) breakpoint placement on 1/SQRT, the paper's hardest function.
  std::printf("\n(2) breakpoint placement on 1/SQRT (0.1, 1024), 16 entries\n");
  const FnSpec& rs = fn_spec(TargetFn::kRsqrt);
  const PiecewiseLinear lin = fit_fixed_breakpoint_lut(
      rs.fn, rs.range, 16, BreakpointMode::kLinear);
  const PiecewiseLinear expo = fit_fixed_breakpoint_lut(
      rs.fn, rs.range, 16, BreakpointMode::kExponential);
  const FittedLut learned = fit_lut(TargetFn::kRsqrt, 16, preset, 22);
  std::printf("  %-22s %14s %14s\n", "mode", "uniform-grid L1", "log-grid L1");
  std::printf("  %-22s %14.6f %14.6f\n", "linear (fixed)",
              grid_l1(lin, rs.fn, rs.range), log_grid_l1(lin, rs.fn, rs.range));
  std::printf("  %-22s %14.6f %14.6f\n", "exponential (fixed)",
              grid_l1(expo, rs.fn, rs.range), log_grid_l1(expo, rs.fn, rs.range));
  std::printf("  %-22s %14.6f %14.6f\n", "NN-LUT (learned)",
              grid_l1(learned.lut, rs.fn, rs.range),
              log_grid_l1(learned.lut, rs.fn, rs.range));

  // (3) sampling distribution for the NN-LUT trainer on DIV.
  std::printf("\n(3) trainer sampling distribution on DIV (1, 1024)\n");
  const FnSpec& dv = fn_spec(TargetFn::kReciprocal);
  TrainConfig uni = recipe(TargetFn::kReciprocal, 16, preset, 23);
  uni.sampling = SampleDist::kUniform;
  TrainConfig logu = recipe(TargetFn::kReciprocal, 16, preset, 23);
  logu.sampling = SampleDist::kLogUniform;
  const PiecewiseLinear lut_uni = nn_to_lut(fit_approx_net(dv.fn, uni).net);
  const PiecewiseLinear lut_log = nn_to_lut(fit_approx_net(dv.fn, logu).net);
  std::printf("  %-22s %14.6f %14.6f\n", "uniform sampling",
              grid_l1(lut_uni, dv.fn, dv.range), log_grid_l1(lut_uni, dv.fn, dv.range));
  std::printf("  %-22s %14.6f %14.6f\n", "log-uniform sampling",
              grid_l1(lut_log, dv.fn, dv.range), log_grid_l1(lut_log, dv.fn, dv.range));

  std::printf(
      "\nExpected: L1 ~ L2 on these smooth targets; learned breakpoints beat\n"
      "the linear mode by orders of magnitude on 1/SQRT (the paper's\n"
      "comparison) and are competitive with the exponential mode — which is\n"
      "near-optimal for pure power laws but, unlike NN-LUT, is not\n"
      "function-agnostic (Sec. 3.1). Log-uniform sampling markedly improves\n"
      "the low-range fit of 1/x-like functions.\n");
  return 0;
}
