// nnlut_fit — command-line NN-LUT trainer.
//
// Train an approximation network for a registered function, transform it to
// the equivalent LUT, report errors and optionally save both artifacts:
//
//   nnlut_fit --function gelu --entries 16 --preset paper
//             --out-lut gelu.lut --out-net gelu.net
//   nnlut_fit --list
//   nnlut_fit --function 1/sqrt --baseline      # also fit the Linear-LUT
//
// Exit code 0 on success, 2 on usage errors.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "approx/linear_lut.h"
#include "core/function_library.h"
#include "core/serialization.h"
#include "core/transform.h"

namespace {

using namespace nnlut;

void usage() {
  std::fprintf(stderr,
               "usage: nnlut_fit --function <name> [--entries N]\n"
               "                 [--preset fast|paper] [--seed S]\n"
               "                 [--out-lut FILE] [--out-net FILE]\n"
               "                 [--baseline] [--dump-table]\n"
               "       nnlut_fit --list\n");
}

double grid_l1(const PiecewiseLinear& lut, const FnSpec& spec) {
  double s = 0.0;
  const int n = 4096;
  for (int i = 0; i < n; ++i) {
    const float x = spec.range.lo + (spec.range.hi - spec.range.lo) *
                                        (static_cast<float>(i) + 0.5f) / n;
    s += std::abs(static_cast<double>(lut(x)) - spec.fn(x));
  }
  return s / n;
}

}  // namespace

int main(int argc, char** argv) {
  std::string fn_name;
  std::string out_lut, out_net;
  int entries = 16;
  FitPreset preset = FitPreset::kPaper;
  std::uint64_t seed = 1;
  bool baseline = false, dump = false, list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--function") {
      fn_name = next();
    } else if (arg == "--entries") {
      entries = std::atoi(next());
    } else if (arg == "--preset") {
      const std::string p = next();
      if (p == "fast") {
        preset = FitPreset::kFast;
      } else if (p == "paper") {
        preset = FitPreset::kPaper;
      } else {
        usage();
        return 2;
      }
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--out-lut") {
      out_lut = next();
    } else if (arg == "--out-net") {
      out_net = next();
    } else if (arg == "--baseline") {
      baseline = true;
    } else if (arg == "--dump-table") {
      dump = true;
    } else if (arg == "--list") {
      list = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (list) {
    std::printf("registered functions:\n");
    for (const FnSpec& s : all_fn_specs())
      std::printf("  %-8s range (%g, %g)\n", s.name, s.range.lo, s.range.hi);
    return 0;
  }

  if (fn_name.empty() || entries < 2) {
    usage();
    return 2;
  }
  const FnSpec* spec = fn_spec_by_name(fn_name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown function '%s' (try --list)\n",
                 fn_name.c_str());
    return 2;
  }

  std::printf("fitting %s on (%g, %g) with %d entries (%s preset)...\n",
              spec->name, spec->range.lo, spec->range.hi, entries,
              preset == FitPreset::kPaper ? "paper" : "fast");
  const FittedLut fit = fit_lut(spec->id, entries, preset, seed);
  std::printf("  validation L1: %.6f   grid L1: %.6f   segments: %zu\n",
              fit.validation_l1, grid_l1(fit.lut, *spec), fit.lut.entries());

  if (baseline) {
    const PiecewiseLinear lin = fit_linear_lut(spec->fn, spec->range, entries);
    std::printf("  Linear-LUT baseline grid L1: %.6f\n", grid_l1(lin, *spec));
  }

  if (dump) {
    std::printf("\n  %-4s %12s %12s %12s\n", "seg", "breakpoint", "slope",
                "intercept");
    for (std::size_t i = 0; i < fit.lut.entries(); ++i) {
      if (i == 0) {
        std::printf("  %-4zu %12s %12.6f %12.6f\n", i, "-inf",
                    fit.lut.slopes()[i], fit.lut.intercepts()[i]);
      } else {
        std::printf("  %-4zu %12.4f %12.6f %12.6f\n", i,
                    fit.lut.breakpoints()[i - 1], fit.lut.slopes()[i],
                    fit.lut.intercepts()[i]);
      }
    }
  }

  try {
    if (!out_lut.empty()) {
      save_lut(out_lut, fit.lut);
      std::printf("  wrote %s\n", out_lut.c_str());
    }
    if (!out_net.empty()) {
      save_net(out_net, fit.net);
      std::printf("  wrote %s\n", out_net.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
