#!/usr/bin/env python3
"""Determinism-contract lint for the NN-LUT serving stack.

The repo's contract (docs/ARCHITECTURE.md, "The determinism contract") says
served logits are bit-identical across batch size, thread count, SIMD tier,
and buffer pools on/off. Most ways to break that contract are textually
recognizable long before a parity suite catches them at runtime; this tool
rejects them at CI time. Rules (full table in docs/STATIC_ANALYSIS.md):

  no-rand             rand()/srand()/std::random_device//dev/urandom in src/
                      (all randomness flows through the fixed-seed
                      numerics/rng.h generator).
  no-wallclock        wall-clock or monotonic clock reads outside the
                      manifest's `wallclock_allowed` prefixes (serving
                      latency accounting only — results never carry time).
  no-unordered-iter   iteration over a std::unordered_* container (the
                      visit order is implementation-defined and must never
                      feed an output path). `// lint:allow unordered-iter`
                      on or above the line opts a proven-order-independent
                      loop out.
  no-fp-contract      FP contraction hazards: `#pragma STDC FP_CONTRACT`
                      overrides in C++, -ffast-math family flags in CMake,
                      and a missing project-wide -ffp-contract=off.
  simd-literal-parity float literals in a SIMD-tier TU that appear neither
                      in its shared detail header nor in the manifest
                      allowlist — divergent constants between tiers are
                      exactly how tiers stop being bit-identical.
  no-hot-alloc        allocation keywords (new/malloc/push_back/resize/...)
                      in manifest-tagged hot-path files (the zero-allocation
                      steady state of PR 6). `// lint:allow hot-alloc`
                      escapes a proven cold path.
  raw-sync-primitive  raw std::mutex / std::lock_guard / ... anywhere but
                      core/thread_annotations.h: all synchronization goes
                      through the annotated wrappers so Clang's
                      -Wthread-safety analysis can see the lock discipline.

Usage:
  tools/nnlut_lint.py                      # manifest default paths (src/ +
                                           # CMakeLists.txt), repo-rooted
  tools/nnlut_lint.py src/serve            # explicit paths
  tools/nnlut_lint.py --self-test          # fixture corpus + HEAD must pass
Exit status: 0 clean, 1 findings, 2 usage/manifest error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_MANIFEST = REPO_ROOT / "tools" / "lint_manifest.json"
FIXTURE_DIR = REPO_ROOT / "tests" / "lint_fixtures"

CPP_EXTS = {".h", ".hpp", ".cpp", ".cc", ".cxx"}

ALLOW_RE = re.compile(r"//\s*lint:allow\s+([\w-]+)")


class Manifest:
    """Rule configuration. All paths are relative to `root` (the directory
    the manifest's `root` entry names, itself relative to the manifest
    file), normalized to forward slashes."""

    def __init__(self, data: dict, manifest_path: Path):
        self.root = (manifest_path.parent / data.get("root", ".")).resolve()
        self.default_paths = data.get("default_paths", ["src"])
        self.wallclock_allowed = data.get("wallclock_allowed", [])
        self.hot_path = set(data.get("hot_path", []))
        self.simd_tier_pairs = data.get("simd_tier_pairs", {})
        self.simd_literal_allow = set(data.get("simd_literal_allow", []))
        self.sync_exempt = set(data.get("sync_exempt", []))
        self.cmake_files = set(data.get("cmake_files", []))

    @staticmethod
    def load(path: Path) -> "Manifest":
        try:
            return Manifest(json.loads(path.read_text()), path)
        except (OSError, json.JSONDecodeError) as e:
            print(f"nnlut_lint: cannot load manifest {path}: {e}",
                  file=sys.stderr)
            sys.exit(2)


class Finding:
    def __init__(self, rule: str, path: str, line: int, msg: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.msg = msg

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


def strip_cpp(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines so
    line numbers survive. Rules then never fire on prose or messages."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join("\n" if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i > 1 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allow_lines(raw_text: str) -> dict[str, set[int]]:
    """rule -> line numbers carrying a `// lint:allow <rule>` marker. A
    finding is suppressed when its line, or the line above, is marked."""
    allowed: dict[str, set[int]] = {}
    for lineno, line in enumerate(raw_text.splitlines(), 1):
        for m in ALLOW_RE.finditer(line):
            allowed.setdefault(m.group(1), set()).add(lineno)
    return allowed


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def grep(pattern: re.Pattern, text: str):
    for m in pattern.finditer(text):
        yield line_of(text, m.start()), m.group(0).strip()


# --------------------------------------------------------------- C++ rules

RAND_RE = re.compile(
    r"\bs?rand\s*\(|std::random_device|/dev/u?random|\brand_r\s*\(")

# Mentioning a clock type (time_point parameters, durations) is fine; the
# nondeterminism enters where the clock is actually READ.
WALLCLOCK_RE = re.compile(
    r"(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b"
    r"|gettimeofday|clock_gettime|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|__DATE__|__TIME__")

FP_PRAGMA_RE = re.compile(r"#\s*pragma\s+STDC\s+FP_CONTRACT\s+(?:ON|DEFAULT)")

FLOAT_LIT_RE = re.compile(
    r"(?<![\w.])((?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?f?|\d+[eE][+-]?\d+f?"
    r"|0[xX][0-9a-fA-F]*\.?[0-9a-fA-F]*[pP][+-]?\d+f?)")

ALLOC_RE = re.compile(
    r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\.push_back\s*\("
    r"|\.emplace_back\s*\(|\.resize\s*\(|\bmake_shared\b|\bmake_unique\b")

SYNC_RE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex"
    r"|condition_variable(?:_any)?|lock_guard|unique_lock|shared_lock"
    r"|scoped_lock)\b")

UNORDERED_DECL_RE = re.compile(r"std::unordered_\w+\s*<")


def unordered_names(code: str) -> set[str]:
    """Names of variables/members declared with a std::unordered_* type,
    found by matching the template bracket depth to the declarator."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        i = m.end()  # just past '<'
        depth = 1
        while i < len(code) and depth > 0:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        decl = re.match(r"\s*&?\s*(\w+)\s*[;={(]", code[i:])
        if decl:
            names.add(decl.group(1))
    return names


def rule_no_rand(rel: str, code: str, mf: Manifest):
    for line, frag in grep(RAND_RE, code):
        yield Finding("no-rand", rel, line,
                      f"nondeterministic source `{frag}` — all randomness "
                      "goes through the fixed-seed numerics/rng.h generator")


def rule_no_wallclock(rel: str, code: str, mf: Manifest):
    if any(rel.startswith(p) for p in mf.wallclock_allowed):
        return
    for line, frag in grep(WALLCLOCK_RE, code):
        yield Finding("no-wallclock", rel, line,
                      f"clock read `{frag}` outside the serving/stats layer "
                      "— results must never depend on time")


def rule_no_unordered_iter(rel: str, code: str, mf: Manifest):
    names = unordered_names(code)
    if not names:
        return
    alt = "|".join(re.escape(n) for n in sorted(names))
    # Range-for over the container (possibly member-qualified) or an
    # explicit iterator loop from .begin().
    iter_re = re.compile(
        r"for\s*\([^;()]*:\s*&?\s*(?:[\w.\->]+\.|\(\*\w+\)\.)?(?:%s)\s*\)"
        r"|(?:%s)\.begin\s*\(" % (alt, alt))
    for line, frag in grep(iter_re, code):
        yield Finding("no-unordered-iter", rel, line,
                      f"iteration over unordered container (`{frag}`): visit "
                      "order is implementation-defined and must not feed any "
                      "output path (`// lint:allow unordered-iter` for "
                      "proven-order-independent bookkeeping)")


def rule_no_fp_contract_cpp(rel: str, code: str, mf: Manifest):
    for line, frag in grep(FP_PRAGMA_RE, code):
        yield Finding("no-fp-contract", rel, line,
                      f"`{frag}` re-enables FP contraction locally; the "
                      "SIMD-tier parity contract requires -ffp-contract=off "
                      "everywhere")


def rule_simd_literal_parity(rel: str, code: str, mf: Manifest):
    header_rel = mf.simd_tier_pairs.get(rel)
    if header_rel is None:
        return
    header_path = mf.root / header_rel
    try:
        header_code = strip_cpp(header_path.read_text())
    except OSError:
        yield Finding("simd-literal-parity", rel, 1,
                      f"shared header {header_rel} (from simd_tier_pairs) "
                      "does not exist")
        return
    shared = {m.group(1) for m in FLOAT_LIT_RE.finditer(header_code)}
    allowed = shared | mf.simd_literal_allow
    for m in FLOAT_LIT_RE.finditer(code):
        lit = m.group(1)
        if lit not in allowed:
            yield Finding(
                "simd-literal-parity", rel, line_of(code, m.start()),
                f"float literal `{lit}` appears in this SIMD-tier TU but "
                f"not in {header_rel} or the manifest allowlist — divergent "
                "constants between tiers break bit-identical logits")


def rule_no_hot_alloc(rel: str, code: str, mf: Manifest):
    if rel not in mf.hot_path:
        return
    for line, frag in grep(ALLOC_RE, code):
        yield Finding("no-hot-alloc", rel, line,
                      f"allocation `{frag}` in a hot-path file — the steady "
                      "state is zero-allocation; stage through the workspace "
                      "or pool (`// lint:allow hot-alloc` for proven cold "
                      "paths)")


def rule_raw_sync_primitive(rel: str, code: str, mf: Manifest):
    if rel in mf.sync_exempt:
        return
    for line, frag in grep(SYNC_RE, code):
        yield Finding("raw-sync-primitive", rel, line,
                      f"raw `{frag}` — use the annotated wrappers in "
                      "core/thread_annotations.h (Mutex, MutexLock, "
                      "UniqueLock, CondVar, ...) so clang -Wthread-safety "
                      "can prove the lock discipline")


CPP_RULES = [
    rule_no_rand,
    rule_no_wallclock,
    rule_no_unordered_iter,
    rule_no_fp_contract_cpp,
    rule_simd_literal_parity,
    rule_no_hot_alloc,
    rule_raw_sync_primitive,
]

# ------------------------------------------------------------- CMake rules

CMAKE_BAD_RE = re.compile(
    r"-ffast-math|-funsafe-math-optimizations|-ffp-contract=(?:fast|on)"
    r"|-Ofast")


def lint_cmake(rel: str, text: str) -> list[Finding]:
    findings = []
    for line, frag in grep(CMAKE_BAD_RE, text):
        findings.append(Finding(
            "no-fp-contract", rel, line,
            f"`{frag}` breaks cross-tier bit-identity (implicit FMA / value "
            "re-association); the build must stay -ffp-contract=off"))
    if "-ffp-contract=off" not in text:
        findings.append(Finding(
            "no-fp-contract", rel, 1,
            "-ffp-contract=off is missing: the determinism contract requires "
            "contraction off project-wide"))
    return findings


# ---------------------------------------------------------------- driver

def lint_cpp_file(path: Path, rel: str, mf: Manifest) -> list[Finding]:
    raw = path.read_text(errors="replace")
    code = strip_cpp(raw)
    allowed = allow_lines(raw)
    findings = []
    for rule in CPP_RULES:
        for f in rule(rel, code, mf):
            # Markers may use the rule id or its short form without the
            # "no-" prefix (`lint:allow unordered-iter`).
            marks = set(allowed.get(f.rule, ()))
            if f.rule.startswith("no-"):
                marks |= allowed.get(f.rule[3:], set())
            if f.line in marks or f.line - 1 in marks:
                continue
            findings.append(f)
    return findings


def collect_files(paths: list[str], mf: Manifest):
    """Yield (path, rel) under the manifest root, split into C++ and CMake."""
    cpp, cmake = [], []
    for p in paths:
        base = (mf.root / p).resolve()
        if not base.exists():
            print(f"nnlut_lint: path does not exist: {base}", file=sys.stderr)
            sys.exit(2)
        candidates = sorted(base.rglob("*")) if base.is_dir() else [base]
        for f in candidates:
            if not f.is_file():
                continue
            rel = f.relative_to(mf.root).as_posix()
            if rel in mf.cmake_files or f.name == "CMakeLists.txt" or \
                    f.suffix == ".cmake":
                cmake.append((f, rel))
            elif f.suffix in CPP_EXTS:
                cpp.append((f, rel))
    return cpp, cmake


def run_lint(paths: list[str], mf: Manifest) -> list[Finding]:
    cpp, cmake = collect_files(paths, mf)
    findings: list[Finding] = []
    for f, rel in cpp:
        findings.extend(lint_cpp_file(f, rel, mf))
    for f, rel in cmake:
        findings.extend(lint_cmake(rel, f.read_text(errors="replace")))
    return findings


# -------------------------------------------------------------- self-test

# rule -> fixture basename stems (tests/lint_fixtures/<stem>.bad.* must fire
# exactly this rule; every *.good.* file — top level or in a subdirectory
# the fixture manifest scopes a rule to — must be completely clean).
RULE_FIXTURES = {
    "no-rand": ["no_rand"],
    # no_wallclock_scope / no_wallclock_net_scope prove the manifest prefix
    # scoping: each bad twin reads a clock outside every `wallclock_allowed`
    # prefix; each good twin is the same code inside an allowlisted directory
    # (obs_allowed/ and net_allowed/ respectively).
    "no-wallclock": ["no_wallclock", "no_wallclock_scope",
                     "no_wallclock_net_scope"],
    "no-unordered-iter": ["no_unordered_iter"],
    "no-fp-contract": ["no_fp_contract"],
    # The _wide twin models the layered TU -> width-common-header -> scalar
    # detail arrangement of the F16C/VNNI TUs: a literal shared only with
    # the width-specific common header must still fire.
    "simd-literal-parity": ["simd_literal_parity", "simd_literal_parity_wide"],
    "no-hot-alloc": ["no_hot_alloc"],
    "raw-sync-primitive": ["raw_sync"],
}


def self_test() -> int:
    fixture_manifest = FIXTURE_DIR / "fixture_manifest.json"
    mf = Manifest.load(fixture_manifest)
    failures = []

    for rule, stems in sorted(RULE_FIXTURES.items()):
        bad = [f for stem in stems
               for f in sorted(FIXTURE_DIR.glob(f"{stem}.bad.*"))]
        if not bad:
            failures.append(f"{rule}: no bad fixture matching {stems}")
            continue
        for bad_file in bad:
            rel = bad_file.relative_to(mf.root).as_posix()
            found = run_lint([rel], mf)
            rules_hit = {f.rule for f in found}
            if rule not in rules_hit:
                failures.append(
                    f"{rule}: did NOT fire on its bad fixture {rel}")
            if rules_hit - {rule}:
                failures.append(
                    f"{rule}: bad fixture {rel} also triggered "
                    f"{sorted(rules_hit - {rule})} — fixtures must isolate "
                    "one rule")
        status = "FAIL" if any(x.startswith(rule) for x in failures) else "ok"
        print(f"  {rule:20s} fires on {len(bad)} bad fixture(s): {status}")

    for good in sorted(FIXTURE_DIR.rglob("*.good.*")):
        rel = good.relative_to(mf.root).as_posix()
        found = run_lint([rel], mf)
        if found:
            failures.append(f"good fixture {rel} produced findings: "
                            + "; ".join(str(f) for f in found))
    print(f"  good fixtures clean: "
          f"{'FAIL' if any('good fixture' in x for x in failures) else 'ok'}")

    # The rules must also hold on the real tree at HEAD.
    head_mf = Manifest.load(DEFAULT_MANIFEST)
    head_findings = run_lint(head_mf.default_paths, head_mf)
    if head_findings:
        failures.append(f"src/ at HEAD has {len(head_findings)} finding(s)")
        for f in head_findings:
            print(f"  HEAD: {f}")
    print(f"  src/ at HEAD clean: {'FAIL' if head_findings else 'ok'}")

    if failures:
        print("\nnnlut_lint --self-test FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("nnlut_lint --self-test passed "
          f"({len(RULE_FIXTURES)} rules, fixtures + HEAD)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Determinism-contract lint (see docs/STATIC_ANALYSIS.md)")
    ap.add_argument("paths", nargs="*",
                    help="files/dirs relative to the manifest root "
                         "(default: manifest default_paths)")
    ap.add_argument("--manifest", type=Path, default=DEFAULT_MANIFEST)
    ap.add_argument("--self-test", action="store_true",
                    help="verify each rule against its fixture corpus, then "
                         "require src/ at HEAD to be clean")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    mf = Manifest.load(args.manifest)
    findings = run_lint(args.paths or mf.default_paths, mf)
    for f in findings:
        print(f)
    if findings:
        print(f"nnlut_lint: {len(findings)} finding(s)")
        return 1
    print("nnlut_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
