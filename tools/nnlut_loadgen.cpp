// nnlut_loadgen: closed-loop load generator for the TCP front-end.
//
// Drives N connections x M in-flight requests each against an NN-LUT
// serving stack and reports client-observed throughput, latency quantiles
// and the error/shed breakdown as a JSON summary on stdout.
//
// Two modes:
//   self-serve (default): builds the serving example's engine shape in
//     process — one random-weight encoder behind two LUT slots,
//     "nnlut-fp32" (unbounded) and "nnlut-int32" (bounded admission,
//     reject-oldest) — starts a TcpServer on an ephemeral port and loads
//     it over loopback. Zero setup: `nnlut_loadgen` just runs.
//   --connect HOST:PORT: loads an already-running server instead; model
//     ids default to the same two slots (override with --models a,b,...).
//
// Closed loop means each connection keeps exactly M requests in flight:
// it primes M submits, then await-oldest / submit-next until its quota is
// spent. Work is deterministic per (--seed, connection index, request
// index) so two runs of the same configuration serve identical streams.
//
// Every request is verified structurally (logits shape) but not
// numerically — parity with the in-process engine is the loopback test
// suite's job (tests/net_test.cpp), not the load generator's.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "approx/linear_lut.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "numerics/math.h"
#include "numerics/rng.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "serve/stats.h"
#include "transformer/infer.h"

namespace {

using namespace nnlut;
using namespace nnlut::transformer;
using namespace std::chrono_literals;

struct Options {
  std::size_t connections = 4;
  std::size_t inflight = 4;
  std::size_t requests = 64;  // per connection
  std::uint64_t seed = 42;
  std::size_t seq = 16;
  std::string connect;  // empty: self-serve
  std::vector<std::string> models = {"nnlut-fp32", "nnlut-int32"};
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--connections N] [--inflight M] [--requests K]\n"
      "          [--seed S] [--seq L] [--connect HOST:PORT]\n"
      "          [--models a,b,...]\n"
      "Closed-loop load generator: N connections x M in-flight, K requests\n"
      "per connection. Self-serves an in-process engine unless --connect.\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connections") o.connections = std::strtoull(value(i), nullptr, 10);
    else if (arg == "--inflight") o.inflight = std::strtoull(value(i), nullptr, 10);
    else if (arg == "--requests") o.requests = std::strtoull(value(i), nullptr, 10);
    else if (arg == "--seed") o.seed = std::strtoull(value(i), nullptr, 10);
    else if (arg == "--seq") o.seq = std::strtoull(value(i), nullptr, 10);
    else if (arg == "--connect") o.connect = value(i);
    else if (arg == "--models") {
      o.models.clear();
      std::string list = value(i);
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > start) o.models.push_back(list.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else usage(argv[0]);
  }
  if (o.connections == 0 || o.inflight == 0 || o.requests == 0 ||
      o.models.empty() || o.seq == 0)
    usage(argv[0]);
  return o;
}

constexpr std::size_t kVocab = 64;

ModelConfig loadgen_config(std::size_t seq) {
  ModelConfig cfg = ModelConfig::roberta_like();
  cfg.vocab = kVocab;
  cfg.hidden = 32;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.ffn = 64;
  cfg.max_seq = seq;
  return cfg;
}

/// The serving example's engine shape (examples/serving_loop.cpp) minus
/// the training step: random weights serve the same code paths at the
/// same cost per token.
struct SelfServe {
  Rng rng;
  TaskModel model;
  LutSet luts;
  std::unique_ptr<LutNonlinearities> fp32_backend;
  std::unique_ptr<LutNonlinearities> int32_backend;
  serve::Engine engine;

  explicit SelfServe(const Options& o)
      : rng(static_cast<int>(o.seed)),
        model(loadgen_config(o.seq), HeadKind::kClassify, 2, rng),
        luts{fit_linear_lut(gelu_exact, kGeluRange, 16),
             fit_linear_lut(exp_exact, {-16.0f, 0.0f}, 16),
             fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 1024.0f}, 16,
                                      BreakpointMode::kExponential),
             fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 16,
                                      BreakpointMode::kExponential)} {
    LutNonlinearities::Options lopt;
    lopt.select = ApproxSelection::all();
    fp32_backend = make_lut_backend(luts, LutPrecision::kFp32, lopt);
    int32_backend = make_lut_backend(luts, LutPrecision::kInt32, lopt);

    serve::SlotConfig fp32_slot;
    fp32_slot.max_batch = 8;
    fp32_slot.max_wait = 2000us;
    engine.register_model("nnlut-fp32", model, *fp32_backend, fp32_slot);

    serve::SlotConfig int32_slot = fp32_slot;
    int32_slot.admission = {/*max_queue_depth=*/8,
                            serve::ShedPolicy::kRejectOldest};
    engine.register_model("nnlut-int32", model, *int32_backend, int32_slot);
  }
};

BatchInput request_for(const Options& o, std::size_t conn,
                                    std::size_t k) {
  Rng rng(static_cast<int>(o.seed * 7919 + conn * 1009 + k));
  BatchInput in;
  in.batch = 1;
  in.seq = o.seq;
  in.token_ids.resize(o.seq);
  for (int& t : in.token_ids)
    t = rng.uniform_int(0, static_cast<int>(kVocab) - 1);
  return in;
}

struct ConnResult {
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t other_errors = 0;
  serve::LatencyHistogram latency;  // client-observed submit->completion
};

ConnResult run_connection(const Options& o, const std::string& host,
                          std::uint16_t port, std::size_t conn) {
  ConnResult res;
  net::Client client(host, port);
  const std::string& model = o.models[conn % o.models.size()];

  std::vector<std::pair<std::uint64_t,
                        std::chrono::steady_clock::time_point>> window;
  std::size_t next = 0;
  auto prime = [&] {
    while (next < o.requests && window.size() < o.inflight) {
      const auto t0 = std::chrono::steady_clock::now();
      window.emplace_back(client.submit(model, request_for(o, conn, next)),
                          t0);
      ++next;
    }
  };
  prime();
  while (!window.empty()) {
    const auto [id, t0] = window.front();
    window.erase(window.begin());
    const net::Completion done = client.await(id);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0);
    res.latency.record(us);
    if (done.ok)
      ++res.ok;
    else if (done.code == net::ErrorCode::kOverloaded)
      ++res.overloaded;
    else
      ++res.other_errors;
    prime();
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  std::unique_ptr<SelfServe> self;
  std::unique_ptr<net::TcpServer> server;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  if (o.connect.empty()) {
    self = std::make_unique<SelfServe>(o);
    server = std::make_unique<net::TcpServer>(self->engine);
    port = server->port();
  } else {
    const std::size_t colon = o.connect.rfind(':');
    if (colon == std::string::npos) usage(argv[0]);
    host = o.connect.substr(0, colon);
    port = static_cast<std::uint16_t>(
        std::strtoul(o.connect.c_str() + colon + 1, nullptr, 10));
  }

  std::vector<ConnResult> results(o.connections);
  std::atomic<int> failures{0};
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(o.connections);
    for (std::size_t c = 0; c < o.connections; ++c) {
      threads.emplace_back([&, c] {
        try {
          results[c] = run_connection(o, host, port, c);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "conn %zu: %s\n", c, e.what());
          failures.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - t0)
          .count();

  ConnResult total;
  for (const ConnResult& r : results) {
    total.ok += r.ok;
    total.overloaded += r.overloaded;
    total.other_errors += r.other_errors;
    total.latency.merge(r.latency);
  }
  const std::uint64_t completed =
      total.ok + total.overloaded + total.other_errors;

  net::NetStats net{};
  if (server) {
    net = server->stats();
    server->stop();
    self->engine.shutdown();
  }
  runtime::set_runtime_config({});

  std::printf(
      "{\n"
      "  \"mode\": \"%s\",\n"
      "  \"connections\": %zu,\n"
      "  \"inflight\": %zu,\n"
      "  \"requests_per_connection\": %zu,\n"
      "  \"seed\": %llu,\n"
      "  \"completed\": %llu,\n"
      "  \"ok\": %llu,\n"
      "  \"overloaded\": %llu,\n"
      "  \"other_errors\": %llu,\n"
      "  \"connection_failures\": %d,\n"
      "  \"elapsed_s\": %.4f,\n"
      "  \"req_per_s\": %.1f,\n"
      "  \"latency_us\": {\"p50\": %.0f, \"p95\": %.0f, \"p99\": %.0f},\n"
      "  \"server\": {\"forwarded\": %llu, \"enqueued\": %llu,"
      " \"dropped\": %llu, \"sheds_preparse\": %llu}\n"
      "}\n",
      o.connect.empty() ? "self-serve" : "connect", o.connections, o.inflight,
      o.requests, static_cast<unsigned long long>(o.seed),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.overloaded),
      static_cast<unsigned long long>(total.other_errors), failures.load(),
      elapsed_s, elapsed_s > 0.0 ? static_cast<double>(completed) / elapsed_s
                                 : 0.0,
      total.latency.quantile(0.50), total.latency.quantile(0.95),
      total.latency.quantile(0.99),
      static_cast<unsigned long long>(net.submits_forwarded),
      static_cast<unsigned long long>(net.completions_enqueued),
      static_cast<unsigned long long>(net.responses_dropped),
      static_cast<unsigned long long>(net.sheds_preparse));

  const bool reconciled =
      !server || net.submits_forwarded ==
                     net.completions_enqueued + net.responses_dropped;
  if (!reconciled)
    std::fprintf(stderr, "loadgen: server stats do not reconcile\n");
  return (failures.load() == 0 && completed == o.connections * o.requests &&
          reconciled)
             ? 0
             : 1;
}
