#!/usr/bin/env python3
"""Fail on broken relative links and stale code references in markdown.

Usage: check_doc_links.py FILE.md [FILE.md ...]

Two checks per file:

1. Inline markdown links `[text](target)` whose target is not an absolute
   URL (scheme:// or mailto:) or a pure in-page anchor (#...). Relative
   targets are resolved against the containing file's directory; anchors
   and query strings are stripped before the existence check.

2. Backtick code spans that look like repo file references (`src/x/y.h`,
   `tools/z.py`, ...): a path-shaped span with a file extension must name a
   file that exists, resolved against the repo root, the repo's src/
   directory (docs routinely write `core/lut_kernel.h` for src-relative
   headers), or the markdown file's own directory. Spans with glob or
   placeholder characters (*, <, {) and generated build/ artifacts are
   skipped. This keeps prose like docs/STATIC_ANALYSIS.md from rotting as
   files move.

Exits 1 listing every broken reference, 0 when all resolve.
"""
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links only; reference-style links are not used in this repo.
# [text](target "title") and [text](target) both match; nested parens are
# not (markdown would need <...> for those anyway).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # scheme: (https:, mailto:)

# `path/file.ext` code spans: at least one directory separator and a known
# source/doc extension, nothing but path characters.
CODE_REF_RE = re.compile(
    r"`([A-Za-z0-9_.-]+(?:/[A-Za-z0-9_.-]+)+"
    r"\.(?:h|hpp|cpp|cc|py|md|json|yml|yaml|txt|cmake))`")


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    # Links inside fenced code blocks are illustrative, not navigation.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if SKIP_RE.match(target) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0].split("?", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link '{target}' -> {resolved}")
    for match in CODE_REF_RE.finditer(text):
        ref = match.group(1)
        if ref.startswith("build/"):  # generated artifacts, not sources
            continue
        roots = (REPO_ROOT, REPO_ROOT / "src", path.parent)
        if not any((root / ref).exists() for root in roots):
            errors.append(
                f"{path}: stale code reference `{ref}` (not found under the "
                "repo root, src/, or the file's directory)")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    checked = 0
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
        checked += 1
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {checked} file(s): "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} broken)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
