#!/usr/bin/env python3
"""Fail on broken relative links in markdown files.

Usage: check_doc_links.py FILE.md [FILE.md ...]

Checks every inline markdown link `[text](target)` whose target is not an
absolute URL (scheme:// or mailto:) or a pure in-page anchor (#...).
Relative targets are resolved against the containing file's directory;
anchors and query strings are stripped before the existence check. Exits 1
listing every broken link, 0 when all resolve.
"""
import re
import sys
from pathlib import Path

# Inline links only; reference-style links are not used in this repo.
# [text](target "title") and [text](target) both match; nested parens are
# not (markdown would need <...> for those anyway).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # scheme: (https:, mailto:)


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    # Links inside fenced code blocks are illustrative, not navigation.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if SKIP_RE.match(target) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0].split("?", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link '{target}' -> {resolved}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    checked = 0
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
        checked += 1
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {checked} file(s): "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} broken)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
