#include <gtest/gtest.h>

#include <cmath>

#include "approx/linear_lut.h"
#include "core/function_library.h"
#include "numerics/rng.h"
#include "transformer/backends.h"
#include "transformer/infer.h"
#include "transformer/model.h"

namespace nnlut::transformer {
namespace {

ModelConfig tiny_config(NormKind norm = NormKind::kLayerNorm,
                        ActKind act = ActKind::kGelu) {
  ModelConfig c;
  c.vocab = 32;
  c.hidden = 16;
  c.layers = 2;
  c.heads = 2;
  c.ffn = 32;
  c.max_seq = 12;
  c.norm = norm;
  c.act = act;
  return c;
}

BatchInput random_batch(const ModelConfig& cfg, std::size_t batch,
                        std::size_t seq, Rng& rng) {
  BatchInput in;
  in.batch = batch;
  in.seq = seq;
  in.token_ids.resize(batch * seq);
  in.type_ids.assign(batch * seq, 0);
  for (int& t : in.token_ids)
    t = rng.uniform_int(0, static_cast<int>(cfg.vocab) - 1);
  return in;
}

double max_diff(const Tensor& a, const Tensor& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  return m;
}

// ------------------------------------------------------------- Encoder ----

TEST(Encoder, ForwardShape) {
  Rng rng(1);
  const ModelConfig cfg = tiny_config();
  Encoder enc(cfg, rng);
  const BatchInput in = random_batch(cfg, 3, 8, rng);
  const Tensor h = enc.forward(in);
  EXPECT_EQ(h.dim(0), 24u);
  EXPECT_EQ(h.dim(1), cfg.hidden);
}

TEST(Encoder, RejectsBadShapes) {
  Rng rng(2);
  const ModelConfig cfg = tiny_config();
  Encoder enc(cfg, rng);
  BatchInput in = random_batch(cfg, 2, 8, rng);
  in.token_ids.pop_back();
  EXPECT_THROW(enc.forward(in), std::invalid_argument);

  BatchInput long_in = random_batch(cfg, 1, cfg.max_seq + 1, rng);
  EXPECT_THROW(enc.forward(long_in), std::invalid_argument);
}

TEST(Encoder, LayerNormKeepsActivationsBounded) {
  Rng rng(3);
  const ModelConfig cfg = tiny_config();
  Encoder enc(cfg, rng);
  const BatchInput in = random_batch(cfg, 2, 8, rng);
  const Tensor h = enc.forward(in);
  for (float v : h.flat()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::abs(v), 20.0f);
  }
}

// ----------------------------------------------------------- TaskModel ----

TEST(TaskModel, ClassifierLogitsShape) {
  Rng rng(4);
  TaskModel m(tiny_config(), HeadKind::kClassify, 3, rng);
  const BatchInput in = random_batch(m.config(), 4, 8, rng);
  const Tensor logits = m.forward(in);
  EXPECT_EQ(logits.dim(0), 4u);
  EXPECT_EQ(logits.dim(1), 3u);
}

TEST(TaskModel, SpanLogitsShape) {
  Rng rng(5);
  TaskModel m(tiny_config(), HeadKind::kSpan, 2, rng);
  const BatchInput in = random_batch(m.config(), 2, 8, rng);
  const Tensor logits = m.forward(in);
  EXPECT_EQ(logits.dim(0), 16u);
  EXPECT_EQ(logits.dim(1), 2u);
}

TEST(TaskModel, ParamsCoverAllLayers) {
  Rng rng(6);
  TaskModel m(tiny_config(), HeadKind::kClassify, 2, rng);
  // 3 embeddings + emb_norm(2) + per layer (4 attn linear * 2 + 2 norms * 2
  // + 2 ffn linear * 2) + head (2).
  const std::size_t expect = 3 + 2 + m.config().layers * (8 + 4 + 4) + 2;
  EXPECT_EQ(m.params().size(), expect);
}

TEST(DecodeSpans, PicksArgmaxStartThenEnd) {
  Tensor logits({8, 2});  // batch=1, seq=8
  logits.at(2, 0) = 5.0f;  // start at 2
  logits.at(1, 1) = 9.0f;  // high end logit *before* start: must be ignored
  logits.at(4, 1) = 6.0f;  // end at 4
  const auto spans = decode_spans(logits, 1, 8);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].first, 2);
  EXPECT_EQ(spans[0].second, 4);
}

// --------------------------------------------------- InferenceParity ------

TEST(InferenceModel, ExactBackendMatchesTrainingForward) {
  Rng rng(7);
  TaskModel m(tiny_config(), HeadKind::kClassify, 2, rng);
  const BatchInput in = random_batch(m.config(), 3, 8, rng);

  const Tensor train_logits = m.forward(in);

  ExactNonlinearities exact(m.config().act);
  InferenceModel infer(m, exact, MatmulMode::kFp32);
  const Tensor infer_logits = infer.logits(in);

  ASSERT_EQ(train_logits.size(), infer_logits.size());
  EXPECT_LT(max_diff(train_logits, infer_logits), 1e-4);
}

TEST(InferenceModel, ExactParityForNoNormReluModel) {
  Rng rng(8);
  TaskModel m(tiny_config(NormKind::kNoNorm, ActKind::kRelu),
              HeadKind::kClassify, 2, rng);
  const BatchInput in = random_batch(m.config(), 2, 8, rng);
  const Tensor train_logits = m.forward(in);
  ExactNonlinearities exact(m.config().act);
  InferenceModel infer(m, exact, MatmulMode::kFp32);
  EXPECT_LT(max_diff(train_logits, infer.logits(in)), 1e-4);
}

TEST(InferenceModel, SpanHeadParity) {
  Rng rng(9);
  TaskModel m(tiny_config(), HeadKind::kSpan, 2, rng);
  const BatchInput in = random_batch(m.config(), 2, 8, rng);
  const Tensor train_logits = m.forward(in);
  ExactNonlinearities exact(m.config().act);
  InferenceModel infer(m, exact, MatmulMode::kFp32);
  EXPECT_LT(max_diff(train_logits, infer.logits(in)), 1e-4);
}

TEST(InferenceModel, Fp16ModeStaysClose) {
  Rng rng(10);
  TaskModel m(tiny_config(), HeadKind::kClassify, 2, rng);
  const BatchInput in = random_batch(m.config(), 2, 8, rng);
  ExactNonlinearities exact(m.config().act);
  InferenceModel fp32(m, exact, MatmulMode::kFp32);
  InferenceModel fp16(m, exact, MatmulMode::kFp16);
  EXPECT_LT(max_diff(fp32.logits(in), fp16.logits(in)), 0.05);
}

TEST(InferenceModel, Int8ModeStaysSane) {
  Rng rng(11);
  TaskModel m(tiny_config(), HeadKind::kClassify, 2, rng);
  const BatchInput in = random_batch(m.config(), 2, 8, rng);
  ExactNonlinearities exact(m.config().act);
  InferenceModel fp32(m, exact, MatmulMode::kFp32);
  InferenceModel int8(m, exact, MatmulMode::kInt8);
  // INT8 is lossier than FP16 but must stay in the same ballpark.
  EXPECT_LT(max_diff(fp32.logits(in), int8.logits(in)), 0.5);
}

// ------------------------------------------------------------ Backends ----

LutSet exact_fitted_luts() {
  // Fixed-breakpoint fits are deterministic and fast; good enough for
  // backend plumbing tests (trained NN-LUTs are exercised elsewhere).
  LutSet s;
  s.gelu = fit_linear_lut(gelu_exact, kGeluRange, 64);
  s.exp = fit_fixed_breakpoint_lut(exp_exact, {-16.0f, 0.0f}, 64);
  s.reciprocal = fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 64.0f}, 64,
                                          BreakpointMode::kExponential);
  s.rsqrt = fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 64,
                                     BreakpointMode::kExponential);
  return s;
}

TEST(LutBackend, SelectionRoutesOnlyChosenOps) {
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::gelu_only();
  auto backend = make_lut_backend(exact_fitted_luts(), LutPrecision::kFp32, opt);

  // Softmax not selected -> exact.
  std::vector<float> row{1.0f, 2.0f, 3.0f};
  std::vector<float> expect = row;
  backend->softmax(row, 0);
  softmax_exact(expect);
  for (std::size_t i = 0; i < row.size(); ++i)
    EXPECT_NEAR(row[i], expect[i], 1e-6f);

  // LayerNorm not selected -> exact.
  std::vector<float> x{1.0f, -1.0f, 0.5f, -0.5f};
  std::vector<float> y(4), yref(4);
  backend->layer_norm(x, y, {}, {}, 0);
  layer_norm_exact(x, yref, {}, {});
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y[i], yref[i], 1e-6f);
}

TEST(LutBackend, SiteSpecificRsqrtOverrides) {
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::layernorm_only();
  opt.input_scaling = false;
  auto backend = make_lut_backend(exact_fitted_luts(), LutPrecision::kFp32, opt);

  // Install a deliberately wrong rsqrt at site 1: outputs all-zero rows.
  backend->set_site_rsqrt(
      1, std::make_unique<ExactFn>([](float) { return 0.0f; }));

  std::vector<float> x{4.0f, 2.0f, -4.0f, -2.0f};
  std::vector<float> y0(4), y1(4);
  backend->layer_norm(x, y0, {}, {}, 0);
  backend->layer_norm(x, y1, {}, {}, 1);
  // Site 0 uses the shared LUT (non-zero output); site 1 the override.
  EXPECT_GT(std::abs(y0[0]), 0.1f);
  for (float v : y1) EXPECT_EQ(v, 0.0f);
}

TEST(LutBackend, CaptureRecordsRsqrtInputs) {
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::layernorm_only();
  opt.input_scaling = false;
  auto backend = make_lut_backend(exact_fitted_luts(), LutPrecision::kFp32, opt);
  backend->enable_rsqrt_capture();

  std::vector<float> x{3.0f, -3.0f, 1.0f, -1.0f};  // variance 5
  std::vector<float> y(4);
  backend->layer_norm(x, y, {}, {}, 2);
  backend->disable_rsqrt_capture();

  const auto& captured = backend->captured_rsqrt_inputs(2);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NEAR(captured[0], 5.0f, 1e-3f);
  EXPECT_TRUE(backend->captured_rsqrt_inputs(0).empty());
}

TEST(IBertBackend, TracksExactOps) {
  IBertNonlinearities ib(ActKind::kGelu);
  Rng rng(12);

  std::vector<float> row(16), rref(16);
  for (std::size_t i = 0; i < row.size(); ++i)
    rref[i] = row[i] = rng.uniform(-4.0f, 4.0f);
  ib.softmax(row, 0);
  softmax_exact(rref);
  for (std::size_t i = 0; i < row.size(); ++i)
    EXPECT_NEAR(row[i], rref[i], 0.01f);

  std::vector<float> xs(32), xref(32);
  for (std::size_t i = 0; i < xs.size(); ++i)
    xref[i] = xs[i] = rng.uniform(-3.0f, 3.0f);
  ib.activation(xs, 0);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_NEAR(xs[i], gelu_exact(xref[i]), 0.03f);
}

TEST(IBertBackend, ReluModelsKeepReluExact) {
  IBertNonlinearities ib(ActKind::kRelu);
  std::vector<float> xs{-2.0f, 3.0f};
  ib.activation(xs, 0);
  EXPECT_EQ(xs[0], 0.0f);
  EXPECT_EQ(xs[1], 3.0f);
}

TEST(InferenceModel, LutBackendAllOpsCloseToExact) {
  Rng rng(13);
  TaskModel m(tiny_config(), HeadKind::kClassify, 2, rng);
  const BatchInput in = random_batch(m.config(), 3, 8, rng);

  ExactNonlinearities exact(m.config().act);
  InferenceModel ref(m, exact, MatmulMode::kFp32);

  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::all();
  auto lut = make_lut_backend(exact_fitted_luts(), LutPrecision::kFp32, opt);
  InferenceModel approx(m, *lut, MatmulMode::kFp32);

  // Dense 64-entry exact-fit LUTs: logits must track the reference closely.
  EXPECT_LT(max_diff(ref.logits(in), approx.logits(in)), 0.3);
}

}  // namespace
}  // namespace nnlut::transformer
