#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tasks/metrics.h"
#include "tasks/tasks.h"

namespace nnlut::tasks {
namespace {

TaskGenOptions small_opts() {
  TaskGenOptions o;
  o.n_train = 200;
  o.n_dev = 100;
  o.seed = 42;
  return o;
}

// Shared structural checks for every task.
void check_structure(const TaskData& d) {
  EXPECT_EQ(d.train.size(), 200u);
  EXPECT_EQ(d.dev.size(), 100u);
  for (const Example& e : d.train) {
    ASSERT_EQ(e.tokens.size(), d.seq_len);
    ASSERT_EQ(e.type_ids.size(), d.seq_len);
    EXPECT_EQ(e.tokens[0], kCls);
    for (int t : e.tokens) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, static_cast<int>(d.vocab));
    }
    for (int ty : e.type_ids) {
      EXPECT_GE(ty, 0);
      EXPECT_LE(ty, 1);
    }
    if (!d.is_regression && !d.is_span) {
      EXPECT_GE(e.label, 0);
      EXPECT_LT(e.label, d.num_labels);
    }
  }
}

class EveryTask : public ::testing::TestWithParam<TaskId> {};

TEST_P(EveryTask, StructurallyValid) {
  const TaskData d = make_task(GetParam(), small_opts());
  check_structure(d);
}

TEST_P(EveryTask, DeterministicForSameSeed) {
  const TaskData a = make_task(GetParam(), small_opts());
  const TaskData b = make_task(GetParam(), small_opts());
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].tokens, b.train[i].tokens);
    EXPECT_EQ(a.train[i].label, b.train[i].label);
  }
}

TEST_P(EveryTask, DifferentSeedsDiffer) {
  TaskGenOptions o1 = small_opts(), o2 = small_opts();
  o2.seed = 43;
  const TaskData a = make_task(GetParam(), o1);
  const TaskData b = make_task(GetParam(), o2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.train.size() && !any_diff; ++i)
    any_diff = (a.train[i].tokens != b.train[i].tokens);
  EXPECT_TRUE(any_diff);
}

INSTANTIATE_TEST_SUITE_P(
    AllTasks, EveryTask,
    ::testing::Values(TaskId::kMrpc, TaskId::kRte, TaskId::kCola,
                      TaskId::kSst2, TaskId::kStsb, TaskId::kQqp,
                      TaskId::kMnli, TaskId::kQnli, TaskId::kSquad),
    [](const ::testing::TestParamInfo<TaskId>& info) {
      std::string n = task_name(info.param);
      n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
      return n;
    });

TEST(Tasks, BinaryLabelsRoughlyBalanced) {
  for (TaskId id : {TaskId::kMrpc, TaskId::kRte, TaskId::kCola, TaskId::kSst2,
                    TaskId::kQnli, TaskId::kQqp}) {
    TaskGenOptions o = small_opts();
    o.n_train = 1000;
    const TaskData d = make_task(id, o);
    int pos = 0;
    for (const Example& e : d.train) pos += e.label;
    EXPECT_GT(pos, 350) << task_name(id);
    EXPECT_LT(pos, 650) << task_name(id);
  }
}

TEST(Tasks, MnliCoversThreeClasses) {
  const TaskData d = make_task(TaskId::kMnli, small_opts());
  std::set<int> seen;
  for (const Example& e : d.train) seen.insert(e.label);
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Tasks, StsbTargetsSpanRange) {
  const TaskData d = make_task(TaskId::kStsb, small_opts());
  float lo = 5.0f, hi = 0.0f;
  for (const Example& e : d.train) {
    EXPECT_GE(e.target, 0.0f);
    EXPECT_LE(e.target, 5.0f);
    lo = std::min(lo, e.target);
    hi = std::max(hi, e.target);
  }
  EXPECT_LT(lo, 1.5f);  // generator sweeps the whole similarity range
  EXPECT_GT(hi, 3.5f);
}

TEST(Tasks, SquadSpansInsidePassage) {
  const TaskData d = make_task(TaskId::kSquad, small_opts());
  for (const Example& e : d.train) {
    EXPECT_GE(e.span_start, 3);  // after [CLS] q [SEP]
    EXPECT_LE(e.span_end, static_cast<int>(d.seq_len) - 1);
    EXPECT_EQ(e.span_end - e.span_start, 1);  // two-token answers
  }
}

TEST(Tasks, SquadAnswerFollowsMatchingMarker) {
  // The token immediately before each gold span must be the marker selected
  // by the question type, and the decoy marker must also be present.
  const TaskGenOptions o = small_opts();
  const TaskData d = make_task(TaskId::kSquad, o);
  const int q0 = kFirstContent, q1 = kFirstContent + 1;
  const int m0 = kFirstContent + 2, m1 = kFirstContent + 3;
  for (const Example& e : d.train) {
    const int q = e.tokens[1];
    ASSERT_TRUE(q == q0 || q == q1);
    const int marker = (q == q1) ? m1 : m0;
    const int decoy = (q == q1) ? m0 : m1;
    EXPECT_EQ(e.tokens[static_cast<std::size_t>(e.span_start - 1)], marker);
    EXPECT_NE(std::find(e.tokens.begin(), e.tokens.end(), decoy),
              e.tokens.end());
  }
}

TEST(Tasks, PairTasksUseBothSegments) {
  for (TaskId id : {TaskId::kMrpc, TaskId::kRte, TaskId::kStsb, TaskId::kQqp,
                    TaskId::kMnli, TaskId::kQnli}) {
    const TaskData d = make_task(id, small_opts());
    const Example& e = d.train[0];
    const bool has_b =
        std::find(e.type_ids.begin(), e.type_ids.end(), 1) != e.type_ids.end();
    EXPECT_TRUE(has_b) << task_name(id);
  }
}

TEST(Tasks, GlueSuiteOrderMatchesPaper) {
  const auto suite = glue_suite();
  ASSERT_EQ(suite.size(), 8u);
  EXPECT_EQ(suite[0], TaskId::kMrpc);
  EXPECT_EQ(suite[7], TaskId::kQnli);
}

TEST(Tasks, RejectsTinyConfigs) {
  TaskGenOptions o;
  o.vocab = 8;
  EXPECT_THROW(make_task(TaskId::kSst2, o), std::invalid_argument);
}

// --------------------------------------------------------------- metrics --

TEST(Metrics, AccuracyTask) {
  TaskData d = make_task(TaskId::kSst2, small_opts());
  Predictions p;
  for (const Example& e : d.dev) p.labels.push_back(e.label);
  EXPECT_DOUBLE_EQ(compute_metric(d, d.dev, p), 100.0);
}

TEST(Metrics, RegressionTaskPerfectSpearman) {
  TaskData d = make_task(TaskId::kStsb, small_opts());
  Predictions p;
  for (const Example& e : d.dev) p.scores.push_back(e.target * 2.0f + 1.0f);
  // Monotone transform preserves rank correlation.
  EXPECT_NEAR(compute_metric(d, d.dev, p), 100.0, 1e-6);
}

TEST(Metrics, SpanTaskPerfect) {
  TaskData d = make_task(TaskId::kSquad, small_opts());
  Predictions p;
  for (const Example& e : d.dev) p.spans.emplace_back(e.span_start, e.span_end);
  EXPECT_DOUBLE_EQ(compute_metric(d, d.dev, p), 100.0);
}

TEST(Metrics, SizeMismatchThrows) {
  TaskData d = make_task(TaskId::kSst2, small_opts());
  Predictions p;  // empty
  EXPECT_THROW(compute_metric(d, d.dev, p), std::invalid_argument);
}

}  // namespace
}  // namespace nnlut::tasks
