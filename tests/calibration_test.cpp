#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.h"
#include "core/function_library.h"
#include "core/trainer.h"
#include "numerics/math.h"
#include "numerics/rng.h"

namespace nnlut {
namespace {

std::vector<float> gaussian_inputs(float mean, float stddev, int count,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> xs(static_cast<std::size_t>(count));
  for (float& x : xs) x = rng.normal(mean, stddev);
  return xs;
}

TEST(Calibration, ImprovesOnShiftedDistribution) {
  // Train on the Table-1 uniform range, then calibrate for a concentrated
  // activation distribution, as a downstream layer would produce.
  const FittedLut fit = fit_lut(TargetFn::kGelu, 16, FitPreset::kFast, 21);

  const std::vector<float> captured = gaussian_inputs(1.5f, 0.4f, 20000, 77);
  CalibrationConfig cfg;
  cfg.epochs = 5;
  const CalibrationResult r = calibrate(fit.net, captured, gelu_exact, cfg);

  EXPECT_LE(r.error_after, r.error_before);
  EXPECT_LT(r.error_after, 0.02);
}

TEST(Calibration, NeverDeploysWorseNet) {
  const FittedLut fit = fit_lut(TargetFn::kGelu, 16, FitPreset::kFast, 22);
  const std::vector<float> captured = gaussian_inputs(0.0f, 1.0f, 5000, 5);

  CalibrationConfig cfg;
  cfg.epochs = 1;
  cfg.lr = 10.0f;  // pathological learning rate would wreck the net
  const CalibrationResult r = calibrate(fit.net, captured, gelu_exact, cfg);
  EXPECT_LE(r.error_after, r.error_before + 1e-9);
}

TEST(Calibration, LutMatchesCalibratedNet) {
  const FittedLut fit = fit_lut(TargetFn::kRsqrt, 16, FitPreset::kFast, 23);
  const std::vector<float> captured = gaussian_inputs(4.0f, 1.0f, 8000, 6);
  const CalibrationResult r = calibrate(fit.net, captured, rsqrt_exact);
  for (float x = 1.0f; x < 10.0f; x += 0.1f)
    EXPECT_NEAR(r.lut(x), r.net(x), 1e-4f) << x;
}

TEST(Calibration, RejectsEmptyCapture) {
  const FittedLut fit = fit_lut(TargetFn::kGelu, 8, FitPreset::kFast, 24);
  EXPECT_THROW(calibrate(fit.net, {}, gelu_exact), std::invalid_argument);
}

TEST(Calibration, SubsamplesLargeCaptureBuffers) {
  const FittedLut fit = fit_lut(TargetFn::kGelu, 8, FitPreset::kFast, 25);
  const std::vector<float> captured = gaussian_inputs(0.5f, 0.5f, 100000, 8);
  CalibrationConfig cfg;
  cfg.max_samples = 2000;  // must complete quickly on the subsample
  const CalibrationResult r = calibrate(fit.net, captured, gelu_exact, cfg);
  EXPECT_LE(r.error_after, r.error_before);
}

}  // namespace
}  // namespace nnlut
