// Network front-end tests: codec round-trips, decoder totality on
// arbitrary bytes (the fuzz half of the robustness contract in
// net/protocol.h), and live loopback serving over TcpServer — including
// the headline parity property: logits served over the socket are
// BIT-identical to direct Engine::submit results, for exact and LUT
// {fp32,int32} backends, under 4 concurrent client connections. Also pins
// the wire error taxonomy 1:1 against the serve layer's exceptions, the
// stats verb, and the composition of socket-layer shed-before-parse with
// PR 5 admission control (client-observed kOverloaded == pre-parse sheds
// + ledger overload rejections, exactly).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "approx/linear_lut.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/tcp_server.h"
#include "numerics/math.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "transformer/infer.h"

namespace nnlut::net {
namespace {

using namespace std::chrono_literals;
using namespace nnlut::transformer;

// ----------------------------------------------------------- codec ------

TEST(Protocol, HeaderRoundTrip) {
  FrameHeader h;
  h.type = FrameType::kResult;
  h.payload_len = 0xDEADBEEF;
  h.request_id = 0x0123456789ABCDEFull;
  std::uint8_t buf[kHeaderSize];
  encode_header(h, buf);

  FrameHeader out;
  ASSERT_EQ(decode_header(buf, out), HeaderStatus::kOk);
  EXPECT_EQ(out.type, h.type);
  EXPECT_EQ(out.payload_len, h.payload_len);
  EXPECT_EQ(out.request_id, h.request_id);

  // The wire layout is fixed little-endian, not host-endian.
  EXPECT_EQ(buf[0], 'N');
  EXPECT_EQ(buf[1], 'L');
  EXPECT_EQ(buf[2], 'U');
  EXPECT_EQ(buf[3], 'T');
  EXPECT_EQ(buf[4], kProtocolVersion);
  EXPECT_EQ(buf[8], 0xEF);  // payload_len LSB first
  EXPECT_EQ(buf[12], 0xEF);  // request_id LSB first

  // Each class of header corruption maps to its own status.
  std::uint8_t bad[kHeaderSize];
  std::memcpy(bad, buf, kHeaderSize);
  bad[0] ^= 0xFF;
  EXPECT_EQ(decode_header(bad, out), HeaderStatus::kBadMagic);
  std::memcpy(bad, buf, kHeaderSize);
  bad[4] = kProtocolVersion + 1;
  EXPECT_EQ(decode_header(bad, out), HeaderStatus::kBadVersion);
  std::memcpy(bad, buf, kHeaderSize);
  bad[5] = 0xEE;  // not a FrameType value
  EXPECT_EQ(decode_header(bad, out), HeaderStatus::kBadType);
  std::memcpy(bad, buf, kHeaderSize);
  bad[6] = 1;  // reserved bits must be zero until a later version uses them
  EXPECT_EQ(decode_header(bad, out), HeaderStatus::kBadReserved);
}

TEST(Protocol, SubmitRoundTripAndPeek) {
  SubmitFrame f;
  f.model_id = "nnlut-int32";
  f.input.batch = 2;
  f.input.seq = 3;
  f.input.token_ids = {1, 2, 3, 4, 5, 6};
  f.input.type_ids = {0, 0, 1, 0, 1, 1};
  std::vector<std::uint8_t> payload;
  encode_submit(f, payload);

  EXPECT_EQ(peek_submit_model(payload), "nnlut-int32");
  const SubmitFrame out = decode_submit(payload);
  EXPECT_EQ(out.model_id, f.model_id);
  EXPECT_EQ(out.input.batch, f.input.batch);
  EXPECT_EQ(out.input.seq, f.input.seq);
  EXPECT_EQ(out.input.token_ids, f.input.token_ids);
  EXPECT_EQ(out.input.type_ids, f.input.type_ids);

  // Without type ids (the common case): n_types == 0 on the wire.
  f.input.type_ids.clear();
  encode_submit(f, payload);
  const SubmitFrame out2 = decode_submit(payload);
  EXPECT_TRUE(out2.input.type_ids.empty());
  EXPECT_EQ(out2.input.token_ids, f.input.token_ids);
}

TEST(Protocol, ResultRoundTripIsBitExact) {
  // Floats cross the wire as raw IEEE-754 bit patterns: NaN payloads,
  // signed zero and denormals must survive untouched — the socket is not
  // allowed to be a rounding step.
  Tensor t({2, 3});
  const std::uint32_t patterns[6] = {
      0x7FC00001u,  // quiet NaN with payload bits
      0x80000000u,  // -0.0
      0x00000001u,  // smallest denormal
      0x7F7FFFFFu,  // FLT_MAX
      0xFF800000u,  // -inf
      0x3F9D70A4u,  // 1.23
  };
  for (std::size_t i = 0; i < 6; ++i)
    std::memcpy(&t[i], &patterns[i], sizeof(float));

  std::vector<std::uint8_t> payload;
  encode_result(t, payload);
  const Tensor out = decode_result(payload);
  ASSERT_EQ(out.shape(), t.shape());
  for (std::size_t i = 0; i < 6; ++i) {
    const float v = out[i];
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(float));
    EXPECT_EQ(bits, patterns[i]) << "element " << i;
  }
}

TEST(Protocol, ErrorCancelAckTextRoundTrip) {
  std::vector<std::uint8_t> payload;
  encode_error({ErrorCode::kOverloaded, "queue at depth"}, payload);
  const ErrorFrame e = decode_error(payload);
  EXPECT_EQ(e.code, ErrorCode::kOverloaded);
  EXPECT_EQ(e.message, "queue at depth");

  encode_cancel_ack(true, payload);
  EXPECT_TRUE(decode_cancel_ack(payload));
  encode_cancel_ack(false, payload);
  EXPECT_FALSE(decode_cancel_ack(payload));

  encode_text("nnlut_requests_total 3\n", payload);
  EXPECT_EQ(decode_text(payload), "nnlut_requests_total 3\n");
}

TEST(Protocol, MakeFrameLaysHeaderThenPayload) {
  std::vector<std::uint8_t> payload;
  encode_cancel_ack(true, payload);
  const auto frame = make_frame(FrameType::kCancelAck, 42, payload);
  ASSERT_EQ(frame.size(), kHeaderSize + payload.size());
  FrameHeader h;
  ASSERT_EQ(decode_header(frame.data(), h), HeaderStatus::kOk);
  EXPECT_EQ(h.type, FrameType::kCancelAck);
  EXPECT_EQ(h.request_id, 42u);
  EXPECT_EQ(h.payload_len, payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         frame.begin() + kHeaderSize));
}

// ------------------------------------------------------ decoder fuzz ----

/// Every structural decoder must be TOTAL on arbitrary bytes: success or
/// ProtocolError, never a crash, another exception type, or an
/// attacker-length allocation. Exercised with a fixed seed so a failure
/// reproduces exactly.
template <typename Fn>
void expect_total(const std::vector<std::uint8_t>& bytes, Fn&& decode,
                  const char* what) {
  try {
    decode(std::span<const std::uint8_t>(bytes));
  } catch (const ProtocolError&) {
    // the only licensed failure mode
  } catch (const std::exception& e) {
    FAIL() << what << " threw non-protocol exception on " << bytes.size()
           << " fuzz bytes: " << e.what();
  }
}

TEST(ProtocolFuzz, DecodersTotalOnArbitraryBytes) {
  Rng rng(9001);
  for (int iter = 0; iter < 4000; ++iter) {
    const std::size_t len =
        static_cast<std::size_t>(rng.uniform_int(0, 160));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    expect_total(bytes, [](auto s) { decode_submit(s); }, "decode_submit");
    expect_total(bytes, [](auto s) { peek_submit_model(s); },
                 "peek_submit_model");
    expect_total(bytes, [](auto s) { decode_result(s); }, "decode_result");
    expect_total(bytes, [](auto s) { decode_error(s); }, "decode_error");
    expect_total(bytes, [](auto s) { decode_cancel_ack(s); },
                 "decode_cancel_ack");
    expect_total(bytes, [](auto s) { decode_text(s); }, "decode_text");
    if (len >= kHeaderSize) {
      FrameHeader h;
      decode_header(bytes.data(), h);  // never throws, whatever the bytes
    }
  }
}

TEST(ProtocolFuzz, EveryTruncationOfValidPayloadsThrows) {
  SubmitFrame f;
  f.model_id = "m";
  f.input.batch = 2;
  f.input.seq = 2;
  f.input.token_ids = {1, 2, 3, 4};
  f.input.type_ids = {0, 1, 0, 1};
  std::vector<std::uint8_t> submit;
  encode_submit(f, submit);
  for (std::size_t cut = 0; cut < submit.size(); ++cut) {
    std::vector<std::uint8_t> trunc(submit.begin(),
                                    submit.begin() +
                                        static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(decode_submit(trunc), ProtocolError) << "cut " << cut;
  }
  // Trailing garbage is as structural as truncation: lengths must account
  // for every byte.
  std::vector<std::uint8_t> padded = submit;
  padded.push_back(0);
  EXPECT_THROW(decode_submit(padded), ProtocolError);

  Tensor t({2, 2});
  for (std::size_t i = 0; i < 4; ++i) t[i] = static_cast<float>(i);
  std::vector<std::uint8_t> result;
  encode_result(t, result);
  for (std::size_t cut = 0; cut < result.size(); ++cut) {
    std::vector<std::uint8_t> trunc(result.begin(),
                                    result.begin() +
                                        static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(decode_result(trunc), ProtocolError) << "cut " << cut;
  }
  result.push_back(0);
  EXPECT_THROW(decode_result(result), ProtocolError);
}

TEST(ProtocolFuzz, ZeroLengthAndClaimedLengthBombs) {
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(decode_submit(empty), ProtocolError);
  EXPECT_THROW(decode_result(empty), ProtocolError);
  EXPECT_THROW(decode_error(empty), ProtocolError);
  EXPECT_THROW(decode_cancel_ack(empty), ProtocolError);
  EXPECT_EQ(decode_text(empty), "");

  // A tiny payload claiming a huge element count must throw from the
  // length check, never allocate the claimed amount: counts are validated
  // against the bytes actually present before any reserve.
  std::vector<std::uint8_t> bomb = {
      0x01, 0x00, 'm',                     // model_id "m"
      0xFF, 0xFF, 0xFF, 0x7F,              // batch (absurd)
      0xFF, 0xFF, 0xFF, 0x7F,              // seq
      0xFF, 0xFF, 0xFF, 0x7F,              // n_tokens ~2^31
  };
  EXPECT_THROW(decode_submit(bomb), ProtocolError);

  std::vector<std::uint8_t> result_bomb = {
      0x02, 0x00, 0x00, 0x00,              // rank 2
      0xFF, 0xFF, 0xFF, 0x7F,              // dim0 ~2^31
      0xFF, 0xFF, 0xFF, 0x7F,              // dim1 ~2^31 (product overflows)
  };
  EXPECT_THROW(decode_result(result_bomb), ProtocolError);

  // Model ids over the decoder cap are structural violations too.
  std::vector<std::uint8_t> long_id;
  const std::uint16_t n = kMaxModelIdLen + 1;
  long_id.push_back(static_cast<std::uint8_t>(n & 0xFF));
  long_id.push_back(static_cast<std::uint8_t>(n >> 8));
  long_id.insert(long_id.end(), n, 'x');
  EXPECT_THROW(peek_submit_model(long_id), ProtocolError);
}

// ------------------------------------------------- loopback serving -----

ModelConfig tiny() {
  ModelConfig c = ModelConfig::roberta_like();
  c.vocab = 32;
  c.hidden = 16;
  c.layers = 2;
  c.heads = 2;
  c.ffn = 32;
  c.max_seq = 12;
  return c;
}

LutSet tiny_luts() {
  return {fit_linear_lut(gelu_exact, kGeluRange, 32),
          fit_linear_lut(exp_exact, {-16.0f, 0.0f}, 32),
          fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 64.0f}, 32,
                                   BreakpointMode::kExponential),
          fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 32,
                                   BreakpointMode::kExponential)};
}

BatchInput random_request(const ModelConfig& cfg, std::size_t batch,
                          std::size_t seq, Rng& rng) {
  BatchInput in;
  in.batch = batch;
  in.seq = seq;
  in.token_ids.resize(batch * seq);
  for (int& t : in.token_ids)
    t = rng.uniform_int(0, static_cast<int>(cfg.vocab) - 1);
  return in;
}

/// After every session is closed and the engine drained, the net layer's
/// own ledger must reconcile exactly: each forwarded submit resolved
/// through its on_ready callback exactly once, as either an enqueued
/// response or a dropped one. Zero unaccounted requests is the whole
/// point of the chaos hardening.
void expect_net_identity(const NetStats& s) {
  EXPECT_EQ(s.submits_forwarded,
            s.completions_enqueued + s.responses_dropped);
}

TEST(NetLoopback, ServedBitsIdenticalToDirectForAllBackends) {
  Rng rng(71);
  TaskModel model(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities exact(model.config().act);
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::all();
  auto lut_fp32 = make_lut_backend(tiny_luts(), LutPrecision::kFp32, opt);
  auto lut_int32 = make_lut_backend(tiny_luts(), LutPrecision::kInt32, opt);

  struct SlotCase {
    const char* id;
    NonlinearitySet* nl;
  };
  const SlotCase cases[] = {{"exact", &exact},
                            {"lut-fp32", lut_fp32.get()},
                            {"lut-int32", lut_int32.get()}};

  std::vector<BatchInput> requests;
  Rng req_rng(72);
  for (int i = 0; i < 8; ++i)
    requests.push_back(random_request(tiny(), 1 + i % 2, 8, req_rng));

  // Reference: direct in-process calls, single orchestrator.
  runtime::set_runtime_config({2});
  std::vector<std::vector<Tensor>> direct(std::size(cases));
  for (std::size_t s = 0; s < std::size(cases); ++s) {
    InferenceModel infer(model, *cases[s].nl);
    for (const BatchInput& in : requests)
      direct[s].push_back(infer.logits(in));
  }

  std::vector<std::vector<Tensor>> served(std::size(cases));
  for (auto& v : served) v.resize(requests.size());
  {
    serve::Engine engine(serve::EngineConfig{/*threads=*/2});
    serve::SlotConfig scfg;
    scfg.max_batch = 4;
    scfg.max_wait = 2ms;
    for (const SlotCase& c : cases)
      engine.register_model(c.id, model, *c.nl, scfg);
    TcpServer server(engine);

    // 4 concurrent client connections, each submitting its share of every
    // backend's requests with all of them in flight before awaiting — so
    // completions genuinely arrive out of order and the demux must route
    // by request id.
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 4; ++c) {
      clients.emplace_back([&, c] {
        Client client("127.0.0.1", server.port());
        std::vector<std::pair<std::uint64_t, std::pair<std::size_t,
                                                       std::size_t>>> ids;
        for (std::size_t s = 0; s < std::size(cases); ++s)
          for (std::size_t i = c; i < requests.size(); i += 4)
            ids.push_back({client.submit(cases[s].id, requests[i]), {s, i}});
        for (const auto& [id, si] : ids) {
          Completion done = client.await(id);
          ASSERT_TRUE(done.ok) << done.message;
          served[si.first][si.second] = std::move(done.logits);
        }
      });
    }
    for (auto& t : clients) t.join();

    const NetStats net = server.stats();
    EXPECT_EQ(net.connections_accepted, 4u);
    EXPECT_EQ(net.submits_forwarded,
              requests.size() * std::size(cases));
    EXPECT_EQ(net.completions_enqueued,
              requests.size() * std::size(cases));
    EXPECT_EQ(net.responses_dropped, 0u);
    EXPECT_EQ(net.protocol_errors, 0u);
    server.stop();
    expect_net_identity(server.stats());
    EXPECT_EQ(server.open_connections(), 0u);

    for (const SlotCase& c : cases) {
      const serve::SlotStats s = engine.model_stats(c.id);
      EXPECT_EQ(s.submitted, requests.size()) << c.id;
      EXPECT_EQ(s.completed, requests.size()) << c.id;
      EXPECT_EQ(s.failed, 0u) << c.id;
    }
  }
  runtime::set_runtime_config({});

  for (std::size_t s = 0; s < std::size(cases); ++s)
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ASSERT_EQ(served[s][i].shape(), direct[s][i].shape())
          << cases[s].id << " request " << i;
      for (std::size_t j = 0; j < served[s][i].size(); ++j) {
        // Bitwise, not ==: NaNs and signed zeros must match too.
        std::uint32_t sb = 0, db = 0;
        std::memcpy(&sb, &served[s][i][j], sizeof(float));
        std::memcpy(&db, &direct[s][i][j], sizeof(float));
        ASSERT_EQ(sb, db) << cases[s].id << " request " << i << " elem " << j;
      }
    }
}

TEST(NetLoopback, StatsVerbServesTheScrapePage) {
  Rng rng(73);
  TaskModel model(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(model.config().act);
  serve::Engine engine(serve::EngineConfig{/*threads=*/1});
  engine.register_model("m", model, nl);
  TcpServer server(engine);

  Client client("127.0.0.1", server.port());
  const std::string page = client.stats();
  // The page is the engine's own scrape: slot families AND the net
  // families the server hung onto the same registry, labeled by port.
  EXPECT_NE(page.find("model=\"m\""), std::string::npos);
  EXPECT_NE(page.find("nnlut_net_connections_total"), std::string::npos);
  EXPECT_NE(page.find("listen=\"" + std::to_string(server.port()) + "\""),
            std::string::npos);

  // stop() deregisters the net families: a later scrape has no trace of
  // this server (fresh instances on a reused port never double-register).
  server.stop();
  const std::string after = engine.scrape();
  EXPECT_EQ(after.find("nnlut_net_"), std::string::npos);
  EXPECT_NE(after.find("model=\"m\""), std::string::npos);
  runtime::set_runtime_config({});
}

TEST(NetLoopback, WireErrorTaxonomyMatchesServeLayer) {
  Rng rng(74);
  TaskModel model(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(model.config().act);
  serve::Engine engine(serve::EngineConfig{/*threads=*/1});
  engine.register_model("m", model, nl);
  TcpServer server(engine);
  Client client("127.0.0.1", server.port());

  // Unknown model id -> std::out_of_range in process -> kOutOfRange on
  // the wire.
  const auto ghost = client.submit("ghost", random_request(tiny(), 1, 4, rng));
  Completion c = client.await(ghost);
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.code, ErrorCode::kOutOfRange);

  // Validation reject (empty request) -> std::invalid_argument ->
  // kInvalidArgument.
  BatchInput empty;
  empty.batch = 0;
  empty.seq = 0;
  const auto invalid = client.submit("m", empty);
  c = client.await(invalid);
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.code, ErrorCode::kInvalidArgument);

  // Token id outside the vocab -> std::out_of_range.
  BatchInput bad_tok = random_request(tiny(), 1, 4, rng);
  bad_tok.token_ids[0] = 10'000;
  const auto oob = client.submit("m", bad_tok);
  c = client.await(oob);
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.code, ErrorCode::kOutOfRange);

  // Garbage submit payload: structural decode failure -> kMalformedFrame,
  // framing intact (the connection keeps serving).
  const std::vector<std::uint8_t> garbage = {0xFF, 0xFF, 0x01, 0x02};
  auto frame = make_frame(FrameType::kSubmit, 90, garbage);
  client.send_raw(frame.data(), frame.size());
  c = client.await(90);
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.code, ErrorCode::kMalformedFrame);

  // A client sending a server-bound type is a direction violation.
  std::vector<std::uint8_t> ack;
  encode_cancel_ack(true, ack);
  frame = make_frame(FrameType::kCancelAck, 91, ack);
  client.send_raw(frame.data(), frame.size());
  c = client.await(91);
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.code, ErrorCode::kMalformedFrame);

  // Cancel of an id that is not in flight acks false.
  EXPECT_FALSE(client.cancel(4242));

  // The connection survived every payload-level error above.
  const auto alive = client.submit("m", random_request(tiny(), 1, 4, rng));
  c = client.await(alive);
  EXPECT_TRUE(c.ok);

  server.stop();
  const NetStats net = server.stats();
  expect_net_identity(net);
  EXPECT_GE(net.protocol_errors, 2u);
  EXPECT_EQ(net.cancels, 1u);
  runtime::set_runtime_config({});
}

TEST(NetLoopback, OversizedPayloadGetsFrameTooLargeThenDisconnect) {
  Rng rng(75);
  TaskModel model(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(model.config().act);
  serve::Engine engine(serve::EngineConfig{/*threads=*/1});
  engine.register_model("m", model, nl);
  TcpServerConfig cfg;
  cfg.max_payload_bytes = 1024;
  TcpServer server(engine, cfg);
  Client client("127.0.0.1", server.port());

  // Header claims a payload over the server bound; the server must answer
  // kFrameTooLarge WITHOUT reading (or allocating) the claimed bytes, then
  // close. No payload is ever sent — proof it was not waited for.
  FrameHeader h;
  h.type = FrameType::kSubmit;
  h.payload_len = 1025;
  h.request_id = 7;
  std::uint8_t hdr[kHeaderSize];
  encode_header(h, hdr);
  client.send_raw(hdr, kHeaderSize);

  Completion c = client.await(7);
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.code, ErrorCode::kFrameTooLarge);
  EXPECT_THROW(client.await(8, 5000ms), ConnectionClosed);

  server.stop();
  expect_net_identity(server.stats());
  EXPECT_EQ(server.stats().protocol_errors, 1u);
  runtime::set_runtime_config({});
}

TEST(NetLoopback, GarbageMagicDisconnectsWithoutReply) {
  Rng rng(76);
  TaskModel model(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(model.config().act);
  serve::Engine engine(serve::EngineConfig{/*threads=*/1});
  engine.register_model("m", model, nl);
  TcpServer server(engine);
  Client client("127.0.0.1", server.port());

  // 20 bytes of not-our-protocol: the peer gets silence and a close, never
  // a reply to echo back at some other protocol's parser.
  const std::uint8_t junk[kHeaderSize] = {'G', 'E', 'T', ' ', '/', ' ', 'H',
                                          'T', 'T', 'P', '/', '1', '.', '1',
                                          '\r', '\n', '\r', '\n', 0, 0};
  client.send_raw(junk, kHeaderSize);
  EXPECT_THROW(client.await(1, 5000ms), ConnectionClosed);
  EXPECT_EQ(client.pending_completions(), 0u);

  server.stop();
  EXPECT_EQ(server.stats().protocol_errors, 1u);
  expect_net_identity(server.stats());
  runtime::set_runtime_config({});
}

TEST(NetLoopback, ShedBeforeParseComposesWithAdmissionControl) {
  // A bounded slot under deliberate overload, hammered through the socket:
  // every request resolves as ok or kOverloaded (nothing hangs, nothing
  // else), and the overload refusals decompose EXACTLY into the two
  // backpressure layers: socket-level pre-parse sheds plus the queue's own
  // admission rejections. completed must likewise equal the ledger's.
  Rng rng(77);
  TaskModel model(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(model.config().act);
  serve::Engine engine(serve::EngineConfig{/*threads=*/2});
  serve::SlotConfig scfg;
  scfg.max_batch = 1;  // drain one at a time: keeps the queue contended
  scfg.max_wait = std::chrono::microseconds(100);
  scfg.admission = {/*max_queue_depth=*/1, serve::ShedPolicy::kRejectNew};
  engine.register_model("bounded", model, nl, scfg);
  TcpServer server(engine);

  constexpr std::size_t kClients = 4, kPerClient = 25;
  std::atomic<std::uint64_t> ok_seen{0}, overloaded_seen{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client("127.0.0.1", server.port());
      Rng crng(100 + static_cast<int>(c));
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const auto id =
            client.submit("bounded", random_request(tiny(), 1, 8, crng));
        const Completion done = client.await(id);
        if (done.ok) {
          ok_seen.fetch_add(1);
        } else {
          ASSERT_EQ(done.code, ErrorCode::kOverloaded) << done.message;
          overloaded_seen.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.stop();

  const NetStats net = server.stats();
  const serve::SlotStats slot = engine.model_stats("bounded");
  EXPECT_EQ(ok_seen.load() + overloaded_seen.load(), kClients * kPerClient);
  EXPECT_EQ(ok_seen.load(), slot.completed);
  // The two shed layers and only they produce kOverloaded completions.
  EXPECT_EQ(overloaded_seen.load(),
            net.sheds_preparse + slot.rejected_overload);
  // Everything the socket forwarded reached the queue's own accounting.
  EXPECT_EQ(net.submits_forwarded,
            slot.submitted + slot.rejected_overload + slot.rejected_validation
                + slot.rejected_shutdown);
  expect_net_identity(net);
  runtime::set_runtime_config({});
}

}  // namespace
}  // namespace nnlut::net
