#include <gtest/gtest.h>

#include "accel/simulator.h"
#include "accel/workload.h"

namespace nnlut::accel {
namespace {

TEST(Workload, RobertaOpCounts) {
  const BertShape sh = BertShape::roberta_base();
  const auto ops = build_roberta_ops(sh, 128);
  // 2 embedding ops + 12 layers x 14 ops + 2 pooler ops.
  EXPECT_EQ(ops.size(), 2u + 12u * 14u + 2u);
}

TEST(Workload, MacCountMatchesAnalyticFormula) {
  const BertShape sh = BertShape::roberta_base();
  const std::size_t S = 64;
  const auto ops = build_roberta_ops(sh, S);
  // Per layer: 4 * S*H*H + 2 * S*S*H + 2 * S*H*F ; plus pooler H*H.
  const double H = 768, F = 3072, L = 12;
  const double per_layer = 4 * S * H * H + 2.0 * S * S * H + 2 * S * H * F;
  EXPECT_NEAR(total_macs(ops), L * per_layer + H * H, 1.0);
}

TEST(Simulator, MatmulCyclesMatchThroughput) {
  AcceleratorConfig cfg;
  const CycleSimulator sim(cfg, nnlut_sfu_timing());
  // 2048 MACs/cycle total; a [64, 768] x [768, 768] matmul:
  const Op op = Op::matmul("m", 64, 768, 768);
  const double macs = 64.0 * 768 * 768;
  EXPECT_NEAR(sim.op_cycles(op), macs / 2048.0, 2.0);
}

TEST(Simulator, MatmulCeilsPartialTiles) {
  AcceleratorConfig cfg;
  const CycleSimulator sim(cfg, nnlut_sfu_timing());
  // K = 8 still costs a full 16-wide dot slot.
  const Op small = Op::matmul("m", 1, 8, 1);
  EXPECT_GE(sim.op_cycles(small), 1.0);
}

TEST(Simulator, NnlutSoftmaxFasterThanIbert) {
  AcceleratorConfig cfg;
  const CycleSimulator ib(cfg, ibert_sfu_timing());
  const CycleSimulator nn(cfg, nnlut_sfu_timing());
  const Op sm = Op::elementwise(OpKind::kSoftmax, "sm", 12 * 128, 128);
  EXPECT_GT(ib.op_cycles(sm), nn.op_cycles(sm) * 1.5);
}

TEST(Simulator, BreakdownSumsToTotal) {
  AcceleratorConfig cfg;
  const CycleSimulator sim(cfg, nnlut_sfu_timing());
  const auto ops = build_roberta_ops(BertShape::roberta_base(), 64);
  const Breakdown b = sim.run(ops);
  EXPECT_GT(b.matmul, 0.0);
  EXPECT_GT(b.gelu, 0.0);
  EXPECT_GT(b.layernorm, 0.0);
  EXPECT_GT(b.softmax, 0.0);
  EXPECT_GT(b.etc, 0.0);
  const double pct = b.percent(b.gelu) + b.percent(b.layernorm) +
                     b.percent(b.softmax) + b.percent(b.matmul) +
                     b.percent(b.etc);
  EXPECT_NEAR(pct, 100.0, 1e-6);
}

TEST(SystemComparison, SpeedupGrowsWithSequenceLength) {
  // Paper Table 5: speedup rises from 1.08 (SL=16) to 1.26 (SL=1024).
  AcceleratorConfig cfg;
  const BertShape sh = BertShape::roberta_base();
  double prev = 1.0;
  for (std::size_t seq : {16u, 64u, 256u, 1024u}) {
    const SystemComparison c = compare_at_seq(sh, seq, cfg);
    EXPECT_GT(c.speedup, 1.0) << seq;
    EXPECT_GE(c.speedup, prev - 1e-6) << seq;
    prev = c.speedup;
  }
}

TEST(SystemComparison, SpeedupInPaperNeighbourhood) {
  AcceleratorConfig cfg;
  const BertShape sh = BertShape::roberta_base();
  const SystemComparison s16 = compare_at_seq(sh, 16, cfg);
  EXPECT_NEAR(s16.speedup, 1.08, 0.06);
  const SystemComparison s1024 = compare_at_seq(sh, 1024, cfg);
  EXPECT_NEAR(s1024.speedup, 1.26, 0.12);
}

TEST(SystemComparison, SoftmaxShareGrowsQuadratically) {
  // Softmax work is O(S^2) vs matmul O(S) at small S: its share must grow
  // with sequence length for both backends (paper: 1.36% -> 27.49% for
  // I-BERT, 0.59% -> 13.85% for NN-LUT).
  AcceleratorConfig cfg;
  const BertShape sh = BertShape::roberta_base();
  const SystemComparison s16 = compare_at_seq(sh, 16, cfg);
  const SystemComparison s1024 = compare_at_seq(sh, 1024, cfg);

  EXPECT_GT(s1024.ibert.percent(s1024.ibert.softmax),
            5.0 * s16.ibert.percent(s16.ibert.softmax));
  EXPECT_GT(s1024.nnlut.percent(s1024.nnlut.softmax),
            5.0 * s16.nnlut.percent(s16.nnlut.softmax));
  // And I-BERT's softmax share exceeds NN-LUT's at every length.
  EXPECT_GT(s1024.ibert.percent(s1024.ibert.softmax),
            s1024.nnlut.percent(s1024.nnlut.softmax));
}

TEST(SystemComparison, NonlinearShareLowerForNnlut) {
  AcceleratorConfig cfg;
  const BertShape sh = BertShape::roberta_base();
  for (std::size_t seq : {16u, 128u, 1024u}) {
    const SystemComparison c = compare_at_seq(sh, seq, cfg);
    const double nl_i = c.ibert.gelu + c.ibert.layernorm + c.ibert.softmax;
    const double nl_n = c.nnlut.gelu + c.nnlut.layernorm + c.nnlut.softmax;
    EXPECT_GT(nl_i, nl_n) << seq;
  }
}

TEST(SystemComparison, MatmulCyclesIdenticalAcrossBackends) {
  // The MAC-array work does not depend on the SFU flavour.
  AcceleratorConfig cfg;
  const SystemComparison c =
      compare_at_seq(BertShape::roberta_base(), 128, cfg);
  EXPECT_NEAR(c.ibert.matmul, c.nnlut.matmul, 1.0);
}

}  // namespace
}  // namespace nnlut::accel
