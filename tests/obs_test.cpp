// Unit tests for the observability layer (src/obs/): SpanRing wraparound
// with exact dropped accounting, TraceRecorder session semantics and Chrome
// trace-event JSON export, cross-thread span correlation by request id, and
// the MetricsRegistry Prometheus exposition (golden-format test).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_ring.h"

namespace nnlut::obs {
namespace {

std::size_t count_occurrences(const std::string& hay, const std::string& s) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(s); pos != std::string::npos;
       pos = hay.find(s, pos + s.size()))
    ++n;
  return n;
}

// ------------------------------------------------------------- SpanRing ---

TEST(SpanRing, WraparoundKeepsNewestAndCountsDroppedExactly) {
  TraceEvent storage[8];
  SpanRing ring;
  ring.reset(storage, 8);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);

  for (std::uint64_t i = 0; i < 20; ++i)
    ring.push(TraceEvent{"e", i, 0, i, EventKind::kInstant});

  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.pushed(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);  // exact: pushed - size
  // Overwrite-oldest: the retained window is the NEWEST 8, oldest first.
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(ring.at(i).id, 12u + i);
}

TEST(SpanRing, BelowCapacityDropsNothing) {
  TraceEvent storage[8];
  SpanRing ring;
  ring.reset(storage, 8);
  for (std::uint64_t i = 0; i < 5; ++i)
    ring.push(TraceEvent{"e", i, 0, i, EventKind::kInstant});
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ring.at(i).id, i);
}

TEST(SpanRing, ZeroCapacityCountsButRetainsNothing) {
  SpanRing ring;
  ring.reset(nullptr, 0);
  ring.push(TraceEvent{"e", 0, 0, 0, EventKind::kInstant});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.pushed(), 1u);
  EXPECT_EQ(ring.dropped(), 1u);
}

// -------------------------------------------------------- TraceRecorder ---

TEST(TraceRecorder, DisabledPathRecordsNothing) {
  TraceRecorder& rec = TraceRecorder::instance();
  rec.enable(16);
  rec.disable();
  EXPECT_FALSE(trace_enabled());
  instant("never", 1);
  { ScopedSpan span("never.span", 2); }
  const TraceRecorder::Stats s = rec.stats();
  EXPECT_EQ(s.recorded, 0u);
  EXPECT_EQ(s.dropped, 0u);
}

TEST(TraceRecorder, DroppedCountIsExactAcrossRingOverflow) {
  TraceRecorder& rec = TraceRecorder::instance();
  rec.enable(/*events_per_thread=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) instant("overflow", i);
  rec.disable();
  const TraceRecorder::Stats s = rec.stats();
  EXPECT_EQ(s.threads, 1u);
  EXPECT_EQ(s.recorded, 10u);
  EXPECT_EQ(s.dropped, 6u);  // 10 pushed, ring holds 4
}

TEST(TraceRecorder, ExportEmitsChromeTraceEventStructure) {
  TraceRecorder& rec = TraceRecorder::instance();
  rec.enable(64);
  { ScopedSpan span("unit.span", 7); }
  instant("unit.instant", 9);
  rec.disable();

  std::ostringstream os;
  rec.export_json(os);
  const std::string j = os.str();

  // Object form of the trace-event format, with metadata first.
  EXPECT_EQ(j.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(j.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"thread_name\""), std::string::npos);
  // The complete span: ph X with ts/dur and its correlation id.
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"unit.span\""), std::string::npos);
  EXPECT_NE(j.find("\"args\":{\"id\":7}"), std::string::npos);
  // The instant: ph i, thread-scoped.
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"unit.instant\""), std::string::npos);
  EXPECT_NE(j.find("\"s\":\"t\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity; CI json.load()s the
  // serving example's trace for the real parse check.
  EXPECT_EQ(count_occurrences(j, "{"), count_occurrences(j, "}"));
  EXPECT_EQ(count_occurrences(j, "["), count_occurrences(j, "]"));
}

TEST(TraceRecorder, CrossThreadSpansCorrelateByRequestId) {
  TraceRecorder& rec = TraceRecorder::instance();
  rec.enable(64);
  // "Client" thread announces the request...
  instant("req.submit", 42);
  // ...and a "scheduler" thread later replays its lifecycle span.
  std::thread scheduler([] {
    const std::uint64_t now = trace_now_ns();
    complete("req.exec", now > 1000 ? now - 1000 : 0, now, 42);
  });
  scheduler.join();
  rec.disable();

  EXPECT_EQ(rec.stats().threads, 2u);
  std::ostringstream os;
  rec.export_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"name\":\"req.submit\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"req.exec\""), std::string::npos);
  // Both events carry the same correlation id, from two different rings.
  EXPECT_EQ(count_occurrences(j, "\"args\":{\"id\":42}"), 2u);
}

TEST(TraceRecorder, EnableStartsAFreshSession) {
  TraceRecorder& rec = TraceRecorder::instance();
  rec.enable(16);
  instant("old", 1);
  rec.enable(16);  // drops the previous session's rings
  instant("new", 2);
  rec.disable();
  const TraceRecorder::Stats s = rec.stats();
  EXPECT_EQ(s.recorded, 1u);
  std::ostringstream os;
  rec.export_json(os);
  EXPECT_EQ(os.str().find("\"name\":\"old\""), std::string::npos);
  EXPECT_NE(os.str().find("\"name\":\"new\""), std::string::npos);
}

// ------------------------------------------------------ MetricsRegistry ---

// Golden-format test: pins the exact Prometheus text exposition — HELP/TYPE
// lines, label rendering, cumulative histogram buckets with the +Inf bucket
// equal to _count, and integral value formatting.
TEST(MetricsRegistry, ScrapeGoldenFormat) {
  MetricsRegistry reg;
  reg.add_counter("test_requests_total", "Requests served.",
                  {{"model", "m"}, {"outcome", "completed"}},
                  [] { return std::uint64_t{42}; });
  reg.add_gauge("test_queue_depth", "Requests queued.", {},
                [] { return 3.0; });
  reg.add_histogram("test_latency_us", "Latency (µs).", {{"model", "m"}},
                    [] {
                      HistogramSnapshot h;
                      h.upper_bounds = {2.0, 4.0};
                      h.counts = {1, 2, 3};  // last entry = +Inf overflow
                      h.sum = 50.0;
                      h.count = 6;
                      return h;
                    });

  const std::string expected =
      "# HELP test_requests_total Requests served.\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total{model=\"m\",outcome=\"completed\"} 42\n"
      "# HELP test_queue_depth Requests queued.\n"
      "# TYPE test_queue_depth gauge\n"
      "test_queue_depth 3\n"
      "# HELP test_latency_us Latency (µs).\n"
      "# TYPE test_latency_us histogram\n"
      "test_latency_us_bucket{model=\"m\",le=\"2\"} 1\n"
      "test_latency_us_bucket{model=\"m\",le=\"4\"} 3\n"
      "test_latency_us_bucket{model=\"m\",le=\"+Inf\"} 6\n"
      "test_latency_us_sum{model=\"m\"} 50\n"
      "test_latency_us_count{model=\"m\"} 6\n";
  EXPECT_EQ(reg.scrape(), expected);
}

TEST(MetricsRegistry, SeriesShareAFamilyAndLabelValuesEscape) {
  MetricsRegistry reg;
  reg.add_counter("shared_total", "Shared family.", {{"k", "a"}},
                  [] { return std::uint64_t{1}; });
  reg.add_counter("shared_total", "ignored on re-registration", {{"k", "b\"c"}},
                  [] { return std::uint64_t{2}; });
  const std::string out = reg.scrape();
  // One HELP/TYPE block, two series; the quote in the label value escapes.
  EXPECT_EQ(count_occurrences(out, "# HELP shared_total"), 1u);
  EXPECT_NE(out.find("shared_total{k=\"a\"} 1"), std::string::npos);
  EXPECT_NE(out.find("shared_total{k=\"b\\\"c\"} 2"), std::string::npos);
}

TEST(MetricsRegistry, RejectsDuplicatesAndKindConflicts) {
  MetricsRegistry reg;
  reg.add_counter("c_total", "c", {{"k", "v"}}, [] { return std::uint64_t{0}; });
  EXPECT_THROW(reg.add_counter("c_total", "c", {{"k", "v"}},
                               [] { return std::uint64_t{0}; }),
               std::invalid_argument);
  EXPECT_THROW(reg.add_gauge("c_total", "c", {}, [] { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(reg.add_counter("", "empty", {}, [] { return std::uint64_t{0}; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace nnlut::obs
