#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ibert/ibert_kernels.h"
#include "ibert/quantization.h"
#include "numerics/math.h"
#include "numerics/rng.h"

namespace nnlut::ibert {
namespace {

using nnlut::Rng;

// ---------------------------------------------------------------- i_sqrt ---

TEST(ISqrt, MatchesFloorSqrtExhaustiveSmall) {
  for (std::int64_t n = 0; n <= 10000; ++n) {
    const auto expect = static_cast<std::int64_t>(std::floor(std::sqrt(
        static_cast<double>(n))));
    EXPECT_EQ(i_sqrt(n), expect) << n;
  }
}

TEST(ISqrt, LargeValues) {
  for (std::int64_t n :
       {std::int64_t{1} << 20, std::int64_t{1} << 31, std::int64_t{1} << 40,
        (std::int64_t{1} << 40) + 12345}) {
    const std::int64_t r = i_sqrt(n);
    EXPECT_LE(r * r, n);
    EXPECT_GT((r + 1) * (r + 1), n);
  }
}

TEST(ISqrt, ZeroAndNegative) {
  EXPECT_EQ(i_sqrt(0), 0);
  EXPECT_EQ(i_sqrt(-5), 0);
}

TEST(ISqrt, IterationCountBounded) {
  // The paper's Table 4 gives i_sqrt a 5-cycle latency budget; Newton on
  // 32-bit variances converges within a handful of iterations.
  for (std::int64_t n : {std::int64_t{100}, std::int64_t{1} << 16,
                         std::int64_t{1} << 30, std::int64_t{1} << 32}) {
    EXPECT_LE(i_sqrt_iterations(n), 6) << n;
  }
}

// ----------------------------------------------------------------- i_exp ---

TEST(IExp, TracksExpOnSoftmaxRange) {
  const float s = 8.0f / 32767.0f;  // logits pre-scaled to |x| <= 8
  for (float x = -8.0f; x <= 0.0f; x += 0.01f) {
    const QValue out = i_exp({static_cast<std::int32_t>(std::lround(x / s)), s});
    EXPECT_NEAR(out.value(), std::exp(x), 0.01f) << x;
  }
}

TEST(IExp, PositiveInputClampedToOne) {
  const float s = 1.0f / 1000.0f;
  const QValue out = i_exp({500, s});  // x = 0.5 clamps to 0
  EXPECT_NEAR(out.value(), 1.0f, 0.05f);
}

TEST(IExp, VeryNegativeSaturatesToZero) {
  const float s = 64.0f / 32767.0f;
  const QValue out =
      i_exp({static_cast<std::int32_t>(std::lround(-60.0f / s)), s});
  EXPECT_NEAR(out.value(), 0.0f, 1e-6f);
}

// ---------------------------------------------------------------- i_gelu ---

TEST(IGelu, TracksGelu) {
  const float s = 5.0f / 32767.0f;
  double worst = 0;
  for (float x = -5.0f; x <= 5.0f; x += 0.01f) {
    const QValue out =
        i_gelu({static_cast<std::int32_t>(std::lround(x / s)), s});
    worst = std::max(worst, std::abs(static_cast<double>(out.value()) -
                                     gelu_exact(x)));
  }
  // I-BERT's polynomial erf is itself approximate (~1e-2 worst case).
  EXPECT_LT(worst, 0.03);
}

TEST(IErf, OddSymmetry) {
  const float s = 3.0f / 32767.0f;
  for (float x = 0.1f; x <= 3.0f; x += 0.1f) {
    const auto q = static_cast<std::int32_t>(std::lround(x / s));
    const QValue pos = i_erf({q, s});
    const QValue neg = i_erf({-q, s});
    EXPECT_NEAR(pos.value(), -neg.value(), 1e-5f) << x;
  }
}

TEST(IErf, SaturatesToPlusMinusOne) {
  const float s = 10.0f / 32767.0f;
  const QValue big = i_erf({32000, s});
  const QValue neg = i_erf({-32000, s});
  EXPECT_NEAR(big.value(), 1.0f, 0.02f);
  EXPECT_NEAR(neg.value(), -1.0f, 0.02f);
}

// ---------------------------------------------------------------- i_poly ---

TEST(IPoly, QuadraticExact) {
  // a(x+b)^2 + c at modest scales stays within quantization error.
  const float a = 0.5f, b = -1.0f, c = 2.0f;
  const float s = 4.0f / 4096.0f;
  for (float x = -4.0f; x <= 4.0f; x += 0.05f) {
    const QValue out =
        i_poly({static_cast<std::int32_t>(std::lround(x / s)), s}, a, b, c);
    const float expect = a * (x + b) * (x + b) + c;
    EXPECT_NEAR(out.value(), expect, 0.02f) << x;
  }
}

// ------------------------------------------------------------ row kernels --

TEST(SoftmaxRow, SumsToOne) {
  Rng rng(5);
  for (int t = 0; t < 20; ++t) {
    std::vector<float> row(48);
    for (float& v : row) v = rng.uniform(-6.0f, 6.0f);
    softmax_row(row);
    const float sum = std::accumulate(row.begin(), row.end(), 0.0f);
    EXPECT_NEAR(sum, 1.0f, 0.01f);
  }
}

TEST(SoftmaxRow, TracksExactSoftmax) {
  Rng rng(6);
  double worst = 0;
  for (int t = 0; t < 20; ++t) {
    std::vector<float> row(32), expect(32);
    for (std::size_t i = 0; i < row.size(); ++i) {
      row[i] = rng.uniform(-5.0f, 5.0f);
      expect[i] = row[i];
    }
    softmax_row(row);
    softmax_exact(expect);
    for (std::size_t i = 0; i < row.size(); ++i)
      worst = std::max(worst,
                       std::abs(static_cast<double>(row[i]) - expect[i]));
  }
  EXPECT_LT(worst, 0.01);
}

TEST(GeluRow, TracksExactGelu) {
  Rng rng(7);
  std::vector<float> row(256), expect(256);
  for (std::size_t i = 0; i < row.size(); ++i) {
    row[i] = rng.uniform(-4.0f, 4.0f);
    expect[i] = gelu_exact(row[i]);
  }
  gelu_row(row);
  for (std::size_t i = 0; i < row.size(); ++i)
    EXPECT_NEAR(row[i], expect[i], 0.04f);
}

TEST(LayerNormRow, TracksExactLayerNorm) {
  Rng rng(8);
  std::vector<float> x(128), y(128), expect(128);
  for (float& v : x) v = rng.uniform(-2.0f, 2.0f);
  layernorm_row(x, y, {}, {});
  layer_norm_exact(x, expect, {}, {});
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y[i], expect[i], 0.02f) << i;
}

TEST(LayerNormRow, AffineParamsApplied) {
  std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> y(4), expect(4);
  std::vector<float> gamma{2.0f, 2.0f, 2.0f, 2.0f}, beta{1.0f, 1.0f, 1.0f, 1.0f};
  layernorm_row(x, y, gamma, beta);
  layer_norm_exact(x, expect, gamma, beta);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y[i], expect[i], 0.05f);
}

TEST(LayerNormRow, ConstantRowDoesNotCrash) {
  std::vector<float> x(16, 3.0f), y(16);
  layernorm_row(x, y, {}, {});
  for (float v : y) EXPECT_NEAR(v, 0.0f, 0.1f);
}

// ----------------------------------------------------------- quantization --

TEST(Quantization, SymmetricScaleMapsMaxToQmax) {
  const std::vector<float> v{-3.0f, 1.0f, 2.0f};
  const float s = symmetric_scale(v, 8);
  EXPECT_NEAR(3.0f / s, 127.0f, 1e-3f);
}

TEST(Quantization, FakeQuantizeBoundsError) {
  Rng rng(9);
  std::vector<float> v(1000);
  for (float& x : v) x = rng.uniform(-2.0f, 2.0f);
  std::vector<float> orig = v;
  fake_quantize(v, 8);
  const float step = symmetric_scale(orig, 8);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_LE(std::abs(v[i] - orig[i]), step * 0.5f + 1e-6f);
}

TEST(Quantization, FakeQuantizeIdempotent) {
  std::vector<float> v{-1.0f, 0.25f, 0.7f};
  fake_quantize(v, 8);
  std::vector<float> once = v;
  fake_quantize(v, 8);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], once[i]);
}

TEST(Quantization, Fp16RoundTrip) {
  std::vector<float> v{1.0f, 2.5f, -0.125f};
  fake_quantize_fp16(v);
  EXPECT_EQ(v[0], 1.0f);
  EXPECT_EQ(v[1], 2.5f);
  EXPECT_EQ(v[2], -0.125f);
}

TEST(Quantization, ZeroVectorScaleIsSafe) {
  const std::vector<float> v(4, 0.0f);
  EXPECT_GT(symmetric_scale(v, 8), 0.0f);
}

}  // namespace
}  // namespace nnlut::ibert
