// Serving determinism: logits returned through the Server or the
// multi-model Engine — with dynamic same-seq batching, one scheduler
// thread per model slot, and concurrent submission from >= 4 client
// threads — must be BIT-identical to direct InferenceModel::logits calls,
// for every backend (exact, LUT fp32/fp16/int32, I-BERT) and any number of
// concurrently served models. This is the end-to-end consequence of
// (a) row-independent kernels, (b) deterministic static partitioning in
// the thread pool with FIFO-fair orchestrator admission, and (c) each
// slot's batcher merging only identical-seq requests of its own model.
// Also covers admission control under forced overload (every request
// resolves as completed or ServerOverloaded; ledger reconciles exactly
// after drain), per-request validation-error surfacing through a live
// server, and serving stats sanity.
#include <gtest/gtest.h>

#include <atomic>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "approx/linear_lut.h"
#include "numerics/math.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "transformer/infer.h"

namespace nnlut::serve {
namespace {

using namespace std::chrono_literals;
using namespace nnlut::transformer;

ModelConfig tiny() {
  ModelConfig c = ModelConfig::roberta_like();
  c.vocab = 32;
  c.hidden = 16;
  c.layers = 2;
  c.heads = 2;
  c.ffn = 32;
  c.max_seq = 12;
  return c;
}

LutSet tiny_luts() {
  return {fit_linear_lut(gelu_exact, kGeluRange, 32),
          fit_linear_lut(exp_exact, {-16.0f, 0.0f}, 32),
          fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 64.0f}, 32,
                                   BreakpointMode::kExponential),
          fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 32,
                                   BreakpointMode::kExponential)};
}

BatchInput random_request(const ModelConfig& cfg, std::size_t batch,
                          std::size_t seq, Rng& rng) {
  BatchInput in;
  in.batch = batch;
  in.seq = seq;
  in.token_ids.resize(batch * seq);
  for (int& t : in.token_ids)
    t = rng.uniform_int(0, static_cast<int>(cfg.vocab) - 1);
  return in;
}

/// Submit `requests` from `clients` threads (round-robin), await all
/// results, and compare bitwise against direct single-orchestrator logits.
/// Runs the served side twice — buffer pools on and off — so the memory
/// path's bit-identity contract (pools move bytes, never values) is checked
/// for every backend this helper covers.
void expect_served_bits_match_direct(const TaskModel& model,
                                     NonlinearitySet& nl,
                                     const std::vector<BatchInput>& requests,
                                     std::size_t clients) {
  // Reference: direct calls, one request at a time, on this thread.
  runtime::set_runtime_config({2});
  std::vector<Tensor> direct;
  {
    InferenceModel infer(model, nl);
    for (const BatchInput& in : requests) direct.push_back(infer.logits(in));
  }

  for (const bool use_pool : {true, false}) {
    // Served: concurrent clients against a batching server.
    std::vector<Tensor> served(requests.size());
    {
      ServeConfig cfg;
      cfg.max_batch = 4;
      cfg.max_wait = 3ms;
      cfg.threads = 2;
      cfg.use_pool = use_pool;
      Server server(model, nl, cfg);
      std::vector<std::thread> threads;
      for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          for (std::size_t i = c; i < requests.size(); i += clients) {
            PendingResult r = server.submit(requests[i]);
            served[i] = r.get();  // disjoint slot per request: no locking
          }
        });
      }
      for (auto& t : threads) t.join();

      const ServerStats stats = server.stats();
      EXPECT_EQ(stats.submitted, requests.size());
      EXPECT_EQ(stats.completed, requests.size());
      EXPECT_EQ(stats.rejected, 0u);
      EXPECT_EQ(stats.failed, 0u);
      EXPECT_GE(stats.batches, 1u);
      if (use_pool) {
        // The forward passes ran in the slot's workspace: the pool must
        // have seen traffic, and nothing beyond what PooledBuffers hold
        // may be counted outstanding.
        EXPECT_GT(stats.pool_alloc_count, 0u);
        EXPECT_GE(stats.pool_bytes_peak, stats.pool_bytes_live);
      } else {
        EXPECT_EQ(stats.pool_alloc_count, 0u);
        EXPECT_EQ(stats.pool_reuse_count, 0u);
        EXPECT_EQ(stats.pool_bytes_peak, 0u);
      }
    }
    runtime::set_runtime_config({});

    for (std::size_t i = 0; i < requests.size(); ++i) {
      ASSERT_EQ(served[i].size(), direct[i].size())
          << "request " << i << " use_pool " << use_pool;
      ASSERT_EQ(served[i].shape(), direct[i].shape())
          << "request " << i << " use_pool " << use_pool;
      for (std::size_t j = 0; j < served[i].size(); ++j)
        ASSERT_EQ(served[i][j], direct[i][j])
            << "request " << i << " element " << j << " use_pool " << use_pool;
    }
  }
}

/// Mixed-shape request set: two seq-length buckets, solo and multi-sequence
/// requests, enough volume that batches actually form.
std::vector<BatchInput> request_mix(const ModelConfig& cfg, Rng& rng) {
  std::vector<BatchInput> rs;
  for (int rep = 0; rep < 3; ++rep) {
    rs.push_back(random_request(cfg, 1, 8, rng));
    rs.push_back(random_request(cfg, 2, 12, rng));
    rs.push_back(random_request(cfg, 1, 12, rng));
    rs.push_back(random_request(cfg, 3, 8, rng));
  }
  return rs;
}

TEST(ServingDeterminism, ExactBackend) {
  Rng rng(31);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(m.config().act);
  expect_served_bits_match_direct(m, nl, request_mix(m.config(), rng), 4);
}

class LutServingDeterminism : public ::testing::TestWithParam<LutPrecision> {};

TEST_P(LutServingDeterminism, ServedBitsMatchDirect) {
  Rng rng(32);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::all();
  auto nl = make_lut_backend(tiny_luts(), GetParam(), opt);
  expect_served_bits_match_direct(m, *nl, request_mix(m.config(), rng), 4);
}

INSTANTIATE_TEST_SUITE_P(Precisions, LutServingDeterminism,
                         ::testing::Values(LutPrecision::kFp32,
                                           LutPrecision::kFp16,
                                           LutPrecision::kInt32));

TEST(ServingDeterminism, IBertBackend) {
  Rng rng(33);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  IBertNonlinearities nl(m.config().act);
  expect_served_bits_match_direct(m, nl, request_mix(m.config(), rng), 4);
}

TEST(ServingDeterminism, SpanHeadSplitsPerToken) {
  // Span heads return [batch*seq, 2]: the batcher must slice seq rows per
  // sequence, not one.
  Rng rng(34);
  TaskModel m(tiny(), HeadKind::kSpan, 2, rng);
  ExactNonlinearities nl(m.config().act);
  std::vector<BatchInput> rs;
  for (int i = 0; i < 6; ++i) rs.push_back(random_request(m.config(), 2, 8, rng));
  expect_served_bits_match_direct(m, nl, rs, 4);
}

// -------------------------------------------------- multi-model engine ---

TEST(EngineDeterminism, ThreeBackendsConcurrentClientsBitIdentical) {
  // Three slots on one Engine — exact, LUT fp32 and LUT int32, over two
  // distinct task models — each hammered by concurrent clients while the
  // other slots' schedulers orchestrate the same process pool. Logits for
  // every slot must be bit-identical to direct single-threaded calls.
  Rng rng(51);
  TaskModel ma(tiny(), HeadKind::kClassify, 2, rng);
  TaskModel mb(tiny(), HeadKind::kClassify, 3, rng);  // different weights+head
  ExactNonlinearities exact(ma.config().act);
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::all();
  auto lut32 = make_lut_backend(tiny_luts(), LutPrecision::kFp32, opt);
  auto luti32 = make_lut_backend(tiny_luts(), LutPrecision::kInt32, opt);

  struct SlotCase {
    const char* id;
    const TaskModel* model;
    NonlinearitySet* nl;
  };
  const SlotCase cases[] = {{"exact-a", &ma, &exact},
                            {"lut-fp32-b", &mb, lut32.get()},
                            {"lut-int32-a", &ma, luti32.get()}};

  std::vector<BatchInput> requests;
  Rng req_rng(52);
  for (int i = 0; i < 12; ++i)
    requests.push_back(random_request(ma.config(), 1 + i % 2, 8, req_rng));

  // Reference: direct, single-threaded, per slot.
  runtime::set_runtime_config({2});
  std::vector<std::vector<Tensor>> direct(std::size(cases));
  for (std::size_t s = 0; s < std::size(cases); ++s) {
    InferenceModel infer(*cases[s].model, *cases[s].nl);
    for (const BatchInput& in : requests)
      direct[s].push_back(infer.logits(in));
  }

  std::vector<std::vector<Tensor>> served(std::size(cases));
  for (auto& v : served) v.resize(requests.size());
  {
    Engine engine(EngineConfig{/*threads=*/2});
    SlotConfig scfg;
    scfg.max_batch = 4;
    scfg.max_wait = 3ms;
    for (const SlotCase& c : cases)
      engine.register_model(c.id, *c.model, *c.nl, scfg);
    ASSERT_EQ(engine.model_ids().size(), std::size(cases));

    // Two clients per slot, all slots concurrently: 6 client threads and 3
    // scheduler threads share the pool.
    std::vector<std::thread> clients;
    for (std::size_t s = 0; s < std::size(cases); ++s) {
      for (std::size_t c = 0; c < 2; ++c) {
        clients.emplace_back([&, s, c] {
          for (std::size_t i = c; i < requests.size(); i += 2)
            served[s][i] = engine.submit(cases[s].id, requests[i]).get();
        });
      }
    }
    for (auto& t : clients) t.join();

    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.models.size(), std::size(cases));
    EXPECT_EQ(stats.total.submitted, requests.size() * std::size(cases));
    EXPECT_EQ(stats.total.completed, requests.size() * std::size(cases));
    EXPECT_EQ(stats.total.rejected, 0u);
    for (const SlotCase& c : cases) {
      const SlotStats s = engine.model_stats(c.id);
      EXPECT_EQ(s.submitted, requests.size()) << c.id;
      EXPECT_EQ(s.completed, requests.size()) << c.id;
      EXPECT_EQ(s.failed, 0u) << c.id;
    }
  }
  runtime::set_runtime_config({});

  for (std::size_t s = 0; s < std::size(cases); ++s)
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ASSERT_EQ(served[s][i].shape(), direct[s][i].shape())
          << cases[s].id << " request " << i;
      for (std::size_t j = 0; j < served[s][i].size(); ++j)
        ASSERT_EQ(served[s][i][j], direct[s][i][j])
            << cases[s].id << " request " << i << " element " << j;
    }
}

TEST(EngineRegistry, UnknownAndDuplicateModels) {
  Rng rng(53);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(m.config().act);
  Engine engine(EngineConfig{/*threads=*/1});
  engine.register_model("m", m, nl);
  EXPECT_TRUE(engine.has_model("m"));
  EXPECT_FALSE(engine.has_model("ghost"));
  EXPECT_THROW(engine.register_model("m", m, nl), std::invalid_argument);
  EXPECT_THROW(engine.register_model("", m, nl), std::invalid_argument);

  PendingResult r = engine.submit("ghost", random_request(m.config(), 1, 8, rng));
  EXPECT_TRUE(r.ready());
  EXPECT_THROW(r.get(), std::out_of_range);
  EXPECT_EQ(engine.stats().rejected_unknown_model, 1u);
  EXPECT_THROW(engine.model_stats("ghost"), std::out_of_range);

  engine.shutdown();
  EXPECT_THROW(engine.register_model("late", m, nl), std::logic_error);
  runtime::set_runtime_config({});
}

// ---------------------------------------- admission control / overload ---

/// Drive `total` requests from `threads` clients into a bounded slot and
/// assert the overload contract: every request resolves as completed or
/// ServerOverloaded (nothing hangs, no other error), and after drain the
/// slot's ledger reconciles exactly with what the clients observed.
void expect_overload_resolves_and_reconciles(ShedPolicy policy) {
  Rng rng(54);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(m.config().act);

  Engine engine(EngineConfig{/*threads=*/2});
  SlotConfig scfg;
  scfg.max_batch = 2;
  scfg.max_wait = 1ms;
  scfg.admission = {/*max_queue_depth=*/2, policy};
  engine.register_model("bounded", m, nl, scfg);

  constexpr std::size_t kClients = 6, kPerClient = 12;
  std::atomic<std::uint64_t> ok{0}, shed{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng crng(100 + c);
      for (std::size_t i = 0; i < kPerClient; ++i) {
        PendingResult r =
            engine.submit("bounded", random_request(m.config(), 1, 8, crng));
        try {
          (void)r.get();
          ok.fetch_add(1);
        } catch (const ServerOverloaded&) {
          shed.fetch_add(1);
        }
        // Any other exception escapes and fails the test.
      }
    });
  }
  for (auto& t : clients) t.join();
  engine.shutdown();

  const SlotStats s = engine.model_stats("bounded");
  EXPECT_EQ(ok.load() + shed.load(), kClients * kPerClient);
  EXPECT_EQ(s.completed, ok.load());
  EXPECT_EQ(s.rejected_overload, shed.load());
  EXPECT_EQ(s.rejected_validation, 0u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.cancelled, 0u);
  // The two reconciliation identities, exact after drain.
  EXPECT_EQ(s.submitted, s.completed + s.failed + s.cancelled);
  EXPECT_EQ(s.submitted + s.rejected_validation + s.rejected_overload +
                s.rejected_shutdown,
            kClients * kPerClient);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_LE(s.peak_queue_depth, scfg.admission.max_queue_depth);
  runtime::set_runtime_config({});
}

TEST(EngineAdmission, ForcedOverloadRejectNewReconciles) {
  expect_overload_resolves_and_reconciles(ShedPolicy::kRejectNew);
}

TEST(EngineAdmission, ForcedOverloadRejectOldestReconciles) {
  expect_overload_resolves_and_reconciles(ShedPolicy::kRejectOldest);
}

TEST(EngineAdmission, UnboundedSlotNeverSheds) {
  Rng rng(55);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(m.config().act);
  Engine engine(EngineConfig{/*threads=*/1});
  engine.register_model("open", m, nl);  // default: unbounded
  std::vector<PendingResult> rs;
  for (int i = 0; i < 16; ++i)
    rs.push_back(engine.submit("open", random_request(m.config(), 1, 8, rng)));
  for (auto& r : rs) EXPECT_NO_THROW(r.get());
  const SlotStats s = engine.model_stats("open");
  EXPECT_EQ(s.rejected_overload, 0u);
  EXPECT_EQ(s.completed, 16u);
  runtime::set_runtime_config({});
}

// ----------------------------------------- per-request error surfacing ---

TEST(ServingValidation, MalformedRequestRejectsAloneUnderLoad) {
  Rng rng(35);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(m.config().act);

  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait = 2ms;
  cfg.threads = 2;
  Server server(m, nl, cfg);

  // Reference for the good requests.
  std::vector<BatchInput> good;
  for (int i = 0; i < 8; ++i) good.push_back(random_request(m.config(), 1, 8, rng));
  std::vector<Tensor> direct;
  {
    InferenceModel infer(m, nl);
    for (const BatchInput& in : good) direct.push_back(infer.logits(in));
  }

  BatchInput bad_token = good[0];
  bad_token.token_ids[3] = static_cast<int>(m.config().vocab) + 5;
  BatchInput bad_shape = good[1];
  bad_shape.token_ids.pop_back();
  BatchInput bad_seq = random_request(m.config(), 1, m.config().max_seq + 1, rng);
  BatchInput empty;  // batch == 0

  std::vector<Tensor> served(good.size());
  std::vector<PendingResult> bad_results(4);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      // Interleave a malformed submission among this client's good ones.
      switch (c) {
        case 0: bad_results[0] = server.submit(bad_token); break;
        case 1: bad_results[1] = server.submit(bad_shape); break;
        case 2: bad_results[2] = server.submit(bad_seq); break;
        case 3: bad_results[3] = server.submit(empty); break;
      }
      for (std::size_t i = c; i < good.size(); i += 4)
        served[i] = server.submit(good[i]).get();
    });
  }
  for (auto& t : clients) t.join();

  // Every good request completed with bit-identical logits.
  for (std::size_t i = 0; i < good.size(); ++i)
    for (std::size_t j = 0; j < direct[i].size(); ++j)
      ASSERT_EQ(served[i][j], direct[i][j]) << i << "," << j;

  // Each malformed request carries its own validation error.
  try {
    bad_results[0].get();
    FAIL() << "out-of-vocab token must reject";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("token id"), std::string::npos);
  }
  EXPECT_THROW(bad_results[1].get(), std::invalid_argument);
  EXPECT_THROW(bad_results[2].get(), std::out_of_range);
  EXPECT_THROW(bad_results[3].get(), std::invalid_argument);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 4u);
  EXPECT_EQ(stats.completed, good.size());
  EXPECT_EQ(stats.failed, 0u);
  runtime::set_runtime_config({});
}

TEST(ServingDeterminism, TwoConcurrentServersStayBitIdentical) {
  // Two Servers share the process-wide runtime pool; the pool admits one
  // orchestrator at a time and the other inlines, so results from both
  // must still match direct execution bit-for-bit.
  Rng rng(37);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(m.config().act);

  std::vector<BatchInput> requests;
  for (int i = 0; i < 8; ++i) requests.push_back(random_request(m.config(), 1, 8, rng));
  runtime::set_runtime_config({2});
  std::vector<Tensor> direct;
  {
    InferenceModel infer(m, nl);
    for (const BatchInput& in : requests) direct.push_back(infer.logits(in));
  }

  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait = 2ms;
  cfg.threads = 2;
  Server a(m, nl, cfg);
  Server b(m, nl, cfg);
  std::vector<Tensor> from_a(requests.size()), from_b(requests.size());
  std::thread ta([&] {
    for (std::size_t i = 0; i < requests.size(); ++i)
      from_a[i] = a.submit(requests[i]).get();
  });
  std::thread tb([&] {
    for (std::size_t i = 0; i < requests.size(); ++i)
      from_b[i] = b.submit(requests[i]).get();
  });
  ta.join();
  tb.join();

  for (std::size_t i = 0; i < requests.size(); ++i)
    for (std::size_t j = 0; j < direct[i].size(); ++j) {
      ASSERT_EQ(from_a[i][j], direct[i][j]) << i << "," << j;
      ASSERT_EQ(from_b[i][j], direct[i][j]) << i << "," << j;
    }
  runtime::set_runtime_config({});
}

TEST(ServingDeterminism, WidestSimdTierServedBitsMatchScalarDirect) {
  // ISA-invariance through the whole serving stack: requests served under
  // the widest SIMD tier this CPU has (pinned via ServeConfig::simd) must
  // be bit-identical to direct execution with the kernels forced scalar —
  // for the LUT backends whose plans actually dispatch (FP32 and INT32).
  Rng rng(41);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::all();
  for (LutPrecision prec : {LutPrecision::kFp32, LutPrecision::kInt32}) {
    auto nl = make_lut_backend(tiny_luts(), prec, opt);
    std::vector<BatchInput> requests;
    for (int i = 0; i < 6; ++i)
      requests.push_back(random_request(m.config(), 1, 8, rng));

    runtime::set_runtime_config({1, simd::SimdTier::kScalar});
    std::vector<Tensor> direct;
    {
      InferenceModel infer(m, *nl);
      for (const BatchInput& in : requests)
        direct.push_back(infer.logits(in));
    }

    ServeConfig cfg;
    cfg.max_batch = 4;
    cfg.max_wait = 2ms;
    cfg.threads = 2;
    cfg.simd = simd::detected_simd_tier();
    std::vector<Tensor> served(requests.size());
    {
      Server server(m, *nl, cfg);
      EXPECT_EQ(simd::active_simd_tier(), simd::detected_simd_tier());
      std::vector<std::thread> clients;
      for (std::size_t c = 0; c < 3; ++c) {
        clients.emplace_back([&, c] {
          for (std::size_t i = c; i < requests.size(); i += 3)
            served[i] = server.submit(requests[i]).get();
        });
      }
      for (auto& t : clients) t.join();
    }
    runtime::set_runtime_config({});

    for (std::size_t i = 0; i < requests.size(); ++i) {
      ASSERT_EQ(served[i].shape(), direct[i].shape()) << "request " << i;
      for (std::size_t j = 0; j < served[i].size(); ++j)
        ASSERT_EQ(served[i][j], direct[i][j])
            << "request " << i << " element " << j << " precision "
            << static_cast<int>(prec);
    }
  }
}

TEST(ServingStats, CancelledAndRejectedReconcileWithSubmitted) {
  Rng rng(38);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(m.config().act);

  ServeConfig cfg;
  cfg.max_batch = 64;       // never reached ...
  cfg.max_wait = 10min;     // ... and never aged out: requests sit queued
  cfg.threads = 1;
  Server server(m, nl, cfg);

  PendingResult r1 = server.submit(random_request(m.config(), 1, 8, rng));
  PendingResult r2 = server.submit(random_request(m.config(), 1, 8, rng));
  PendingResult r3 = server.submit(random_request(m.config(), 1, 8, rng));
  EXPECT_TRUE(r2.cancel());  // still queued: nothing flushes before shutdown
  server.shutdown();         // drains r1/r3, skips the cancelled r2

  EXPECT_NO_THROW(r1.get());
  EXPECT_NO_THROW(r3.get());
  EXPECT_THROW(r2.get(), RequestCancelled);

  PendingResult late = server.submit(random_request(m.config(), 1, 8, rng));
  EXPECT_THROW(late.get(), RequestCancelled);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected, 1u);  // the post-shutdown submit
  EXPECT_EQ(stats.submitted, stats.completed + stats.failed + stats.cancelled);
  runtime::set_runtime_config({});
}

// ------------------------------------------------------- memory path ---

/// One client serving `requests` sequentially: each result tensor is
/// destroyed before the next submit, so the number of slabs simultaneously
/// outstanding is deterministic and a warmed pool can serve every
/// acquisition from its free lists.
void serve_sequentially(Server& server, const std::vector<BatchInput>& requests) {
  for (const BatchInput& in : requests) {
    Tensor logits = server.submit(in).get();
    ASSERT_GT(logits.size(), 0u);
  }
}

TEST(ServingMemoryPath, WarmWindowServesWithoutPoolAllocs) {
  // The tentpole property, counter-asserted: once every seq bucket has been
  // served, a sustained window performs ZERO pool heap allocations — every
  // workspace reshape and result slab comes off a free list.
  Rng rng(71);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(m.config().act);
  const std::vector<BatchInput> requests = request_mix(m.config(), rng);

  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait = 1ms;
  cfg.threads = 2;
  Server server(m, nl, cfg);

  // Warm: every size class the mix touches gets allocated and free-listed.
  serve_sequentially(server, requests);
  serve_sequentially(server, requests);
  const ServerStats warm = server.stats();
  EXPECT_GT(warm.pool_alloc_count, 0u);

  // Measured window: repeats of the same mix must be pure reuse.
  serve_sequentially(server, requests);
  serve_sequentially(server, requests);
  const ServerStats done = server.stats();

  EXPECT_EQ(done.pool_alloc_count, warm.pool_alloc_count)
      << "warmed window performed pool heap allocations";
  EXPECT_GT(done.pool_reuse_count, warm.pool_reuse_count);
  EXPECT_EQ(done.pool_bytes_peak, warm.pool_bytes_peak);
  runtime::set_runtime_config({});
}

TEST(ServingMemoryPath, OutstandingStableAfterDrain) {
  // With every result tensor destroyed and the queue drained, the slabs
  // still outstanding are exactly the slot's persistent workspace — the
  // count must not creep across serving windows (that would be a leak of
  // pooled slabs).
  Rng rng(72);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(m.config().act);
  const std::vector<BatchInput> requests = request_mix(m.config(), rng);

  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait = 1ms;
  cfg.threads = 2;
  Server server(m, nl, cfg);

  serve_sequentially(server, requests);
  const ServerStats s1 = server.stats();
  serve_sequentially(server, requests);
  const ServerStats s2 = server.stats();
  serve_sequentially(server, requests);
  const ServerStats s3 = server.stats();

  EXPECT_GT(s1.pool_outstanding, 0u);  // the workspace holds its slots
  EXPECT_EQ(s2.pool_outstanding, s1.pool_outstanding);
  EXPECT_EQ(s3.pool_outstanding, s2.pool_outstanding);
  EXPECT_EQ(s3.pool_bytes_live, s2.pool_bytes_live);
  runtime::set_runtime_config({});
}

// ------------------------------------------------------ observability ---

// Tracing observes, never steers: serving the same request set with the
// trace recorder armed must return logits BIT-identical to serving it with
// tracing off — the observability half of the determinism contract. Also
// checks the traced run actually recorded lifecycle spans and that the
// engine scrape exposes the per-stage histograms next to the ledger
// counters.
TEST(ServingObservability, TracingOnLogitsBitIdenticalToTracingOff) {
  Rng rng(77);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(m.config().act);
  const std::vector<BatchInput> requests = request_mix(m.config(), rng);

  auto serve_all = [&](bool tracing) {
    if (tracing) obs::TraceRecorder::instance().enable(4096);
    std::vector<Tensor> out(requests.size());
    std::string scrape;
    {
      ServeConfig cfg;
      cfg.max_batch = 4;
      cfg.max_wait = 3ms;
      cfg.threads = 2;
      Server server(m, nl, cfg);
      std::vector<std::thread> threads;
      for (std::size_t c = 0; c < 4; ++c)
        threads.emplace_back([&, c] {
          for (std::size_t i = c; i < requests.size(); i += 4)
            out[i] = server.submit(requests[i]).get();
        });
      for (auto& t : threads) t.join();
      scrape = server.scrape();
    }
    runtime::set_runtime_config({});
    if (tracing) {
      obs::TraceRecorder::instance().disable();
      EXPECT_GT(obs::TraceRecorder::instance().stats().recorded, 0u);
    }
    // The scrape carries the per-stage histograms and ledger counters
    // whether or not tracing is armed (independent subsystems).
    EXPECT_NE(scrape.find("nnlut_stage_latency_us_bucket"), std::string::npos);
    EXPECT_NE(scrape.find("stage=\"exec\""), std::string::npos);
    EXPECT_NE(scrape.find("nnlut_requests_total{model=\"default\","
                          "outcome=\"completed\"} " +
                          std::to_string(requests.size())),
              std::string::npos);
    return out;
  };

  const std::vector<Tensor> off = serve_all(false);
  const std::vector<Tensor> on = serve_all(true);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(on[i].shape(), off[i].shape()) << "request " << i;
    for (std::size_t j = 0; j < off[i].size(); ++j)
      ASSERT_EQ(on[i][j], off[i][j])
          << "request " << i << " element " << j
          << ": tracing changed served bits";
  }
}

TEST(ServingShutdown, SubmitAfterShutdownRejects) {
  Rng rng(36);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities nl(m.config().act);
  Server server(m, nl, {/*max_batch=*/4, /*max_wait=*/1ms, /*threads=*/1});
  PendingResult before = server.submit(random_request(m.config(), 1, 8, rng));
  server.shutdown();
  EXPECT_NO_THROW(before.get());  // drained before stop
  PendingResult after = server.submit(random_request(m.config(), 1, 8, rng));
  EXPECT_THROW(after.get(), RequestCancelled);
  runtime::set_runtime_config({});
}

}  // namespace
}  // namespace nnlut::serve
