#include <gtest/gtest.h>

#include "hwmodel/cell_library.h"
#include "hwmodel/datapath.h"
#include "hwmodel/units.h"

namespace nnlut::hw {
namespace {

TEST(CellLibrary, CostsArePositiveAndMonotoneInWidth) {
  const CellLibrary lib;
  for (int bits : {8, 16, 32}) {
    const CellCost a = lib.adder(bits);
    EXPECT_GT(a.area_um2, 0.0);
    EXPECT_GT(a.delay_ns, 0.0);
  }
  EXPECT_LT(lib.adder(16).area_um2, lib.adder(32).area_um2);
  EXPECT_LT(lib.multiplier(16, 16).area_um2, lib.multiplier(32, 32).area_um2);
  EXPECT_LT(lib.comparator(16).area_um2, lib.comparator(32).area_um2);
}

TEST(CellLibrary, MultiplierQuadraticInWidth) {
  const CellLibrary lib;
  const double r = lib.multiplier(32, 32).area_um2 / lib.multiplier(16, 16).area_um2;
  EXPECT_NEAR(r, 4.0, 0.5);
}

TEST(CellLibrary, DividerDominatesDelay) {
  const CellLibrary lib;
  EXPECT_GT(lib.divider(32).delay_ns, lib.multiplier(32, 32).delay_ns * 3);
  EXPECT_GT(lib.divider(32).delay_ns, lib.adder(32).delay_ns * 5);
}

TEST(CellLibrary, FpOpsCostMoreThanSameWidthInt) {
  const CellLibrary lib;
  EXPECT_GT(lib.fp_adder(24, 8).area_um2, lib.adder(32).area_um2);
  EXPECT_GT(lib.fp_adder(24, 8).delay_ns, lib.adder(32).delay_ns);
}

TEST(Datapath, AreaAndLeakageAreSums) {
  const CellLibrary lib;
  Datapath dp("test");
  dp.add("a", lib.adder(32));
  dp.add("m", lib.multiplier(32, 32));
  EXPECT_NEAR(dp.total_area(),
              lib.adder(32).area_um2 + lib.multiplier(32, 32).area_um2, 1e-9);
  EXPECT_GT(dp.total_leakage_mw(), 0.0);
}

TEST(Datapath, CriticalPathIsMaxStage) {
  const CellLibrary lib;
  Datapath dp("test");
  dp.add("a", lib.adder(32));
  dp.add("m", lib.multiplier(32, 32));
  dp.add_stage({"a"});
  dp.add_stage({"m"});
  EXPECT_NEAR(dp.critical_path_ns(), lib.multiplier(32, 32).delay_ns, 1e-9);
}

TEST(Datapath, UnknownStageInstanceThrows) {
  Datapath dp("test");
  EXPECT_THROW(dp.add_stage({"nope"}), std::invalid_argument);
}

TEST(Units, NnlutLatencyIsTwoCyclesForAllFunctions) {
  const CellLibrary lib;
  const UnitReport r =
      build_nnlut_unit(lib, UnitPrecision::kInt32).report(1.0);
  for (const char* op : {"GELU", "EXP", "DIV", "1/SQRT"}) {
    ASSERT_TRUE(r.latency_cycles.count(op)) << op;
    EXPECT_EQ(r.latency_cycles.at(op), 2) << op;
  }
}

TEST(Units, IbertLatenciesMatchPaper) {
  const CellLibrary lib;
  const UnitReport r = build_ibert_unit(lib).report(1.0);
  EXPECT_EQ(r.latency_cycles.at("GELU"), 3);
  EXPECT_EQ(r.latency_cycles.at("EXP"), 4);
  EXPECT_EQ(r.latency_cycles.at("1/SQRT"), 5);
}

TEST(Units, Table4RatiosMatchPaperShape) {
  // The paper's headline hardware claims (Table 4):
  //   area ratio I-BERT / NN-LUT(INT32)  = 2.63x
  //   power ratio                        = 36.4x
  //   delay ratio                        = 3.93x
  // The cost model must land in the right neighbourhood.
  const CellLibrary lib;
  const Table4 t = make_table4(lib);

  const double area_ratio = t.ibert_int32.area_um2 / t.nnlut_int32.area_um2;
  EXPECT_GT(area_ratio, 1.8);
  EXPECT_LT(area_ratio, 3.6);

  const double power_ratio = t.ibert_int32.power_mw / t.nnlut_int32.power_mw;
  EXPECT_GT(power_ratio, 15.0);
  EXPECT_LT(power_ratio, 80.0);

  const double delay_ratio = t.ibert_int32.delay_ns / t.nnlut_int32.delay_ns;
  EXPECT_GT(delay_ratio, 2.5);
  EXPECT_LT(delay_ratio, 6.0);
}

TEST(Units, NnlutPrecisionOrdering) {
  // Paper Table 4: FP16 is the smallest NN-LUT variant; INT32 and FP32 are
  // comparable with FP32 slightly larger. Delays: INT32 < FP16 < FP32.
  const CellLibrary lib;
  const Table4 t = make_table4(lib);
  EXPECT_LT(t.nnlut_fp16.area_um2, t.nnlut_int32.area_um2);
  EXPECT_LT(t.nnlut_fp16.area_um2, t.nnlut_fp32.area_um2);
  EXPECT_LT(t.nnlut_int32.area_um2, t.nnlut_fp32.area_um2);
  EXPECT_LT(t.nnlut_int32.delay_ns, t.nnlut_fp16.delay_ns);
  EXPECT_LT(t.nnlut_fp16.delay_ns, t.nnlut_fp32.delay_ns);
}

TEST(Units, AbsoluteNumbersInCalibratedNeighbourhood) {
  // Calibration targets (paper Table 4, I-BERT INT32 column): 2654 um2,
  // 2.14 mW, 2.67 ns. Within 25% counts as calibrated for a gate model.
  const CellLibrary lib;
  const UnitReport r = build_ibert_unit(lib).report(1.0);
  EXPECT_NEAR(r.area_um2, 2654.32, 2654.32 * 0.25);
  EXPECT_NEAR(r.delay_ns, 2.67, 2.67 * 0.25);
  EXPECT_NEAR(r.power_mw, 2.1421, 2.1421 * 0.35);
}

TEST(Units, EntriesScaleStorageOnly) {
  const CellLibrary lib;
  const double a16 =
      build_nnlut_unit(lib, UnitPrecision::kInt32, 16).report().area_um2;
  const double a32 =
      build_nnlut_unit(lib, UnitPrecision::kInt32, 32).report().area_um2;
  EXPECT_GT(a32, a16);
  EXPECT_LT(a32, a16 * 2.2);  // the MAC does not duplicate
}

}  // namespace
}  // namespace nnlut::hw
