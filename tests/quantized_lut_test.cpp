#include <gtest/gtest.h>

#include <cmath>

#include "approx/linear_lut.h"
#include "core/function_library.h"
#include "core/quantized_lut.h"
#include "numerics/half.h"
#include "numerics/math.h"

namespace nnlut {
namespace {

PiecewiseLinear gelu_like_lut() {
  // A fixed-breakpoint LUT for GELU gives us a stable, non-trivial table.
  return fit_linear_lut(gelu_exact, kGeluRange, 16);
}

TEST(LutFp16, TracksFp32WithinHalfPrecision) {
  const PiecewiseLinear lut = gelu_like_lut();
  const LutFp16 h(lut);
  for (float x = -5.0f; x <= 5.0f; x += 0.01f) {
    const float f32 = lut(x);
    const float f16 = h.eval(x);
    const float tol = std::max(0.01f, std::abs(f32) * 0.01f);
    EXPECT_NEAR(f16, f32, tol) << x;
  }
}

TEST(LutFp16, OutputIsRepresentableInHalf) {
  const LutFp16 h(gelu_like_lut());
  for (float x = -4.9f; x <= 4.9f; x += 0.37f) {
    const float y = h.eval(x);
    EXPECT_EQ(y, round_to_half(y)) << x;
  }
}

TEST(LutInt32, TracksFp32) {
  const PiecewiseLinear lut = gelu_like_lut();
  const LutInt32 qi(lut, 5.0f);
  for (float x = -5.0f; x <= 5.0f; x += 0.01f) {
    EXPECT_NEAR(qi.eval(x), lut(x), 5e-3f) << x;
  }
}

TEST(LutInt32, ScalesArePositive) {
  const LutInt32 qi(gelu_like_lut(), 5.0f);
  EXPECT_GT(qi.input_scale(), 0.0f);
  EXPECT_GT(qi.output_scale(), 0.0f);
}

TEST(LutInt32, RejectsNonPositiveRange) {
  EXPECT_THROW(LutInt32(gelu_like_lut(), 0.0f), std::invalid_argument);
  EXPECT_THROW(LutInt32(gelu_like_lut(), -1.0f), std::invalid_argument);
}

TEST(LutInt32, ReciprocalRangeQuantizes) {
  const PiecewiseLinear lut =
      fit_linear_lut(reciprocal_exact, kDivideRange, 16);
  const LutInt32 qi(lut, 1024.0f);
  // The fixed-breakpoint fit is itself coarse; just require the quantized
  // table to track its own FP32 source closely.
  for (float x = 1.0f; x <= 1024.0f; x *= 1.3f)
    EXPECT_NEAR(qi.eval(x), lut(x), 2e-3f) << x;
}

TEST(MakeLutFn, FactoryCoversAllPrecisions) {
  const PiecewiseLinear lut = gelu_like_lut();
  const auto f32 = make_lut_fn(lut, LutPrecision::kFp32);
  const auto f16 = make_lut_fn(lut, LutPrecision::kFp16);
  const auto i32 = make_lut_fn(lut, LutPrecision::kInt32, 5.0f);
  const float x = 1.234f;
  EXPECT_NEAR(f32->eval(x), lut(x), 1e-7f);
  EXPECT_NEAR(f16->eval(x), lut(x), 0.01f);
  EXPECT_NEAR(i32->eval(x), lut(x), 0.005f);
}

// Precision sweep: quantization error ordering FP16 > INT32(16-bit-ish) on a
// smooth function should both stay within loose envelopes.
class QuantizedPrecision : public ::testing::TestWithParam<int> {};

TEST_P(QuantizedPrecision, ErrorBoundedAcrossEntries) {
  const int entries = GetParam();
  const PiecewiseLinear lut = fit_linear_lut(gelu_exact, kGeluRange, entries);
  const LutFp16 h(lut);
  const LutInt32 qi(lut, 5.0f);
  double worst16 = 0, worst32 = 0;
  for (float x = -5.0f; x <= 5.0f; x += 0.005f) {
    worst16 = std::max(worst16, std::abs(static_cast<double>(h.eval(x)) - lut(x)));
    worst32 = std::max(worst32, std::abs(static_cast<double>(qi.eval(x)) - lut(x)));
  }
  EXPECT_LT(worst16, 0.05);
  EXPECT_LT(worst32, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Entries, QuantizedPrecision,
                         ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace nnlut
