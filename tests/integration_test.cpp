// Cross-module integration tests: full train -> approximate -> evaluate
// pipelines in the precision settings of Tables 2(b) and 3.
#include <gtest/gtest.h>

#include "approx/linear_lut.h"
#include "eval/calibration_runner.h"
#include "eval/pipeline.h"

namespace nnlut::eval {
namespace {

using tasks::TaskData;
using tasks::TaskGenOptions;
using tasks::TaskId;
using transformer::ModelConfig;

TaskGenOptions data_opts() {
  TaskGenOptions o;
  o.n_train = 1024;
  o.n_dev = 256;
  o.seq_len = 20;
  o.seed = 19;
  return o;
}

ModelConfig roberta_cfg() {
  ModelConfig c = ModelConfig::roberta_like();
  c.vocab = 64;
  c.hidden = 32;
  c.layers = 2;
  c.heads = 2;
  c.ffn = 64;
  c.max_seq = 20;
  return c;
}

ModelConfig mobilebert_cfg() {
  ModelConfig c = roberta_cfg();
  c.hidden = 48;  // NoNorm models need a little more width for the span task
  c.heads = 4;
  c.ffn = 96;
  c.norm = transformer::NormKind::kNoNorm;
  c.act = transformer::ActKind::kRelu;
  return c;
}

TrainOptions train_opts() {
  TrainOptions t;
  t.epochs = 5;
  t.batch_size = 32;
  t.lr = 1e-3f;
  t.seed = 5;
  return t;
}

transformer::LutSet trained_luts(std::uint64_t seed) {
  const NnlutBundle nb = train_bundle(16, FitPreset::kFast, seed);
  return {nb.gelu.lut, nb.exp.lut, nb.reciprocal.lut, nb.rsqrt.lut};
}

TEST(Integration, IBertBackendPreservesAccuracy) {
  const TaskData d = tasks::make_task(TaskId::kRte, data_opts());
  const auto model = train_model(d, roberta_cfg(), train_opts());
  const double baseline = evaluate_baseline(model, d);

  transformer::IBertNonlinearities ibert(model.config().act);
  const double metric = evaluate(model, d, ibert);
  EXPECT_GT(metric, baseline - 6.0);
}

TEST(Integration, NnlutInt32StaysCloseToFp32) {
  const TaskData d = tasks::make_task(TaskId::kRte, data_opts());
  const auto model = train_model(d, roberta_cfg(), train_opts());

  const transformer::LutSet luts = trained_luts(23);
  transformer::LutNonlinearities::Options lopt;
  lopt.select = transformer::ApproxSelection::all();

  auto fp32 = make_lut_backend(luts, LutPrecision::kFp32, lopt);
  auto int32 = make_lut_backend(luts, LutPrecision::kInt32, lopt);

  const double m_fp32 = evaluate(model, d, *fp32);
  const double m_int32 = evaluate(model, d, *int32);
  // Table 2(b): INT32 NN-LUT shows only slight degradation vs FP32.
  EXPECT_GT(m_int32, m_fp32 - 8.0);
}

TEST(Integration, MobileBertSoftmaxOnlyApproximation) {
  // Table 3 setting: MobileBERT-like model (NoNorm + ReLU), FP16 matmul,
  // softmax as the only approximated nonlinearity. NoNorm models train
  // without normalization and need a gentler, longer schedule plus more
  // data than the other quick tests.
  TaskGenOptions o = data_opts();
  o.n_train = 3072;
  const TaskData d = tasks::make_task(TaskId::kSquad, o);
  TrainOptions t = train_opts();
  t.lr = 5e-4f;
  t.epochs = 20;
  const auto model = train_model(d, mobilebert_cfg(), t);
  const double baseline = evaluate_baseline(model, d);
  ASSERT_GT(baseline, 70.0);  // the span task must actually be learned

  const transformer::LutSet luts = trained_luts(29);
  transformer::LutNonlinearities::Options lopt;
  lopt.select = transformer::ApproxSelection::softmax_only();
  lopt.act = model.config().act;

  for (LutPrecision prec : {LutPrecision::kFp32, LutPrecision::kFp16}) {
    auto backend = make_lut_backend(luts, prec, lopt);
    const double metric =
        evaluate(model, d, *backend, transformer::MatmulMode::kFp16);
    EXPECT_GT(metric, baseline - 3.0)
        << "precision=" << static_cast<int>(prec);
  }
}

TEST(Integration, Int8MatmulBaselineRemainsUsable) {
  // Table 2(b) baseline setting: INT8 matmul + exact FP32 nonlinear ops.
  const TaskData d = tasks::make_task(TaskId::kSst2, data_opts());
  const auto model = train_model(d, roberta_cfg(), train_opts());
  const double fp32 = evaluate_baseline(model, d);

  transformer::ExactNonlinearities exact(model.config().act);
  const double int8 =
      evaluate(model, d, exact, transformer::MatmulMode::kInt8);
  EXPECT_GT(int8, fp32 - 6.0);
}

TEST(Integration, CalibrationRecoversInt32Accuracy) {
  // Table 2(b) "+C" rows: calibration lifts the INT32 deployment.
  const TaskData d = tasks::make_task(TaskId::kSst2, data_opts());
  const auto model = train_model(d, roberta_cfg(), train_opts());

  const NnlutBundle nb = train_bundle(16, FitPreset::kFast, 31);
  const transformer::LutSet luts{nb.gelu.lut, nb.exp.lut, nb.reciprocal.lut,
                                 nb.rsqrt.lut};
  transformer::LutNonlinearities::Options lopt;
  lopt.select = transformer::ApproxSelection::all();

  auto plain = make_lut_backend(luts, LutPrecision::kInt32, lopt);
  const double before =
      evaluate(model, d, *plain, transformer::MatmulMode::kInt8);

  auto calibrated = make_lut_backend(luts, LutPrecision::kInt32, lopt);
  const std::span<const tasks::Example> unlabeled(d.train.data(), 128);
  calibrate_layernorm_sites(model, *calibrated, nb.rsqrt, unlabeled,
                            transformer::MatmulMode::kInt8,
                            LutPrecision::kInt32);
  const double after =
      evaluate(model, d, *calibrated, transformer::MatmulMode::kInt8);

  EXPECT_GE(after, before - 2.0);  // never meaningfully worse
}

}  // namespace
}  // namespace nnlut::eval
