// BufferPool unit tests: size-class rounding, strict-LIFO reuse,
// exhaustion growth, cross-thread release, exact stats reconciliation,
// pool-death safety, and the Tensor / Workspace integration on top. These
// are the allocator-level guarantees behind the serving memory path; the
// end-to-end bit-identity of pooled serving lives in
// serving_determinism_test.cpp. Run under ASan/TSan — the cross-thread and
// pool-death cases exist precisely for those tools.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/buffer_pool.h"
#include "tensor/tensor.h"
#include "transformer/workspace.h"

namespace nnlut::runtime {
namespace {

bool is_aligned_64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
}

TEST(BufferPoolSizeClass, RoundsUpToPowerOfTwoWithFloor) {
  EXPECT_EQ(BufferPool::size_class(1), 64u);
  EXPECT_EQ(BufferPool::size_class(63), 64u);
  EXPECT_EQ(BufferPool::size_class(64), 64u);
  EXPECT_EQ(BufferPool::size_class(65), 128u);
  EXPECT_EQ(BufferPool::size_class(128), 128u);
  EXPECT_EQ(BufferPool::size_class(1000), 1024u);
  EXPECT_EQ(BufferPool::size_class(4096), 4096u);
  EXPECT_EQ(BufferPool::size_class(4097), 8192u);
  EXPECT_EQ(BufferPool::size_class(1u << 20), 1u << 20);
  EXPECT_EQ(BufferPool::size_class((1u << 20) + 1), 1u << 21);
}

TEST(BufferPoolSizeClass, MaxClassBytesIsRepresentableCeiling) {
  // The largest size class must round-trip exactly; one byte past it has
  // no class and must refuse (not loop forever in the round-up shift or
  // index past the class table — both latent before the bound existed).
  EXPECT_EQ(BufferPool::size_class(BufferPool::kMaxClassBytes),
            BufferPool::kMaxClassBytes);
  EXPECT_THROW(BufferPool::size_class(BufferPool::kMaxClassBytes + 1),
               std::bad_alloc);
  EXPECT_THROW(BufferPool::size_class(~std::size_t{0}), std::bad_alloc);
}

TEST(BufferPool, OversizeAcquireThrowsWithoutTouchingStats) {
  // A request beyond kMaxClassBytes must fail before any counter or free
  // list is touched: the pool's books stay exactly as they were and the
  // pool remains fully usable afterwards.
  BufferPool pool;
  PooledBuffer warm = pool.acquire(256);
  const PoolStats before = pool.stats();

  EXPECT_THROW(pool.acquire(BufferPool::kMaxClassBytes + 1), std::bad_alloc);

  const PoolStats after = pool.stats();
  EXPECT_EQ(after.alloc_count, before.alloc_count);
  EXPECT_EQ(after.reuse_count, before.reuse_count);
  EXPECT_EQ(after.bytes_cached, before.bytes_cached);
  EXPECT_EQ(after.bytes_live, before.bytes_live);
  EXPECT_EQ(after.bytes_peak, before.bytes_peak);
  EXPECT_EQ(after.outstanding, before.outstanding);
  EXPECT_EQ(after.bytes_outstanding, before.bytes_outstanding);

  warm = PooledBuffer{};
  PooledBuffer again = pool.acquire(256);
  ASSERT_TRUE(again);
  EXPECT_EQ(pool.stats().reuse_count, before.reuse_count + 1);
}

TEST(BufferPool, AcquireAlignedAtClassCapacity) {
  BufferPool pool;
  PooledBuffer b = pool.acquire(100);
  ASSERT_TRUE(b);
  EXPECT_EQ(b.capacity(), 128u);
  EXPECT_TRUE(is_aligned_64(b.data()));
  // The slab is writable through its full class capacity.
  std::memset(b.data(), 0xab, b.capacity());
}

TEST(BufferPool, ZeroBytesYieldsNullBuffer) {
  BufferPool pool;
  PooledBuffer b = pool.acquire(0);
  EXPECT_FALSE(b);
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_EQ(pool.stats().alloc_count, 0u);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BufferPool, StrictLifoReuseWithinClass) {
  BufferPool pool;
  PooledBuffer a = pool.acquire(256);
  PooledBuffer b = pool.acquire(256);
  void* pa = a.data();
  void* pb = b.data();
  ASSERT_NE(pa, pb);

  a.release();          // free list: [a]
  b.release();          // free list: [b, a] — b on top
  PooledBuffer first = pool.acquire(256);
  PooledBuffer second = pool.acquire(256);
  EXPECT_EQ(first.data(), pb) << "most recently released slab must come first";
  EXPECT_EQ(second.data(), pa);

  const PoolStats s = pool.stats();
  EXPECT_EQ(s.alloc_count, 2u);
  EXPECT_EQ(s.reuse_count, 2u);
}

TEST(BufferPool, DistinctClassesDoNotShareSlabs) {
  BufferPool pool;
  PooledBuffer small = pool.acquire(64);
  void* ps = small.data();
  small.release();
  // A different class must not be served from the 64 B free list.
  PooledBuffer big = pool.acquire(65);
  EXPECT_NE(big.data(), ps);
  EXPECT_EQ(big.capacity(), 128u);
  EXPECT_EQ(pool.stats().alloc_count, 2u);
  EXPECT_EQ(pool.stats().reuse_count, 0u);
}

TEST(BufferPool, ExhaustionGrowsWithFreshSlabs) {
  // Holding N slabs of one class forces N distinct heap allocations; the
  // pool grows instead of blocking or handing out a live slab twice.
  BufferPool pool;
  constexpr std::size_t kN = 16;
  std::vector<PooledBuffer> held;
  held.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) held.push_back(pool.acquire(512));
  for (std::size_t i = 0; i < kN; ++i)
    for (std::size_t j = i + 1; j < kN; ++j)
      ASSERT_NE(held[i].data(), held[j].data()) << i << " vs " << j;

  PoolStats s = pool.stats();
  EXPECT_EQ(s.alloc_count, kN);
  EXPECT_EQ(s.reuse_count, 0u);
  EXPECT_EQ(s.outstanding, kN);
  EXPECT_EQ(s.bytes_outstanding, kN * 512u);

  held.clear();  // all back on the free list
  s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.bytes_cached, kN * 512u);
  // Re-acquiring the whole set is pure reuse.
  for (std::size_t i = 0; i < kN; ++i) held.push_back(pool.acquire(512));
  s = pool.stats();
  EXPECT_EQ(s.alloc_count, kN);
  EXPECT_EQ(s.reuse_count, kN);
}

TEST(BufferPool, CrossThreadReleaseRecycles) {
  // A client thread destroying a pooled result returns the slab to the
  // scheduler's pool; the next acquisition on this thread reuses it.
  BufferPool pool;
  PooledBuffer b = pool.acquire(1024);
  void* pb = b.data();
  std::thread t([moved = std::move(b)]() mutable { moved.release(); });
  t.join();

  PooledBuffer again = pool.acquire(1024);
  EXPECT_EQ(again.data(), pb);
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.alloc_count, 1u);
  EXPECT_EQ(s.reuse_count, 1u);
  EXPECT_EQ(s.outstanding, 1u);
}

TEST(BufferPool, StatsReconcileExactly) {
  BufferPool pool;
  {
    PooledBuffer a = pool.acquire(100);   // class 128
    PooledBuffer b = pool.acquire(300);   // class 512
    PooledBuffer c = pool.acquire(3000);  // class 4096
    const PoolStats s = pool.stats();
    EXPECT_EQ(s.alloc_count, 3u);
    EXPECT_EQ(s.outstanding, 3u);
    EXPECT_EQ(s.bytes_outstanding, 128u + 512u + 4096u);
    EXPECT_EQ(s.bytes_cached, 0u);
    EXPECT_EQ(s.bytes_live, s.bytes_outstanding);
    EXPECT_EQ(s.bytes_peak, s.bytes_live);
  }
  PoolStats s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.bytes_outstanding, 0u);
  EXPECT_EQ(s.bytes_cached, 128u + 512u + 4096u);
  EXPECT_EQ(s.bytes_live, s.bytes_cached);
  EXPECT_EQ(s.bytes_peak, 128u + 512u + 4096u);

  pool.trim();
  s = pool.stats();
  EXPECT_EQ(s.bytes_cached, 0u);
  EXPECT_EQ(s.bytes_live, 0u);
  EXPECT_EQ(s.bytes_peak, 128u + 512u + 4096u) << "trim keeps the peak";
}

TEST(BufferPool, ReleaseIsIdempotent) {
  BufferPool pool;
  PooledBuffer b = pool.acquire(64);
  b.release();
  b.release();  // no double-return
  EXPECT_FALSE(b);
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.stats().bytes_cached, 64u);
}

TEST(BufferPool, BufferOutlivesPool) {
  // The exact shutdown-ordering case: a client still holds a pooled result
  // when the engine (and its pools) are destroyed. The slab must stay
  // readable and free cleanly afterwards — ASan verifies the latter.
  PooledBuffer survivor;
  {
    BufferPool pool;
    survivor = pool.acquire(256);
    std::memset(survivor.data(), 0x5a, survivor.capacity());
  }
  ASSERT_TRUE(survivor);
  const auto* bytes = static_cast<const unsigned char*>(survivor.data());
  for (std::size_t i = 0; i < survivor.capacity(); ++i)
    ASSERT_EQ(bytes[i], 0x5a) << i;
  survivor.release();  // frees directly: the free lists are gone
  EXPECT_FALSE(survivor);
}

TEST(BufferPool, AcquireSiblingComesFromSamePool) {
  BufferPool pool;
  PooledBuffer a = pool.acquire(64);
  PooledBuffer grown = a.acquire_sibling(200);  // class 256
  ASSERT_TRUE(grown);
  EXPECT_EQ(grown.capacity(), 256u);
  EXPECT_EQ(pool.stats().alloc_count, 2u);
  EXPECT_EQ(pool.stats().outstanding, 2u);

  PooledBuffer null_buf;
  EXPECT_FALSE(null_buf.acquire_sibling(64));
}

// ------------------------------------------------ Tensor / Workspace ---

TEST(PooledTensor, ZeroFilledAndAligned) {
  BufferPool pool;
  Tensor t = Tensor::pooled({4, 8}, &pool);
  EXPECT_TRUE(t.pool_backed());
  EXPECT_TRUE(is_aligned_64(t.data()));
  for (std::size_t i = 0; i < t.size(); ++i) ASSERT_EQ(t[i], 0.0f);

  // Null pool degrades to plain heap storage.
  Tensor h = Tensor::pooled({4, 8}, nullptr);
  EXPECT_FALSE(h.pool_backed());
}

TEST(PooledTensor, ResetReusesSlabWhenItFits) {
  BufferPool pool;
  Tensor t = Tensor::pooled({4, 8}, &pool);  // 128 B -> class 128
  const void* slab = t.data();
  t.fill(7.0f);
  t.reset({2, 8});  // smaller: same slab, zeroed
  EXPECT_EQ(t.data(), slab);
  for (std::size_t i = 0; i < t.size(); ++i) ASSERT_EQ(t[i], 0.0f);

  t.reset({16, 16});  // larger: sibling slab from the same pool
  EXPECT_TRUE(t.pool_backed());
  EXPECT_EQ(pool.stats().alloc_count, 2u);
  for (std::size_t i = 0; i < t.size(); ++i) ASSERT_EQ(t[i], 0.0f);
}

TEST(PooledTensor, CopyDeepCopiesToHeap) {
  // Copies escape the pool: results handed across ownership boundaries
  // never alias a recycled slab.
  BufferPool pool;
  Tensor t = Tensor::pooled({2, 4}, &pool);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  Tensor copy = t;
  EXPECT_FALSE(copy.pool_backed());
  EXPECT_NE(copy.data(), t.data());
  for (std::size_t i = 0; i < t.size(); ++i) ASSERT_EQ(copy[i], t[i]);
}

TEST(Workspace, PrepareReachesSteadyStateReuse) {
  BufferPool pool;
  transformer::Workspace ws(&pool);

  // First prepare allocates; repeats of the same (or smaller) shape reuse
  // the slab in place — the serving steady state.
  ws.prepare(ws.x, {8, 16});
  const void* slab = ws.x.data();
  const std::uint64_t allocs = pool.stats().alloc_count;
  for (int round = 0; round < 4; ++round) {
    ws.prepare(ws.x, {8, 16});
    EXPECT_EQ(ws.x.data(), slab);
    ws.prepare(ws.x, {4, 16});
    EXPECT_EQ(ws.x.data(), slab);
  }
  EXPECT_EQ(pool.stats().alloc_count, allocs) << "steady state reallocated";

  // Growth past capacity takes a new slab; the old one returns for reuse.
  ws.prepare(ws.x, {64, 64});
  EXPECT_TRUE(ws.x.pool_backed());
  EXPECT_GT(pool.stats().alloc_count, allocs);
}

TEST(Workspace, PoollessPrepareStaysOnHeap) {
  transformer::Workspace ws(nullptr);
  ws.prepare(ws.x, {8, 16});
  EXPECT_FALSE(ws.x.pool_backed());
  const void* p = ws.x.data();
  ws.prepare(ws.x, {8, 16});  // vector-capacity reuse, no reallocation
  EXPECT_EQ(ws.x.data(), p);
  for (std::size_t i = 0; i < ws.x.size(); ++i) ASSERT_EQ(ws.x[i], 0.0f);
}

}  // namespace
}  // namespace nnlut::runtime
