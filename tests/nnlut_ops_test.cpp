#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "approx/linear_lut.h"
#include "core/function_library.h"
#include "core/nnlut_ops.h"
#include "core/scalar_fn.h"
#include "numerics/math.h"
#include "numerics/rng.h"

namespace nnlut {
namespace {

// With exact scalar functions plugged in, the composite operators must
// reduce to the textbook definitions. This isolates composition bugs from
// approximation error.

TEST(SoftmaxApprox, ExactFnsReproduceSoftmax) {
  const ExactFn e(exp_exact);
  const ExactFn r(reciprocal_exact);
  const SoftmaxApprox sm(e, r);

  std::vector<float> row{0.3f, -1.2f, 2.0f, 0.0f};
  std::vector<float> expect = row;
  sm(row);
  softmax_exact(expect);
  for (std::size_t i = 0; i < row.size(); ++i)
    EXPECT_NEAR(row[i], expect[i], 1e-6f);
}

TEST(SoftmaxApprox, SumsToApproxOne) {
  const ExactFn e(exp_exact);
  const ExactFn r(reciprocal_exact);
  const SoftmaxApprox sm(e, r);
  Rng rng(3);
  for (int t = 0; t < 50; ++t) {
    std::vector<float> row(32);
    for (float& v : row) v = rng.uniform(-8.0f, 8.0f);
    sm(row);
    const float sum = std::accumulate(row.begin(), row.end(), 0.0f);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxApprox, ClipsExtremeLogitsInsteadOfExploding) {
  const ExactFn e(exp_exact);
  const ExactFn r(reciprocal_exact);
  const SoftmaxApprox sm(e, r);
  std::vector<float> row{0.0f, -1e9f};  // e.g. an additive attention mask
  sm(row);
  EXPECT_NEAR(row[0], 1.0f, 1e-5f);
  EXPECT_NEAR(row[1], 0.0f, 1e-5f);
}

TEST(SoftmaxApprox, EmptyRowIsNoop) {
  const ExactFn e(exp_exact);
  const ExactFn r(reciprocal_exact);
  const SoftmaxApprox sm(e, r);
  std::vector<float> row;
  sm(row);
  EXPECT_TRUE(row.empty());
}

TEST(SoftmaxApprox, TrainedLutsTrackExactSoftmax) {
  const FittedLut exp_fit = fit_lut(TargetFn::kExp, 16, FitPreset::kFast, 5);
  const FittedLut div_fit =
      fit_lut(TargetFn::kReciprocal, 16, FitPreset::kFast, 5);
  const LutFp32 e(exp_fit.lut), r(div_fit.lut);
  const SoftmaxApprox sm(e, r);

  Rng rng(9);
  double worst = 0.0;
  for (int t = 0; t < 20; ++t) {
    std::vector<float> row(64);
    for (float& v : row) v = rng.uniform(-4.0f, 4.0f);
    std::vector<float> expect = row;
    sm(row);
    softmax_exact(expect);
    for (std::size_t i = 0; i < row.size(); ++i)
      worst = std::max(worst, std::abs(static_cast<double>(row[i]) - expect[i]));
  }
  EXPECT_LT(worst, 0.04);  // Fig. 2(b): NN-LUT softmax hugs the FP32 points
}

TEST(LayerNormApprox, ExactRsqrtReproducesLayerNorm) {
  const ExactFn rs(rsqrt_exact);
  const LayerNormApprox ln(rs);
  Rng rng(4);
  std::vector<float> x(64), y(64), expect(64);
  for (float& v : x) v = rng.uniform(-3.0f, 3.0f);
  ln(x, y, {}, {});
  layer_norm_exact(x, expect, {}, {});
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y[i], expect[i], 1e-5f);
}

TEST(LayerNormApprox, InputScalingIdentityWithExactRsqrt) {
  // rsqrt(v*S)*sqrt(S) == rsqrt(v) exactly, so scaling must be transparent.
  const ExactFn rs(rsqrt_exact);
  LayerNormApprox::Options opt;
  opt.input_scaling = true;
  const LayerNormApprox ln(rs, opt);

  // Small-variance input (variance ~1e-4 after eps) exercises the v < 1 path.
  std::vector<float> x{0.01f, -0.01f, 0.011f, -0.009f};
  std::vector<float> y(x.size()), expect(x.size());
  ln(x, y, {}, {});
  layer_norm_exact(x, expect, {}, {});
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y[i], expect[i], 2e-4f);
}

TEST(LayerNormApprox, ScaledLutHandlesSmallVariance) {
  const FittedLut rsqrt_fit = fit_lut(TargetFn::kRsqrt, 16, FitPreset::kFast, 5);
  const LutFp32 rs(rsqrt_fit.lut);

  LayerNormApprox::Options with;
  with.input_scaling = true;
  LayerNormApprox::Options without;
  without.input_scaling = false;
  const LayerNormApprox ln_scaled(rs, with);
  const LayerNormApprox ln_raw(rs, without);

  // Variance ~ 1e-2: far below the LUT's (0.1, 1024) training range.
  Rng rng(12);
  std::vector<float> x(128);
  for (float& v : x) v = rng.uniform(-0.15f, 0.15f);
  std::vector<float> ys(x.size()), yr(x.size()), expect(x.size());
  ln_scaled(x, ys, {}, {});
  ln_raw(x, yr, {}, {});
  layer_norm_exact(x, expect, {}, {});

  double err_scaled = 0, err_raw = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err_scaled += std::abs(ys[i] - expect[i]);
    err_raw += std::abs(yr[i] - expect[i]);
  }
  // Sec. 3.3.2: scaling rescues the wide-dynamic-range regime.
  EXPECT_LT(err_scaled, err_raw);
  EXPECT_LT(err_scaled / static_cast<double>(x.size()), 0.05);
}

TEST(LayerNormApprox, GammaBetaApplied) {
  const ExactFn rs(rsqrt_exact);
  const LayerNormApprox ln(rs);
  std::vector<float> x{-1.0f, 1.0f};
  std::vector<float> y(2);
  std::vector<float> gamma{3.0f, 3.0f}, beta{-1.0f, -1.0f};
  ln(x, y, gamma, beta);
  std::vector<float> expect(2);
  layer_norm_exact(x, expect, gamma, beta);
  EXPECT_NEAR(y[0], expect[0], 1e-5f);
  EXPECT_NEAR(y[1], expect[1], 1e-5f);
}

TEST(GeluApprox, TrainedLutTracksGelu) {
  const FittedLut fit = fit_lut(TargetFn::kGelu, 16, FitPreset::kFast, 5);
  const LutFp32 g(fit.lut);
  const GeluApprox gelu(g);
  double worst = 0.0;
  for (float x = -5.0f; x <= 5.0f; x += 0.01f)
    worst = std::max(worst,
                     std::abs(static_cast<double>(gelu.eval(x)) - gelu_exact(x)));
  EXPECT_LT(worst, 0.08);
}

TEST(GeluApprox, TailsExtrapolateSensibly) {
  const FittedLut fit = fit_lut(TargetFn::kGelu, 16, FitPreset::kFast, 5);
  const LutFp32 g(fit.lut);
  const GeluApprox gelu(g);
  // Outside the training range the LUT extrapolates the outermost learned
  // segments linearly. GELU(x) ~ 0 (left) / ~ x (right); the learned edge
  // slopes keep extrapolation bounded though not exact (the paper trains and
  // deploys on (-5, 5) only).
  EXPECT_NEAR(gelu.eval(-8.0f), 0.0f, 1.0f);
  EXPECT_NEAR(gelu.eval(8.0f), 8.0f, 1.5f);
}

TEST(CapturingFn, RecordsInputs) {
  const ExactFn base(gelu_exact);
  std::vector<float> sink;
  const CapturingFn cap(base, sink);
  EXPECT_EQ(cap.eval(1.5f), gelu_exact(1.5f));
  cap.eval(-0.5f);
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink[0], 1.5f);
  EXPECT_EQ(sink[1], -0.5f);
}

}  // namespace
}  // namespace nnlut
