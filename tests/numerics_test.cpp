#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "numerics/half.h"
#include "numerics/math.h"
#include "numerics/rng.h"
#include "numerics/stats.h"

namespace nnlut {
namespace {

// ---------------------------------------------------------------- half ----

TEST(Half, ExactSmallIntegersRoundTrip) {
  for (int i = -2048; i <= 2048; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(round_to_half(f), f) << i;
  }
}

TEST(Half, PowersOfTwoRoundTrip) {
  for (int e = -14; e <= 15; ++e) {
    const float f = std::ldexp(1.0f, e);
    EXPECT_EQ(round_to_half(f), f) << e;
  }
}

TEST(Half, SignPreserved) {
  EXPECT_EQ(round_to_half(-1.5f), -1.5f);
  EXPECT_EQ(float_to_half_bits(-0.0f), 0x8000u);
  EXPECT_EQ(float_to_half_bits(0.0f), 0x0000u);
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_TRUE(std::isinf(round_to_half(70000.0f)));
  EXPECT_TRUE(std::isinf(round_to_half(-70000.0f)));
  EXPECT_LT(round_to_half(-70000.0f), 0.0f);
}

TEST(Half, MaxFiniteValue) {
  EXPECT_EQ(round_to_half(65504.0f), 65504.0f);
}

TEST(Half, SubnormalsRepresentable) {
  const float smallest = std::ldexp(1.0f, -24);  // 2^-24, smallest subnormal
  EXPECT_EQ(round_to_half(smallest), smallest);
  EXPECT_EQ(round_to_half(smallest / 4.0f), 0.0f);  // below half range
}

TEST(Half, RoundToNearestEvenTie) {
  // 2049 is exactly between representable 2048 and 2050 -> even (2048).
  EXPECT_EQ(round_to_half(2049.0f), 2048.0f);
  // 2051 is between 2050 and 2052 -> even (2052).
  EXPECT_EQ(round_to_half(2051.0f), 2052.0f);
}

TEST(Half, NanPropagates) {
  EXPECT_TRUE(std::isnan(round_to_half(std::numeric_limits<float>::quiet_NaN())));
}

TEST(Half, InfinityPreserved) {
  EXPECT_TRUE(std::isinf(round_to_half(std::numeric_limits<float>::infinity())));
}

TEST(Half, RelativeErrorBounded) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.uniform(-1000.0f, 1000.0f);
    const float h = round_to_half(f);
    if (f != 0.0f) {
      EXPECT_LE(std::abs(h - f) / std::abs(f), 1.0f / 1024.0f) << f;
    }
  }
}

TEST(Half, ArithmeticRoundsThroughHalf) {
  const Half a(1.0f), b(0.0004f);
  // 1 + 0.0004 is not representable in binary16; rounds back to 1.
  EXPECT_EQ((a + b).to_float(), 1.0f);
}

// ---------------------------------------------------------------- math ----

TEST(Math, GeluMatchesDefinition) {
  for (float x : {-4.0f, -1.0f, -0.5f, 0.0f, 0.5f, 1.0f, 4.0f}) {
    const double expect = 0.5 * x * (1.0 + std::erf(x / std::sqrt(2.0)));
    EXPECT_NEAR(gelu_exact(x), expect, 1e-6) << x;
  }
}

TEST(Math, GeluLimits) {
  EXPECT_NEAR(gelu_exact(-10.0f), 0.0f, 1e-6);
  EXPECT_NEAR(gelu_exact(10.0f), 10.0f, 1e-5);
  EXPECT_EQ(gelu_exact(0.0f), 0.0f);
}

TEST(Math, SoftmaxSumsToOne) {
  std::vector<float> row{1.0f, 2.0f, 3.0f, 4.0f};
  softmax_exact(row);
  float sum = 0.0f;
  for (float v : row) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-6);
  EXPECT_GT(row[3], row[0]);
}

TEST(Math, SoftmaxStableForLargeLogits) {
  std::vector<float> row{1000.0f, 1000.0f};
  softmax_exact(row);
  EXPECT_NEAR(row[0], 0.5f, 1e-6);
  EXPECT_NEAR(row[1], 0.5f, 1e-6);
}

TEST(Math, SoftmaxEmptyRowIsNoop) {
  std::vector<float> row;
  softmax_exact(row);  // must not crash
  EXPECT_TRUE(row.empty());
}

TEST(Math, LayerNormZeroMeanUnitVar) {
  std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f, 7.0f, 8.0f};
  std::vector<float> y(x.size());
  layer_norm_exact(x, y, {}, {});
  double mean = 0, var = 0;
  for (float v : y) mean += v;
  mean /= static_cast<double>(y.size());
  for (float v : y) var += (v - mean) * (v - mean);
  var /= static_cast<double>(y.size());
  EXPECT_NEAR(mean, 0.0, 1e-5);
  EXPECT_NEAR(var, 1.0, 1e-3);
}

TEST(Math, LayerNormAffine) {
  std::vector<float> x{-1.0f, 1.0f};
  std::vector<float> y(2);
  std::vector<float> gamma{2.0f, 2.0f};
  std::vector<float> beta{1.0f, 1.0f};
  layer_norm_exact(x, y, gamma, beta);
  EXPECT_NEAR(y[0], 1.0f - 2.0f * 1.0f / std::sqrt(1.0f + 1e-5f), 1e-4);
  EXPECT_NEAR(y[1], 1.0f + 2.0f * 1.0f / std::sqrt(1.0f + 1e-5f), 1e-4);
}

// --------------------------------------------------------------- stats ----

TEST(Stats, Accuracy) {
  const std::vector<int> pred{1, 0, 1, 1};
  const std::vector<int> gold{1, 0, 0, 1};
  EXPECT_DOUBLE_EQ(accuracy(pred, gold), 0.75);
}

TEST(Stats, AccuracyEmpty) {
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
}

TEST(Stats, F1Binary) {
  // tp=2, fp=1, fn=1 -> f1 = 2*2/(4+1+1)
  const std::vector<int> pred{1, 1, 1, 0, 0};
  const std::vector<int> gold{1, 1, 0, 1, 0};
  EXPECT_NEAR(f1_binary(pred, gold), 2.0 * 2 / (2.0 * 2 + 1 + 1), 1e-12);
}

TEST(Stats, F1DegenerateIsZero) {
  const std::vector<int> pred{0, 0};
  const std::vector<int> gold{0, 0};
  EXPECT_DOUBLE_EQ(f1_binary(pred, gold), 0.0);
}

TEST(Stats, MatthewsPerfect) {
  const std::vector<int> pred{1, 0, 1, 0};
  const std::vector<int> gold{1, 0, 1, 0};
  EXPECT_NEAR(matthews_corrcoef(pred, gold), 1.0, 1e-12);
}

TEST(Stats, MatthewsInverted) {
  const std::vector<int> pred{0, 1, 0, 1};
  const std::vector<int> gold{1, 0, 1, 0};
  EXPECT_NEAR(matthews_corrcoef(pred, gold), -1.0, 1e-12);
}

TEST(Stats, MatthewsDegenerateIsZero) {
  const std::vector<int> pred{1, 1};
  const std::vector<int> gold{1, 0};
  EXPECT_DOUBLE_EQ(matthews_corrcoef(pred, gold), 0.0);
}

TEST(Stats, PearsonLinear) {
  const std::vector<float> a{1, 2, 3, 4, 5};
  const std::vector<float> b{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-9);
}

TEST(Stats, PearsonAnticorrelated) {
  const std::vector<float> a{1, 2, 3};
  const std::vector<float> b{3, 2, 1};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-9);
}

TEST(Stats, PearsonZeroVariance) {
  const std::vector<float> a{1, 1, 1};
  const std::vector<float> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Stats, SpearmanMonotonic) {
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{1, 10, 100, 1000};  // nonlinear but monotone
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-9);
}

TEST(Stats, FractionalRanksTies) {
  const std::vector<float> v{10.0f, 20.0f, 10.0f};
  const auto r = fractional_ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.5);
  EXPECT_DOUBLE_EQ(r[2], 1.5);
  EXPECT_DOUBLE_EQ(r[1], 3.0);
}

TEST(Stats, SpanF1ExactMatch) {
  EXPECT_DOUBLE_EQ(span_f1(3, 5, 3, 5), 1.0);
  EXPECT_TRUE(span_exact_match(3, 5, 3, 5));
}

TEST(Stats, SpanF1NoOverlap) {
  EXPECT_DOUBLE_EQ(span_f1(0, 2, 5, 7), 0.0);
  EXPECT_FALSE(span_exact_match(0, 2, 5, 7));
}

TEST(Stats, SpanF1PartialOverlap) {
  // pred [2,5] (4 tokens), gold [4,7] (4 tokens), overlap [4,5] (2 tokens).
  const double p = 2.0 / 4.0, r = 2.0 / 4.0;
  EXPECT_NEAR(span_f1(2, 5, 4, 7), 2 * p * r / (p + r), 1e-12);
}

TEST(Stats, SpanF1InvalidSpan) {
  EXPECT_DOUBLE_EQ(span_f1(5, 3, 1, 2), 0.0);
}

TEST(Stats, MeanMaxAbsError) {
  const std::vector<float> a{1, 2, 3};
  const std::vector<float> b{2, 2, 1};
  EXPECT_NEAR(mean_abs_error(a, b), (1 + 0 + 2) / 3.0, 1e-12);
  EXPECT_NEAR(max_abs_error(a, b), 2.0, 1e-12);
}

// ----------------------------------------------------------------- rng ----

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform(0.0f, 1.0f), b.uniform(0.0f, 1.0f));
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace nnlut
