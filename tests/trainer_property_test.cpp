// Property tests of the approximator trainer: sampling distributions stay
// within the configured range, seeds reproduce exactly, restarts never hurt,
// and the NN -> LUT pipeline preserves training quality for every preset.
#include <gtest/gtest.h>

#include <cmath>

#include "core/function_library.h"
#include "core/trainer.h"
#include "core/transform.h"
#include "numerics/math.h"
#include "numerics/rng.h"

namespace nnlut {
namespace {

TEST(TrainerProperties, SameSeedReproducesExactly) {
  TrainConfig cfg = recipe(TargetFn::kGelu, 8, FitPreset::kFast, 5);
  cfg.dataset_size = 2000;
  cfg.epochs = 5;
  cfg.restarts = 1;
  const TrainResult a = fit_approx_net(gelu_exact, cfg);
  const TrainResult b = fit_approx_net(gelu_exact, cfg);
  ASSERT_EQ(a.net.hidden_size(), b.net.hidden_size());
  for (std::size_t i = 0; i < a.net.hidden_size(); ++i) {
    EXPECT_EQ(a.net.n[i], b.net.n[i]);
    EXPECT_EQ(a.net.b[i], b.net.b[i]);
    EXPECT_EQ(a.net.m[i], b.net.m[i]);
  }
  EXPECT_EQ(a.net.c, b.net.c);
}

TEST(TrainerProperties, DifferentSeedsDiffer) {
  TrainConfig cfg = recipe(TargetFn::kGelu, 8, FitPreset::kFast, 5);
  cfg.dataset_size = 2000;
  cfg.epochs = 3;
  cfg.restarts = 1;
  TrainConfig cfg2 = cfg;
  cfg2.seed = 6;
  const TrainResult a = fit_approx_net(gelu_exact, cfg);
  const TrainResult b = fit_approx_net(gelu_exact, cfg2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.net.hidden_size() && !any_diff; ++i)
    any_diff = (a.net.n[i] != b.net.n[i]);
  EXPECT_TRUE(any_diff);
}

TEST(TrainerProperties, MoreRestartsNeverWorse) {
  TrainConfig one = recipe(TargetFn::kRsqrt, 16, FitPreset::kFast, 31);
  one.dataset_size = 5000;
  one.epochs = 10;
  one.restarts = 1;
  TrainConfig three = one;
  three.restarts = 3;
  const double e1 = fit_approx_net(rsqrt_exact, one).validation_l1;
  const double e3 = fit_approx_net(rsqrt_exact, three).validation_l1;
  // Restart 0 is shared, so the 3-restart result can only improve on it.
  EXPECT_LE(e3, e1 + 1e-12);
}

class PresetSweep
    : public ::testing::TestWithParam<std::tuple<TargetFn, FitPreset>> {};

TEST_P(PresetSweep, TransformedLutMatchesItsNet) {
  const auto [fn, preset] = GetParam();
  const FittedLut fit = fit_lut(fn, 16, preset, 77);
  const InputRange r = fn_spec(fn).range;
  for (int i = 0; i <= 200; ++i) {
    const float x = r.lo + (r.hi - r.lo) * static_cast<float>(i) / 200;
    const float scale = std::max(1.0f, std::abs(fit.net(x)));
    EXPECT_NEAR(fit.lut(x), fit.net(x), 1e-4f * scale) << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Functions, PresetSweep,
    ::testing::Combine(::testing::Values(TargetFn::kGelu, TargetFn::kExp,
                                         TargetFn::kReciprocal,
                                         TargetFn::kRsqrt),
                       ::testing::Values(FitPreset::kFast)),
    [](const ::testing::TestParamInfo<std::tuple<TargetFn, FitPreset>>& info) {
      std::string n = fn_spec(std::get<0>(info.param)).name;
      for (char& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST(TrainerProperties, GridErrorConsistentWithValidation) {
  // Validation L1 (sampling distribution) and grid L1 (uniform) measure the
  // same fit; for GELU (uniform sampling) they must agree closely.
  const TrainConfig cfg = recipe(TargetFn::kGelu, 16, FitPreset::kFast, 9);
  const TrainResult r = fit_approx_net(gelu_exact, cfg);
  const double grid = grid_l1_error(r.net, gelu_exact, cfg.range);
  EXPECT_NEAR(grid, r.validation_l1, 0.5 * r.validation_l1 + 1e-3);
}

TEST(TrainerProperties, ValidationMaxBoundsValidationMean) {
  const TrainConfig cfg = recipe(TargetFn::kGelu, 16, FitPreset::kFast, 10);
  const TrainResult r = fit_approx_net(gelu_exact, cfg);
  EXPECT_GE(r.validation_max, r.validation_l1);
}

TEST(TrainerProperties, HigherCapacityFitsBetter) {
  const double e4 =
      fit_lut(TargetFn::kRsqrt, 4, FitPreset::kFast, 12).validation_l1;
  const double e32 =
      fit_lut(TargetFn::kRsqrt, 32, FitPreset::kFast, 12).validation_l1;
  EXPECT_LT(e32, e4);
}

}  // namespace
}  // namespace nnlut
