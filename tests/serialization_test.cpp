#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/function_library.h"
#include "core/serialization.h"
#include "core/transform.h"
#include "numerics/rng.h"

namespace nnlut {
namespace {

PiecewiseLinear sample_lut() {
  return PiecewiseLinear({-1.5f, 0.25f, 2.0f}, {0.1f, -0.5f, 1.25f, 3.0f},
                         {0.0f, 1e-7f, -2.5f, 42.0f});
}

TEST(Serialization, LutRoundTripIsBitExact) {
  const PiecewiseLinear lut = sample_lut();
  std::stringstream ss;
  write_lut(ss, lut);
  const PiecewiseLinear back = read_lut(ss);

  ASSERT_EQ(back.entries(), lut.entries());
  for (std::size_t i = 0; i < lut.breakpoints().size(); ++i)
    EXPECT_EQ(back.breakpoints()[i], lut.breakpoints()[i]);
  for (std::size_t i = 0; i < lut.entries(); ++i) {
    EXPECT_EQ(back.slopes()[i], lut.slopes()[i]);
    EXPECT_EQ(back.intercepts()[i], lut.intercepts()[i]);
  }
}

TEST(Serialization, TrainedLutRoundTripEvaluatesIdentically) {
  const FittedLut fit = fit_lut(TargetFn::kGelu, 16, FitPreset::kFast, 7);
  std::stringstream ss;
  write_lut(ss, fit.lut);
  const PiecewiseLinear back = read_lut(ss);
  for (float x = -6.0f; x <= 6.0f; x += 0.01f)
    EXPECT_EQ(back(x), fit.lut(x)) << x;
}

TEST(Serialization, NetRoundTripIsBitExact) {
  Rng rng(3);
  ApproxNet net;
  for (int i = 0; i < 15; ++i) {
    net.n.push_back(rng.uniform(-2, 2));
    net.b.push_back(rng.uniform(-3, 3));
    net.m.push_back(rng.uniform(-1, 1));
  }
  net.c = 0.123456789f;

  std::stringstream ss;
  write_net(ss, net);
  const ApproxNet back = read_net(ss);
  ASSERT_EQ(back.hidden_size(), net.hidden_size());
  for (std::size_t i = 0; i < net.hidden_size(); ++i) {
    EXPECT_EQ(back.n[i], net.n[i]);
    EXPECT_EQ(back.b[i], net.b[i]);
    EXPECT_EQ(back.m[i], net.m[i]);
  }
  EXPECT_EQ(back.c, net.c);

  // The reloaded net transforms to the same LUT.
  const PiecewiseLinear a = nn_to_lut(net);
  const PiecewiseLinear b = nn_to_lut(back);
  for (float x = -5; x <= 5; x += 0.1f) EXPECT_EQ(a(x), b(x));
}

TEST(Serialization, RejectsBadHeader) {
  std::stringstream ss("garbage v9\n");
  EXPECT_THROW(read_lut(ss), std::runtime_error);
  std::stringstream ss2("nnlut-net v1\nhidden oops\n");
  EXPECT_THROW(read_net(ss2), std::runtime_error);
}

TEST(Serialization, RejectsWrongCounts) {
  std::stringstream ss;
  ss << "nnlut-lut v1\nentries 3\nbreakpoints 0x1p+0\n";  // needs 2
  EXPECT_THROW(read_lut(ss), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedInput) {
  const PiecewiseLinear lut = sample_lut();
  std::stringstream ss;
  write_lut(ss, lut);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream half(text);
  EXPECT_THROW(read_lut(half), std::runtime_error);
}

TEST(Serialization, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "nnlut_test.lut";
  const PiecewiseLinear lut = sample_lut();
  save_lut(path.string(), lut);
  const PiecewiseLinear back = load_lut(path.string());
  EXPECT_EQ(back.entries(), lut.entries());
  EXPECT_EQ(back(0.5f), lut(0.5f));
  std::filesystem::remove(path);
}

TEST(Serialization, MissingFileThrows) {
  EXPECT_THROW(load_lut("/nonexistent/dir/file.lut"), std::runtime_error);
}

}  // namespace
}  // namespace nnlut
