// Chaos / fault-injection suite for the network front-end. Every scenario
// kills, wedges or races a connection at an inconvenient moment and then
// demands EXACT reconciliation: no hung promise, no leaked request, no
// touch of freed session state (the suite runs under TSan and ASan in CI).
// The load-bearing identities, asserted after every scenario:
//
//   net:    submits_forwarded == completions_enqueued + responses_dropped
//   ledger: submitted == completed + failed + cancelled   (after drain)
//
// Scenarios: client disconnect with requests in flight (results resolve
// into an expired session and count dropped), slow-reader eviction at the
// write-queue byte bound, half-written frames finished with FIN or RST,
// cancel racing completion, duplicate in-flight request ids, and full
// server stop under live traffic.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/protocol.h"
#include "net/tcp_server.h"
#include "numerics/math.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "transformer/infer.h"

namespace nnlut::net {
namespace {

using namespace std::chrono_literals;
using namespace nnlut::transformer;

ModelConfig tiny() {
  ModelConfig c = ModelConfig::roberta_like();
  c.vocab = 32;
  c.hidden = 16;
  c.layers = 2;
  c.heads = 2;
  c.ffn = 32;
  c.max_seq = 12;
  return c;
}

BatchInput request_of(std::size_t batch, std::size_t seq, int fill = 1) {
  BatchInput in;
  in.batch = batch;
  in.seq = seq;
  in.token_ids.assign(batch * seq, fill);
  return in;
}

/// Spin (politely) until `pred` holds; fail the test on expiry. Chaos
/// scenarios synchronize on observable counters instead of sleeps so they
/// are exact on fast machines and patient on drowning CI ones.
bool poll_until(const std::function<bool()>& pred,
                std::chrono::milliseconds budget = 10s) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

void expect_net_identity(const NetStats& s) {
  EXPECT_EQ(s.submits_forwarded,
            s.completions_enqueued + s.responses_dropped);
}

void expect_ledger_drained(const serve::SlotStats& s) {
  EXPECT_EQ(s.submitted, s.completed + s.failed + s.cancelled);
}

/// An engine with one slot whose scheduler hoards requests: a huge
/// max_wait and batch bound keep everything parked in the batcher's bucket
/// until shutdown() drains it — the window every disconnect race needs.
struct SlowHarness {
  Rng rng{811};
  TaskModel model{tiny(), HeadKind::kClassify, 2, rng};
  ExactNonlinearities nl{model.config().act};
  serve::Engine engine{serve::EngineConfig{/*threads=*/2}};

  explicit SlowHarness(const char* slot_id = "slow") {
    serve::SlotConfig scfg;
    scfg.max_batch = 64;
    scfg.max_wait = 10min;
    engine.register_model(slot_id, model, nl, scfg);
  }
  ~SlowHarness() { runtime::set_runtime_config({}); }
};

TEST(NetChaos, DisconnectWithRequestsInFlightDropsExactly) {
  SlowHarness h;
  TcpServer server(h.engine);

  constexpr std::uint64_t kInFlight = 4;
  {
    Client client("127.0.0.1", server.port());
    for (std::uint64_t i = 0; i < kInFlight; ++i)
      client.submit("slow", request_of(1, 8, static_cast<int>(i)));
    ASSERT_TRUE(poll_until(
        [&] { return server.stats().submits_forwarded == kInFlight; }));
    // Client vanishes with every request still parked in the batcher.
  }
  ASSERT_TRUE(poll_until(
      [&] { return server.stats().connections_closed == 1; }));

  // Drain: the scheduler still executes the orphaned requests; each
  // resolution fires its on_ready callback into a session whose in-flight
  // map was abandoned — counted dropped, never delivered, never leaked.
  h.engine.shutdown();
  ASSERT_TRUE(poll_until(
      [&] { return server.stats().responses_dropped == kInFlight; }));

  const NetStats net = server.stats();
  EXPECT_EQ(net.submits_forwarded, kInFlight);
  EXPECT_EQ(net.completions_enqueued, 0u);
  EXPECT_EQ(net.responses_dropped, kInFlight);
  expect_net_identity(net);

  const serve::SlotStats slot = h.engine.model_stats("slow");
  EXPECT_EQ(slot.submitted, kInFlight);
  expect_ledger_drained(slot);

  server.stop();
  expect_net_identity(server.stats());
  EXPECT_EQ(server.open_connections(), 0u);
}

TEST(NetChaos, SlowReaderEvictedAtWriteQueueBound) {
  // The write-queue bound is set below the size of a single result frame,
  // so the very first completion overflows it: deterministic eviction with
  // no dependence on kernel socket buffering. The request itself completed
  // fine in the engine — only its DELIVERY is refused and counted dropped.
  SlowHarness h("fast");
  // Re-register wants a fresh slot config; use a second engine-side slot
  // with a prompt scheduler instead of the hoarding one.
  serve::SlotConfig prompt;
  prompt.max_batch = 4;
  prompt.max_wait = 1ms;
  h.engine.register_model("prompt", h.model, h.nl, prompt);

  TcpServerConfig cfg;
  cfg.max_write_queue_bytes = 32;  // smaller than any kResult frame
  TcpServer server(h.engine, cfg);

  Client client("127.0.0.1", server.port());
  const auto id = client.submit("prompt", request_of(1, 8));
  ASSERT_TRUE(poll_until(
      [&] { return server.stats().slow_reader_evictions == 1; }));

  // The eviction shut the socket down; the client observes a dead
  // connection, not a result.
  EXPECT_THROW(client.await(id, 5000ms), ConnectionClosed);
  ASSERT_TRUE(poll_until(
      [&] { return server.stats().connections_closed == 1; }));

  const NetStats net = server.stats();
  EXPECT_EQ(net.submits_forwarded, 1u);
  EXPECT_EQ(net.completions_enqueued, 0u);
  EXPECT_EQ(net.responses_dropped, 1u);
  EXPECT_EQ(net.slow_reader_evictions, 1u);
  expect_net_identity(net);

  // The engine side is untouched by the delivery failure: the request ran
  // to completion and reconciles as completed.
  const serve::SlotStats slot = h.engine.model_stats("prompt");
  EXPECT_EQ(slot.submitted, 1u);
  EXPECT_EQ(slot.completed, 1u);
  expect_ledger_drained(slot);
  server.stop();
}

TEST(NetChaos, HalfWrittenFrameThenFinOrRst) {
  SlowHarness h;
  serve::SlotConfig prompt;
  prompt.max_batch = 4;
  prompt.max_wait = 1ms;
  h.engine.register_model("prompt", h.model, h.nl, prompt);
  TcpServer server(h.engine);

  // Variant A: header promises 100 payload bytes, 40 arrive, then FIN.
  {
    Client client("127.0.0.1", server.port());
    FrameHeader hd;
    hd.type = FrameType::kSubmit;
    hd.payload_len = 100;
    hd.request_id = 1;
    std::uint8_t hdr[kHeaderSize];
    encode_header(hd, hdr);
    client.send_raw(hdr, kHeaderSize);
    const std::vector<std::uint8_t> partial(40, 0xAB);
    client.send_raw(partial.data(), partial.size());
  }
  ASSERT_TRUE(poll_until(
      [&] { return server.stats().connections_closed == 1; }));

  // Variant B: same truncation, finished with a hard RST (SO_LINGER 0).
  {
    Client client("127.0.0.1", server.port());
    FrameHeader hd;
    hd.type = FrameType::kSubmit;
    hd.payload_len = 100;
    hd.request_id = 2;
    std::uint8_t hdr[kHeaderSize];
    encode_header(hd, hdr);
    client.send_raw(hdr, kHeaderSize);
    const std::vector<std::uint8_t> partial(40, 0xCD);
    client.send_raw(partial.data(), partial.size());
    const linger lg{1, 0};
    ASSERT_EQ(::setsockopt(client.fd(), SOL_SOCKET, SO_LINGER, &lg,
                           sizeof lg),
              0);
  }
  ASSERT_TRUE(poll_until(
      [&] { return server.stats().connections_closed == 2; }));

  // Neither mutilated connection reached the engine, and the server still
  // serves: a fresh client round-trips normally.
  const NetStats net = server.stats();
  EXPECT_EQ(net.submits_forwarded, 0u);
  expect_net_identity(net);

  Client fresh("127.0.0.1", server.port());
  const Completion done =
      fresh.await(fresh.submit("prompt", request_of(1, 8)));
  EXPECT_TRUE(done.ok) << done.message;
  server.stop();
  expect_net_identity(server.stats());
}

TEST(NetChaos, CancelRacesAndDuplicateIds) {
  SlowHarness h;  // "slow": requests park until cancelled or shutdown
  serve::SlotConfig prompt;
  prompt.max_batch = 4;
  prompt.max_wait = 1ms;
  h.engine.register_model("prompt", h.model, h.nl, prompt);
  TcpServer server(h.engine);
  Client client("127.0.0.1", server.port());

  // Cancel-before-execution: the parked request is withdrawn. Ack true,
  // AND the submit's own completion arrives as kError(kCancelled) — two
  // frames, both mandatory.
  const auto parked = client.submit("slow", request_of(1, 8));
  EXPECT_TRUE(client.cancel(parked));
  Completion done = client.await(parked);
  EXPECT_FALSE(done.ok);
  EXPECT_EQ(done.code, ErrorCode::kCancelled);

  // Cancel-after-complete: by the time the cancel lands the request is
  // resolved and gone from the in-flight map. Ack false, nothing breaks,
  // the result was already delivered.
  const auto fast = client.submit("prompt", request_of(1, 8));
  done = client.await(fast);
  EXPECT_TRUE(done.ok) << done.message;
  EXPECT_FALSE(client.cancel(fast));

  // Duplicate in-flight id: the second submit under a live id is a
  // protocol error answered inline; the ORIGINAL request is untouched and
  // still cancellable.
  client.submit_as(777, "slow", request_of(1, 8));
  ASSERT_TRUE(poll_until(
      [&] { return server.stats().submits_forwarded == 3; }));
  client.submit_as(777, "slow", request_of(1, 8));
  done = client.await(777);
  EXPECT_FALSE(done.ok);
  EXPECT_EQ(done.code, ErrorCode::kMalformedFrame);
  EXPECT_TRUE(client.cancel(777));
  done = client.await(777);
  EXPECT_FALSE(done.ok);
  EXPECT_EQ(done.code, ErrorCode::kCancelled);

  client.close();
  ASSERT_TRUE(poll_until(
      [&] { return server.stats().connections_closed == 1; }));
  h.engine.shutdown();
  server.stop();

  const NetStats net = server.stats();
  EXPECT_EQ(net.submits_forwarded, 3u);  // the duplicate never reached it
  EXPECT_EQ(net.completions_enqueued, 3u);
  EXPECT_EQ(net.cancels, 3u);
  EXPECT_EQ(net.protocol_errors, 1u);
  expect_net_identity(net);
  const serve::SlotStats slow = h.engine.model_stats("slow");
  EXPECT_EQ(slow.cancelled, 2u);
  expect_ledger_drained(slow);
  expect_ledger_drained(h.engine.model_stats("prompt"));
}

TEST(NetChaos, ServerStopUnderLiveTrafficReconciles) {
  SlowHarness h;
  TcpServer server(h.engine);

  // Three clients park requests; stop() closes every session under them,
  // THEN the engine drains. Every forwarded submit must reconcile as
  // dropped (no session left to deliver to), every client must observe a
  // dead connection rather than a hang.
  constexpr std::size_t kClients = 3, kPerClient = 2;
  std::vector<std::unique_ptr<Client>> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.push_back(
        std::make_unique<Client>("127.0.0.1", server.port()));
    for (std::size_t i = 0; i < kPerClient; ++i)
      clients[c]->submit("slow", request_of(1, 8, static_cast<int>(i)));
  }
  ASSERT_TRUE(poll_until([&] {
    return server.stats().submits_forwarded == kClients * kPerClient;
  }));

  server.stop();
  EXPECT_EQ(server.open_connections(), 0u);
  for (auto& c : clients)
    EXPECT_THROW(c->await(1, 5000ms), ConnectionClosed);

  h.engine.shutdown();
  ASSERT_TRUE(poll_until([&] {
    return server.stats().responses_dropped == kClients * kPerClient;
  }));
  const NetStats net = server.stats();
  EXPECT_EQ(net.completions_enqueued, 0u);
  expect_net_identity(net);
  const serve::SlotStats slot = h.engine.model_stats("slow");
  EXPECT_EQ(slot.submitted, kClients * kPerClient);
  expect_ledger_drained(slot);
}

}  // namespace
}  // namespace nnlut::net
