#include <gtest/gtest.h>

#include "approx/linear_lut.h"
#include "eval/calibration_runner.h"
#include "eval/pipeline.h"

namespace nnlut::eval {
namespace {

using tasks::TaskData;
using tasks::TaskGenOptions;
using tasks::TaskId;
using transformer::ModelConfig;

TaskGenOptions quick_data() {
  TaskGenOptions o;
  o.n_train = 1024;
  o.n_dev = 256;
  o.seq_len = 20;
  o.seed = 7;
  return o;
}

ModelConfig quick_model() {
  ModelConfig c = ModelConfig::roberta_like();
  c.vocab = 64;
  c.hidden = 32;
  c.layers = 2;
  c.heads = 2;
  c.ffn = 64;
  c.max_seq = 20;
  return c;
}

TrainOptions quick_train() {
  TrainOptions t;
  t.epochs = 5;
  t.batch_size = 32;
  t.lr = 1e-3f;
  t.seed = 3;
  return t;
}

TEST(Pipeline, ToBatchLaysOutRows) {
  const TaskData d = tasks::make_task(TaskId::kSst2, quick_data());
  const auto in = to_batch(d.train, 2, 3);
  EXPECT_EQ(in.batch, 3u);
  EXPECT_EQ(in.seq, d.seq_len);
  EXPECT_EQ(in.token_ids.size(), 3 * d.seq_len);
  EXPECT_EQ(in.token_ids[0], d.train[2].tokens[0]);
  EXPECT_EQ(in.token_ids[d.seq_len], d.train[3].tokens[0]);
}

TEST(Pipeline, TrainingLearnsSentiment) {
  const TaskData d = tasks::make_task(TaskId::kSst2, quick_data());
  const auto model = train_model(d, quick_model(), quick_train());
  const double metric = evaluate_baseline(model, d);
  // The synthetic sentiment task is learnable; random chance is 50.
  EXPECT_GT(metric, 85.0);
}

TEST(Pipeline, TrainingLearnsRegression) {
  const TaskData d = tasks::make_task(TaskId::kStsb, quick_data());
  TrainOptions t = quick_train();
  t.epochs = 6;
  const auto model = train_model(d, quick_model(), t);
  const double metric = evaluate_baseline(model, d);  // 100 * spearman
  EXPECT_GT(metric, 70.0);
}

TEST(Pipeline, TrainingLearnsSpans) {
  tasks::TaskGenOptions o = quick_data();
  const TaskData d = tasks::make_task(TaskId::kSquad, o);
  // The span task needs a little more width than the other quick tests.
  ModelConfig c = quick_model();
  c.hidden = 48;
  c.heads = 4;
  c.ffn = 96;
  TrainOptions t = quick_train();
  t.epochs = 8;
  const auto model = train_model(d, c, t);
  const double metric = evaluate_baseline(model, d);
  EXPECT_GT(metric, 80.0);  // span-F1; random is ~ a few percent
}

TEST(Pipeline, ExactBackendReproducesBaseline) {
  const TaskData d = tasks::make_task(TaskId::kSst2, quick_data());
  const auto model = train_model(d, quick_model(), quick_train());
  transformer::ExactNonlinearities exact(model.config().act);
  const double a = evaluate(model, d, exact);
  const double b = evaluate_baseline(model, d);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Pipeline, PredictionsSizedToDataset) {
  const TaskData d = tasks::make_task(TaskId::kMnli, quick_data());
  const auto model = train_model(d, quick_model(), quick_train());
  transformer::ExactNonlinearities exact(model.config().act);
  transformer::InferenceModel infer(model, exact);
  const auto pred = predict(infer, d, d.dev, 50);  // non-divisor batch size
  EXPECT_EQ(pred.labels.size(), d.dev.size());
}

// The central integration property behind Table 2: approximating with NN-LUT
// preserves the trained model's accuracy; Linear-LUT LayerNorm destroys it.
TEST(Integration, NnlutPreservesAccuracyLinearLutDoesNot) {
  const TaskData d = tasks::make_task(TaskId::kSst2, quick_data());
  const auto model = train_model(d, quick_model(), quick_train());
  const double baseline = evaluate_baseline(model, d);

  // NN-LUT: trained 16-entry tables for all four functions.
  const NnlutBundle nb = train_bundle(16, FitPreset::kFast, 11);
  transformer::LutSet nn_luts{nb.gelu.lut, nb.exp.lut, nb.reciprocal.lut,
                              nb.rsqrt.lut};
  transformer::LutNonlinearities::Options lopt;
  lopt.select = transformer::ApproxSelection::all();
  auto nnlut_backend =
      make_lut_backend(nn_luts, LutPrecision::kFp32, lopt);
  const double nnlut_metric = evaluate(model, d, *nnlut_backend);

  // Linear-LUT baseline: fixed uniform breakpoints (Sec. 3.1).
  transformer::LutSet lin_luts{
      fit_linear_lut(gelu_exact, kGeluRange, 16),
      fit_linear_lut(exp_exact, kExpRange, 16),
      fit_linear_lut(reciprocal_exact, kDivideRange, 16),
      fit_linear_lut(rsqrt_exact, kRsqrtRange, 16)};
  auto linear_backend =
      make_lut_backend(lin_luts, LutPrecision::kFp32, lopt);
  const double linear_metric = evaluate(model, d, *linear_backend);

  EXPECT_GT(nnlut_metric, baseline - 5.0);     // near-baseline
  EXPECT_LT(linear_metric, nnlut_metric);      // NN-LUT wins (Table 2a)
}

TEST(CalibrationRunner, ProducesPerSiteLuts) {
  const TaskData d = tasks::make_task(TaskId::kSst2, quick_data());
  const auto model = train_model(d, quick_model(), quick_train());

  const NnlutBundle nb = train_bundle(16, FitPreset::kFast, 13);
  transformer::LutSet luts{nb.gelu.lut, nb.exp.lut, nb.reciprocal.lut,
                           nb.rsqrt.lut};
  transformer::LutNonlinearities::Options lopt;
  lopt.select = transformer::ApproxSelection::all();
  auto backend = make_lut_backend(luts, LutPrecision::kFp32, lopt);

  // Calibrate on a slice of unlabeled training data (paper: one tenth).
  const std::span<const tasks::Example> unlabeled(d.train.data(), 128);
  const auto report = calibrate_layernorm_sites(model, *backend, nb.rsqrt,
                                                unlabeled);

  // 2 layers -> 4 LN sites + embedding LN = 5, all captured.
  EXPECT_EQ(report.sites.size(), 5u);
  for (const auto& sc : report.sites) {
    EXPECT_GT(sc.samples, 0u);
    EXPECT_LE(sc.error_after, sc.error_before + 1e-12);
  }

  // Calibrated backend should not be worse than the uncalibrated one.
  const double calibrated = evaluate(model, d, *backend);
  auto fresh = make_lut_backend(luts, LutPrecision::kFp32, lopt);
  const double uncalibrated = evaluate(model, d, *fresh);
  EXPECT_GE(calibrated, uncalibrated - 2.0);
}

}  // namespace
}  // namespace nnlut::eval
