#include <gtest/gtest.h>

#include <cmath>

#include "approx/linear_lut.h"
#include "numerics/math.h"

namespace nnlut {
namespace {

TEST(Breakpoints, LinearModeEquallySpaced) {
  const auto bps = make_breakpoints({0.0f, 16.0f}, 16, BreakpointMode::kLinear);
  ASSERT_EQ(bps.size(), 15u);
  for (std::size_t i = 0; i < bps.size(); ++i)
    EXPECT_NEAR(bps[i], static_cast<float>(i + 1), 1e-5f);
}

TEST(Breakpoints, ExponentialModeDenseAtLowEnd) {
  const auto bps =
      make_breakpoints({1.0f, 1024.0f}, 16, BreakpointMode::kExponential);
  ASSERT_EQ(bps.size(), 15u);
  // Geometric spacing: interval lengths must grow monotonically.
  for (std::size_t i = 2; i < bps.size(); ++i)
    EXPECT_GT(bps[i] - bps[i - 1], bps[i - 1] - bps[i - 2]);
}

TEST(Breakpoints, ExponentialModeSpanningZeroIsSortedAndSymmetric) {
  const auto bps =
      make_breakpoints({-5.0f, 5.0f}, 16, BreakpointMode::kExponential);
  for (std::size_t i = 1; i < bps.size(); ++i) EXPECT_LT(bps[i - 1], bps[i]);
  // Symmetric by magnitude around zero.
  EXPECT_NEAR(bps.front(), -bps.back(), 1e-4f);
}

TEST(Breakpoints, NegativeRangeExponential) {
  const auto bps =
      make_breakpoints({-256.0f, 0.0f}, 8, BreakpointMode::kExponential);
  for (std::size_t i = 1; i < bps.size(); ++i) EXPECT_LT(bps[i - 1], bps[i]);
  EXPECT_LT(bps.front(), -1.0f);
}

TEST(Breakpoints, RejectsBadArguments) {
  EXPECT_THROW(make_breakpoints({0.0f, 1.0f}, 1, BreakpointMode::kLinear),
               std::invalid_argument);
  EXPECT_THROW(make_breakpoints({1.0f, 0.0f}, 4, BreakpointMode::kLinear),
               std::invalid_argument);
}

TEST(LinearLut, FitsStraightLineExactly) {
  const auto line = [](float x) { return 3.0f * x - 2.0f; };
  const PiecewiseLinear lut = fit_linear_lut(line, {-4.0f, 4.0f}, 8);
  for (float x = -4.0f; x <= 4.0f; x += 0.1f)
    EXPECT_NEAR(lut(x), line(x), 1e-4f);
}

TEST(LinearLut, InterpolationPassesThroughSegmentEndpoints) {
  const PiecewiseLinear lut = fit_fixed_breakpoint_lut(
      gelu_exact, kGeluRange, 16, BreakpointMode::kLinear,
      SegmentFit::kInterpolation);
  // Each breakpoint is an endpoint of both adjacent segments: LUT hits f.
  for (float d : lut.breakpoints())
    EXPECT_NEAR(lut(d), gelu_exact(d), 1e-4f) << d;
}

TEST(LinearLut, GeluErrorSmall) {
  // Fig. 2(a): Linear-LUT handles the monotonous GELU well.
  const PiecewiseLinear lut = fit_linear_lut(gelu_exact, kGeluRange, 16);
  double mean_err = 0;
  int count = 0;
  for (float x = -5.0f; x <= 5.0f; x += 0.01f, ++count)
    mean_err += std::abs(lut(x) - gelu_exact(x));
  EXPECT_LT(mean_err / count, 0.02);
}

TEST(LinearLut, RsqrtErrorLargeOnWideRange) {
  // Fig. 2(c): fixed uniform breakpoints fail on 1/sqrt over (0.1, 1024) —
  // the first segment spans (0.1, 64) where the function falls off a cliff.
  const PiecewiseLinear lut = fit_linear_lut(rsqrt_exact, kRsqrtRange, 16);
  double worst = 0;
  for (float x = 0.1f; x <= 2.0f; x += 0.01f)
    worst = std::max(worst, std::abs(static_cast<double>(lut(x)) - rsqrt_exact(x)));
  EXPECT_GT(worst, 0.5);  // demonstrably bad exactly where LayerNorm needs it
}

TEST(LinearLut, ExponentialBreakpointsHelpRsqrt) {
  const PiecewiseLinear lin = fit_linear_lut(rsqrt_exact, kRsqrtRange, 16);
  const PiecewiseLinear expo = fit_fixed_breakpoint_lut(
      rsqrt_exact, kRsqrtRange, 16, BreakpointMode::kExponential);
  double err_lin = 0, err_exp = 0;
  for (float x = 0.1f; x <= 1024.0f; x += 0.25f) {
    err_lin += std::abs(lin(x) - rsqrt_exact(x));
    err_exp += std::abs(expo(x) - rsqrt_exact(x));
  }
  EXPECT_LT(err_exp, err_lin);
}

// Error must decrease monotonically-ish with entry count.
class EntrySweep : public ::testing::TestWithParam<int> {};

TEST_P(EntrySweep, MoreEntriesNeverWorse) {
  const int entries = GetParam();
  const PiecewiseLinear coarse = fit_linear_lut(gelu_exact, kGeluRange, entries);
  const PiecewiseLinear fine =
      fit_linear_lut(gelu_exact, kGeluRange, entries * 2);
  double err_coarse = 0, err_fine = 0;
  for (float x = -5.0f; x <= 5.0f; x += 0.01f) {
    err_coarse += std::abs(coarse(x) - gelu_exact(x));
    err_fine += std::abs(fine(x) - gelu_exact(x));
  }
  EXPECT_LE(err_fine, err_coarse * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Entries, EntrySweep, ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace nnlut
