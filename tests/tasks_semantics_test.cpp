// Semantic correctness of the task generators: the label must be computable
// from the tokens by the intended rule (no leakage, no contradiction). These
// re-derive each label independently of the generator's internals.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tasks/tasks.h"

namespace nnlut::tasks {
namespace {

TaskGenOptions opts() {
  TaskGenOptions o;
  o.n_train = 400;
  o.n_dev = 50;
  o.seed = 99;
  return o;
}

/// Split a pair example into segment A / segment B content tokens.
void split_pair(const Example& e, std::vector<int>& a, std::vector<int>& b) {
  a.clear();
  b.clear();
  for (std::size_t i = 1; i < e.tokens.size(); ++i) {
    const int t = e.tokens[i];
    if (t == kSep || t == kCls || t == kFiller) continue;
    (e.type_ids[i] == 0 ? a : b).push_back(t);
  }
}

TEST(TaskSemantics, RteLabelMatchesSubsetRule) {
  const TaskData d = make_task(TaskId::kRte, opts());
  std::vector<int> prem, hyp;
  for (const Example& e : d.train) {
    split_pair(e, prem, hyp);
    ASSERT_FALSE(hyp.empty());
    int present = 0;
    for (int t : hyp)
      if (std::find(prem.begin(), prem.end(), t) != prem.end()) ++present;
    const bool all_present = (present == static_cast<int>(hyp.size()));
    EXPECT_EQ(e.label, all_present ? 1 : 0);
  }
}

TEST(TaskSemantics, QnliLabelMatchesPresenceRule) {
  const TaskData d = make_task(TaskId::kQnli, opts());
  std::vector<int> qseg, passage;
  for (const Example& e : d.train) {
    split_pair(e, qseg, passage);
    ASSERT_FALSE(qseg.empty());
    const int q = qseg[0];
    const bool present =
        std::find(passage.begin(), passage.end(), q) != passage.end();
    EXPECT_EQ(e.label, present ? 1 : 0);
  }
}

TEST(TaskSemantics, ColaLabelMatchesCyclicGrammar) {
  const TaskData d = make_task(TaskId::kCola, opts());
  for (const Example& e : d.train) {
    // Collect the content tokens in order.
    std::vector<int> toks;
    for (std::size_t i = 1; i < e.tokens.size(); ++i)
      if (e.tokens[i] >= kFirstContent) toks.push_back(e.tokens[i]);
    ASSERT_GE(toks.size(), 4u);
    bool cyclic = true;
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const int c0 = (toks[i - 1] - kFirstContent) % 4;
      const int c1 = (toks[i] - kFirstContent) % 4;
      if (c1 != (c0 + 1) % 4) cyclic = false;
    }
    EXPECT_EQ(e.label, cyclic ? 1 : 0);
  }
}

TEST(TaskSemantics, Sst2LabelMatchesValenceSum) {
  const TaskGenOptions o = opts();
  const TaskData d = make_task(TaskId::kSst2, o);
  const int cr = static_cast<int>(o.vocab) - kFirstContent;
  for (const Example& e : d.train) {
    int sum = 0;
    for (std::size_t i = 1; i < e.tokens.size(); ++i) {
      const int t = e.tokens[i];
      if (t < kFirstContent) continue;
      sum += ((t - kFirstContent) < cr / 2) ? -1 : 1;
    }
    ASSERT_NE(sum, 0);
    EXPECT_EQ(e.label, sum > 0 ? 1 : 0);
  }
}

TEST(TaskSemantics, StsbTargetMatchesPositionalOverlap) {
  const TaskData d = make_task(TaskId::kStsb, opts());
  std::vector<int> a, b;
  for (const Example& e : d.train) {
    split_pair(e, a, b);
    ASSERT_EQ(a.size(), b.size());
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a[i] == b[i]) ++same;
    const float expect =
        5.0f * static_cast<float>(same) / static_cast<float>(a.size());
    EXPECT_NEAR(e.target, expect, 1e-4f);
  }
}

TEST(TaskSemantics, MnliLabelMatchesOverlapClass) {
  const TaskData d = make_task(TaskId::kMnli, opts());
  std::vector<int> prem, hyp;
  for (const Example& e : d.train) {
    split_pair(e, prem, hyp);
    int present = 0;
    for (int t : hyp)
      if (std::find(prem.begin(), prem.end(), t) != prem.end()) ++present;
    if (e.label == 0) {
      EXPECT_EQ(present, static_cast<int>(hyp.size()));
    }
    if (e.label == 2) {
      EXPECT_EQ(present, 0);
    }
    if (e.label == 1) {
      EXPECT_GT(present, 0);
      EXPECT_LT(present, static_cast<int>(hyp.size()));
    }
  }
}

TEST(TaskSemantics, SquadSpanContainsNonMarkerTokens) {
  const TaskData d = make_task(TaskId::kSquad, opts());
  const int m0 = kFirstContent + 2, m1 = kFirstContent + 3;
  for (const Example& e : d.train) {
    for (int s = e.span_start; s <= e.span_end; ++s) {
      const int t = e.tokens[static_cast<std::size_t>(s)];
      EXPECT_NE(t, m0);
      EXPECT_NE(t, m1);
    }
  }
}

TEST(TaskSemantics, MrpcNegativesHaveLowerOverlapThanPositives) {
  const TaskData d = make_task(TaskId::kMrpc, opts());
  std::vector<int> a, b;
  double pos_overlap = 0, neg_overlap = 0;
  int pos_n = 0, neg_n = 0;
  for (const Example& e : d.train) {
    split_pair(e, a, b);
    std::multiset<int> sa(a.begin(), a.end());
    int common = 0;
    for (int t : b) {
      auto it = sa.find(t);
      if (it != sa.end()) {
        ++common;
        sa.erase(it);
      }
    }
    const double frac = static_cast<double>(common) / static_cast<double>(b.size());
    if (e.label == 1) {
      pos_overlap += frac;
      ++pos_n;
    } else {
      neg_overlap += frac;
      ++neg_n;
    }
  }
  EXPECT_GT(pos_overlap / pos_n, neg_overlap / neg_n + 0.2);
}

}  // namespace
}  // namespace nnlut::tasks
